/**
 * @file
 * ANML serialization: Micron's Automata Network Markup Language, the
 * XML format the AP SDK and the original ANMLZoo/AutomataZoo
 * distributions use.
 *
 * Supported elements (the subset our model covers):
 *
 *  - <state-transition-element id symbol-set start>, with
 *    <report-on-match reportcode> and <activate-on-match element>;
 *  - <counter id target at-target>, with <report-on-target> and
 *    <activate-on-target element>; reset connections use the AP's
 *    ":rst" port suffix on the target element id.
 *
 * The XML reader is a small self-contained parser for the documents
 * this writer produces and equivalent hand-authored files.
 */

#ifndef AZOO_CORE_ANML_HH
#define AZOO_CORE_ANML_HH

#include <iosfwd>
#include <string>

#include "core/automaton.hh"

namespace azoo {

/** Write @p a as an ANML document. */
void writeAnml(std::ostream &os, const Automaton &a);

/** Parse an ANML document; fatal() on malformed input. */
Automaton readAnml(std::istream &is);

/** File convenience wrappers. */
void saveAnml(const std::string &path, const Automaton &a);
Automaton loadAnml(const std::string &path);

} // namespace azoo

#endif // AZOO_CORE_ANML_HH
