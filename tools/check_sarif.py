#!/usr/bin/env python3
"""Structural SARIF 2.1.0 validator (stdlib only; CI's analysis job).

The full OASIS schema needs a jsonschema package this repo does not
depend on, so this checks the structural subset `azoo_lint --json`
promises and CI consumes: the document parses, carries the 2.1.0
version marker, and every run/rule/result has the required properties
with consistent cross-references (ruleId/ruleIndex resolve into the
driver's rule table, levels are legal, locations carry a URI).

Usage: check_sarif.py FILE [FILE...]   (use - for stdin)
Exit codes: 0 clean, 65 when any document fails, 64 usage errors.
"""

import json
import sys

LEVELS = {"none", "note", "warning", "error"}


def err(path, msg, errors):
    errors.append(f"{path}: {msg}")


def check_rule(path, i, rule, errors):
    where = f"{path}: rules[{i}]"
    if not isinstance(rule.get("id"), str) or not rule["id"]:
        err(where, "missing string 'id'", errors)
    if not isinstance(rule.get("name", ""), str):
        err(where, "'name' must be a string", errors)
    short = rule.get("shortDescription")
    if not (isinstance(short, dict) and
            isinstance(short.get("text"), str)):
        err(where, "missing shortDescription.text", errors)
    cfg = rule.get("defaultConfiguration", {})
    if cfg.get("level", "warning") not in LEVELS:
        err(where, f"bad defaultConfiguration.level {cfg.get('level')}",
            errors)


def check_result(path, i, result, rules_by_id, rule_ids, errors):
    where = f"{path}: results[{i}]"
    rule_id = result.get("ruleId")
    if not isinstance(rule_id, str) or rule_id not in rules_by_id:
        err(where, f"ruleId {rule_id!r} not in the driver rule table",
            errors)
    idx = result.get("ruleIndex")
    if idx is not None:
        if not (isinstance(idx, int) and 0 <= idx < len(rule_ids)):
            err(where, f"ruleIndex {idx!r} out of range", errors)
        elif rule_ids[idx] != rule_id:
            err(where, f"ruleIndex {idx} names {rule_ids[idx]}, "
                       f"not {rule_id}", errors)
    if result.get("level", "warning") not in LEVELS:
        err(where, f"bad level {result.get('level')!r}", errors)
    msg = result.get("message")
    if not (isinstance(msg, dict) and isinstance(msg.get("text"), str)):
        err(where, "missing message.text", errors)
    for j, loc in enumerate(result.get("locations", [])):
        phys = loc.get("physicalLocation", {})
        art = phys.get("artifactLocation", {})
        if not isinstance(art.get("uri"), str):
            err(where, f"locations[{j}] missing "
                       "physicalLocation.artifactLocation.uri", errors)


def check_doc(path, doc, errors):
    if doc.get("version") != "2.1.0":
        err(path, f"version is {doc.get('version')!r}, want '2.1.0'",
            errors)
    runs = doc.get("runs")
    if not (isinstance(runs, list) and runs):
        err(path, "missing non-empty 'runs' array", errors)
        return
    for r, run in enumerate(runs):
        driver = run.get("tool", {}).get("driver", {})
        if not isinstance(driver.get("name"), str):
            err(path, f"runs[{r}] missing tool.driver.name", errors)
        rules = driver.get("rules", [])
        for i, rule in enumerate(rules):
            check_rule(path, i, rule, errors)
        rule_ids = [rule.get("id") for rule in rules]
        rules_by_id = set(rule_ids)
        if len(rules_by_id) != len(rule_ids):
            err(path, f"runs[{r}] has duplicate rule ids", errors)
        results = run.get("results")
        if not isinstance(results, list):
            err(path, f"runs[{r}] missing 'results' array", errors)
            continue
        for i, result in enumerate(results):
            check_result(path, i, result, rules_by_id, rule_ids,
                         errors)


def main(argv):
    if len(argv) < 2:
        print("usage: check_sarif.py FILE [FILE...]", file=sys.stderr)
        return 64
    errors = []
    for path in argv[1:]:
        try:
            if path == "-":
                doc = json.load(sys.stdin)
            else:
                with open(path, encoding="utf-8") as f:
                    doc = json.load(f)
        except (OSError, json.JSONDecodeError) as e:
            errors.append(f"{path}: {e}")
            continue
        check_doc(path, doc, errors)
    for e in errors:
        print(f"check_sarif: {e}", file=sys.stderr)
    print(f"check_sarif: {len(argv) - 1} document(s), "
          f"{len(errors)} problem(s)")
    return 65 if errors else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
