file(REMOVE_RECURSE
  "CMakeFiles/azoo_opt.dir/azoo_opt.cc.o"
  "CMakeFiles/azoo_opt.dir/azoo_opt.cc.o.d"
  "azoo_opt"
  "azoo_opt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/azoo_opt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
