/**
 * @file
 * Union-find (disjoint set) over dense uint32 ids.
 *
 * Shared by the component-partitioning paths (ParallelRunner shards,
 * LazyDfaEngine's counter/counter-free split) that must group
 * automaton elements by connected component over activation *and*
 * reset edges.
 */

#ifndef AZOO_UTIL_UNION_FIND_HH
#define AZOO_UTIL_UNION_FIND_HH

#include <cstdint>
#include <numeric>
#include <vector>

namespace azoo {

/** Union-find with path halving; no union-by-rank (callers work over
 *  graph edges, where halving alone keeps trees shallow). */
class UnionFind
{
  public:
    explicit UnionFind(size_t n) : parent_(n)
    {
        std::iota(parent_.begin(), parent_.end(), 0);
    }

    uint32_t
    find(uint32_t x)
    {
        while (parent_[x] != x) {
            parent_[x] = parent_[parent_[x]];
            x = parent_[x];
        }
        return x;
    }

    void
    unite(uint32_t a, uint32_t b)
    {
        a = find(a);
        b = find(b);
        if (a != b)
            parent_[b] = a;
    }

  private:
    std::vector<uint32_t> parent_;
};

} // namespace azoo

#endif // AZOO_UTIL_UNION_FIND_HH
