# Empty dependencies file for fullkernel_spm.
# This may be replaced when dependencies are built.
