/**
 * @file
 * ClamAV virus-detection benchmark.
 *
 * ClamAV signatures are hexadecimal byte strings with wildcards; the
 * distribution ships a tool that converts them to regular
 * expressions, which are then compiled to automata. We generate a
 * seeded signature database in ClamAV's hex-signature dialect
 * (fixed bytes, "??" wildcards, "{n-m}" bounded jumps, "(aa|bb)"
 * alternatives), convert each signature to a regex with the same
 * rules as the paper's toolchain, and compile with our pcre2mnrl
 * equivalent. Two signatures double as the "virus fragments" embedded
 * in the disk-image input, so the benchmark detects real planted
 * positives (unlike ANMLZoo's, which "detects no viruses").
 */

#ifndef AZOO_ZOO_CLAMAV_HH
#define AZOO_ZOO_CLAMAV_HH

#include <string>
#include <vector>

#include "zoo/benchmark.hh"

namespace azoo {
namespace zoo {

/** One signature in ClamAV hex dialect plus a concrete instance of
 *  bytes it matches (used for planting). */
struct ClamSignature {
    std::string hex;       ///< e.g. "4d5a??90{2-6}50450000"
    std::string instance;  ///< concrete matching byte string
};

/** Generate scaled(33171) signatures. */
std::vector<ClamSignature> makeClamSignatures(const ZooConfig &cfg);

/** Convert ClamAV hex dialect to a PCRE pattern. */
std::string clamHexToRegex(const std::string &hex);

/** Build the benchmark (signatures + disk image with two planted
 *  virus fragments). */
Benchmark makeClamAvBenchmark(const ZooConfig &cfg);

} // namespace zoo
} // namespace azoo

#endif // AZOO_ZOO_CLAMAV_HH
