
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/bits/bit_builder.cc" "src/CMakeFiles/azoo.dir/bits/bit_builder.cc.o" "gcc" "src/CMakeFiles/azoo.dir/bits/bit_builder.cc.o.d"
  "/root/repo/src/core/anml.cc" "src/CMakeFiles/azoo.dir/core/anml.cc.o" "gcc" "src/CMakeFiles/azoo.dir/core/anml.cc.o.d"
  "/root/repo/src/core/automaton.cc" "src/CMakeFiles/azoo.dir/core/automaton.cc.o" "gcc" "src/CMakeFiles/azoo.dir/core/automaton.cc.o.d"
  "/root/repo/src/core/builder.cc" "src/CMakeFiles/azoo.dir/core/builder.cc.o" "gcc" "src/CMakeFiles/azoo.dir/core/builder.cc.o.d"
  "/root/repo/src/core/charset.cc" "src/CMakeFiles/azoo.dir/core/charset.cc.o" "gcc" "src/CMakeFiles/azoo.dir/core/charset.cc.o.d"
  "/root/repo/src/core/dot.cc" "src/CMakeFiles/azoo.dir/core/dot.cc.o" "gcc" "src/CMakeFiles/azoo.dir/core/dot.cc.o.d"
  "/root/repo/src/core/mnrl.cc" "src/CMakeFiles/azoo.dir/core/mnrl.cc.o" "gcc" "src/CMakeFiles/azoo.dir/core/mnrl.cc.o.d"
  "/root/repo/src/core/serialize.cc" "src/CMakeFiles/azoo.dir/core/serialize.cc.o" "gcc" "src/CMakeFiles/azoo.dir/core/serialize.cc.o.d"
  "/root/repo/src/core/stats.cc" "src/CMakeFiles/azoo.dir/core/stats.cc.o" "gcc" "src/CMakeFiles/azoo.dir/core/stats.cc.o.d"
  "/root/repo/src/engine/multidfa_engine.cc" "src/CMakeFiles/azoo.dir/engine/multidfa_engine.cc.o" "gcc" "src/CMakeFiles/azoo.dir/engine/multidfa_engine.cc.o.d"
  "/root/repo/src/engine/nfa_engine.cc" "src/CMakeFiles/azoo.dir/engine/nfa_engine.cc.o" "gcc" "src/CMakeFiles/azoo.dir/engine/nfa_engine.cc.o.d"
  "/root/repo/src/engine/placement.cc" "src/CMakeFiles/azoo.dir/engine/placement.cc.o" "gcc" "src/CMakeFiles/azoo.dir/engine/placement.cc.o.d"
  "/root/repo/src/engine/spatial_model.cc" "src/CMakeFiles/azoo.dir/engine/spatial_model.cc.o" "gcc" "src/CMakeFiles/azoo.dir/engine/spatial_model.cc.o.d"
  "/root/repo/src/engine/streaming.cc" "src/CMakeFiles/azoo.dir/engine/streaming.cc.o" "gcc" "src/CMakeFiles/azoo.dir/engine/streaming.cc.o.d"
  "/root/repo/src/input/corpus.cc" "src/CMakeFiles/azoo.dir/input/corpus.cc.o" "gcc" "src/CMakeFiles/azoo.dir/input/corpus.cc.o.d"
  "/root/repo/src/input/diskimage.cc" "src/CMakeFiles/azoo.dir/input/diskimage.cc.o" "gcc" "src/CMakeFiles/azoo.dir/input/diskimage.cc.o.d"
  "/root/repo/src/input/dna.cc" "src/CMakeFiles/azoo.dir/input/dna.cc.o" "gcc" "src/CMakeFiles/azoo.dir/input/dna.cc.o.d"
  "/root/repo/src/input/malware.cc" "src/CMakeFiles/azoo.dir/input/malware.cc.o" "gcc" "src/CMakeFiles/azoo.dir/input/malware.cc.o.d"
  "/root/repo/src/input/names.cc" "src/CMakeFiles/azoo.dir/input/names.cc.o" "gcc" "src/CMakeFiles/azoo.dir/input/names.cc.o.d"
  "/root/repo/src/input/pcap.cc" "src/CMakeFiles/azoo.dir/input/pcap.cc.o" "gcc" "src/CMakeFiles/azoo.dir/input/pcap.cc.o.d"
  "/root/repo/src/input/protein.cc" "src/CMakeFiles/azoo.dir/input/protein.cc.o" "gcc" "src/CMakeFiles/azoo.dir/input/protein.cc.o.d"
  "/root/repo/src/ml/dataset.cc" "src/CMakeFiles/azoo.dir/ml/dataset.cc.o" "gcc" "src/CMakeFiles/azoo.dir/ml/dataset.cc.o.d"
  "/root/repo/src/ml/decision_tree.cc" "src/CMakeFiles/azoo.dir/ml/decision_tree.cc.o" "gcc" "src/CMakeFiles/azoo.dir/ml/decision_tree.cc.o.d"
  "/root/repo/src/ml/random_forest.cc" "src/CMakeFiles/azoo.dir/ml/random_forest.cc.o" "gcc" "src/CMakeFiles/azoo.dir/ml/random_forest.cc.o.d"
  "/root/repo/src/regex/ast.cc" "src/CMakeFiles/azoo.dir/regex/ast.cc.o" "gcc" "src/CMakeFiles/azoo.dir/regex/ast.cc.o.d"
  "/root/repo/src/regex/backtrack.cc" "src/CMakeFiles/azoo.dir/regex/backtrack.cc.o" "gcc" "src/CMakeFiles/azoo.dir/regex/backtrack.cc.o.d"
  "/root/repo/src/regex/glushkov.cc" "src/CMakeFiles/azoo.dir/regex/glushkov.cc.o" "gcc" "src/CMakeFiles/azoo.dir/regex/glushkov.cc.o.d"
  "/root/repo/src/regex/parser.cc" "src/CMakeFiles/azoo.dir/regex/parser.cc.o" "gcc" "src/CMakeFiles/azoo.dir/regex/parser.cc.o.d"
  "/root/repo/src/transform/pad.cc" "src/CMakeFiles/azoo.dir/transform/pad.cc.o" "gcc" "src/CMakeFiles/azoo.dir/transform/pad.cc.o.d"
  "/root/repo/src/transform/prefix_merge.cc" "src/CMakeFiles/azoo.dir/transform/prefix_merge.cc.o" "gcc" "src/CMakeFiles/azoo.dir/transform/prefix_merge.cc.o.d"
  "/root/repo/src/transform/prune.cc" "src/CMakeFiles/azoo.dir/transform/prune.cc.o" "gcc" "src/CMakeFiles/azoo.dir/transform/prune.cc.o.d"
  "/root/repo/src/transform/stride.cc" "src/CMakeFiles/azoo.dir/transform/stride.cc.o" "gcc" "src/CMakeFiles/azoo.dir/transform/stride.cc.o.d"
  "/root/repo/src/transform/suffix_merge.cc" "src/CMakeFiles/azoo.dir/transform/suffix_merge.cc.o" "gcc" "src/CMakeFiles/azoo.dir/transform/suffix_merge.cc.o.d"
  "/root/repo/src/transform/widen.cc" "src/CMakeFiles/azoo.dir/transform/widen.cc.o" "gcc" "src/CMakeFiles/azoo.dir/transform/widen.cc.o.d"
  "/root/repo/src/util/cli.cc" "src/CMakeFiles/azoo.dir/util/cli.cc.o" "gcc" "src/CMakeFiles/azoo.dir/util/cli.cc.o.d"
  "/root/repo/src/util/logging.cc" "src/CMakeFiles/azoo.dir/util/logging.cc.o" "gcc" "src/CMakeFiles/azoo.dir/util/logging.cc.o.d"
  "/root/repo/src/util/rng.cc" "src/CMakeFiles/azoo.dir/util/rng.cc.o" "gcc" "src/CMakeFiles/azoo.dir/util/rng.cc.o.d"
  "/root/repo/src/util/strings.cc" "src/CMakeFiles/azoo.dir/util/strings.cc.o" "gcc" "src/CMakeFiles/azoo.dir/util/strings.cc.o.d"
  "/root/repo/src/util/table.cc" "src/CMakeFiles/azoo.dir/util/table.cc.o" "gcc" "src/CMakeFiles/azoo.dir/util/table.cc.o.d"
  "/root/repo/src/zoo/apprng.cc" "src/CMakeFiles/azoo.dir/zoo/apprng.cc.o" "gcc" "src/CMakeFiles/azoo.dir/zoo/apprng.cc.o.d"
  "/root/repo/src/zoo/benchmark.cc" "src/CMakeFiles/azoo.dir/zoo/benchmark.cc.o" "gcc" "src/CMakeFiles/azoo.dir/zoo/benchmark.cc.o.d"
  "/root/repo/src/zoo/brill.cc" "src/CMakeFiles/azoo.dir/zoo/brill.cc.o" "gcc" "src/CMakeFiles/azoo.dir/zoo/brill.cc.o.d"
  "/root/repo/src/zoo/clamav.cc" "src/CMakeFiles/azoo.dir/zoo/clamav.cc.o" "gcc" "src/CMakeFiles/azoo.dir/zoo/clamav.cc.o.d"
  "/root/repo/src/zoo/crispr.cc" "src/CMakeFiles/azoo.dir/zoo/crispr.cc.o" "gcc" "src/CMakeFiles/azoo.dir/zoo/crispr.cc.o.d"
  "/root/repo/src/zoo/entity.cc" "src/CMakeFiles/azoo.dir/zoo/entity.cc.o" "gcc" "src/CMakeFiles/azoo.dir/zoo/entity.cc.o.d"
  "/root/repo/src/zoo/filecarve.cc" "src/CMakeFiles/azoo.dir/zoo/filecarve.cc.o" "gcc" "src/CMakeFiles/azoo.dir/zoo/filecarve.cc.o.d"
  "/root/repo/src/zoo/mesh.cc" "src/CMakeFiles/azoo.dir/zoo/mesh.cc.o" "gcc" "src/CMakeFiles/azoo.dir/zoo/mesh.cc.o.d"
  "/root/repo/src/zoo/protomata.cc" "src/CMakeFiles/azoo.dir/zoo/protomata.cc.o" "gcc" "src/CMakeFiles/azoo.dir/zoo/protomata.cc.o.d"
  "/root/repo/src/zoo/randomforest.cc" "src/CMakeFiles/azoo.dir/zoo/randomforest.cc.o" "gcc" "src/CMakeFiles/azoo.dir/zoo/randomforest.cc.o.d"
  "/root/repo/src/zoo/registry.cc" "src/CMakeFiles/azoo.dir/zoo/registry.cc.o" "gcc" "src/CMakeFiles/azoo.dir/zoo/registry.cc.o.d"
  "/root/repo/src/zoo/seqmatch.cc" "src/CMakeFiles/azoo.dir/zoo/seqmatch.cc.o" "gcc" "src/CMakeFiles/azoo.dir/zoo/seqmatch.cc.o.d"
  "/root/repo/src/zoo/snort.cc" "src/CMakeFiles/azoo.dir/zoo/snort.cc.o" "gcc" "src/CMakeFiles/azoo.dir/zoo/snort.cc.o.d"
  "/root/repo/src/zoo/yara.cc" "src/CMakeFiles/azoo.dir/zoo/yara.cc.o" "gcc" "src/CMakeFiles/azoo.dir/zoo/yara.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
