#include "input/diskimage.hh"

#include "input/corpus.hh"
#include "util/rng.hh"

namespace azoo {
namespace input {

namespace {

void
push16le(std::vector<uint8_t> &out, uint16_t v)
{
    out.push_back(static_cast<uint8_t>(v & 0xff));
    out.push_back(static_cast<uint8_t>(v >> 8));
}

void
push32le(std::vector<uint8_t> &out, uint32_t v)
{
    push16le(out, static_cast<uint16_t>(v & 0xffff));
    push16le(out, static_cast<uint16_t>(v >> 16));
}

/** Valid MS-DOS time word: hhhhh mmmmmm sssss (seconds/2). */
uint16_t
dosTime(Rng &rng)
{
    const unsigned h = rng.nextBelow(24);
    const unsigned m = rng.nextBelow(60);
    const unsigned s2 = rng.nextBelow(30);
    return static_cast<uint16_t>((h << 11) | (m << 5) | s2);
}

/** Valid MS-DOS date word: yyyyyyy mmmm ddddd (year since 1980). */
uint16_t
dosDate(Rng &rng)
{
    const unsigned y = rng.nextBelow(40);
    const unsigned m = 1 + rng.nextBelow(12);
    const unsigned d = 1 + rng.nextBelow(28);
    return static_cast<uint16_t>((y << 9) | (m << 5) | d);
}

void
emitZipMember(std::vector<uint8_t> &out, Rng &rng)
{
    // Local file header (PKZip APPNOTE layout).
    out.insert(out.end(), {'P', 'K', 0x03, 0x04});
    push16le(out, 20);                       // version needed
    push16le(out, 0);                        // flags
    push16le(out, rng.nextBool() ? 8 : 0);   // method: deflate/store
    push16le(out, dosTime(rng));
    push16le(out, dosDate(rng));
    push32le(out, static_cast<uint32_t>(rng.next())); // crc32
    const uint32_t len = 200 + rng.nextBelow(2000);
    push32le(out, len);                      // compressed size
    push32le(out, len);                      // uncompressed size
    const std::string name =
        "file" + std::to_string(rng.nextBelow(1000)) + ".dat";
    push16le(out, static_cast<uint16_t>(name.size()));
    push16le(out, 0);                        // extra length
    out.insert(out.end(), name.begin(), name.end());
    for (uint32_t i = 0; i < len; ++i)
        out.push_back(rng.nextByte());

    // Central directory header and end-of-central-directory record.
    out.insert(out.end(), {'P', 'K', 0x01, 0x02});
    out.push_back(static_cast<uint8_t>(rng.nextBelow(0x40)));
    for (int i = 0; i < 41; ++i)
        out.push_back(rng.nextByte());
    out.insert(out.end(), {'P', 'K', 0x05, 0x06, 0, 0, 0, 0});
    for (int i = 0; i < 14; ++i)
        out.push_back(rng.nextByte());
}

void
emitJpeg(std::vector<uint8_t> &out, Rng &rng)
{
    // SOI + APPn marker, then entropy-coded soup.
    out.insert(out.end(), {0xFF, 0xD8, 0xFF,
                           static_cast<uint8_t>(0xE0 +
                                                rng.nextBelow(16))});
    const size_t len = 400 + rng.nextBelow(3000);
    for (size_t i = 0; i < len; ++i)
        out.push_back(rng.nextByte());
    out.insert(out.end(), {0xFF, 0xD9}); // EOI
}

void
emitMpeg2Pack(std::vector<uint8_t> &out, Rng &rng)
{
    // Pack start code + pack header with MPEG-2 '01' prefix and
    // marker bits.
    out.insert(out.end(), {0x00, 0x00, 0x01, 0xBA});
    uint8_t b4 = 0x40;                       // '01' prefix
    b4 |= rng.nextByte() & 0x38;             // SCR bits
    b4 |= 0x04;                              // marker bit
    b4 |= rng.nextByte() & 0x03;
    out.push_back(b4);
    for (int i = 0; i < 9; ++i)
        out.push_back(rng.nextByte());
    // A video sequence header start code follows in most streams.
    out.insert(out.end(), {0x00, 0x00, 0x01, 0xB3});
    const size_t len = 500 + rng.nextBelow(4000);
    for (size_t i = 0; i < len; ++i)
        out.push_back(rng.nextByte());
}

void
emitMp4(std::vector<uint8_t> &out, Rng &rng)
{
    static const char *brands[] = {"isom", "mp42", "avc1", "M4V "};
    const char *brand = brands[rng.nextBelow(4)];
    out.insert(out.end(), {0x00, 0x00, 0x00, 0x18});
    out.insert(out.end(), {'f', 't', 'y', 'p'});
    out.insert(out.end(), brand, brand + 4);
    for (int i = 0; i < 4; ++i)
        out.push_back(0);                    // minor version
    out.insert(out.end(), brand, brand + 4); // compatible brand
    out.insert(out.end(), {'i', 's', 'o', 'm'});
    const size_t len = 500 + rng.nextBelow(4000);
    for (size_t i = 0; i < len; ++i)
        out.push_back(rng.nextByte());
}

void
emitTextWithForensics(std::vector<uint8_t> &out, Rng &rng,
                      uint64_t seed)
{
    auto text = englishLikeText(800 + rng.nextBelow(2000),
                                seed ^ rng.next());
    out.insert(out.end(), text.begin(), text.end());
    if (rng.nextBool(0.5)) {
        std::string email = "contact" +
            std::to_string(rng.nextBelow(100)) + "@mail" +
            std::to_string(rng.nextBelow(100)) + ".example.com ";
        out.insert(out.end(), email.begin(), email.end());
    }
    if (rng.nextBool(0.3)) {
        char ssn[16];
        std::snprintf(ssn, sizeof(ssn), "%03u-%02u-%04u",
                      static_cast<unsigned>(rng.nextBelow(900) + 100),
                      static_cast<unsigned>(rng.nextBelow(99) + 1),
                      static_cast<unsigned>(rng.nextBelow(9999) + 1));
        out.insert(out.end(), ssn, ssn + 11);
        out.push_back(' ');
    }
}

} // namespace

std::vector<uint8_t>
diskImage(const DiskImageConfig &cfg)
{
    Rng rng(cfg.seed);
    std::vector<uint8_t> out;
    out.reserve(cfg.bytes + 8192);

    // Embed each virus payload once in the middle portion.
    std::vector<size_t> virus_at;
    for (size_t i = 0; i < cfg.viruses.size(); ++i) {
        virus_at.push_back(cfg.bytes / 4 +
                           (i * cfg.bytes) / (2 * cfg.viruses.size()
                                              + 1));
    }
    size_t virus_idx = 0;

    while (out.size() < cfg.bytes) {
        if (virus_idx < virus_at.size() &&
            out.size() >= virus_at[virus_idx]) {
            const std::string &v = cfg.viruses[virus_idx++];
            out.insert(out.end(), v.begin(), v.end());
            continue;
        }
        switch (rng.nextBelow(6)) {
          case 0:
            emitZipMember(out, rng);
            break;
          case 1:
            emitMpeg2Pack(out, rng);
            break;
          case 2:
            emitMp4(out, rng);
            break;
          case 3:
            emitJpeg(out, rng);
            break;
          default:
            emitTextWithForensics(out, rng, cfg.seed);
            break;
        }
    }
    out.resize(cfg.bytes);
    return out;
}

} // namespace input
} // namespace azoo
