/**
 * @file
 * Textual serialization of automata (".azml" format).
 *
 * AutomataZoo distributes benchmarks as files in an open automata
 * format (ANML/MNRL). This module provides our equivalent: a simple,
 * line-oriented, diff-friendly text format that round-trips every
 * feature of core::Automaton, so generated benchmarks can be saved,
 * shared, and reloaded without regeneration.
 *
 * Format:
 * @code
 *   automaton <name>
 *   ste <id> start=<none|sod|all> report=<-|code> symbols=<*|[expr]>
 *   counter <id> target=<n> mode=<latch|pulse|rollover> report=<-|code>
 *   edge <from> <to>
 *   reset <from> <to>
 *   end
 * @endcode
 * Element lines must appear in id order starting from 0. Lines
 * beginning with '#' are comments.
 */

#ifndef AZOO_CORE_SERIALIZE_HH
#define AZOO_CORE_SERIALIZE_HH

#include <iosfwd>
#include <string>

#include "core/automaton.hh"
#include "util/status.hh"

namespace azoo {

/** Write an automaton in azml form. */
void writeAzml(std::ostream &os, const Automaton &a);

/**
 * Parse an automaton from azml text. Malformed input and limit
 * breaches return a structured Status carrying the error's line
 * number and the offending token (never a process abort).
 */
Expected<Automaton> readAzml(std::istream &is,
                             const ParseLimits &limits = ParseLimits());

/** File convenience wrapper; kIoError if @p path cannot be opened. */
Expected<Automaton> loadAzml(const std::string &path,
                             const ParseLimits &limits = ParseLimits());

/** Fail-loudly wrappers for generators and tests: fatal() with the
 *  Status message on any error. */
Automaton readAzmlOrDie(std::istream &is);
Automaton loadAzmlOrDie(const std::string &path);

void saveAzml(const std::string &path, const Automaton &a);

} // namespace azoo

#endif // AZOO_CORE_SERIALIZE_HH
