/**
 * @file
 * Engine microbenchmarks (google-benchmark): throughput of the NFA
 * interpreter as a function of active set (mesh distance), the
 * multi-DFA engine as a function of component count, regex
 * compilation, and prefix-merge speed. These quantify the engine
 * properties the paper's CPU arguments rest on: interpreter cost
 * tracks the active set; compiled-engine cost tracks component
 * count, not enabled states.
 */

#include <benchmark/benchmark.h>

#include "engine/multidfa_engine.hh"
#include "engine/nfa_engine.hh"
#include "input/dna.hh"
#include "regex/glushkov.hh"
#include "regex/parser.hh"
#include "transform/prefix_merge.hh"
#include "util/rng.hh"
#include "zoo/mesh.hh"
#include "zoo/seqmatch.hh"

namespace azoo {
namespace {

constexpr size_t kInput = 64 * 1024;

/** Interpreter throughput vs mesh distance (active set driver). */
void
BM_NfaEngine_HammingActiveSet(benchmark::State &state)
{
    const int d = static_cast<int>(state.range(0));
    const int l = 12 + 2 * d;
    Rng rng(7);
    Automaton a("h");
    for (int i = 0; i < 20; ++i)
        zoo::appendHammingFilter(a, input::randomDnaString(l, rng), d,
                                 i);
    auto in = input::randomDna(kInput, 11);
    NfaEngine e(a);
    SimOptions opts;
    opts.recordReports = false;
    double active = 0;
    for (auto _ : state) {
        auto r = e.simulate(in, opts);
        active = r.avgActiveSet();
        benchmark::DoNotOptimize(r.reportCount);
    }
    state.SetBytesProcessed(
        static_cast<int64_t>(state.iterations() * kInput));
    state.counters["active_set"] = active;
}
BENCHMARK(BM_NfaEngine_HammingActiveSet)->Arg(1)->Arg(3)->Arg(6);

/** Compiled engine throughput vs component count. */
void
BM_MultiDfa_ComponentScaling(benchmark::State &state)
{
    const int filters = static_cast<int>(state.range(0));
    Rng rng(13);
    Automaton a("lit");
    for (int i = 0; i < filters; ++i) {
        appendRegex(a, parseRegex(rng.randomString(8, "abcdef")),
                    static_cast<uint32_t>(i));
    }
    auto in = Rng(5).randomBytes(kInput);
    MultiDfaEngine e(a);
    SimOptions opts;
    opts.recordReports = false;
    for (auto _ : state) {
        auto r = e.simulate(in, opts);
        benchmark::DoNotOptimize(r.reportCount);
    }
    state.SetBytesProcessed(
        static_cast<int64_t>(state.iterations() * kInput));
    state.counters["components"] =
        static_cast<double>(e.compiledComponents());
}
BENCHMARK(BM_MultiDfa_ComponentScaling)->Arg(16)->Arg(64)->Arg(256);

/** Interpreter vs compiled engine on the same Seq Match workload. */
void
BM_Engines_SeqMatch(benchmark::State &state)
{
    zoo::ZooConfig cfg;
    cfg.scale = 0.02;
    cfg.inputBytes = kInput;
    zoo::SeqMatchParams p;
    zoo::Benchmark b = zoo::makeSeqMatchBenchmark(cfg, p);
    SimOptions opts;
    opts.recordReports = false;
    if (state.range(0) == 0) {
        NfaEngine e(b.automaton);
        for (auto _ : state)
            benchmark::DoNotOptimize(
                e.simulate(b.input, opts).reportCount);
    } else {
        MultiDfaEngine e(b.automaton);
        for (auto _ : state)
            benchmark::DoNotOptimize(
                e.simulate(b.input, opts).reportCount);
    }
    state.SetBytesProcessed(
        static_cast<int64_t>(state.iterations() * kInput));
    state.SetLabel(state.range(0) == 0 ? "NfaEngine"
                                       : "MultiDfaEngine");
}
BENCHMARK(BM_Engines_SeqMatch)->Arg(0)->Arg(1);

/** Regex -> Glushkov compile throughput. */
void
BM_Regex_Compile(benchmark::State &state)
{
    Rng rng(17);
    std::vector<std::string> patterns;
    for (int i = 0; i < 64; ++i) {
        patterns.push_back(rng.randomString(6, "abcdef") + ".*" +
                           rng.randomString(6, "abcdef") +
                           "[0-9a-f]{2,6}");
    }
    for (auto _ : state) {
        Automaton a("c");
        for (size_t i = 0; i < patterns.size(); ++i) {
            appendRegex(a, parseRegex(patterns[i]),
                        static_cast<uint32_t>(i));
        }
        benchmark::DoNotOptimize(a.size());
    }
    state.SetItemsProcessed(
        static_cast<int64_t>(state.iterations() * 64));
}
BENCHMARK(BM_Regex_Compile);

/** Prefix merge over a ClamAV-shaped automaton. */
void
BM_PrefixMerge_Clamav(benchmark::State &state)
{
    Rng rng(19);
    Automaton a("p");
    for (int i = 0; i < 200; ++i) {
        // Shared 8-byte prefix family.
        std::string sig = "MZheader" + rng.randomString(40, "abcdef");
        appendRegex(a, parseRegex(sig), static_cast<uint32_t>(i));
    }
    for (auto _ : state) {
        auto m = prefixMerge(a);
        benchmark::DoNotOptimize(m.statesAfter);
    }
    state.SetItemsProcessed(
        static_cast<int64_t>(state.iterations() * a.size()));
}
BENCHMARK(BM_PrefixMerge_Clamav);

} // namespace
} // namespace azoo

BENCHMARK_MAIN();
