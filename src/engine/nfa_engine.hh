/**
 * @file
 * NfaEngine: the enabled-set homogeneous-automata interpreter.
 *
 * This is our reimplementation of the VASim simulation semantics the
 * paper uses for all dynamic measurements (active set, report rates,
 * CPU runtime of the "VASim" rows of Table III). Per input symbol it
 * visits every *enabled* STE, tests its character set, and propagates
 * activations, so its runtime is proportional to the active set --
 * exactly the behaviour the paper's CPU discussion assumes.
 */

#ifndef AZOO_ENGINE_NFA_ENGINE_HH
#define AZOO_ENGINE_NFA_ENGINE_HH

#include <array>
#include <cstdint>
#include <vector>

#include "core/automaton.hh"
#include "engine/engine_scratch.hh"
#include "engine/report.hh"

namespace azoo {

/**
 * Interpreter over a borrowed automaton.
 *
 * The automaton must outlive the engine. Construction flattens the
 * adjacency into CSR arrays; simulate() can be called repeatedly and
 * is internally stateless between calls. Per-run state lives in an
 * EngineScratch — pass one in to amortize its O(n) arrays across
 * calls, or use the convenience overloads, which allocate a fresh
 * scratch per call. Either way the engine itself is never mutated, so
 * one engine may be shared by any number of threads simulating
 * concurrently as long as each thread uses its own scratch
 * (ParallelRunner's batch mode relies on this).
 */
class NfaEngine
{
  public:
    explicit NfaEngine(const Automaton &a);

    /** Run the automaton over @p input reusing @p scratch (the
     *  allocation-free hot path; see EngineScratch). */
    SimResult simulate(const uint8_t *input, size_t len,
                       EngineScratch &scratch,
                       const SimOptions &opts = SimOptions()) const;

    /** Convenience: run with a private, freshly allocated scratch. */
    SimResult
    simulate(const uint8_t *input, size_t len,
             const SimOptions &opts = SimOptions()) const
    {
        EngineScratch scratch;
        return simulate(input, len, scratch, opts);
    }

    SimResult
    simulate(const std::vector<uint8_t> &input,
             const SimOptions &opts = SimOptions()) const
    {
        return simulate(input.data(), input.size(), opts);
    }

    SimResult
    simulate(const std::vector<uint8_t> &input, EngineScratch &scratch,
             const SimOptions &opts = SimOptions()) const
    {
        return simulate(input.data(), input.size(), scratch, opts);
    }

  private:
    const Automaton &a_;

    // CSR adjacency over all elements (activation edges).
    std::vector<uint32_t> edgeBegin_;
    std::vector<ElementId> edgeTarget_;
    // CSR over reset edges.
    std::vector<uint32_t> resetBegin_;
    std::vector<ElementId> resetTarget_;

    // Flat copies of the hot per-element fields: the interpreter's
    // inner loop walks these instead of the (much larger) Element
    // structs, which roughly halves cache traffic per enabled state.
    std::vector<std::array<uint64_t, 4>> label_;
    std::vector<uint8_t> isCounterTarget_; ///< per element
    std::vector<uint8_t> reporting_;
    std::vector<uint32_t> reportCode_;

    std::vector<ElementId> allInputStates_;
    std::vector<ElementId> startOfDataStates_;
    std::vector<ElementId> counters_;

    /** All-input states are permanently enabled, so instead of
     *  re-enabling and re-testing them every cycle, the engine
     *  precomputes, per input byte, exactly which of them match:
     *  matchingAllInput_[s] lists the all-input states whose label
     *  contains s. This turns the dominant per-cycle cost for
     *  many-pattern benchmarks (every unanchored pattern head) into
     *  a single indexed lookup. */
    std::array<std::vector<ElementId>, 256> matchingAllInput_;
    std::vector<uint8_t> isAllInput_;
};

} // namespace azoo

#endif // AZOO_ENGINE_NFA_ENGINE_HH
