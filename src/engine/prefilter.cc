#include "engine/prefilter.hh"

#include <bit>

#include "engine/run_guard.hh"
#include "obs/obs.hh"
#include "util/logging.hh"

#if defined(__SSE2__)
#include <emmintrin.h>
#endif

namespace azoo {

void
notePrefilter(uint64_t candidates, uint64_t windowBytes,
              uint64_t skippedBytes)
{
    if (!obs::kEnabled)
        return;
    obs::Registry &reg = obs::Registry::global();
    static obs::Counter &cand = reg.counter("prefilter.candidates");
    static obs::Counter &win = reg.counter("prefilter.window_bytes");
    static obs::Counter &skip = reg.counter("prefilter.bytes_skipped");
    cand.add(candidates);
    win.add(windowBytes);
    skip.add(skippedBytes);
}

// ---------------------------------------------------------------------
// LiteralScanner

LiteralScanner::LiteralScanner(std::vector<std::string> patterns)
    : pats_(std::move(patterns))
{
    if (pats_.empty())
        panic("LiteralScanner: no patterns");
    minLen_ = pats_[0].size();
    maxLen_ = pats_[0].size();
    for (const std::string &p : pats_) {
        if (p.size() < 2)
            panic("LiteralScanner: pattern shorter than one 2-gram");
        minLen_ = std::min(minLen_, p.size());
        maxLen_ = std::max(maxLen_, p.size());
    }
    if (pats_.size() == 1)
        return; // first-byte sweep; no tables

    // Wu-Manber over 2-grams: shift_[g] is how far the probe may
    // advance when gram g ends at the probe point; 0 sends it to the
    // bucket chain of patterns whose first minLen_ bytes end in g.
    const size_t m = minLen_;
    shift_.assign(1u << 16,
                  static_cast<uint16_t>(m - 1));
    bucketHead_.assign(1u << 16, -1);
    bucketNext_.assign(pats_.size(), -1);
    for (size_t pi = 0; pi < pats_.size(); ++pi) {
        const std::string &p = pats_[pi];
        for (size_t j = 1; j < m; ++j) {
            const uint32_t g =
                gram(static_cast<uint8_t>(p[j - 1]),
                     static_cast<uint8_t>(p[j]));
            shift_[g] = std::min(shift_[g],
                                 static_cast<uint16_t>(m - 1 - j));
        }
        const uint32_t tail =
            gram(static_cast<uint8_t>(p[m - 2]),
                 static_cast<uint8_t>(p[m - 1]));
        bucketNext_[pi] = bucketHead_[tail];
        bucketHead_[tail] = static_cast<int32_t>(pi);
    }
}

const uint8_t *
LiteralScanner::findByte(const uint8_t *p, const uint8_t *end, uint8_t b)
{
    if (p >= end)
        return nullptr;
#if defined(__SSE2__)
    const __m128i needle = _mm_set1_epi8(static_cast<char>(b));
    while (end - p >= 16) {
        const __m128i block = _mm_loadu_si128(
            reinterpret_cast<const __m128i *>(p));
        const int mask =
            _mm_movemask_epi8(_mm_cmpeq_epi8(block, needle));
        if (mask != 0)
            return p + std::countr_zero(static_cast<unsigned>(mask));
        p += 16;
    }
#else
    // SWAR: a zero byte in w ^ broadcast(b) lights the corresponding
    // high bit of (w - 0x01..01) & ~w & 0x80..80.
    constexpr uint64_t kOnes = 0x0101010101010101ull;
    constexpr uint64_t kHighs = 0x8080808080808080ull;
    const uint64_t bcast = kOnes * b;
    while (static_cast<size_t>(end - p) >= 8) {
        uint64_t w;
        std::memcpy(&w, p, 8);
        w ^= bcast;
        if (((w - kOnes) & ~w & kHighs) != 0)
            break; // a match is within these 8 bytes; scalar finds it
        p += 8;
    }
#endif
    for (; p < end; ++p) {
        if (*p == b)
            return p;
    }
    return nullptr;
}

// ---------------------------------------------------------------------
// PrefilteredNfa

PrefilteredNfa::PrefilteredNfa(const Automaton &sub,
                               std::vector<ElementId> toGlobal,
                               std::vector<PrefilterPattern> patterns)
    : tables_(NfaExecTables::compile(sub))
    , img_(tables_.view())
    , toGlobal_(std::move(toGlobal))
    , scanner_([&patterns] {
        std::vector<std::string> lits;
        lits.reserve(patterns.size());
        for (PrefilterPattern &p : patterns)
            lits.push_back(p.literal);
        return lits;
    }())
{
    if (!tables_.counters.empty())
        panic("PrefilteredNfa: counter elements in a prefilter group");
    if (!tables_.startOfData.empty())
        panic("PrefilteredNfa: start-of-data starts in a prefilter "
              "group (windowed replay would miss anchored matches)");
    if (toGlobal_.size() != tables_.elementCount)
        panic("PrefilteredNfa: toGlobal size mismatch");
    radius_.reserve(patterns.size());
    for (const PrefilterPattern &p : patterns) {
        radius_.push_back(p.radius);
        maxRadius_ = std::max(maxRadius_, p.radius);
    }
}

void
PrefilteredNfa::openRun(Exec &x, uint64_t lo) const
{
    x.scratch->beginRun(tables_.elementCount, img_.counters);
    x.active = true;
    x.runStart = lo;
    x.fedEnd = lo;
    x.windowEnd = lo;
}

void
PrefilteredNfa::closeRun(Exec &x) const
{
    x.scratch->endRun(static_cast<size_t>(x.fedEnd - x.runStart));
    x.active = false;
}

void
PrefilteredNfa::feedTo(Exec &x, uint64_t target, const uint8_t *bytes,
                       uint64_t bytesBase) const
{
    if (target <= x.fedEnd)
        return;
    const uint64_t base = x.scratch->base;
    std::vector<uint64_t> &stamp = x.scratch->stamp;
    std::vector<ElementId> &cur = x.scratch->cur;
    std::vector<ElementId> &next = x.scratch->next;

    // The counter-free core of NfaEngine::simulate, with absolute
    // offsets: cycle t of this run is absolute position runStart + t.
    // No start-of-data seeding (the constructor rejects such groups);
    // all-input states enter through the per-byte index, exactly as
    // they would at these offsets in an unfiltered run.
    for (uint64_t abs = x.fedEnd; abs < target; ++abs) {
        const uint64_t t = abs - x.runStart;
        std::swap(cur, next);
        next.clear();
        x.totalEnabled += cur.size();

        const uint8_t s = bytes[abs - bytesBase];
        const uint32_t word = s >> 6;
        const uint64_t bit = uint64_t(1) << (s & 63);

        auto on_match = [&](ElementId id) {
            if (img_.reporting[id]) {
                x.reports.push_back(
                    {abs, toGlobal_[id], img_.reportCode[id]});
            }
            for (uint32_t k = img_.edgeBegin[id];
                 k < img_.edgeBegin[id + 1]; ++k) {
                const ElementId tgt = img_.edgeTarget[k];
                if (!img_.isAllInput[tgt] &&
                    stamp[tgt] != base + t + 2) {
                    stamp[tgt] = base + t + 2;
                    next.push_back(tgt);
                }
            }
        };

        for (auto id : cur) {
            if (img_.label[id][word] & bit)
                on_match(id);
        }
        for (uint32_t k = img_.maiBegin[s]; k < img_.maiBegin[s + 1];
             ++k) {
            on_match(img_.maiTarget[k]);
        }
    }
    x.stats.windowBytes += target - x.fedEnd;
    x.fedEnd = target;
}

void
PrefilteredNfa::applyHit(Exec &x, uint64_t e, uint32_t pat,
                         uint64_t avail, const uint8_t *bytes,
                         uint64_t bytesBase) const
{
    ++x.stats.candidates;
    const uint64_t lo = e >= maxRadius_ ? e - maxRadius_ : 0;
    const uint64_t hi = e + radius_[pat] + 1; // half-open right edge
    if (x.active && lo > x.windowEnd) {
        // Disjoint windows: drain the old engagement, then start
        // fresh. lo is monotone in hit order (global left reach), so
        // no later hit can need the closed window's state.
        feedTo(x, std::min(x.windowEnd, avail), bytes, bytesBase);
        closeRun(x);
    }
    if (!x.active)
        openRun(x, lo);
    x.windowEnd = std::max(x.windowEnd, hi);
}

PrefilteredNfa::RunResult
PrefilteredNfa::run(const uint8_t *input, size_t len,
                    const RunGuard *guard, EngineScratch &scratch) const
{
    RunResult res;
    res.symbols = len;
    Exec x;
    x.scratch = &scratch;

    std::vector<std::pair<uint64_t, uint32_t>> hits;
    uint64_t done = 0;
    while (done < len) {
        if (guard) {
            Status st = guard->check(done);
            if (!st.ok()) {
                res.symbols = done;
                res.guardStatus = std::move(st);
                break;
            }
        }
        const uint64_t segEnd =
            std::min<uint64_t>(len, done + kGuardCheckIntervalSymbols);
        hits.clear();
        scanner_.scan(input, static_cast<size_t>(segEnd),
                      static_cast<size_t>(done),
                      [&](size_t end, uint32_t pi) {
                          hits.emplace_back(end, pi);
                      });
        std::sort(hits.begin(), hits.end());
        for (const auto &[e, pat] : hits)
            applyHit(x, e, pat, segEnd, input, 0);
        if (x.active)
            feedTo(x, std::min(x.windowEnd, segEnd), input, 0);
        done = segEnd;
    }
    if (x.active)
        closeRun(x);

    x.stats.skippedBytes = res.symbols - x.stats.windowBytes;
    notePrefilter(x.stats.candidates, x.stats.windowBytes,
                  x.stats.skippedBytes);
    res.reports = std::move(x.reports);
    res.totalEnabled = x.totalEnabled;
    res.stats = x.stats;
    return res;
}

// ---------------------------------------------------------------------
// PrefilteredNfa::Session

PrefilteredNfa::Session::Session(const PrefilteredNfa &pf)
    : pf_(pf)
{
    x_.scratch = &scratch_;
}

void
PrefilteredNfa::Session::feed(const uint8_t *data, size_t len)
{
    buf_.insert(buf_.end(), data, data + len);
    const uint64_t avail = pos_ + len;

    hits_.clear();
    pf_.scanner_.scan(buf_.data(), buf_.size(),
                      static_cast<size_t>(pos_ - bufBase_),
                      [&](size_t end, uint32_t pi) {
                          hits_.emplace_back(bufBase_ + end, pi);
                      });
    std::sort(hits_.begin(), hits_.end());
    for (const auto &[e, pat] : hits_)
        pf_.applyHit(x_, e, pat, avail, buf_.data(), bufBase_);
    if (x_.active)
        pf_.feedTo(x_, std::min(x_.windowEnd, avail), buf_.data(),
                   bufBase_);
    pos_ = avail;
    x_.stats.skippedBytes = pos_ - x_.stats.windowBytes;

    notePrefilter(x_.stats.candidates - flushedCandidates_,
                  x_.stats.windowBytes - flushedWindowBytes_,
                  x_.stats.skippedBytes - flushedSkipped_);
    flushedCandidates_ = x_.stats.candidates;
    flushedWindowBytes_ = x_.stats.windowBytes;
    flushedSkipped_ = x_.stats.skippedBytes;

    // Compact the rolling buffer. Future work only back-reads
    //  - scanner starts >= pos_ + 1 - maxLen (straddling candidates),
    //  - window bytes from >= min(fedEnd, pos_ - maxRadius) (an
    //    engagement extended by a hit at e >= pos_ has lo >= pos_ -
    //    maxRadius, and fedEnd never trails the last fed target),
    // so keeping maxRadius + maxLen bytes behind pos_ is safe.
    const uint64_t keep = pf_.maxRadius_ + pf_.scanner_.maxLen();
    if (buf_.size() > 4 * keep + 4096 && pos_ - bufBase_ > keep) {
        const size_t drop =
            static_cast<size_t>(pos_ - keep - bufBase_);
        buf_.erase(buf_.begin(),
                   buf_.begin() + static_cast<ptrdiff_t>(drop));
        bufBase_ += drop;
    }
}

void
PrefilteredNfa::Session::reset()
{
    if (x_.active)
        pf_.closeRun(x_);
    x_.runStart = x_.fedEnd = x_.windowEnd = 0;
    x_.totalEnabled = 0;
    x_.reports.clear();
    x_.stats = PrefilterStats();
    buf_.clear();
    bufBase_ = 0;
    pos_ = 0;
    hits_.clear();
    flushedCandidates_ = 0;
    flushedWindowBytes_ = 0;
    flushedSkipped_ = 0;
}

size_t
PrefilteredNfa::footprintBytes() const
{
    const NfaExecTables &t = tables_;
    size_t n = sizeof(*this);
    n += (t.edgeBegin.capacity() + t.resetBegin.capacity() +
          t.reportCode.capacity() + t.counterTarget.capacity() +
          t.maiBegin.capacity()) * sizeof(uint32_t);
    n += (t.edgeTarget.capacity() + t.resetTarget.capacity() +
          t.allInput.capacity() + t.startOfData.capacity() +
          t.counters.capacity() + t.maiTarget.capacity()) *
        sizeof(ElementId);
    n += t.label.capacity() * sizeof(t.label[0]);
    n += t.reporting.capacity() + t.isCounter.capacity() +
        t.isAllInput.capacity() + t.counterMode.capacity();
    n += toGlobal_.capacity() * sizeof(ElementId);
    n += radius_.capacity() * sizeof(uint32_t);
    n += scanner_.footprintBytes();
    return n;
}

} // namespace azoo
