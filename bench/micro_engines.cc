/**
 * @file
 * Engine microbenchmarks (google-benchmark): throughput of the NFA
 * interpreter as a function of active set (mesh distance), the
 * multi-DFA engine as a function of component count, the lazy-DFA
 * hybrid against the interpreter it replaces as a fallback, regex
 * compilation, and prefix-merge speed. These quantify the engine
 * properties the paper's CPU arguments rest on: interpreter cost
 * tracks the active set; compiled-engine cost tracks component
 * count, not enabled states.
 *
 * Extra flags beyond google-benchmark's own: --json PATH writes every
 * run as a bench::JsonReport row (benchmark name, engine label,
 * threads, symbols/sec, cache flushes) alongside the console table;
 * --metrics[=PATH] dumps the azoo::obs registry snapshot after the
 * runs (stdout, or PATH when given).
 */

#include <benchmark/benchmark.h>

#include <iostream>

#include "bench/common.hh"
#include "engine/lazy_dfa_engine.hh"
#include "engine/multidfa_engine.hh"
#include "engine/nfa_engine.hh"
#include "input/dna.hh"
#include "regex/glushkov.hh"
#include "regex/parser.hh"
#include "transform/prefix_merge.hh"
#include "util/rng.hh"
#include "zoo/mesh.hh"
#include "zoo/registry.hh"
#include "zoo/seqmatch.hh"

namespace azoo {
namespace {

constexpr size_t kInput = 64 * 1024;

/** Interpreter throughput vs mesh distance (active set driver). */
void
BM_NfaEngine_HammingActiveSet(benchmark::State &state)
{
    const int d = static_cast<int>(state.range(0));
    const int l = 12 + 2 * d;
    Rng rng(7);
    Automaton a("h");
    for (int i = 0; i < 20; ++i)
        zoo::appendHammingFilter(a, input::randomDnaString(l, rng), d,
                                 i);
    auto in = input::randomDna(kInput, 11);
    NfaEngine e(a);
    SimOptions opts;
    opts.recordReports = false;
    double active = 0;
    for (auto _ : state) {
        auto r = e.simulate(in, opts);
        active = r.avgActiveSet();
        benchmark::DoNotOptimize(r.reportCount);
    }
    state.SetBytesProcessed(
        static_cast<int64_t>(state.iterations() * kInput));
    state.counters["active_set"] = active;
}
BENCHMARK(BM_NfaEngine_HammingActiveSet)->Arg(1)->Arg(3)->Arg(6);

/** Compiled engine throughput vs component count. */
void
BM_MultiDfa_ComponentScaling(benchmark::State &state)
{
    const int filters = static_cast<int>(state.range(0));
    Rng rng(13);
    Automaton a("lit");
    for (int i = 0; i < filters; ++i) {
        appendRegex(a, parseRegexOrDie(rng.randomString(8, "abcdef")),
                    static_cast<uint32_t>(i));
    }
    auto in = Rng(5).randomBytes(kInput);
    MultiDfaEngine e(a);
    SimOptions opts;
    opts.recordReports = false;
    for (auto _ : state) {
        auto r = e.simulate(in, opts);
        benchmark::DoNotOptimize(r.reportCount);
    }
    state.SetBytesProcessed(
        static_cast<int64_t>(state.iterations() * kInput));
    state.counters["components"] =
        static_cast<double>(e.compiledComponents());
}
BENCHMARK(BM_MultiDfa_ComponentScaling)->Arg(16)->Arg(64)->Arg(256);

/** Interpreter vs compiled engine on the same Seq Match workload. */
void
BM_Engines_SeqMatch(benchmark::State &state)
{
    zoo::ZooConfig cfg;
    cfg.scale = 0.02;
    cfg.inputBytes = kInput;
    zoo::SeqMatchParams p;
    zoo::Benchmark b = zoo::makeSeqMatchBenchmark(cfg, p);
    SimOptions opts;
    opts.recordReports = false;
    if (state.range(0) == 0) {
        NfaEngine e(b.automaton);
        for (auto _ : state)
            benchmark::DoNotOptimize(
                e.simulate(b.input, opts).reportCount);
    } else {
        MultiDfaEngine e(b.automaton);
        for (auto _ : state)
            benchmark::DoNotOptimize(
                e.simulate(b.input, opts).reportCount);
    }
    state.SetBytesProcessed(
        static_cast<int64_t>(state.iterations() * kInput));
    state.SetLabel(state.range(0) == 0 ? "NfaEngine"
                                       : "MultiDfaEngine");
}
BENCHMARK(BM_Engines_SeqMatch)->Arg(0)->Arg(1);

/**
 * Lazy-DFA hybrid vs the interpreter on an AP PRNG workload — the
 * shape MultiDfaEngine used to hand to its NfaEngine fallback. The
 * PRNG chains keep a huge enabled set (every chain advances on every
 * symbol) but visit only a handful of distinct state-sets, so the
 * interpreter pays O(active set) per symbol while the lazy engine
 * pays one cached-table probe.
 */
void
BM_Engines_ApPrngFallback(benchmark::State &state)
{
    zoo::ZooConfig cfg;
    cfg.scale = 0.05;
    cfg.inputBytes = kInput;
    zoo::Benchmark b = zoo::makeBenchmark("AP PRNG 8-sided", cfg);
    SimOptions opts;
    opts.recordReports = false;
    opts.computeActiveSet = false;
    if (state.range(0) == 0) {
        NfaEngine e(b.automaton);
        EngineScratch scratch;
        for (auto _ : state) {
            benchmark::DoNotOptimize(
                e.simulate(b.input, scratch, opts).reportCount);
        }
    } else {
        LazyDfaEngine e(b.automaton);
        for (auto _ : state) {
            benchmark::DoNotOptimize(
                e.simulate(b.input, opts).reportCount);
        }
        state.counters["lazy_states"] =
            static_cast<double>(e.cachedStates());
        state.counters["symbol_classes"] =
            static_cast<double>(e.symbolClasses());
        state.counters["cache_flushes"] =
            static_cast<double>(e.cacheFlushes());
    }
    state.SetBytesProcessed(
        static_cast<int64_t>(state.iterations() * kInput));
    state.SetLabel(state.range(0) == 0 ? "NfaEngine"
                                       : "LazyDfaEngine");
}
BENCHMARK(BM_Engines_ApPrngFallback)->Arg(0)->Arg(1);

/**
 * Lazy-DFA cache-budget sweep on Seq Match (many distinct state-sets):
 * arg is the transition-cache byte budget. Small budgets force
 * whole-cache flushes mid-stream; the cache_flushes counter shows how
 * often, and the throughput column what each flush costs.
 */
void
BM_LazyDfa_CacheBudget(benchmark::State &state)
{
    zoo::ZooConfig cfg;
    cfg.scale = 0.02;
    cfg.inputBytes = kInput;
    zoo::SeqMatchParams p;
    zoo::Benchmark b = zoo::makeSeqMatchBenchmark(cfg, p);
    LazyDfaOptions lo;
    lo.cacheBytes = static_cast<size_t>(state.range(0));
    LazyDfaEngine e(b.automaton, lo);
    SimOptions opts;
    opts.recordReports = false;
    opts.computeActiveSet = false;
    for (auto _ : state)
        benchmark::DoNotOptimize(e.simulate(b.input, opts).reportCount);
    state.SetBytesProcessed(
        static_cast<int64_t>(state.iterations() * kInput));
    state.counters["cache_flushes"] =
        static_cast<double>(e.cacheFlushes());
    state.counters["lazy_states"] =
        static_cast<double>(e.cachedStates());
    state.SetLabel("LazyDfaEngine");
}
BENCHMARK(BM_LazyDfa_CacheBudget)
    ->Arg(16 << 10)
    ->Arg(256 << 10)
    ->Arg(8 << 20);

/** Regex -> Glushkov compile throughput. */
void
BM_Regex_Compile(benchmark::State &state)
{
    Rng rng(17);
    std::vector<std::string> patterns;
    for (int i = 0; i < 64; ++i) {
        patterns.push_back(rng.randomString(6, "abcdef") + ".*" +
                           rng.randomString(6, "abcdef") +
                           "[0-9a-f]{2,6}");
    }
    for (auto _ : state) {
        Automaton a("c");
        for (size_t i = 0; i < patterns.size(); ++i) {
            appendRegex(a, parseRegexOrDie(patterns[i]),
                        static_cast<uint32_t>(i));
        }
        benchmark::DoNotOptimize(a.size());
    }
    state.SetItemsProcessed(
        static_cast<int64_t>(state.iterations() * 64));
}
BENCHMARK(BM_Regex_Compile);

/** Prefix merge over a ClamAV-shaped automaton. */
void
BM_PrefixMerge_Clamav(benchmark::State &state)
{
    Rng rng(19);
    Automaton a("p");
    for (int i = 0; i < 200; ++i) {
        // Shared 8-byte prefix family.
        std::string sig = "MZheader" + rng.randomString(40, "abcdef");
        appendRegex(a, parseRegexOrDie(sig), static_cast<uint32_t>(i));
    }
    for (auto _ : state) {
        auto m = prefixMerge(a);
        benchmark::DoNotOptimize(m.statesAfter);
    }
    state.SetItemsProcessed(
        static_cast<int64_t>(state.iterations() * a.size()));
}
BENCHMARK(BM_PrefixMerge_Clamav);

/**
 * Console output plus JSON capture: every iteration run is recorded
 * as a bench::JsonRow. The engine label comes from SetLabel when the
 * benchmark set one, else from the benchmark name's prefix.
 */
class JsonCaptureReporter : public benchmark::ConsoleReporter
{
  public:
    void
    ReportRuns(const std::vector<Run> &runs) override
    {
        for (const Run &run : runs) {
            if (run.run_type != Run::RT_Iteration || run.error_occurred)
                continue;
            bench::JsonRow row;
            row.benchmark = run.benchmark_name();
            if (run.report_label.empty()) {
                // "BM_NfaEngine_HammingActiveSet/3" -> "NfaEngine".
                std::string n = row.benchmark;
                if (n.rfind("BM_", 0) == 0)
                    n = n.substr(3);
                row.engine = n.substr(0, n.find('_'));
            } else {
                row.engine = run.report_label;
            }
            row.threads = static_cast<uint64_t>(run.threads);
            auto bps = run.counters.find("bytes_per_second");
            if (bps != run.counters.end())
                row.symbolsPerSec = bps->second.value;
            auto fl = run.counters.find("cache_flushes");
            if (fl != run.counters.end())
                row.cacheFlushes =
                    static_cast<uint64_t>(fl->second.value);
            for (const auto &[key, c] : run.counters) {
                if (key != "bytes_per_second" && key != "cache_flushes")
                    row.extra.emplace_back(key, c.value);
            }
            report.add(std::move(row));
        }
        ConsoleReporter::ReportRuns(runs);
    }

    bench::JsonReport report{"micro_engines"};
};

} // namespace
} // namespace azoo

int
main(int argc, char **argv)
{
    // Peel off --json / --metrics before google-benchmark sees (and
    // rejects) them.
    std::string jsonPath;
    std::string metricsPath;
    bool metrics = false;
    std::vector<char *> args;
    for (int i = 0; i < argc; ++i) {
        const std::string a = argv[i];
        if (a == "--json" && i + 1 < argc) {
            jsonPath = argv[++i];
        } else if (a.rfind("--json=", 0) == 0) {
            jsonPath = a.substr(7);
        } else if (a == "--metrics") {
            metrics = true;
        } else if (a.rfind("--metrics=", 0) == 0) {
            metrics = true;
            metricsPath = a.substr(10);
        } else {
            args.push_back(argv[i]);
        }
    }
    int filtered = static_cast<int>(args.size());
    benchmark::Initialize(&filtered, args.data());
    if (benchmark::ReportUnrecognizedArguments(filtered, args.data()))
        return 1;
    azoo::JsonCaptureReporter reporter;
    benchmark::RunSpecifiedBenchmarks(&reporter);
    benchmark::Shutdown();
    reporter.report.writeFile(jsonPath);
    if (metrics) {
        const std::string json =
            azoo::obs::Registry::global().toJson();
        if (metricsPath.empty()) {
            std::cout << json << "\n";
        } else {
            std::ofstream f(metricsPath);
            f << json << "\n";
            if (!f)
                azoo::fatal(azoo::cat(
                    "cannot write --metrics output to ", metricsPath));
        }
    }
    return 0;
}
