/**
 * @file
 * Ablation: the automata transformations across the suite.
 *
 * Quantifies, per benchmark, what the optimization/transformation
 * passes do: prefix-merge compression (the Table I "Compressed
 * states" column, here with merge time), dead-state pruning, and the
 * effect of prefix merging on the interpreter's active set -- the
 * mechanism by which VASim's optimizations speed up CPU simulation.
 */

#include <iostream>

#include "bench/common.hh"
#include "core/stats.hh"
#include "engine/nfa_engine.hh"
#include "transform/prefix_merge.hh"
#include "transform/prune.hh"
#include "util/table.hh"
#include "util/timer.hh"
#include "zoo/registry.hh"

using namespace azoo;

int
main(int argc, char **argv)
{
    bench::BenchConfig cfg = bench::parseBenchFlags(argc, argv);

    std::cout << "Transformation ablation (scale=" << cfg.zoo.scale
              << ", sim=" << cfg.simBytes << "B)\n\n";

    Table t({"Benchmark", "States", "PrefixMerged", "Reduction",
             "Merge(s)", "Pruned", "ActiveSet", "MergedActiveSet"});

    for (const auto &info : zoo::allBenchmarks()) {
        zoo::Benchmark b = info.make(cfg.zoo);
        const uint64_t states = b.automaton.size();

        Timer mt;
        MergeResult merged = prefixMerge(b.automaton);
        const double merge_s = mt.seconds();

        PruneResult pruned = pruneDeadStates(b.automaton);

        SimOptions opts;
        opts.recordReports = false;
        NfaEngine plain(b.automaton);
        NfaEngine opt(merged.automaton);
        const double act_plain =
            plain.simulate(b.input.data(), cfg.simBytes, opts)
                .avgActiveSet();
        const double act_merged =
            opt.simulate(b.input.data(), cfg.simBytes, opts)
                .avgActiveSet();

        t.addRow({info.name, Table::num(states),
                  Table::num(merged.statesAfter),
                  Table::ratio(merged.reduction(), 2),
                  Table::fixed(merge_s, 2),
                  Table::num(pruned.automaton.size()),
                  Table::fixed(act_plain, 1),
                  Table::fixed(act_merged, 1)});
        std::cerr << "  [" << info.name << "]\n";
    }
    t.print(std::cout);

    std::cout << "\nPrefix merging collapses shared pattern prefixes "
                 "(Entity Resolution and the family-structured YARA "
                 "rules compress hardest) and correspondingly "
                 "shrinks the enabled set the CPU interpreter must "
                 "walk. Pruning strips the Random Forest pad chains "
                 "-- they are dead states by design, which is the "
                 "point of the padding experiment.\n";
    return 0;
}
