/**
 * @file
 * Brill part-of-speech-tagging benchmark.
 *
 * Brill rules rewrite tags based on lexical/tag context. Following
 * the open-source BrillPlusPlus flow the paper adopts, each rule is a
 * context template over the tagged token stream (our encoding: word
 * characters, one tag byte 0x80+t, space). AutomataZoo uses 5,000
 * rules ("adding rules ... enables better evaluation of trade-offs"),
 * which we generate from the standard Brill template inventory:
 * PREVTAG, NEXTTAG, PREVWORD, SURROUNDTAG, PREV2TAG.
 */

#ifndef AZOO_ZOO_BRILL_HH
#define AZOO_ZOO_BRILL_HH

#include "zoo/benchmark.hh"

namespace azoo {
namespace zoo {

/** Number of part-of-speech tags in the synthetic tagset. */
constexpr int kBrillTags = 32;

/** Build the Brill benchmark: scaled(5946) rule subgraphs (Table I)
 *  over a tagged Brown-like corpus. */
Benchmark makeBrillBenchmark(const ZooConfig &cfg);

} // namespace zoo
} // namespace azoo

#endif // AZOO_ZOO_BRILL_HH
