#include "artifact/mmap_file.hh"

#include "util/logging.hh"

#if defined(__unix__) || defined(__APPLE__)
#define AZOO_HAVE_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#else
#define AZOO_HAVE_MMAP 0
#endif

namespace azoo {
namespace artifact {

#if AZOO_HAVE_MMAP

Expected<MappedFile>
MappedFile::open(const std::string &path)
{
    int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0) {
        return Status(ErrorCode::kIoError,
                      cat("cannot open '", path, "': ",
                          std::strerror(errno)));
    }
    struct stat st;
    if (::fstat(fd, &st) != 0) {
        int err = errno;
        ::close(fd);
        return Status(ErrorCode::kIoError,
                      cat("cannot stat '", path, "': ",
                          std::strerror(err)));
    }
    if (!S_ISREG(st.st_mode)) {
        ::close(fd);
        return Status(ErrorCode::kIoError,
                      cat("'", path, "' is not a regular file"));
    }

    MappedFile f;
    f.size_ = static_cast<size_t>(st.st_size);
    if (f.size_ > 0) {
        void *addr =
            ::mmap(nullptr, f.size_, PROT_READ, MAP_PRIVATE, fd, 0);
        if (addr == MAP_FAILED) {
            int err = errno;
            ::close(fd);
            return Status(ErrorCode::kIoError,
                          cat("cannot mmap '", path, "': ",
                              std::strerror(err)));
        }
        f.addr_ = addr;
    }
    // The mapping survives the close; the fd is not needed again.
    ::close(fd);
    return f;
}

void
MappedFile::reset()
{
    if (addr_ != nullptr)
        ::munmap(addr_, size_);
    addr_ = nullptr;
    size_ = 0;
}

#else // !AZOO_HAVE_MMAP

Expected<MappedFile>
MappedFile::open(const std::string &path)
{
    return Status(ErrorCode::kUnsupported,
                  cat("mmap unavailable on this platform for '", path,
                      "'"));
}

void
MappedFile::reset()
{
    addr_ = nullptr;
    size_ = 0;
}

#endif

} // namespace artifact
} // namespace azoo
