/**
 * @file
 * Compiled automaton artifacts: the `.azoox` container.
 *
 * An artifact freezes a compiled `Automaton` into a single versioned
 * binary file that loads in milliseconds — the HW/RE "serialized
 * pattern database" idea applied to the zoo. Two section groups serve
 * two consumers:
 *
 *  - the *graph* sections (CSET/ELEM/EDGE/RSTE) are a compact,
 *    normative encoding of the automaton (variable-width state ids,
 *    interned character sets, per-state dense/sparse/chain edge
 *    encodings). materialize() rebuilds an `Automaton` from them,
 *    identical element-for-element and edge-for-edge to the one that
 *    was saved;
 *
 *  - the optional *EXEC* section is a fixed-width image of
 *    `NfaExecTables` laid out so `NfaEngine` can execute it in place
 *    from the mmap-ed file — offsets only, no pointer fixups, zero
 *    per-state allocation at load time.
 *
 * The byte-level layout is specified normatively in
 * docs/ARTIFACT_FORMAT.md; this header and that document must change
 * together. Loading is hardened against hostile files: every failure
 * is a structured Status (kParseError / kVersionMismatch /
 * kChecksumMismatch / kIoError), never a crash.
 */

#ifndef AZOO_ARTIFACT_ARTIFACT_HH
#define AZOO_ARTIFACT_ARTIFACT_HH

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "analysis/profile.hh"
#include "artifact/mmap_file.hh"
#include "core/automaton.hh"
#include "engine/exec_image.hh"
#include "util/status.hh"

namespace azoo {
namespace artifact {

/** File magic: \x89 "AZOOX" \r \n (PNG-style: the high bit catches
 *  7-bit transport corruption, the CRLF catches newline translation). */
inline constexpr std::array<uint8_t, 8> kMagic = {
    0x89, 'A', 'Z', 'O', 'O', 'X', 0x0D, 0x0A};

/** Format revision written by this library. Readers accept any minor
 *  revision of a known major; an unknown major is kVersionMismatch. */
inline constexpr uint16_t kVersionMajor = 1;
inline constexpr uint16_t kVersionMinor = 1;

/** Header flag bits 0..15 are ignorable features; 16..31 are
 *  must-understand (an unknown set bit rejects the file). */
inline constexpr uint32_t kFlagExecImage = 1u << 0;
inline constexpr uint32_t kMustUnderstandMask = 0xFFFF0000u;

/** Fixed header size; the section table follows immediately. */
inline constexpr size_t kHeaderSize = 64;

/** Size of one section-table entry. */
inline constexpr size_t kSectionEntrySize = 24;

/** CRC-32/IEEE (reflected, poly 0xEDB88320, init/xor 0xFFFFFFFF) —
 *  the zlib/PNG checksum; crc32 over "123456789" is 0xCBF43926. */
uint32_t crc32(const uint8_t *data, size_t len);

/** Writer knobs. */
struct WriteOptions {
    /** Include the zero-copy EXEC image (default). Omitting it
     *  roughly halves file size but forces materialize() on load. */
    bool execImage = true;
    /** Include the PROF section: one analysis::ComponentProfile per
     *  connected component, so planners can route components to
     *  engines without re-running inference at load time. */
    bool componentProfiles = false;
};

/** One section-table row, decoded. */
struct SectionInfo {
    std::string tag; ///< four ASCII characters, e.g. "ELEM"
    uint64_t offset = 0;
    uint64_t length = 0;
};

/** What the writer produced; azoo_compile prints this. */
struct ArtifactInfo {
    uint64_t fileBytes = 0;
    uint64_t elementCount = 0;
    uint64_t edgeCount = 0;
    uint64_t resetEdgeCount = 0;
    uint8_t idWidth = 4;        ///< bytes per state id (1, 2, or 4)
    uint32_t charsetCount = 0;  ///< interned charset pool size
    uint32_t profileCount = 0;  ///< PROF entries (0 unless requested)
    /** Edge-list encoding census over both EDGE and RSTE streams. */
    uint64_t listsEmpty = 0;
    uint64_t listsChain = 0;
    uint64_t listsSparse = 0;
    uint64_t listsDense = 0;
    std::vector<SectionInfo> sections;
};

/** Serialize @p a to artifact bytes. kInvalidArgument when @p a fails
 *  its own structural check() (only valid automata are writable). */
Expected<std::vector<uint8_t>> writeArtifact(const Automaton &a,
                                             const WriteOptions &opts = {});

/** writeArtifact + atomic-ish write to @p path (kIoError on failure),
 *  returning the section/encoding summary. */
Expected<ArtifactInfo> saveArtifact(const std::string &path,
                                    const Automaton &a,
                                    const WriteOptions &opts = {});

/** Loader knobs. */
struct LoadOptions {
    /** mmap the file and execute in place when possible; on failure
     *  (or false) fall back to a private heap copy. */
    bool preferMmap = true;
    /** Verify the header CRC over the payload before parsing. The
     *  fuzzer disables this to reach the section parsers. */
    bool verifyChecksum = true;
    /** Reject files larger than this (heap fallback allocates). */
    uint64_t maxFileBytes = uint64_t(1) << 30;
};

/**
 * A validated, loaded artifact. Owns its backing storage (mmap or
 * heap) and hands out views into it; move-only, and views remain
 * valid across moves (the backing buffer address is stable).
 *
 * Construction (via loadArtifact*) performs full structural
 * validation of the header, section table, and — when present — the
 * EXEC image, in O(elements + edges) with zero per-state allocation.
 * The graph sections are validated lazily by materialize().
 */
class LoadedArtifact
{
  public:
    LoadedArtifact(LoadedArtifact &&) = default;
    LoadedArtifact &operator=(LoadedArtifact &&) = default;
    LoadedArtifact(const LoadedArtifact &) = delete;
    LoadedArtifact &operator=(const LoadedArtifact &) = delete;

    /** Automaton name from the META section. */
    const std::string &name() const { return name_; }

    uint16_t versionMajor() const { return versionMajor_; }
    uint16_t versionMinor() const { return versionMinor_; }
    uint64_t fileBytes() const { return size_; }
    uint64_t elementCount() const { return elementCount_; }
    uint64_t edgeCount() const { return edgeCount_; }
    uint64_t resetEdgeCount() const { return resetEdgeCount_; }

    /** True when backed by an mmap (false: private heap copy). */
    bool mapped() const { return map_.size() > 0; }

    /** Decoded section table, in file order. */
    const std::vector<SectionInfo> &sections() const { return sections_; }

    /** True when the file carries a validated EXEC image. */
    bool hasExecImage() const { return hasExec_; }

    /** True when the file carries a validated PROF section. */
    bool hasProfiles() const { return hasProf_; }

    /** Component profiles from the PROF section, in component-id
     *  order; empty unless hasProfiles(). Decoded (and validated) at
     *  load time — bit-identical to what inferProfiles() produced at
     *  compile time. */
    const std::vector<analysis::ComponentProfile> &
    componentProfiles() const
    {
        return profiles_;
    }

    /**
     * The zero-copy execution image; panics unless hasExecImage().
     * Valid while this LoadedArtifact is alive; feed it straight to
     * `NfaEngine(const NfaExecImage &)`.
     */
    const NfaExecImage &execImage() const;

    /**
     * Rebuild the full Automaton from the graph sections (for
     * engines that need the graph: lazy-DFA, transforms, analysis).
     * Identical to the saved automaton. kParseError on malformed
     * graph sections, kLimitExceeded when @p limits trip.
     */
    Expected<Automaton> materialize(const ParseLimits &limits = {}) const;

  private:
    LoadedArtifact() = default;
    friend struct ArtifactParser;
    friend Expected<LoadedArtifact>
    loadArtifactImpl(MappedFile map, std::vector<uint8_t> heap,
                     const LoadOptions &opts);

    const uint8_t *
    base() const
    {
        return mapped() ? map_.data() : heap_.data();
    }

    // Backing storage: exactly one of these is non-empty.
    MappedFile map_;
    std::vector<uint8_t> heap_;
    const uint8_t *data_ = nullptr; // == base(), cached
    uint64_t size_ = 0;

    uint16_t versionMajor_ = 0;
    uint16_t versionMinor_ = 0;
    uint32_t flags_ = 0;
    uint64_t elementCount_ = 0;
    uint64_t edgeCount_ = 0;
    uint64_t resetEdgeCount_ = 0;
    uint8_t idWidth_ = 0;
    std::string name_;
    std::vector<SectionInfo> sections_;

    // Graph section bounds (offset, length into data_).
    uint64_t csetOff_ = 0, csetLen_ = 0;
    uint64_t elemOff_ = 0, elemLen_ = 0;
    uint64_t edgeOff_ = 0, edgeLen_ = 0;
    uint64_t rsteOff_ = 0, rsteLen_ = 0;

    bool hasExec_ = false;
    NfaExecImage exec_;

    bool hasProf_ = false;
    std::vector<analysis::ComponentProfile> profiles_;
};

/** Map (or read) @p path and validate it as an artifact. */
Expected<LoadedArtifact> loadArtifact(const std::string &path,
                                      const LoadOptions &opts = {});

/** Validate an in-memory artifact; takes ownership of the bytes.
 *  Used by the tests and the fuzzer. */
Expected<LoadedArtifact> loadArtifactFromBytes(std::vector<uint8_t> bytes,
                                               const LoadOptions &opts = {});

/**
 * Deep semantic equality: same name, element count, and per-element
 * kind/start/reporting/code/symbols/target/mode plus identical edge
 * lists in identical order. The round-trip criterion used by
 * `azoo_compile --verify` and the artifact tests.
 */
bool automataIdentical(const Automaton &x, const Automaton &y);

} // namespace artifact
} // namespace azoo

#endif // AZOO_ARTIFACT_ARTIFACT_HH
