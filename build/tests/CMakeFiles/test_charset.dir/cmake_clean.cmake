file(REMOVE_RECURSE
  "CMakeFiles/test_charset.dir/test_charset.cc.o"
  "CMakeFiles/test_charset.dir/test_charset.cc.o.d"
  "test_charset"
  "test_charset.pdb"
  "test_charset[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_charset.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
