# Empty dependencies file for file_recovery.
# This may be replaced when dependencies are built.
