/**
 * @file
 * CART decision tree over byte features with value binning.
 *
 * This is the native (non-automata) decision-tree substrate: the
 * trainer behind all three Random Forest benchmark variants and the
 * inference engine standing in for scikit-learn in Table IV. Trees
 * grow best-first (largest impurity decrease first) so the paper's
 * max_leaf_nodes hyperparameter has scikit-learn semantics.
 */

#ifndef AZOO_ML_DECISION_TREE_HH
#define AZOO_ML_DECISION_TREE_HH

#include <cstdint>
#include <vector>

#include "ml/dataset.hh"
#include "util/rng.hh"

namespace azoo {
namespace ml {

/** Training hyperparameters. */
struct TreeParams {
    int maxLeaves = 400;
    int maxDepth = 8;
    /** Features examined per split; 0 means sqrt(numFeatures). */
    int featureSubset = 0;
    /** Value bins; splits test (value >> shift) <= threshold. */
    int bins = 16;
    int minSamplesLeaf = 1;
};

/** One trained CART tree. */
class DecisionTree
{
  public:
    /** Internal or leaf node; leaves have feature == -1. */
    struct Node {
        int feature = -1;
        uint8_t threshold = 0; ///< binned: go left if bin <= threshold
        int left = -1;
        int right = -1;
        int label = -1;        ///< leaves only
    };

    /** A root-to-leaf path as per-feature bin intervals. */
    struct Path {
        /** (feature, loBin, hiBin) inclusive; sorted by feature. */
        struct Constraint {
            int feature;
            uint8_t lo, hi;
        };
        std::vector<Constraint> constraints;
        int label = -1;
    };

    /** Train on rows @p idx of @p d. */
    void train(const Dataset &d, const std::vector<size_t> &idx,
               const TreeParams &params, Rng &rng);

    /** Predict the class of one raw (unbinned) sample. */
    int predict(const uint8_t *x) const;

    /** Enumerate all root-to-leaf paths with merged constraints. */
    std::vector<Path> paths() const;

    int leafCount() const { return leaves_; }
    int depth() const { return depth_; }
    const std::vector<Node> &nodes() const { return nodes_; }
    int binShift() const { return binShift_; }

  private:
    std::vector<Node> nodes_;
    int leaves_ = 0;
    int depth_ = 0;
    int binShift_ = 4;
    int bins_ = 16;
};

} // namespace ml
} // namespace azoo

#endif // AZOO_ML_DECISION_TREE_HH
