#include "zoo/crispr.hh"

#include "input/dna.hh"
#include "transform/prune.hh"
#include "util/logging.hh"
#include "zoo/mesh.hh"

namespace azoo {
namespace zoo {

namespace {

constexpr int kGuideLen = 20;
constexpr int kOtEditDistance = 2;

/** DNA letter / non-letter labels over the {a,t,g,c} alphabet. */
CharSet
base(char c)
{
    return CharSet::single(static_cast<uint8_t>(c));
}

CharSet
notBase(char c)
{
    CharSet cs;
    for (char b : input::kDnaAlphabet)
        cs.set(static_cast<uint8_t>(b));
    cs.clear(static_cast<uint8_t>(c));
    return cs;
}

CharSet
anyBase()
{
    CharSet cs;
    for (char b : input::kDnaAlphabet)
        cs.set(static_cast<uint8_t>(b));
    return cs;
}

/** Append the NGG PAM tail after @p ends; the final G reports. */
void
appendPam(Automaton &a, const std::vector<ElementId> &ends,
          uint32_t code)
{
    ElementId n = a.addSte(anyBase());
    ElementId g1 = a.addSte(base('g'));
    ElementId g2 = a.addSte(base('g'), StartType::kNone, true, code);
    for (auto e : ends)
        a.addEdge(e, n);
    a.addEdge(n, g1);
    a.addEdge(g1, g2);
}

/** CasOFFinder-style: exact chain with <=1 substitution. */
size_t
appendOffFilter(Automaton &a, const std::string &guide, uint32_t code)
{
    const size_t before = a.size();
    const int n = static_cast<int>(guide.size());

    std::vector<ElementId> m_row(n), b_row(n), e_row(n, kNoElement);
    for (int j = 0; j < n; ++j) {
        const StartType st =
            j == 0 ? StartType::kAllInput : StartType::kNone;
        m_row[j] = a.addSte(base(guide[j]), st);
        b_row[j] = a.addSte(notBase(guide[j]), st);
        if (j >= 1)
            e_row[j] = a.addSte(base(guide[j]));
    }
    for (int j = 1; j < n; ++j) {
        a.addEdge(m_row[j - 1], m_row[j]);
        a.addEdge(m_row[j - 1], b_row[j]);
        a.addEdge(b_row[j - 1], e_row[j]);
        if (j >= 2)
            a.addEdge(e_row[j - 1], e_row[j]);
    }
    appendPam(a, {m_row[n - 1], b_row[n - 1], e_row[n - 1]}, code);
    return a.size() - before;
}

/** CasOT-style: Levenshtein mesh (subs + indels) then PAM. */
size_t
appendOtFilter(Automaton &a, const std::string &guide, uint32_t code)
{
    const size_t before = a.size();
    // Build the mesh with a temporary report code, then convert its
    // reporting states into PAM feeders.
    Automaton mesh("ot.filter");
    appendLevenshteinFilter(mesh, guide, kOtEditDistance, code);
    mesh = pruneDeadStates(mesh).automaton;

    const ElementId offset = a.merge(mesh);
    std::vector<ElementId> ends;
    for (ElementId i = 0; i < mesh.size(); ++i) {
        Element &e = a.element(offset + i);
        if (e.reporting) {
            e.reporting = false;
            e.reportCode = 0;
            ends.push_back(offset + i);
        }
    }
    appendPam(a, ends, code);
    return a.size() - before;
}

} // namespace

size_t
appendCrisprFilter(Automaton &a, const std::string &guide,
                   CrisprKind kind, uint32_t code)
{
    if (kind == CrisprKind::kCasOffinder)
        return appendOffFilter(a, guide, code);
    return appendOtFilter(a, guide, code);
}

Benchmark
makeCrisprBenchmark(const ZooConfig &cfg, CrisprKind kind)
{
    const bool off = kind == CrisprKind::kCasOffinder;
    Benchmark b;
    b.name = off ? "CRISPR CasOffinder" : "CRISPR CasOT";
    b.domain = "DNA pattern search";
    b.inputDesc = "DNA";
    b.paperStates = off ? 74000 : 202000;
    b.paperActiveSet = off ? 191.64 : 953.753;

    const size_t n = cfg.scaled(2000);
    Rng rng(cfg.seed ^ (off ? 0xc0ffULL : 0xc07ULL));
    Automaton a(b.name);
    std::vector<std::string> guides;
    for (size_t i = 0; i < n; ++i) {
        std::string g = input::randomDnaString(kGuideLen, rng);
        appendCrisprFilter(a, g, kind, static_cast<uint32_t>(i));
        guides.push_back(std::move(g));
    }

    // Genome stream with planted off-target sites: guide with 1-2
    // substitutions followed by a valid PAM (xGG).
    b.input = input::randomDna(cfg.inputBytes, cfg.seed ^ 0x6e0eULL);
    Rng plant(cfg.seed ^ 0x97a7ULL);
    for (size_t at = 8192; at + kGuideLen + 3 < b.input.size();
         at += 128 * 1024) {
        const std::string &g = guides[plant.nextBelow(guides.size())];
        input::plantWithMismatches(
            b.input, at, g, 1 + static_cast<int>(plant.nextBelow(2)),
            plant);
        b.input[at + kGuideLen] = static_cast<uint8_t>(
            plant.pickChar(input::kDnaAlphabet));
        b.input[at + kGuideLen + 1] = 'g';
        b.input[at + kGuideLen + 2] = 'g';
    }

    b.automaton = std::move(a);
    b.meta["guides"] = std::to_string(n);
    return b;
}

} // namespace zoo
} // namespace azoo
