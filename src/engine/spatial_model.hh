/**
 * @file
 * SpatialModel: an analytic throughput/capacity model for spatial
 * automata-processing architectures (FPGA overlays like REAPR and the
 * Micron D480 AP).
 *
 * The paper's FPGA numbers are computed, not measured on shared
 * hardware: REAPR results come from post-place-and-route virtual
 * clock frequency multiplied by the number of input symbols. We model
 * the same arithmetic. A spatial architecture consumes one input
 * symbol per clock regardless of active set; what limits it is (a)
 * state capacity, which forces multi-pass execution of partitioned
 * automata, and (b) the output-reporting bottleneck, which stalls the
 * pipeline when reports are frequent (Wadden et al., HPCA 2018).
 *
 * This is the documented substitution for "REAPR on a Xilinx Kintex
 * Ultrascale XCKU060" and "Micron D480" in our reproduction.
 */

#ifndef AZOO_ENGINE_SPATIAL_MODEL_HH
#define AZOO_ENGINE_SPATIAL_MODEL_HH

#include <cstdint>
#include <string>

#include "core/stats.hh"

namespace azoo {

/** Architecture parameters for the analytic model. */
struct SpatialArch {
    std::string name;
    /** Usable STE capacity of one device. */
    uint64_t steCapacity = 0;
    /** Symbol clock in Hz (one symbol per cycle). */
    double clockHz = 0;
    /** Extra stall cycles charged per report event (output
     *  reporting bottleneck; 0 disables the penalty). */
    double reportStallCycles = 0;

    /** Micron D480 AP: 49,152 STEs per chip at a 133 MHz symbol
     *  clock, with a pronounced report bottleneck. */
    static SpatialArch apD480();

    /** REAPR on a Kintex Ultrascale XCKU060: roughly one STE per
     *  LUT (~330k usable) with post-P&R virtual clocks around
     *  400 MHz for the paper's Random Forest designs. */
    static SpatialArch reaprKintex();
};

/** Analytic performance estimates for a benchmark on an architecture. */
class SpatialModel
{
  public:
    explicit SpatialModel(SpatialArch arch) : arch_(std::move(arch)) {}

    const SpatialArch &arch() const { return arch_; }

    /** Number of sequential passes needed to run @p states STEs on a
     *  capacity-limited device (>= 1). */
    uint64_t passes(uint64_t states) const;

    /**
     * Modeled steady-state input throughput in symbols per second for
     * an automaton with @p states STEs reporting at @p report_rate
     * (reports per input symbol).
     */
    double symbolsPerSecond(uint64_t states, double report_rate) const;

    /**
     * Modeled kernel throughput in items per second when one kernel
     * item (classification, packet, ...) consumes
     * @p symbols_per_item input symbols.
     */
    double itemsPerSecond(uint64_t states, double report_rate,
                          double symbols_per_item) const;

    /** Device utilization in [0,1] on the last pass. */
    double utilization(uint64_t states) const;

  private:
    SpatialArch arch_;
};

} // namespace azoo

#endif // AZOO_ENGINE_SPATIAL_MODEL_HH
