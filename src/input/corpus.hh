/**
 * @file
 * Text corpus inputs: the Brown-corpus stand-in for Brill tagging and
 * generic English-like text used as filler by several inputs.
 */

#ifndef AZOO_INPUT_CORPUS_HH
#define AZOO_INPUT_CORPUS_HH

#include <cstdint>
#include <string>
#include <vector>

#include "util/rng.hh"

namespace azoo {
namespace input {

/** Deterministic pseudo-English vocabulary of @p words entries. */
std::vector<std::string> makeVocabulary(size_t words, uint64_t seed);

/** English-like text: vocabulary words, spaces, punctuation, lines. */
std::vector<uint8_t> englishLikeText(size_t n, uint64_t seed);

/**
 * A part-of-speech tagged token stream for the Brill benchmark.
 * Encoding: word characters (lowercase ASCII), then one tag byte
 * (0x80 + tag index), then ' '. Tags are assigned per word with a
 * Zipf-ish distribution plus per-occurrence ambiguity, which is what
 * Brill rules key on.
 */
std::vector<uint8_t> taggedStream(size_t n, uint64_t seed, int num_tags,
                                  const std::vector<std::string> &vocab);

/** Tag byte encoding helper shared with the Brill generator. */
inline uint8_t
tagByte(int tag)
{
    return static_cast<uint8_t>(0x80 + tag);
}

} // namespace input
} // namespace azoo

#endif // AZOO_INPUT_CORPUS_HH
