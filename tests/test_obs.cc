/**
 * @file
 * azoo::obs tests: sharded counters and histograms aggregate exactly
 * under concurrent writers (the TSan CI leg runs this binary), the
 * registry hands out stable shared instruments, snapshots serialize
 * to well-formed JSON, and the note* helpers build the documented
 * metric names.
 *
 * The registry is process-global, so every assertion works on deltas
 * around the operations under test, never on absolute values.
 */

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "obs/obs.hh"
#include "util/thread_pool.hh"

namespace azoo {
namespace {

// Most tests assert recorded values, which only exist when the hooks
// are compiled in; under -DAZOO_OBS=OFF they skip (the no-op stubs
// are still exercised by the tests that survive).
#define SKIP_IF_OBS_OFF()                                             \
    if (!obs::kEnabled)                                               \
    GTEST_SKIP() << "AZOO_OBS=OFF: hooks compiled out"

TEST(Obs, JsonEnabledFlagMatchesBuild)
{
    const std::string json = obs::Registry::global().toJson();
    EXPECT_NE(json.find(obs::kEnabled ? "\"enabled\": true"
                                      : "\"enabled\": false"),
              std::string::npos);
}

TEST(Obs, CounterAggregatesConcurrentWriters)
{
    SKIP_IF_OBS_OFF();
    obs::Counter c;
    constexpr int kThreads = 8;
    constexpr uint64_t kPerThread = 50000;
    std::vector<std::thread> workers;
    workers.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
        workers.emplace_back([&c] {
            for (uint64_t i = 0; i < kPerThread; ++i)
                c.inc();
        });
    }
    for (auto &w : workers)
        w.join();
    EXPECT_EQ(c.value(), kThreads * kPerThread);
    c.reset();
    EXPECT_EQ(c.value(), 0u);
}

TEST(Obs, HistogramAggregatesConcurrentWriters)
{
    SKIP_IF_OBS_OFF();
    obs::Histogram h;
    ThreadPool pool(4);
    constexpr uint64_t kSamples = 10000;
    pool.parallelFor(4, [&h](size_t worker) {
        for (uint64_t i = 0; i < kSamples; ++i)
            h.record(worker + 1); // values 1..4
    });
    const obs::HistogramSnapshot s = h.snapshot();
    EXPECT_EQ(s.count, 4 * kSamples);
    EXPECT_EQ(s.sum, (1 + 2 + 3 + 4) * kSamples);
    EXPECT_EQ(s.min, 1u);
    EXPECT_EQ(s.max, 4u);
    EXPECT_DOUBLE_EQ(s.mean(), 2.5);
}

TEST(Obs, HistogramBucketsAndPercentiles)
{
    SKIP_IF_OBS_OFF();
    obs::Histogram h;
    h.record(0);
    h.record(1);
    h.record(100);
    h.record(~uint64_t(0)); // top bucket must absorb, not overflow
    const obs::HistogramSnapshot s = h.snapshot();
    EXPECT_EQ(s.count, 4u);
    EXPECT_EQ(s.min, 0u);
    EXPECT_EQ(s.max, ~uint64_t(0));
    EXPECT_EQ(s.buckets[0], 1u); // the zero sample
    // Percentile bounds are bucket upper bounds clamped to max.
    EXPECT_EQ(s.percentile(0.0), 0u);
    EXPECT_LE(s.percentile(0.5), 127u); // 1 or 100's bucket bound
    EXPECT_EQ(s.percentile(1.0), ~uint64_t(0));

    h.reset();
    EXPECT_EQ(h.snapshot().count, 0u);
}

TEST(Obs, GaugeSetAndAdd)
{
    SKIP_IF_OBS_OFF();
    obs::Gauge g;
    g.set(7);
    g.add(-10);
    EXPECT_EQ(g.value(), -3);
    g.reset();
    EXPECT_EQ(g.value(), 0);
}

TEST(Obs, RegistryReturnsStableSharedInstruments)
{
    obs::Registry &reg = obs::Registry::global();
    obs::Counter &a = reg.counter("test.obs.shared");
    obs::Counter &b = reg.counter("test.obs.shared");
    EXPECT_EQ(&a, &b); // address stability holds even with OBS off
    const uint64_t before = reg.counterValue("test.obs.shared");
    a.inc();
    b.inc();
    if (obs::kEnabled) {
        EXPECT_EQ(reg.counterValue("test.obs.shared"), before + 2);
    }
    // Unknown counters read as 0 rather than registering themselves.
    EXPECT_EQ(reg.counterValue("test.obs.never_registered"), 0u);
}

TEST(Obs, RegistryResetKeepsReferencesValid)
{
    SKIP_IF_OBS_OFF();
    obs::Registry &reg = obs::Registry::global();
    obs::Counter &c = reg.counter("test.obs.reset");
    c.add(5);
    reg.reset();
    EXPECT_EQ(reg.counterValue("test.obs.reset"), 0u);
    c.inc(); // the cached reference must survive reset()
    EXPECT_EQ(reg.counterValue("test.obs.reset"), 1u);
}

TEST(Obs, ScopedTimerRecordsOnDestruction)
{
    SKIP_IF_OBS_OFF();
    obs::Registry &reg = obs::Registry::global();
    obs::Histogram &h = reg.histogram("test.obs.timer_us");
    const uint64_t before = h.snapshot().count;
    {
        obs::ScopedTimer timer(h);
    }
    EXPECT_EQ(h.snapshot().count, before + 1);
}

TEST(Obs, ConcurrentRegistryLookupsAreSafe)
{
    // Mixed find-or-create from many threads (the cold path that
    // takes the mutex) plus hot-path writes; TSan validates this.
    ThreadPool pool(8);
    pool.parallelFor(64, [](size_t i) {
        obs::Registry &reg = obs::Registry::global();
        reg.counter(i % 2 ? "test.obs.race_a" : "test.obs.race_b")
            .inc();
        reg.histogram("test.obs.race_h").record(i);
    });
    if (obs::kEnabled) {
        obs::Registry &reg = obs::Registry::global();
        EXPECT_EQ(reg.counterValue("test.obs.race_a") +
                      reg.counterValue("test.obs.race_b"),
                  64u);
        EXPECT_GE(
            reg.histogram("test.obs.race_h").snapshot().count, 64u);
    }
}

TEST(Obs, ToJsonIsWellFormedAndSorted)
{
    obs::Registry &reg = obs::Registry::global();
    reg.counter("test.obs.json_a").inc();
    reg.counter("test.obs.json_b").add(2);
    reg.histogram("test.obs.json_h").record(3);
    const std::string json = reg.toJson();
    EXPECT_NE(json.find("\"schema\": \"azoo-obs-1\""),
              std::string::npos);
    // Registration (and therefore name output) works in both build
    // configurations; only the recorded values need the hooks.
    const size_t a = json.find("test.obs.json_a");
    const size_t b = json.find("test.obs.json_b");
    ASSERT_NE(a, std::string::npos);
    ASSERT_NE(b, std::string::npos);
    EXPECT_LT(a, b); // names emit sorted
    EXPECT_NE(json.find("\"test.obs.json_h\": {\"count\": "),
              std::string::npos);
}

TEST(Obs, NoteHelpersBuildDocumentedNames)
{
    SKIP_IF_OBS_OFF();
    obs::Registry &reg = obs::Registry::global();

    const uint64_t docs = reg.counterValue("parser.testfmt.docs");
    const uint64_t errs =
        reg.counterValue("parser.testfmt.errors.parse-error");
    obs::noteParse("testfmt", ErrorCode::kOk);
    obs::noteParse("testfmt", ErrorCode::kParseError);
    EXPECT_EQ(reg.counterValue("parser.testfmt.docs"), docs + 2);
    EXPECT_EQ(reg.counterValue("parser.testfmt.errors.parse-error"),
              errs + 1);

    const uint64_t runs = reg.counterValue("transform.testpass.runs");
    obs::noteTransform("testpass", 100, 60);
    EXPECT_EQ(reg.counterValue("transform.testpass.runs"), runs + 1);
    EXPECT_GE(reg.counterValue("transform.testpass.states_before"),
              100u);
    EXPECT_GE(reg.counterValue("transform.testpass.states_after"),
              60u);

    const uint64_t stops = reg.counterValue(
        "test.obs.engine.guard_stops.deadline-exceeded");
    obs::noteGuardStop("test.obs.engine",
                       ErrorCode::kDeadlineExceeded);
    EXPECT_EQ(reg.counterValue(
                  "test.obs.engine.guard_stops.deadline-exceeded"),
              stops + 1);
}

} // namespace
} // namespace azoo
