file(REMOVE_RECURSE
  "CMakeFiles/section9_subbyte.dir/section9_subbyte.cc.o"
  "CMakeFiles/section9_subbyte.dir/section9_subbyte.cc.o.d"
  "section9_subbyte"
  "section9_subbyte.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/section9_subbyte.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
