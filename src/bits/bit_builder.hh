/**
 * @file
 * Bit-level automata construction (Section IX-B).
 *
 * File-format metadata patterns contain sub-byte bit fields (the
 * paper's example: MS-DOS timestamps in PKZip headers, where seconds/2
 * occupies 5 bits with values 0..29, minutes 6 bits 0..59, hours 5
 * bits 0..23). Such constraints are awkward as byte regexes but
 * natural as automata over the alphabet {0,1}. This module builds bit
 * automata compositionally; transform/stride.hh then converts them to
 * ordinary byte automata.
 *
 * Bit order is MSB-first within each byte, matching stride.hh.
 */

#ifndef AZOO_BITS_BIT_BUILDER_HH
#define AZOO_BITS_BIT_BUILDER_HH

#include <cstdint>
#include <vector>

#include "core/automaton.hh"

namespace azoo {
namespace bits {

/**
 * Add the byte-boundary alignment ring used to express unanchored
 * byte-aligned searches in the bit domain: an 8-state cycle of
 * bit-wildcard states starting at start-of-data whose final state
 * matches at bit offsets 7 mod 8 and can therefore re-arm pattern
 * heads at every byte boundary.
 *
 * @return the id of the ring state that fires at byte boundaries
 *         (connect it to pattern head states).
 */
ElementId addAlignmentRing(Automaton &a);

/**
 * Incrementally builds one bit-pattern chain inside an automaton.
 *
 * The frontier is the set of states whose match completes the pattern
 * so far; appending a field fans the frontier into the field's
 * sub-graph. Patterns must end on a byte boundary before striding.
 */
class BitChainBuilder
{
  public:
    /**
     * @param anchor_ring pass the id from addAlignmentRing() to build
     *        an unanchored (every byte boundary) pattern, or
     *        kNoElement for a start-of-data anchored pattern.
     */
    BitChainBuilder(Automaton &a, ElementId anchor_ring = kNoElement);

    /** Append one fixed bit (0 or 1). */
    void appendBit(int b);

    /** Append one wildcard bit. */
    void appendAnyBit();

    /** Append 8 fixed bits, MSB first. */
    void appendByte(uint8_t value);

    /** Append 8 bits matching @p value wherever @p care has a 1 bit
     *  and wildcards elsewhere (nibble wildcards use care=0x0F/0xF0).
     */
    void appendMaskedByte(uint8_t value, uint8_t care);

    /** Append @p n wildcard bits. */
    void appendAnyBits(int n);

    /**
     * Append a @p width bit unsigned field (MSB first) constrained to
     * [lo, hi]. Builds the tight-bound decision graph, sharing states
     * per (level, bit, bound-tightness) so the fragment stays at most
     * 4 states per level.
     */
    void appendRangeField(int width, uint32_t lo, uint32_t hi);

    /** Bits appended so far (must end %8 == 0 before striding). */
    int bitLength() const { return bit_length_; }

    /** Mark the current frontier as reporting with @p code. */
    void finishReport(uint32_t code);

    /**
     * Branching support: builders are copyable, and a copy continues
     * from the same frontier ("fork"). mergeBranch() unions another
     * branch's frontier into this one; both branches must have
     * consumed the same number of bits so byte alignment agrees.
     */
    void mergeBranch(const BitChainBuilder &other);

    /** Current frontier (for advanced constructions). */
    const std::vector<ElementId> &frontier() const { return frontier_; }

  private:
    /** Create a state labeled for bit @p b, wired from the frontier. */
    ElementId addState(const CharSet &label);

    /** Replace the frontier with @p states. */
    void setFrontier(std::vector<ElementId> states);

    Automaton &a_;
    ElementId ring_;
    std::vector<ElementId> frontier_;
    bool at_start_ = true;
    int bit_length_ = 0;
};

/** Expand bytes to bit symbols (one byte per bit, MSB first). */
std::vector<uint8_t> expandToBits(const std::vector<uint8_t> &bytes);

} // namespace bits
} // namespace azoo

#endif // AZOO_BITS_BIT_BUILDER_HH
