# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_util[1]_include.cmake")
include("/root/repo/build/tests/test_charset[1]_include.cmake")
include("/root/repo/build/tests/test_input[1]_include.cmake")
include("/root/repo/build/tests/test_automaton[1]_include.cmake")
include("/root/repo/build/tests/test_formats[1]_include.cmake")
include("/root/repo/build/tests/test_placement[1]_include.cmake")
include("/root/repo/build/tests/test_regex[1]_include.cmake")
include("/root/repo/build/tests/test_engines[1]_include.cmake")
include("/root/repo/build/tests/test_streaming[1]_include.cmake")
include("/root/repo/build/tests/test_transform[1]_include.cmake")
include("/root/repo/build/tests/test_stride[1]_include.cmake")
include("/root/repo/build/tests/test_ml[1]_include.cmake")
include("/root/repo/build/tests/test_mesh[1]_include.cmake")
include("/root/repo/build/tests/test_zoo[1]_include.cmake")
add_test(suite_smoke "/root/repo/build/tests/smoke")
set_tests_properties(suite_smoke PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;29;add_test;/root/repo/tests/CMakeLists.txt;0;")
