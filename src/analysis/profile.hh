/**
 * @file
 * Per-component property inference: the facts a planner (and the
 * A2xx lint family) need to route each connected component to the
 * right engine.
 *
 * inferProfiles() runs the dataflow passes (dataflow.hh) over every
 * connected component and distills one ComponentProfile per
 * component: a classification, the mandatory literal factor, match-
 * length and anchoring intervals, a subset-construction blowup
 * estimate, and counter range facts. Profiles are pure data — a flat
 * struct of integers plus one byte string — so they serialize into
 * the `.azoox` PROF section unchanged and compare bit-for-bit.
 *
 * Fact semantics (docs/ANALYSIS.md is the normative catalog):
 *
 *  - Distances count input symbols along accepting paths. Counters
 *    are traversed as if they consumed one symbol per activation
 *    edge, so for counter-coupled components the match-length facts
 *    are lower bounds, not exact intervals.
 *  - The mandatory literal factor is sound: every accepting match of
 *    the component contains it as a contiguous byte substring. It is
 *    not necessarily maximal (it is mined from the dominator chain,
 *    which can miss factors inside alternations).
 *  - blowupLog2 is a documented heuristic, not a bound: log2 of the
 *    estimated determinized state count, for cross-checking against
 *    the engine.lazy.* observability counters.
 *
 * Precondition: edge targets in range (run verify() first; its V001
 * gate is the contract, as with the rest of this module).
 */

#ifndef AZOO_ANALYSIS_PROFILE_HH
#define AZOO_ANALYSIS_PROFILE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/analysis.hh"
#include "core/automaton.hh"

namespace azoo {
namespace analysis {

/** Which engine family a component belongs with. Values are stable
 *  (they serialize into the PROF artifact section). */
enum class ComponentClass : uint8_t {
    kLiteralChain = 0,    ///< acyclic, counter-free, strong factor
    kBoundedRegex = 1,    ///< acyclic, counter-free, weak/no factor
    kCounterCoupled = 2,  ///< contains at least one counter element
    kCyclicUnbounded = 3, ///< a cycle lies on an accepting path
};

/** "literal-chain" / "bounded-regex" / "counter-coupled" /
 *  "cyclic-unbounded". */
const char *componentClassName(ComponentClass c);

/** One-letter census code: L / R / C / U (bench table columns). */
char componentClassCode(ComponentClass c);

/** Sentinel for "unbounded or undefined" length facts. */
constexpr uint32_t kUnboundedLen = ~uint32_t(0);

/**
 * The inferred facts for one connected component. All fields are
 * exact unless the field comment says otherwise; `kUnboundedLen`
 * means unbounded (or undefined, for components that never report).
 */
struct ComponentProfile {
    /** Component id as assigned by connectedComponents(). */
    uint32_t componentId = 0;
    /** Lowest element id in the component (diagnostic anchor). */
    uint32_t firstElement = 0;

    uint32_t steCount = 0;     ///< STE members
    uint32_t counterCount = 0; ///< counter members
    uint32_t edgeCount = 0;    ///< activation edges inside the component
    uint32_t startCount = 0;   ///< members with a start type
    uint32_t reportCount = 0;  ///< reporting members

    ComponentClass cls = ComponentClass::kBoundedRegex;
    /** All starts are start-of-data (matches only at offset 0). */
    bool anchored = false;
    /** Some cycle lies on a start->report path. */
    bool cyclic = false;

    /** Min/max symbols consumed from match start to first report.
     *  Lower bounds when counterCount > 0 (see file comment). */
    uint32_t minMatchLen = kUnboundedLen;
    uint32_t maxMatchLen = kUnboundedLen;
    /** Longest path (in symbols) from any start: after this many
     *  symbols an anchored run of the component has quiesced. */
    uint32_t maxActivationDepth = kUnboundedLen;

    /** log2 of the estimated subset-construction state count
     *  (heuristic; capped at 32). */
    uint32_t blowupLog2 = 0;

    /** Counter target range; both 0 when counterCount == 0. */
    uint32_t minCounterTarget = 0;
    uint32_t maxCounterTarget = 0;

    /** Longest byte string every accepting match must contain;
     *  empty when no usable factor exists. */
    std::string mandatoryLiteral;

    bool operator==(const ComponentProfile &) const = default;
};

/** Inference knobs (defaults match the documented rule behavior). */
struct InferOptions {
    /** Minimum mandatory-factor length for the literal-chain class
     *  (and below which A203 notes a weak factor). */
    uint32_t literalChainMinFactor = 4;
    /** blowupLog2 at or above which A204 warns. */
    uint32_t blowupWarnLog2 = 20;
};

/**
 * Compute a profile for every connected component of @p a, in
 * component-id order. Deterministic: equal automata produce equal
 * profile vectors.
 */
std::vector<ComponentProfile> inferProfiles(const Automaton &a,
                                            const InferOptions &iopts = {});

/**
 * The A2xx rule family: planning-fact lints over inferred profiles.
 * @p profiles must come from inferProfiles() on the same automaton.
 * Respects the per-rule kill switch in @p opts like verify()/lint().
 */
Report profileLint(const Automaton &a,
                   const std::vector<ComponentProfile> &profiles,
                   const Options &opts = {},
                   const InferOptions &iopts = {});

} // namespace analysis
} // namespace azoo

#endif // AZOO_ANALYSIS_PROFILE_HH
