/**
 * @file
 * The azoo_serve wire protocol: length-prefixed frames over a stream
 * socket, one match session per connection.
 *
 * A client opens a connection, announces itself, streams input bytes,
 * and reads exactly one REPLY:
 *
 *   client -> server   OPEN(priority)       once, first
 *                      DATA(bytes)          any number of times
 *                      FIN                  once, ends the stream
 *   server -> client   ADMIT(epoch)         after OPEN, if admitted
 *                      REPLY(status, ...)   exactly once, then close
 *
 * A control connection may send RELOAD(path) instead of OPEN: the
 * server swaps its ruleset to a new generation and answers with a
 * REPLY (kOk on success, kServerError with the failure's detail code
 * otherwise). ADMIT carries the generation epoch a session opened
 * under, so clients can correlate replies with rulesets across swaps.
 *
 * Every frame is `u32le payloadLen | u8 type | payload`. payloadLen
 * counts the payload only and is bounded by kMaxFramePayload — an
 * oversized or malformed frame is a protocol error, answered with
 * REPLY(kProtocolError) and a close, never a crash (the frame decoder
 * is fuzzed; see fuzz/fuzz_frame.cc).
 *
 * The REPLY payload carries the session's outcome: a ReplyStatus, the
 * ErrorCode behind a truncation (the RunGuard's stop reason), how
 * many input symbols were actually consumed, the total report count,
 * and up to the server's record cap of (offset, element, code) report
 * records in canonical order. The contract the chaos tests enforce:
 * a REPLY with status kOk is bit-identical to a serial engine run
 * over the same stream; any other status is explicit about what the
 * client got instead. A session that dies without a REPLY (connection
 * drop) promised nothing.
 *
 * docs/FORMATS.md ("azoo_serve") documents the byte layout
 * normatively; this header and that section change together.
 */

#ifndef AZOO_SERVE_PROTOCOL_HH
#define AZOO_SERVE_PROTOCOL_HH

#include <cstddef>
#include <cstdint>
#include <vector>

#include "engine/report.hh"
#include "util/status.hh"

namespace azoo {
namespace serve {

/** Frame header: u32le payload length + u8 type. */
inline constexpr size_t kFrameHeaderSize = 5;

/** Largest accepted payload (bounds per-connection buffering). */
inline constexpr size_t kMaxFramePayload = 1u << 20;

/** Frame types. Client-to-server types have the high bit clear. */
enum class FrameType : uint8_t {
    kOpen = 0x01,   ///< payload: u8 priority, u32le flags (must be 0)
    kData = 0x02,   ///< payload: raw stream bytes
    kFin = 0x03,    ///< payload: empty
    kReload = 0x04, ///< payload: u32le flags (must be 0), then the
                    ///< ruleset path (raw bytes, no terminator).
                    ///< Control frame: valid only instead of OPEN;
                    ///< answered with a REPLY once the swap lands.
    kAdmit = 0x81,  ///< payload: empty (legacy) or u64le epoch of the
                    ///< ruleset generation this session opened under
    kReply = 0x82,  ///< payload: Reply encoding
};

/** Session outcome carried in a REPLY frame. */
enum class ReplyStatus : uint8_t {
    kOk = 0,             ///< complete result over the whole stream
    kTruncated = 1,      ///< per-session guard stopped the run
    kShedOverload = 2,   ///< shed to admit higher-priority work
    kShedDrain = 3,      ///< server drained before the stream ended
    kRejectedBusy = 4,   ///< admission: session table full
    kRejectedMemory = 5, ///< admission: memory budget exhausted
    kRejectedDrain = 6,  ///< admission: server is draining
    kProtocolError = 7,  ///< malformed frame sequence from the client
    kServerError = 8,    ///< internal failure; result discarded
};

/** Stable name ("ok", "truncated", "shed-overload", ...). */
const char *replyStatusName(ReplyStatus s);

/** True for the statuses that carry a (possibly empty) exact result
 *  over a consumed prefix: kOk, kTruncated, kShedOverload,
 *  kShedDrain. */
bool replyCarriesResult(ReplyStatus s);

/**
 * Wire encoding of Reply::detail. The mapping is an explicit table,
 * not `static_cast<uint8_t>(ErrorCode)`: the in-memory enum may gain
 * or reorder members, but these byte values are frozen protocol —
 * a peer built from a different revision either agrees on a value's
 * meaning or gets a clean kParseError, never a misdecoded ErrorCode.
 */
uint8_t detailToWire(ErrorCode code);

/** Decode a wire detail byte; false for values no revision of the
 *  table has assigned (the caller treats that as malformed). */
bool detailFromWire(uint8_t wire, ErrorCode &out);

/** Decoded REPLY payload. */
struct Reply {
    ReplyStatus status = ReplyStatus::kServerError;
    /** Stop reason behind kTruncated / shed statuses (kOk otherwise):
     *  kDeadlineExceeded, kLimitExceeded, or kCancelled. */
    ErrorCode detail = ErrorCode::kOk;
    uint64_t symbols = 0;     ///< input symbols the result covers
    uint64_t reportCount = 0; ///< total reports (recorded or not)
    /** Recorded reports, canonical (offset, element, code) order,
     *  capped at the server's --max-report-records. */
    std::vector<Report> reports;

    /** Append the payload encoding (no frame header) to @p out. */
    void encodeTo(std::vector<uint8_t> &out) const;

    /** Parse a REPLY payload; kParseError on malformed bytes. */
    static Expected<Reply> decode(const uint8_t *payload, size_t len);
};

/** Append a full frame (header + payload) to @p out. */
void appendFrame(std::vector<uint8_t> &out, FrameType type,
                 const uint8_t *payload, size_t len);

/** One decoded frame, viewing into the reader's stable payload
 *  storage. */
struct Frame {
    FrameType type = FrameType::kOpen;
    const uint8_t *payload = nullptr;
    size_t len = 0;
};

/**
 * Incremental frame decoder over a raw byte stream. append() socket
 * bytes, then next() until it returns false.
 *
 * Payload stability contract: next() moves the decoded payload into
 * storage owned by the reader, so the returned Frame stays valid
 * across any number of append()/compact() calls and is invalidated
 * only by the next successful next() (or takePayload()). This
 * matters: the receive buffer itself is erased and may reallocate on
 * every append(), and holding a decoded frame across an append is
 * exactly what a handler that triggers more socket reads does.
 */
class FrameReader
{
  public:
    /** Add raw bytes from the socket. Never invalidates the last
     *  frame next() returned. */
    void append(const uint8_t *data, size_t len);

    /**
     * Decode the next complete frame into @p out. Returns false when
     * no complete frame is buffered. A malformed header (oversized
     * length, unknown type) sets a sticky kParseError on error() and
     * makes every later next() return false — the connection is dead
     * to protocol, the caller replies kProtocolError and closes.
     */
    bool next(Frame &out);

    /**
     * Steal the last decoded frame's payload bytes (moves the owned
     * storage out, so a DATA chunk reaches the session queue with no
     * extra copy). The last Frame is invalid afterwards.
     */
    std::vector<uint8_t> takePayload();

    const Status &error() const { return error_; }

    /** Bytes buffered but not yet consumed by next(). */
    size_t buffered() const { return buf_.size() - pos_; }

    /** Drop consumed bytes (called between poll rounds to keep the
     *  buffer from growing with the stream). */
    void compact();

  private:
    std::vector<uint8_t> buf_;
    size_t pos_ = 0;
    /** Owned storage for the last decoded frame's payload. */
    std::vector<uint8_t> payload_;
    Status error_;
};

} // namespace serve
} // namespace azoo

#endif // AZOO_SERVE_PROTOCOL_HH
