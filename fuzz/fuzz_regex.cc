/**
 * @file
 * libFuzzer harness for the regex parser (PCRE-ish subset). Bytes in,
 * Expected<Regex> out; parse errors must be structured, nesting and
 * repeat bounds must be limited, and a successful parse must yield an
 * AST the Glushkov construction accepts.
 */

#include <cstddef>
#include <cstdint>
#include <string>

#include "regex/glushkov.hh"
#include "regex/parser.hh"

extern "C" int
LLVMFuzzerTestOneInput(const uint8_t *data, size_t size)
{
    azoo::ParseLimits limits;
    limits.maxNestingDepth = 64;

    const std::string pattern(reinterpret_cast<const char *>(data),
                              size);
    azoo::Expected<azoo::Regex> got =
        azoo::parseRegex(pattern, azoo::RegexFlags(), limits);
    if (got.ok()) {
        // The downstream automaton construction must accept every
        // pattern the parser accepts.
        azoo::Automaton a = azoo::compileRegex(*got);
        if (!a.check().ok())
            __builtin_trap();
    }
    return 0;
}
