#include "analysis/sarif.hh"

#include <cstdio>
#include <sstream>

namespace azoo {
namespace analysis {

namespace {

/** Escape for a JSON string literal (bytes as \u00NN). */
std::string
esc(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        const auto uc = static_cast<unsigned char>(c);
        if (c == '"' || c == '\\') {
            out.push_back('\\');
            out.push_back(c);
        } else if (uc < 0x20 || uc >= 0x7f) {
            char buf[8];
            std::snprintf(buf, sizeof(buf), "\\u%04x", uc);
            out += buf;
        } else {
            out.push_back(c);
        }
    }
    return out;
}

const char *
sarifLevel(Severity s)
{
    switch (s) {
      case Severity::kError:
        return "error";
      case Severity::kWarning:
        return "warning";
      case Severity::kNote:
        return "note";
    }
    return "none";
}

} // namespace

std::string
toSarif(const std::vector<std::pair<std::string, Report>> &fileReports)
{
    std::ostringstream o;
    o << "{\n"
      << "  \"$schema\": "
         "\"https://json.schemastore.org/sarif-2.1.0.json\",\n"
      << "  \"version\": \"2.1.0\",\n"
      << "  \"runs\": [\n"
      << "    {\n"
      << "      \"tool\": {\n"
      << "        \"driver\": {\n"
      << "          \"name\": \"azoo_lint\",\n"
      << "          \"rules\": [\n";
    for (size_t i = 0; i < kRuleCount; ++i) {
        const auto r = static_cast<Rule>(i);
        o << "            {\"id\": \"" << ruleId(r) << "\", \"name\": \""
          << ruleName(r) << "\", \"shortDescription\": {\"text\": \""
          << esc(ruleDescription(r))
          << "\"}, \"defaultConfiguration\": {\"level\": \""
          << sarifLevel(defaultSeverity(r)) << "\"}}"
          << (i + 1 < kRuleCount ? "," : "") << "\n";
    }
    o << "          ]\n"
      << "        }\n"
      << "      },\n"
      << "      \"results\": [\n";

    bool first = true;
    for (const auto &[path, rep] : fileReports) {
        for (const Diagnostic &d : rep.diags) {
            if (!first)
                o << ",\n";
            first = false;
            const size_t rule_index = static_cast<size_t>(d.rule);
            o << "        {\"ruleId\": \"" << ruleId(d.rule)
              << "\", \"ruleIndex\": " << rule_index
              << ", \"level\": \"" << sarifLevel(d.severity)
              << "\", \"message\": {\"text\": \"" << esc(d.message)
              << "\"}, \"locations\": [{\"physicalLocation\": "
                 "{\"artifactLocation\": {\"uri\": \""
              << esc(path) << "\"}}";
            if (d.element != kNoElement) {
                o << ", \"logicalLocations\": [{\"fullyQualifiedName\": "
                     "\"element/"
                  << d.element << "\", \"kind\": \"member\"}]";
            }
            o << "}]}";
        }
    }
    if (!first)
        o << "\n";
    o << "      ]\n"
      << "    }\n"
      << "  ]\n"
      << "}\n";
    return o.str();
}

} // namespace analysis
} // namespace azoo
