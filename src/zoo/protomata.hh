/**
 * @file
 * Protomata: PROSITE protein-motif search.
 *
 * The paper's benchmark is the canonical set of 1,309 PROSITE motif
 * patterns run against UniProt sequences -- a fixed workload, kept at
 * its natural size (AutomataZoo deliberately does not inflate it).
 * We generate scaled(1309) patterns in PROSITE syntax (amino-acid
 * elements, [classes], {exclusions}, x wildcards with x(n)/x(n,m)
 * gaps), convert them to regexes, and drive them with a synthetic
 * proteome containing planted motif instances.
 */

#ifndef AZOO_ZOO_PROTOMATA_HH
#define AZOO_ZOO_PROTOMATA_HH

#include <string>
#include <vector>

#include "zoo/benchmark.hh"

namespace azoo {
namespace zoo {

/** One PROSITE-style pattern plus a concrete instance. */
struct PrositePattern {
    std::string prosite;  ///< e.g. "A-x(2,3)-[DE]-{P}-C"
    std::string instance; ///< concrete matching peptide
};

/** Generate scaled(1309) patterns. */
std::vector<PrositePattern> makePrositePatterns(const ZooConfig &cfg);

/** PROSITE syntax -> PCRE. */
std::string prositeToRegex(const std::string &prosite);

/** Build the benchmark. */
Benchmark makeProtomataBenchmark(const ZooConfig &cfg);

} // namespace zoo
} // namespace azoo

#endif // AZOO_ZOO_PROTOMATA_HH
