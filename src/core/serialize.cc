#include "core/serialize.hh"

#include <fstream>
#include <sstream>

#include "obs/obs.hh"
#include "util/fault.hh"
#include "util/io.hh"
#include "util/logging.hh"
#include "util/strings.hh"

namespace azoo {

namespace {

const char *
startName(StartType s)
{
    switch (s) {
      case StartType::kNone: return "none";
      case StartType::kStartOfData: return "sod";
      case StartType::kAllInput: return "all";
    }
    return "none";
}

/** Throw a structured azml parse error anchored at @p lineno (azml is
 *  line-oriented; column is not tracked). */
[[noreturn]] void
dieAzml(size_t lineno, const std::string &what,
        ErrorCode code = ErrorCode::kParseError)
{
    SourceLoc loc;
    loc.line = static_cast<uint32_t>(lineno);
    loc.column = 1;
    throw StatusError(Status(code, cat("azml: ", what), loc));
}

StartType
parseStart(size_t lineno, const std::string &s)
{
    if (s == "none")
        return StartType::kNone;
    if (s == "sod")
        return StartType::kStartOfData;
    if (s == "all")
        return StartType::kAllInput;
    dieAzml(lineno, cat("bad start type '", s, "'"));
}

const char *
modeName(CounterMode m)
{
    switch (m) {
      case CounterMode::kLatch: return "latch";
      case CounterMode::kPulse: return "pulse";
      case CounterMode::kRollover: return "rollover";
    }
    return "latch";
}

CounterMode
parseMode(size_t lineno, const std::string &s)
{
    if (s == "latch")
        return CounterMode::kLatch;
    if (s == "pulse")
        return CounterMode::kPulse;
    if (s == "rollover")
        return CounterMode::kRollover;
    dieAzml(lineno, cat("bad counter mode '", s, "'"));
}

std::string
reportField(const Element &e)
{
    return e.reporting ? std::to_string(e.reportCode) : std::string("-");
}

/** Split "key=value"; structured error if the key does not match. */
std::string
expectKv(size_t lineno, const std::string &token, const std::string &key)
{
    auto eq = token.find('=');
    if (eq == std::string::npos || token.substr(0, eq) != key)
        dieAzml(lineno,
                cat("expected '", key, "=...', got '", token, "'"));
    return token.substr(eq + 1);
}

/** Checked uint32 parse (std::stoul would throw a bare
 *  std::invalid_argument on garbage like report=x). */
uint32_t
parseU32Field(size_t lineno, const std::string &what,
              const std::string &value)
{
    uint64_t v = 0;
    size_t i = 0;
    for (; i < value.size(); ++i) {
        const char c = value[i];
        if (c < '0' || c > '9')
            break;
        v = v * 10 + static_cast<uint64_t>(c - '0');
        if (v > 0xFFFFFFFFULL)
            dieAzml(lineno, cat(what, " value out of range"));
    }
    if (i == 0 || i != value.size())
        dieAzml(lineno,
                cat(what, " is not a number: '", value, "'"));
    return static_cast<uint32_t>(v);
}

} // namespace

void
writeAzml(std::ostream &os, const Automaton &a)
{
    os << "automaton " << (a.name().empty() ? "unnamed" : a.name())
       << "\n";
    for (ElementId i = 0; i < a.size(); ++i) {
        const Element &e = a.element(i);
        if (e.kind == ElementKind::kSte) {
            os << "ste " << i << " start=" << startName(e.start)
               << " report=" << reportField(e)
               << " symbols=" << e.symbols.str() << "\n";
        } else {
            os << "counter " << i << " target=" << e.target
               << " mode=" << modeName(e.mode)
               << " report=" << reportField(e) << "\n";
        }
    }
    for (ElementId i = 0; i < a.size(); ++i) {
        for (auto t : a.element(i).out)
            os << "edge " << i << " " << t << "\n";
        for (auto t : a.element(i).resetOut)
            os << "reset " << i << " " << t << "\n";
    }
    os << "end\n";
}

namespace {

/** Throwing implementation behind the Expected-returning wrapper. */
Automaton
readAzmlImpl(std::istream &is, const ParseLimits &limits)
{
    Automaton a;
    uint64_t edges = 0;
    std::string line;
    bool saw_header = false;
    bool saw_end = false;
    size_t lineno = 0;

    auto checkStateLimit = [&] {
        if (fault::shouldFail(fault::Point::kAllocFail)) {
            dieAzml(lineno, "element table allocation failed",
                    ErrorCode::kResourceExhausted);
        }
        if (a.size() >= limits.maxStates) {
            dieAzml(lineno,
                    cat("element count exceeds state limit (",
                        limits.maxStates, ")"),
                    ErrorCode::kLimitExceeded);
        }
    };
    auto checkEdgeLimit = [&] {
        if (++edges > limits.maxEdges) {
            dieAzml(lineno,
                    cat("edge count exceeds limit (", limits.maxEdges,
                        ")"),
                    ErrorCode::kLimitExceeded);
        }
    };

    while (std::getline(is, line)) {
        ++lineno;
        line = trim(line);
        if (line.empty() || line[0] == '#')
            continue;
        std::istringstream ls(line);
        std::string kw;
        ls >> kw;

        if (kw == "automaton") {
            std::string name;
            ls >> name;
            a.setName(name);
            saw_header = true;
        } else if (kw == "ste") {
            ElementId id = 0;
            std::string start_tok, report_tok, symbols_tok;
            ls >> id >> start_tok >> report_tok;
            // symbols= may contain spaces? CharSet::str() never emits
            // spaces (space escapes as \x20), so a single token is fine.
            ls >> symbols_tok;
            if (ls.fail())
                dieAzml(lineno, "malformed ste line");
            if (id != a.size())
                dieAzml(lineno, cat("ste id ", id, " out of order"));
            checkStateLimit();
            std::string report = expectKv(lineno, report_tok, "report");
            std::string sym = expectKv(lineno, symbols_tok, "symbols");
            CharSet cs;
            if (sym == "*") {
                cs = CharSet::all();
            } else {
                if (sym.size() < 2 || sym.front() != '[' ||
                    sym.back() != ']') {
                    dieAzml(lineno, cat("bad symbols '", sym, "'"));
                }
                std::string err;
                if (!CharSet::tryFromExpr(
                        sym.substr(1, sym.size() - 2), cs, err)) {
                    dieAzml(lineno, err);
                }
            }
            bool reporting = report != "-";
            a.addSte(cs,
                     parseStart(lineno,
                                expectKv(lineno, start_tok, "start")),
                     reporting,
                     reporting ? parseU32Field(lineno, "report", report)
                               : 0);
        } else if (kw == "counter") {
            ElementId id = 0;
            std::string target_tok, mode_tok, report_tok;
            ls >> id >> target_tok >> mode_tok >> report_tok;
            if (ls.fail())
                dieAzml(lineno, "malformed counter line");
            if (id != a.size())
                dieAzml(lineno,
                        cat("counter id ", id, " out of order"));
            checkStateLimit();
            std::string report = expectKv(lineno, report_tok, "report");
            bool reporting = report != "-";
            a.addCounter(
                parseU32Field(lineno, "target",
                              expectKv(lineno, target_tok, "target")),
                parseMode(lineno, expectKv(lineno, mode_tok, "mode")),
                reporting,
                reporting ? parseU32Field(lineno, "report", report)
                          : 0);
        } else if (kw == "edge") {
            ElementId from = 0, to = 0;
            ls >> from >> to;
            if (ls.fail())
                dieAzml(lineno, "malformed edge line");
            if (from >= a.size() || to >= a.size())
                dieAzml(lineno, "edge endpoint out of range");
            checkEdgeLimit();
            a.addEdge(from, to);
        } else if (kw == "reset") {
            ElementId from = 0, to = 0;
            ls >> from >> to;
            if (ls.fail())
                dieAzml(lineno, "malformed reset line");
            if (from >= a.size() || to >= a.size())
                dieAzml(lineno, "reset endpoint out of range");
            checkEdgeLimit();
            a.addResetEdge(from, to);
        } else if (kw == "end") {
            saw_end = true;
            break;
        } else {
            dieAzml(lineno, cat("unknown keyword '", kw, "'"));
        }
    }

    if (!saw_header)
        dieAzml(lineno, "missing 'automaton' header");
    if (!saw_end)
        dieAzml(lineno, "missing 'end'");
    if (Status st = a.check(); !st.ok())
        throw StatusError(std::move(st));
    return a;
}

} // namespace

Expected<Automaton>
readAzml(std::istream &is, const ParseLimits &limits)
{
    Expected<Automaton> res = [&]() -> Expected<Automaton> {
        try {
            return readAzmlImpl(is, limits);
        } catch (const StatusError &e) {
            return e.status();
        } catch (const std::exception &e) {
            return Status(ErrorCode::kInternal,
                          cat("azml: ", e.what()));
        }
    }();
    obs::noteParse("azml",
                   res.ok() ? ErrorCode::kOk : res.status().code());
    return res;
}

void
saveAzml(const std::string &path, const Automaton &a)
{
    std::ofstream f(path);
    if (!f)
        fatal(cat("cannot open for write: ", path));
    writeAzml(f, a);
}

Expected<Automaton>
loadAzml(const std::string &path, const ParseLimits &limits)
{
    Expected<std::string> text = readFile(path, limits.maxInputBytes);
    if (!text.ok())
        return text.status();
    std::istringstream is(std::move(*text));
    return readAzml(is, limits);
}

Automaton
readAzmlOrDie(std::istream &is)
{
    return readAzml(is).valueOrDie();
}

Automaton
loadAzmlOrDie(const std::string &path)
{
    return loadAzml(path).valueOrDie();
}

} // namespace azoo
