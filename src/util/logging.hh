/**
 * @file
 * Minimal logging and error-exit helpers in the gem5 tradition:
 * fatal() for user errors, panic() for internal invariant violations,
 * warn()/inform() for status messages.
 */

#ifndef AZOO_UTIL_LOGGING_HH
#define AZOO_UTIL_LOGGING_HH

#include <sstream>
#include <string>

namespace azoo {

/** Print "fatal: <msg>" to stderr and exit(1). For user errors. */
[[noreturn]] void fatal(const std::string &msg);

/** Print "panic: <msg>" to stderr and abort(). For library bugs. */
[[noreturn]] void panic(const std::string &msg);

/** Print "warn: <msg>" to stderr. */
void warn(const std::string &msg);

/** Print "info: <msg>" to stderr. */
void inform(const std::string &msg);

/** Enable/disable inform() output (benches silence it). */
void setVerbose(bool verbose);

/** Variadic convenience: streams all arguments into one message. */
template <typename... Args>
std::string
cat(Args &&...args)
{
    std::ostringstream oss;
    (oss << ... << args);
    return oss.str();
}

} // namespace azoo

#endif // AZOO_UTIL_LOGGING_HH
