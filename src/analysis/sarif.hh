/**
 * @file
 * SARIF 2.1.0 serialization of analysis reports.
 *
 * SARIF (Static Analysis Results Interchange Format, OASIS) is the
 * lingua franca CI annotators and editors consume; `azoo_lint --json`
 * emits it so diagnostics can ride the same rails as any other
 * static-analysis tool. One document holds one run: the driver's
 * rule table (every Vxxx/Lxxx/A2xx id, so ruleIndex references
 * resolve) plus one result per diagnostic, with the input file as
 * the physical location and the element id as the logical location
 * (automata have no line numbers).
 *
 * The output is deterministic — fixed key order, sorted nothing,
 * bytes depend only on the inputs — so goldens and diffs are stable.
 * tools/check_sarif.py structurally validates the emitted shape
 * against the 2.1.0 schema's required properties in CI.
 */

#ifndef AZOO_ANALYSIS_SARIF_HH
#define AZOO_ANALYSIS_SARIF_HH

#include <string>
#include <utility>
#include <vector>

#include "analysis/analysis.hh"

namespace azoo {
namespace analysis {

/**
 * Serialize @p fileReports — (input path, its report) pairs, in
 * command-line order — as one SARIF 2.1.0 document. The driver's
 * rule array always lists every known rule, independent of which
 * fired, so ruleIndex is stable across runs.
 */
std::string toSarif(
    const std::vector<std::pair<std::string, Report>> &fileReports);

} // namespace analysis
} // namespace azoo

#endif // AZOO_ANALYSIS_SARIF_HH
