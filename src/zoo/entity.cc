#include "zoo/entity.hh"

#include <cctype>

#include "core/builder.hh"
#include "util/logging.hh"

namespace azoo {
namespace zoo {

namespace {

/**
 * Append a chain matching @p word with at most one letter
 * substituted. Row M is the exact match; a mismatch at position j
 * (label: lowercase letters other than word[j]) drops into exact row
 * E for the remainder.
 *
 * @param entries states that enable the first position (empty =
 *        all-input heads).
 * @param[out] ends states whose match completes the word.
 */
void
appendOneSubWord(Automaton &a, const std::string &word,
                 const std::vector<ElementId> &entries,
                 std::vector<ElementId> &ends)
{
    const int n = static_cast<int>(word.size());
    std::vector<ElementId> m_row(n), e_row(n, kNoElement);
    std::vector<ElementId> b_row(n, kNoElement);

    auto letter = [](char c) {
        return CharSet::single(static_cast<uint8_t>(c));
    };
    auto not_letter = [](char c) {
        CharSet cs = CharSet::range('a', 'z');
        cs |= CharSet::range('A', 'Z');
        cs.clear(static_cast<uint8_t>(c));
        return cs;
    };

    for (int j = 0; j < n; ++j) {
        const StartType st = (j == 0 && entries.empty())
            ? StartType::kAllInput
            : StartType::kNone;
        m_row[j] = a.addSte(letter(word[j]), st);
        b_row[j] = a.addSte(not_letter(word[j]), st);
        if (j >= 1)
            e_row[j] = a.addSte(letter(word[j]));
    }
    for (auto e : entries) {
        a.addEdge(e, m_row[0]);
        a.addEdge(e, b_row[0]);
    }
    for (int j = 1; j < n; ++j) {
        a.addEdge(m_row[j - 1], m_row[j]);
        a.addEdge(m_row[j - 1], b_row[j]);
        a.addEdge(b_row[j - 1], e_row[j]);
        if (j >= 2)
            a.addEdge(e_row[j - 1], e_row[j]);
    }
    ends.push_back(m_row[n - 1]);
    ends.push_back(b_row[n - 1]);
    if (n >= 2)
        ends.push_back(e_row[n - 1]);
}

/** Append an exact literal continuing from @p froms; returns the
 *  final state. */
ElementId
continueLiteral(Automaton &a, const std::vector<ElementId> &froms,
                const std::string &lit)
{
    ElementId prev = kNoElement;
    for (size_t i = 0; i < lit.size(); ++i) {
        ElementId id = a.addSte(
            CharSet::single(static_cast<uint8_t>(lit[i])));
        if (i == 0) {
            for (auto f : froms)
                a.addEdge(f, id);
        } else {
            a.addEdge(prev, id);
        }
        prev = id;
    }
    return prev;
}

} // namespace

size_t
appendNameMatcher(Automaton &a, const input::Name &name, uint32_t code)
{
    const size_t before = a.size();

    auto mark_reports = [&](const std::vector<ElementId> &ends) {
        for (auto e : ends) {
            a.element(e).reporting = true;
            a.element(e).reportCode = code;
        }
    };

    // Format 1: "First Last" -- one substitution tolerated in either
    // token.
    {
        std::vector<ElementId> first_ends;
        appendOneSubWord(a, name.first, {}, first_ends);
        ElementId space = a.addSte(CharSet::single(' '));
        for (auto e : first_ends)
            a.addEdge(e, space);
        std::vector<ElementId> ends;
        appendOneSubWord(a, name.last, {space}, ends);
        mark_reports(ends);
    }
    // Format 2: "Last, First" -- exact.
    {
        ElementId l_end = addLiteral(a, name.last,
                                     StartType::kAllInput, false, 0);
        ElementId mid = continueLiteral(a, {l_end}, ", ");
        ElementId f_end = continueLiteral(a, {mid}, name.first);
        mark_reports({f_end});
    }
    // Format 3: "F. Last" -- initial, then one-sub last.
    {
        ElementId init = a.addSte(
            CharSet::single(static_cast<uint8_t>(name.first[0])),
            StartType::kAllInput);
        ElementId mid = continueLiteral(a, {init}, ". ");
        std::vector<ElementId> ends;
        appendOneSubWord(a, name.last, {mid}, ends);
        mark_reports(ends);
    }
    return a.size() - before;
}

std::vector<input::Name>
entityNames(const ZooConfig &cfg)
{
    return input::makeNames(cfg.scaled(10000), cfg.seed);
}

namespace {

/** True if the token, with at most one letter-for-letter
 *  substitution, ends at stream position @p end (inclusive). */
bool
subTokenEndsAt(const std::vector<uint8_t> &s, size_t end,
               const std::string &token)
{
    if (end + 1 < token.size())
        return false;
    const size_t start = end + 1 - token.size();
    int subs = 0;
    for (size_t j = 0; j < token.size(); ++j) {
        const uint8_t c = s[start + j];
        const auto want = static_cast<uint8_t>(token[j]);
        if (c == want)
            continue;
        if (!std::isalpha(c) || ++subs > 1)
            return false;
    }
    return true;
}

/** Exact literal ending at @p end. */
bool
exactEndsAt(const std::vector<uint8_t> &s, size_t end,
            const std::string &lit)
{
    if (end + 1 < lit.size())
        return false;
    const size_t start = end + 1 - lit.size();
    for (size_t j = 0; j < lit.size(); ++j) {
        if (s[start + j] != static_cast<uint8_t>(lit[j]))
            return false;
    }
    return true;
}

} // namespace

std::vector<uint64_t>
nativeResolutionCounts(const std::vector<input::Name> &names,
                       const std::vector<uint8_t> &stream)
{
    std::vector<uint64_t> counts(names.size(), 0);
    for (size_t i = 0; i < names.size(); ++i) {
        const input::Name &n = names[i];
        const std::string fmt2 = n.last + ", " + n.first;
        const std::string fmt3_mid =
            std::string(1, n.first[0]) + ". ";
        const size_t len1 = n.first.size() + 1 + n.last.size();
        const size_t len3 = fmt3_mid.size() + n.last.size();
        for (size_t t = 0; t < stream.size(); ++t) {
            bool hit = false;
            // Format 1: First' ' ' Last', one sub per token.
            if (t + 1 >= len1 && subTokenEndsAt(stream, t, n.last) &&
                stream[t - n.last.size()] == ' ' &&
                subTokenEndsAt(stream, t - n.last.size() - 1,
                               n.first)) {
                hit = true;
            }
            // Format 2: "Last, First" exact.
            if (!hit && exactEndsAt(stream, t, fmt2))
                hit = true;
            // Format 3: "F. " + Last'.
            if (!hit && t + 1 >= len3 &&
                subTokenEndsAt(stream, t, n.last) &&
                exactEndsAt(stream, t - n.last.size(), fmt3_mid)) {
                hit = true;
            }
            counts[i] += hit;
        }
    }
    return counts;
}

Benchmark
makeEntityBenchmark(const ZooConfig &cfg)
{
    Benchmark b;
    b.name = "Entity Resolution";
    b.domain = "Duplicate entry identification";
    b.inputDesc = "100k names";
    b.paperStates = 413352;
    b.paperActiveSet = 57.5615;
    b.paperSizeVsAnmlzoo = 54.40;

    auto names = entityNames(cfg);
    const size_t n = names.size();

    Automaton a("EntityResolution");
    for (size_t i = 0; i < names.size(); ++i)
        appendNameMatcher(a, names[i], static_cast<uint32_t>(i));

    b.input = input::nameStream(names, cfg.inputBytes, 0.15,
                                cfg.seed ^ 0xe171ULL);
    b.automaton = std::move(a);
    b.meta["names"] = std::to_string(n);
    return b;
}

} // namespace zoo
} // namespace azoo
