#include "obs/obs.hh"

#include <iomanip>
#include <sstream>

#include "util/logging.hh"

namespace azoo {
namespace obs {

uint64_t
HistogramSnapshot::percentile(double p) const
{
    if (count == 0)
        return 0;
    if (p < 0.0)
        p = 0.0;
    if (p > 1.0)
        p = 1.0;
    // Rank of the sample we want, 1-based, rounded up.
    const uint64_t rank = std::max<uint64_t>(
        1, static_cast<uint64_t>(p * static_cast<double>(count) + 0.5));
    uint64_t seen = 0;
    for (size_t b = 0; b < kHistogramBuckets; ++b) {
        seen += buckets[b];
        if (seen >= rank) {
            // Upper bound of bucket b, clamped to the observed max.
            // The last bucket is open-ended (it absorbs every sample
            // its power-of-two formula can't express), so its only
            // meaningful bound is the max itself.
            if (b == 0)
                return 0;
            if (b == kHistogramBuckets - 1)
                return max;
            return std::min((uint64_t(1) << b) - 1, max);
        }
    }
    return max;
}

#if AZOO_OBS_ENABLED

HistogramSnapshot
Histogram::snapshot() const
{
    HistogramSnapshot out;
    uint64_t minSeen = ~uint64_t(0);
    for (const Shard &s : shards_) {
        out.count += s.count.load(std::memory_order_relaxed);
        out.sum += s.sum.load(std::memory_order_relaxed);
        minSeen =
            std::min(minSeen, s.min.load(std::memory_order_relaxed));
        out.max =
            std::max(out.max, s.max.load(std::memory_order_relaxed));
        for (size_t b = 0; b < kHistogramBuckets; ++b) {
            out.buckets[b] +=
                s.buckets[b].load(std::memory_order_relaxed);
        }
    }
    out.min = out.count ? minSeen : 0;
    return out;
}

void
Histogram::reset()
{
    for (Shard &s : shards_) {
        s.count.store(0, std::memory_order_relaxed);
        s.sum.store(0, std::memory_order_relaxed);
        s.min.store(~uint64_t(0), std::memory_order_relaxed);
        s.max.store(0, std::memory_order_relaxed);
        for (auto &b : s.buckets)
            b.store(0, std::memory_order_relaxed);
    }
}

#endif // AZOO_OBS_ENABLED

Registry &
Registry::global()
{
    static Registry instance;
    return instance;
}

Counter &
Registry::counter(std::string_view name)
{
    std::lock_guard<std::mutex> lk(mutex_);
    auto it = counters_.find(name);
    if (it == counters_.end()) {
        it = counters_
                 .emplace(std::string(name),
                          std::make_unique<Counter>())
                 .first;
    }
    return *it->second;
}

Gauge &
Registry::gauge(std::string_view name)
{
    std::lock_guard<std::mutex> lk(mutex_);
    auto it = gauges_.find(name);
    if (it == gauges_.end()) {
        it = gauges_
                 .emplace(std::string(name), std::make_unique<Gauge>())
                 .first;
    }
    return *it->second;
}

Histogram &
Registry::histogram(std::string_view name)
{
    std::lock_guard<std::mutex> lk(mutex_);
    auto it = histograms_.find(name);
    if (it == histograms_.end()) {
        it = histograms_
                 .emplace(std::string(name),
                          std::make_unique<Histogram>())
                 .first;
    }
    return *it->second;
}

uint64_t
Registry::counterValue(std::string_view name) const
{
    std::lock_guard<std::mutex> lk(mutex_);
    auto it = counters_.find(name);
    return it == counters_.end() ? 0 : it->second->value();
}

void
Registry::reset()
{
    std::lock_guard<std::mutex> lk(mutex_);
    for (auto &[name, c] : counters_)
        c->reset();
    for (auto &[name, g] : gauges_)
        g->reset();
    for (auto &[name, h] : histograms_)
        h->reset();
}

namespace {

/** JSON string escaping for metric names (quotes, backslash,
 *  control bytes). */
void
jsonName(std::ostream &os, const std::string &s)
{
    os << '"';
    for (char c : s) {
        if (c == '"' || c == '\\') {
            os << '\\' << c;
        } else if (static_cast<unsigned char>(c) < 0x20) {
            os << "\\u" << std::hex << std::setw(4)
               << std::setfill('0') << static_cast<int>(c) << std::dec
               << std::setfill(' ');
        } else {
            os << c;
        }
    }
    os << '"';
}

} // namespace

std::string
Registry::toJson() const
{
    std::lock_guard<std::mutex> lk(mutex_);
    std::ostringstream os;
    os << "{\"schema\": \"azoo-obs-1\", \"enabled\": "
       << (kEnabled ? "true" : "false");

    os << ",\n \"counters\": {";
    bool first = true;
    for (const auto &[name, c] : counters_) {
        os << (first ? "\n  " : ",\n  ");
        first = false;
        jsonName(os, name);
        os << ": " << c->value();
    }
    os << (first ? "}" : "\n }");

    os << ",\n \"gauges\": {";
    first = true;
    for (const auto &[name, g] : gauges_) {
        os << (first ? "\n  " : ",\n  ");
        first = false;
        jsonName(os, name);
        os << ": " << g->value();
    }
    os << (first ? "}" : "\n }");

    os << ",\n \"histograms\": {";
    first = true;
    for (const auto &[name, h] : histograms_) {
        const HistogramSnapshot s = h->snapshot();
        os << (first ? "\n  " : ",\n  ");
        first = false;
        jsonName(os, name);
        os << ": {\"count\": " << s.count << ", \"sum\": " << s.sum
           << ", \"mean\": " << s.mean() << ", \"min\": " << s.min
           << ", \"max\": " << s.max
           << ", \"p50\": " << s.percentile(0.50)
           << ", \"p90\": " << s.percentile(0.90)
           << ", \"p99\": " << s.percentile(0.99) << "}";
    }
    os << (first ? "}" : "\n }");

    os << "}\n";
    return os.str();
}

void
noteParse(std::string_view format, ErrorCode code)
{
    if (!kEnabled)
        return;
    Registry &reg = Registry::global();
    reg.counter(cat("parser.", format, ".docs")).inc();
    if (code != ErrorCode::kOk) {
        reg.counter(cat("parser.", format, ".errors.",
                        errorCodeName(code)))
            .inc();
    }
}

void
noteTransform(std::string_view pass, uint64_t statesBefore,
              uint64_t statesAfter)
{
    if (!kEnabled)
        return;
    Registry &reg = Registry::global();
    reg.counter(cat("transform.", pass, ".runs")).inc();
    reg.counter(cat("transform.", pass, ".states_before"))
        .add(statesBefore);
    reg.counter(cat("transform.", pass, ".states_after"))
        .add(statesAfter);
}

void
noteGuardStop(std::string_view prefix, ErrorCode code)
{
    if (!kEnabled)
        return;
    Registry::global()
        .counter(cat(prefix, ".guard_stops.", errorCodeName(code)))
        .inc();
}

} // namespace obs
} // namespace azoo
