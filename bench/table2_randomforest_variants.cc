/**
 * @file
 * Table II: Random Forest benchmark variant trade-offs.
 *
 * Trains variants A (more features), B (baseline), and C (more
 * leaves/deeper trees) on the synthetic digits and reports features,
 * max leaves, automaton states, model accuracy, and runtime relative
 * to B. Runtime on spatial architectures is symbols/classification
 * (the paper's observation that runtime scales with feature count);
 * we additionally report measured CPU-interpreter time per
 * classification, which shows the same ordering.
 */

#include <iostream>

#include "bench/common.hh"
#include "engine/nfa_engine.hh"
#include "util/table.hh"
#include "util/timer.hh"
#include "zoo/randomforest.hh"

using namespace azoo;

int
main(int argc, char **argv)
{
    bench::BenchConfig cfg = bench::parseBenchFlags(argc, argv);
    // Keep the default input modest: streams regenerate per variant.
    if (cfg.zoo.inputBytes > 512 * 1024)
        cfg.zoo.inputBytes = 512 * 1024;

    std::cout << "Table II: Random Forest variant trade-offs (scale="
              << cfg.zoo.scale << ")\n\n";

    struct Row {
        char variant;
        int features;
        int leaves;
        uint64_t states;
        double accuracy;
        double symbols_per_item;
        double cpu_us_per_item;
    };
    std::vector<Row> rows;

    for (char variant : {'A', 'B', 'C'}) {
        zoo::RfBundle bundle =
            zoo::makeRandomForestBundle(cfg.zoo, variant);
        const auto &params = bundle.forest.params();

        NfaEngine engine(bundle.benchmark.automaton);
        SimOptions opts;
        opts.recordReports = false;
        Timer timer;
        engine.simulate(bundle.benchmark.input, opts);
        const double us_per_item =
            timer.seconds() * 1e6 / bundle.numItems;

        rows.push_back({variant, params.features, params.maxLeaves,
                        bundle.benchmark.automaton.size(),
                        bundle.accuracy,
                        bundle.benchmark.symbolsPerItem,
                        us_per_item});
        std::cerr << "  [variant " << variant << " trained, acc="
                  << Table::percent(bundle.accuracy * 100) << "]\n";
    }

    const Row &base = rows[1]; // variant B is the 1.0x baseline
    Table t({"Variant", "Features", "Max Leaves", "States", "Accuracy",
             "Runtime (sym/item)", "Runtime (CPU us/item)"});
    for (const auto &r : rows) {
        t.addRow({std::string(1, r.variant),
                  std::to_string(r.features),
                  std::to_string(r.leaves), Table::num(r.states),
                  Table::percent(r.accuracy * 100, 2),
                  Table::ratio(r.symbols_per_item /
                               base.symbols_per_item, 2),
                  Table::ratio(r.cpu_us_per_item /
                               base.cpu_us_per_item, 2)});
    }
    t.print(std::cout);

    std::cout << "\nPaper Table II: A={270 feat, 400 leaves, 248k, "
                 "93.37%, 1.35x}, B={200, 400, 248k, 92.91%, 1.0x}, "
                 "C={200, 800, 992k, 93.85%, 1.0x}.\n"
                 "(Our variant A uses 230 features: the index "
                 "encoding has 239 usable symbols; see "
                 "EXPERIMENTS.md.)\n";
    return 0;
}
