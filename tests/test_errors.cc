/**
 * @file
 * Recoverable-error-layer tests: the bad-input corpus parses to
 * structured Status values (never aborts), parse errors carry
 * line:column locations and the offending token, ParseLimits and
 * RunGuard bound resources, fault injection exercises the recovery
 * paths (truncated read, allocation failure, forced guard expiry),
 * and ParallelRunner survives worker failures with healthy streams
 * bit-identical to a serial run.
 */

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <stdexcept>

#include "core/anml.hh"
#include "core/automaton.hh"
#include "core/mnrl.hh"
#include "core/serialize.hh"
#include "engine/nfa_engine.hh"
#include "engine/parallel_runner.hh"
#include "tool_common.hh"
#include "engine/run_guard.hh"
#include "regex/parser.hh"
#include "util/fault.hh"
#include "util/io.hh"
#include "util/thread_pool.hh"

namespace azoo {
namespace {

std::string
badPath(const std::string &name)
{
    return std::string(AZOO_TEST_DATA_DIR) + "/bad/" + name;
}

std::string
slurp(const std::string &path)
{
    std::ifstream f(path, std::ios::binary);
    EXPECT_TRUE(f.is_open()) << path;
    std::ostringstream os;
    os << f.rdbuf();
    return os.str();
}

/** Every armed point must be disarmed even when a test fails. */
struct FaultScope {
    ~FaultScope() { fault::disarmAll(); }
};

// ---------------------------------------------------------------
// Bad-input corpus: structured errors through the library API, with
// a usable source location. None of these may abort the process.
// ---------------------------------------------------------------

TEST(BadCorpus, TruncatedMnrl)
{
    Expected<Automaton> got = loadMnrl(badPath("truncated.mnrl"));
    ASSERT_FALSE(got.ok());
    EXPECT_EQ(got.status().code(), ErrorCode::kParseError);
    EXPECT_TRUE(got.status().loc().known()) << got.status().str();
    EXPECT_NE(got.status().message().find("unterminated"),
              std::string::npos)
        << got.status().str();
}

TEST(BadCorpus, DanglingEdgeMnrl)
{
    // Well-formed JSON, broken graph: the semantic error must still
    // point at the offending node.
    Expected<Automaton> got = loadMnrl(badPath("dangling_edge.mnrl"));
    ASSERT_FALSE(got.ok());
    EXPECT_EQ(got.status().code(), ErrorCode::kParseError);
    EXPECT_TRUE(got.status().loc().known()) << got.status().str();
    EXPECT_NE(got.status().message().find("_9"), std::string::npos)
        << got.status().str();
}

TEST(BadCorpus, UnterminatedAnml)
{
    Expected<Automaton> got = loadAnml(badPath("unterminated.anml"));
    ASSERT_FALSE(got.ok());
    EXPECT_EQ(got.status().code(), ErrorCode::kParseError);
    EXPECT_TRUE(got.status().loc().known()) << got.status().str();
}

TEST(BadCorpus, BadEntityAnml)
{
    Expected<Automaton> got = loadAnml(badPath("bad_entity.anml"));
    ASSERT_FALSE(got.ok());
    EXPECT_EQ(got.status().code(), ErrorCode::kParseError);
    EXPECT_TRUE(got.status().loc().known()) << got.status().str();
}

TEST(BadCorpus, BitFlippedAzml)
{
    Expected<Automaton> got = loadAzml(badPath("bitflip.azml"));
    ASSERT_FALSE(got.ok());
    EXPECT_EQ(got.status().code(), ErrorCode::kParseError);
    // azml errors are line-addressed; the flipped record is line 3.
    EXPECT_EQ(got.status().loc().line, 3u) << got.status().str();
}

TEST(BadCorpus, DeeplyNestedRegex)
{
    const std::string pattern = slurp(badPath("deep_nesting.regex"));
    Expected<Regex> got = parseRegex(pattern);
    ASSERT_FALSE(got.ok());
    EXPECT_EQ(got.status().code(), ErrorCode::kLimitExceeded);
    EXPECT_NE(got.status().message().find("nest"), std::string::npos)
        << got.status().str();
}

// ---------------------------------------------------------------
// Satellite 2: line:column and offending-token format.
// ---------------------------------------------------------------

TEST(ErrorFormat, MnrlReportsLineColumnAndToken)
{
    const std::string doc = "{\n  \"id\": \"x\",\n  \"nodes\": oops\n}";
    std::istringstream is(doc);
    Expected<Automaton> got = readMnrl(is);
    ASSERT_FALSE(got.ok());
    // "oops" starts at line 3, column 12 (1-based).
    EXPECT_EQ(got.status().loc().line, 3u) << got.status().str();
    EXPECT_EQ(got.status().loc().column, 12u) << got.status().str();
    EXPECT_NE(got.status().message().find("oops"), std::string::npos)
        << got.status().str();
    EXPECT_NE(got.status().str().find("3:12"), std::string::npos)
        << got.status().str();
}

TEST(ErrorFormat, AnmlReportsLineColumnAndToken)
{
    const std::string doc =
        "<anml version=\"1.0\">\n"
        "  <automata-network id=\"t\">\n"
        "    <state-transition-element id=\"_0\" symbol-set=\"[a]\" "
        "start=\"bogus\">\n"
        "    </state-transition-element>\n"
        "  </automata-network>\n"
        "</anml>\n";
    std::istringstream is(doc);
    Expected<Automaton> got = readAnml(is);
    ASSERT_FALSE(got.ok());
    EXPECT_EQ(got.status().loc().line, 3u) << got.status().str();
    EXPECT_NE(got.status().message().find("bogus"), std::string::npos)
        << got.status().str();
}

TEST(ErrorFormat, RegexReportsOffset)
{
    Expected<Regex> got = parseRegex("ab[c");
    ASSERT_FALSE(got.ok());
    EXPECT_EQ(got.status().code(), ErrorCode::kParseError);
    EXPECT_TRUE(got.status().loc().known()) << got.status().str();
    // Single-line input: column == byte offset + 1.
    EXPECT_EQ(got.status().loc().line, 1u);
}

TEST(ErrorFormat, OrDieWrappersAcceptValidInput)
{
    // The compat wrappers must still hand back a working automaton.
    const std::string azml =
        "automaton t\nste 0 start=all report=1 symbols=[a]\nend\n";
    std::istringstream is(azml);
    Automaton a = readAzmlOrDie(is);
    EXPECT_EQ(a.size(), 1u);
}

// ---------------------------------------------------------------
// ParseLimits: hostile sizes are refused, not honoured.
// ---------------------------------------------------------------

TEST(ParseLimits, MaxStatesEnforcedAcrossFormats)
{
    const std::string azml =
        "automaton t\n"
        "ste 0 start=all report=- symbols=[a]\n"
        "ste 1 start=none report=1 symbols=[b]\n"
        "edge 0 1\nend\n";
    ParseLimits limits;
    limits.maxStates = 1;
    std::istringstream is(azml);
    Expected<Automaton> got = readAzml(is, limits);
    ASSERT_FALSE(got.ok());
    EXPECT_EQ(got.status().code(), ErrorCode::kLimitExceeded);
}

TEST(ParseLimits, MaxInputBytesEnforced)
{
    ParseLimits limits;
    limits.maxInputBytes = 16;
    std::istringstream is(std::string(64, '{'));
    Expected<Automaton> got = readMnrl(is, limits);
    ASSERT_FALSE(got.ok());
    EXPECT_EQ(got.status().code(), ErrorCode::kLimitExceeded);
}

TEST(ParseLimits, JsonNestingDepthBounded)
{
    ParseLimits limits;
    limits.maxNestingDepth = 8;
    std::istringstream is(std::string(32, '[') + std::string(32, ']'));
    Expected<Automaton> got = readMnrl(is, limits);
    ASSERT_FALSE(got.ok());
    EXPECT_EQ(got.status().code(), ErrorCode::kLimitExceeded);
}

// ---------------------------------------------------------------
// Fault injection: the recovery paths actually run.
// ---------------------------------------------------------------

TEST(FaultInjection, TruncatedReadSurfacesAsParseError)
{
    FaultScope scope;
    // readMnrl slurps through readStream, which hosts the
    // truncated-read point (losing the tail half of valid JSON is
    // guaranteed to break it).
    const std::string doc =
        "{\"id\": \"t\", \"nodes\": [{\"id\": \"_0\", \"type\": "
        "\"hState\", \"enable\": \"always\", \"report\": true, "
        "\"attributes\": {\"symbolSet\": \"[a]\"}, "
        "\"outputConnections\": []}]}";
    fault::armAfter(fault::Point::kTruncatedRead, 0);
    std::istringstream is(doc);
    Expected<Automaton> got = readMnrl(is);
    ASSERT_FALSE(got.ok()) << "truncated read must not parse clean";
    EXPECT_EQ(got.status().code(), ErrorCode::kParseError);
    // The same document parses once the fault is disarmed.
    fault::disarmAll();
    std::istringstream again(doc);
    EXPECT_TRUE(readMnrl(again).ok());
}

TEST(FaultInjection, ParserAllocFailureIsResourceExhausted)
{
    FaultScope scope;
    const std::string azml =
        "automaton t\nste 0 start=all report=1 symbols=[a]\nend\n";
    fault::armAfter(fault::Point::kAllocFail, 0);
    std::istringstream is(azml);
    Expected<Automaton> got = readAzml(is);
    ASSERT_FALSE(got.ok());
    EXPECT_EQ(got.status().code(), ErrorCode::kResourceExhausted);
}

TEST(FaultInjection, GuardExpiryTruncatesRun)
{
    FaultScope scope;
    Automaton a("t");
    ElementId s = a.addSte(CharSet::single('a'), StartType::kAllInput,
                           true, 1);
    a.addEdge(s, s);
    NfaEngine eng(a);
    RunGuard guard;
    SimOptions opts;
    opts.guard = &guard;
    const std::vector<uint8_t> input(4096, 'a');

    // Fire on the second poll so a non-empty prefix completes first.
    fault::armAfter(fault::Point::kGuardExpiry, 1);
    SimResult r = eng.simulate(input, opts);
    ASSERT_TRUE(r.truncated());
    EXPECT_EQ(r.guardStatus.code(), ErrorCode::kDeadlineExceeded);
    EXPECT_LT(r.symbols, input.size());
    EXPECT_EQ(r.reportCount, r.symbols); // prefix answer is exact
}

// ---------------------------------------------------------------
// AZOO_FAULT_SPEC grammar. The spec parser runs on attacker-ish input
// (an env var crossing a fork boundary), so every malformed form must
// come back kInvalidArgument naming the offending entry — and a bad
// spec must arm *nothing*, not the valid prefix before the error.
// ---------------------------------------------------------------

TEST(FaultSpec, ParsesEveryScheduleForm)
{
    auto entries = fault::parseSpec(
        "alloc-fail:after:3;session-drop:random:42:150;"
        "slow-consumer:off;accept-fail:after:0");
    ASSERT_TRUE(entries.ok()) << entries.status().str();
    ASSERT_EQ(entries->size(), 4u);
    EXPECT_EQ((*entries)[0].point, fault::Point::kAllocFail);
    EXPECT_EQ((*entries)[0].mode, fault::SpecEntry::Mode::kAfter);
    EXPECT_EQ((*entries)[0].skip, 3u);
    EXPECT_EQ((*entries)[1].point, fault::Point::kSessionDrop);
    EXPECT_EQ((*entries)[1].mode, fault::SpecEntry::Mode::kRandom);
    EXPECT_EQ((*entries)[1].seed, 42u);
    EXPECT_EQ((*entries)[1].perMille, 150u);
    EXPECT_EQ((*entries)[2].mode, fault::SpecEntry::Mode::kOff);
    EXPECT_EQ((*entries)[3].point, fault::Point::kAcceptFail);
}

TEST(FaultSpec, EmptySpecIsNoEntries)
{
    auto entries = fault::parseSpec("");
    ASSERT_TRUE(entries.ok());
    EXPECT_TRUE(entries->empty());
}

TEST(FaultSpec, MalformedSpecsAreInvalidArgument)
{
    const char *bad[] = {
        "bogus-point:after:1",         // unknown point name
        "alloc-fail",                  // missing schedule
        "alloc-fail:",                 // empty schedule
        "alloc-fail:maybe:1",          // unknown schedule kind
        "alloc-fail:after",            // after without a count
        "alloc-fail:after:",           // empty count
        "alloc-fail:after:12x",        // trailing junk in number
        "alloc-fail:after:-1",         // negative
        "alloc-fail:random:7",         // random missing per-mille
        "alloc-fail:random:7:1001",    // per-mille over 1000
        "alloc-fail:random:7:150:9",   // excess field
        ";alloc-fail:after:1",         // empty leading entry
        "alloc-fail:after:1;;",        // empty middle entry
        "alloc-fail:after :1",         // interior whitespace
    };
    for (const char *spec : bad) {
        auto entries = fault::parseSpec(spec);
        ASSERT_FALSE(entries.ok()) << "accepted: " << spec;
        EXPECT_EQ(entries.status().code(), ErrorCode::kInvalidArgument)
            << spec;
    }
}

#if AZOO_FAULT_INJECTION
TEST(FaultSpec, BadSpecArmsNothing)
{
    FaultScope scope;
    // The first entry is valid; the second is garbage. applySpec must
    // reject the whole spec without arming the valid prefix.
    Status st = fault::applySpec("alloc-fail:after:0;nope:off");
    ASSERT_FALSE(st.ok());
    EXPECT_FALSE(fault::shouldFail(fault::Point::kAllocFail));
}

TEST(FaultSpec, AppliedSpecFiresLikeDirectArming)
{
    FaultScope scope;
    ASSERT_TRUE(fault::applySpec("session-drop:after:2").ok());
    EXPECT_FALSE(fault::shouldFail(fault::Point::kSessionDrop));
    EXPECT_FALSE(fault::shouldFail(fault::Point::kSessionDrop));
    EXPECT_TRUE(fault::shouldFail(fault::Point::kSessionDrop));
    // armAfter() is one-shot: disarmed after firing.
    EXPECT_FALSE(fault::shouldFail(fault::Point::kSessionDrop));
}
#endif // AZOO_FAULT_INJECTION

// ---------------------------------------------------------------
// RunGuard semantics on the real stop conditions.
// ---------------------------------------------------------------

TEST(RunGuard, SymbolBudgetYieldsExactPrefix)
{
    Automaton a("t");
    ElementId s = a.addSte(CharSet::single('a'), StartType::kAllInput,
                           true, 1);
    a.addEdge(s, s);
    NfaEngine eng(a);
    RunGuard guard;
    guard.setSymbolBudget(2048);
    SimOptions opts;
    opts.guard = &guard;
    const std::vector<uint8_t> input(100000, 'a');

    SimResult r = eng.simulate(input, opts);
    ASSERT_TRUE(r.truncated());
    EXPECT_EQ(r.guardStatus.code(), ErrorCode::kLimitExceeded);
    EXPECT_GE(r.symbols, 2048u);
    // Polls are coarse: overshoot is bounded by one interval.
    EXPECT_LE(r.symbols, 2048u + kGuardCheckIntervalSymbols);
    EXPECT_EQ(r.reportCount, r.symbols);
    for (const Report &rep : r.reports)
        EXPECT_LT(rep.offset, r.symbols);
}

TEST(RunGuard, CancelStopsImmediately)
{
    Automaton a("t");
    a.addSte(CharSet::all(), StartType::kAllInput, true, 1);
    NfaEngine eng(a);
    RunGuard guard;
    guard.cancel();
    SimOptions opts;
    opts.guard = &guard;
    const std::vector<uint8_t> input(8192, 'x');

    SimResult r = eng.simulate(input, opts);
    ASSERT_TRUE(r.truncated());
    EXPECT_EQ(r.guardStatus.code(), ErrorCode::kCancelled);
    EXPECT_EQ(r.symbols, 0u);
}

TEST(RunGuard, UnguardedRunIsComplete)
{
    Automaton a("t");
    a.addSte(CharSet::all(), StartType::kAllInput, true, 1);
    NfaEngine eng(a);
    const std::vector<uint8_t> input(4096, 'x');
    SimResult r = eng.simulate(input);
    EXPECT_FALSE(r.truncated());
    EXPECT_EQ(r.symbols, input.size());
}

// ---------------------------------------------------------------
// Satellite 1: ThreadPool::parallelFor rethrows worker exceptions.
// ---------------------------------------------------------------

TEST(ThreadPoolErrors, ParallelForRethrowsFirstException)
{
    ThreadPool pool(4);
    EXPECT_THROW(
        pool.parallelFor(64,
                         [](size_t i) {
                             if (i == 17)
                                 throw std::runtime_error("worker 17");
                         }),
        std::runtime_error);
    // The pool survives and keeps scheduling work.
    std::atomic<uint64_t> sum{0};
    pool.parallelFor(100, [&](size_t i) { sum += i; });
    EXPECT_EQ(sum.load(), 4950u);
}

// ---------------------------------------------------------------
// ParallelRunner failure capture.
// ---------------------------------------------------------------

/** A small automaton with two components so sharding is non-trivial. */
Automaton
twoComponentAutomaton()
{
    Automaton a("t");
    ElementId s0 = a.addSte(CharSet::single('a'),
                            StartType::kAllInput, true, 1);
    a.addEdge(s0, s0);
    ElementId s1 = a.addSte(CharSet::single('b'),
                            StartType::kAllInput, true, 2);
    a.addEdge(s1, s1);
    return a;
}

std::vector<std::vector<uint8_t>>
makeStreams(size_t n)
{
    std::vector<std::vector<uint8_t>> streams(n);
    for (size_t i = 0; i < n; ++i)
        streams[i].assign(64 + 8 * i, i % 2 ? 'b' : 'a');
    return streams;
}

TEST(ParallelErrors, BatchSurvivesWorkerFailure)
{
    FaultScope scope;
    Automaton a = twoComponentAutomaton();
    ParallelOptions popts;
    popts.threads = 4;
    ParallelRunner runner(a, popts);
    const auto streams = makeStreams(8);

    // Serial reference results for every stream.
    NfaEngine serial(a);
    std::vector<SimResult> ref(streams.size());
    for (size_t i = 0; i < streams.size(); ++i) {
        ref[i] = serial.simulate(streams[i]);
        canonicalizeReports(ref[i]);
    }

    fault::armAfter(fault::Point::kAllocFail, 0);
    BatchResult br = runner.runBatch(streams);
    fault::disarmAll();

    EXPECT_FALSE(br.allOk());
    EXPECT_EQ(br.failedStreams, 1u);
    size_t failed = 0;
    for (size_t i = 0; i < streams.size(); ++i) {
        if (!br.perStreamStatus[i].ok()) {
            ++failed;
            EXPECT_EQ(br.perStreamStatus[i].code(),
                      ErrorCode::kResourceExhausted);
            EXPECT_EQ(br.perStream[i].symbols, 0u);
            continue;
        }
        // Healthy streams are bit-identical to the serial run.
        EXPECT_EQ(br.perStream[i].symbols, ref[i].symbols) << i;
        EXPECT_EQ(br.perStream[i].reportCount, ref[i].reportCount)
            << i;
        EXPECT_EQ(br.perStream[i].reports, ref[i].reports) << i;
    }
    EXPECT_EQ(failed, 1u);

    // The runner is reusable after a failure; all streams succeed.
    BatchResult clean = runner.runBatch(streams);
    EXPECT_TRUE(clean.allOk());
    for (size_t i = 0; i < streams.size(); ++i)
        EXPECT_EQ(clean.perStream[i].reports, ref[i].reports) << i;
}

TEST(ParallelErrors, ShardedRunCarriesGuardTruncation)
{
    Automaton a = twoComponentAutomaton();
    ParallelOptions popts;
    popts.threads = 2;
    RunGuard guard;
    guard.setSymbolBudget(2048);
    popts.sim.guard = &guard;
    ParallelRunner runner(a, popts);

    std::vector<uint8_t> input(100000, 'a');
    SimResult r = runner.simulateSharded(input);
    ASSERT_TRUE(r.truncated());
    EXPECT_EQ(r.guardStatus.code(), ErrorCode::kLimitExceeded);
    EXPECT_LT(r.symbols, input.size());
    for (const Report &rep : r.reports)
        EXPECT_LT(rep.offset, r.symbols);
}

TEST(ParallelErrors, ShardedRunReportsWorkerFailure)
{
    FaultScope scope;
    Automaton a = twoComponentAutomaton();
    ParallelOptions popts;
    popts.threads = 2;
    ParallelRunner runner(a, popts);

    std::vector<uint8_t> input(4096, 'a');
    fault::armAfter(fault::Point::kAllocFail, 0);
    SimResult r = runner.simulateSharded(input);
    fault::disarmAll();
    ASSERT_TRUE(r.truncated());
    EXPECT_EQ(r.guardStatus.code(), ErrorCode::kResourceExhausted);
    // A failed shard invalidates the merge: empty, not silently wrong.
    EXPECT_EQ(r.symbols, 0u);
    EXPECT_TRUE(r.reports.empty());

    // And the runner recovers on the next call.
    SimResult clean = runner.simulateSharded(input);
    EXPECT_FALSE(clean.truncated());
    EXPECT_EQ(clean.symbols, input.size());
}

/** Input alternating 'a'/'b' so both components report every cycle. */
std::vector<uint8_t>
alternatingInput(size_t n)
{
    std::vector<uint8_t> in(n);
    for (size_t i = 0; i < n; ++i)
        in[i] = i % 2 ? 'b' : 'a';
    return in;
}

TEST(ParallelErrors, ChunkedBatchRejectsLazyDfa)
{
    Automaton a = twoComponentAutomaton();
    ParallelOptions popts;
    popts.threads = 2;
    popts.chunkBytes = 64;
    popts.engine = ParallelEngine::kLazyDfa;
    ParallelRunner runner(a, popts);

    const auto streams = makeStreams(4);
    BatchResult br = runner.runBatch(streams);
    EXPECT_FALSE(br.allOk());
    EXPECT_EQ(br.failedStreams, streams.size());
    ASSERT_EQ(br.perStreamStatus.size(), streams.size());
    for (size_t i = 0; i < streams.size(); ++i) {
        EXPECT_EQ(br.perStreamStatus[i].code(),
                  ErrorCode::kInvalidArgument)
            << i;
        EXPECT_EQ(br.perStream[i].symbols, 0u) << i;
    }
    EXPECT_EQ(br.totalSymbols, 0u);
    EXPECT_EQ(br.totalReports, 0u);
}

TEST(ParallelErrors, ChunkedBatchHonoursGuardBudget)
{
    Automaton a = twoComponentAutomaton();
    ParallelOptions popts;
    popts.threads = 2;
    popts.chunkBytes = 512;
    RunGuard guard;
    guard.setSymbolBudget(2048);
    popts.sim.guard = &guard;
    ParallelRunner runner(a, popts);

    std::vector<std::vector<uint8_t>> streams(3,
                                              alternatingInput(10000));
    BatchResult br = runner.runBatch(streams);
    EXPECT_TRUE(br.allOk());

    // Serial guarded reference over one stream (all are identical).
    RunGuard serialGuard;
    serialGuard.setSymbolBudget(2048);
    SimOptions sopts;
    sopts.guard = &serialGuard;
    NfaEngine serial(a);
    SimResult ref =
        serial.simulate(streams[0].data(), streams[0].size(), sopts);
    canonicalizeReports(ref);
    ASSERT_TRUE(ref.truncated());

    for (size_t i = 0; i < streams.size(); ++i) {
        const SimResult &r = br.perStream[i];
        ASSERT_TRUE(r.truncated()) << i;
        EXPECT_EQ(r.guardStatus.code(), ErrorCode::kLimitExceeded)
            << i;
        EXPECT_EQ(r.symbols, ref.symbols) << i;
        EXPECT_EQ(r.reportCount, ref.reportCount) << i;
        EXPECT_EQ(r.reports, ref.reports) << i;
        EXPECT_EQ(r.totalEnabled, ref.totalEnabled) << i;
    }
}

TEST(ParallelErrors, ShardedTruncationCountersMatchSerialPrefix)
{
    Automaton a = twoComponentAutomaton();
    ParallelOptions popts;
    popts.threads = 2;
    RunGuard guard;
    guard.setSymbolBudget(3000);
    popts.sim.guard = &guard;
    ParallelRunner runner(a, popts);

    const std::vector<uint8_t> input = alternatingInput(100000);
    SimResult r = runner.simulateSharded(input);
    ASSERT_TRUE(r.truncated());
    EXPECT_EQ(r.guardStatus.code(), ErrorCode::kLimitExceeded);
    ASSERT_LT(r.symbols, input.size());

    // The truncated result must be *exact* for the consumed prefix:
    // identical to an unguarded serial run over exactly r.symbols
    // bytes — counters included, not just the report stream.
    NfaEngine serial(a);
    SimResult ref = serial.simulate(
        input.data(), static_cast<size_t>(r.symbols), SimOptions{});
    canonicalizeReports(ref);
    EXPECT_EQ(r.reportCount, ref.reportCount);
    EXPECT_EQ(r.reports, ref.reports);
    EXPECT_EQ(r.totalEnabled, ref.totalEnabled);
    EXPECT_EQ(r.reportingCycles, ref.reportingCycles);
}

TEST(ParallelErrors, ShardedInjectedExpiryIsExactForCommonPrefix)
{
    FaultScope scope;
    Automaton a = twoComponentAutomaton();
    ParallelOptions popts;
    popts.threads = 2;
    RunGuard guard; // no limits: only the injected fault can fire
    popts.sim.guard = &guard;
    ParallelRunner runner(a, popts);

    const std::vector<uint8_t> input = alternatingInput(100000);
    // One poll (from whichever shard gets there first) is skipped,
    // the next fires: exactly one shard truncates while the other
    // keeps going, so the shards consume *different* prefixes and the
    // merge must reconcile down to the common one.
    fault::armAfter(fault::Point::kGuardExpiry, 1);
    SimResult r = runner.simulateSharded(input);
    fault::disarmAll();

    ASSERT_TRUE(r.truncated());
    EXPECT_EQ(r.guardStatus.code(), ErrorCode::kDeadlineExceeded);
    EXPECT_LT(r.symbols, input.size());
    EXPECT_EQ(r.symbols % kGuardCheckIntervalSymbols, 0u);

    NfaEngine serial(a);
    SimResult ref = serial.simulate(
        input.data(), static_cast<size_t>(r.symbols), SimOptions{});
    canonicalizeReports(ref);
    EXPECT_EQ(r.reportCount, ref.reportCount);
    EXPECT_EQ(r.reports, ref.reports);
    EXPECT_EQ(r.totalEnabled, ref.totalEnabled);
    EXPECT_EQ(r.reportingCycles, ref.reportingCycles);
}

TEST(ParallelErrors, ShardedLazyTruncationMatchesSerialPrefix)
{
    Automaton a = twoComponentAutomaton();
    ParallelOptions popts;
    popts.threads = 2;
    popts.engine = ParallelEngine::kLazyDfa;
    RunGuard guard;
    guard.setSymbolBudget(3000);
    popts.sim.guard = &guard;
    ParallelRunner runner(a, popts);

    const std::vector<uint8_t> input = alternatingInput(100000);
    SimResult r = runner.simulateSharded(input);
    ASSERT_TRUE(r.truncated());
    ASSERT_LT(r.symbols, input.size());

    NfaEngine serial(a);
    SimResult ref = serial.simulate(
        input.data(), static_cast<size_t>(r.symbols), SimOptions{});
    canonicalizeReports(ref);
    EXPECT_EQ(r.reportCount, ref.reportCount);
    EXPECT_EQ(r.reports, ref.reports);
    EXPECT_EQ(r.reportingCycles, ref.reportingCycles);
}

// ---------------------------------------------------------------
// azoo_run's --load flag-conflict contract (issue 6 satellite):
// combining --load with a parse-path flag is a usage error, exit 64.
// ---------------------------------------------------------------

TEST(ToolErrors, LoadFlagConflictCoversEveryParseFlag)
{
    // Each conflicting flag yields a non-empty usage message that
    // names the flag; unrelated flags pass through silently.
    for (const char *flag : tool::kLoadConflictFlags) {
        const std::string msg = tool::loadFlagConflict({flag});
        EXPECT_FALSE(msg.empty()) << flag;
        EXPECT_NE(msg.find(std::string("--") + flag),
                  std::string::npos)
            << msg;
        EXPECT_NE(msg.find("--load"), std::string::npos) << msg;
    }
    EXPECT_TRUE(tool::loadFlagConflict({}).empty());
    EXPECT_TRUE(
        tool::loadFlagConflict({"input", "engine", "by-code", "load"})
            .empty());
    // Mixed: one conflicting flag among benign ones still trips.
    EXPECT_FALSE(
        tool::loadFlagConflict({"input", "save", "engine"}).empty());
}

using ToolErrorsDeath = ::testing::Test;

TEST(ToolErrorsDeath, UsageErrorExits64)
{
    EXPECT_EXIT(tool::usageError(tool::loadFlagConflict({"automaton"})),
                ::testing::ExitedWithCode(tool::kExitUsage),
                "conflicts with --load");
}

} // namespace
} // namespace azoo
