file(REMOVE_RECURSE
  "CMakeFiles/section5_snort_modifiers.dir/section5_snort_modifiers.cc.o"
  "CMakeFiles/section5_snort_modifiers.dir/section5_snort_modifiers.cc.o.d"
  "section5_snort_modifiers"
  "section5_snort_modifiers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/section5_snort_modifiers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
