#include "core/mnrl.hh"

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <vector>

#include "obs/obs.hh"
#include "util/fault.hh"
#include "util/io.hh"
#include "util/logging.hh"
#include "util/strings.hh"

namespace azoo {

namespace {

// ---------------------------------------------------------------
// Minimal JSON value model + recursive-descent parser. Only what
// MNRL documents need: objects, arrays, strings, numbers, booleans.
// ---------------------------------------------------------------

struct JsonValue;
using JsonPtr = std::unique_ptr<JsonValue>;

struct JsonValue {
    enum class Kind { kObject, kArray, kString, kNumber, kBool,
                      kNull } kind = Kind::kNull;
    std::map<std::string, JsonPtr> object;
    std::vector<JsonPtr> array;
    std::string str;
    double num = 0;
    bool boolean = false;
    /** Byte offset of this value in the source text, so semantic
     *  errors (bad node type, missing attribute) can still report a
     *  line:column. */
    size_t srcOff = 0;

    const JsonValue *
    get(const std::string &key) const
    {
        auto it = object.find(key);
        return it == object.end() ? nullptr : it->second.get();
    }
};

class JsonParser
{
  public:
    JsonParser(std::string text, const ParseLimits &limits)
        : text_(std::move(text)), limits_(limits)
    {
    }

    JsonPtr
    run()
    {
        JsonPtr v = parseValue();
        skipWs();
        if (pos_ != text_.size())
            die("trailing content");
        return v;
    }

  private:
    [[noreturn]] void
    die(const std::string &what,
        ErrorCode code = ErrorCode::kParseError)
    {
        throw StatusError(Status(
            code,
            cat("mnrl json: ", what, " near '", tokenAt(text_, pos_),
                "'"),
            locateOffset(text_, pos_)));
    }

    /** RAII nesting-depth tracker; bounds parser recursion so
     *  adversarial documents ("[[[[…") cannot overflow the stack. */
    struct DepthGuard {
        explicit DepthGuard(JsonParser &p) : p_(p)
        {
            if (++p_.depth_ > p_.limits_.maxNestingDepth)
                p_.die(cat("nesting depth exceeds limit (",
                           p_.limits_.maxNestingDepth, ")"),
                       ErrorCode::kLimitExceeded);
        }
        ~DepthGuard() { --p_.depth_; }
        JsonParser &p_;
    };

    void
    skipWs()
    {
        while (pos_ < text_.size() &&
               std::isspace(static_cast<unsigned char>(text_[pos_]))) {
            ++pos_;
        }
    }

    char
    peek()
    {
        skipWs();
        if (pos_ >= text_.size())
            die("unexpected end");
        return text_[pos_];
    }

    void
    expect(char c)
    {
        if (peek() != c)
            die(cat("expected '", std::string(1, c), "'"));
        ++pos_;
    }

    JsonPtr
    parseValue()
    {
        const char c = peek();
        const size_t off = pos_;
        JsonPtr v;
        if (c == '{') {
            v = parseObject();
        } else if (c == '[') {
            v = parseArray();
        } else if (c == '"') {
            v = parseString();
        } else if (c == 't' || c == 'f') {
            v = parseBool();
        } else if (c == 'n') {
            if (text_.compare(pos_, 4, "null") != 0)
                die("bad literal");
            pos_ += 4;
            v = std::make_unique<JsonValue>();
        } else {
            v = parseNumber();
        }
        v->srcOff = off;
        return v;
    }

    JsonPtr
    parseObject()
    {
        DepthGuard depth(*this);
        auto v = std::make_unique<JsonValue>();
        v->kind = JsonValue::Kind::kObject;
        expect('{');
        if (peek() == '}') {
            ++pos_;
            return v;
        }
        for (;;) {
            JsonPtr key = parseString();
            expect(':');
            v->object[key->str] = parseValue();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            expect('}');
            return v;
        }
    }

    JsonPtr
    parseArray()
    {
        DepthGuard depth(*this);
        auto v = std::make_unique<JsonValue>();
        v->kind = JsonValue::Kind::kArray;
        expect('[');
        if (peek() == ']') {
            ++pos_;
            return v;
        }
        for (;;) {
            v->array.push_back(parseValue());
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            expect(']');
            return v;
        }
    }

    JsonPtr
    parseString()
    {
        auto v = std::make_unique<JsonValue>();
        v->kind = JsonValue::Kind::kString;
        expect('"');
        while (pos_ < text_.size() && text_[pos_] != '"') {
            char c = text_[pos_++];
            if (c == '\\') {
                if (pos_ >= text_.size())
                    die("bad escape");
                char e = text_[pos_++];
                switch (e) {
                  case 'n': v->str.push_back('\n'); break;
                  case 't': v->str.push_back('\t'); break;
                  case 'r': v->str.push_back('\r'); break;
                  case '"': v->str.push_back('"'); break;
                  case '\\': v->str.push_back('\\'); break;
                  case '/': v->str.push_back('/'); break;
                  case 'u': {
                    if (pos_ + 4 > text_.size())
                        die("bad \\u escape");
                    int code = 0;
                    for (int i = 0; i < 4; ++i) {
                        int h = hexValue(text_[pos_++]);
                        if (h < 0)
                            die("bad \\u escape");
                        code = code * 16 + h;
                    }
                    if (code > 0xFF)
                        die("non-byte \\u escape");
                    v->str.push_back(static_cast<char>(code));
                    break;
                  }
                  default:
                    die("bad escape");
                }
            } else {
                v->str.push_back(c);
            }
        }
        if (pos_ >= text_.size())
            die("unterminated string");
        ++pos_; // closing quote
        return v;
    }

    JsonPtr
    parseBool()
    {
        auto v = std::make_unique<JsonValue>();
        v->kind = JsonValue::Kind::kBool;
        if (text_.compare(pos_, 4, "true") == 0) {
            v->boolean = true;
            pos_ += 4;
        } else if (text_.compare(pos_, 5, "false") == 0) {
            v->boolean = false;
            pos_ += 5;
        } else {
            die("bad literal");
        }
        return v;
    }

    JsonPtr
    parseNumber()
    {
        auto v = std::make_unique<JsonValue>();
        v->kind = JsonValue::Kind::kNumber;
        size_t start = pos_;
        while (pos_ < text_.size() &&
               (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
                text_[pos_] == '-' || text_[pos_] == '+' ||
                text_[pos_] == '.' || text_[pos_] == 'e' ||
                text_[pos_] == 'E')) {
            ++pos_;
        }
        if (start == pos_)
            die("bad number");
        v->num = std::strtod(text_.substr(start, pos_ - start).c_str(),
                             nullptr);
        return v;
    }

    std::string text_;
    ParseLimits limits_;
    size_t pos_ = 0;
    uint32_t depth_ = 0;
};

/** Escape a string for JSON output (bytes as \u00NN). */
std::string
jsonEscape(const std::string &s)
{
    std::string out;
    for (char c : s) {
        auto uc = static_cast<unsigned char>(c);
        if (c == '"' || c == '\\') {
            out.push_back('\\');
            out.push_back(c);
        } else if (uc < 0x20 || uc >= 0x7f) {
            char buf[8];
            std::snprintf(buf, sizeof(buf), "\\u%04x", uc);
            out += buf;
        } else {
            out.push_back(c);
        }
    }
    return out;
}

const char *
enableName(StartType s)
{
    switch (s) {
      case StartType::kNone: return "onActivateIn";
      case StartType::kStartOfData: return "onStartAndActivateIn";
      case StartType::kAllInput: return "always";
    }
    return "onActivateIn";
}

const char *
modeName(CounterMode m)
{
    switch (m) {
      case CounterMode::kLatch: return "latch";
      case CounterMode::kPulse: return "pulse";
      case CounterMode::kRollover: return "rollover";
    }
    return "latch";
}

std::string
symbolSetString(const CharSet &cs)
{
    return cs.str(); // "*" or "[...]"
}

} // namespace

void
writeMnrl(std::ostream &os, const Automaton &a)
{
    os << "{\n  \"id\": \""
       << jsonEscape(a.name().empty() ? "unnamed" : a.name())
       << "\",\n  \"nodes\": [\n";
    for (ElementId i = 0; i < a.size(); ++i) {
        const Element &e = a.element(i);
        os << "    {\"id\": \"_" << i << "\", ";
        if (e.kind == ElementKind::kSte) {
            os << "\"type\": \"hState\", \"enable\": \""
               << enableName(e.start) << "\", ";
        } else {
            os << "\"type\": \"upCounter\", ";
        }
        os << "\"report\": " << (e.reporting ? "true" : "false");
        if (e.reporting)
            os << ", \"reportId\": " << e.reportCode;
        os << ", \"attributes\": {";
        if (e.kind == ElementKind::kSte) {
            os << "\"symbolSet\": \""
               << jsonEscape(symbolSetString(e.symbols)) << "\"";
        } else {
            os << "\"threshold\": " << e.target << ", \"mode\": \""
               << modeName(e.mode) << "\"";
        }
        os << "}, \"outputConnections\": [";
        bool first = true;
        for (auto t : e.out) {
            os << (first ? "" : ", ") << "{\"id\": \"_" << t
               << "\", \"port\": \""
               << (a.element(t).kind == ElementKind::kCounter ? "cnt"
                                                              : "i")
               << "\"}";
            first = false;
        }
        for (auto t : e.resetOut) {
            os << (first ? "" : ", ") << "{\"id\": \"_" << t
               << "\", \"port\": \"rst\"}";
            first = false;
        }
        os << "]}" << (i + 1 < a.size() ? "," : "") << "\n";
    }
    os << "  ]\n}\n";
}

namespace {

/** Build the automaton from the parsed document; throws StatusError
 *  on semantic errors, carrying the offending node's line:column. */
Automaton
buildFromJson(const std::string &text, const JsonValue &root,
              const ParseLimits &limits)
{
    auto dieAt = [&text](const JsonValue *v, const std::string &what,
                         ErrorCode code = ErrorCode::kParseError) {
        const size_t off = v ? v->srcOff : 0;
        throw StatusError(Status(code, cat("mnrl: ", what),
                                 locateOffset(text, off)));
    };

    if (root.kind != JsonValue::Kind::kObject)
        dieAt(&root, "root is not an object");

    Automaton a;
    if (const JsonValue *id = root.get("id"))
        a.setName(id->str);

    const JsonValue *nodes = root.get("nodes");
    if (!nodes || nodes->kind != JsonValue::Kind::kArray)
        dieAt(&root, "missing nodes array");
    if (nodes->array.size() > limits.maxStates) {
        dieAt(nodes,
              cat("node count ", nodes->array.size(),
                  " exceeds state limit (", limits.maxStates, ")"),
              ErrorCode::kLimitExceeded);
    }

    // First pass: create elements, remember ids.
    std::map<std::string, ElementId> by_id;
    for (const auto &n : nodes->array) {
        if (fault::shouldFail(fault::Point::kAllocFail)) {
            dieAt(n.get(), "element table allocation failed",
                  ErrorCode::kResourceExhausted);
        }
        const JsonValue *id = n->get("id");
        const JsonValue *type = n->get("type");
        if (!id || !type)
            dieAt(n.get(), "node missing id or type");
        const JsonValue *report = n->get("report");
        const bool reporting =
            report && report->kind == JsonValue::Kind::kBool &&
            report->boolean;
        uint32_t code = 0;
        if (const JsonValue *rid = n->get("reportId"))
            code = static_cast<uint32_t>(rid->num);
        const JsonValue *attrs = n->get("attributes");

        ElementId eid = 0;
        if (type->str == "hState") {
            StartType start = StartType::kNone;
            if (const JsonValue *en = n->get("enable")) {
                if (en->str == "onStartAndActivateIn")
                    start = StartType::kStartOfData;
                else if (en->str == "always")
                    start = StartType::kAllInput;
                else if (en->str != "onActivateIn")
                    dieAt(en,
                          cat("unsupported enable '", en->str, "'"),
                          ErrorCode::kUnsupported);
            }
            const JsonValue *ss =
                attrs ? attrs->get("symbolSet") : nullptr;
            if (!ss)
                dieAt(n.get(),
                      "hState missing attributes.symbolSet");
            CharSet cs;
            if (ss->str == "*") {
                cs = CharSet::all();
            } else if (ss->str.size() >= 2 && ss->str.front() == '[' &&
                       ss->str.back() == ']') {
                std::string err;
                if (!CharSet::tryFromExpr(
                        ss->str.substr(1, ss->str.size() - 2), cs,
                        err)) {
                    dieAt(ss, err);
                }
            } else {
                dieAt(ss, cat("bad symbolSet '", ss->str, "'"));
            }
            eid = a.addSte(cs, start, reporting, code);
        } else if (type->str == "upCounter") {
            const JsonValue *th =
                attrs ? attrs->get("threshold") : nullptr;
            if (!th)
                dieAt(n.get(), "upCounter missing threshold");
            if (th->num < 1) {
                dieAt(th, cat("bad counter threshold ", th->num));
            }
            CounterMode mode = CounterMode::kLatch;
            if (const JsonValue *m = attrs->get("mode")) {
                if (m->str == "pulse")
                    mode = CounterMode::kPulse;
                else if (m->str == "rollover")
                    mode = CounterMode::kRollover;
                else if (m->str != "latch")
                    dieAt(m, cat("bad counter mode '", m->str, "'"),
                          ErrorCode::kUnsupported);
            }
            eid = a.addCounter(static_cast<uint32_t>(th->num), mode,
                               reporting, code);
        } else {
            dieAt(type,
                  cat("unsupported node type '", type->str, "'"),
                  ErrorCode::kUnsupported);
        }
        if (!by_id.emplace(id->str, eid).second)
            dieAt(id, cat("duplicate node id '", id->str, "'"));
    }

    // Second pass: connections.
    uint64_t edges = 0;
    size_t idx = 0;
    for (const auto &n : nodes->array) {
        const ElementId from = static_cast<ElementId>(idx++);
        const JsonValue *conns = n->get("outputConnections");
        if (!conns)
            continue;
        for (const auto &c : conns->array) {
            const JsonValue *cid = c->get("id");
            if (!cid)
                dieAt(c.get(), "connection missing id");
            auto it = by_id.find(cid->str);
            if (it == by_id.end())
                dieAt(cid, cat("connection to unknown node '",
                               cid->str, "'"));
            if (++edges > limits.maxEdges) {
                dieAt(c.get(),
                      cat("edge count exceeds limit (",
                          limits.maxEdges, ")"),
                      ErrorCode::kLimitExceeded);
            }
            std::string port = "i";
            if (const JsonValue *p = c->get("port"))
                port = p->str;
            if (port == "rst")
                a.addResetEdge(from, it->second);
            else
                a.addEdge(from, it->second);
        }
    }
    if (Status st = a.check(); !st.ok())
        throw StatusError(std::move(st));
    return a;
}

} // namespace

Expected<Automaton>
readMnrl(std::istream &is, const ParseLimits &limits)
{
    Expected<Automaton> res = [&]() -> Expected<Automaton> {
        Expected<std::string> text =
            readStream(is, limits.maxInputBytes);
        if (!text.ok())
            return text.status();
        // The source text outlives the parse: buildFromJson maps node
        // offsets back to line:column for semantic errors.
        const std::string src = std::move(*text);
        try {
            JsonPtr root = JsonParser(src, limits).run();
            return buildFromJson(src, *root, limits);
        } catch (const StatusError &e) {
            return e.status();
        } catch (const std::exception &e) {
            return Status(ErrorCode::kInternal,
                          cat("mnrl: ", e.what()));
        }
    }();
    obs::noteParse("mnrl",
                   res.ok() ? ErrorCode::kOk : res.status().code());
    return res;
}

void
saveMnrl(const std::string &path, const Automaton &a)
{
    std::ofstream f(path);
    if (!f)
        fatal(cat("cannot open for write: ", path));
    writeMnrl(f, a);
}

Expected<Automaton>
loadMnrl(const std::string &path, const ParseLimits &limits)
{
    Expected<std::string> text = readFile(path, limits.maxInputBytes);
    if (!text.ok())
        return text.status();
    std::istringstream is(std::move(*text));
    return readMnrl(is, limits);
}

Automaton
readMnrlOrDie(std::istream &is)
{
    return readMnrl(is).valueOrDie();
}

Automaton
loadMnrlOrDie(const std::string &path)
{
    return loadMnrl(path).valueOrDie();
}

} // namespace azoo
