/**
 * @file
 * Quickstart: compile regular expressions to homogeneous automata,
 * run them on an input stream with both CPU engines, inspect reports
 * and statistics, and estimate spatial-architecture throughput.
 *
 * Build & run:
 *   cmake -B build -G Ninja && cmake --build build
 *   ./build/examples/quickstart
 */

#include <iostream>

#include "core/stats.hh"
#include "engine/multidfa_engine.hh"
#include "engine/nfa_engine.hh"
#include "engine/spatial_model.hh"
#include "regex/glushkov.hh"
#include "regex/parser.hh"
#include "transform/prefix_merge.hh"

int
main()
{
    using namespace azoo;

    // 1) Compile a few patterns into one automaton. Each pattern gets
    //    a report code so matches can be attributed.
    Automaton a("quickstart");
    appendRegex(a, parseRegexOrDie("virus[0-9]+"), /*report_code=*/0);
    appendRegex(a, parseRegexOrDie("mal(ware|icious)"), 1);
    RegexFlags nocase;
    nocase.nocase = true;
    appendRegex(a, parseRegexOrDie("trojan", nocase), 2);
    a.validate();

    GraphStats s = computeStats(a);
    std::cout << "automaton: " << s.states << " states, " << s.edges
              << " edges, " << s.subgraphs << " subgraphs\n";

    // 2) Run the enabled-set interpreter (VASim-style) over an input.
    const std::string text =
        "no threats here... virus123 detected! also some malware "
        "and a TROJAN horse; malicious payload follows: virus9.";
    std::vector<uint8_t> input(text.begin(), text.end());

    NfaEngine interpreter(a);
    SimResult r = interpreter.simulate(input);
    std::cout << "interpreter: " << r.reportCount
              << " reports, avg active set "
              << r.avgActiveSet() << "\n";
    for (const Report &rep : r.reports) {
        std::cout << "  offset " << rep.offset << "  rule "
                  << rep.code << "\n";
    }

    // 3) The compiled multi-DFA engine produces identical reports,
    //    faster on large inputs.
    MultiDfaEngine compiled(a);
    SimResult r2 = compiled.simulate(input);
    std::cout << "compiled engine: " << r2.reportCount
              << " reports from " << compiled.compiledComponents()
              << " per-component DFAs\n";

    // 4) Optimize: prefix-merging collapses shared prefixes without
    //    changing the report language.
    MergeResult merged = prefixMerge(a);
    std::cout << "prefix merge: " << merged.statesBefore << " -> "
              << merged.statesAfter << " states\n";

    // 5) Estimate spatial-architecture throughput analytically.
    SpatialModel fpga(SpatialArch::reaprKintex());
    std::cout << "REAPR model: "
              << fpga.symbolsPerSecond(s.states, r.reportRate()) / 1e6
              << " MB/s on a "
              << fpga.arch().name << "\n";
    return 0;
}
