file(REMOVE_RECURSE
  "CMakeFiles/test_stride.dir/test_stride.cc.o"
  "CMakeFiles/test_stride.dir/test_stride.cc.o.d"
  "test_stride"
  "test_stride.pdb"
  "test_stride[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_stride.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
