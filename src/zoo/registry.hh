/**
 * @file
 * Benchmark registry: the 24 AutomataZoo benchmarks by name, in the
 * order of the paper's Table I.
 */

#ifndef AZOO_ZOO_REGISTRY_HH
#define AZOO_ZOO_REGISTRY_HH

#include <functional>
#include <string>
#include <vector>

#include "zoo/benchmark.hh"

namespace azoo {
namespace zoo {

/** Registry entry. */
struct BenchmarkInfo {
    std::string name;
    std::string domain;
    std::function<Benchmark(const ZooConfig &)> make;
};

/** All 24 benchmarks in Table I order. */
const std::vector<BenchmarkInfo> &allBenchmarks();

/** Build one by name. fatal() if unknown. */
Benchmark makeBenchmark(const std::string &name, const ZooConfig &cfg);

} // namespace zoo
} // namespace azoo

#endif // AZOO_ZOO_REGISTRY_HH
