/**
 * @file
 * libFuzzer harness for the .azoox artifact loader. The contract
 * under fuzz: arbitrary bytes either load into a validated artifact
 * or come back as a structured Status — never an abort, never an
 * out-of-bounds read (the loader bounds-checks every section against
 * the mapping before handing out spans).
 *
 * Checksums are disabled so mutations reach the section parsers
 * instead of dying at the CRC gate; the committed corpus seeds a
 * well-formed artifact with an EXEC image so the fuzzer starts from
 * deep coverage. A file that validates must then materialize into a
 * graph that passes Automaton::check(), and any validated EXEC image
 * must survive a short simulation — that exercises the hostile-image
 * surface the zero-copy path trusts at run time.
 */

#include <cstddef>
#include <cstdint>
#include <vector>

#include "artifact/artifact.hh"
#include "engine/nfa_engine.hh"

extern "C" int
LLVMFuzzerTestOneInput(const uint8_t *data, size_t size)
{
    azoo::artifact::LoadOptions opts;
    opts.verifyChecksum = false;
    opts.maxFileBytes = 1 << 20;

    azoo::Expected<azoo::artifact::LoadedArtifact> la =
        azoo::artifact::loadArtifactFromBytes(
            std::vector<uint8_t>(data, data + size), opts);
    if (!la.ok())
        return 0;

    azoo::ParseLimits limits;
    limits.maxStates = 1 << 12;
    limits.maxEdges = 1 << 14;
    azoo::Expected<azoo::Automaton> m = la->materialize(limits);
    if (m.ok() && !m->check().ok())
        __builtin_trap(); // materialize() must yield a valid graph

    if (la->hasExecImage() && la->elementCount() <= (1u << 12)) {
        azoo::NfaEngine e(la->execImage());
        const uint8_t probe[] = {0x00, 'a', 'b', 'c', 0xFF, '0', '1'};
        (void)e.simulate(probe, sizeof(probe));
    }
    return 0;
}
