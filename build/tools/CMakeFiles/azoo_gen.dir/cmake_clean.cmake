file(REMOVE_RECURSE
  "CMakeFiles/azoo_gen.dir/azoo_gen.cc.o"
  "CMakeFiles/azoo_gen.dir/azoo_gen.cc.o.d"
  "azoo_gen"
  "azoo_gen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/azoo_gen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
