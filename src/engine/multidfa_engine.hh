/**
 * @file
 * MultiDfaEngine: a compiled CPU automata engine in the spirit of
 * Intel Hyperscan, the paper's fast CPU baseline.
 *
 * Each connected component of the benchmark automaton is determinized
 * (subset construction) into its own small DFA with per-component
 * input-symbol equivalence classes. At runtime every component costs
 * one table lookup per input symbol, independent of how many NFA
 * states are enabled -- which is precisely why AP-specific padding
 * states are nearly free on this engine (Table III) while they
 * directly slow down the enabled-set interpreter.
 *
 * Components that contain counter elements or whose determinization
 * exceeds a state budget fall back to a LazyDfaEngine, mirroring how
 * hybrid engines mix DFA and NFA subsystems: counter-free over-budget
 * components still get DFA-speed execution on hot input regions
 * (subset construction runs lazily under a byte budget), and only
 * counter components drop all the way to the enabled-set interpreter.
 *
 * Because the lazy fallback's transition cache warms up across
 * simulate() calls, an engine with fallbackComponents() > 0 must not
 * be shared by concurrently simulating threads (a fully compiled
 * engine remains freely shareable).
 */

#ifndef AZOO_ENGINE_MULTIDFA_ENGINE_HH
#define AZOO_ENGINE_MULTIDFA_ENGINE_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "core/automaton.hh"
#include "engine/lazy_dfa_engine.hh"
#include "engine/report.hh"

namespace azoo {

namespace analysis {
struct ComponentProfile;
}

/** Compilation limits for MultiDfaEngine. */
struct MultiDfaOptions {
    /** Determinization budget per component; beyond it the component
     *  is simulated by the lazy-DFA fallback instead. */
    uint32_t maxDfaStatesPerComponent = 4096;
    /** Transition-cache byte budget of the lazy-DFA fallback. */
    size_t lazyCacheBytes = 8u << 20;
    /** Optional analysis facts (inferProfiles() on the same
     *  automaton). When set, components whose blowupLog2 estimate
     *  already exceeds the state budget skip the doomed eager subset
     *  construction and go straight to the fallback — a construction-
     *  time-only optimization; results are unchanged. */
    const std::vector<analysis::ComponentProfile> *profiles = nullptr;
};

/** Compiled multi-DFA engine over a borrowed automaton. */
class MultiDfaEngine
{
  public:
    explicit MultiDfaEngine(const Automaton &a,
                            const MultiDfaOptions &opts =
                                MultiDfaOptions());

    /** Run over @p input. Report element ids refer to the original
     *  automaton, so results are comparable with NfaEngine's. */
    SimResult simulate(const uint8_t *input, size_t len,
                       const SimOptions &opts = SimOptions()) const;

    SimResult
    simulate(const std::vector<uint8_t> &input,
             const SimOptions &opts = SimOptions()) const
    {
        return simulate(input.data(), input.size(), opts);
    }

    /** Number of components compiled to DFAs. */
    size_t compiledComponents() const { return dfas_.size(); }

    /** Number of components running on the lazy-DFA fallback path. */
    size_t fallbackComponents() const { return fallbackComponentCount_; }

    /** Total DFA states across all compiled components. */
    uint64_t totalDfaStates() const;

    /** The lazy-DFA fallback engine, or nullptr if every component
     *  compiled eagerly. Exposed for cache statistics. */
    const LazyDfaEngine *lazyFallback() const
    {
        return fallbackEngine_.get();
    }

  private:
    /** One report event attached to a (state, class) DFA cell. */
    struct CellReport {
        ElementId element; ///< original automaton element id
        uint32_t code;
    };

    /** One compiled component. */
    struct Dfa {
        uint32_t numStates = 0;
        uint32_t numClasses = 0;
        uint32_t start = 0;
        /** classOf[byte] -> symbol class. */
        std::array<uint8_t, 256> classOf{};
        /** next[state * numClasses + cls] -> state. */
        std::vector<uint32_t> next;
        /** reportIdx[state * numClasses + cls] -> pool index (0=none). */
        std::vector<uint32_t> reportIdx;
        /** Pool of report lists; index 0 is the empty list. */
        std::vector<std::vector<CellReport>> pool;
    };

    /** Attempt subset construction of one component.
     *  @return true on success (dfa filled in). */
    bool buildDfa(const std::vector<ElementId> &members, Dfa &dfa) const;

    /** Borrowed: the caller guarantees the automaton outlives the
     *  engine (in the serve path, via a RulesetGeneration pin). */
    const Automaton &a_;
    MultiDfaOptions opts_;
    std::vector<Dfa> dfas_;

    /** Sub-automaton holding all fallback components. */
    std::unique_ptr<Automaton> fallback_;
    std::unique_ptr<LazyDfaEngine> fallbackEngine_;
    /** fallback-local element id -> original element id. */
    std::vector<ElementId> fallbackToGlobal_;
    size_t fallbackComponentCount_ = 0;
};

} // namespace azoo

#endif // AZOO_ENGINE_MULTIDFA_ENGINE_HH
