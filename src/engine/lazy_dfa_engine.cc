#include "engine/lazy_dfa_engine.hh"

#include <algorithm>

#include "engine/run_guard.hh"
#include "obs/obs.hh"
#include "util/union_find.hh"

namespace azoo {

namespace {

/** Per-run metrics flush for the lazy half. Hits/misses are counted
 *  in simulateLazy() stack locals — never one atomic per symbol —
 *  and land here once per run. The hybrid path's fallback half is
 *  accounted separately under engine.nfa.* by the interpreter. */
void
noteLazyRun(const SimResult &res, uint64_t hits, uint64_t misses)
{
    if (!obs::kEnabled)
        return;
    obs::Registry &reg = obs::Registry::global();
    static obs::Counter &runs = reg.counter("engine.lazy.runs");
    static obs::Counter &symbols = reg.counter("engine.lazy.symbols");
    static obs::Counter &cacheHits =
        reg.counter("engine.lazy.cache_hits");
    static obs::Counter &cacheMisses =
        reg.counter("engine.lazy.cache_misses");
    static obs::Counter &cacheFlushes =
        reg.counter("engine.lazy.cache_flushes");
    runs.inc();
    symbols.add(res.symbols);
    cacheHits.add(hits);
    cacheMisses.add(misses);
    cacheFlushes.add(res.lazyFlushes);
    if (!res.guardStatus.ok())
        obs::noteGuardStop("engine.lazy", res.guardStatus.code());
}

/** FNV-1a over the raw words of a sorted local-id set. */
uint64_t
hashSet(const std::vector<uint32_t> &set)
{
    uint64_t h = 1469598103934665603ULL;
    for (uint32_t v : set) {
        h ^= v;
        h *= 1099511628211ULL;
    }
    return h;
}

/** Accounted footprint of one interned state (members + one
 *  transition/report row + map overhead). */
size_t
stateBytes(size_t setSize, size_t numClasses)
{
    return 64 + setSize * sizeof(uint32_t) +
        numClasses * 2 * sizeof(uint32_t);
}

/** Accounted footprint of one pooled report list. */
size_t
poolBytes(size_t listSize)
{
    return 48 + listSize * sizeof(std::pair<ElementId, uint32_t>);
}

} // namespace

LazyDfaEngine::LazyDfaEngine(const Automaton &a,
                             const LazyDfaOptions &opts)
    : a_(a), opts_(opts)
{
    const size_t n = a.size();

    // Components over activation *and* reset edges: a counter must
    // stay with everything that counts or resets it, so the split
    // below can never cut a counter off from its sources.
    UnionFind uf(n);
    for (ElementId i = 0; i < n; ++i) {
        for (auto t : a.element(i).out)
            uf.unite(i, t);
        for (auto t : a.element(i).resetOut)
            uf.unite(i, t);
    }
    std::vector<uint8_t> rootHasCounter(n, 0);
    for (ElementId i = 0; i < n; ++i) {
        if (a.element(i).kind == ElementKind::kCounter)
            rootHasCounter[uf.find(i)] = 1;
    }

    std::vector<ElementId> lazyMembers, fallbackMembers;
    for (ElementId i = 0; i < n; ++i) {
        if (rootHasCounter[uf.find(i)])
            fallbackMembers.push_back(i);
        else
            lazyMembers.push_back(i);
    }
    std::vector<uint8_t> fallbackRootSeen(n, 0);
    for (ElementId i : fallbackMembers) {
        const uint32_t r = uf.find(i);
        if (!fallbackRootSeen[r]) {
            fallbackRootSeen[r] = 1;
            ++fallbackComponentCount_;
        }
    }

    buildLazyPart(lazyMembers);
    if (!fallbackMembers.empty())
        buildFallback(a, fallbackMembers);

    pool_.emplace_back(); // index 0 = the empty report list
}

void
LazyDfaEngine::buildLazyPart(const std::vector<ElementId> &members)
{
    const auto m = static_cast<uint32_t>(members.size());
    globalId_ = members;

    std::vector<uint32_t> toLocal(a_.size(), kUnknown);
    for (uint32_t i = 0; i < m; ++i)
        toLocal[members[i]] = i;

    std::vector<uint8_t> isAllInput(m, 0);
    label_.resize(m);
    reporting_.assign(m, 0);
    reportCode_.assign(m, 0);
    edgeBegin_.assign(m + 1, 0);
    for (uint32_t i = 0; i < m; ++i) {
        const Element &e = a_.element(members[i]);
        for (int w = 0; w < 4; ++w)
            label_[i][w] = e.symbols.word(w);
        reporting_[i] = e.reporting;
        reportCode_[i] = e.reportCode;
        if (e.start == StartType::kAllInput) {
            isAllInput[i] = 1;
            for (int v = 0; v < 256; ++v) {
                if (e.symbols.test(static_cast<uint8_t>(v)))
                    matchingAllInput_[v].push_back(i);
            }
        } else if (e.start == StartType::kStartOfData) {
            start0_.push_back(i);
        }
    }
    // CSR with all-input targets pre-filtered: they never enter a
    // state-set (the matchingAllInput_ index covers them per byte),
    // exactly mirroring NfaEngine's isAllInput_ skip.
    for (uint32_t i = 0; i < m; ++i) {
        uint32_t deg = 0;
        for (auto t : a_.element(members[i]).out) {
            if (!isAllInput[toLocal[t]])
                ++deg;
        }
        edgeBegin_[i + 1] = edgeBegin_[i] + deg;
    }
    edgeTarget_.reserve(edgeBegin_[m]);
    for (uint32_t i = 0; i < m; ++i) {
        for (auto t : a_.element(members[i]).out) {
            const uint32_t lt = toLocal[t];
            if (!isAllInput[lt])
                edgeTarget_.push_back(lt);
        }
    }

    // Symbol equivalence classes over the *distinct* lazy charsets:
    // bytes no lazy state can tell apart share one transition row,
    // which shrinks both cache rows and the number of distinct cells
    // a hot region touches.
    std::vector<const CharSet *> distinct;
    {
        std::unordered_map<uint64_t, std::vector<const CharSet *>> seen;
        for (uint32_t i = 0; i < m; ++i) {
            const CharSet &cs = a_.element(members[i]).symbols;
            auto &bucket = seen[cs.hash()];
            bool dup = false;
            for (const auto *c : bucket) {
                if (*c == cs) {
                    dup = true;
                    break;
                }
            }
            if (!dup) {
                bucket.push_back(&cs);
                distinct.push_back(&cs);
            }
        }
    }
    std::map<std::vector<uint8_t>, uint8_t> sigToClass;
    std::vector<uint8_t> sig(distinct.size());
    for (int b = 0; b < 256; ++b) {
        for (size_t d = 0; d < distinct.size(); ++d)
            sig[d] = distinct[d]->test(static_cast<uint8_t>(b));
        auto it = sigToClass.find(sig);
        if (it == sigToClass.end()) {
            // At most 256 signatures exist for 256 bytes, so the
            // class id always fits a byte.
            it = sigToClass.emplace(
                sig, static_cast<uint8_t>(sigToClass.size())).first;
            classRep_.push_back(static_cast<uint8_t>(b));
        }
        classOf_[b] = it->second;
    }
    numClasses_ = static_cast<uint32_t>(
        std::max<size_t>(1, sigToClass.size()));
    if (classRep_.empty())
        classRep_.push_back(0);

    inNext_.assign(m, 0);
}

void
LazyDfaEngine::buildFallback(const Automaton &a,
                             const std::vector<ElementId> &members)
{
    fallback_ = std::make_unique<Automaton>(a.name() + ".lazy-fallback");
    std::vector<ElementId> toLocal(a.size(), kNoElement);
    for (ElementId id : members) {
        const Element &e = a.element(id);
        ElementId local;
        if (e.kind == ElementKind::kSte) {
            local = fallback_->addSte(e.symbols, e.start, e.reporting,
                                      e.reportCode);
        } else {
            local = fallback_->addCounter(e.target, e.mode, e.reporting,
                                          e.reportCode);
        }
        toLocal[id] = local;
        fallbackToGlobal_.push_back(id);
    }
    for (ElementId id : members) {
        for (auto t : a.element(id).out)
            fallback_->addEdge(toLocal[id], toLocal[t]);
        for (auto t : a.element(id).resetOut)
            fallback_->addResetEdge(toLocal[id], toLocal[t]);
    }
    fallbackEngine_ = std::make_unique<NfaEngine>(*fallback_);
}

uint32_t
LazyDfaEngine::intern(const std::vector<uint32_t> &set)
{
    const uint64_t h = hashSet(set);
    auto &bucket = buckets_[h];
    for (uint32_t id : bucket) {
        if (members_[id] == set)
            return id;
    }
    const auto id = static_cast<uint32_t>(members_.size());
    members_.push_back(set);
    bucket.push_back(id);
    next_.resize(members_.size() * numClasses_, kUnknown);
    reportIdx_.resize(members_.size() * numClasses_, 0);
    bytesUsed_ += stateBytes(set.size(), numClasses_);
    return id;
}

uint32_t
LazyDfaEngine::internReports(
    const std::vector<std::pair<ElementId, uint32_t>> &reps)
{
    auto it = poolIds_.find(reps);
    if (it != poolIds_.end())
        return it->second;
    const auto idx = static_cast<uint32_t>(pool_.size());
    pool_.push_back(reps);
    poolIds_.emplace(reps, idx);
    bytesUsed_ += poolBytes(reps.size());
    return idx;
}

void
LazyDfaEngine::flushCache()
{
    members_.clear();
    buckets_.clear();
    next_.clear();
    reportIdx_.clear();
    pool_.clear();
    pool_.emplace_back();
    poolIds_.clear();
    cachedTransitions_ = 0;
    bytesUsed_ = 0;
    startState_ = kUnknown;
    ++flushes_;
}

size_t
LazyDfaEngine::fillCell(uint32_t &cur, uint32_t cls)
{
    // Copy: interning below may reallocate members_.
    const std::vector<uint32_t> curSet = members_[cur];
    const uint8_t rep = classRep_[cls];
    const uint32_t word = rep >> 6;
    const uint64_t bit = uint64_t(1) << (rep & 63);

    succScratch_.clear();
    repScratch_.clear();
    auto onMatch = [&](uint32_t ls) {
        if (reporting_[ls])
            repScratch_.emplace_back(globalId_[ls], reportCode_[ls]);
        for (uint32_t k = edgeBegin_[ls]; k < edgeBegin_[ls + 1]; ++k) {
            const uint32_t tgt = edgeTarget_[k];
            if (!inNext_[tgt]) {
                inNext_[tgt] = 1;
                succScratch_.push_back(tgt);
            }
        }
    };
    for (uint32_t ls : curSet) {
        if (label_[ls][word] & bit)
            onMatch(ls);
    }
    for (uint32_t al : matchingAllInput_[rep])
        onMatch(al);
    for (uint32_t t : succScratch_)
        inNext_[t] = 0;
    std::sort(succScratch_.begin(), succScratch_.end());
    std::sort(repScratch_.begin(), repScratch_.end());

    // Budget check with a worst-case (both inserts are new) estimate.
    // Keeping at least the current and next state guarantees forward
    // progress even when a single transition overshoots the budget.
    const size_t need = stateBytes(succScratch_.size(), numClasses_) +
        poolBytes(repScratch_.size());
    if (bytesUsed_ + need > opts_.cacheBytes && members_.size() > 2) {
        flushCache();
        cur = intern(curSet);
    }

    const uint32_t tgt = intern(succScratch_);
    const uint32_t ridx =
        repScratch_.empty() ? 0 : internReports(repScratch_);
    const size_t cell = static_cast<size_t>(cur) * numClasses_ + cls;
    next_[cell] = tgt;
    reportIdx_[cell] = ridx;
    ++cachedTransitions_;
    return cell;
}

void
LazyDfaEngine::simulateLazy(const uint8_t *input, size_t len,
                            const SimOptions &opts, SimResult &res)
{
    const uint64_t flushesBefore = flushes_;
    uint64_t consumed = len;
    uint64_t cacheHits = 0, cacheMisses = 0;
    if (!globalId_.empty()) {
        if (startState_ == kUnknown)
            startState_ = intern(start0_);
        uint32_t cur = startState_;
        for (uint64_t t = 0; t < len; ++t) {
            if (opts.guard &&
                (t & (kGuardCheckIntervalSymbols - 1)) == 0) {
                Status st = opts.guard->check(t);
                if (!st.ok()) {
                    res.guardStatus = std::move(st);
                    consumed = t;
                    break;
                }
            }
            // The state-set is exactly NfaEngine's edge-enabled set
            // (all-input starts excluded), so its size *is* the
            // active set for this cycle.
            if (opts.computeActiveSet)
                res.totalEnabled += members_[cur].size();

            const uint32_t cls = classOf_[input[t]];
            size_t cell = static_cast<size_t>(cur) * numClasses_ + cls;
            if (next_[cell] == kUnknown) {
                cell = fillCell(cur, cls);
                ++cacheMisses;
            } else {
                ++cacheHits;
            }

            const uint32_t ridx = reportIdx_[cell];
            if (ridx) {
                const auto &list = pool_[ridx];
                res.reportCount += list.size();
                ++res.reportingCycles;
                if (opts.recordReports) {
                    for (const auto &[el, code] : list) {
                        if (res.reports.size() >= opts.reportRecordLimit)
                            break;
                        res.reports.push_back({t, el, code});
                    }
                }
                if (opts.countByCode) {
                    for (const auto &[el, code] : list)
                        ++res.byCode[code];
                }
            }
            cur = next_[cell];
        }
    }
    res.symbols = consumed;
    res.lazyFlushes = flushes_ - flushesBefore;
    res.lazyStates = members_.size();
    res.lazyFallbackComponents = fallbackComponentCount_;
    noteLazyRun(res, cacheHits, cacheMisses);
}

SimResult
LazyDfaEngine::simulate(const uint8_t *input, size_t len,
                        const SimOptions &opts)
{
    SimResult res;
    if (!fallbackEngine_) {
        // Pure lazy path: reports stream out already in canonical
        // (offset, element, code) order, so everything is computed
        // directly with the caller's options.
        simulateLazy(input, len, opts, res);
        return res;
    }

    // Hybrid path: both halves record their full report streams so
    // the merge can reconstruct reportingCycles (distinct offsets)
    // and byCode exactly; the caller's recording options are applied
    // to the merged stream afterwards.
    SimOptions inner;
    inner.recordReports = true;
    inner.reportRecordLimit = ~uint64_t(0);
    inner.countByCode = false;
    inner.computeActiveSet = opts.computeActiveSet;
    inner.guard = opts.guard;

    SimResult lz;
    simulateLazy(input, len, inner, lz);
    // The fallback interpreter only scans the prefix the lazy half
    // consumed; if its guard poll truncates even earlier, the merged
    // result shrinks to the shorter prefix below.
    SimResult fb = fallbackEngine_->simulate(
        input, static_cast<size_t>(lz.symbols), fallbackScratch_,
        inner);
    for (Report &r : fb.reports)
        r.element = fallbackToGlobal_[r.element];
    // The interpreter emits same-cycle reports in propagation order;
    // normalize, then merge the two (now both canonical) streams.
    std::sort(fb.reports.begin(), fb.reports.end());

    const uint64_t m = std::min(lz.symbols, fb.symbols);
    if (lz.symbols > m) {
        std::erase_if(lz.reports, [m](const Report &r) {
            return r.offset >= m;
        });
        lz.reportCount = lz.reports.size();
    }
    res.symbols = m;
    res.guardStatus =
        !fb.guardStatus.ok() ? fb.guardStatus : lz.guardStatus;
    res.reportCount = lz.reportCount + fb.reportCount;
    // When truncated, the two halves may have scanned slightly
    // different prefixes; totalEnabled then covers their union and
    // can overcount the merged prefix by up to one guard interval.
    res.totalEnabled = lz.totalEnabled + fb.totalEnabled;
    res.lazyFlushes = lz.lazyFlushes;
    res.lazyStates = lz.lazyStates;
    res.lazyFallbackComponents = fallbackComponentCount_;

    res.reports.resize(lz.reports.size() + fb.reports.size());
    std::merge(lz.reports.begin(), lz.reports.end(),
               fb.reports.begin(), fb.reports.end(),
               res.reports.begin());

    uint64_t lastOffset = ~uint64_t(0);
    for (const Report &r : res.reports) {
        if (r.offset != lastOffset) {
            ++res.reportingCycles;
            lastOffset = r.offset;
        }
        if (opts.countByCode)
            ++res.byCode[r.code];
    }

    if (!opts.recordReports)
        res.reports.clear();
    else if (res.reports.size() > opts.reportRecordLimit)
        res.reports.resize(
            static_cast<size_t>(opts.reportRecordLimit));
    return res;
}

} // namespace azoo
