/**
 * @file
 * Zoo integration tests: every benchmark builds, validates, and
 * simulates; domain-specific correctness (Random Forest automata
 * votes equal native inference; Seq Match counters implement support
 * thresholds; YARA nibble conversion; Snort rule populations and
 * planted positives; ClamAV and PROSITE dialect conversions; entity
 * resolution fuzzy matching; AP PRNG report statistics).
 */

#include <gtest/gtest.h>

#include <cctype>
#include <set>

#include "core/stats.hh"
#include "engine/lazy_dfa_engine.hh"
#include "engine/multidfa_engine.hh"
#include "engine/nfa_engine.hh"
#include "regex/glushkov.hh"
#include "regex/parser.hh"
#include "zoo/clamav.hh"
#include "zoo/entity.hh"
#include "zoo/protomata.hh"
#include "zoo/randomforest.hh"
#include "zoo/registry.hh"
#include "zoo/seqmatch.hh"
#include "zoo/snort.hh"
#include "zoo/yara.hh"

namespace azoo {
namespace {

zoo::ZooConfig
tinyConfig()
{
    zoo::ZooConfig cfg;
    cfg.scale = 0.01;
    cfg.inputBytes = 32 * 1024;
    return cfg;
}

TEST(Registry, HasTwentyFourBenchmarks)
{
    EXPECT_EQ(zoo::allBenchmarks().size(), 25u)
        << "Table I lists 25 rows (24 benchmarks; Seq Match wC rows "
           "are counted as variants)";
}

TEST(Registry, NamesAreUniqueAndResolvable)
{
    std::set<std::string> names;
    for (const auto &info : zoo::allBenchmarks())
        EXPECT_TRUE(names.insert(info.name).second) << info.name;
    EXPECT_EQ(names.size(), zoo::allBenchmarks().size());
}

TEST(Registry, UnknownNameIsFatal)
{
    EXPECT_EXIT(zoo::makeBenchmark("nope", tinyConfig()),
                testing::ExitedWithCode(1), "unknown benchmark");
}

/** Every benchmark builds, validates, and produces sane stats. */
class ZooIntegration
    : public testing::TestWithParam<std::string>
{
};

TEST_P(ZooIntegration, BuildsAndSimulates)
{
    zoo::ZooConfig cfg = tinyConfig();
    zoo::Benchmark b = zoo::makeBenchmark(GetParam(), cfg);
    b.automaton.validate();
    EXPECT_FALSE(b.automaton.empty());
    EXPECT_EQ(b.input.size(), cfg.inputBytes);

    GraphStats s = computeStats(b.automaton);
    EXPECT_GT(s.subgraphs, 0u);
    EXPECT_GT(s.reporting, 0u);
    EXPECT_GT(s.startStates, 0u);

    NfaEngine e(b.automaton);
    SimOptions opts;
    opts.recordReports = false;
    auto r = e.simulate(b.input, opts);
    EXPECT_EQ(r.symbols, cfg.inputBytes);
    // Determinism: regenerating yields the same automaton size and
    // report count.
    zoo::Benchmark b2 = zoo::makeBenchmark(GetParam(), cfg);
    EXPECT_EQ(b2.automaton.size(), b.automaton.size());
    NfaEngine e2(b2.automaton);
    EXPECT_EQ(e2.simulate(b2.input, opts).reportCount, r.reportCount);
}

INSTANTIATE_TEST_SUITE_P(
    AllBenchmarks, ZooIntegration, [] {
        std::vector<std::string> names;
        for (const auto &info : zoo::allBenchmarks())
            names.push_back(info.name);
        return testing::ValuesIn(names);
    }(),
    [](const testing::TestParamInfo<std::string> &info) {
        std::string id = info.param;
        for (char &c : id) {
            if (!std::isalnum(static_cast<unsigned char>(c)))
                c = '_';
        }
        return id;
    });

/** Both CPU engines agree on every benchmark (report-for-report). */
class ZooEngineEquivalence
    : public testing::TestWithParam<std::string>
{
};

TEST_P(ZooEngineEquivalence, NfaAndDfaReportIdentically)
{
    zoo::ZooConfig cfg;
    cfg.scale = 0.01;
    cfg.inputBytes = 16 * 1024;
    zoo::Benchmark b = zoo::makeBenchmark(GetParam(), cfg);

    NfaEngine nfa(b.automaton);
    MultiDfaEngine dfa(b.automaton);
    auto sorted = [](SimResult r) {
        std::sort(r.reports.begin(), r.reports.end());
        return r.reports;
    };
    EXPECT_EQ(sorted(nfa.simulate(b.input)),
              sorted(dfa.simulate(b.input)));
}

/** The lazy-DFA hybrid is bit-identical to the interpreter on every
 *  benchmark -- at the default budget and at a deliberately tiny one
 *  that forces whole-cache flushes mid-stream. */
TEST_P(ZooEngineEquivalence, LazyDfaIsBitIdenticalToNfa)
{
    zoo::ZooConfig cfg;
    cfg.scale = 0.01;
    cfg.inputBytes = 16 * 1024;
    zoo::Benchmark b = zoo::makeBenchmark(GetParam(), cfg);

    SimOptions opts;
    opts.countByCode = true;
    NfaEngine nfa(b.automaton);
    SimResult ref = nfa.simulate(b.input, opts);
    std::sort(ref.reports.begin(), ref.reports.end());

    LazyDfaOptions tiny;
    tiny.cacheBytes = 4096;
    for (const auto &lopts : {LazyDfaOptions(), tiny}) {
        LazyDfaEngine lazy(b.automaton, lopts);
        SimResult got = lazy.simulate(b.input, opts);
        EXPECT_EQ(ref.reports, got.reports);
        EXPECT_EQ(ref.reportCount, got.reportCount);
        EXPECT_EQ(ref.totalEnabled, got.totalEnabled);
        EXPECT_EQ(ref.reportingCycles, got.reportingCycles);
        EXPECT_EQ(ref.byCode, got.byCode);
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllBenchmarks, ZooEngineEquivalence, [] {
        std::vector<std::string> names;
        for (const auto &info : zoo::allBenchmarks())
            names.push_back(info.name);
        return testing::ValuesIn(names);
    }(),
    [](const testing::TestParamInfo<std::string> &info) {
        std::string id = info.param;
        for (char &c : id) {
            if (!std::isalnum(static_cast<unsigned char>(c)))
                c = '_';
        }
        return id;
    });

TEST(Snort, PopulationsScaleAndOutlierExists)
{
    zoo::ZooConfig cfg = tinyConfig();
    cfg.scale = 0.05;
    auto rules = zoo::makeSnortRules(cfg);
    size_t clean = 0, mod = 0, isd = 0;
    for (const auto &r : rules) {
        clean += !r.pcreModifier && !r.isdataat;
        mod += r.pcreModifier;
        isd += r.isdataat;
    }
    EXPECT_EQ(clean, cfg.scaled(2486));
    EXPECT_EQ(mod, cfg.scaled(2856));
    EXPECT_EQ(isd, cfg.scaled(182));
}

TEST(Snort, ExclusionsReduceReportRate)
{
    zoo::ZooConfig cfg = tinyConfig();
    cfg.scale = 0.05;
    cfg.inputBytes = 64 * 1024;
    auto rules = zoo::makeSnortRules(cfg);
    auto input = zoo::snortInput(cfg, rules);

    SimOptions opts;
    opts.recordReports = false;
    auto rate = [&](bool with_mod, bool with_isd) {
        Automaton a = zoo::compileSnortRules(rules, with_mod,
                                             with_isd);
        NfaEngine e(a);
        return e.simulate(input, opts).reportRate();
    };
    const double all = rate(true, true);
    const double no_mod = rate(false, true);
    const double clean = rate(false, false);
    // Section V: each exclusion step reduces reporting substantially.
    EXPECT_GT(all, 2 * no_mod);
    EXPECT_GT(no_mod, 1.5 * clean);
}

TEST(Snort, PlantedAttacksDetected)
{
    zoo::ZooConfig cfg = tinyConfig();
    cfg.inputBytes = 128 * 1024;
    auto b = zoo::makeSnortBenchmark(cfg);
    NfaEngine e(b.automaton);
    EXPECT_GT(e.simulate(b.input).reportCount, 0u);
}

TEST(ClamAv, HexDialectConversion)
{
    EXPECT_EQ(zoo::clamHexToRegex("4d5a"), "\\x4d\\x5a");
    EXPECT_EQ(zoo::clamHexToRegex("4d??5a"), "\\x4d.\\x5a");
    EXPECT_EQ(zoo::clamHexToRegex("4d{2-4}5a"),
              "\\x4d.{2,4}\\x5a");
    EXPECT_EQ(zoo::clamHexToRegex("4d{3}5a"), "\\x4d.{3}\\x5a");
}

TEST(ClamAv, SignatureInstancesMatchTheirPattern)
{
    zoo::ZooConfig cfg = tinyConfig();
    auto sigs = zoo::makeClamSignatures(cfg);
    ASSERT_GT(sigs.size(), 10u);
    for (size_t i = 0; i < 10; ++i) {
        RegexFlags flags;
        flags.dotall = true;
        Regex rx = parseRegexOrDie(zoo::clamHexToRegex(sigs[i].hex), flags);
        Automaton a = compileRegex(rx, 1);
        NfaEngine e(a);
        std::vector<uint8_t> in(sigs[i].instance.begin(),
                                sigs[i].instance.end());
        EXPECT_GT(e.simulate(in).reportCount, 0u) << sigs[i].hex;
    }
}

TEST(ClamAv, DetectsBothPlantedViruses)
{
    zoo::ZooConfig cfg = tinyConfig();
    cfg.inputBytes = 256 * 1024;
    auto b = zoo::makeClamAvBenchmark(cfg);
    NfaEngine e(b.automaton);
    SimOptions opts;
    opts.countByCode = true;
    auto r = e.simulate(b.input, opts);
    EXPECT_GE(r.byCode.size(), 2u)
        << "expected two distinct signatures to fire";
}

TEST(Protomata, PrositeConversion)
{
    EXPECT_EQ(zoo::prositeToRegex("A-x-[DE]-{P}-C"),
              "A.[DE][^P]C");
    EXPECT_EQ(zoo::prositeToRegex("A-x(2,3)-C"), "A.{2,3}C");
    EXPECT_EQ(zoo::prositeToRegex("x(4)"), ".{4}");
}

TEST(Protomata, InstancesMatchTheirPattern)
{
    zoo::ZooConfig cfg = tinyConfig();
    auto pats = zoo::makePrositePatterns(cfg);
    for (size_t i = 0; i < std::min<size_t>(10, pats.size()); ++i) {
        Regex rx = parseRegexOrDie(zoo::prositeToRegex(pats[i].prosite));
        Automaton a = compileRegex(rx, 1);
        NfaEngine e(a);
        std::vector<uint8_t> in(pats[i].instance.begin(),
                                pats[i].instance.end());
        EXPECT_GT(e.simulate(in).reportCount, 0u) << pats[i].prosite;
    }
}

TEST(RandomForest, AutomataVotesEqualNativeInference)
{
    zoo::ZooConfig cfg = tinyConfig();
    cfg.scale = 0.05;
    cfg.inputBytes = 40000;
    auto bundle = zoo::makeRandomForestBundle(cfg, 'B');

    NfaEngine e(bundle.benchmark.automaton);
    auto r = e.simulate(bundle.benchmark.input);

    const int features = bundle.forest.params().features;
    auto votes = zoo::rfDecodeVotes(r.reports, bundle.numItems,
                                    features, 10);

    // Native inference on the same items.
    size_t agree = 0;
    for (size_t i = 0; i < bundle.numItems; ++i) {
        const auto &row =
            bundle.test.x[i % bundle.test.size()];
        agree += votes[i] == bundle.forest.predict(row);
    }
    // Votes must be exact: one report per tree per item.
    EXPECT_EQ(r.reportCount,
              bundle.numItems *
                  static_cast<uint64_t>(
                      bundle.forest.params().numTrees));
    EXPECT_EQ(agree, bundle.numItems)
        << "automata voting diverged from native inference";
}

TEST(RandomForest, VariantShapesMatchTableTwo)
{
    zoo::ZooConfig cfg = tinyConfig();
    cfg.scale = 0.05;
    cfg.inputBytes = 20000;
    auto b_b = zoo::makeRandomForestBundle(cfg, 'B');
    auto b_c = zoo::makeRandomForestBundle(cfg, 'C');
    // C has ~4x the states of B (2x leaves, 2x chain size).
    const double ratio =
        static_cast<double>(b_c.benchmark.automaton.size()) /
        static_cast<double>(b_b.benchmark.automaton.size());
    EXPECT_GT(ratio, 3.0);
    EXPECT_LT(ratio, 5.0);
    // All subgraphs are uniform chains (std dev 0, Table I).
    GraphStats s = computeStats(b_b.benchmark.automaton);
    EXPECT_DOUBLE_EQ(s.stdSubgraph, 0.0);
}

TEST(SeqMatch, FilterMatchesOrderedItemset)
{
    Automaton a("s");
    zoo::SeqMatchParams p;
    p.itemsetSize = 3;
    p.filterWidth = 3;
    zoo::appendSeqFilter(a, {5, 9, 20}, p, 1);
    NfaEngine e(a);

    auto txn = [](const std::vector<uint8_t> &items) {
        std::vector<uint8_t> v;
        v.reserve(items.size() + 2);
        v.push_back(zoo::kSeqSeparator);
        v.insert(v.end(), items.begin(), items.end());
        v.push_back(zoo::kSeqSeparator);
        return v;
    };
    // Exact, with gaps, and missing-item transactions.
    EXPECT_EQ(e.simulate(txn({5, 9, 20})).reportCount, 1u);
    EXPECT_EQ(e.simulate(txn({2, 5, 7, 9, 12, 20, 30})).reportCount,
              1u);
    EXPECT_EQ(e.simulate(txn({5, 9})).reportCount, 0u);
    EXPECT_EQ(e.simulate(txn({5, 20})).reportCount, 0u);
    // Items cannot be skipped across a transaction boundary.
    std::vector<uint8_t> split = {zoo::kSeqSeparator, 5, 9,
                                  zoo::kSeqSeparator, 20};
    EXPECT_EQ(e.simulate(split).reportCount, 0u);
}

TEST(SeqMatch, CounterVariantImplementsSupportThreshold)
{
    Automaton a("s");
    zoo::SeqMatchParams p;
    p.itemsetSize = 2;
    p.filterWidth = 2;
    p.withCounters = true;
    p.supportThreshold = 3;
    zoo::appendSeqFilter(a, {4, 8}, p, 1);
    NfaEngine e(a);

    auto stream = [](int occurrences) {
        std::vector<uint8_t> v;
        for (int i = 0; i < occurrences; ++i) {
            v.push_back(zoo::kSeqSeparator);
            v.push_back(4);
            v.push_back(8);
        }
        v.push_back(zoo::kSeqSeparator);
        return v;
    };
    EXPECT_EQ(e.simulate(stream(2)).reportCount, 0u);
    EXPECT_EQ(e.simulate(stream(3)).reportCount, 1u);
    // Latch: exactly one report no matter how much more support.
    EXPECT_EQ(e.simulate(stream(10)).reportCount, 1u);
}

TEST(SeqMatch, PaddedVariantSameLanguageMoreStates)
{
    zoo::ZooConfig cfg = tinyConfig();
    zoo::SeqMatchParams exact;
    zoo::SeqMatchParams padded;
    padded.filterWidth = 10;
    auto b_e = zoo::makeSeqMatchBenchmark(cfg, exact);
    auto b_p = zoo::makeSeqMatchBenchmark(cfg, padded);
    EXPECT_GT(b_p.automaton.size(), b_e.automaton.size());

    NfaEngine e1(b_e.automaton), e2(b_p.automaton);
    auto r1 = e1.simulate(b_e.input);
    auto r2 = e2.simulate(b_e.input);
    EXPECT_EQ(r1.reportCount, r2.reportCount);
    // The padding states do attempt matches: more enabled work.
    EXPECT_GT(r2.totalEnabled, r1.totalEnabled);
}

TEST(SeqMatch, NativeSupportEqualsAutomataCounts)
{
    zoo::ZooConfig cfg = tinyConfig();
    cfg.scale = 0.02;
    zoo::SeqMatchParams p;
    auto b = zoo::makeSeqMatchBenchmark(cfg, p);
    auto itemsets = zoo::seqMatchItemsets(cfg, p);

    NfaEngine e(b.automaton);
    SimOptions opts;
    opts.recordReports = false;
    opts.countByCode = true;
    auto r = e.simulate(b.input, opts);
    auto native = zoo::nativeSupportCounts(itemsets, b.input);

    uint64_t total = 0;
    for (size_t f = 0; f < itemsets.size(); ++f) {
        auto it = r.byCode.find(static_cast<uint32_t>(f));
        const uint64_t automata =
            it == r.byCode.end() ? 0 : it->second;
        ASSERT_EQ(automata, native[f]) << "itemset " << f;
        total += native[f];
    }
    EXPECT_GT(total, 0u);
}

TEST(Yara, HexDialectConversion)
{
    EXPECT_EQ(zoo::yaraHexToRegex("9c 50"), "\\x9c\\x50");
    EXPECT_EQ(zoo::yaraHexToRegex("??"), ".");
    EXPECT_EQ(zoo::yaraHexToRegex("d?"), "[\\xd0-\\xdf]");
    EXPECT_EQ(zoo::yaraHexToRegex("[4-6]"), ".{4,6}");
    EXPECT_EQ(zoo::yaraHexToRegex("( aa | bb )"), "(\\xaa|\\xbb)");
    // Low-nibble wildcard expands to a 16-byte class.
    std::string low = zoo::yaraHexToRegex("?a");
    EXPECT_EQ(low.front(), '[');
    EXPECT_NE(low.find("\\x0a"), std::string::npos);
    EXPECT_NE(low.find("\\xfa"), std::string::npos);
}

TEST(Yara, NibbleWildcardSemantics)
{
    // "?A" matches any byte whose low nibble is A.
    Regex rx = parseRegexOrDie(zoo::yaraHexToRegex("?a"));
    Automaton a = compileRegex(rx, 1);
    NfaEngine e(a);
    for (int v : {0x0a, 0x3a, 0xfa}) {
        std::vector<uint8_t> in = {static_cast<uint8_t>(v)};
        EXPECT_EQ(e.simulate(in).reportCount, 1u) << v;
    }
    for (int v : {0x0b, 0xa0, 0xff}) {
        std::vector<uint8_t> in = {static_cast<uint8_t>(v)};
        EXPECT_EQ(e.simulate(in).reportCount, 0u) << v;
    }
}

TEST(Yara, RuleInstancesMatch)
{
    zoo::ZooConfig cfg = tinyConfig();
    auto rules = zoo::makeYaraRules(cfg, false);
    for (size_t i = 0; i < std::min<size_t>(10, rules.size()); ++i) {
        RegexFlags flags;
        flags.dotall = true;
        Regex rx = parseRegexOrDie(zoo::yaraHexToRegex(rules[i].hex), flags);
        Automaton a = compileRegex(rx, 1);
        NfaEngine e(a);
        std::vector<uint8_t> in(rules[i].instance.begin(),
                                rules[i].instance.end());
        EXPECT_GT(e.simulate(in).reportCount, 0u) << rules[i].hex;
    }
}

TEST(Entity, MatchesFormatVariantsAndTypos)
{
    Automaton a("e");
    input::Name n{"Maria", "Lindberg"};
    zoo::appendNameMatcher(a, n, 1);
    NfaEngine e(a);

    auto count = [&](const std::string &s) {
        std::vector<uint8_t> in(s.begin(), s.end());
        return e.simulate(in).reportCount;
    };
    EXPECT_GT(count("Maria Lindberg"), 0u);
    EXPECT_GT(count("Lindberg, Maria"), 0u);
    EXPECT_GT(count("M. Lindberg"), 0u);
    // One substitution in the surname.
    EXPECT_GT(count("Maria Lindbarg"), 0u);
    // Two substitutions: no match.
    EXPECT_EQ(count("Maria Lyndbarg"), 0u);
    // Unrelated name: no match.
    EXPECT_EQ(count("Peter Svensson"), 0u);
}

TEST(Entity, NativeResolutionsEqualAutomataOffsets)
{
    // Full-kernel property #3: the native fuzzy matcher implements
    // exactly the automata matchers' language, so per-name distinct
    // report offsets must equal native resolution counts.
    zoo::ZooConfig cfg = tinyConfig();
    cfg.scale = 0.003; // 30 names
    cfg.inputBytes = 16 * 1024;
    auto b = zoo::makeEntityBenchmark(cfg);
    auto names = zoo::entityNames(cfg);

    NfaEngine e(b.automaton);
    auto r = e.simulate(b.input);
    std::vector<std::set<uint64_t>> offsets(names.size());
    for (const auto &rep : r.reports)
        offsets[rep.code].insert(rep.offset);

    auto native = zoo::nativeResolutionCounts(names, b.input);
    uint64_t total = 0;
    for (size_t i = 0; i < names.size(); ++i) {
        ASSERT_EQ(offsets[i].size(), native[i])
            << names[i].first << " " << names[i].last;
        total += native[i];
    }
    EXPECT_GT(total, 0u);
}

TEST(ApPrng, ReportRateApproximatesDieProbability)
{
    zoo::ZooConfig cfg = tinyConfig();
    cfg.scale = 0.02; // 20 chains
    cfg.inputBytes = 100000;
    auto b = zoo::makeBenchmark("AP PRNG 4-sided", cfg);
    NfaEngine e(b.automaton);
    SimOptions opts;
    opts.recordReports = false;
    auto r = e.simulate(b.input, opts);
    // Each 4-sided chain's tap fires with P = 1/4 each 5-cycle lap:
    // rate = chains / sides / groups... the tap is one of 4 faces of
    // one of 5 groups: P(active at tap group with tap face) = 1/(4*5)
    // per symbol? The ring passes the tap group once per 5 symbols,
    // landing on the tap face 1/4 of the time: 20 chains * (1/20)
    // = 1 report/symbol.
    EXPECT_NEAR(r.reportRate(), 1.0, 0.1);
}

} // namespace
} // namespace azoo
