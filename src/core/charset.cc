#include "core/charset.hh"

#include <bit>
#include <cassert>

#include "util/logging.hh"
#include "util/strings.hh"

namespace azoo {

CharSet
CharSet::single(uint8_t c)
{
    CharSet cs;
    cs.set(c);
    return cs;
}

CharSet
CharSet::range(uint8_t lo, uint8_t hi)
{
    CharSet cs;
    cs.setRange(lo, hi);
    return cs;
}

CharSet
CharSet::all()
{
    CharSet cs;
    cs.words_ = {~uint64_t(0), ~uint64_t(0), ~uint64_t(0), ~uint64_t(0)};
    return cs;
}

void
CharSet::setRange(uint8_t lo, uint8_t hi)
{
    assert(lo <= hi);
    for (int c = lo; c <= hi; ++c)
        set(static_cast<uint8_t>(c));
}

bool
CharSet::tryFromExpr(const std::string &expr, CharSet &out,
                     std::string &error)
{
    CharSet cs;
    size_t i = 0;
    bool negate = false;
    if (i < expr.size() && expr[i] == '^') {
        negate = true;
        ++i;
    }

    bool bad = false;
    auto read_char = [&](size_t &pos) -> int {
        if (expr[pos] == '\\' && pos + 1 < expr.size()) {
            char e = expr[pos + 1];
            if (e == 'x' && pos + 3 < expr.size()) {
                int hi = hexValue(expr[pos + 2]);
                int lo = hexValue(expr[pos + 3]);
                if (hi < 0 || lo < 0) {
                    error = cat("bad \\x escape in charset: ", expr);
                    bad = true;
                    pos += 4;
                    return 0;
                }
                pos += 4;
                return hi * 16 + lo;
            }
            pos += 2;
            switch (e) {
              case 'n': return '\n';
              case 't': return '\t';
              case 'r': return '\r';
              case '0': return 0;
              default: return static_cast<unsigned char>(e);
            }
        }
        return static_cast<unsigned char>(expr[pos++]);
    };

    while (i < expr.size() && !bad) {
        int c = read_char(i);
        if (i + 1 < expr.size() && expr[i] == '-') {
            size_t j = i + 1;
            int hi = read_char(j);
            i = j;
            if (hi < c) {
                error = cat("reversed range in charset: ", expr);
                bad = true;
                break;
            }
            cs.setRange(static_cast<uint8_t>(c), static_cast<uint8_t>(hi));
        } else {
            cs.set(static_cast<uint8_t>(c));
        }
    }
    if (bad)
        return false;
    out = negate ? ~cs : cs;
    return true;
}

CharSet
CharSet::fromExpr(const std::string &expr)
{
    CharSet cs;
    std::string error;
    if (!tryFromExpr(expr, cs, error))
        fatal(error);
    return cs;
}

int
CharSet::count() const
{
    int n = 0;
    for (auto w : words_)
        n += std::popcount(w);
    return n;
}

bool
CharSet::empty() const
{
    return !(words_[0] | words_[1] | words_[2] | words_[3]);
}

int
CharSet::lowest() const
{
    for (int i = 0; i < 4; ++i) {
        if (words_[i])
            return i * 64 + std::countr_zero(words_[i]);
    }
    return -1;
}

CharSet
CharSet::operator|(const CharSet &o) const
{
    CharSet out = *this;
    out |= o;
    return out;
}

CharSet
CharSet::operator&(const CharSet &o) const
{
    CharSet out = *this;
    out &= o;
    return out;
}

CharSet
CharSet::operator~() const
{
    CharSet out;
    for (int i = 0; i < 4; ++i)
        out.words_[i] = ~words_[i];
    return out;
}

CharSet &
CharSet::operator|=(const CharSet &o)
{
    for (int i = 0; i < 4; ++i)
        words_[i] |= o.words_[i];
    return *this;
}

CharSet &
CharSet::operator&=(const CharSet &o)
{
    for (int i = 0; i < 4; ++i)
        words_[i] &= o.words_[i];
    return *this;
}

uint64_t
CharSet::hash() const
{
    // FNV-style mix over the four words.
    uint64_t h = 0xcbf29ce484222325ULL;
    for (auto w : words_) {
        h ^= w;
        h *= 0x100000001b3ULL;
        h ^= h >> 29;
    }
    return h;
}

std::string
CharSet::str() const
{
    if (count() == 256)
        return "*";
    std::string out = "[";
    int c = 0;
    while (c < 256) {
        if (!test(static_cast<uint8_t>(c))) {
            ++c;
            continue;
        }
        int run = c;
        while (run + 1 < 256 && test(static_cast<uint8_t>(run + 1)))
            ++run;
        auto show = [](int v) -> std::string {
            // Escape whitespace too: azml tokenizes on spaces.
            if (v > 0x20 && v < 0x7f &&
                v != '[' && v != ']' && v != '\\' && v != '-' &&
                v != '^') {
                return std::string(1, static_cast<char>(v));
            }
            return "\\x" + hexByte(static_cast<uint8_t>(v));
        };
        out += show(c);
        if (run > c) {
            if (run > c + 1)
                out += "-";
            out += show(run);
        }
        c = run + 1;
    }
    out += "]";
    return out;
}

} // namespace azoo
