/**
 * @file
 * Regular-expression abstract syntax tree.
 *
 * The regex pipeline substitutes for the paper's pcre2mnrl tool (an
 * Intel Hyperscan frontend): patterns are parsed into this AST and
 * compiled into homogeneous automata with the Glushkov position
 * construction (glushkov.hh). A separate AST-walking backtracking
 * matcher (backtrack.hh) provides an independent oracle for
 * differential testing of the whole pipeline.
 */

#ifndef AZOO_REGEX_AST_HH
#define AZOO_REGEX_AST_HH

#include <memory>
#include <string>
#include <vector>

#include "core/charset.hh"

namespace azoo {

/** AST node operators. */
enum class RegexOp : uint8_t {
    kEmpty,  ///< epsilon
    kClass,  ///< single-symbol character class
    kConcat, ///< sequence of children
    kAlt,    ///< alternation of children
    kStar,   ///< zero or more of child
    kPlus,   ///< one or more of child
    kOpt,    ///< zero or one of child
    kRepeat, ///< bounded repeat {min,max}; max < 0 means unbounded
};

/** One AST node. Children are owned. */
struct RegexNode {
    RegexOp op = RegexOp::kEmpty;
    CharSet cls;              ///< kClass only
    int min = 0, max = 0;     ///< kRepeat only
    std::vector<std::unique_ptr<RegexNode>> kids;

    /** Deep copy (used by bounded-repeat expansion). */
    std::unique_ptr<RegexNode> clone() const;
};

/** Parse-time flags (a subset of PCRE's). */
struct RegexFlags {
    bool nocase = false; ///< /i: ASCII case-insensitive classes
    bool dotall = false; ///< /s: '.' also matches \n
};

/** A parsed pattern plus its anchoring metadata. */
struct Regex {
    std::string pattern;          ///< original source text
    std::unique_ptr<RegexNode> root;
    bool anchoredStart = false;   ///< leading '^'
    bool anchoredEnd = false;     ///< trailing '$' (recorded; see docs)
    RegexFlags flags;
};

/** Helpers used by both the compiler and the oracle. */
std::unique_ptr<RegexNode> makeClass(const CharSet &cs);
std::unique_ptr<RegexNode> makeEmpty();

/** True if the node can match the empty string. */
bool nullable(const RegexNode &n);

/** Count of kClass leaves (Glushkov positions) after expansion. */
size_t countPositions(const RegexNode &n);

/**
 * Rewrite kRepeat nodes into clones using concat/alt/star so that the
 * Glushkov construction only sees the native operators. Fails
 * (fatal()) if the expansion would exceed @p position_limit leaves.
 */
std::unique_ptr<RegexNode> expandRepeats(
    std::unique_ptr<RegexNode> node, size_t position_limit);

} // namespace azoo

#endif // AZOO_REGEX_AST_HH
