/**
 * @file
 * Regex pipeline tests: parser units, Glushkov compilation, and the
 * differential property suite -- random patterns on random inputs,
 * comparing the NFA interpreter and the compiled multi-DFA engine
 * against the independent AST backtracking oracle.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "engine/multidfa_engine.hh"
#include "engine/nfa_engine.hh"
#include "regex/backtrack.hh"
#include "regex/glushkov.hh"
#include "regex/parser.hh"
#include "util/rng.hh"

namespace azoo {
namespace {

/** Offsets reported by an engine on an input. */
std::vector<uint64_t>
engineOffsets(const Automaton &a, const std::vector<uint8_t> &in,
              bool use_dfa)
{
    SimResult r;
    if (use_dfa) {
        MultiDfaEngine e(a);
        r = e.simulate(in);
    } else {
        NfaEngine e(a);
        r = e.simulate(in);
    }
    std::vector<uint64_t> offs;
    offs.reserve(r.reports.size());
    for (const auto &rep : r.reports)
        offs.push_back(rep.offset);
    std::sort(offs.begin(), offs.end());
    offs.erase(std::unique(offs.begin(), offs.end()), offs.end());
    return offs;
}

void
expectAgreesWithOracle(const std::string &pattern,
                       const std::string &text,
                       RegexFlags flags = RegexFlags())
{
    Regex rx = parseRegexOrDie(pattern, flags);
    Automaton a = compileRegex(rx, 1);
    a.validate();
    std::vector<uint8_t> in(text.begin(), text.end());
    auto expected = referenceMatchEnds(rx, in);
    EXPECT_EQ(engineOffsets(a, in, false), expected)
        << "NFA vs oracle for /" << pattern << "/ on '" << text << "'";
    EXPECT_EQ(engineOffsets(a, in, true), expected)
        << "DFA vs oracle for /" << pattern << "/ on '" << text << "'";
}

TEST(RegexParser, RejectsInvalidPatterns)
{
    Regex rx;
    std::string err;
    EXPECT_FALSE(tryParseRegex("a(b", RegexFlags(), rx, err));
    EXPECT_FALSE(tryParseRegex("*a", RegexFlags(), rx, err));
    EXPECT_FALSE(tryParseRegex("a[b", RegexFlags(), rx, err));
    EXPECT_FALSE(tryParseRegex("a{3,1}", RegexFlags(), rx, err));
    EXPECT_FALSE(tryParseRegex("a**", RegexFlags(), rx, err)); // a* ok,
    // second star applies to star -- actually (a*)* is nullable:
    EXPECT_NE(err, "");
}

TEST(RegexParser, RejectsEmptyMatchingPatterns)
{
    Regex rx;
    std::string err;
    EXPECT_FALSE(tryParseRegex("a*", RegexFlags(), rx, err));
    EXPECT_NE(err.find("pattern matches the empty string"),
              std::string::npos)
        << err;
    EXPECT_FALSE(tryParseRegex("(a|)", RegexFlags(), rx, err));
    EXPECT_FALSE(tryParseRegex("a?b*", RegexFlags(), rx, err));
}

TEST(RegexParser, RejectsBackreferencesAndLookaround)
{
    Regex rx;
    std::string err;
    EXPECT_FALSE(tryParseRegex("(a)\\1", RegexFlags(), rx, err));
    EXPECT_NE(err.find("backreference"), std::string::npos);
    EXPECT_FALSE(tryParseRegex("(?=a)b", RegexFlags(), rx, err));
}

TEST(RegexParser, AnchorsRecorded)
{
    Regex rx = parseRegexOrDie("^abc");
    EXPECT_TRUE(rx.anchoredStart);
    EXPECT_FALSE(rx.anchoredEnd);
    rx = parseRegexOrDie("abc$");
    EXPECT_FALSE(rx.anchoredStart);
    EXPECT_TRUE(rx.anchoredEnd);
}

TEST(RegexParser, LiteralBraceWhenNotABound)
{
    // PCRE treats '{' literally when it is not a valid quantifier.
    expectAgreesWithOracle("a{x}", "xa{x}y");
}

TEST(RegexParser, EscapesAndClasses)
{
    expectAgreesWithOracle("\\x41\\d\\w", "A1_ A9z B2x");
    expectAgreesWithOracle("[^a-y]", "xyz");
    expectAgreesWithOracle("[]a]", "]a");     // leading ] is literal
    expectAgreesWithOracle("[a\\-c]", "a-c"); // escaped dash
}

TEST(RegexGlushkov, LiteralChainShape)
{
    Automaton a = compileRegex(parseRegexOrDie("abc"), 9);
    EXPECT_EQ(a.size(), 3u);
    EXPECT_EQ(a.edgeCount(), 2u);
    EXPECT_EQ(a.element(0).start, StartType::kAllInput);
    EXPECT_TRUE(a.element(2).reporting);
    EXPECT_EQ(a.element(2).reportCode, 9u);
}

TEST(RegexGlushkov, AnchoredUsesStartOfData)
{
    Automaton a = compileRegex(parseRegexOrDie("^ab"), 0);
    EXPECT_EQ(a.element(0).start, StartType::kStartOfData);
}

TEST(RegexGlushkov, PositionCountMatchesClassOccurrences)
{
    // (ab|cd)e has 5 positions.
    Automaton a = compileRegex(parseRegexOrDie("(ab|cd)e"), 0);
    EXPECT_EQ(a.size(), 5u);
}

TEST(RegexSemantics, HandPickedCases)
{
    expectAgreesWithOracle("abc", "zabcabcz");
    expectAgreesWithOracle("a.c", "abc axc a\nc");
    expectAgreesWithOracle("ab|cd", "abcd");
    expectAgreesWithOracle("a(b|c)*d", "abcbcd ad abd");
    expectAgreesWithOracle("a+b+", "aaabbb ab b a");
    expectAgreesWithOracle("(ab)+", "ababab");
    expectAgreesWithOracle("a{3}", "aaaa");
    expectAgreesWithOracle("a{2,4}", "aaaaaa");
    expectAgreesWithOracle("a{2,}", "aaaaa");
    expectAgreesWithOracle("ab{0,2}c", "ac abc abbc abbbc");
    expectAgreesWithOracle("^ab", "abab");
    expectAgreesWithOracle("x.*y", "xzzy xy yx");
    expectAgreesWithOracle("(a|ab)(c|bcd)", "abcd acd");
}

TEST(RegexSemantics, NocaseFlag)
{
    RegexFlags f;
    f.nocase = true;
    expectAgreesWithOracle("aBc", "abc ABC aBC xbc", f);
    expectAgreesWithOracle("[a-c]x", "AX bx CX dx", f);
}

TEST(RegexSemantics, DotallFlag)
{
    RegexFlags f;
    f.dotall = true;
    expectAgreesWithOracle("a.b", "a\nb", f);
}

TEST(RegexSemantics, OverlappingMatchesAllReported)
{
    // Streaming automata report every match end.
    expectAgreesWithOracle("aa", "aaaa");
    expectAgreesWithOracle("aba", "ababa");
}

/** Random pattern generator over a small alphabet (so matches are
 *  likely). Never generates nullable patterns at top level; the
 *  parser itself rejects those. */
std::string
randomPattern(Rng &rng, int depth)
{
    auto atom = [&]() -> std::string {
        switch (rng.nextBelow(6)) {
          case 0: return std::string(1, 'a' + rng.nextBelow(3));
          case 1: return ".";
          case 2: return "[ab]";
          case 3: return "[^a]";
          case 4: return std::string(1, 'a' + rng.nextBelow(3));
          default: return std::string(1, 'a' + rng.nextBelow(3));
        }
    };
    std::string p;
    const int terms = 1 + static_cast<int>(rng.nextBelow(4));
    for (int t = 0; t < terms; ++t) {
        std::string piece;
        if (depth > 0 && rng.nextBool(0.3)) {
            piece = "(" + randomPattern(rng, depth - 1);
            if (rng.nextBool(0.5))
                piece += "|" + randomPattern(rng, depth - 1);
            piece += ")";
        } else {
            piece = atom();
        }
        switch (rng.nextBelow(8)) {
          case 0: piece += "*"; break;
          case 1: piece += "+"; break;
          case 2: piece += "?"; break;
          case 3:
            piece += "{" + std::to_string(1 + rng.nextBelow(3)) + "," +
                std::to_string(2 + rng.nextBelow(3)) + "}";
            break;
          default: break;
        }
        p += piece;
    }
    return p;
}

class RegexDifferential : public testing::TestWithParam<int>
{
};

/**
 * The core differential property: both engines agree with the oracle
 * on random patterns x random inputs. 40 seeds x 8 inputs each.
 */
TEST_P(RegexDifferential, EnginesAgreeWithOracle)
{
    Rng rng(1000 + GetParam());
    std::string pattern = randomPattern(rng, 2);
    Regex rx;
    std::string err;
    if (!tryParseRegex(pattern, RegexFlags(), rx, err))
        GTEST_SKIP() << "nullable pattern " << pattern;

    Automaton a = compileRegex(rx, 0);
    for (int i = 0; i < 8; ++i) {
        const size_t len = 1 + rng.nextBelow(60);
        std::string text = rng.randomString(len, "abcd");
        std::vector<uint8_t> in(text.begin(), text.end());
        auto expected = referenceMatchEnds(rx, in);
        ASSERT_EQ(engineOffsets(a, in, false), expected)
            << "NFA /" << pattern << "/ on '" << text << "'";
        ASSERT_EQ(engineOffsets(a, in, true), expected)
            << "DFA /" << pattern << "/ on '" << text << "'";
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RegexDifferential,
                         testing::Range(0, 40));

/** Anchored differential sweep. */
class RegexAnchoredDifferential : public testing::TestWithParam<int>
{
};

TEST_P(RegexAnchoredDifferential, AnchoredEnginesAgree)
{
    Rng rng(5000 + GetParam());
    std::string pattern = "^" + randomPattern(rng, 1);
    Regex rx;
    std::string err;
    if (!tryParseRegex(pattern, RegexFlags(), rx, err))
        GTEST_SKIP();
    Automaton a = compileRegex(rx, 0);
    for (int i = 0; i < 8; ++i) {
        std::string text = rng.randomString(1 + rng.nextBelow(30),
                                            "abc");
        std::vector<uint8_t> in(text.begin(), text.end());
        auto expected = referenceMatchEnds(rx, in);
        ASSERT_EQ(engineOffsets(a, in, false), expected)
            << "/" << pattern << "/ on '" << text << "'";
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RegexAnchoredDifferential,
                         testing::Range(0, 20));

/** Flagged differential sweep: nocase and dotall change the charset
 *  construction, so they get their own randomized pass. */
class RegexFlaggedDifferential : public testing::TestWithParam<int>
{
};

TEST_P(RegexFlaggedDifferential, FlaggedEnginesAgree)
{
    Rng rng(8000 + GetParam());
    RegexFlags flags;
    flags.nocase = rng.nextBool();
    flags.dotall = rng.nextBool();
    std::string pattern = randomPattern(rng, 2);
    Regex rx;
    std::string err;
    if (!tryParseRegex(pattern, flags, rx, err))
        GTEST_SKIP();
    Automaton a = compileRegex(rx, 0);
    for (int i = 0; i < 6; ++i) {
        // Mixed-case alphabet with newlines so both flags matter.
        std::string text = rng.randomString(1 + rng.nextBelow(50),
                                            "aAbBcC\n");
        std::vector<uint8_t> in(text.begin(), text.end());
        auto expected = referenceMatchEnds(rx, in);
        ASSERT_EQ(engineOffsets(a, in, false), expected)
            << "NFA /" << pattern << "/ nocase=" << flags.nocase
            << " dotall=" << flags.dotall << " on '" << text << "'";
        ASSERT_EQ(engineOffsets(a, in, true), expected)
            << "DFA /" << pattern << "/";
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RegexFlaggedDifferential,
                         testing::Range(0, 25));

} // namespace
} // namespace azoo
