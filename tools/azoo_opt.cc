/**
 * @file
 * azoo_opt: optimize / transform / convert automata files.
 *
 * Usage:
 *   azoo_opt --in x.anml --out y.mnrl
 *            [--pass prefix|suffix|full|prune|widen]...
 *
 * The output format is inferred from the --out extension, so with no
 * passes this is a pure format converter. Passes apply left to right
 * (the flag may be a comma-separated list).
 */

#include <iostream>

#include "core/anml.hh"
#include "core/mnrl.hh"
#include "core/serialize.hh"
#include "transform/prefix_merge.hh"
#include "transform/prune.hh"
#include "transform/suffix_merge.hh"
#include "transform/widen.hh"
#include "tool_common.hh"
#include "util/cli.hh"
#include "util/logging.hh"
#include "util/strings.hh"

using namespace azoo;

namespace {

void
saveAny(const std::string &path, const Automaton &a)
{
    if (path.size() >= 5 && path.rfind(".mnrl") == path.size() - 5)
        saveMnrl(path, a);
    else if (path.size() >= 5 && path.rfind(".anml") == path.size() - 5)
        saveAnml(path, a);
    else
        saveAzml(path, a);
}

} // namespace

int
main(int argc, char **argv)
{
    Cli cli(argc, argv, {"in", "out", "pass"});
    const std::string in = cli.get("in");
    const std::string out = cli.get("out");
    if (in.empty() || out.empty())
        tool::usageError("azoo_opt: --in and --out are required");

    Automaton a = tool::loadAnyOrExit(in);
    std::cout << "loaded " << a.size() << " elements from " << in
              << "\n";

    for (const std::string &pass : split(cli.get("pass", ""), ',')) {
        if (pass.empty())
            continue;
        const size_t before = a.size();
        if (pass == "prefix") {
            a = prefixMerge(a).automaton;
        } else if (pass == "suffix") {
            a = suffixMerge(a).automaton;
        } else if (pass == "full") {
            a = fullMerge(a).automaton;
        } else if (pass == "prune") {
            a = pruneDeadStates(a).automaton;
        } else if (pass == "widen") {
            a = widen(a);
        } else {
            tool::usageError(cat("azoo_opt: unknown pass '", pass,
                                 "' (prefix|suffix|full|prune|widen)"));
        }
        std::cout << "pass " << pass << ": " << before << " -> "
                  << a.size() << " elements\n";
    }

    saveAny(out, a);
    std::cout << "wrote " << out << "\n";
    return 0;
}
