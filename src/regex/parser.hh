/**
 * @file
 * PCRE-subset regular expression parser.
 *
 * Supported syntax (the subset pcre2mnrl accepts and the AutomataZoo
 * generators emit): literals, '.', escapes (\n \t \r \f \v \0 \xNN,
 * \d \D \w \W \s \S, punctuation escapes), character classes with
 * ranges and negation, grouping '(...)' and '(?:...)', alternation
 * '|', quantifiers '*' '+' '?' '{n}' '{n,}' '{n,m}' (lazy variants
 * accepted, same language), and anchors '^' (leading) / '$'
 * (trailing). Back-references are rejected, as in the paper ("e.g.
 * pcre2mnrl does not support back references").
 */

#ifndef AZOO_REGEX_PARSER_HH
#define AZOO_REGEX_PARSER_HH

#include <string>

#include "regex/ast.hh"
#include "util/status.hh"

namespace azoo {

/**
 * Parse a pattern. Syntax errors and unsupported constructs return a
 * structured Status (kParseError / kUnsupported / kLimitExceeded)
 * carrying the byte offset of the failure within the pattern,
 * following the hs_compile error contract.
 */
Expected<Regex> parseRegex(const std::string &pattern,
                           const RegexFlags &flags = RegexFlags(),
                           const ParseLimits &limits = ParseLimits());

/**
 * Fail-loudly wrapper for generator call sites (rules baked into the
 * zoo): fatal() with the Status message on any error.
 */
Regex parseRegexOrDie(const std::string &pattern,
                      const RegexFlags &flags = RegexFlags());

/**
 * Bool-and-message variant: returns false and fills @p error instead
 * of exiting. Used by rule-compilation loops that skip unsupported
 * rules (the paper's Snort/ClamAV flow does exactly this).
 */
bool tryParseRegex(const std::string &pattern, const RegexFlags &flags,
                   Regex &out, std::string &error);

} // namespace azoo

#endif // AZOO_REGEX_PARSER_HH
