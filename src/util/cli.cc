#include "util/cli.hh"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "util/logging.hh"

namespace azoo {

namespace {

/** Flag errors are *usage* errors: exit with the sysexits EX_USAGE
 *  code (64) so scripts can tell a typo from bad input data (65). */
[[noreturn]] void
usageFatal(const std::string &msg)
{
    std::fprintf(stderr, "fatal: %s\n", msg.c_str());
    std::exit(64);
}

} // namespace

Cli::Cli(int argc, char **argv, const std::vector<std::string> &known)
{
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg.rfind("--", 0) != 0)
            usageFatal(cat("unexpected positional argument: ", arg));
        arg = arg.substr(2);
        // Every tool answers --help with its accepted flags, one per
        // line; tools/check_docs.py diffs this against docs/FORMATS.md.
        if (arg == "help") {
            std::printf("usage: %s [flags]\nflags:\n",
                        argc > 0 ? argv[0] : "tool");
            for (const auto &k : known)
                std::printf("  --%s\n", k.c_str());
            std::printf("  --help\n");
            std::exit(0);
        }
        std::string name;
        std::string value;
        auto eq = arg.find('=');
        if (eq != std::string::npos) {
            name = arg.substr(0, eq);
            value = arg.substr(eq + 1);
        } else {
            name = arg;
            // Consume a following value if it isn't another flag.
            if (i + 1 < argc &&
                std::string(argv[i + 1]).rfind("--", 0) != 0) {
                value = argv[++i];
            } else {
                value = "true";
            }
        }
        if (std::find(known.begin(), known.end(), name) == known.end()) {
            std::string usage = "unknown flag --" + name + "; known:";
            for (const auto &k : known)
                usage += " --" + k;
            usageFatal(usage);
        }
        values_[name] = value;
    }
}

bool
Cli::has(const std::string &name) const
{
    return values_.count(name) > 0;
}

std::string
Cli::get(const std::string &name, const std::string &def) const
{
    auto it = values_.find(name);
    return it == values_.end() ? def : it->second;
}

int64_t
Cli::getInt(const std::string &name, int64_t def) const
{
    auto it = values_.find(name);
    return it == values_.end() ? def : std::strtoll(
        it->second.c_str(), nullptr, 10);
}

double
Cli::getDouble(const std::string &name, double def) const
{
    auto it = values_.find(name);
    return it == values_.end() ? def : std::strtod(
        it->second.c_str(), nullptr);
}

bool
Cli::getBool(const std::string &name, bool def) const
{
    auto it = values_.find(name);
    if (it == values_.end())
        return def;
    return it->second == "true" || it->second == "1" ||
        it->second == "yes";
}

} // namespace azoo
