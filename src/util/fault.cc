#include "util/fault.hh"

#include <atomic>
#include <cstdlib>
#include <string>

#include "util/logging.hh"

namespace azoo {
namespace fault {

const char *
pointName(Point p)
{
    switch (p) {
      case Point::kAllocFail: return "alloc-fail";
      case Point::kTruncatedRead: return "truncated-read";
      case Point::kGuardExpiry: return "guard-expiry";
      case Point::kSessionDrop: return "session-drop";
      case Point::kSlowConsumer: return "slow-consumer";
      case Point::kAcceptFail: return "accept-fail";
    }
    return "unknown";
}

namespace {

/** Split @p s on @p sep; empty pieces are preserved so "a;;b"
 *  surfaces the empty entry as an error instead of vanishing. */
std::vector<std::string_view>
splitView(std::string_view s, char sep)
{
    std::vector<std::string_view> out;
    size_t start = 0;
    for (size_t i = 0; i <= s.size(); ++i) {
        if (i == s.size() || s[i] == sep) {
            out.push_back(s.substr(start, i - start));
            start = i + 1;
        }
    }
    return out;
}

/** Strict decimal u64; false on empty, non-digits, or overflow. */
bool
parseU64(std::string_view s, uint64_t &out)
{
    if (s.empty() || s.size() > 20)
        return false;
    uint64_t v = 0;
    for (char c : s) {
        if (c < '0' || c > '9')
            return false;
        const uint64_t d = static_cast<uint64_t>(c - '0');
        if (v > (~uint64_t(0) - d) / 10)
            return false;
        v = v * 10 + d;
    }
    out = v;
    return true;
}

Status
badSpec(std::string_view entry, const char *why)
{
    return Status(ErrorCode::kInvalidArgument,
                  cat("AZOO_FAULT_SPEC: bad entry '",
                      std::string(entry), "': ", why));
}

} // namespace

Expected<std::vector<SpecEntry>>
parseSpec(std::string_view spec)
{
    std::vector<SpecEntry> entries;
    if (spec.empty())
        return entries;
    for (std::string_view entry : splitView(spec, ';')) {
        const std::vector<std::string_view> f = splitView(entry, ':');
        if (entry.empty())
            return badSpec(entry, "empty entry (stray ';'?)");
        SpecEntry e;
        bool known = false;
        for (size_t p = 0; p < kPointCount; ++p) {
            if (f[0] == pointName(static_cast<Point>(p))) {
                e.point = static_cast<Point>(p);
                known = true;
                break;
            }
        }
        if (!known)
            return badSpec(entry, "unknown fault point");
        if (f.size() < 2)
            return badSpec(entry, "missing schedule");
        if (f[1] == "off") {
            if (f.size() != 2)
                return badSpec(entry, "'off' takes no arguments");
            e.mode = SpecEntry::Mode::kOff;
        } else if (f[1] == "after") {
            if (f.size() != 3)
                return badSpec(entry, "'after' needs exactly one "
                                      "count (after:N)");
            if (!parseU64(f[2], e.skip))
                return badSpec(entry, "bad count");
            e.mode = SpecEntry::Mode::kAfter;
        } else if (f[1] == "random") {
            if (f.size() != 4)
                return badSpec(entry, "'random' needs a seed and a "
                                      "per-mille (random:SEED:PM)");
            uint64_t pm = 0;
            if (!parseU64(f[2], e.seed))
                return badSpec(entry, "bad seed");
            if (!parseU64(f[3], pm) || pm > 1000)
                return badSpec(entry, "per-mille must be 0..1000");
            e.mode = SpecEntry::Mode::kRandom;
            e.perMille = static_cast<uint32_t>(pm);
        } else {
            return badSpec(entry,
                           "unknown schedule (off|after|random)");
        }
        entries.push_back(e);
    }
    return entries;
}

Status
applySpec(std::string_view spec)
{
    Expected<std::vector<SpecEntry>> entries = parseSpec(spec);
    if (!entries.ok())
        return entries.status();
    for (const SpecEntry &e : *entries) {
        switch (e.mode) {
          case SpecEntry::Mode::kOff:
            disarm(e.point);
            break;
          case SpecEntry::Mode::kAfter:
            armAfter(e.point, e.skip);
            break;
          case SpecEntry::Mode::kRandom:
            armRandom(e.point, e.seed, e.perMille);
            break;
        }
    }
    return Status();
}

Status
armFromEnv()
{
    // NOLINTNEXTLINE(concurrency-mt-unsafe) — called once at startup.
    const char *spec = std::getenv("AZOO_FAULT_SPEC");
    if (!spec || !*spec)
        return Status();
    return applySpec(spec);
}

#if AZOO_FAULT_INJECTION

namespace {

enum class Mode : uint8_t { kDisarmed, kCountdown, kRandom };

struct PointState {
    std::atomic<Mode> mode{Mode::kDisarmed};
    /** kCountdown: checks remaining before the shot fires. */
    std::atomic<uint64_t> countdown{0};
    /** kRandom: splitmix64 state, advanced atomically per check. */
    std::atomic<uint64_t> rng{0};
    std::atomic<uint32_t> perMille{0};
    std::atomic<uint64_t> checks{0};
};

PointState g_points[kPointCount];

PointState &
state(Point p)
{
    return g_points[static_cast<size_t>(p)];
}

uint64_t
splitmix64(uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

} // namespace

void
armAfter(Point p, uint64_t skip)
{
    PointState &s = state(p);
    s.countdown.store(skip);
    s.checks.store(0);
    s.mode.store(Mode::kCountdown);
}

void
armRandom(Point p, uint64_t seed, uint32_t perMille)
{
    PointState &s = state(p);
    s.rng.store(seed);
    s.perMille.store(perMille > 1000 ? 1000 : perMille);
    s.checks.store(0);
    s.mode.store(Mode::kRandom);
}

void
disarm(Point p)
{
    state(p).mode.store(Mode::kDisarmed);
}

void
disarmAll()
{
    for (auto &s : g_points)
        s.mode.store(Mode::kDisarmed);
}

uint64_t
checkCount(Point p)
{
    return state(p).checks.load();
}

bool
shouldFail(Point p)
{
    PointState &s = state(p);
    const Mode m = s.mode.load(std::memory_order_relaxed);
    if (m == Mode::kDisarmed)
        return false;
    s.checks.fetch_add(1, std::memory_order_relaxed);
    if (m == Mode::kCountdown) {
        // fetch_sub past zero would wrap; claim the shot with a CAS
        // loop so exactly one checking thread fires.
        uint64_t left = s.countdown.load();
        for (;;) {
            if (left == 0) {
                // The shot: disarm and fire (only the thread that
                // flips the mode wins).
                Mode expected = Mode::kCountdown;
                return s.mode.compare_exchange_strong(expected,
                                                      Mode::kDisarmed);
            }
            if (s.countdown.compare_exchange_weak(left, left - 1))
                return false;
        }
    }
    // kRandom: advance the shared stream, draw in [0, 1000).
    const uint64_t prev = s.rng.fetch_add(1);
    const uint64_t draw = splitmix64(prev) % 1000;
    return draw < s.perMille.load(std::memory_order_relaxed);
}

#endif // AZOO_FAULT_INJECTION

} // namespace fault
} // namespace azoo
