#include "core/builder.hh"

#include <cctype>

namespace azoo {

ElementId
addChain(Automaton &a, const std::vector<CharSet> &labels, StartType start,
         bool report_last, uint32_t report_code)
{
    ElementId prev = kNoElement;
    ElementId first = kNoElement;
    for (size_t i = 0; i < labels.size(); ++i) {
        bool last = i + 1 == labels.size();
        ElementId id = a.addSte(labels[i],
                                i == 0 ? start : StartType::kNone,
                                last && report_last, report_code);
        if (first == kNoElement)
            first = id;
        if (prev != kNoElement)
            a.addEdge(prev, id);
        prev = id;
    }
    return prev;
}

ElementId
addLiteral(Automaton &a, const std::string &literal, StartType start,
           bool report_last, uint32_t report_code)
{
    return addChain(a, literalLabels(literal), start, report_last,
                    report_code);
}

ElementId
addLiteralNocase(Automaton &a, const std::string &literal, StartType start,
                 bool report_last, uint32_t report_code)
{
    return addChain(a, nocaseLabels(literal), start, report_last,
                    report_code);
}

ElementId
addStarState(Automaton &a, const CharSet &symbols)
{
    ElementId id = a.addSte(symbols, StartType::kAllInput);
    a.addEdge(id, id);
    return id;
}

std::vector<CharSet>
literalLabels(const std::string &literal)
{
    std::vector<CharSet> labels;
    labels.reserve(literal.size());
    for (char c : literal)
        labels.push_back(CharSet::single(static_cast<uint8_t>(c)));
    return labels;
}

std::vector<CharSet>
nocaseLabels(const std::string &literal)
{
    std::vector<CharSet> labels;
    labels.reserve(literal.size());
    for (char c : literal) {
        auto uc = static_cast<unsigned char>(c);
        CharSet cs = CharSet::single(uc);
        if (std::isalpha(uc)) {
            cs.set(static_cast<uint8_t>(std::tolower(uc)));
            cs.set(static_cast<uint8_t>(std::toupper(uc)));
        }
        labels.push_back(cs);
    }
    return labels;
}

} // namespace azoo
