/**
 * @file
 * Static verifier and linter over the automata IR.
 *
 * AutomataZoo's value rests on the structural fidelity of its
 * generated automata: a silently-corrupted automaton still "runs", it
 * just computes the wrong language or wastes capacity. This module
 * checks the invariants every producer (Glushkov compiler, the
 * transform passes, the 24 zoo generators, the format readers) must
 * preserve, and returns structured diagnostics instead of aborting,
 * so drivers can render tables, gate CI, or panic as appropriate.
 *
 * Two entry points:
 *
 *  - verify() checks hard invariants. Error-severity findings mean
 *    the automaton is structurally corrupt (dangling edges, counters
 *    that can never count); warning-severity findings are legal but
 *    almost always producer bugs (dead elements, report-code
 *    collisions); notes are observations (start-of-data re-entry).
 *  - lint() adds soft rules about capacity waste and mergeable
 *    redundancy. Every rule can be disabled per-call via Options.
 *
 * postVerify() is the producer-side hook: transforms and generators
 * call it as a post-condition. Errors panic() in debug builds
 * (NDEBUG unset) and warn() once in release builds, so a broken pass
 * fails loudly under test without costing release users an abort.
 */

#ifndef AZOO_ANALYSIS_ANALYSIS_HH
#define AZOO_ANALYSIS_ANALYSIS_HH

#include <cstdint>
#include <string>
#include <vector>

#include "core/automaton.hh"

namespace azoo {
namespace analysis {

/** How bad a finding is (see the file comment for the policy). */
enum class Severity : uint8_t {
    kError,   ///< structurally corrupt; simulation is meaningless
    kWarning, ///< legal but almost certainly a producer bug
    kNote,    ///< observation; legitimate patterns trip these
};

/** Every rule the verifier and linter know about. */
enum class Rule : uint8_t {
    // verify(): hard structural invariants.
    kDanglingEdge,       ///< activation edge to an out-of-range id
    kDanglingReset,      ///< reset edge to an out-of-range id
    kResetNonCounter,    ///< reset edge targets a non-counter
    kDuplicateEdge,      ///< repeated (from, to) activation edge
    kDuplicateReset,     ///< repeated (from, to) reset edge
    kEmptyCharset,       ///< STE whose symbol set matches nothing
    kCounterSymbols,     ///< counter carries a symbol set
    kCounterStart,       ///< counter has a start type
    kCounterZeroTarget,  ///< counter target is zero
    kCounterUnwired,     ///< counter with no count-enable predecessor
    kCounterResetOverlap,///< same element counts and resets a counter
    kUnreachable,        ///< not forward-reachable from any start
    kDeadElement,        ///< no path to any reporting element
    kNoStart,            ///< non-empty automaton with no start states
    kNoReport,           ///< non-empty automaton that never reports
    kReportCollision,    ///< one report code spans several subgraphs
    kSodReentry,         ///< edge into a start-of-data state
    kAcceptOnPadding,    ///< reporting STE matches the padding symbol
    kWidenLayout,        ///< widened-layout discipline violated
    // lint(): soft rules.
    kParallelTwins,      ///< redundant parallel successors
    kMergeableTwins,     ///< prefix-merge would collapse these
    kLargeFanout,        ///< suspiciously large out-degree
    kEdgeIntoAllInput,   ///< no-op edge into an always-enabled state
    // profileLint(): planning facts from inferProfiles() (profile.hh).
    kPrefilterHostile,      ///< unbounded matches, no literal factor
    kLiteralChainComponent, ///< pure literal chain; literal-engine bait
    kWeakLiteralFactor,     ///< bounded component, short factor
    kDfaBlowupRisk,         ///< subset-construction estimate too high
    kCounterUnsatisfiable,  ///< counter target can never be reached
};

/** Number of distinct rules (for iteration in tables/tests). */
constexpr size_t kRuleCount =
    static_cast<size_t>(Rule::kCounterUnsatisfiable) + 1;

/** Stable rule id, e.g. "V012" / "L102" (verify vs lint namespace). */
const char *ruleId(Rule r);

/** Human-readable kebab-case rule name, e.g. "dangling-edge". */
const char *ruleName(Rule r);

/** One-line rule description (for --list-rules and the docs). */
const char *ruleDescription(Rule r);

/** The severity a rule carries by default. */
Severity defaultSeverity(Rule r);

/** "error" | "warning" | "note". */
const char *severityName(Severity s);

/** One finding. */
struct Diagnostic {
    Severity severity = Severity::kError;
    Rule rule = Rule::kDanglingEdge;
    /** Primary element, or kNoElement for whole-automaton findings. */
    ElementId element = kNoElement;
    /** Secondary element (edge target, twin, ...), if any. */
    ElementId other = kNoElement;
    std::string message;
};

/** Per-call configuration; default-constructed = all rules on. */
struct Options {
    /**
     * Padding symbol injected by an input-padding scheme, or -1.
     * When >= 0 enables kAcceptOnPadding: a reporting STE whose
     * symbol set contains the padding symbol can fire on padding
     * rather than payload.
     */
    int paddingSymbol = -1;

    /**
     * Expect the exact layout widen() emits (state i -> 2i, its
     * zero-shadow -> 2i+1). Enables kWidenLayout, which catches
     * padding symbols leaking into accept paths: a reporting real
     * state, a shadow matching more than the zero pad, or shadow
     * chained directly into shadow.
     */
    bool widenedLayout = false;

    /** Out-degree above which kLargeFanout fires. */
    uint32_t fanoutThreshold = 256;

    /** Per-rule kill switch (indexed by Rule). */
    bool disabled[kRuleCount] = {};

    void
    disable(Rule r)
    {
        disabled[static_cast<size_t>(r)] = true;
    }

    bool
    enabled(Rule r) const
    {
        return !disabled[static_cast<size_t>(r)];
    }
};

/** Result of a verify()/lint()/analyze() run. */
struct Report {
    std::string automatonName;
    std::vector<Diagnostic> diags;

    size_t errors = 0;
    size_t warnings = 0;
    size_t notes = 0;

    /** No error-severity findings (warnings/notes allowed). */
    bool clean() const { return errors == 0; }

    /** No findings at all. */
    bool spotless() const { return diags.empty(); }

    /** Number of findings for one rule. */
    size_t count(Rule r) const;

    /** True if rule @p r fired at least once. */
    bool has(Rule r) const { return count(r) > 0; }

    /** Append a finding and bump the severity tallies. */
    void add(Severity sev, Rule rule, ElementId element, ElementId other,
             std::string message);

    /** Merge another report's findings into this one. */
    void absorb(Report &&other);

    /** "3 errors, 1 warning" style summary. */
    std::string summary() const;
};

/** Check hard invariants; returns all findings, never aborts. */
Report verify(const Automaton &a, const Options &opts = {});

/** Soft rules only (capacity waste, mergeable redundancy). */
Report lint(const Automaton &a, const Options &opts = {});

/** verify() + lint() in one report. */
Report analyze(const Automaton &a, const Options &opts = {});

/**
 * Producer post-condition: verify @p a and, if there are
 * error-severity findings, panic() in debug builds or warn() once in
 * release builds. @p stage names the producer ("prune", "widen",
 * "zoo:Snort") for the message. Returns true when error-free.
 */
bool postVerify(const Automaton &a, const std::string &stage,
                const Options &opts = {});

} // namespace analysis
} // namespace azoo

#endif // AZOO_ANALYSIS_ANALYSIS_HH
