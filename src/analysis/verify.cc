#include "analysis/analysis.hh"

#include <algorithm>
#include <chrono>
#include <unordered_map>

#include "obs/obs.hh"
#include "util/logging.hh"

namespace azoo {
namespace analysis {

namespace {

struct RuleMeta {
    const char *id;
    const char *name;
    Severity severity;
    const char *desc;
};

const RuleMeta kMeta[kRuleCount] = {
    {"V001", "dangling-edge", Severity::kError,
     "activation edge targets an out-of-range element id"},
    {"V002", "dangling-reset", Severity::kError,
     "reset edge targets an out-of-range element id"},
    {"V003", "reset-non-counter", Severity::kError,
     "reset edge targets an element that is not a counter"},
    {"V004", "duplicate-edge", Severity::kError,
     "the same (from, to) activation edge appears more than once"},
    {"V005", "duplicate-reset", Severity::kError,
     "the same (from, to) reset edge appears more than once"},
    {"V006", "empty-charset", Severity::kError,
     "STE symbol set matches nothing; it and its cone are inert"},
    {"V007", "counter-symbols", Severity::kError,
     "counter carries a symbol set"},
    {"V008", "counter-start", Severity::kError,
     "counter has a start type"},
    {"V009", "counter-zero-target", Severity::kError,
     "counter target is zero"},
    {"V010", "counter-unwired", Severity::kError,
     "counter has no count-enable predecessor and can never count"},
    {"V011", "counter-reset-overlap", Severity::kWarning,
     "one element both counts and resets the same counter"},
    {"V012", "unreachable", Severity::kError,
     "element is not forward-reachable from any start state"},
    {"V013", "dead-element", Severity::kWarning,
     "element has no path to any reporting element"},
    {"V014", "no-start", Severity::kError,
     "non-empty automaton has no start states; nothing ever enables"},
    {"V015", "no-report", Severity::kWarning,
     "non-empty automaton has no reporting elements"},
    {"V016", "report-collision", Severity::kWarning,
     "one report code is used by several disconnected subgraphs"},
    {"V017", "sod-reentry", Severity::kNote,
     "edge into a start-of-data state (legal; alignment rings do "
     "this, merge bugs also do)"},
    {"V018", "accept-on-padding", Severity::kError,
     "reporting STE matches the padding symbol; reports can fire on "
     "padding instead of payload"},
    {"V019", "widen-layout", Severity::kError,
     "widened-layout discipline violated; padding leaked into an "
     "accept path"},
    {"L101", "parallel-twins", Severity::kWarning,
     "two successors of one element are interchangeable twins"},
    {"L102", "mergeable-twins", Severity::kNote,
     "identical elements share a predecessor set; prefix merge would "
     "collapse them"},
    {"L103", "large-fanout", Severity::kWarning,
     "out-degree exceeds the configured fan-out threshold"},
    {"L104", "edge-into-all-input", Severity::kNote,
     "activation edge into an always-enabled state has no effect"},
    {"A201", "prefilter-hostile", Severity::kWarning,
     "component accepts unbounded matches and has no mandatory "
     "literal factor; a literal prefilter cannot cover it"},
    {"A202", "literal-chain", Severity::kNote,
     "component is a pure literal chain; a literal engine or "
     "Aho-Corasick prefilter can cover it"},
    {"A203", "weak-literal-factor", Severity::kNote,
     "bounded component's mandatory literal factor is shorter than "
     "the prefilter minimum"},
    {"A204", "dfa-blowup-risk", Severity::kWarning,
     "subset-construction blowup estimate exceeds the lazy-DFA "
     "comfort threshold"},
    {"A205", "counter-unsatisfiable", Severity::kWarning,
     "counter target exceeds the component's maximum activation "
     "depth; it can never fire"},
};

const RuleMeta &
meta(Rule r)
{
    return kMeta[static_cast<size_t>(r)];
}

} // namespace

const char *
ruleId(Rule r)
{
    return meta(r).id;
}

const char *
ruleName(Rule r)
{
    return meta(r).name;
}

const char *
ruleDescription(Rule r)
{
    return meta(r).desc;
}

Severity
defaultSeverity(Rule r)
{
    return meta(r).severity;
}

const char *
severityName(Severity s)
{
    switch (s) {
      case Severity::kError:
        return "error";
      case Severity::kWarning:
        return "warning";
      case Severity::kNote:
        return "note";
    }
    return "?";
}

size_t
Report::count(Rule r) const
{
    size_t n = 0;
    for (const auto &d : diags)
        n += d.rule == r;
    return n;
}

void
Report::add(Severity sev, Rule rule, ElementId element, ElementId other,
            std::string message)
{
    switch (sev) {
      case Severity::kError:
        ++errors;
        break;
      case Severity::kWarning:
        ++warnings;
        break;
      case Severity::kNote:
        ++notes;
        break;
    }
    diags.push_back({sev, rule, element, other, std::move(message)});
}

void
Report::absorb(Report &&other)
{
    errors += other.errors;
    warnings += other.warnings;
    notes += other.notes;
    diags.insert(diags.end(),
                 std::make_move_iterator(other.diags.begin()),
                 std::make_move_iterator(other.diags.end()));
    other.diags.clear();
}

std::string
Report::summary() const
{
    auto plural = [](size_t n, const char *what) {
        return cat(n, " ", what, n == 1 ? "" : "s");
    };
    return cat(plural(errors, "error"), ", ",
               plural(warnings, "warning"), ", ",
               plural(notes, "note"));
}

namespace {

/** Diagnostic sink that respects the per-rule kill switch. */
class Sink
{
  public:
    Sink(Report &rep, const Options &opts) : rep_(rep), opts_(opts) {}

    void
    add(Rule r, ElementId element, ElementId other, std::string msg)
    {
        if (opts_.enabled(r))
            rep_.add(defaultSeverity(r), r, element, other,
                     std::move(msg));
    }

  private:
    Report &rep_;
    const Options &opts_;
};

/** Sorted copy of an edge list for duplicate detection. */
std::vector<ElementId>
sorted(const std::vector<ElementId> &v)
{
    std::vector<ElementId> s = v;
    std::sort(s.begin(), s.end());
    return s;
}

/** Report each duplicated target in @p edges exactly once. */
template <typename Fn>
void
forEachDuplicate(const std::vector<ElementId> &edges, Fn &&fn)
{
    std::vector<ElementId> s = sorted(edges);
    for (size_t i = 1; i < s.size(); ++i) {
        if (s[i] == s[i - 1] && (i < 2 || s[i] != s[i - 2]))
            fn(s[i]);
    }
}

/**
 * Per-element checks that need no graph traversal. Returns false when
 * a dangling edge was found, in which case the graph-level checks
 * must be skipped (edge targets are not safe to index).
 */
bool
checkLocal(const Automaton &a, const Options &opts, Sink &sink)
{
    const size_t n = a.size();
    bool indices_ok = true;
    bool any_start = false;
    bool any_report = false;

    for (ElementId i = 0; i < n; ++i) {
        const Element &e = a.element(i);
        any_start |= e.start != StartType::kNone;
        any_report |= e.reporting;

        for (auto t : e.out) {
            if (t >= n) {
                indices_ok = false;
                sink.add(Rule::kDanglingEdge, i, kNoElement,
                         cat("element ", i, " has an out-edge to "
                             "invalid id ", t, " (size ", n, ")"));
            }
        }
        for (auto t : e.resetOut) {
            if (t >= n) {
                indices_ok = false;
                sink.add(Rule::kDanglingReset, i, kNoElement,
                         cat("element ", i, " has a reset edge to "
                             "invalid id ", t, " (size ", n, ")"));
            } else if (a.element(t).kind != ElementKind::kCounter) {
                sink.add(Rule::kResetNonCounter, i, t,
                         cat("reset edge ", i, " -> ", t,
                             " targets a non-counter"));
            }
        }
        forEachDuplicate(e.out, [&](ElementId t) {
            sink.add(Rule::kDuplicateEdge, i, t,
                     cat("activation edge ", i, " -> ", t,
                         " appears more than once"));
        });
        forEachDuplicate(e.resetOut, [&](ElementId t) {
            sink.add(Rule::kDuplicateReset, i, t,
                     cat("reset edge ", i, " -> ", t,
                         " appears more than once"));
        });

        if (e.kind == ElementKind::kSte) {
            if (e.symbols.empty()) {
                sink.add(Rule::kEmptyCharset, i, kNoElement,
                         cat("STE ", i, " has an empty symbol set"));
            }
            if (opts.paddingSymbol >= 0 && e.reporting &&
                e.symbols.test(
                    static_cast<uint8_t>(opts.paddingSymbol))) {
                sink.add(Rule::kAcceptOnPadding, i, kNoElement,
                         cat("reporting STE ", i, " matches the "
                             "padding symbol ", opts.paddingSymbol));
            }
        } else {
            if (!e.symbols.empty()) {
                sink.add(Rule::kCounterSymbols, i, kNoElement,
                         cat("counter ", i, " carries symbols ",
                             e.symbols.str()));
            }
            if (e.start != StartType::kNone) {
                sink.add(Rule::kCounterStart, i, kNoElement,
                         cat("counter ", i, " has a start type"));
            }
            if (e.target == 0) {
                sink.add(Rule::kCounterZeroTarget, i, kNoElement,
                         cat("counter ", i, " has target 0"));
            }
        }
    }

    if (n > 0 && !any_start) {
        sink.add(Rule::kNoStart, kNoElement, kNoElement,
                 "automaton has no start states");
    }
    if (n > 0 && !any_report) {
        sink.add(Rule::kNoReport, kNoElement, kNoElement,
                 "automaton has no reporting elements");
    }
    return indices_ok;
}

/**
 * Reachability and wiring checks. Requires all edge targets in
 * range. Reachability uses pruneDeadStates()'s definitions exactly
 * (reset edges count as forward edges, reset sources of live
 * counters are live), so a pruned automaton is always clean here.
 */
void
checkGraph(const Automaton &a, const Options &opts, Sink &sink)
{
    const size_t n = a.size();

    // Counter wiring: count-enable in-degree and count/reset overlap.
    std::vector<uint32_t> in = a.inDegrees();
    for (ElementId i = 0; i < n; ++i) {
        const Element &e = a.element(i);
        if (e.kind == ElementKind::kCounter && in[i] == 0) {
            sink.add(Rule::kCounterUnwired, i, kNoElement,
                     cat("counter ", i,
                         " has no count-enable predecessor"));
        }
        if (!e.resetOut.empty() && !e.out.empty()) {
            std::vector<ElementId> so = sorted(e.out);
            std::vector<ElementId> sr = sorted(e.resetOut);
            std::vector<ElementId> both;
            std::set_intersection(so.begin(), so.end(), sr.begin(),
                                  sr.end(), std::back_inserter(both));
            both.erase(std::unique(both.begin(), both.end()),
                       both.end());
            for (auto t : both) {
                if (a.element(t).kind != ElementKind::kCounter)
                    continue;
                sink.add(Rule::kCounterResetOverlap, i, t,
                         cat("element ", i, " both counts and resets "
                             "counter ", t,
                             "; same-cycle behavior is ambiguous"));
            }
        }
    }

    // Start-of-data re-entry (note severity: alignment rings do
    // this on purpose, bad merges do it by accident).
    std::vector<uint8_t> reentered(n, 0);
    for (ElementId i = 0; i < n; ++i) {
        for (auto t : a.element(i).out) {
            if (a.element(t).start == StartType::kStartOfData &&
                !reentered[t]) {
                reentered[t] = 1;
                sink.add(Rule::kSodReentry, t, i,
                         cat("start-of-data state ", t,
                             " is re-entered by element ", i));
            }
        }
    }

    // Forward reachability from start states, over activation and
    // reset edges (prune's definition).
    std::vector<uint8_t> fwd(n, 0);
    std::vector<ElementId> work;
    for (ElementId i = 0; i < n; ++i) {
        if (a.element(i).start != StartType::kNone) {
            fwd[i] = 1;
            work.push_back(i);
        }
    }
    while (!work.empty()) {
        ElementId u = work.back();
        work.pop_back();
        auto push = [&](ElementId v) {
            if (!fwd[v]) {
                fwd[v] = 1;
                work.push_back(v);
            }
        };
        for (auto v : a.element(u).out)
            push(v);
        for (auto v : a.element(u).resetOut)
            push(v);
    }

    // Backward liveness from reporting elements.
    std::vector<std::vector<ElementId>> rin(n);
    for (ElementId i = 0; i < n; ++i) {
        for (auto v : a.element(i).out)
            rin[v].push_back(i);
        for (auto v : a.element(i).resetOut)
            rin[v].push_back(i);
    }
    bool any_report = false;
    std::vector<uint8_t> live(n, 0);
    for (ElementId i = 0; i < n; ++i) {
        if (a.element(i).reporting) {
            any_report = true;
            live[i] = 1;
            work.push_back(i);
        }
    }
    while (!work.empty()) {
        ElementId u = work.back();
        work.pop_back();
        for (auto v : rin[u]) {
            if (!live[v]) {
                live[v] = 1;
                work.push_back(v);
            }
        }
    }

    for (ElementId i = 0; i < n; ++i) {
        if (!fwd[i]) {
            sink.add(Rule::kUnreachable, i, kNoElement,
                     cat("element ", i,
                         " is unreachable from every start state"));
        } else if (any_report && !live[i]) {
            // Without reporters kNoReport already covers the whole
            // automaton; per-element dead diagnostics would just
            // repeat it n times.
            sink.add(Rule::kDeadElement, i, kNoElement,
                     cat("element ", i,
                         " has no path to a reporting element"));
        }
    }

    // Report-code collisions across disconnected subgraphs.
    if (any_report && opts.enabled(Rule::kReportCollision)) {
        uint32_t comp_count = 0;
        std::vector<uint32_t> comp = a.connectedComponents(comp_count);
        struct First {
            uint32_t comp;
            ElementId element;
            bool collided;
        };
        std::unordered_map<uint32_t, First> seen;
        for (ElementId i = 0; i < n; ++i) {
            const Element &e = a.element(i);
            if (!e.reporting)
                continue;
            auto [it, inserted] =
                seen.try_emplace(e.reportCode, First{comp[i], i, false});
            if (inserted || it->second.comp == comp[i] ||
                it->second.collided) {
                continue;
            }
            it->second.collided = true;
            sink.add(Rule::kReportCollision, i, it->second.element,
                     cat("report code ", e.reportCode,
                         " is used by disconnected subgraphs "
                         "(elements ", it->second.element, " and ", i,
                         ")"));
        }
    }
}

/** The exact discipline widen() must emit (see Options). */
void
checkWidenLayout(const Automaton &a, Sink &sink)
{
    const size_t n = a.size();
    if (n % 2 != 0) {
        sink.add(Rule::kWidenLayout, kNoElement, kNoElement,
                 cat("widened automaton has odd element count ", n));
        return;
    }
    const CharSet pad = CharSet::single(0);
    for (ElementId i = 0; i < n; ++i) {
        const Element &e = a.element(i);
        if (e.kind != ElementKind::kSte) {
            sink.add(Rule::kWidenLayout, i, kNoElement,
                     cat("widened automaton contains counter ", i));
            continue;
        }
        if (i % 2 == 0) {
            // Real state: must defer reporting to its shadow and
            // activate exactly that shadow.
            if (e.reporting) {
                sink.add(Rule::kWidenLayout, i, kNoElement,
                         cat("real state ", i, " reports directly; "
                             "reports must confirm on the pad "
                             "symbol"));
            }
            if (e.out.size() != 1 || e.out[0] != i + 1) {
                sink.add(Rule::kWidenLayout, i, kNoElement,
                         cat("real state ", i, " must activate "
                             "exactly its shadow ", i + 1));
            }
        } else {
            // Shadow: matches only the pad symbol, activates only
            // real states.
            if (e.symbols != pad) {
                sink.add(Rule::kWidenLayout, i, kNoElement,
                         cat("shadow state ", i, " matches ",
                             e.symbols.str(),
                             " instead of only the pad symbol"));
            }
            if (e.start != StartType::kNone) {
                sink.add(Rule::kWidenLayout, i, kNoElement,
                         cat("shadow state ", i, " has a start type"));
            }
            for (auto t : e.out) {
                if (t % 2 != 0) {
                    sink.add(Rule::kWidenLayout, i, t,
                             cat("shadow state ", i, " activates "
                                 "shadow ", t,
                                 "; pad chained into accept path"));
                }
            }
        }
    }
}

} // namespace

Report
verify(const Automaton &a, const Options &opts)
{
    const auto t0 = std::chrono::steady_clock::now();
    Report rep;
    rep.automatonName = a.name();
    Sink sink(rep, opts);

    const bool indices_ok = checkLocal(a, opts, sink);
    if (indices_ok) {
        checkGraph(a, opts, sink);
        if (opts.widenedLayout)
            checkWidenLayout(a, sink);
    }
    if constexpr (obs::kEnabled) {
        obs::Registry::global()
            .histogram("analysis.verify.ns")
            .record(static_cast<uint64_t>(
                std::chrono::duration_cast<std::chrono::nanoseconds>(
                    std::chrono::steady_clock::now() - t0)
                    .count()));
    }
    return rep;
}

Report
analyze(const Automaton &a, const Options &opts)
{
    Report rep = verify(a, opts);
    rep.absorb(lint(a, opts));
    return rep;
}

bool
postVerify(const Automaton &a, const std::string &stage,
           const Options &opts)
{
    Report rep = verify(a, opts);
    if (rep.clean())
        return true;

    std::string first;
    for (const auto &d : rep.diags) {
        if (d.severity == Severity::kError) {
            first = cat(" [", ruleId(d.rule), " ", ruleName(d.rule),
                        "] ", d.message);
            break;
        }
    }
    const std::string msg =
        cat("post-condition failed after ", stage, ": automaton '",
            a.name(), "' has ", rep.summary(), ";", first);
#ifndef NDEBUG
    panic(msg);
#else
    warn(msg);
    return false;
#endif
}

} // namespace analysis
} // namespace azoo
