/**
 * @file
 * LazyDfaEngine: an RE2-style lazy-DFA executor with a bounded
 * transition cache.
 *
 * MultiDfaEngine realises the paper's compiled-CPU speedup only for
 * components that fully determinize inside a state budget; everything
 * else — exactly the large-active-set benchmarks the paper uses to
 * motivate spatial architectures — used to drop to the enabled-set
 * interpreter. This engine closes that gap the way RE2 and modern
 * Hyperscan hybrids do: subset construction runs *on the fly* during
 * simulation, memoizing (state-set, symbol-class) -> next state-set
 * transitions in a cache with a configurable byte budget. Hot input
 * regions therefore cost one table probe per symbol regardless of how
 * many NFA states are enabled, while pathological inputs (too many
 * distinct state-sets) trigger whole-cache flushes and degrade
 * gracefully to interpretation speed instead of exploding memory.
 *
 * Counter components cannot be determinized (counter values are not
 * part of the subset state), so they are split off at construction
 * and interpreted by an embedded NfaEngine, mirroring how hybrid
 * engines mix DFA and NFA subsystems.
 *
 * Determinism: results are bit-identical to NfaEngine's on every
 * semantic field — reports carry the original element ids and appear
 * in canonical (offset, element, code) order (the order
 * canonicalizeReports() gives a serial NfaEngine result), and
 * reportCount, totalEnabled, reportingCycles, and byCode are exact,
 * not approximations.
 *
 * Unlike NfaEngine, simulate() mutates the engine (the transition
 * cache warms up and persists across calls), so an engine must not be
 * shared by concurrently simulating threads; ParallelRunner builds
 * one per worker slot instead.
 */

#ifndef AZOO_ENGINE_LAZY_DFA_ENGINE_HH
#define AZOO_ENGINE_LAZY_DFA_ENGINE_HH

#include <array>
#include <cstdint>
#include <map>
#include <memory>
#include <unordered_map>
#include <vector>

#include "core/automaton.hh"
#include "engine/engine_scratch.hh"
#include "engine/nfa_engine.hh"
#include "engine/report.hh"

namespace azoo {

/** Tuning knobs for LazyDfaEngine. */
struct LazyDfaOptions {
    /**
     * Transition-cache byte budget. Interned state-sets, their
     * transition rows, and the report pool are charged against it;
     * when an insertion would exceed the budget the whole cache is
     * flushed (RE2's policy: one counter bump and O(1) amortized
     * bookkeeping, no LRU lists on the hot path) and rebuilding
     * restarts from the in-flight state-set. The budget is a target,
     * not a hard cap: the cache always retains at least the current
     * and next state-set so simulation can make progress.
     */
    size_t cacheBytes = 8u << 20;
};

/** Lazy-DFA hybrid engine over a borrowed automaton. */
class LazyDfaEngine
{
  public:
    explicit LazyDfaEngine(const Automaton &a,
                           const LazyDfaOptions &opts = LazyDfaOptions());

    /**
     * Run over @p input. Mutates the transition cache (and therefore
     * the engine): callers share an engine across sequential calls to
     * keep the cache warm, but never across concurrent threads.
     */
    SimResult simulate(const uint8_t *input, size_t len,
                       const SimOptions &opts = SimOptions());

    SimResult
    simulate(const std::vector<uint8_t> &input,
             const SimOptions &opts = SimOptions())
    {
        return simulate(input.data(), input.size(), opts);
    }

    /** Elements on the lazy-DFA path (counter-free components). */
    size_t lazyElements() const { return globalId_.size(); }

    /** Components interpreted by the NFA fallback (counters). */
    size_t fallbackComponents() const { return fallbackComponentCount_; }

    /** Whole-cache flushes since construction (cumulative). */
    uint64_t cacheFlushes() const { return flushes_; }

    /** State-sets currently interned in the cache. */
    uint64_t cachedStates() const { return members_.size(); }

    /** Computed (state, class) transition cells currently cached. */
    uint64_t cachedTransitions() const { return cachedTransitions_; }

    /** Current accounted cache footprint in bytes. */
    uint64_t cacheBytesUsed() const { return bytesUsed_; }

    /** Input-symbol equivalence classes over the lazy partition. */
    uint32_t symbolClasses() const { return numClasses_; }

  private:
    static constexpr uint32_t kUnknown = ~uint32_t(0);

    void buildLazyPart(const std::vector<ElementId> &members);
    void buildFallback(const Automaton &a,
                       const std::vector<ElementId> &members);

    /** Intern a sorted local-id set; returns its state id. */
    uint32_t intern(const std::vector<uint32_t> &set);

    /** Intern a sorted (element, code) report list; 0 = empty. */
    uint32_t internReports(
        const std::vector<std::pair<ElementId, uint32_t>> &reps);

    /** Drop every interned state/transition/report list. */
    void flushCache();

    /** Compute + cache the transition for (cur, cls); may flush the
     *  cache, in which case @p cur is re-interned in place. Returns
     *  the cell index of the now-filled transition. */
    size_t fillCell(uint32_t &cur, uint32_t cls);

    /** Pure-lazy simulation (no counter fallback), streaming stats. */
    void simulateLazy(const uint8_t *input, size_t len,
                      const SimOptions &opts, SimResult &res);

    // ---- compiled lazy partition (immutable after construction) ----
    /** Borrowed: the caller guarantees the automaton outlives the
     *  engine (in the serve path, via a RulesetGeneration pin). */
    const Automaton &a_;
    LazyDfaOptions opts_;

    /** local id -> original element id (ascending). */
    std::vector<ElementId> globalId_;
    /** CSR over activation edges, all-input targets pre-filtered
     *  (they are permanently enabled and never join a state-set). */
    std::vector<uint32_t> edgeBegin_;
    std::vector<uint32_t> edgeTarget_;
    std::vector<std::array<uint64_t, 4>> label_;
    std::vector<uint8_t> reporting_;
    std::vector<uint32_t> reportCode_;
    /** Per input byte, the all-input local ids whose label matches. */
    std::array<std::vector<uint32_t>, 256> matchingAllInput_;
    /** Start-of-data local ids, sorted: the cycle-0 state-set. */
    std::vector<uint32_t> start0_;

    /** Byte -> symbol equivalence class (bytes indistinguishable to
     *  every lazy charset share a class, and so a transition row). */
    std::array<uint8_t, 256> classOf_{};
    uint32_t numClasses_ = 1;
    /** One representative byte per class. */
    std::vector<uint8_t> classRep_;

    // ---- bounded transition cache (mutated by simulate()) ----
    /** members_[sid] = sorted local-id set of DFA state sid. */
    std::vector<std::vector<uint32_t>> members_;
    /** next_[sid * numClasses_ + cls]; kUnknown = not yet computed. */
    std::vector<uint32_t> next_;
    /** reportIdx_ parallel to next_; index into pool_ (0 = none). */
    std::vector<uint32_t> reportIdx_;
    /** Report lists, entries sorted by (element, code); pool_[0] is
     *  the empty list. */
    std::vector<std::vector<std::pair<ElementId, uint32_t>>> pool_;
    std::map<std::vector<std::pair<ElementId, uint32_t>>, uint32_t>
        poolIds_;
    /** FNV hash of members -> state ids with that hash. */
    std::unordered_map<uint64_t, std::vector<uint32_t>> buckets_;
    uint64_t bytesUsed_ = 0;
    uint64_t flushes_ = 0;
    uint64_t cachedTransitions_ = 0;
    /** Cached start-state id (re-interned after each flush). */
    uint32_t startState_ = kUnknown;

    // Scratch for transition computation (per-engine, reused).
    std::vector<uint8_t> inNext_;
    std::vector<uint32_t> succScratch_;
    std::vector<std::pair<ElementId, uint32_t>> repScratch_;

    // ---- counter fallback ----
    std::unique_ptr<Automaton> fallback_;
    std::unique_ptr<NfaEngine> fallbackEngine_;
    std::vector<ElementId> fallbackToGlobal_;
    size_t fallbackComponentCount_ = 0;
    EngineScratch fallbackScratch_;
};

} // namespace azoo

#endif // AZOO_ENGINE_LAZY_DFA_ENGINE_HH
