#include "zoo/yara.hh"

#include "input/malware.hh"
#include "regex/glushkov.hh"
#include "regex/parser.hh"
#include "transform/widen.hh"
#include "util/logging.hh"
#include "util/rng.hh"
#include "util/strings.hh"

namespace azoo {
namespace zoo {

namespace {

/** Class of bytes with the given low nibble. */
std::string
lowNibbleClass(int nib)
{
    std::string out = "[";
    for (int hi = 0; hi < 16; ++hi)
        out += "\\x" + hexByte(static_cast<uint8_t>((hi << 4) | nib));
    out += "]";
    return out;
}

/** Class of bytes with the given high nibble. */
std::string
highNibbleClass(int nib)
{
    return cat("[\\x", hexByte(static_cast<uint8_t>(nib << 4)), "-\\x",
               hexByte(static_cast<uint8_t>((nib << 4) | 0xf)), "]");
}

} // namespace

std::string
yaraHexToRegex(const std::string &hex)
{
    // Detach structural characters, then translate token-wise.
    std::string spaced;
    for (char c : hex) {
        if (c == '(' || c == ')' || c == '|') {
            spaced += ' ';
            spaced += c;
            spaced += ' ';
        } else {
            spaced += c;
        }
    }

    std::string out;
    for (const std::string &raw : split(spaced, ' ')) {
        const std::string tok = trim(raw);
        if (tok.empty())
            continue;
        if (tok == "(") {
            out += "(";
        } else if (tok == ")") {
            out += ")";
        } else if (tok == "|") {
            out += "|";
        } else if (tok == "??") {
            out += ".";
        } else if (tok.size() >= 3 && tok.front() == '[' &&
                   tok.back() == ']') {
            const std::string body = tok.substr(1, tok.size() - 2);
            const size_t dash = body.find('-');
            if (dash == std::string::npos) {
                out += cat(".{", body, "}");
            } else {
                out += cat(".{", body.substr(0, dash), ",",
                           body.substr(dash + 1), "}");
            }
        } else if (tok.size() == 2) {
            const int hi = hexValue(tok[0]);
            const int lo = hexValue(tok[1]);
            if (tok[0] == '?' && lo >= 0) {
                out += lowNibbleClass(lo);
            } else if (tok[1] == '?' && hi >= 0) {
                out += highNibbleClass(hi);
            } else if (hi >= 0 && lo >= 0) {
                out += "\\x" + toLower(tok);
            } else {
                fatal(cat("yara: bad token '", tok, "' in ", hex));
            }
        } else {
            fatal(cat("yara: bad token '", tok, "' in ", hex));
        }
    }
    return out;
}

std::vector<YaraRule>
makeYaraRules(const ZooConfig &cfg, bool wide)
{
    const size_t n = cfg.scaled(wide ? 2620 : 23530);
    Rng rng(cfg.seed ^ (wide ? 0x3a6a11ULL : 0x3a6aULL));

    std::vector<YaraRule> rules;
    rules.reserve(n);
    // Real YARA databases contain malware *families*: variants of
    // one signature sharing a long prefix. Generate in families of
    // ~4 so prefix merging has real work to do (the paper's Table I
    // compresses YARA by more than half).
    std::string family_prefix_hex;
    std::string family_prefix_bytes;
    for (size_t i = 0; i < n; ++i) {
        if (i % 4 == 0) {
            family_prefix_hex.clear();
            family_prefix_bytes.clear();
            const int plen = 8 + static_cast<int>(rng.nextBelow(9));
            for (int p = 0; p < plen; ++p) {
                const uint8_t v = rng.nextByte();
                if (p)
                    family_prefix_hex += " ";
                family_prefix_hex += hexByte(v);
                family_prefix_bytes.push_back(
                    static_cast<char>(v));
            }
        }
        YaraRule r;
        r.hex = family_prefix_hex + " ";
        r.instance = family_prefix_bytes;
        const int tokens = 12 + static_cast<int>(rng.nextBelow(28));
        bool used_alt = false;
        for (int t = 0; t < tokens; ++t) {
            if (t)
                r.hex += " ";
            const double k = rng.nextDouble();
            if (k < 0.78) {
                const uint8_t v = rng.nextByte();
                r.hex += hexByte(v);
                r.instance.push_back(static_cast<char>(v));
            } else if (k < 0.84) {
                const int nib = static_cast<int>(rng.nextBelow(16));
                const bool low = rng.nextBool();
                r.hex += low
                    ? cat("?", std::string(1, "0123456789abcdef"[nib]))
                    : cat(std::string(1, "0123456789abcdef"[nib]), "?");
                const uint8_t rest = rng.nextByte();
                r.instance.push_back(static_cast<char>(
                    low ? ((rest & 0xf0) | nib)
                        : ((nib << 4) | (rest & 0x0f))));
            } else if (k < 0.89) {
                r.hex += "??";
                r.instance.push_back(static_cast<char>(rng.nextByte()));
            } else if (k < 0.93 && t > 2 && t + 3 < tokens) {
                const int jlo = 1 + static_cast<int>(rng.nextBelow(3));
                const int jhi = jlo +
                    static_cast<int>(rng.nextBelow(5));
                r.hex += cat("[", jlo, "-", jhi, "]");
                for (int j = 0; j < jlo; ++j) {
                    r.instance.push_back(
                        static_cast<char>(rng.nextByte()));
                }
            } else if (!used_alt && t + 4 < tokens) {
                used_alt = true;
                const uint8_t v1 = rng.nextByte();
                const uint8_t v2 = rng.nextByte();
                const uint8_t v3 = rng.nextByte();
                r.hex += cat("( ", hexByte(v1), " ", hexByte(v2),
                             " | ", hexByte(v3), " )");
                r.instance.push_back(static_cast<char>(v1));
                r.instance.push_back(static_cast<char>(v2));
            } else {
                const uint8_t v = rng.nextByte();
                r.hex += hexByte(v);
                r.instance.push_back(static_cast<char>(v));
            }
        }
        rules.push_back(std::move(r));
    }
    return rules;
}

Benchmark
makeYaraBenchmark(const ZooConfig &cfg, bool wide)
{
    Benchmark b;
    b.name = wide ? "YARA Wide" : "YARA";
    b.domain = "Malware pattern search";
    b.inputDesc = "Malware files";
    b.paperStates = wide ? 115246 : 1047528;
    b.paperActiveSet = wide ? 123.964 : 579.739;

    auto rules = makeYaraRules(cfg, wide);
    Automaton a(b.name);
    size_t rejected = 0;
    for (size_t i = 0; i < rules.size(); ++i) {
        Regex rx;
        std::string err;
        // Nibble patterns are binary: '.' must match every byte.
        RegexFlags flags;
        flags.dotall = true;
        if (!tryParseRegex(yaraHexToRegex(rules[i].hex), flags, rx,
                           err)) {
            ++rejected;
            continue;
        }
        appendRegex(a, rx, static_cast<uint32_t>(i));
    }
    if (wide)
        a = widen(a);

    input::MalwareConfig mc;
    mc.bytes = cfg.inputBytes;
    mc.seed = cfg.seed ^ 0x3a6a99ULL;
    // Plant instances; for the wide benchmark, rules scan UTF-16-ish
    // content, so planted payloads are zero-interleaved.
    Rng rng(cfg.seed ^ 0x88ULL);
    for (int k = 0; k < 6; ++k) {
        std::string inst =
            rules[rng.nextBelow(rules.size())].instance;
        if (wide) {
            std::vector<uint8_t> raw(inst.begin(), inst.end());
            auto w = widenInput(raw);
            inst.assign(w.begin(), w.end());
        }
        mc.planted.push_back(inst);
    }
    b.input = input::malwareStream(mc);

    b.automaton = std::move(a);
    b.meta["rules"] = std::to_string(rules.size());
    b.meta["rejected"] = std::to_string(rejected);
    return b;
}

} // namespace zoo
} // namespace azoo
