#include "zoo/filecarve.hh"

#include "bits/bit_builder.hh"
#include "input/diskimage.hh"
#include "regex/glushkov.hh"
#include "regex/parser.hh"
#include "transform/stride.hh"
#include "util/logging.hh"

namespace azoo {
namespace zoo {

namespace {

using bits::addAlignmentRing;
using bits::BitChainBuilder;

enum PatternId : uint32_t {
    kZipLocal = 0,
    kZipCentral,
    kZipEnd,
    kMpeg2Pack,
    kMpeg2Seq,
    kMp4Ftyp,
    kJpeg,
    kEmail,
    kSsn,
};

/**
 * PKZip local file header with MS-DOS timestamp validation.
 *
 * Time word (little-endian on disk, so stream byte 0 carries the low
 * half): h(5) m(6) s2(5). Byte 0 = m[2:0] s2[4:0]; byte 1 = h[4:0]
 * m[5:3]. The minutes <= 59 constraint couples the two bytes:
 * m[2:0] >= 4 forbids m[5:3] == 7. Same treatment for the date word
 * (month 1..12 crosses the boundary; day 1..31).
 */
void
appendZipLocalBits(Automaton &a, uint32_t code)
{
    ElementId ring = addAlignmentRing(a);
    BitChainBuilder b(a, ring);
    b.appendByte('P');
    b.appendByte('K');
    b.appendByte(0x03);
    b.appendByte(0x04);
    b.appendAnyBits(16); // version needed
    b.appendAnyBits(16); // flags
    // Compression method (LE word): 0 or 8 -> low byte 0000?000,
    // high byte 0.
    b.appendMaskedByte(0x00, 0xF7);
    b.appendByte(0x00);

    // Time byte 0: m[2:0] branches, then s2 in [0,29].
    BitChainBuilder lo(b);      // m[2:0] in [0,3]
    lo.appendRangeField(3, 0, 3);
    lo.appendRangeField(5, 0, 29);
    lo.appendRangeField(5, 0, 23); // byte 1: hours
    lo.appendRangeField(3, 0, 7);  // m[5:3] unconstrained

    BitChainBuilder hi(b);      // m[2:0] in [4,7]
    hi.appendRangeField(3, 4, 7);
    hi.appendRangeField(5, 0, 29);
    hi.appendRangeField(5, 0, 23);
    hi.appendRangeField(3, 0, 6);  // m[5:3] != 7

    lo.mergeBranch(hi);

    // Date byte 0: month[2:0] + day[4:0] in [1,31]; byte 1:
    // year[6:0] any + month[3]. Month in [1,12] couples the halves.
    BitChainBuilder m0(lo);     // month[3] == 0 -> month[2:0] in [1,7]
    m0.appendRangeField(3, 1, 7);
    m0.appendRangeField(5, 1, 31);
    m0.appendAnyBits(7);
    m0.appendBit(0);

    BitChainBuilder m1(lo);     // month[3] == 1 -> month[2:0] in [0,4]
    m1.appendRangeField(3, 0, 4);
    m1.appendRangeField(5, 1, 31);
    m1.appendAnyBits(7);
    m1.appendBit(1);

    m0.mergeBranch(m1);
    m0.finishReport(code);
}

/** MPEG-2 pack start code and pack header prefix: 00 00 01 BA then
 *  '01' marker pattern with a mid-byte marker bit. */
void
appendMpeg2PackBits(Automaton &a, uint32_t code)
{
    ElementId ring = addAlignmentRing(a);
    BitChainBuilder b(a, ring);
    b.appendByte(0x00);
    b.appendByte(0x00);
    b.appendByte(0x01);
    b.appendByte(0xBA);
    b.appendBit(0); // '01' MPEG-2 indicator
    b.appendBit(1);
    b.appendAnyBits(3); // SCR[32:30]
    b.appendBit(1);     // marker bit
    b.appendAnyBits(2);
    b.finishReport(code);
}

/** MPEG-2 sequence header with 12-bit cross-byte dimensions. */
void
appendMpeg2SeqBits(Automaton &a, uint32_t code)
{
    ElementId ring = addAlignmentRing(a);
    BitChainBuilder b(a, ring);
    b.appendByte(0x00);
    b.appendByte(0x00);
    b.appendByte(0x01);
    b.appendByte(0xB3);
    b.appendRangeField(12, 16, 4000); // horizontal size
    b.appendRangeField(12, 16, 4000); // vertical size
    b.finishReport(code);
}

/** JPEG SOI + APPn marker: FF D8 FF Ex. */
void
appendJpegBits(Automaton &a, uint32_t code)
{
    ElementId ring = addAlignmentRing(a);
    BitChainBuilder b(a, ring);
    b.appendByte(0xFF);
    b.appendByte(0xD8);
    b.appendByte(0xFF);
    b.appendRangeField(4, 0xE, 0xE); // APPn high nibble
    b.appendAnyBits(4);
    b.finishReport(code);
}

void
appendByteRegex(Automaton &a, const std::string &pattern, uint32_t code)
{
    Regex rx = parseRegexOrDie(pattern);
    appendRegex(a, rx, code);
}

} // namespace

Automaton
buildZipHeaderBitAutomaton()
{
    Automaton a("zip.local.bits");
    appendZipLocalBits(a, kZipLocal);
    return a;
}

const std::vector<std::string> &
fileCarvePatternNames()
{
    static const std::vector<std::string> kNames = {
        "zip-local-header", "zip-central-header", "zip-end-of-dir",
        "mpeg2-pack",       "mpeg2-sequence",     "mp4-ftyp",
        "jpeg-soi-app",     "email",              "ssn",
    };
    return kNames;
}

Benchmark
makeFileCarveBenchmark(const ZooConfig &cfg)
{
    Benchmark b;
    b.name = "File Carving";
    b.domain = "File metadata search";
    b.inputDesc = "Multi-media files";
    b.paperStates = 2663;
    b.paperActiveSet = 15.6547;

    Automaton a("FileCarving");

    // Bit-level patterns, each strided independently so every pattern
    // stays its own subgraph (9 subgraphs, as in Table I).
    auto add_bits = [&](void (*build)(Automaton &, uint32_t),
                        uint32_t code) {
        Automaton bits_a(cat("filecarve.bits.", code));
        build(bits_a, code);
        a.merge(strideToBytes(bits_a));
    };
    add_bits(appendZipLocalBits, kZipLocal);
    add_bits(appendMpeg2PackBits, kMpeg2Pack);
    add_bits(appendMpeg2SeqBits, kMpeg2Seq);
    add_bits(appendJpegBits, kJpeg);

    // Byte-level patterns via the regex frontend.
    appendByteRegex(a, "PK\\x01\\x02[\\x00-\\x3f]", kZipCentral);
    appendByteRegex(a, "PK\\x05\\x06\\x00\\x00\\x00\\x00", kZipEnd);
    appendByteRegex(
        a, "\\x00\\x00\\x00[\\x10-\\x40]ftyp(isom|mp42|avc1|M4V )",
        kMp4Ftyp);
    appendByteRegex(
        a, "[a-z][a-z0-9._]{3,15}@[a-z0-9][a-z0-9.-]{3,18}"
           "\\.(com|net|org|edu)",
        kEmail);
    appendByteRegex(a, "[0-9]{3}-[0-9]{2}-[0-9]{4}", kSsn);

    input::DiskImageConfig dc;
    dc.bytes = cfg.inputBytes;
    dc.seed = cfg.seed ^ 0xf11eULL;
    b.input = input::diskImage(dc);
    b.automaton = std::move(a);
    return b;
}

} // namespace zoo
} // namespace azoo
