/**
 * @file
 * azoo_compile: compile an automaton file into a `.azoox` artifact.
 *
 * Usage:
 *   azoo_compile --in x.mnrl --out x.azoox
 *                [--no-exec] [--profile] [--verify] [--quiet]
 *                [--max-states N] [--max-edges N]
 *
 * Reads any supported automaton format (.mnrl / .anml / azml by
 * extension), serializes it to the artifact format specified in
 * docs/ARTIFACT_FORMAT.md, and prints the section table plus the
 * edge-encoding census. The artifact then loads in azoo_run via
 * --load in milliseconds, without re-parsing.
 *
 * --no-exec omits the zero-copy execution image (smaller file; the
 * loader falls back to materializing the graph sections).
 *
 * --profile embeds the PROF section: one inferred ComponentProfile
 * per connected component (class, literal factor, match-length and
 * counter facts), so planners reading the artifact skip inference.
 *
 * --verify re-loads the written file, materializes it, checks the
 * round trip is element- and edge-identical to what was compiled,
 * and runs the analysis-layer hard-invariant verifier over the
 * materialized graph. A verify failure is a *library* bug, so it
 * exits 70 (EX_SOFTWARE), unlike input problems which exit 65.
 *
 * Exit codes (documented in docs/FORMATS.md): 0 ok, 64 usage,
 * 65 bad input data, 70 internal/verify failure.
 */

#include <iostream>

#include "analysis/analysis.hh"
#include "analysis/profile.hh"
#include "artifact/artifact.hh"
#include "tool_common.hh"
#include "util/cli.hh"
#include "util/logging.hh"

using namespace azoo;

int
main(int argc, char **argv)
{
    Cli cli(argc, argv,
            {"in", "out", "no-exec", "profile", "verify", "quiet",
             "max-states", "max-edges"});
    const std::string in = cli.get("in");
    const std::string out = cli.get("out");
    if (in.empty() || out.empty())
        tool::usageError("azoo_compile: --in and --out are required");

    ParseLimits limits;
    if (cli.has("max-states"))
        limits.maxStates =
            static_cast<size_t>(cli.getInt("max-states", 0));
    if (cli.has("max-edges"))
        limits.maxEdges =
            static_cast<size_t>(cli.getInt("max-edges", 0));
    const Automaton a = tool::loadAnyOrExit(in, limits);

    artifact::WriteOptions wopts;
    wopts.execImage = !cli.getBool("no-exec");
    wopts.componentProfiles = cli.getBool("profile");
    Expected<artifact::ArtifactInfo> info =
        artifact::saveArtifact(out, a, wopts);
    if (!info.ok()) {
        std::cerr << out << ": " << info.status().str() << "\n";
        return tool::exitCodeFor(info.status());
    }

    if (!cli.getBool("quiet")) {
        std::cout << a.name() << ": " << info->elementCount
                  << " elements, " << info->edgeCount << " edges, "
                  << info->resetEdgeCount << " reset edges\n"
                  << "  id width " << int(info->idWidth)
                  << " byte(s), " << info->charsetCount
                  << " charsets interned\n"
                  << "  edge lists: " << info->listsEmpty
                  << " empty, " << info->listsChain << " chain, "
                  << info->listsSparse << " sparse, "
                  << info->listsDense << " dense\n";
        if (wopts.componentProfiles)
            std::cout << "  profiles: " << info->profileCount
                      << " components\n";
        for (const artifact::SectionInfo &s : info->sections) {
            std::cout << "  section " << s.tag << ": " << s.length
                      << " bytes at offset " << s.offset << "\n";
        }
        std::cout << "wrote " << out << ": " << info->fileBytes
                  << " bytes\n";
    }

    if (cli.getBool("verify")) {
        Expected<artifact::LoadedArtifact> la =
            artifact::loadArtifact(out);
        if (!la.ok()) {
            std::cerr << "verify: reload failed: " << la.status().str()
                      << "\n";
            return tool::kExitInternal;
        }
        if (wopts.execImage && !la->hasExecImage()) {
            std::cerr << "verify: EXEC image missing from written "
                         "artifact\n";
            return tool::kExitInternal;
        }
        Expected<Automaton> m = la->materialize(limits);
        if (!m.ok()) {
            std::cerr << "verify: materialize failed: "
                      << m.status().str() << "\n";
            return tool::kExitInternal;
        }
        if (!artifact::automataIdentical(a, *m)) {
            std::cerr << "verify: round trip is not identical to the "
                         "compiled automaton\n";
            return tool::kExitInternal;
        }
        if (wopts.componentProfiles &&
            (!la->hasProfiles() ||
             la->componentProfiles() != analysis::inferProfiles(*m))) {
            std::cerr << "verify: PROF section does not round-trip "
                         "the inferred component profiles\n";
            return tool::kExitInternal;
        }
        // Post-load hard-invariant sweep: anything verify() flags in
        // a graph that just round-tripped is a serializer bug.
        const analysis::Report rep = analysis::verify(*m);
        if (!rep.clean()) {
            std::cerr << "verify: analysis found " << rep.summary()
                      << " in the materialized graph\n";
            for (const analysis::Diagnostic &d : rep.diags) {
                std::cerr << "  [" << analysis::ruleId(d.rule) << "] "
                          << d.message << "\n";
            }
            return tool::kExitInternal;
        }
        if (!cli.getBool("quiet"))
            std::cout << "verify: round trip identical, "
                      << rep.summary() << "\n";
    }
    return tool::kExitOk;
}
