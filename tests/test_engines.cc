/**
 * @file
 * Engine tests: homogeneous-automata semantics of the NFA
 * interpreter, AP counter behaviour (latch/pulse/rollover, resets),
 * NFA vs multi-DFA report equivalence on random automata, DFA
 * compilation bounds and fallback, and the analytic spatial model.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "core/builder.hh"
#include "engine/lazy_dfa_engine.hh"
#include "engine/multidfa_engine.hh"
#include "engine/nfa_engine.hh"
#include "engine/spatial_model.hh"
#include "util/rng.hh"

namespace azoo {
namespace {

std::vector<uint8_t>
bytes(const std::string &s)
{
    return {s.begin(), s.end()};
}

std::vector<Report>
sortedReports(SimResult r)
{
    std::sort(r.reports.begin(), r.reports.end());
    return r.reports;
}

/** Assert @p got is bit-identical to the interpreter result @p ref on
 *  every semantic field (reports compared in canonical order). */
void
expectSameSemantics(const SimResult &ref, const SimResult &got)
{
    SimResult canon = ref;
    std::sort(canon.reports.begin(), canon.reports.end());
    EXPECT_EQ(canon.reports, got.reports);
    EXPECT_EQ(canon.reportCount, got.reportCount);
    EXPECT_EQ(canon.totalEnabled, got.totalEnabled);
    EXPECT_EQ(canon.reportingCycles, got.reportingCycles);
    EXPECT_EQ(canon.byCode, got.byCode);
}

SimOptions
fullOptions()
{
    SimOptions opts;
    opts.countByCode = true;
    return opts;
}

TEST(NfaEngine, StartOfDataFiresOnlyAtOffsetZero)
{
    Automaton a("t");
    addLiteral(a, "ab", StartType::kStartOfData, true, 1);
    NfaEngine e(a);
    auto r1 = e.simulate(bytes("abab"));
    ASSERT_EQ(r1.reportCount, 1u);
    EXPECT_EQ(r1.reports[0].offset, 1u);
    auto r2 = e.simulate(bytes("xab"));
    EXPECT_EQ(r2.reportCount, 0u);
}

TEST(NfaEngine, AllInputFiresAtEveryOffset)
{
    Automaton a("t");
    addLiteral(a, "ab", StartType::kAllInput, true, 1);
    NfaEngine e(a);
    auto r = e.simulate(bytes("abxab"));
    ASSERT_EQ(r.reportCount, 2u);
    EXPECT_EQ(r.reports[0].offset, 1u);
    EXPECT_EQ(r.reports[1].offset, 4u);
}

TEST(NfaEngine, SelfLoopStaysActive)
{
    Automaton a("t");
    ElementId star = addStarState(a, CharSet::single('a'));
    ElementId end = a.addSte(CharSet::single('b'), StartType::kNone,
                             true, 1);
    a.addEdge(star, end);
    NfaEngine e(a);
    EXPECT_EQ(e.simulate(bytes("aaab")).reportCount, 1u);
    EXPECT_EQ(e.simulate(bytes("b")).reportCount, 0u);
}

TEST(NfaEngine, ActiveSetExcludesAlwaysOnStarts)
{
    Automaton a("t");
    // One all-input state enabling a successor on 'a'.
    ElementId s = a.addSte(CharSet::single('a'), StartType::kAllInput);
    ElementId t = a.addSte(CharSet::single('b'));
    a.addEdge(s, t);
    NfaEngine e(a);
    auto r = e.simulate(bytes("aaaa"));
    // 's' is never counted; 't' is enabled for offsets 1..4 (3 of
    // them within the input window).
    EXPECT_EQ(r.totalEnabled, 3u);
}

TEST(NfaEngine, ReportRecordLimitCapsVectorNotCount)
{
    Automaton a("t");
    addLiteral(a, "a", StartType::kAllInput, true, 1);
    NfaEngine e(a);
    SimOptions opts;
    opts.reportRecordLimit = 3;
    auto r = e.simulate(bytes("aaaaaaaa"), opts);
    EXPECT_EQ(r.reportCount, 8u);
    EXPECT_EQ(r.reports.size(), 3u);
}

TEST(NfaEngine, ReportingCyclesCountCyclesNotReports)
{
    Automaton a("t");
    // Two rules that both fire on 'a'.
    addLiteral(a, "a", StartType::kAllInput, true, 1);
    addLiteral(a, "a", StartType::kAllInput, true, 2);
    NfaEngine e(a);
    auto r = e.simulate(bytes("aaxa"));
    EXPECT_EQ(r.reportCount, 6u);
    EXPECT_EQ(r.reportingCycles, 3u);
    EXPECT_DOUBLE_EQ(r.reportingCycleFraction(), 0.75);
}

TEST(NfaEngine, CountByCode)
{
    Automaton a("t");
    addLiteral(a, "a", StartType::kAllInput, true, 10);
    addLiteral(a, "b", StartType::kAllInput, true, 20);
    NfaEngine e(a);
    SimOptions opts;
    opts.countByCode = true;
    auto r = e.simulate(bytes("aabbb"), opts);
    EXPECT_EQ(r.byCode[10], 2u);
    EXPECT_EQ(r.byCode[20], 3u);
}

/** Build: 'a' matcher -> counter(target, mode); counter reports. */
Automaton
counterAutomaton(uint32_t target, CounterMode mode, bool with_reset)
{
    Automaton a("c");
    ElementId s = a.addSte(CharSet::single('a'), StartType::kAllInput,
                           false, 0);
    ElementId c = a.addCounter(target, mode, true, 99);
    a.addEdge(s, c);
    if (with_reset) {
        ElementId r = a.addSte(CharSet::single('r'),
                               StartType::kAllInput);
        a.addResetEdge(r, c);
    }
    return a;
}

TEST(Counters, FiresAtTarget)
{
    Automaton a = counterAutomaton(3, CounterMode::kLatch, false);
    NfaEngine e(a);
    auto r = e.simulate(bytes("aabxa"));
    ASSERT_EQ(r.reportCount, 1u);
    EXPECT_EQ(r.reports[0].offset, 4u); // third 'a'
    EXPECT_EQ(r.reports[0].code, 99u);
}

TEST(Counters, LatchFiresOnce)
{
    Automaton a = counterAutomaton(2, CounterMode::kLatch, false);
    NfaEngine e(a);
    EXPECT_EQ(e.simulate(bytes("aaaaaa")).reportCount, 1u);
}

TEST(Counters, RolloverFiresPeriodically)
{
    Automaton a = counterAutomaton(2, CounterMode::kRollover, false);
    NfaEngine e(a);
    EXPECT_EQ(e.simulate(bytes("aaaaaa")).reportCount, 3u);
}

TEST(Counters, PulseFiresOnceUntilReset)
{
    Automaton a = counterAutomaton(2, CounterMode::kPulse, true);
    NfaEngine e(a);
    EXPECT_EQ(e.simulate(bytes("aaaa")).reportCount, 1u);
    // Reset re-arms the count.
    EXPECT_EQ(e.simulate(bytes("aaraa")).reportCount, 2u);
}

TEST(Counters, ResetClearsProgress)
{
    Automaton a = counterAutomaton(3, CounterMode::kLatch, true);
    NfaEngine e(a);
    // Two a's, reset, two a's: never reaches 3.
    EXPECT_EQ(e.simulate(bytes("aaraa")).reportCount, 0u);
    EXPECT_EQ(e.simulate(bytes("aararaaa")).reportCount, 1u);
}

TEST(Counters, LatchKeepsSuccessorsEnabled)
{
    // counter(target 2, latch) -> 'z' matcher that reports.
    Automaton a("c");
    ElementId s = a.addSte(CharSet::single('a'), StartType::kAllInput);
    ElementId c = a.addCounter(2, CounterMode::kLatch);
    ElementId z = a.addSte(CharSet::single('z'), StartType::kNone,
                           true, 5);
    a.addEdge(s, c);
    a.addEdge(c, z);
    NfaEngine e(a);
    // After two a's, z stays armed: both later z's report.
    EXPECT_EQ(e.simulate(bytes("aaxzxz")).reportCount, 2u);
    // Pulse mode would arm z for one cycle only.
    a.element(c).mode = CounterMode::kPulse;
    NfaEngine e2(a);
    EXPECT_EQ(e2.simulate(bytes("aaxzxz")).reportCount, 0u);
    EXPECT_EQ(e2.simulate(bytes("aazxz")).reportCount, 1u);
}

TEST(MultiDfa, MatchesNfaOnLiterals)
{
    Automaton a("t");
    addLiteral(a, "abc", StartType::kAllInput, true, 1);
    addLiteral(a, "bc", StartType::kAllInput, true, 2);
    NfaEngine nfa(a);
    MultiDfaEngine dfa(a);
    EXPECT_EQ(dfa.fallbackComponents(), 0u);
    auto in = bytes("xxabcxbcabc");
    EXPECT_EQ(sortedReports(nfa.simulate(in)),
              sortedReports(dfa.simulate(in)));
}

TEST(MultiDfa, CounterComponentsFallBackToNfa)
{
    Automaton a = counterAutomaton(3, CounterMode::kRollover, true);
    addLiteral(a, "xy", StartType::kAllInput, true, 7);
    MultiDfaEngine dfa(a);
    EXPECT_EQ(dfa.fallbackComponents(), 1u);
    EXPECT_EQ(dfa.compiledComponents(), 1u);
    NfaEngine nfa(a);
    auto in = bytes("aaxyaraaaxy");
    EXPECT_EQ(sortedReports(nfa.simulate(in)),
              sortedReports(dfa.simulate(in)));
}

TEST(MultiDfa, StateBudgetForcesFallback)
{
    // A component whose subset construction needs more states than
    // the budget: parallel counters of 'a' runs... use a long
    // bounded-repeat-like chain fed by a self loop, which blows up
    // the reachable subset count.
    Automaton a("big");
    ElementId star = addStarState(a, CharSet::all());
    ElementId prev = star;
    for (int i = 0; i < 24; ++i) {
        ElementId s = a.addSte(CharSet::single('a'));
        a.addEdge(prev, s);
        prev = s;
    }
    a.element(prev).reporting = true;

    MultiDfaOptions opts;
    opts.maxDfaStatesPerComponent = 16;
    MultiDfaEngine dfa(a, opts);
    EXPECT_EQ(dfa.fallbackComponents(), 1u);

    NfaEngine nfa(a);
    Rng rng(3);
    std::vector<uint8_t> in;
    for (int i = 0; i < 200; ++i)
        in.push_back(rng.nextBool(0.7) ? 'a' : 'b');
    EXPECT_EQ(sortedReports(nfa.simulate(in)),
              sortedReports(dfa.simulate(in)));
}

TEST(LazyDfa, MatchesNfaOnLiterals)
{
    Automaton a("t");
    addLiteral(a, "abc", StartType::kAllInput, true, 1);
    addLiteral(a, "bc", StartType::kAllInput, true, 2);
    NfaEngine nfa(a);
    LazyDfaEngine lazy(a);
    EXPECT_EQ(lazy.fallbackComponents(), 0u);
    auto in = bytes("xxabcxbcabc");
    auto r = lazy.simulate(in, fullOptions());
    expectSameSemantics(nfa.simulate(in, fullOptions()), r);
    EXPECT_GT(lazy.cachedStates(), 0u);
    EXPECT_EQ(r.lazyFlushes, 0u);
    EXPECT_EQ(r.lazyFallbackComponents, 0u);
}

TEST(LazyDfa, CounterComponentsRunOnFallback)
{
    Automaton a = counterAutomaton(3, CounterMode::kRollover, true);
    addLiteral(a, "xy", StartType::kAllInput, true, 7);
    NfaEngine nfa(a);
    LazyDfaEngine lazy(a);
    EXPECT_EQ(lazy.fallbackComponents(), 1u);
    auto in = bytes("aaxyaraaaxy");
    auto r = lazy.simulate(in, fullOptions());
    expectSameSemantics(nfa.simulate(in, fullOptions()), r);
    EXPECT_EQ(r.lazyFallbackComponents, 1u);
}

TEST(LazyDfa, PureCounterAutomatonHasNoLazyPart)
{
    for (auto mode : {CounterMode::kLatch, CounterMode::kPulse,
                      CounterMode::kRollover}) {
        Automaton a = counterAutomaton(2, mode, true);
        NfaEngine nfa(a);
        LazyDfaEngine lazy(a);
        EXPECT_EQ(lazy.lazyElements(), 0u);
        EXPECT_EQ(lazy.fallbackComponents(), 1u);
        auto in = bytes("aararaaaa");
        expectSameSemantics(nfa.simulate(in, fullOptions()),
                            lazy.simulate(in, fullOptions()));
    }
}

TEST(LazyDfa, LatchedCounterSuccessorsMatchInterpreter)
{
    Automaton a("c");
    ElementId s = a.addSte(CharSet::single('a'), StartType::kAllInput);
    ElementId c = a.addCounter(2, CounterMode::kLatch);
    ElementId z = a.addSte(CharSet::single('z'), StartType::kNone,
                           true, 5);
    a.addEdge(s, c);
    a.addEdge(c, z);
    NfaEngine nfa(a);
    LazyDfaEngine lazy(a);
    auto in = bytes("aaxzxz");
    expectSameSemantics(nfa.simulate(in, fullOptions()),
                        lazy.simulate(in, fullOptions()));
}

/** The over-budget shape for MultiDfa: star -> long 'a' chain. Its
 *  subset space is far too large to enumerate eagerly, but skewed
 *  input keeps the *visited* state-set small: the lazy engine's
 *  target workload. */
Automaton
boundedRepeatAutomaton(int depth)
{
    Automaton a("big");
    ElementId star = addStarState(a, CharSet::all());
    ElementId prev = star;
    for (int i = 0; i < depth; ++i) {
        ElementId s = a.addSte(CharSet::single('a'));
        a.addEdge(prev, s);
        prev = s;
    }
    a.element(prev).reporting = true;
    a.element(prev).reportCode = 3;
    return a;
}

TEST(LazyDfa, TinyBudgetFlushesMidStreamAndStaysExact)
{
    Automaton a = boundedRepeatAutomaton(24);
    NfaEngine nfa(a);
    LazyDfaOptions lopts;
    lopts.cacheBytes = 2048; // absurdly small: forces eviction
    LazyDfaEngine lazy(a, lopts);

    Rng rng(3);
    std::vector<uint8_t> in;
    for (int i = 0; i < 4000; ++i)
        in.push_back(rng.nextBool(0.7) ? 'a' : 'b');

    auto r = lazy.simulate(in, fullOptions());
    expectSameSemantics(nfa.simulate(in.data(), in.size(),
                                     fullOptions()), r);
    EXPECT_GT(r.lazyFlushes, 0u);
    EXPECT_EQ(r.lazyFlushes, lazy.cacheFlushes());
}

TEST(LazyDfa, WarmCacheSecondRunIsIdentical)
{
    Automaton a = boundedRepeatAutomaton(12);
    LazyDfaEngine lazy(a);
    Rng rng(9);
    std::vector<uint8_t> in;
    for (int i = 0; i < 2000; ++i)
        in.push_back(rng.nextBool(0.8) ? 'a' : 'x');

    auto r1 = lazy.simulate(in, fullOptions());
    const uint64_t states = lazy.cachedStates();
    const uint64_t cells = lazy.cachedTransitions();
    auto r2 = lazy.simulate(in, fullOptions());
    // Second pass replays entirely from the warm cache: no growth,
    // same answer.
    EXPECT_EQ(lazy.cachedStates(), states);
    EXPECT_EQ(lazy.cachedTransitions(), cells);
    EXPECT_EQ(r1.reports, r2.reports);
    EXPECT_EQ(r1.totalEnabled, r2.totalEnabled);
}

TEST(LazyDfa, ReportRecordLimitCapsVectorNotCount)
{
    Automaton a("t");
    addLiteral(a, "a", StartType::kAllInput, true, 1);
    LazyDfaEngine lazy(a);
    SimOptions opts;
    opts.reportRecordLimit = 3;
    auto r = lazy.simulate(bytes("aaaaaaaa"), opts);
    EXPECT_EQ(r.reportCount, 8u);
    EXPECT_EQ(r.reports.size(), 3u);
}

/** Random small automata: NFA and DFA engines report identically. */
class EngineEquivalence : public testing::TestWithParam<int>
{
};

TEST_P(EngineEquivalence, RandomAutomata)
{
    Rng rng(7000 + GetParam());
    Automaton a("rand");
    const int n = 3 + static_cast<int>(rng.nextBelow(14));
    for (int i = 0; i < n; ++i) {
        CharSet cs;
        const int syms = 1 + static_cast<int>(rng.nextBelow(4));
        for (int k = 0; k < syms; ++k)
            cs.set(static_cast<uint8_t>('a' + rng.nextBelow(4)));
        a.addSte(cs, static_cast<StartType>(rng.nextBelow(3)),
                 rng.nextBool(0.3),
                 static_cast<uint32_t>(rng.nextBelow(8)));
    }
    const int edges = static_cast<int>(rng.nextBelow(3 * n));
    for (int e = 0; e < edges; ++e) {
        a.addEdge(static_cast<ElementId>(rng.nextBelow(n)),
                  static_cast<ElementId>(rng.nextBelow(n)));
    }

    NfaEngine nfa(a);
    MultiDfaEngine dfa(a);
    LazyDfaEngine lazy(a);
    LazyDfaOptions tiny_opts;
    tiny_opts.cacheBytes = 1; // every insertion over budget
    LazyDfaEngine tiny(a, tiny_opts);
    for (int trial = 0; trial < 5; ++trial) {
        std::string text = rng.randomString(1 + rng.nextBelow(80),
                                            "abcd");
        auto in = bytes(text);
        auto ref = nfa.simulate(in, fullOptions());
        ASSERT_EQ(sortedReports(ref),
                  sortedReports(dfa.simulate(in)))
            << "input '" << text << "'";
        expectSameSemantics(ref, lazy.simulate(in, fullOptions()));
        expectSameSemantics(ref, tiny.simulate(in, fullOptions()));
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EngineEquivalence,
                         testing::Range(0, 40));

TEST(SpatialModel, PassesAndUtilization)
{
    SpatialArch arch;
    arch.name = "toy";
    arch.steCapacity = 100;
    arch.clockHz = 1e6;
    SpatialModel m(arch);
    EXPECT_EQ(m.passes(0), 1u);
    EXPECT_EQ(m.passes(100), 1u);
    EXPECT_EQ(m.passes(101), 2u);
    EXPECT_EQ(m.passes(1000), 10u);
    EXPECT_DOUBLE_EQ(m.utilization(100), 1.0);
    EXPECT_DOUBLE_EQ(m.utilization(150), 0.5);
}

TEST(SpatialModel, ThroughputScalesWithPassesAndReports)
{
    SpatialArch arch;
    arch.steCapacity = 100;
    arch.clockHz = 1e6;
    arch.reportStallCycles = 4;
    SpatialModel m(arch);
    EXPECT_DOUBLE_EQ(m.symbolsPerSecond(100, 0.0), 1e6);
    EXPECT_DOUBLE_EQ(m.symbolsPerSecond(200, 0.0), 0.5e6);
    // 0.25 reports/symbol * 4 stall cycles = 2 cycles/symbol.
    EXPECT_DOUBLE_EQ(m.symbolsPerSecond(100, 0.25), 0.5e6);
    EXPECT_DOUBLE_EQ(m.itemsPerSecond(100, 0.0, 100), 1e4);
}

TEST(SpatialModel, PresetsAreOrdered)
{
    // The FPGA preset outruns the AP on the same automaton, as in
    // the paper's narrative about modern baselines.
    SpatialModel ap(SpatialArch::apD480());
    SpatialModel fpga(SpatialArch::reaprKintex());
    EXPECT_GT(fpga.symbolsPerSecond(40000, 0.001),
              ap.symbolsPerSecond(40000, 0.001));
}

} // namespace
} // namespace azoo
