#include "zoo/snort.hh"

#include <algorithm>

#include "input/pcap.hh"
#include "regex/glushkov.hh"
#include "regex/parser.hh"
#include "util/logging.hh"
#include "util/rng.hh"
#include "util/strings.hh"

namespace azoo {
namespace zoo {

namespace {

/** Escape one byte for inclusion in a pattern literal. */
std::string
escapeForRegex(uint8_t c)
{
    static const std::string meta = R"(\^$.|?*+()[]{})";
    if (c >= 0x20 && c < 0x7f) {
        if (meta.find(static_cast<char>(c)) != std::string::npos)
            return std::string("\\") + static_cast<char>(c);
        return std::string(1, static_cast<char>(c));
    }
    return "\\x" + hexByte(c);
}

/** Random literal fragment: mostly printable, some raw bytes.
 *  Appends the raw payload to @p instance. */
std::string
literalFragment(Rng &rng, int min_len, int max_len,
                std::string &instance)
{
    static const std::string printable =
        "abcdefghijklmnopqrstuvwxyz"
        "ABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789/._-=&%";
    const int len =
        min_len + static_cast<int>(rng.nextBelow(max_len - min_len + 1));
    std::string out;
    for (int i = 0; i < len; ++i) {
        const uint8_t c = rng.nextBool(0.08)
            ? rng.nextByte()
            : static_cast<uint8_t>(rng.pickChar(printable));
        out += escapeForRegex(c);
        instance.push_back(static_cast<char>(c));
    }
    return out;
}

/**
 * One clean DPI-style rule: content fragments joined mostly by
 * dot-star gaps (real Snort PCREs are literal-dominated: Table I
 * shows edges/node 1.17 and ~81 states per rule).
 */
std::string
cleanRulePattern(Rng &rng, std::string &instance)
{
    std::string p = literalFragment(rng, 10, 18, instance);
    const int segments = 3 + static_cast<int>(rng.nextBelow(3));
    for (int s = 0; s < segments; ++s) {
        switch (rng.nextBelow(8)) {
          case 0: {
            // Small class run, e.g. a hex-digit field.
            const int reps = 2 + static_cast<int>(rng.nextBelow(3));
            p += cat("[0-9a-f]{", reps, "}");
            for (int i = 0; i < reps; ++i) {
                const char c = "0123456789abcdef"[rng.nextBelow(16)];
                instance.push_back(c);
            }
            p += literalFragment(rng, 6, 12, instance);
            break;
          }
          case 1: {
            // Short alternation of literals.
            std::string i1, i2;
            Rng fork = rng.fork();
            std::string a1 = literalFragment(rng, 3, 6, i1);
            std::string a2 = literalFragment(fork, 3, 6, i2);
            p += cat("(", a1, "|", a2, ")");
            instance += i1;
            break;
          }
          default:
            p += ".*";
            p += literalFragment(rng, 10, 18, instance);
            break;
        }
    }
    return p;
}

/**
 * Sample a short substring of representative traffic and escape it as
 * a pattern. Short samples of the real symbol distribution are how we
 * model rules "designed with selective application in mind": applied
 * to the whole stream they fire at the n-gram's natural frequency,
 * which is very high for 4-grams and extreme for 2-grams.
 */
std::string
sampledFragment(Rng &rng, const std::vector<uint8_t> &sample, int len)
{
    const size_t at = rng.nextBelow(sample.size() - len);
    std::string out;
    for (int i = 0; i < len; ++i)
        out += escapeForRegex(sample[at + i]);
    return out;
}

} // namespace

std::vector<SnortRule>
makeSnortRules(const ZooConfig &cfg)
{
    std::vector<SnortRule> rules;
    Rng rng(cfg.seed ^ 0x54e0a7ULL);

    // Representative traffic sample for frequency-calibrated
    // over-matching rules (same generator family as snortInput, a
    // different seed so patterns are not trivially planted).
    input::PcapConfig sc;
    sc.bytes = 64 * 1024;
    sc.seed = cfg.seed ^ 0x5a39ULL;
    const std::vector<uint8_t> sample = input::packetStream(sc);

    const size_t n_clean = cfg.scaled(2486);
    const size_t n_mod = cfg.scaled(2856);
    const size_t n_isd = cfg.scaled(182);

    for (size_t i = 0; i < n_clean; ++i) {
        SnortRule r;
        if (i % 25 == 24) {
            // A small over-generic subpopulation (real rulesets have
            // these; they dominate the clean population's rate).
            r.pattern = sampledFragment(rng, sample, 3);
        } else {
            r.pattern = cleanRulePattern(rng, r.instance);
            r.nocase = rng.nextBool(0.3);
        }
        rules.push_back(std::move(r));
    }
    for (size_t i = 0; i < n_mod; ++i) {
        SnortRule r;
        r.pattern = sampledFragment(rng, sample, 4 + (i % 2));
        r.pcreModifier = true;
        rules.push_back(std::move(r));
    }
    for (size_t i = 0; i < n_isd; ++i) {
        SnortRule r;
        if (i == 0) {
            // The extreme outlier: a 2-gram firing at its natural
            // frequency ("one rule was responsible for over half of
            // all reports").
            r.pattern = sampledFragment(rng, sample, 2);
        } else {
            r.pattern = sampledFragment(rng, sample, 6);
        }
        r.isdataat = true;
        rules.push_back(std::move(r));
    }
    return rules;
}

Automaton
compileSnortRules(const std::vector<SnortRule> &rules,
                  bool include_modifier, bool include_isdataat,
                  size_t *rejected)
{
    Automaton a("Snort");
    size_t skipped = 0;
    for (size_t i = 0; i < rules.size(); ++i) {
        const SnortRule &r = rules[i];
        if ((r.pcreModifier && !include_modifier) ||
            (r.isdataat && !include_isdataat)) {
            continue;
        }
        RegexFlags flags;
        flags.nocase = r.nocase;
        Regex rx;
        std::string err;
        if (!tryParseRegex(r.pattern, flags, rx, err)) {
            ++skipped;
            continue;
        }
        appendRegex(a, rx, static_cast<uint32_t>(i));
    }
    if (rejected)
        *rejected = skipped;
    return a;
}

std::vector<uint8_t>
snortInput(const ZooConfig &cfg, const std::vector<SnortRule> &rules)
{
    input::PcapConfig pc;
    pc.bytes = cfg.inputBytes;
    pc.seed = cfg.seed ^ 0xbcafULL;
    std::vector<uint8_t> stream = input::packetStream(pc);

    // Plant true attack payloads (clean rules carry a concrete
    // matching instance) at deterministic offsets, one per ~32 KiB.
    Rng rng(cfg.seed ^ 0x9999ULL);
    std::vector<const SnortRule *> clean;
    for (const auto &r : rules) {
        if (!r.pcreModifier && !r.isdataat && !r.instance.empty())
            clean.push_back(&r);
    }
    if (!clean.empty()) {
        for (size_t at = 16 * 1024; at < stream.size();
             at += 32 * 1024) {
            const std::string &inst =
                clean[rng.nextBelow(clean.size())]->instance;
            if (at + inst.size() >= stream.size())
                break;
            std::copy(inst.begin(), inst.end(), stream.begin() + at);
        }
    }
    return stream;
}

Benchmark
makeSnortBenchmark(const ZooConfig &cfg)
{
    Benchmark b;
    b.name = "Snort";
    b.domain = "Network Intrusion Detection";
    b.inputDesc = "PCAP file";
    b.paperStates = 202043;
    b.paperActiveSet = 409.358;
    b.paperSizeVsAnmlzoo = 4.71;

    auto rules = makeSnortRules(cfg);
    size_t rejected = 0;
    b.automaton = compileSnortRules(rules, false, false, &rejected);
    b.input = snortInput(cfg, rules);
    b.meta["rules_total"] = std::to_string(rules.size());
    b.meta["rules_rejected"] = std::to_string(rejected);
    return b;
}

} // namespace zoo
} // namespace azoo
