/**
 * @file
 * Synthetic disk image: the ClamAV / File Carving input.
 *
 * Per the paper, the ClamAV stimulus is "a disk image including
 * various files and two embedded virus fragments". We concatenate
 * realistic file blobs -- text, PKZip members with correct local-file
 * headers (including MS-DOS timestamps with valid bit-field ranges),
 * MPEG program streams, MP4 ftyp boxes -- plus filler, e-mail
 * addresses and SSN-formatted strings for the forensic patterns, and
 * embed the provided virus payloads at deterministic offsets.
 */

#ifndef AZOO_INPUT_DISKIMAGE_HH
#define AZOO_INPUT_DISKIMAGE_HH

#include <cstdint>
#include <string>
#include <vector>

namespace azoo {
namespace input {

/** Disk image knobs. */
struct DiskImageConfig {
    size_t bytes = 1 << 20;
    uint64_t seed = 23;
    /** Byte payloads embedded verbatim ("virus fragments"). */
    std::vector<std::string> viruses;
};

/** Build the image. */
std::vector<uint8_t> diskImage(const DiskImageConfig &cfg);

} // namespace input
} // namespace azoo

#endif // AZOO_INPUT_DISKIMAGE_HH
