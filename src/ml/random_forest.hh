/**
 * @file
 * Random forest: bagged ensemble of CART trees, with single- and
 * multi-threaded native inference (the scikit-learn stand-in of
 * Table IV) and path export for the automata conversion (Tracy et
 * al.) used by the Random Forest A/B/C benchmarks.
 */

#ifndef AZOO_ML_RANDOM_FOREST_HH
#define AZOO_ML_RANDOM_FOREST_HH

#include <vector>

#include "ml/decision_tree.hh"

namespace azoo {
namespace ml {

/** Forest hyperparameters (the Table II design-space knobs). */
struct ForestParams {
    int numTrees = 20;
    int features = 200;  ///< selected feature count (input stream len)
    int maxLeaves = 400;
    int maxDepth = 8;
    int bins = 16;
    uint64_t seed = 7;
};

class RandomForest
{
  public:
    /** Train on @p train; features are selected from the full space
     *  then trees see only the projected columns. */
    void train(const Dataset &train, const ForestParams &params);

    /** Majority-vote prediction of one raw full-width sample. */
    int predict(const std::vector<uint8_t> &x) const;

    /** Batch predict with @p threads worker threads (1 = serial). */
    std::vector<int> predictBatch(const Dataset &d, int threads) const;

    /** Fraction of @p d classified correctly. */
    double accuracy(const Dataset &d) const;

    const std::vector<DecisionTree> &trees() const { return trees_; }
    const std::vector<int> &featureMap() const { return featureMap_; }
    const ForestParams &params() const { return params_; }

  private:
    std::vector<DecisionTree> trees_;
    std::vector<int> featureMap_; ///< projected col -> original feature
    ForestParams params_;
};

} // namespace ml
} // namespace azoo

#endif // AZOO_ML_RANDOM_FOREST_HH
