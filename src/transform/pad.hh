/**
 * @file
 * Soft-reconfiguration padding: the AP-specific optimization the paper
 * studies in Section VII (Table III).
 *
 * On Micron's AP, automata structures are often built larger than a
 * given problem instance so that new instances can be loaded by
 * "symbol replacement" (rewriting STE character sets) without
 * re-routing the fabric. The surplus states do no useful computation
 * but remain enabled, so enabled-set CPU engines pay for them while
 * compiled engines largely do not.
 *
 * appendPaddingTail() grafts such surplus states after an existing
 * state: a chain of non-reporting STEs with the given labels, each
 * also re-enabled by its predecessor's self-context, emulating the
 * filler slots of a soft-configurable filter.
 */

#ifndef AZOO_TRANSFORM_PAD_HH
#define AZOO_TRANSFORM_PAD_HH

#include <vector>

#include "core/automaton.hh"

namespace azoo {

/**
 * Append @p labels as a non-reporting chain enabled by @p after.
 * The first padding state also self-loops so that, once primed, the
 * pad keeps attempting matches like a real soft-configured slot.
 * @return ids of the appended states.
 */
std::vector<ElementId> appendPaddingTail(
    Automaton &a, ElementId after, const std::vector<CharSet> &labels);

/**
 * Pad every reporting state of @p a with a @p count long tail of
 * @p label states. Used to build the "wide padded" variants of
 * benchmarks for the Table III experiment.
 * @return number of states added.
 */
size_t padReportingTails(Automaton &a, size_t count,
                         const CharSet &label);

} // namespace azoo

#endif // AZOO_TRANSFORM_PAD_HH
