/**
 * @file
 * Profile-driven per-component engine planning.
 *
 * PR 7's analysis layer computes a ComponentProfile for every
 * connected component — class (literal-chain / bounded-regex /
 * counter-coupled / cyclic-unbounded), mandatory literal factor,
 * match-length and anchoring intervals, a determinization blowup
 * estimate. This module turns those facts into wall-clock throughput:
 * planComponents() assigns each component the cheapest backend that
 * is exact for it, and PlannedEngine / PlannedSession execute the
 * resulting mixed plan with results bit-identical (on the semantic
 * fields: symbols, reports, reportCount, reportingCycles, byCode,
 * guardStatus) to the serial NfaEngine after canonicalizeReports().
 * totalEnabled is engine-defined, as for MultiDfaEngine: skipped
 * regions and never-simulated components contribute nothing.
 *
 * The decision table (docs/ARCHITECTURE.md "Engine planning &
 * prefilters" is the narrative version):
 *
 *   reportCount == 0                  -> kSkip        (never reports)
 *   counter-coupled                   -> kInterpreter (exact counters)
 *   cyclic-unbounded, small blowup    -> kLazyDfa
 *   cyclic-unbounded, huge blowup     -> kInterpreter
 *   anchored, bounded depth           -> kAnchoredPrefix
 *   literal-chain, strong literal,
 *     bounded matches, all-input      -> kPrefilter
 *   everything else                   -> kLazyDfa
 *
 * Guard semantics: a planned run polls the caller's RunGuard on the
 * same kGuardCheckIntervalSymbols clock as the serial engines (every
 * backend polls, and a sweep covers skipped/absent work), and on a
 * stop all backends are reconciled to the shortest consumed prefix —
 * the same contract ParallelRunner::simulateSharded() keeps.
 */

#ifndef AZOO_ENGINE_PLANNER_HH
#define AZOO_ENGINE_PLANNER_HH

#include <array>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "analysis/profile.hh"
#include "core/automaton.hh"
#include "engine/engine_scratch.hh"
#include "engine/lazy_dfa_engine.hh"
#include "engine/nfa_engine.hh"
#include "engine/prefilter.hh"
#include "engine/report.hh"
#include "engine/streaming.hh"

namespace azoo {

/** Execution backend a component is planned onto. */
enum class PlanBackend : uint8_t {
    kPrefilter = 0,      ///< literal scan + windowed interpreter
    kAnchoredPrefix = 1, ///< interpreter over a bounded input prefix
    kLazyDfa = 2,        ///< lazy-DFA hybrid
    kInterpreter = 3,    ///< enabled-set interpreter
    kSkip = 4,           ///< no reporting member: never simulated
};

inline constexpr size_t kPlanBackends = 5;

/** "prefilter" / "anchored-prefix" / "lazy-dfa" / "interpreter" /
 *  "skip". */
const char *planBackendName(PlanBackend b);

/** One-letter census code: P / A / D / I / S. */
char planBackendCode(PlanBackend b);

/** Planning knobs. */
struct PlanOptions {
    /** Allow the literal-prefilter backend (`--no-prefilter` routes
     *  literal chains to the interpreter instead). */
    bool enablePrefilter = true;
    /** Shortest mandatory literal worth scanning for. */
    uint32_t minScanLiteral = 4;
    /** Scan-literal length cap (longer factors are truncated; the
     *  verify step inside the window restores exactness). */
    uint32_t maxScanLiteral = 8;
    /** Cyclic components with blowupLog2 above this interpret rather
     *  than use the lazy DFA. The estimate saturates at 32, so the
     *  default keeps every cyclic component on the lazy DFA: gap
     *  self-loops are absorbing, the set of state-sets actually
     *  visited stays small, and a saturated static estimate says
     *  nothing about the run-time working set. */
    uint32_t maxLazyBlowupLog2 = 32;
    /** Transition-cache budget of the lazy-DFA backend. */
    size_t lazyCacheBytes = 8u << 20;
    /** Profile-inference knobs (when the planner infers them). */
    analysis::InferOptions infer;
};

/** Where one component was routed. */
struct ComponentDecision {
    uint32_t componentId = 0;
    PlanBackend backend = PlanBackend::kInterpreter;
};

/** A full per-component assignment. */
struct EnginePlan {
    std::vector<ComponentDecision> decisions;
    std::array<uint32_t, kPlanBackends> backendCount{};

    /** Compact census like "P12/D3/I1" (zero counts omitted; "-"
     *  when there are no components). */
    std::string census() const;
};

/**
 * Assign a backend to every component of @p a. @p profiles must come
 * from analysis::inferProfiles() on the same automaton (they are
 * indexed by componentId). Deterministic.
 */
EnginePlan planComponents(const Automaton &a,
                          const std::vector<analysis::ComponentProfile>
                              &profiles,
                          const PlanOptions &opts = PlanOptions());

/**
 * Executes an EnginePlan: one engine per backend group over a
 * sub-automaton of that group's components, merged into a single
 * canonical SimResult.
 *
 * simulate() mutates per-engine state (lazy cache, scratches), so a
 * PlannedEngine must not be shared by concurrently simulating threads
 * — ParallelRunner builds one per worker slot. Reports come out in
 * canonical (offset, element, code) order with original element ids.
 */
class PlannedEngine
{
  public:
    /** Infer profiles internally. The automaton must outlive the
     *  engine only during construction (groups are copied out). */
    explicit PlannedEngine(const Automaton &a,
                           const PlanOptions &opts = PlanOptions());

    /** Plan from precomputed profiles (inferProfiles(a) — sharing one
     *  inference across many engines). */
    PlannedEngine(const Automaton &a,
                  const std::vector<analysis::ComponentProfile> &profiles,
                  const PlanOptions &opts = PlanOptions());

    SimResult simulate(const uint8_t *input, size_t len,
                       const SimOptions &opts = SimOptions());

    SimResult
    simulate(const std::vector<uint8_t> &input,
             const SimOptions &opts = SimOptions())
    {
        return simulate(input.data(), input.size(), opts);
    }

    const EnginePlan &plan() const { return plan_; }

    /** Scan literals the prefilter backend sweeps for (0 when no
     *  component was planned onto it). */
    size_t prefilterPatterns() const
    {
        return prefilter_ ? prefilter_->patternCount() : 0;
    }

    /** Prefilter effectiveness of the most recent simulate() (all
     *  zero when the plan has no prefilter group). */
    const PrefilterStats &lastPrefilterStats() const
    {
        return lastPrefilterStats_;
    }

  private:
    void build(const Automaton &a,
               const std::vector<analysis::ComponentProfile> &profiles,
               const PlanOptions &opts);

    PlanOptions popts_;
    EnginePlan plan_;

    std::unique_ptr<PrefilteredNfa> prefilter_;
    EngineScratch prefilterScratch_;

    std::unique_ptr<Automaton> anchoredSub_;
    std::vector<ElementId> anchoredToGlobal_;
    std::unique_ptr<NfaEngine> anchoredEngine_;
    EngineScratch anchoredScratch_;
    /** Input prefix after which every anchored component has
     *  quiesced. */
    uint64_t anchoredPrefix_ = 0;

    std::unique_ptr<Automaton> lazySub_;
    std::vector<ElementId> lazyToGlobal_;
    std::unique_ptr<LazyDfaEngine> lazyEngine_;

    std::unique_ptr<Automaton> interpSub_;
    std::vector<ElementId> interpToGlobal_;
    std::unique_ptr<NfaEngine> interpEngine_;
    EngineScratch interpScratch_;

    PrefilterStats lastPrefilterStats_;
};

/**
 * Streaming counterpart of PlannedEngine: chunked feeding with
 * persistent state, same canonical results as a monolithic planned
 * run (and therefore as serial NfaEngine + canonicalizeReports()).
 *
 * The prefilter group streams through PrefilteredNfa::Session; every
 * other non-skip group streams through one merged StreamingSession
 * (the lazy DFA has no incremental API, so streamed plans trade its
 * speed for interpretation — block mode keeps it). The session owns
 * the guard poll clock: options.guard is polled every
 * kGuardCheckIntervalSymbols stream symbols regardless of chunking,
 * exactly like StreamingSession.
 */
class PlannedSession
{
  public:
    explicit PlannedSession(const Automaton &a,
                            const PlanOptions &opts = PlanOptions());
    PlannedSession(const Automaton &a,
                   const std::vector<analysis::ComponentProfile>
                       &profiles,
                   const PlanOptions &opts = PlanOptions());

    /** Feed a chunk; returns bytes consumed (short exactly when
     *  options.guard stopped the session). */
    size_t feed(const uint8_t *data, size_t len);

    size_t
    feed(const std::vector<uint8_t> &data)
    {
        return feed(data.data(), data.size());
    }

    /** True once options.guard has stopped this session. */
    bool stopped() const { return !guardStatus_.ok(); }

    /** Merged canonical results over the consumed prefix (built on
     *  each call; offsets are absolute stream offsets). */
    SimResult results() const;

    uint64_t offset() const { return t_; }

    void reset();

    /** Resident bytes: sub-automaton copies, the rest-group
     *  interpreter session, and the prefilter's shared tables +
     *  per-session window state. The serve layer's admission
     *  estimate is validated against this. */
    size_t footprintBytes() const;

    const EnginePlan &plan() const { return plan_; }

    const PrefilterStats &
    prefilterStats() const
    {
        static const PrefilterStats kNone;
        return prefilterSession_ ? prefilterSession_->stats() : kNone;
    }

    SimOptions options;

  private:
    void build(const Automaton &a,
               const std::vector<analysis::ComponentProfile> &profiles,
               const PlanOptions &opts);

    EnginePlan plan_;

    std::unique_ptr<PrefilteredNfa> prefilter_;
    std::unique_ptr<PrefilteredNfa::Session> prefilterSession_;

    /** Anchored + lazy + interpreter components merged: everything
     *  that needs per-symbol streaming state. */
    std::unique_ptr<Automaton> restSub_;
    std::vector<ElementId> restToGlobal_;
    std::unique_ptr<StreamingSession> restSession_;

    uint64_t t_ = 0;
    Status guardStatus_;
};

} // namespace azoo

#endif // AZOO_ENGINE_PLANNER_HH
