# Empty dependencies file for virus_scan.
# This may be replaced when dependencies are built.
