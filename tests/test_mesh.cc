/**
 * @file
 * Mesh automata tests: Hamming and Levenshtein filters verified
 * against direct distance computations (sliding-window Hamming
 * distance; dynamic-programming edit distance over all substring
 * alignments), the paper's Section X substrate.
 */

#include <gtest/gtest.h>

#include <set>

#include "engine/nfa_engine.hh"
#include "input/dna.hh"
#include "util/rng.hh"
#include "zoo/mesh.hh"

namespace azoo {
namespace {

std::set<uint64_t>
reportOffsets(const Automaton &a, const std::string &text)
{
    NfaEngine e(a);
    std::vector<uint8_t> in(text.begin(), text.end());
    auto r = e.simulate(in);
    std::set<uint64_t> out;
    for (const auto &rep : r.reports)
        out.insert(rep.offset);
    return out;
}

/** Offsets where a window of |p| ending there has HD(p, window)<=d. */
std::set<uint64_t>
hammingOracle(const std::string &p, const std::string &text, int d)
{
    std::set<uint64_t> out;
    if (text.size() < p.size())
        return out;
    for (size_t end = p.size() - 1; end < text.size(); ++end) {
        const size_t start = end + 1 - p.size();
        int mism = 0;
        for (size_t j = 0; j < p.size(); ++j)
            mism += text[start + j] != p[j];
        if (mism <= d)
            out.insert(end);
    }
    return out;
}

/**
 * Offsets t where some substring of text ending at t is within edit
 * distance d of p. Computed with the standard DP where row 0 is all
 * zeros (match can start anywhere).
 */
std::set<uint64_t>
levenshteinOracle(const std::string &p, const std::string &text, int d)
{
    const size_t m = p.size(), n = text.size();
    // dp[i][j] = min edits to match p[0..i) against a substring of
    // text ending at j.
    std::vector<std::vector<int>> dp(m + 1, std::vector<int>(n + 1));
    for (size_t j = 0; j <= n; ++j)
        dp[0][j] = 0;
    for (size_t i = 1; i <= m; ++i)
        dp[i][0] = static_cast<int>(i);
    for (size_t i = 1; i <= m; ++i) {
        for (size_t j = 1; j <= n; ++j) {
            const int sub = dp[i - 1][j - 1] +
                (p[i - 1] != text[j - 1]);
            dp[i][j] = std::min({sub, dp[i - 1][j] + 1,
                                 dp[i][j - 1] + 1});
        }
    }
    std::set<uint64_t> out;
    for (size_t j = 1; j <= n; ++j) {
        if (dp[m][j] <= d)
            out.insert(j - 1);
    }
    return out;
}

TEST(Hamming, ExactMatchReports)
{
    Automaton a("h");
    zoo::appendHammingFilter(a, "atgc", 1, 0);
    EXPECT_EQ(reportOffsets(a, "ccatgccc"),
              hammingOracle("atgc", "ccatgccc", 1));
}

TEST(Hamming, DistanceZeroIsExactMatch)
{
    Automaton a("h");
    zoo::appendHammingFilter(a, "tag", 0, 0);
    EXPECT_EQ(reportOffsets(a, "atagtagxtg"),
              (std::set<uint64_t>{3, 6}));
}

TEST(Hamming, CountsMismatchesNotShifts)
{
    Automaton a("h");
    zoo::appendHammingFilter(a, "aaaa", 2, 0);
    // "ttaa" has HD 2 -> report; "ttta" HD 3 -> none at that window.
    auto offs = reportOffsets(a, "ttaa");
    EXPECT_TRUE(offs.count(3));
    EXPECT_TRUE(reportOffsets(a, "ttta").empty());
}

TEST(Hamming, StateCountMatchesMeshFormula)
{
    // Table I: Hamming 18x3 has 108-ish states per filter; our mesh
    // realizes sum_j (rows at j).
    Automaton a("h");
    size_t n = zoo::appendHammingFilter(a, std::string(18, 'a'), 3, 0);
    EXPECT_GT(n, 100u);
    EXPECT_LT(n, 130u);
}

class HammingProperty : public testing::TestWithParam<int>
{
};

TEST_P(HammingProperty, AgreesWithSlidingWindowOracle)
{
    Rng rng(12000 + GetParam());
    const int l = 4 + static_cast<int>(rng.nextBelow(8));
    const int d = static_cast<int>(rng.nextBelow(std::min(l, 4)));
    std::string p = input::randomDnaString(l, rng);
    Automaton a("h");
    zoo::appendHammingFilter(a, p, d, 0);

    for (int t = 0; t < 4; ++t) {
        std::string text = rng.randomString(
            l + rng.nextBelow(50), input::kDnaAlphabet);
        // Plant a near-match to guarantee coverage of the <=d band.
        if (text.size() >= p.size()) {
            std::vector<uint8_t> tmp(text.begin(), text.end());
            input::plantWithMismatches(
                tmp, rng.nextBelow(text.size() - p.size() + 1), p,
                static_cast<int>(rng.nextBelow(d + 1)), rng);
            text.assign(tmp.begin(), tmp.end());
        }
        ASSERT_EQ(reportOffsets(a, text), hammingOracle(p, text, d))
            << "p=" << p << " d=" << d << " text=" << text;
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, HammingProperty,
                         testing::Range(0, 30));

TEST(Levenshtein, SubstitutionInsertionDeletion)
{
    Automaton a("l");
    zoo::appendLevenshteinFilter(a, "acgt", 1, 0);
    // Exact.
    EXPECT_TRUE(reportOffsets(a, "acgt").count(3));
    // One substitution.
    EXPECT_TRUE(reportOffsets(a, "aggt").count(3));
    // One insertion in the text.
    EXPECT_TRUE(reportOffsets(a, "acxgt").count(4));
    // One deletion in the text ("agt" vs pattern "acgt"... edit 1).
    EXPECT_TRUE(reportOffsets(a, "agt").count(2));
    // Distance 2 string not reported at its end.
    EXPECT_EQ(reportOffsets(a, "gg").count(1), 0u);
}

class LevenshteinProperty : public testing::TestWithParam<int>
{
};

TEST_P(LevenshteinProperty, AgreesWithDpOracle)
{
    Rng rng(13000 + GetParam());
    const int l = 4 + static_cast<int>(rng.nextBelow(6));
    const int d = static_cast<int>(rng.nextBelow(std::min(l - 1, 3)));
    std::string p = input::randomDnaString(l, rng);
    Automaton a("l");
    zoo::appendLevenshteinFilter(a, p, d, 0);

    for (int t = 0; t < 4; ++t) {
        std::string text = rng.randomString(
            2 + rng.nextBelow(40), "at"); // binary-ish: more matches
        ASSERT_EQ(reportOffsets(a, text),
                  levenshteinOracle(p, text, d))
            << "p=" << p << " d=" << d << " text=" << text;
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LevenshteinProperty,
                         testing::Range(0, 30));

TEST(MeshBenchmark, BuildsWithPlantedReports)
{
    zoo::ZooConfig cfg;
    cfg.scale = 0.01;
    cfg.inputBytes = 300 * 1024;
    auto b = zoo::makeMeshBenchmark(cfg, zoo::MeshKind::kHamming, 12,
                                    2);
    b.automaton.validate();
    NfaEngine e(b.automaton);
    EXPECT_GT(e.simulate(b.input).reportCount, 0u);
}

TEST(MeshBenchmark, EdgeDensityGrowsWithDistance)
{
    zoo::ZooConfig cfg;
    cfg.scale = 0.005;
    cfg.inputBytes = 1024;
    auto l3 = zoo::makeMeshBenchmark(cfg, zoo::MeshKind::kLevenshtein,
                                     19, 3);
    auto l10 = zoo::makeMeshBenchmark(cfg, zoo::MeshKind::kLevenshtein,
                                      37, 10);
    const double d3 = static_cast<double>(l3.automaton.edgeCount()) /
        l3.automaton.size();
    const double d10 = static_cast<double>(l10.automaton.edgeCount()) /
        l10.automaton.size();
    EXPECT_GT(d10, 2 * d3); // Table I: 4.08 -> 11.17
}

} // namespace
} // namespace azoo
