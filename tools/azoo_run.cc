/**
 * @file
 * azoo_run: simulate an automaton file over an input file.
 *
 * The VASim-equivalent command-line driver: loads any supported
 * format, runs the chosen engine, and prints statistics and
 * (optionally) the report stream.
 *
 * Usage:
 *   azoo_run --automaton x.mnrl --input x.input
 *            [--engine nfa|multidfa|lazydfa|auto] [--cache-bytes N]
 *            [--no-prefilter] [--reports N] [--by-code]
 *            [--threads N] [--batch] [--chunk BYTES]
 *            [--metrics[=FILE]] [--save x.azoox]
 *   azoo_run --load x.azoox --input x.input [...same run flags]
 *
 * --save writes the parsed automaton as a compiled `.azoox` artifact
 * (equivalent to azoo_compile). --load replaces the parse path with
 * the artifact loader: the file is mmap-ed, validated, and — for the
 * serial nfa engine — executed zero-copy straight out of the mapping;
 * other engines materialize the graph first. Parse-path flags
 * (--automaton, --max-states, --max-edges, --save) are usage errors
 * together with --load, since the artifact is already compiled.
 *
 * Engines: nfa is the enabled-set interpreter; multidfa (alias: dfa)
 * determinizes each component eagerly; lazydfa runs subset
 * construction on the fly, memoizing transitions in a cache bounded
 * by --cache-bytes; auto profiles the automaton and plans each
 * component onto the cheapest exact backend (literal prefilter,
 * anchored prefix, lazy DFA, or interpreter — see
 * docs/ARCHITECTURE.md "Engine planning & prefilters").
 * --no-prefilter keeps the planner but routes literal chains to the
 * lazy DFA instead of the prefilter. All engines produce identical
 * reports (canonical order for auto).
 *
 * --threads N (N > 1) simulates with the parallel layer: by default
 * the automaton is sharded by connected components and all shards
 * scan the input concurrently (component-level parallelism). With
 * --batch, --input is a comma-separated list of files, each an
 * independent stream fanned out across the pool (stream-level
 * parallelism); --chunk feeds each stream through a StreamingSession
 * in chunks of the given size instead of one monolithic pass. Either
 * way the reports are byte-identical to a serial run (canonical
 * order). Parallel paths take --engine nfa, lazydfa, or auto. --chunk
 * also works single-stream (without --batch): the input is fed
 * through one StreamingSession (or PlannedSession under --engine
 * auto); it requires --engine nfa or auto and --threads 1 (the
 * streaming session has no lazy-DFA backend).
 *
 * --metrics prints the azoo::obs registry snapshot (JSON) after the
 * run; --metrics=FILE writes it to FILE instead.
 */

#include <fstream>
#include <iostream>
#include <optional>

#include "analysis/profile.hh"
#include "artifact/artifact.hh"
#include "core/stats.hh"
#include "engine/lazy_dfa_engine.hh"
#include "engine/multidfa_engine.hh"
#include "engine/nfa_engine.hh"
#include "engine/parallel_runner.hh"
#include "engine/planner.hh"
#include "engine/run_guard.hh"
#include "engine/streaming.hh"
#include "obs/obs.hh"
#include "tool_common.hh"
#include "util/cli.hh"
#include "util/logging.hh"
#include "util/net.hh"
#include "util/strings.hh"
#include "util/table.hh"
#include "util/timer.hh"

using namespace azoo;

namespace {

std::vector<uint8_t>
loadBytes(const std::string &path)
{
    std::ifstream f(path, std::ios::binary);
    if (!f) {
        std::cerr << path << ": cannot read\n";
        std::exit(tool::kExitBadData);
    }
    return {std::istreambuf_iterator<char>(f),
            std::istreambuf_iterator<char>()};
}

/** One line per truncated run so scripts notice partial results. */
void
noteTruncation(const SimResult &r)
{
    if (r.truncated()) {
        std::cerr << "run truncated after " << r.symbols
                  << " symbols: " << r.guardStatus.str() << "\n";
    }
}

/** --metrics          -> registry JSON on stdout
 *  --metrics=FILE     -> registry JSON written to FILE */
void
dumpMetrics(const Cli &cli)
{
    if (!cli.has("metrics"))
        return;
    const std::string dest = cli.get("metrics");
    const std::string json = obs::Registry::global().toJson();
    if (dest.empty() || dest == "true") {
        std::cout << json << "\n";
        return;
    }
    std::ofstream f(dest);
    if (!f)
        fatal(cat("cannot open for write: ", dest));
    f << json << "\n";
}

} // namespace

int
main(int argc, char **argv)
{
    Cli cli(argc, argv,
            {"automaton", "input", "engine", "cache-bytes",
             "no-prefilter", "reports", "by-code", "threads", "batch",
             "chunk", "deadline-ms", "symbol-budget", "max-states",
             "max-edges", "metrics", "load", "save"});
    const std::string apath = cli.get("automaton");
    const std::string ipath = cli.get("input");
    const bool useLoad = cli.has("load");
    if (useLoad) {
        std::vector<std::string> present;
        for (const char *f : tool::kLoadConflictFlags) {
            if (cli.has(f))
                present.push_back(f);
        }
        const std::string conflict = tool::loadFlagConflict(present);
        if (!conflict.empty())
            tool::usageError(conflict);
        if (cli.get("load").empty() || cli.get("load") == "true")
            tool::usageError("azoo_run: --load needs a file path");
    }
    if ((apath.empty() && !useLoad) || ipath.empty())
        tool::usageError("azoo_run: --automaton (or --load) and "
                         "--input are required");

    ParseLimits limits;
    if (cli.has("max-states"))
        limits.maxStates =
            static_cast<size_t>(cli.getInt("max-states", 0));
    if (cli.has("max-edges"))
        limits.maxEdges =
            static_cast<size_t>(cli.getInt("max-edges", 0));

    // Two automaton sources: the parse path (text formats, eager) or
    // the artifact path (validated mmap; the graph is materialized
    // only for engines that need it, so the serial-nfa fast path does
    // zero per-state work between open() and the first symbol).
    std::optional<Automaton> mat;
    std::optional<artifact::LoadedArtifact> art;
    if (useLoad) {
        const std::string lpath = cli.get("load");
        Expected<artifact::LoadedArtifact> la =
            artifact::loadArtifact(lpath);
        if (!la.ok()) {
            std::cerr << lpath << ": " << la.status().str() << "\n";
            return tool::exitCodeFor(la.status());
        }
        art = std::move(*std::move(la));
        std::cout << art->name() << ": " << art->elementCount()
                  << " elements, " << art->edgeCount()
                  << " edges (artifact v" << art->versionMajor()
                  << "." << art->versionMinor()
                  << (art->hasExecImage() ? ", exec image" : "")
                  << (art->mapped() ? ", mmap" : ", heap") << ")\n";
    } else {
        mat = tool::loadAnyOrExit(apath, limits);
        GraphStats s = computeStats(*mat);
        std::cout << mat->name() << ": " << s.states << " states, "
                  << s.counters << " counters, " << s.edges
                  << " edges, " << s.subgraphs << " subgraphs\n";
    }
    auto graph = [&]() -> const Automaton & {
        if (!mat) {
            Expected<Automaton> m = art->materialize(limits);
            if (!m.ok()) {
                std::cerr << cli.get("load") << ": "
                          << m.status().str() << "\n";
                std::exit(tool::exitCodeFor(m.status()));
            }
            mat = std::move(*std::move(m));
        }
        return *mat;
    };

    if (cli.has("save")) {
        const std::string spath = cli.get("save");
        if (spath.empty() || spath == "true")
            tool::usageError("azoo_run: --save needs a file path");
        Expected<artifact::ArtifactInfo> info =
            artifact::saveArtifact(spath, graph());
        if (!info.ok()) {
            std::cerr << spath << ": " << info.status().str() << "\n";
            return tool::exitCodeFor(info.status());
        }
        std::cout << "saved " << spath << ": " << info->fileBytes
                  << " bytes\n";
    }

    SimOptions opts;
    opts.countByCode = cli.getBool("by-code");
    // The guard is always wired, even with no deadline/budget flags:
    // SIGINT/SIGTERM raise its cancellation flag, so an interrupted
    // run stops at the next guard poll and reports a truncated but
    // exact result (with the usual truncation note) instead of dying
    // mid-write. SIGPIPE is ignored for the same reason — a closed
    // pager must surface as a write error, not kill the run.
    RunGuard guard;
    if (cli.has("deadline-ms"))
        guard.setDeadlineMs(
            static_cast<uint64_t>(cli.getInt("deadline-ms", 0)));
    if (cli.has("symbol-budget"))
        guard.setSymbolBudget(static_cast<uint64_t>(
            cli.getInt("symbol-budget", 0)));
    opts.guard = &guard;
    net::installCancelOnSignals(guard);
    const auto show =
        static_cast<size_t>(cli.getInt("reports", 10));
    opts.reportRecordLimit = show;

    const std::string engine = cli.get("engine", "nfa");
    const bool lazy = engine == "lazydfa";
    const bool planned = engine == "auto";
    const auto cacheBytes = static_cast<size_t>(
        cli.getInt("cache-bytes", 8 << 20));
    PlanOptions planOpts;
    planOpts.enablePrefilter = !cli.getBool("no-prefilter");
    planOpts.lazyCacheBytes = cacheBytes;
    const auto threads =
        static_cast<size_t>(cli.getInt("threads", 1));
    const bool batch = cli.getBool("batch");
    if ((batch || threads > 1) && engine != "nfa" && !lazy && !planned)
        tool::usageError("azoo_run: --batch/--threads require "
                         "--engine nfa, lazydfa, or auto");

    if (batch) {
        std::vector<std::vector<uint8_t>> streams;
        for (const std::string &p : split(ipath, ',')) {
            if (p.empty())
                tool::usageError("azoo_run: empty file name in "
                                 "--input list (stray comma?)");
            streams.push_back(loadBytes(p));
        }
        ParallelOptions popts;
        popts.threads = threads;
        popts.chunkBytes =
            static_cast<size_t>(cli.getInt("chunk", 0));
        popts.engine = planned ? ParallelEngine::kPlanned
                       : lazy  ? ParallelEngine::kLazyDfa
                               : ParallelEngine::kNfa;
        popts.lazyCacheBytes = cacheBytes;
        popts.plan = planOpts;
        popts.sim = opts;
        ParallelRunner runner(graph(), popts);
        Timer timer;
        BatchResult br = runner.runBatch(streams);
        const double secs = timer.seconds();
        for (size_t i = 0; i < br.perStream.size(); ++i) {
            if (!br.perStreamStatus[i].ok()) {
                std::cout << "stream " << i << ": FAILED: "
                          << br.perStreamStatus[i].str() << "\n";
                continue;
            }
            std::cout << "stream " << i << ": "
                      << br.perStream[i].symbols << " bytes, "
                      << br.perStream[i].reportCount << " reports\n";
            noteTruncation(br.perStream[i]);
        }
        std::cout << br.totalSymbols << " bytes total in "
                  << Table::fixed(secs, 3) << "s ("
                  << Table::fixed(br.totalSymbols / secs / 1e6, 1)
                  << " MB/s aggregate, " << runner.threads()
                  << " threads), " << br.totalReports << " reports\n";
        if (lazy) {
            std::cout << "lazy cache: " << br.totalLazyFlushes
                      << " flushes across streams\n";
        }
        dumpMetrics(cli);
        return br.allOk() ? tool::kExitOk : tool::kExitBadData;
    }

    const auto chunkBytes =
        static_cast<size_t>(cli.getInt("chunk", 0));
    if (chunkBytes != 0) {
        // StreamingSession is the interpreter; mirror the runBatch
        // rejection instead of silently substituting an engine.
        if (engine != "nfa" && !planned)
            tool::usageError("azoo_run: --chunk requires --engine nfa "
                             "or auto (the streaming session has no "
                             "lazy-DFA backend)");
        if (threads > 1)
            tool::usageError("azoo_run: --chunk with --threads > 1 "
                             "requires --batch");
    }

    auto input = loadBytes(ipath);
    Timer timer;
    SimResult r;
    if (chunkBytes != 0 && planned) {
        PlannedSession sess(graph(), planOpts);
        sess.options = opts;
        timer.reset();
        for (size_t pos = 0; pos < input.size();) {
            const size_t want =
                std::min(chunkBytes, input.size() - pos);
            const size_t got = sess.feed(input.data() + pos, want);
            pos += got;
            if (got < want)
                break;
        }
        r = sess.results();
        const PrefilterStats &pf = sess.prefilterStats();
        std::cout << "planned " << sess.plan().census() << ": "
                  << pf.candidates << " prefilter candidates, "
                  << pf.skippedBytes << " bytes skipped\n";
    } else if (chunkBytes != 0) {
        StreamingSession sess(graph());
        sess.options = opts;
        timer.reset();
        for (size_t pos = 0; pos < input.size();) {
            const size_t want =
                std::min(chunkBytes, input.size() - pos);
            const size_t got = sess.feed(input.data() + pos, want);
            pos += got;
            // Short feed = the guard stopped the session; stop the
            // chunk loop instead of spinning on refused chunks.
            if (got < want)
                break;
        }
        r = sess.results();
    } else if ((engine == "nfa" || lazy || planned) && threads > 1) {
        ParallelOptions popts;
        popts.threads = threads;
        popts.engine = planned ? ParallelEngine::kPlanned
                       : lazy  ? ParallelEngine::kLazyDfa
                               : ParallelEngine::kNfa;
        popts.lazyCacheBytes = cacheBytes;
        popts.plan = planOpts;
        popts.sim = opts;
        ParallelRunner runner(graph(), popts);
        std::cout << "sharded into " << runner.shardCount()
                  << " component groups on " << runner.threads()
                  << " threads\n";
        timer.reset();
        r = runner.simulateSharded(input);
    } else if (engine == "nfa") {
        // The artifact fast path: adopt the validated EXEC image
        // straight out of the mapping, no materialization at all.
        if (art && art->hasExecImage()) {
            NfaEngine e(art->execImage());
            r = e.simulate(input, opts);
        } else {
            NfaEngine e(graph());
            r = e.simulate(input, opts);
        }
    } else if (lazy) {
        LazyDfaOptions lo;
        lo.cacheBytes = cacheBytes;
        LazyDfaEngine e(graph(), lo);
        std::cout << "lazy DFA over " << e.lazyElements()
                  << " elements (" << e.symbolClasses()
                  << " symbol classes), " << e.fallbackComponents()
                  << " counter components interpreted\n";
        timer.reset();
        r = e.simulate(input, opts);
    } else if (planned) {
        PlannedEngine e(graph(), planOpts);
        std::cout << "planned " << e.plan().census() << " ("
                  << e.prefilterPatterns() << " scan literals)\n";
        timer.reset();
        r = e.simulate(input, opts);
        const PrefilterStats &pf = e.lastPrefilterStats();
        if (e.prefilterPatterns()) {
            const double pct = r.symbols
                ? 100.0 * static_cast<double>(pf.skippedBytes) /
                      static_cast<double>(r.symbols)
                : 0.0;
            std::cout << "prefilter: " << pf.candidates
                      << " candidates, " << pf.skippedBytes
                      << " bytes skipped ("
                      << Table::fixed(pct, 1) << "%)\n";
        }
    } else if (engine == "dfa" || engine == "multidfa") {
        // Profile facts let compilation skip subset constructions the
        // blowup estimate already rules out; results are unchanged.
        const std::vector<analysis::ComponentProfile> profiles =
            analysis::inferProfiles(graph());
        MultiDfaOptions mo;
        mo.lazyCacheBytes = cacheBytes;
        mo.profiles = &profiles;
        MultiDfaEngine e(graph(), mo);
        std::cout << "compiled " << e.compiledComponents()
                  << " DFAs (" << e.totalDfaStates() << " states), "
                  << e.fallbackComponents() << " lazy-DFA fallbacks\n";
        timer.reset();
        r = e.simulate(input, opts);
    } else {
        tool::usageError(cat("azoo_run: unknown engine '", engine,
                             "' (nfa|multidfa|lazydfa|auto)"));
    }
    const double secs = timer.seconds();

    noteTruncation(r);
    std::cout << r.symbols << " bytes in "
              << Table::fixed(secs, 3) << "s ("
              << Table::fixed(static_cast<double>(r.symbols) / secs /
                              1e6, 1)
              << " MB/s), " << r.reportCount << " reports";
    if (engine == "nfa" || lazy) {
        std::cout << ", avg active set "
                  << Table::fixed(r.avgActiveSet(), 1);
    }
    std::cout << "\n";
    if (lazy) {
        std::cout << "lazy cache: " << r.lazyStates << " state-sets, "
                  << r.lazyFlushes << " flushes\n";
    }

    for (size_t i = 0; i < r.reports.size() && i < show; ++i) {
        std::cout << "  report offset=" << r.reports[i].offset
                  << " code=" << r.reports[i].code << "\n";
    }
    if (opts.countByCode) {
        std::cout << "reports by code:\n";
        for (const auto &[code, count] : r.byCode)
            std::cout << "  " << code << ": " << count << "\n";
    }
    dumpMetrics(cli);
    return 0;
}
