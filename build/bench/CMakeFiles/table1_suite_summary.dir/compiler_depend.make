# Empty compiler generated dependencies file for table1_suite_summary.
# This may be replaced when dependencies are built.
