/**
 * @file
 * Section IX: sub-byte pattern sets.
 *
 * (A) YARA nibble-level conversion: statistics of the hex-dialect ->
 *     byte-regex -> automata pipeline, and the widening pass for the
 *     Wide variant (states roughly double; every other state matches
 *     only zero).
 * (B) File Carving 8-striding: per-pattern bit-automaton size vs
 *     strided byte-automaton size, plus a live demonstration that the
 *     strided zip-header pattern validates MS-DOS timestamp bit
 *     fields (the paper's worked example) against the disk image.
 */

#include <iostream>

#include "bench/common.hh"
#include "core/stats.hh"
#include "engine/nfa_engine.hh"
#include "transform/stride.hh"
#include "transform/widen.hh"
#include "util/table.hh"
#include "zoo/filecarve.hh"
#include "zoo/yara.hh"

using namespace azoo;

int
main(int argc, char **argv)
{
    bench::BenchConfig cfg = bench::parseBenchFlags(argc, argv);

    std::cout << "Section IX-A: YARA nibble-level patterns\n\n";
    {
        zoo::Benchmark narrow = zoo::makeYaraBenchmark(cfg.zoo, false);
        zoo::Benchmark wide = zoo::makeYaraBenchmark(cfg.zoo, true);
        GraphStats sn = computeStats(narrow.automaton);
        GraphStats sw = computeStats(wide.automaton);

        uint64_t zero_only = 0;
        for (const auto &e : wide.automaton.elements()) {
            zero_only += e.symbols.count() == 1 && e.symbols.test(0);
        }

        Table t({"Benchmark", "Rules", "States", "Avg subgraph",
                 "Zero-only states"});
        t.addRow({"YARA", narrow.meta.at("rules"),
                  Table::num(sn.states),
                  Table::fixed(sn.avgSubgraph, 1), "-"});
        t.addRow({"YARA Wide", wide.meta.at("rules"),
                  Table::num(sw.states),
                  Table::fixed(sw.avgSubgraph, 1),
                  Table::num(zero_only)});
        t.print(std::cout);
        std::cout << "\nWidening pads the automata with states that "
                     "only recognize zero: "
                  << Table::percent(100.0 * zero_only / sw.states)
                  << " of Wide states are zero-matchers (paper: "
                     "every other state).\n\n";
    }

    std::cout << "Section IX-B: File Carving bit-level patterns and "
                 "8-striding\n\n";
    {
        Automaton bit = zoo::buildZipHeaderBitAutomaton();
        Automaton strided = strideToBytes(bit);
        GraphStats sb = computeStats(bit);
        GraphStats ss = computeStats(strided);

        Table t({"Form", "States", "Edges", "Edges/Node",
                 "Symbols/cycle"});
        t.addRow({"bit-level zip header", Table::num(sb.states),
                  Table::num(sb.edges),
                  Table::fixed(sb.edgesPerNode, 2), "1 bit"});
        t.addRow({"8-strided byte automaton", Table::num(ss.states),
                  Table::num(ss.edges),
                  Table::fixed(ss.edgesPerNode, 2), "8 bits"});
        t.print(std::cout);

        zoo::Benchmark fc = zoo::makeFileCarveBenchmark(cfg.zoo);
        NfaEngine e(fc.automaton);
        SimOptions opts;
        opts.countByCode = true;
        opts.recordReports = false;
        auto r = e.simulate(fc.input, opts);

        Table hits({"Pattern", "Reports"});
        const auto &names = zoo::fileCarvePatternNames();
        for (uint32_t i = 0; i < names.size(); ++i) {
            auto it = r.byCode.find(i);
            hits.addRow({names[i],
                         Table::num(it == r.byCode.end()
                                        ? 0 : it->second)});
        }
        std::cout << "\nFile Carving on the " << fc.input.size()
                  << "B disk image (" << computeStats(
                         fc.automaton).subgraphs
                  << " subgraphs):\n\n";
        hits.print(std::cout);
        std::cout << "\nEvery zip-local-header hit passed the MS-DOS "
                     "timestamp bit-field validation (sec/2<=29, "
                     "min<=59 across the byte boundary, hour<=23, "
                     "month 1-12, day 1-31).\n";
    }
    return 0;
}
