#include "ml/random_forest.hh"

#include <atomic>
#include <thread>

#include "util/logging.hh"

namespace azoo {
namespace ml {

void
RandomForest::train(const Dataset &train_set, const ForestParams &params)
{
    params_ = params;
    featureMap_ = selectFeatures(train_set, params.features);
    const Dataset proj = projectFeatures(train_set, featureMap_);

    TreeParams tp;
    tp.maxLeaves = params.maxLeaves;
    tp.maxDepth = params.maxDepth;
    tp.bins = params.bins;

    Rng rng(params.seed);
    trees_.assign(params.numTrees, DecisionTree());
    for (int t = 0; t < params.numTrees; ++t) {
        // Bootstrap sample (bagging).
        std::vector<size_t> idx(proj.size());
        for (auto &i : idx)
            i = rng.nextBelow(proj.size());
        Rng tree_rng = rng.fork();
        trees_[t].train(proj, idx, tp, tree_rng);
    }
}

int
RandomForest::predict(const std::vector<uint8_t> &x) const
{
    std::vector<uint8_t> proj(featureMap_.size());
    for (size_t j = 0; j < featureMap_.size(); ++j)
        proj[j] = x[featureMap_[j]];

    int votes[64] = {};
    for (const auto &t : trees_)
        ++votes[t.predict(proj.data())];
    int best = 0;
    for (int k = 1; k < 64; ++k) {
        if (votes[k] > votes[best])
            best = k;
    }
    return best;
}

std::vector<int>
RandomForest::predictBatch(const Dataset &d, int threads) const
{
    std::vector<int> out(d.size());
    if (threads <= 1) {
        for (size_t i = 0; i < d.size(); ++i)
            out[i] = predict(d.x[i]);
        return out;
    }
    std::atomic<size_t> next{0};
    std::vector<std::thread> pool;
    pool.reserve(threads);
    for (int w = 0; w < threads; ++w) {
        pool.emplace_back([&]() {
            for (;;) {
                const size_t i = next.fetch_add(64);
                if (i >= d.size())
                    return;
                const size_t hi = std::min(i + 64, d.size());
                for (size_t k = i; k < hi; ++k)
                    out[k] = predict(d.x[k]);
            }
        });
    }
    for (auto &t : pool)
        t.join();
    return out;
}

double
RandomForest::accuracy(const Dataset &d) const
{
    if (d.size() == 0)
        return 0;
    auto pred = predictBatch(
        d, static_cast<int>(std::thread::hardware_concurrency()));
    size_t ok = 0;
    for (size_t i = 0; i < d.size(); ++i)
        ok += pred[i] == d.y[i];
    return static_cast<double>(ok) / d.size();
}

} // namespace ml
} // namespace azoo
