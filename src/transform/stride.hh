/**
 * @file
 * 8-striding: transform a bit-level automaton (alphabet {0,1}) into a
 * byte-level automaton that consumes 8 bits per cycle (Section IX-B of
 * the paper; the technique is due to Becchi).
 *
 * Bits are consumed MSB-first: the first bit of each byte is its most
 * significant bit, matching how file-format bit fields are documented.
 *
 * The construction walks 8-bit paths between "boundary" states (states
 * reachable at byte-aligned bit offsets) while tracking, as a 256-bit
 * set, which byte values realize each path. The resulting edge-labeled
 * byte NFA is then re-homogenized by splitting each boundary state
 * into one STE per distinct incoming byte set.
 *
 * Requirements (checked): the input automaton is a pure bit automaton
 * (labels within {0,1}, no counters) whose starts are all
 * kStartOfData, and every reporting state is only reachable at bit
 * offsets congruent to 7 mod 8 (i.e. patterns are whole bytes).
 * Unanchored bit searches are expressed before striding with
 * bits::addAlignmentRing(), which re-arms start states at every byte
 * boundary.
 */

#ifndef AZOO_TRANSFORM_STRIDE_HH
#define AZOO_TRANSFORM_STRIDE_HH

#include "core/automaton.hh"

namespace azoo {

/** 8-stride @p bit_automaton into a byte automaton. fatal() if the
 *  preconditions above are violated. */
Automaton strideToBytes(const Automaton &bit_automaton);

} // namespace azoo

#endif // AZOO_TRANSFORM_STRIDE_HH
