/**
 * @file
 * Deterministic fault injection for exercising recovery paths.
 *
 * Error-handling code that only runs when the OS misbehaves is
 * error-handling code that never runs in CI. This module plants named
 * injection points inside the library (allocation failure in the
 * parsers, truncated reads in the stream slurpers, forced RunGuard
 * expiry in the engines, connection-level failures in the match
 * service) that tests arm deterministically: either "fire on the Nth
 * check" or a seeded pseudo-random schedule, so a failing recovery
 * path replays bit-identically from its seed.
 *
 * Schedules can also be injected into a *spawned* process without
 * recompiling: armFromEnv() parses the AZOO_FAULT_SPEC environment
 * variable ("point:after:N;point:random:SEED:PERMILLE", see
 * parseSpec()), which is how the serve tests arm a chaos schedule in
 * an azoo_serve daemon they fork.
 *
 * The checks compile to a constant `false` when AZOO_FAULT_INJECTION
 * is 0 (the release/production configuration; see the CMake option of
 * the same name), so shipping binaries carry no injection branches.
 * The spec *parser* stays available in that configuration (specs
 * still validate; arming is a no-op), so tooling behaves identically.
 *
 * All state is process-global and atomic; arming from a test thread
 * while worker threads check is safe. Points are disarmed by default
 * and after firing an armAfter() shot.
 */

#ifndef AZOO_UTIL_FAULT_HH
#define AZOO_UTIL_FAULT_HH

#include <cstddef>
#include <cstdint>
#include <string_view>
#include <vector>

#include "util/status.hh"

#ifndef AZOO_FAULT_INJECTION
#define AZOO_FAULT_INJECTION 1
#endif

namespace azoo {
namespace fault {

/** Injection points compiled into the library. */
enum class Point : uint8_t {
    kAllocFail,     ///< parser element/edge allocation fails
    kTruncatedRead, ///< stream slurp loses its tail
    kGuardExpiry,   ///< RunGuard reports expiry regardless of budget
    kSessionDrop,   ///< serve: session torn down as if the client died
    kSlowConsumer,  ///< serve: reply writes dribble one byte at a time
    kAcceptFail,    ///< serve: accept() of a new connection fails
};

inline constexpr size_t kPointCount = 6;

/** Stable name ("alloc-fail", ..., "session-drop", "slow-consumer",
 *  "accept-fail"). */
const char *pointName(Point p);

/** One parsed AZOO_FAULT_SPEC entry. */
struct SpecEntry {
    Point point = Point::kAllocFail;
    enum class Mode : uint8_t { kOff, kAfter, kRandom } mode = Mode::kOff;
    uint64_t skip = 0;     ///< kAfter: checks to skip before the shot
    uint64_t seed = 0;     ///< kRandom: splitmix64 seed
    uint32_t perMille = 0; ///< kRandom: firing probability / 1000
};

/**
 * Parse a fault schedule spec. Grammar (whitespace-free):
 *   spec    := entry (';' entry)*            (empty spec = no entries)
 *   entry   := point ':' sched
 *   point   := "alloc-fail" | ... | "accept-fail"   (pointName())
 *   sched   := "off" | "after" ':' N | "random" ':' SEED ':' PERMILLE
 * Numbers are decimal; PERMILLE must be <= 1000. Returns
 * kInvalidArgument naming the offending entry on any malformed input.
 */
Expected<std::vector<SpecEntry>> parseSpec(std::string_view spec);

/** parseSpec() + arm every entry (armAfter/armRandom/disarm). With
 *  fault injection compiled out, parsing still validates but arming
 *  is a no-op. */
Status applySpec(std::string_view spec);

/** applySpec(getenv("AZOO_FAULT_SPEC")); OK when the variable is
 *  unset or empty. Long-running tools call this at startup. */
Status armFromEnv();

#if AZOO_FAULT_INJECTION

/** Arm @p p to fire exactly once, on the (skip+1)-th check; the
 *  point disarms itself after firing. */
void armAfter(Point p, uint64_t skip);

/** Arm @p p with a seeded Bernoulli schedule: each check fires with
 *  probability @p perMille / 1000, drawn from a deterministic
 *  splitmix64 stream. Stays armed until disarmed. */
void armRandom(Point p, uint64_t seed, uint32_t perMille);

/** Disarm one point / all points. */
void disarm(Point p);
void disarmAll();

/** Checks made against @p p since it was last armed. */
uint64_t checkCount(Point p);

/** The hot-path check: true iff the armed schedule fires now. */
bool shouldFail(Point p);

#else

inline void armAfter(Point, uint64_t) {}
inline void armRandom(Point, uint64_t, uint32_t) {}
inline void disarm(Point) {}
inline void disarmAll() {}
inline uint64_t checkCount(Point) { return 0; }
inline constexpr bool shouldFail(Point) { return false; }

#endif // AZOO_FAULT_INJECTION

} // namespace fault
} // namespace azoo

#endif // AZOO_UTIL_FAULT_HH
