/**
 * @file
 * CRISPR off-target search example: build fuzzy-match filters for a
 * set of guide RNAs (CasOFFinder-style substitution tolerance and
 * CasOT-style edit-distance tolerance, both with the NGG PAM), scan a
 * genome-sized DNA stream, and list candidate off-target sites.
 *
 * Usage: dna_offtarget [--guides N] [--genome BYTES] [--seed X]
 */

#include <iostream>

#include "core/stats.hh"
#include "engine/nfa_engine.hh"
#include "input/dna.hh"
#include "util/cli.hh"
#include "util/table.hh"
#include "util/timer.hh"
#include "zoo/crispr.hh"

int
main(int argc, char **argv)
{
    using namespace azoo;

    Cli cli(argc, argv, {"guides", "genome", "seed"});
    const int guides = static_cast<int>(cli.getInt("guides", 25));
    const size_t genome_len =
        static_cast<size_t>(cli.getInt("genome", 2 << 20));
    const uint64_t seed =
        static_cast<uint64_t>(cli.getInt("seed", 7));

    // Generate guides and both filter styles.
    Rng rng(seed);
    std::vector<std::string> guide_seqs;
    Automaton off("off"), ot("ot");
    for (int i = 0; i < guides; ++i) {
        std::string g = input::randomDnaString(20, rng);
        zoo::appendCrisprFilter(off, g, zoo::CrisprKind::kCasOffinder,
                                i);
        zoo::appendCrisprFilter(ot, g, zoo::CrisprKind::kCasOt, i);
        guide_seqs.push_back(std::move(g));
    }

    // Genome with a few planted off-target sites.
    auto genome = input::randomDna(genome_len, seed ^ 0x6e0eULL);
    Rng plant(seed ^ 0x11ULL);
    for (size_t at = 10000; at + 23 < genome.size();
         at += genome.size() / 4) {
        const std::string &g = guide_seqs[plant.nextBelow(guides)];
        input::plantWithMismatches(genome, at, g, 1, plant);
        genome[at + 20] = 'a';
        genome[at + 21] = 'g';
        genome[at + 22] = 'g';
    }

    Table t({"Filter style", "States", "Sites found", "Scan MB/s"});
    for (auto *a : {&off, &ot}) {
        NfaEngine e(*a);
        Timer timer;
        SimResult r = e.simulate(genome);
        t.addRow({a->name() == "off"
                      ? "CasOFFinder-style (<=1 substitution + NGG)"
                      : "CasOT-style (edit distance <=2 + NGG)",
                  Table::num(a->size()), Table::num(r.reportCount),
                  Table::fixed(genome.size() / timer.seconds() / 1e6,
                               1)});
        for (size_t i = 0; i < std::min<size_t>(r.reports.size(), 4);
             ++i) {
            const Report &rep = r.reports[i];
            std::cout << "  guide " << rep.code
                      << " off-target site ending at "
                      << rep.offset << " ("
                      << (a == &off ? "OFF" : "OT") << ")\n";
        }
    }
    std::cout << "\n";
    t.print(std::cout);
    std::cout << "\nThe OT filters tolerate indels as well as "
                 "substitutions, so they find a superset of the OFF "
                 "sites at higher automaton cost (Table I: 101 vs 37 "
                 "states per filter in the paper's benchmarks).\n";
    return 0;
}
