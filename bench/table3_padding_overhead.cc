/**
 * @file
 * Table III: impact of AP-specific soft-reconfiguration padding on
 * CPU automata engines (Section VII).
 *
 * Runs the Seq Match 6-wide benchmark in its exact (6p) and padded
 * (10p) forms on the enabled-set interpreter (the VASim row) and on
 * the compiled multi-DFA engine (the Hyperscan row), and reports the
 * runtime overhead the padding states induce on each. The paper
 * measures 26.7% overhead for VASim and 2.92% for Hyperscan: the
 * interpreter pays for every enabled state, while the compiled
 * engine's per-symbol cost is one table lookup per component
 * regardless of padding.
 */

#include <algorithm>
#include <iostream>

#include "bench/common.hh"
#include "engine/multidfa_engine.hh"
#include "engine/nfa_engine.hh"
#include "util/table.hh"
#include "util/timer.hh"
#include "zoo/seqmatch.hh"

using namespace azoo;

namespace {

/** Median-of-3 wall time of a runnable. */
template <typename F>
double
medianSeconds(F &&fn)
{
    double t[3];
    for (int i = 0; i < 3; ++i) {
        Timer timer;
        fn();
        t[i] = timer.seconds();
    }
    std::sort(t, t + 3);
    return t[1];
}

} // namespace

int
main(int argc, char **argv)
{
    bench::BenchConfig cfg = bench::parseBenchFlags(argc, argv);

    zoo::SeqMatchParams exact;   // 6w 6p
    zoo::SeqMatchParams padded;  // 6w 10p
    padded.filterWidth = 10;

    zoo::Benchmark b_exact =
        zoo::makeSeqMatchBenchmark(cfg.zoo, exact);
    zoo::Benchmark b_padded =
        zoo::makeSeqMatchBenchmark(cfg.zoo, padded);

    std::cout << "Table III: AP-specific padding overhead on CPU "
                 "engines\n(Seq Match, " << b_exact.automaton.size()
              << " vs " << b_padded.automaton.size()
              << " states, input " << b_exact.input.size()
              << "B, scale=" << cfg.zoo.scale << ")\n\n";

    SimOptions opts;
    opts.recordReports = false;
    opts.computeActiveSet = false;

    NfaEngine nfa_exact(b_exact.automaton);
    NfaEngine nfa_padded(b_padded.automaton);
    const double v6 = medianSeconds(
        [&] { nfa_exact.simulate(b_exact.input, opts); });
    const double v10 = medianSeconds(
        [&] { nfa_padded.simulate(b_exact.input, opts); });

    MultiDfaEngine dfa_exact(b_exact.automaton);
    MultiDfaEngine dfa_padded(b_padded.automaton);
    const double h6 = medianSeconds(
        [&] { dfa_exact.simulate(b_exact.input, opts); });
    const double h10 = medianSeconds(
        [&] { dfa_padded.simulate(b_exact.input, opts); });

    Table t({"CPU Engine", "6 Wide (s)", "6 Wide Padded (s)",
             "Overhead", "Paper overhead"});
    t.addRow({"NfaEngine (VASim analog)", Table::fixed(v6, 3),
              Table::fixed(v10, 3),
              Table::percent(100 * (v10 - v6) / v6),
              "26.7%"});
    t.addRow({"MultiDfaEngine (Hyperscan analog)", Table::fixed(h6, 3),
              Table::fixed(h10, 3),
              Table::percent(100 * (h10 - h6) / h6),
              "2.92%"});
    t.print(std::cout);

    std::cout << "\nBoth variants recognize the same language; "
                 "verify: reports "
              << NfaEngine(b_exact.automaton)
                     .simulate(b_exact.input)
                     .reportCount
              << " (exact) vs "
              << NfaEngine(b_padded.automaton)
                     .simulate(b_exact.input)
                     .reportCount
              << " (padded) on the same input.\n";
    return 0;
}
