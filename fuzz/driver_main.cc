/**
 * @file
 * Standalone driver for the fuzz harnesses when libFuzzer is not
 * available (gcc builds). Feeds each file named on the command line
 * to LLVMFuzzerTestOneInput, so the same harness binaries double as
 * corpus regression runners:
 *
 *     fuzz_mnrl corpus/mnrl/seed_basic.mnrl tests/data/bad/x.mnrl ...
 *
 * Exit is non-zero only if the harness itself crashes, which is
 * exactly the signal the CI fuzz-smoke leg watches for.
 */

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

extern "C" int LLVMFuzzerTestOneInput(const uint8_t *data,
                                      size_t size);

int
main(int argc, char **argv)
{
    int fed = 0;
    for (int i = 1; i < argc; ++i) {
        std::ifstream f(argv[i], std::ios::binary);
        if (!f) {
            std::fprintf(stderr, "skip (unreadable): %s\n", argv[i]);
            continue;
        }
        std::string buf((std::istreambuf_iterator<char>(f)),
                        std::istreambuf_iterator<char>());
        LLVMFuzzerTestOneInput(
            reinterpret_cast<const uint8_t *>(buf.data()), buf.size());
        ++fed;
    }
    std::fprintf(stderr, "ran %d corpus file(s) without crashing\n",
                 fed);
    return 0;
}
