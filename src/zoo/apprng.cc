#include "zoo/apprng.hh"

#include "util/logging.hh"
#include "util/rng.hh"

namespace azoo {
namespace zoo {

size_t
appendPrngChain(Automaton &a, int sides, int groups, uint32_t code)
{
    if (256 % sides != 0)
        fatal(cat("apprng: sides ", sides, " must divide 256"));
    const size_t before = a.size();
    const int slice = 256 / sides;

    std::vector<std::vector<ElementId>> face(groups);
    for (int g = 0; g < groups; ++g) {
        for (int f = 0; f < sides; ++f) {
            const auto lo = static_cast<uint8_t>(f * slice);
            const auto hi = static_cast<uint8_t>(f * slice + slice - 1);
            // The first face of the last group is the chain's output
            // tap: it reports each time the "die" lands on it.
            const bool tap = g == groups - 1 && f == 0;
            face[g].push_back(a.addSte(
                CharSet::range(lo, hi),
                g == 0 ? StartType::kStartOfData : StartType::kNone,
                tap, code));
        }
    }
    for (int g = 0; g < groups; ++g) {
        for (auto from : face[g]) {
            for (auto to : face[(g + 1) % groups])
                a.addEdge(from, to);
        }
    }
    return a.size() - before;
}

Benchmark
makeApPrngBenchmark(const ZooConfig &cfg, int sides)
{
    Benchmark b;
    b.name = cat("AP PRNG ", sides, "-sided");
    b.domain = "Pseudo-random number generation";
    b.inputDesc = "Pseudo-random bytes";
    b.paperStates = sides == 4 ? 20000 : 72000;
    b.paperActiveSet = sides == 4 ? 4500 : 2500;

    const int groups = sides == 4 ? 5 : 9;
    const size_t n = cfg.scaled(1000);
    Automaton a(b.name);
    for (size_t i = 0; i < n; ++i)
        appendPrngChain(a, sides, groups, static_cast<uint32_t>(i));

    Rng rng(cfg.seed ^ 0x9199ULL);
    b.input = rng.randomBytes(cfg.inputBytes);
    b.automaton = std::move(a);
    b.meta["chains"] = std::to_string(n);
    return b;
}

} // namespace zoo
} // namespace azoo
