#include "util/net.hh"

#include <arpa/inet.h>
#include <atomic>
#include <cerrno>
#include <csignal>
#include <cstring>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "engine/run_guard.hh"
#include "util/logging.hh"

namespace azoo {
namespace net {

namespace {

/** errno -> short name for Status messages (the common socket set;
 *  anything else prints the number). */
std::string
errnoName(int err)
{
    switch (err) {
      case EPIPE: return "EPIPE";
      case ECONNRESET: return "ECONNRESET";
      case ECONNREFUSED: return "ECONNREFUSED";
      case EADDRINUSE: return "EADDRINUSE";
      case EMFILE: return "EMFILE";
      case ENFILE: return "ENFILE";
      case EACCES: return "EACCES";
      case ENOENT: return "ENOENT";
      case EINTR: return "EINTR";
      case ETIMEDOUT: return "ETIMEDOUT";
      default: return cat("errno ", err);
    }
}

Status
ioError(const char *op, int err)
{
    return Status(ErrorCode::kIoError, cat(op, ": ", errnoName(err)));
}

/** "unix:PATH" / "tcp:PORT" -> kind. */
enum class AddrKind { kUnix, kTcp, kBad };

AddrKind
parseAddr(const std::string &addr, std::string &path, uint16_t &port)
{
    if (addr.rfind("unix:", 0) == 0) {
        path = addr.substr(5);
        if (path.empty() || path.size() >= sizeof(sockaddr_un{}.sun_path))
            return AddrKind::kBad;
        return AddrKind::kUnix;
    }
    if (addr.rfind("tcp:", 0) == 0) {
        const std::string p = addr.substr(4);
        if (p.empty() || p.size() > 5)
            return AddrKind::kBad;
        uint32_t v = 0;
        for (char c : p) {
            if (c < '0' || c > '9')
                return AddrKind::kBad;
            v = v * 10 + static_cast<uint32_t>(c - '0');
        }
        if (v > 65535)
            return AddrKind::kBad;
        port = static_cast<uint16_t>(v);
        return AddrKind::kTcp;
    }
    return AddrKind::kBad;
}

Status
badAddr(const std::string &addr)
{
    return Status(ErrorCode::kInvalidArgument,
                  cat("bad address '", addr,
                      "' (expected unix:PATH or tcp:PORT)"));
}

} // namespace

void
Fd::close()
{
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
}

void
ignoreSigpipe()
{
    ::signal(SIGPIPE, SIG_IGN);
}

Status
setNonBlocking(int fd)
{
    const int flags = ::fcntl(fd, F_GETFL, 0);
    if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0)
        return ioError("fcntl", errno);
    return Status();
}

Expected<Fd>
listenOn(const std::string &addr, int backlog)
{
    std::string path;
    uint16_t port = 0;
    const AddrKind kind = parseAddr(addr, path, port);
    if (kind == AddrKind::kBad)
        return badAddr(addr);

    const int domain = kind == AddrKind::kUnix ? AF_UNIX : AF_INET;
    Fd fd(::socket(domain, SOCK_STREAM | SOCK_CLOEXEC, 0));
    if (!fd.valid())
        return ioError("socket", errno);

    if (kind == AddrKind::kUnix) {
        ::unlink(path.c_str()); // stale socket from a previous run
        sockaddr_un sa{};
        sa.sun_family = AF_UNIX;
        std::memcpy(sa.sun_path, path.c_str(), path.size() + 1);
        if (::bind(fd.get(), reinterpret_cast<sockaddr *>(&sa),
                   sizeof(sa)) < 0)
            return ioError("bind", errno);
    } else {
        const int one = 1;
        ::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one,
                     sizeof(one));
        sockaddr_in sa{};
        sa.sin_family = AF_INET;
        sa.sin_port = htons(port);
        sa.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
        if (::bind(fd.get(), reinterpret_cast<sockaddr *>(&sa),
                   sizeof(sa)) < 0)
            return ioError("bind", errno);
    }
    if (::listen(fd.get(), backlog) < 0)
        return ioError("listen", errno);
    if (Status st = setNonBlocking(fd.get()); !st.ok())
        return st;
    return fd;
}

uint16_t
localPort(int fd)
{
    sockaddr_in sa{};
    socklen_t len = sizeof(sa);
    if (::getsockname(fd, reinterpret_cast<sockaddr *>(&sa), &len) < 0 ||
        sa.sin_family != AF_INET)
        return 0;
    return ntohs(sa.sin_port);
}

Expected<Fd>
connectTo(const std::string &addr)
{
    std::string path;
    uint16_t port = 0;
    const AddrKind kind = parseAddr(addr, path, port);
    if (kind == AddrKind::kBad)
        return badAddr(addr);

    const int domain = kind == AddrKind::kUnix ? AF_UNIX : AF_INET;
    Fd fd(::socket(domain, SOCK_STREAM | SOCK_CLOEXEC, 0));
    if (!fd.valid())
        return ioError("socket", errno);

    int rc = 0;
    if (kind == AddrKind::kUnix) {
        sockaddr_un sa{};
        sa.sun_family = AF_UNIX;
        std::memcpy(sa.sun_path, path.c_str(), path.size() + 1);
        rc = ::connect(fd.get(), reinterpret_cast<sockaddr *>(&sa),
                       sizeof(sa));
    } else {
        sockaddr_in sa{};
        sa.sin_family = AF_INET;
        sa.sin_port = htons(port);
        sa.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
        rc = ::connect(fd.get(), reinterpret_cast<sockaddr *>(&sa),
                       sizeof(sa));
    }
    if (rc < 0)
        return ioError("connect", errno);
    return fd;
}

Expected<Fd>
acceptOn(int listenFd, bool &wouldBlock)
{
    wouldBlock = false;
    const int fd = ::accept4(listenFd, nullptr, nullptr,
                             SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
        if (errno == EAGAIN || errno == EWOULDBLOCK) {
            wouldBlock = true;
            return Fd();
        }
        return ioError("accept", errno);
    }
    return Fd(fd);
}

Expected<IoResult>
readSome(int fd, void *buf, size_t len)
{
    IoResult r;
    const ssize_t n = ::read(fd, buf, len);
    if (n > 0) {
        r.n = static_cast<size_t>(n);
        return r;
    }
    if (n == 0) {
        r.eof = true;
        return r;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
        r.wouldBlock = true;
        return r;
    }
    if (errno == EINTR) {
        r.wouldBlock = true; // retry on the next poll round
        return r;
    }
    return ioError("read", errno);
}

Expected<IoResult>
writeSome(int fd, const void *buf, size_t len)
{
    IoResult r;
    const ssize_t n = ::write(fd, buf, len);
    if (n >= 0) {
        r.n = static_cast<size_t>(n);
        return r;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
        r.wouldBlock = true;
        return r;
    }
    if (errno == EINTR) {
        r.wouldBlock = true;
        return r;
    }
    return ioError("write", errno);
}

namespace {

Status
pollFor(int fd, short events, int timeoutMs)
{
    pollfd p{fd, events, 0};
    const int rc = ::poll(&p, 1, timeoutMs > 0 ? timeoutMs : -1);
    if (rc < 0 && errno != EINTR)
        return ioError("poll", errno);
    if (rc == 0)
        return Status(ErrorCode::kDeadlineExceeded, "io timeout");
    return Status();
}

} // namespace

Status
writeAll(int fd, const void *buf, size_t len, int timeoutMs)
{
    const auto *p = static_cast<const uint8_t *>(buf);
    while (len > 0) {
        Expected<IoResult> r = writeSome(fd, p, len);
        if (!r.ok())
            return r.status();
        if (r->wouldBlock || r->n == 0) {
            if (Status st = pollFor(fd, POLLOUT, timeoutMs); !st.ok())
                return st;
            continue;
        }
        p += r->n;
        len -= r->n;
    }
    return Status();
}

Status
readAll(int fd, void *buf, size_t len, int timeoutMs)
{
    auto *p = static_cast<uint8_t *>(buf);
    while (len > 0) {
        Expected<IoResult> r = readSome(fd, p, len);
        if (!r.ok())
            return r.status();
        if (r->eof)
            return Status(ErrorCode::kIoError, "read: eof");
        if (r->wouldBlock) {
            if (Status st = pollFor(fd, POLLIN, timeoutMs); !st.ok())
                return st;
            continue;
        }
        p += r->n;
        len -= r->n;
    }
    return Status();
}

namespace {

std::atomic<uint32_t> g_pendingSignals{0};

extern "C" void
selfPipeHandler(int signo)
{
    SelfPipe::global().notify(signo);
}

std::atomic<RunGuard *> g_signalGuard{nullptr};

extern "C" void
cancelHandler(int signo)
{
    if (RunGuard *g = g_signalGuard.load(std::memory_order_relaxed))
        g->cancel(); // lock-free atomic store: async-signal-safe
    SelfPipe::global().notify(signo);
}

void
installHandler(void (*handler)(int), bool withHup)
{
    struct sigaction sa {};
    sa.sa_handler = handler;
    ::sigemptyset(&sa.sa_mask);
    sa.sa_flags = SA_RESTART;
    ::sigaction(SIGTERM, &sa, nullptr);
    ::sigaction(SIGINT, &sa, nullptr);
    if (withHup)
        ::sigaction(SIGHUP, &sa, nullptr);
}

} // namespace

SelfPipe::SelfPipe()
{
    int fds[2] = {-1, -1};
    if (::pipe2(fds, O_NONBLOCK | O_CLOEXEC) < 0)
        panic("SelfPipe: pipe2 failed");
    read_ = Fd(fds[0]);
    write_ = Fd(fds[1]);
}

SelfPipe &
SelfPipe::global()
{
    static SelfPipe pipe;
    return pipe;
}

void
SelfPipe::notify(int signo)
{
    if (signo >= 0 && signo < 32)
        g_pendingSignals.fetch_or(sigBit(signo),
                                  std::memory_order_relaxed);
    const uint8_t b = 1;
    // A full pipe already guarantees a wakeup; ignore the result.
    [[maybe_unused]] ssize_t n = ::write(write_.get(), &b, 1);
}

uint32_t
SelfPipe::drain()
{
    uint8_t buf[64];
    while (::read(read_.get(), buf, sizeof(buf)) > 0) {
    }
    return g_pendingSignals.exchange(0, std::memory_order_relaxed);
}

void
installTermHandlers()
{
    ignoreSigpipe();
    (void)SelfPipe::global(); // create before any signal can arrive
    installHandler(&selfPipeHandler, /*withHup=*/true);
}

void
installCancelOnSignals(RunGuard &guard)
{
    ignoreSigpipe();
    (void)SelfPipe::global();
    g_signalGuard.store(&guard, std::memory_order_relaxed);
    // No SIGHUP here: synchronous tools have no reload concept, and
    // a terminal hangup should keep its default disposition.
    installHandler(&cancelHandler, /*withHup=*/false);
}

} // namespace net
} // namespace azoo
