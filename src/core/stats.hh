/**
 * @file
 * Static graph statistics: the structural columns of the paper's
 * Table I (states, edges, edges/node, subgraph count, average subgraph
 * size and its standard deviation).
 */

#ifndef AZOO_CORE_STATS_HH
#define AZOO_CORE_STATS_HH

#include <cstdint>

#include "core/automaton.hh"

namespace azoo {

/** Structural summary of one benchmark automaton. */
struct GraphStats {
    uint64_t states = 0;       ///< STE count (counters tallied apart)
    uint64_t counters = 0;     ///< counter element count
    uint64_t edges = 0;        ///< activation edges
    double edgesPerNode = 0;   ///< edges / total elements
    uint32_t subgraphs = 0;    ///< connected components
    double avgSubgraph = 0;    ///< mean component size (elements)
    double stdSubgraph = 0;    ///< population std dev of comp. size
    uint64_t reporting = 0;    ///< reporting element count
    uint64_t startStates = 0;  ///< elements with a start type
};

/** Compute structural statistics in one pass over the automaton. */
GraphStats computeStats(const Automaton &a);

} // namespace azoo

#endif // AZOO_CORE_STATS_HH
