#include "regex/glushkov.hh"

#include <vector>

#include "analysis/analysis.hh"
#include "util/logging.hh"

namespace azoo {

namespace {

/** Per-subtree Glushkov sets over position indices. */
struct Sets {
    bool nullable = false;
    std::vector<uint32_t> first;
    std::vector<uint32_t> last;
};

void
appendUnique(std::vector<uint32_t> &dst, const std::vector<uint32_t> &src)
{
    dst.insert(dst.end(), src.begin(), src.end());
}

class Builder
{
  public:
    /** positions[i] = charset of position i; follow[i] = successors. */
    std::vector<CharSet> positions;
    std::vector<std::vector<uint32_t>> follow;

    Sets
    walk(const RegexNode &n)
    {
        switch (n.op) {
          case RegexOp::kEmpty: {
            Sets s;
            s.nullable = true;
            return s;
          }
          case RegexOp::kClass: {
            auto p = static_cast<uint32_t>(positions.size());
            positions.push_back(n.cls);
            follow.emplace_back();
            Sets s;
            s.first = {p};
            s.last = {p};
            return s;
          }
          case RegexOp::kConcat: {
            Sets acc;
            acc.nullable = true;
            for (const auto &k : n.kids) {
                Sets ks = walk(*k);
                // follow: last(acc) x first(k)
                for (auto l : acc.last)
                    appendUnique(follow[l], ks.first);
                if (acc.nullable)
                    appendUnique(acc.first, ks.first);
                if (ks.nullable) {
                    appendUnique(acc.last, ks.last);
                } else {
                    acc.last = std::move(ks.last);
                }
                acc.nullable = acc.nullable && ks.nullable;
            }
            return acc;
          }
          case RegexOp::kAlt: {
            Sets acc;
            for (const auto &k : n.kids) {
                Sets ks = walk(*k);
                acc.nullable = acc.nullable || ks.nullable;
                appendUnique(acc.first, ks.first);
                appendUnique(acc.last, ks.last);
            }
            return acc;
          }
          case RegexOp::kStar:
          case RegexOp::kPlus: {
            Sets s = walk(*n.kids[0]);
            for (auto l : s.last)
                appendUnique(follow[l], s.first);
            if (n.op == RegexOp::kStar)
                s.nullable = true;
            return s;
          }
          case RegexOp::kOpt: {
            Sets s = walk(*n.kids[0]);
            s.nullable = true;
            return s;
          }
          case RegexOp::kRepeat:
            panic("glushkov: kRepeat must be expanded before "
                  "construction");
        }
        panic("glushkov: unreachable");
    }
};

} // namespace

size_t
appendRegex(Automaton &a, const Regex &rx, uint32_t report_code,
            size_t position_limit)
{
    if (countPositions(*rx.root) > position_limit) {
        fatal(cat("regex '", rx.pattern, "' expands past the ",
                  position_limit, "-position limit"));
    }
    auto expanded = expandRepeats(rx.root->clone(), position_limit);
    if (nullable(*expanded))
        fatal(cat("regex '", rx.pattern, "' matches the empty string"));

    Builder b;
    Sets root = b.walk(*expanded);

    const size_t n = b.positions.size();
    const StartType start_type = rx.anchoredStart
        ? StartType::kStartOfData
        : StartType::kAllInput;

    std::vector<uint8_t> is_first(n, 0), is_last(n, 0);
    for (auto p : root.first)
        is_first[p] = 1;
    for (auto p : root.last)
        is_last[p] = 1;

    const auto base = static_cast<ElementId>(a.size());
    for (uint32_t p = 0; p < n; ++p) {
        a.addSte(b.positions[p],
                 is_first[p] ? start_type : StartType::kNone,
                 is_last[p] != 0, report_code);
    }
    // Dedup follow targets while adding edges.
    std::vector<uint8_t> seen(n, 0);
    for (uint32_t p = 0; p < n; ++p) {
        auto &f = b.follow[p];
        for (auto q : f) {
            if (!seen[q]) {
                seen[q] = 1;
                a.addEdge(base + p, base + q);
            }
        }
        for (auto q : f)
            seen[q] = 0;
    }
    return n;
}

Automaton
compileRegex(const Regex &rx, uint32_t report_code)
{
    Automaton a("regex");
    appendRegex(a, rx, report_code);
    analysis::postVerify(a, cat("glushkov('", rx.pattern, "')"));
    return a;
}

} // namespace azoo
