# Empty compiler generated dependencies file for dna_offtarget.
# This may be replaced when dependencies are built.
