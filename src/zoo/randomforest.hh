/**
 * @file
 * Random Forest benchmarks A/B/C (Sections IV, VI, VIII).
 *
 * Automata encoding (after Tracy et al.): the classifier input stream
 * carries, per classification item, the selected features in fixed
 * order as (index, binned value) byte pairs followed by an item
 * delimiter:
 *
 *   [0x10+0, bin0, 0x10+1, bin1, ..., 0x10+F-1, binF-1, 0xFF]
 *
 * Each root-to-leaf path of each tree becomes one small chain
 * automaton: an all-input head that fires on the path's first
 * constrained feature index, a value-range state per constraint, and
 * a two-state (index, value) skip ring between constraints. The final
 * range state reports the tree's predicted class, so majority voting
 * over report codes reproduces the native classifier exactly --
 * making the benchmark a *full kernel* comparable against native
 * decision-tree inference (Table IV).
 *
 * All path chains are padded to a uniform length (the paper's
 * Table I shows std-dev 0 for this benchmark), emulating the AP
 * symbol-replacement layout.
 *
 * Note: variant A uses 230 features instead of the paper's 270: the
 * index encoding has 239 usable index symbols (0x10..0xFE), and 230
 * is where our synthetic dataset's accuracy gain flattens. This is a
 * documented deviation (see EXPERIMENTS.md); the A:B runtime ratio
 * becomes 230:200 = 1.15x (paper: 1.35x), same direction.
 */

#ifndef AZOO_ZOO_RANDOMFOREST_HH
#define AZOO_ZOO_RANDOMFOREST_HH

#include "engine/report.hh"
#include "ml/random_forest.hh"
#include "zoo/benchmark.hh"

namespace azoo {
namespace zoo {

/** First feature-index symbol; values occupy 0x00..0x0F. */
constexpr uint8_t kRfIndexBase = 0x10;
/** Item delimiter. */
constexpr uint8_t kRfDelimiter = 0xFF;
/** Maximum encodable feature count. */
constexpr int kRfMaxFeatures = 0xFF - kRfIndexBase; // 239

/** Everything the Table II / Table IV experiments need. */
struct RfBundle {
    Benchmark benchmark;
    ml::RandomForest forest;
    ml::Dataset test;            ///< held-out raw samples
    std::vector<int> itemLabels; ///< ground truth per stream item
    size_t numItems = 0;
    double accuracy = 0;         ///< native test accuracy
};

/** Hyperparameters of variants 'A', 'B', 'C' (Table II). */
ml::ForestParams rfVariantParams(char variant);

/** Train the variant and build benchmark + stream. */
RfBundle makeRandomForestBundle(const ZooConfig &cfg, char variant);

/** Benchmark-only wrapper for the registry. */
Benchmark makeRandomForestBenchmark(const ZooConfig &cfg, char variant);

/** Encode raw samples into the automata input stream. */
std::vector<uint8_t> rfEncodeStream(const ml::RandomForest &forest,
                                    const ml::Dataset &samples,
                                    size_t max_items,
                                    std::vector<int> *labels);

/** Decode majority votes from simulation reports.
 *  @return predicted class per item (-1 if no votes). */
std::vector<int> rfDecodeVotes(const std::vector<Report> &reports,
                               size_t num_items, int features,
                               int num_classes);

} // namespace zoo
} // namespace azoo

#endif // AZOO_ZOO_RANDOMFOREST_HH
