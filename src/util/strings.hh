/**
 * @file
 * Small string utilities shared by the parsers and generators.
 */

#ifndef AZOO_UTIL_STRINGS_HH
#define AZOO_UTIL_STRINGS_HH

#include <cstdint>
#include <string>
#include <vector>

namespace azoo {

/** Split on a delimiter character; keeps empty fields. */
std::vector<std::string> split(const std::string &s, char delim);

/** Strip leading/trailing whitespace. */
std::string trim(const std::string &s);

/** True if s begins with prefix. */
bool startsWith(const std::string &s, const std::string &prefix);

/** Lower-case an ASCII string. */
std::string toLower(const std::string &s);

/** Hex value of an ASCII hex digit, or -1. */
int hexValue(char c);

/** Two-digit hex rendering of a byte. */
std::string hexByte(uint8_t b);

/** Escape a byte string for display (non-printables as \xNN). */
std::string escapeBytes(const std::string &s);

} // namespace azoo

#endif // AZOO_UTIL_STRINGS_HH
