#include "zoo/protomata.hh"

#include "input/protein.hh"
#include "regex/glushkov.hh"
#include "regex/parser.hh"
#include "util/logging.hh"
#include "util/rng.hh"
#include "util/strings.hh"

namespace azoo {
namespace zoo {

std::vector<PrositePattern>
makePrositePatterns(const ZooConfig &cfg)
{
    const size_t n = cfg.scaled(1309);
    Rng rng(cfg.seed ^ 0x9a07eULL);
    const std::string &aa = input::kAminoAcids;

    std::vector<PrositePattern> out;
    out.reserve(n);
    for (size_t i = 0; i < n; ++i) {
        PrositePattern p;
        const int elements = 10 + static_cast<int>(rng.nextBelow(9));
        for (int e = 0; e < elements; ++e) {
            if (e)
                p.prosite += "-";
            const double k = rng.nextDouble();
            if (k < 0.55) {
                const char c = rng.pickChar(aa);
                p.prosite += c;
                p.instance += c;
            } else if (k < 0.75) {
                // Class of 2-4 amino acids.
                const int cls = 2 + static_cast<int>(rng.nextBelow(3));
                std::string members;
                for (int j = 0; j < cls; ++j) {
                    char c = rng.pickChar(aa);
                    if (members.find(c) == std::string::npos)
                        members.push_back(c);
                }
                p.prosite += "[" + members + "]";
                p.instance += members[rng.nextBelow(members.size())];
            } else if (k < 0.85) {
                // Exclusion class.
                const char c = rng.pickChar(aa);
                p.prosite += std::string("{") + c + "}";
                char pick = c;
                while (pick == c)
                    pick = rng.pickChar(aa);
                p.instance += pick;
            } else if (k < 0.93) {
                p.prosite += "x";
                p.instance += rng.pickChar(aa);
            } else {
                const int lo = 1 + static_cast<int>(rng.nextBelow(3));
                const int hi = lo + static_cast<int>(rng.nextBelow(3));
                p.prosite += cat("x(", lo, ",", hi, ")");
                for (int j = 0; j < lo; ++j)
                    p.instance += rng.pickChar(aa);
            }
        }
        out.push_back(std::move(p));
    }
    return out;
}

std::string
prositeToRegex(const std::string &prosite)
{
    std::string out;
    size_t i = 0;
    while (i < prosite.size()) {
        const char c = prosite[i];
        if (c == '-') {
            ++i;
        } else if (c == 'x') {
            ++i;
            if (i < prosite.size() && prosite[i] == '(') {
                const size_t close = prosite.find(')', i);
                if (close == std::string::npos)
                    fatal(cat("prosite: unterminated x( in ",
                              prosite));
                std::string body = prosite.substr(i + 1, close - i - 1);
                const size_t comma = body.find(',');
                if (comma == std::string::npos) {
                    out += cat(".{", body, "}");
                } else {
                    out += cat(".{", body.substr(0, comma), ",",
                               body.substr(comma + 1), "}");
                }
                i = close + 1;
            } else {
                out += ".";
            }
        } else if (c == '[') {
            const size_t close = prosite.find(']', i);
            if (close == std::string::npos)
                fatal(cat("prosite: unterminated [ in ", prosite));
            out += prosite.substr(i, close - i + 1);
            i = close + 1;
        } else if (c == '{') {
            const size_t close = prosite.find('}', i);
            if (close == std::string::npos)
                fatal(cat("prosite: unterminated { in ", prosite));
            out += "[^" + prosite.substr(i + 1, close - i - 1) + "]";
            i = close + 1;
        } else {
            out += c;
            ++i;
        }
    }
    return out;
}

Benchmark
makeProtomataBenchmark(const ZooConfig &cfg)
{
    Benchmark b;
    b.name = "Protomata";
    b.domain = "Motif Search";
    b.inputDesc = "Uniprot Database";
    b.paperStates = 24103;
    b.paperActiveSet = 712.884;
    b.paperSizeVsAnmlzoo = 0.58;

    auto patterns = makePrositePatterns(cfg);
    Automaton a("Protomata");
    size_t rejected = 0;
    std::vector<std::string> instances;
    for (size_t i = 0; i < patterns.size(); ++i) {
        Regex rx;
        std::string err;
        if (!tryParseRegex(prositeToRegex(patterns[i].prosite),
                           RegexFlags(), rx, err)) {
            ++rejected;
            continue;
        }
        appendRegex(a, rx, static_cast<uint32_t>(i));
        instances.push_back(patterns[i].instance);
    }

    b.input = input::syntheticProteome(cfg.inputBytes,
                                       cfg.seed ^ 0x90aULL, instances);
    b.automaton = std::move(a);
    b.meta["patterns"] = std::to_string(patterns.size());
    b.meta["rejected"] = std::to_string(rejected);
    return b;
}

} // namespace zoo
} // namespace azoo
