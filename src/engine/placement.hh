/**
 * @file
 * Spatial fabric placement model.
 *
 * The paper's critique of ANMLZoo rests on routing behaviour: the
 * Micron D480's hierarchical routing matrix is overwhelmed by
 * 2D-mesh automata (ANMLZoo's Levenshtein maximized routing while
 * using only 6% of state capacity), while island-style FPGA fabrics
 * route the same automata at much higher utilization (Wadden et al.,
 * FCCM 2017). This module provides the corresponding analytic
 * substrate: a greedy BFS packer that places automaton elements into
 * fixed-capacity routing blocks under a per-block inter-block track
 * budget, with an island-style option that makes adjacent-block hops
 * free.
 *
 * It is deliberately a first-order model -- utilization and block
 * counts, not a full CAD flow -- but it reproduces the qualitative
 * ordering the paper relies on: chains pack densely everywhere;
 * meshes waste most of a track-poor hierarchical fabric.
 */

#ifndef AZOO_ENGINE_PLACEMENT_HH
#define AZOO_ENGINE_PLACEMENT_HH

#include <cstdint>
#include <string>

#include "core/automaton.hh"

namespace azoo {

/** Routing-fabric parameters. */
struct FabricParams {
    std::string name;
    /** Elements per routing block (full crossbar inside a block). */
    uint32_t blockSize = 256;
    /** Inter-block signals a block may source or sink. */
    uint32_t trackBudget = 16;
    /** Island-style: hops between adjacent blocks are free. */
    bool neighborFree = false;
    /** Blocks per device (capacity = blocks * blockSize). */
    uint32_t deviceBlocks = 192;

    /** Micron D480-like hierarchical fabric: 192 x 256 = 49,152
     *  STEs, a tight global track budget, no cheap neighbors. */
    static FabricParams hierarchicalD480();

    /** Island-style (FPGA-like) fabric of the same capacity with a
     *  generous track budget and free neighbor hops. */
    static FabricParams islandStyle();
};

/** Outcome of placing one automaton. */
struct PlacementResult {
    uint64_t states = 0;
    uint64_t blocksUsed = 0;
    uint64_t crossBlockEdges = 0;
    /** Edges that exceeded every involved block's track budget and
     *  were routed anyway (model overflow; 0 means clean routing). */
    uint64_t overflowEdges = 0;
    /** states / (blocksUsed * blockSize): the paper's utilization. */
    double utilization = 0;
    /** Devices needed at deviceBlocks blocks per device. */
    uint64_t devicesNeeded = 0;
};

/** Greedily place @p a on @p fabric. */
PlacementResult placeAndRoute(const Automaton &a,
                              const FabricParams &fabric);

} // namespace azoo

#endif // AZOO_ENGINE_PLACEMENT_HH
