/**
 * @file
 * Table IV: full-kernel Random Forest comparison (Section VIII).
 *
 * Because the AutomataZoo Random Forest benchmark is a *full* trained
 * model, automata-based classification can be compared apples-to-
 * apples with native decision-tree inference:
 *
 *  - CPU automata engine (our Hyperscan stand-in, MultiDfaEngine),
 *    the 1x baseline;
 *  - native CART inference single-threaded (scikit-learn stand-in);
 *  - native multi-threaded;
 *  - the REAPR FPGA analytic model (post-P&R clock x one symbol per
 *    cycle over the classification stream).
 *
 * Paper shape: native single-thread 141.5x, native MT 401.1x, FPGA
 * 817.9x -- automata processing loses to native trees on CPUs, while
 * the spatial engine wins overall.
 */

#include <iostream>
#include <thread>

#include "bench/common.hh"
#include "engine/multidfa_engine.hh"
#include "engine/nfa_engine.hh"
#include "engine/spatial_model.hh"
#include "util/table.hh"
#include "util/timer.hh"
#include "zoo/randomforest.hh"

using namespace azoo;

int
main(int argc, char **argv)
{
    bench::BenchConfig cfg = bench::parseBenchFlags(argc, argv);
    if (cfg.zoo.inputBytes > 1 << 20)
        cfg.zoo.inputBytes = 1 << 20;

    zoo::RfBundle bundle = zoo::makeRandomForestBundle(cfg.zoo, 'B');
    const size_t items = bundle.numItems;

    std::cout << "Table IV: Random Forest full-kernel comparison "
                 "(variant B, " << items << " classifications, "
              << bundle.benchmark.automaton.size() << " states, "
              << "accuracy "
              << Table::percent(bundle.accuracy * 100, 2) << ")\n\n";

    // 1) CPU automata engine (compiled), the baseline.
    MultiDfaEngine dfa(bundle.benchmark.automaton);
    SimOptions opts;
    opts.recordReports = false;
    opts.computeActiveSet = false;
    Timer t_dfa;
    dfa.simulate(bundle.benchmark.input, opts);
    const double automata_rate = items / t_dfa.seconds();

    // Also report the interpreter for context.
    NfaEngine nfa(bundle.benchmark.automaton);
    Timer t_nfa;
    nfa.simulate(bundle.benchmark.input, opts);
    const double nfa_rate = items / t_nfa.seconds();

    // 2) Native inference: replicate the item stream's samples.
    ml::Dataset batch;
    batch.numFeatures = bundle.test.numFeatures;
    batch.numClasses = bundle.test.numClasses;
    for (size_t i = 0; i < items; ++i) {
        batch.x.push_back(bundle.test.x[i % bundle.test.size()]);
        batch.y.push_back(bundle.test.y[i % bundle.test.size()]);
    }
    Timer t_st;
    auto pred_st = bundle.forest.predictBatch(batch, 1);
    const double native_st_rate = items / t_st.seconds();

    const int hw = static_cast<int>(
        std::thread::hardware_concurrency());
    Timer t_mt;
    auto pred_mt = bundle.forest.predictBatch(batch, hw);
    const double native_mt_rate = items / t_mt.seconds();

    // 3) REAPR FPGA analytic model: one symbol per cycle.
    SpatialModel fpga(SpatialArch::reaprKintex());
    const double report_rate =
        static_cast<double>(bundle.forest.params().numTrees) /
        bundle.benchmark.symbolsPerItem;
    const double fpga_rate = fpga.itemsPerSecond(
        bundle.benchmark.automaton.size(), report_rate,
        bundle.benchmark.symbolsPerItem);

    Table t({"Engine", "kClassifications/s", "Normalized",
             "Paper (Table IV)"});
    auto row = [&](const std::string &name, double rate,
                   const std::string &paper) {
        t.addRow({name, Table::fixed(rate / 1e3, 1),
                  Table::ratio(rate / automata_rate, 1), paper});
    };
    row("CPU automata, MultiDfaEngine (Hyperscan analog)",
        automata_rate, "1x");
    row("CPU automata, NfaEngine (interpreter)", nfa_rate, "-");
    row("Native trees, 1 thread (Scikit analog)", native_st_rate,
        "141.5x");
    row(cat("Native trees, ", hw, " thread(s)"), native_mt_rate,
        "401.1x");
    row("REAPR FPGA model", fpga_rate, "817.9x");
    t.print(std::cout);

    // Full-kernel sanity: automata votes equal native predictions.
    auto r = NfaEngine(bundle.benchmark.automaton)
                 .simulate(bundle.benchmark.input);
    auto votes = zoo::rfDecodeVotes(
        r.reports, items, bundle.forest.params().features, 10);
    size_t agree = 0;
    for (size_t i = 0; i < items; ++i)
        agree += votes[i] == pred_st[i];
    std::cout << "\nFull-kernel check: automata votes match native "
                 "inference on " << agree << "/" << items
              << " classifications.\n";
    return agree == items ? 0 : 1;
}
