# Empty dependencies file for section5_snort_modifiers.
# This may be replaced when dependencies are built.
