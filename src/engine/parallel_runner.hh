/**
 * @file
 * ParallelRunner: multi-threaded automata simulation with serial
 * semantics.
 *
 * The suite's engines are single-threaded by design; this layer
 * shards work along the two axes the workloads naturally expose:
 *
 *  - **Stream-level** (runBatch): a batch of independent input
 *    streams (packets, disk-image chunks, DNA reads) fans out across
 *    the pool. All workers share one const NfaEngine; each worker
 *    slot owns an EngineScratch (and, under ParallelEngine::kLazyDfa,
 *    a private LazyDfaEngine whose cache warms across that slot's
 *    streams), so the hot path performs no per-stream O(n)
 *    allocation. Chunked mode gives each stream its own
 *    StreamingSession.
 *
 *  - **Component-level** (simulateSharded): the automaton's connected
 *    components (activation *and* reset edges, so counters never
 *    split from their enable/reset sources) are packed into one shard
 *    per thread by size-balanced LPT, and each shard simulates the
 *    same input concurrently.
 *
 * Determinism guarantee: results are *canonical* — per stream,
 * reports are sorted by (offset, element, code); a batch is ordered
 * by stream index. Canonical output is identical for every thread
 * count, and equals the serial engine's output after
 * canonicalizeReports() (the serial engine emits same-cycle reports
 * in internal propagation order, which the canonical order
 * normalizes). Aggregate counters (reportCount, totalEnabled,
 * reportingCycles, byCode) match the serial engine exactly.
 */

#ifndef AZOO_ENGINE_PARALLEL_RUNNER_HH
#define AZOO_ENGINE_PARALLEL_RUNNER_HH

#include <algorithm>
#include <cstdint>
#include <memory>
#include <vector>

#include "core/automaton.hh"
#include "engine/lazy_dfa_engine.hh"
#include "engine/nfa_engine.hh"
#include "engine/planner.hh"
#include "engine/report.hh"

namespace azoo {

class ThreadPool;

/** Sort recorded reports into the canonical (offset, element, code)
 *  order all parallel paths emit. Apply to a serial SimResult before
 *  comparing it against ParallelRunner output. */
inline void
canonicalizeReports(SimResult &r)
{
    std::sort(r.reports.begin(), r.reports.end());
}

/** Which engine a ParallelRunner drives per stream / per shard. */
enum class ParallelEngine : uint8_t {
    kNfa,     ///< enabled-set interpreter (NfaEngine)
    kLazyDfa, ///< lazy-DFA hybrid (LazyDfaEngine)
    kPlanned, ///< profile-planned per-component backends (PlannedEngine)
};

/** Configuration for a ParallelRunner. */
struct ParallelOptions {
    /** Worker threads; 0 means all hardware threads. */
    size_t threads = 0;
    /** Batch mode: feed each stream through a StreamingSession in
     *  chunks of this many bytes (0 = one monolithic simulate()).
     *  Chunking never changes results; it exists to exercise and
     *  measure the streaming path under parallelism. Chunked feeding
     *  runs on StreamingSession (an interpreter); combining it with
     *  ParallelEngine::kLazyDfa is rejected — runBatch() marks every
     *  stream kInvalidArgument rather than silently substituting a
     *  different engine. */
    size_t chunkBytes = 0;
    /** Engine for monolithic streams and component shards. */
    ParallelEngine engine = ParallelEngine::kNfa;
    /** Lazy-DFA transition-cache budget (engine == kLazyDfa). Each
     *  worker slot / shard owns a private cache of this size. */
    size_t lazyCacheBytes = 8u << 20;
    /** Planning knobs (engine == kPlanned). Each worker slot / shard
     *  owns a private PlannedEngine built from one shared profile
     *  inference; chunked streams run on PlannedSession. */
    PlanOptions plan;
    /** Per-stream simulation options. */
    SimOptions sim;
};

/** Outcome of a batch run; perStream[i] belongs to streams[i]. */
struct BatchResult {
    std::vector<SimResult> perStream;
    /** Parallel to perStream: OK when the stream completed. A failed
     *  stream leaves an empty SimResult and its error here; the other
     *  streams still complete and stay bit-identical to a serial run
     *  (worker failures never kill the batch). */
    std::vector<Status> perStreamStatus;
    uint64_t totalSymbols = 0;
    uint64_t totalReports = 0;
    /** Lazy-DFA cache flushes summed over streams (0 for kNfa). */
    uint64_t totalLazyFlushes = 0;
    /** Streams whose perStreamStatus is non-OK. */
    uint64_t failedStreams = 0;

    bool allOk() const { return failedStreams == 0; }
};

/**
 * Parallel driver over a borrowed automaton.
 *
 * The automaton must outlive the runner (same borrow rule as the
 * engines). Construction compiles one whole-automaton NfaEngine for
 * batch mode and one engine per component shard for sharded mode;
 * runBatch()/simulateSharded() can then be called repeatedly (but not
 * concurrently with each other from multiple threads — the runner
 * owns one pool).
 */
class ParallelRunner
{
  public:
    explicit ParallelRunner(const Automaton &a,
                            ParallelOptions opts = ParallelOptions());
    ~ParallelRunner();

    /** Worker threads actually running. */
    size_t threads() const;

    /** Component shards built for simulateSharded(). */
    size_t shardCount() const { return shards_.size(); }

    /** Simulate each stream independently; canonical per-stream
     *  results in input order, identical for any thread count. */
    BatchResult
    runBatch(const std::vector<std::vector<uint8_t>> &streams) const;

    /** Simulate one input with the automaton sharded by connected
     *  components; canonical result identical to the (canonicalized)
     *  serial NfaEngine result. */
    SimResult simulateSharded(const uint8_t *input, size_t len) const;

    SimResult
    simulateSharded(const std::vector<uint8_t> &input) const
    {
        return simulateSharded(input.data(), input.size());
    }

  private:
    struct Shard {
        Automaton sub;
        /** Shard-local element id -> id in the borrowed automaton. */
        std::vector<ElementId> origId;
        std::unique_ptr<NfaEngine> engine;
        /** Engine for ParallelEngine::kLazyDfa (else nullptr). */
        std::unique_ptr<LazyDfaEngine> lazy;
        /** Engine for ParallelEngine::kPlanned (else nullptr). */
        std::unique_ptr<PlannedEngine> planned;
        /** Interpreter scratch; each shard is driven by exactly one
         *  worker at a time, so per-shard state needs no locking. */
        mutable EngineScratch scratch;
    };

    void buildShards(size_t groups);

    /** Borrowed: the caller guarantees the automaton outlives the
     *  runner (in the serve path, via a RulesetGeneration pin). */
    const Automaton &a_;
    ParallelOptions opts_;
    std::unique_ptr<ThreadPool> pool_;
    NfaEngine engine_;
    std::vector<Shard> shards_;

    // Per-worker-slot mutable state for runBatch: the slot-indexed
    // parallelFor guarantees exclusive slot ownership, so scratches
    // and lazy caches are reused lock-free across streams.
    mutable std::vector<EngineScratch> slotScratch_;
    mutable std::vector<std::unique_ptr<LazyDfaEngine>> slotLazy_;
    mutable std::vector<std::unique_ptr<PlannedEngine>> slotPlanned_;
    /** Shared profile inference for kPlanned (one pass over the
     *  whole automaton; slots and chunked sessions reuse it). */
    std::vector<analysis::ComponentProfile> profiles_;
};

} // namespace azoo

#endif // AZOO_ENGINE_PARALLEL_RUNNER_HH
