#include "analysis/profile.hh"

#include <algorithm>
#include <bit>
#include <chrono>
#include <map>

#include "analysis/dataflow.hh"
#include "obs/obs.hh"
#include "util/logging.hh"

namespace azoo {
namespace analysis {

const char *
componentClassName(ComponentClass c)
{
    switch (c) {
      case ComponentClass::kLiteralChain:
        return "literal-chain";
      case ComponentClass::kBoundedRegex:
        return "bounded-regex";
      case ComponentClass::kCounterCoupled:
        return "counter-coupled";
      case ComponentClass::kCyclicUnbounded:
        return "cyclic-unbounded";
    }
    return "?";
}

char
componentClassCode(ComponentClass c)
{
    switch (c) {
      case ComponentClass::kLiteralChain:
        return 'L';
      case ComponentClass::kBoundedRegex:
        return 'R';
      case ComponentClass::kCounterCoupled:
        return 'C';
      case ComponentClass::kCyclicUnbounded:
        return 'U';
    }
    return '?';
}

namespace {

uint32_t
ceilLog2(uint64_t x)
{
    if (x <= 1)
        return 0;
    return static_cast<uint32_t>(64 - std::countl_zero(x - 1));
}

/** True when every activation out of @p n goes to @p target. */
bool
soleSuccessor(const ComponentView &v, uint32_t n, uint32_t target)
{
    const auto &succ = v.succ(n);
    if (succ.empty())
        return false;
    return std::all_of(succ.begin(), succ.end(),
                       [&](uint32_t s) { return s == target; });
}

/**
 * Longest byte string every accepting path must contain: the longest
 * run of singleton-charset dominators where each step (u, v) is
 * byte-adjacent because u's only activation successor is v (u is
 * mandatory, so every path reaches u and then must match v on the
 * very next symbol).
 */
std::string
mandatoryLiteral(const Automaton &a, const ComponentView &v,
                 const std::vector<uint32_t> &chain)
{
    std::string best, cur;
    uint32_t prev = kInfDist;
    auto flush = [&] {
        if (cur.size() > best.size())
            best = cur;
        cur.clear();
    };
    for (uint32_t n : chain) {
        const Element &e = a.element(v.globalId(n));
        const bool singleton =
            e.kind == ElementKind::kSte && e.symbols.count() == 1;
        if (!singleton) {
            flush();
            prev = kInfDist;
            continue;
        }
        if (prev == kInfDist || !soleSuccessor(v, prev, n))
            flush();
        cur.push_back(static_cast<char>(e.symbols.lowest()));
        prev = n;
    }
    flush();
    return best;
}

/**
 * log2 of the estimated subset-construction state count. Literal
 * chains determinize to roughly one state per position; counters
 * multiply the space by their value range; everything else is scored
 * by the depth-window frontier: states whose [min, max] distance
 * windows overlap can be simultaneously active, and the DFA states
 * are subsets of such frontiers. Capped at 32 ("don't determinize").
 */
uint32_t
estimateBlowupLog2(const ComponentProfile &p, const Automaton &a,
                   const ComponentView &v, const DistFacts &dist)
{
    constexpr uint32_t kCap = 32;
    if (p.cls == ComponentClass::kLiteralChain)
        return std::min(kCap, ceilLog2(uint64_t(p.steCount) + 2));
    if (p.cls == ComponentClass::kCounterCoupled) {
        uint64_t bits = ceilLog2(uint64_t(p.steCount) + 2);
        for (uint32_t n = 2; n < v.size(); ++n) {
            const Element &e = a.element(v.globalId(n));
            if (e.kind == ElementKind::kCounter)
                bits += ceilLog2(uint64_t(e.target) + 1);
        }
        return static_cast<uint32_t>(std::min<uint64_t>(kCap, bits));
    }

    // Frontier width: sweep the depth axis, +1 where a window opens,
    // -1 past its finite end (unbounded windows never close).
    std::map<uint32_t, int32_t> delta;
    for (uint32_t n = 2; n < v.size(); ++n) {
        const uint32_t lo = dist.minFromSource[n];
        if (lo == kInfDist)
            continue; // unreachable
        ++delta[lo];
        const uint32_t hi = dist.maxFromSource[n];
        if (hi != kInfDist)
            --delta[hi + 1];
    }
    int32_t width = 0, peak = 0;
    for (const auto &[depth, d] : delta) {
        width += d;
        peak = std::max(peak, width);
    }
    return std::min(kCap, static_cast<uint32_t>(peak));
}

} // namespace

std::vector<ComponentProfile>
inferProfiles(const Automaton &a, const InferOptions &iopts)
{
    const auto t0 = std::chrono::steady_clock::now();

    std::vector<ComponentView> views = ComponentView::split(a);
    std::vector<ComponentProfile> profiles;
    profiles.reserve(views.size());

    for (uint32_t ci = 0; ci < views.size(); ++ci) {
        const ComponentView &v = views[ci];
        ComponentProfile p;
        p.componentId = ci;
        // Locals are assigned in global-id order, so local 2 is the
        // component's lowest element id.
        p.firstElement = v.globalId(2);
        p.edgeCount = v.realEdgeCount();

        bool all_sod = true;
        for (uint32_t n = 2; n < v.size(); ++n) {
            const Element &e = a.element(v.globalId(n));
            if (e.kind == ElementKind::kSte) {
                ++p.steCount;
            } else {
                ++p.counterCount;
                p.minCounterTarget =
                    p.counterCount == 1
                        ? e.target
                        : std::min(p.minCounterTarget, e.target);
                p.maxCounterTarget =
                    std::max(p.maxCounterTarget, e.target);
            }
            if (e.start != StartType::kNone) {
                ++p.startCount;
                all_sod &= e.start == StartType::kStartOfData;
            }
            p.reportCount += e.reporting;
        }
        p.anchored = p.startCount > 0 && all_sod;

        const ReachFacts r = reachability(v);
        const DistFacts dist = distances(v);
        p.cyclic = r.liveCycle;

        const uint32_t to_sink =
            dist.minFromSource[ComponentView::kSink];
        p.minMatchLen = to_sink == kInfDist ? kUnboundedLen : to_sink - 1;
        const uint32_t max_sink =
            dist.maxFromSource[ComponentView::kSink];
        p.maxMatchLen =
            max_sink == kInfDist ? kUnboundedLen : max_sink - 1;

        // Longest (symbol-counted) path from any start; 0 when the
        // component has no reachable member at all.
        uint32_t depth = 0;
        bool depth_unbounded = false;
        for (uint32_t n = 2; n < v.size(); ++n) {
            if (!r.fromSource[n])
                continue;
            if (dist.maxFromSource[n] == kInfDist)
                depth_unbounded = true;
            else
                depth = std::max(depth, dist.maxFromSource[n]);
        }
        p.maxActivationDepth = depth_unbounded ? kUnboundedLen : depth;

        const std::vector<uint32_t> idom = dominators(v);
        p.mandatoryLiteral =
            mandatoryLiteral(a, v, mandatoryChain(idom));

        if (p.counterCount > 0)
            p.cls = ComponentClass::kCounterCoupled;
        else if (p.cyclic)
            p.cls = ComponentClass::kCyclicUnbounded;
        else if (p.mandatoryLiteral.size() >= iopts.literalChainMinFactor)
            p.cls = ComponentClass::kLiteralChain;
        else
            p.cls = ComponentClass::kBoundedRegex;

        p.blowupLog2 = estimateBlowupLog2(p, a, v, dist);
        profiles.push_back(std::move(p));
    }

    if constexpr (obs::kEnabled) {
        auto &reg = obs::Registry::global();
        reg.counter("analysis.facts.components").add(profiles.size());
        reg.histogram("analysis.infer.ns")
            .record(static_cast<uint64_t>(
                std::chrono::duration_cast<std::chrono::nanoseconds>(
                    std::chrono::steady_clock::now() - t0)
                    .count()));
    }
    return profiles;
}

Report
profileLint(const Automaton &a,
            const std::vector<ComponentProfile> &profiles,
            const Options &opts, const InferOptions &iopts)
{
    Report rep;
    rep.automatonName = a.name();
    auto add = [&](Rule r, ElementId element, ElementId other,
                   std::string msg) {
        if (opts.enabled(r))
            rep.add(defaultSeverity(r), r, element, other,
                    std::move(msg));
    };

    // Component membership, only materialized if an A205 candidate
    // needs per-counter targets.
    std::vector<uint32_t> comp;
    auto component_of = [&](ElementId e) {
        if (comp.empty()) {
            uint32_t count = 0;
            comp = a.connectedComponents(count);
        }
        return comp[e];
    };

    for (const ComponentProfile &p : profiles) {
        const ElementId anchor = p.firstElement;

        if (p.reportCount > 0 && p.maxMatchLen == kUnboundedLen &&
            p.mandatoryLiteral.empty()) {
            add(Rule::kPrefilterHostile, anchor, kNoElement,
                cat("component ", p.componentId, " (",
                    componentClassName(p.cls), ", ", p.steCount,
                    " STEs) accepts unbounded matches and has no "
                    "mandatory literal factor; a literal prefilter "
                    "cannot cover it"));
        }
        if (p.cls == ComponentClass::kLiteralChain) {
            add(Rule::kLiteralChainComponent, anchor, kNoElement,
                cat("component ", p.componentId, " is a literal chain "
                    "(", p.steCount, " STEs, mandatory factor ",
                    p.mandatoryLiteral.size(), " bytes); a literal "
                    "engine or Aho-Corasick prefilter can cover it"));
        }
        if (p.cls == ComponentClass::kBoundedRegex &&
            p.reportCount > 0 &&
            p.mandatoryLiteral.size() < iopts.literalChainMinFactor) {
            add(Rule::kWeakLiteralFactor, anchor, kNoElement,
                cat("component ", p.componentId,
                    "'s mandatory literal factor is ",
                    p.mandatoryLiteral.size(), " bytes (< ",
                    iopts.literalChainMinFactor,
                    "); prefilter coverage will be weak"));
        }
        if (p.blowupLog2 >= iopts.blowupWarnLog2) {
            add(Rule::kDfaBlowupRisk, anchor, kNoElement,
                cat("component ", p.componentId,
                    " subset-construction estimate is 2^",
                    p.blowupLog2, " states (threshold 2^",
                    iopts.blowupWarnLog2,
                    "); expect lazy-DFA cache pressure"));
        }

        // A counter can gain at most one count per symbol while the
        // component is active, so in an anchored acyclic component
        // its value never exceeds the maximum activation depth.
        if (p.counterCount > 0 && p.anchored && !p.cyclic &&
            p.maxActivationDepth != kUnboundedLen &&
            p.maxCounterTarget > p.maxActivationDepth &&
            opts.enabled(Rule::kCounterUnsatisfiable)) {
            for (ElementId e = 0; e < a.size(); ++e) {
                const Element &el = a.element(e);
                if (el.kind != ElementKind::kCounter ||
                    el.target <= p.maxActivationDepth ||
                    component_of(e) != p.componentId) {
                    continue;
                }
                add(Rule::kCounterUnsatisfiable, e, kNoElement,
                    cat("counter ", e, " target ", el.target,
                        " exceeds component ", p.componentId,
                        "'s maximum activation depth ",
                        p.maxActivationDepth, "; it can never fire"));
            }
        }
    }
    return rep;
}

} // namespace analysis
} // namespace azoo
