/**
 * @file
 * The homogeneous finite-automaton graph that every AutomataZoo
 * benchmark is expressed in.
 *
 * Following the ANML/MNRL convention used by VASim and the Micron AP,
 * match labels (character sets) live on states (STEs), not on edges.
 * An STE is *enabled* in a cycle if any predecessor *matched* in the
 * previous cycle, or if it is a start state. An enabled STE matches
 * when the current input symbol is in its character set; matching
 * reports (if the STE is a reporting state) and enables successors.
 *
 * A second element kind models Micron AP counter elements, which the
 * Seq Match "wC" benchmark variants require: a counter increments once
 * per cycle in which any count-enable predecessor matched, and fires
 * when its value reaches the target.
 */

#ifndef AZOO_CORE_AUTOMATON_HH
#define AZOO_CORE_AUTOMATON_HH

#include <cstdint>
#include <string>
#include <vector>

#include "core/charset.hh"
#include "util/status.hh"

namespace azoo {

/** How a state may self-enable without a matching predecessor. */
enum class StartType : uint8_t {
    kNone,        ///< only enabled by predecessors
    kStartOfData, ///< enabled for the first input symbol only
    kAllInput,    ///< enabled for every input symbol
};

/** Element kinds in the element table. */
enum class ElementKind : uint8_t {
    kSte,     ///< state transition element (character-set matcher)
    kCounter, ///< AP-style threshold counter
};

/** What a counter does when its value reaches the target. */
enum class CounterMode : uint8_t {
    kLatch,    ///< assert output every cycle once reached
    kPulse,    ///< assert output only on the reaching cycle
    kRollover, ///< pulse, then reset the count to zero
};

/** Element id type; indices into Automaton's element table. */
using ElementId = uint32_t;

/** Sentinel for "no element". */
constexpr ElementId kNoElement = ~ElementId(0);

/**
 * One element (STE or counter) of an automaton.
 *
 * Kept as a single tagged struct rather than a class hierarchy: the
 * simulation kernels iterate millions of these and benefit from a flat
 * table, and the benchmark generators freely mix the two kinds.
 */
struct Element {
    ElementKind kind = ElementKind::kSte;
    StartType start = StartType::kNone;
    bool reporting = false;
    /** User-meaningful report stream id (e.g. rule number). */
    uint32_t reportCode = 0;
    /** Match label; meaningful for STEs only. */
    CharSet symbols;
    /** Counter threshold; meaningful for counters only. */
    uint32_t target = 0;
    CounterMode mode = CounterMode::kLatch;
    /** Activation successors (count-enable when target is a counter). */
    std::vector<ElementId> out;
    /** Reset successors (must be counters). */
    std::vector<ElementId> resetOut;
};

/**
 * A homogeneous automaton: a flat table of elements plus metadata.
 *
 * Invariants (checked by validate()):
 *  - every edge endpoint is a valid element id;
 *  - counters have no start type and carry no symbols;
 *  - resetOut edges target counters only.
 */
class Automaton
{
  public:
    Automaton() = default;
    explicit Automaton(std::string name) : name_(std::move(name)) {}

    const std::string &name() const { return name_; }
    void setName(std::string name) { name_ = std::move(name); }

    /** Append an STE and return its id. */
    ElementId addSte(const CharSet &symbols,
                     StartType start = StartType::kNone,
                     bool reporting = false, uint32_t report_code = 0);

    /** Append a counter element and return its id. */
    ElementId addCounter(uint32_t target,
                         CounterMode mode = CounterMode::kLatch,
                         bool reporting = false, uint32_t report_code = 0);

    /** Add an activation edge from -> to. */
    void addEdge(ElementId from, ElementId to);

    /** Add a reset edge from -> to (to must be a counter). */
    void addResetEdge(ElementId from, ElementId to);

    /** Absorb all elements of another automaton (disjoint union).
     *  Returns the id offset applied to the other's element ids. */
    ElementId merge(const Automaton &other);

    size_t size() const { return elements_.size(); }
    bool empty() const { return elements_.empty(); }

    Element &element(ElementId id) { return elements_[id]; }
    const Element &element(ElementId id) const { return elements_[id]; }

    const std::vector<Element> &elements() const { return elements_; }
    std::vector<Element> &elements() { return elements_; }

    /** Total directed edge count (activation edges only, to match the
     *  paper's "Edges" column; reset edges are counted separately). */
    uint64_t edgeCount() const;

    /** Number of reset edges. */
    uint64_t resetEdgeCount() const;

    /** Ids of all start states (either start type). */
    std::vector<ElementId> startStates() const;

    /** Ids of all reporting elements. */
    std::vector<ElementId> reportingElements() const;

    /** Count of elements of a given kind. */
    uint64_t countKind(ElementKind kind) const;

    /** In-degree per element (activation edges). */
    std::vector<uint32_t> inDegrees() const;

    /** Reverse adjacency (activation edges). */
    std::vector<std::vector<ElementId>> reverseAdjacency() const;

    /**
     * Connected components of the undirected activation graph.
     * Returns a component id per element; component count via the
     * out-param.
     */
    std::vector<uint32_t> connectedComponents(uint32_t &count) const;

    /** Check structural invariants; non-OK Status (kParseError) on
     *  the first violation. Used by the untrusted-input loaders. */
    Status check() const;

    /** Check structural invariants; fatal() on violation. For
     *  generator/transform code, where a violation is a bug. */
    void validate() const;

  private:
    std::string name_;
    std::vector<Element> elements_;
};

} // namespace azoo

#endif // AZOO_CORE_AUTOMATON_HH
