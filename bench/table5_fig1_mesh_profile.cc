/**
 * @file
 * Figure 1 + Table V: profile-driven mesh pruning (Section X).
 *
 * For each kernel (Hamming, Levenshtein) and scoring distance d in
 * {3, 5, 10}, build N candidate filters of growing pattern length l
 * over random DNA, simulate them on random DNA input, and record the
 * average reports per filter per million input symbols. Following the
 * paper's methodology, the chosen benchmark length is the smallest l
 * whose rate drops below 1 report per million inputs; Figure 1 is the
 * per-length rate series (exponential decay in l), and Table V is the
 * chosen (d, l) pairs: Hamming {3:18, 5:22, 10:31}, Levenshtein
 * {3:19, 5:24, 10:37}.
 *
 * Flags: --filters N (default 10, as in the paper), --profile-sym M
 * (default 500,000 symbols; the paper uses 1,000,000),
 * --fast (skip d=10, which dominates runtime).
 */

#include <iostream>

#include "bench/common.hh"
#include "util/cli.hh"
#include "engine/nfa_engine.hh"
#include "input/dna.hh"
#include "util/table.hh"
#include "zoo/mesh.hh"

using namespace azoo;

namespace {

/** Average reports per filter per million symbols for (kind, l, d). */
double
profileRate(zoo::MeshKind kind, int l, int d, int filters,
            size_t symbols, uint64_t seed)
{
    Rng rng(seed ^ (static_cast<uint64_t>(l) << 16) ^
            static_cast<uint64_t>(d));
    Automaton a("profile");
    for (int i = 0; i < filters; ++i) {
        std::string p = input::randomDnaString(l, rng);
        if (kind == zoo::MeshKind::kHamming)
            zoo::appendHammingFilter(a, p, d, i);
        else
            zoo::appendLevenshteinFilter(a, p, d, i);
    }
    auto in = input::randomDna(symbols, seed ^ 0xd4aULL ^ l);
    NfaEngine e(a);
    SimOptions opts;
    opts.recordReports = false;
    opts.computeActiveSet = false;
    auto r = e.simulate(in, opts);
    return static_cast<double>(r.reportCount) / filters * 1e6 /
        symbols;
}

} // namespace

int
main(int argc, char **argv)
{
    Cli cli(argc, argv,
            {"filters", "profile-sym", "fast", "seed"});
    const int filters = static_cast<int>(cli.getInt("filters", 10));
    const size_t symbols =
        static_cast<size_t>(cli.getInt("profile-sym", 1000000));
    const bool fast = cli.getBool("fast");
    const uint64_t seed =
        static_cast<uint64_t>(cli.getInt("seed", 42));

    std::cout << "Figure 1 / Table V: profile-driven mesh pruning ("
              << filters << " filters, " << symbols
              << " profile symbols)\n\n";

    struct Chosen {
        std::string kernel;
        int d;
        int l;
        int paper_l;
    };
    std::vector<Chosen> chosen;

    for (const auto &mv : zoo::meshVariants()) {
        if (fast && mv.d >= 10)
            continue;
        const bool ham = mv.kind == zoo::MeshKind::kHamming;
        const char *kname = ham ? "Hamming" : "Levenshtein";
        std::cout << "Figure 1 series: " << kname << " d=" << mv.d
                  << "\n";
        std::cout << "  l : reports per filter per 1M symbols\n";

        // Sweep a window below the paper's chosen length; the full
        // curve from l = d+3 is available but the decay is steep and
        // the interesting crossover sits near the paper's value.
        int l = std::max(mv.d + 3, mv.paperL - 7);
        int picked = -1;
        for (; l <= mv.paperL + 6; ++l) {
            const double rate = profileRate(mv.kind, l, mv.d, filters,
                                            symbols, seed);
            std::cout << "  " << l << " : "
                      << Table::fixed(rate, 3) << "\n";
            if (rate < 1.0) {
                picked = l;
                break;
            }
        }
        if (picked < 0)
            picked = l;
        chosen.push_back({kname, mv.d, picked, mv.paperL});
        std::cout << "  -> chosen l = " << picked << " (paper: "
                  << mv.paperL << ")\n\n";
    }

    Table t({"Kernel", "Scoring Distance (d)", "Pattern Length (l)",
             "Paper Table V"});
    for (const auto &c : chosen) {
        t.addRow({c.kernel, std::to_string(c.d), std::to_string(c.l),
                  std::to_string(c.paper_l)});
    }
    std::cout << "Table V: chosen variant parameters\n\n";
    t.print(std::cout);
    return 0;
}
