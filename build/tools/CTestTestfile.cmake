# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(tools_pipeline "sh" "-c" "set -e;         /root/repo/build/tools/azoo_gen --list > /dev/null;         /root/repo/build/tools/azoo_gen --name Protomata --out /root/repo/build/tools/proto --format mnrl --scale 0.01 --input 65536;         /root/repo/build/tools/azoo_opt --in /root/repo/build/tools/proto.mnrl --out /root/repo/build/tools/proto.anml --pass full,prune;         /root/repo/build/tools/azoo_run --automaton /root/repo/build/tools/proto.anml --input /root/repo/build/tools/proto.input --engine nfa --by-code;         /root/repo/build/tools/azoo_run --automaton /root/repo/build/tools/proto.mnrl --input /root/repo/build/tools/proto.input --engine dfa")
set_tests_properties(tools_pipeline PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;14;add_test;/root/repo/tools/CMakeLists.txt;0;")
