/**
 * @file
 * Interchange-format tests: MNRL (JSON) and ANML (XML) round-trips,
 * cross-format equivalence (azml == mnrl == anml), hand-authored
 * document parsing, and malformed-input rejection.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "core/anml.hh"
#include "core/builder.hh"
#include "core/mnrl.hh"
#include "core/serialize.hh"
#include "engine/nfa_engine.hh"
#include "regex/glushkov.hh"
#include "regex/parser.hh"
#include "util/rng.hh"

namespace azoo {
namespace {

/** A representative automaton touching every serializable feature. */
Automaton
featureFullAutomaton()
{
    Automaton a("kitchen.sink");
    ElementId s0 = a.addSte(CharSet::fromExpr("a-f\\x00\\xff"),
                            StartType::kAllInput);
    ElementId s1 = a.addSte(CharSet::all(), StartType::kStartOfData,
                            true, 42);
    ElementId s2 = a.addSte(CharSet::single('"'), StartType::kNone,
                            true, 7); // json/xml escaping hazard
    ElementId c = a.addCounter(9, CounterMode::kRollover, true, 3);
    a.addEdge(s0, s1);
    a.addEdge(s1, s1);
    a.addEdge(s1, s2);
    a.addEdge(s2, c);
    a.addResetEdge(s0, c);
    return a;
}

void
expectEqualAutomata(const Automaton &x, const Automaton &y)
{
    ASSERT_EQ(x.size(), y.size());
    EXPECT_EQ(x.name(), y.name());
    for (ElementId i = 0; i < x.size(); ++i) {
        const Element &e = x.element(i);
        const Element &f = y.element(i);
        EXPECT_EQ(e.kind, f.kind) << i;
        EXPECT_EQ(e.start, f.start) << i;
        EXPECT_EQ(e.reporting, f.reporting) << i;
        EXPECT_EQ(e.reportCode, f.reportCode) << i;
        EXPECT_EQ(e.symbols, f.symbols) << i;
        EXPECT_EQ(e.target, f.target) << i;
        EXPECT_EQ(e.mode, f.mode) << i;
        EXPECT_EQ(e.out, f.out) << i;
        EXPECT_EQ(e.resetOut, f.resetOut) << i;
    }
}

TEST(Mnrl, RoundTripsAllFeatures)
{
    Automaton a = featureFullAutomaton();
    std::ostringstream os;
    writeMnrl(os, a);
    std::istringstream is(os.str());
    expectEqualAutomata(a, readMnrlOrDie(is));
}

TEST(Anml, RoundTripsAllFeatures)
{
    Automaton a = featureFullAutomaton();
    std::ostringstream os;
    writeAnml(os, a);
    std::istringstream is(os.str());
    expectEqualAutomata(a, readAnmlOrDie(is));
}

TEST(Formats, CrossFormatEquivalence)
{
    // azml -> mnrl -> anml -> azml preserves everything.
    Automaton a = featureFullAutomaton();
    std::ostringstream s1;
    writeMnrl(s1, a);
    std::istringstream r1(s1.str());
    Automaton b = readMnrlOrDie(r1);
    std::ostringstream s2;
    writeAnml(s2, b);
    std::istringstream r2(s2.str());
    Automaton c = readAnmlOrDie(r2);
    std::ostringstream s3, s4;
    writeAzml(s3, a);
    writeAzml(s4, c);
    EXPECT_EQ(s3.str(), s4.str());
}

TEST(Mnrl, ParsesHandAuthoredDocument)
{
    const char *doc = R"({
      "id": "hand",
      "nodes": [
        {"id": "start", "type": "hState", "enable": "always",
         "report": false,
         "attributes": {"symbolSet": "[ab]"},
         "outputConnections": [{"id": "end", "port": "i"}]},
        {"id": "end", "type": "hState", "enable": "onActivateIn",
         "report": true, "reportId": 12,
         "attributes": {"symbolSet": "[c]"},
         "outputConnections": []}
      ]
    })";
    std::istringstream is(doc);
    Automaton a = readMnrlOrDie(is);
    ASSERT_EQ(a.size(), 2u);
    EXPECT_EQ(a.name(), "hand");
    EXPECT_EQ(a.element(0).start, StartType::kAllInput);
    EXPECT_TRUE(a.element(1).reporting);
    EXPECT_EQ(a.element(1).reportCode, 12u);

    NfaEngine e(a);
    std::vector<uint8_t> in = {'x', 'a', 'c', 'b'};
    auto r = e.simulate(in);
    ASSERT_EQ(r.reportCount, 1u);
    EXPECT_EQ(r.reports[0].offset, 2u);
}

TEST(Anml, ParsesHandAuthoredDocument)
{
    const char *doc = R"(<?xml version="1.0"?>
<anml version="1.0">
  <!-- hand written -->
  <automata-network id="hand">
    <state-transition-element id="q0" symbol-set="[xy]"
        start="all-input">
      <activate-on-match element="q1"/>
    </state-transition-element>
    <state-transition-element id="q1" symbol-set="[z]" start="none">
      <report-on-match reportcode="3"/>
    </state-transition-element>
  </automata-network>
</anml>)";
    std::istringstream is(doc);
    Automaton a = readAnmlOrDie(is);
    ASSERT_EQ(a.size(), 2u);
    NfaEngine e(a);
    std::vector<uint8_t> in = {'x', 'z', 'z'};
    EXPECT_EQ(e.simulate(in).reportCount, 1u);
}

TEST(Mnrl, RejectsMalformed)
{
    auto rejects = [](const std::string &doc, const char *why) {
        std::istringstream is(doc);
        Expected<Automaton> got = readMnrl(is);
        ASSERT_FALSE(got.ok()) << doc;
        EXPECT_NE(got.status().message().find(why), std::string::npos)
            << got.status().str();
    };
    rejects("{", "unexpected end");
    rejects("[]", "root is not an object");
    rejects(R"({"id": "x"})", "missing nodes");
    rejects(R"({"id":"x","nodes":[{"id":"a","type":"boolean"}]})",
            "unsupported node type");
    rejects(R"({"id":"x","nodes":[{"id":"a","type":"hState",
          "attributes":{"symbolSet":"[a]"},
          "outputConnections":[{"id":"nope"}]}]})",
            "unknown node");
}

TEST(Anml, RejectsMalformed)
{
    auto rejects = [](const std::string &doc, const char *why) {
        std::istringstream is(doc);
        Expected<Automaton> got = readAnml(is);
        ASSERT_FALSE(got.ok()) << doc;
        EXPECT_NE(got.status().message().find(why), std::string::npos)
            << got.status().str();
    };
    rejects("<anml><automata-network id=\"x\"><bogus/>"
            "</automata-network></anml>",
            "unsupported element");
    rejects("<anml><state-transition-element id=\"a\" "
            "symbol-set=\"[a]\" start=\"none\"/></anml>",
            "outside automata-network");
}

/** Property: random regex automata round-trip through both formats
 *  and still report identically. */
class FormatProperty : public testing::TestWithParam<int>
{
};

TEST_P(FormatProperty, RandomAutomataBehaveIdentically)
{
    Rng rng(21000 + GetParam());
    static const char *kPatterns[] = {"ab+c", "a(b|c)d", "x[a-d]{2,4}",
                                      "a.c", "ab|ba"};
    Automaton a("p");
    for (int i = 0; i < 3; ++i) {
        appendRegex(
            a,
            parseRegexOrDie(kPatterns[rng.nextBelow(std::size(kPatterns))]),
            static_cast<uint32_t>(i));
    }

    std::ostringstream mj, ax;
    writeMnrl(mj, a);
    writeAnml(ax, a);
    std::istringstream mji(mj.str()), axi(ax.str());
    Automaton via_mnrl = readMnrlOrDie(mji);
    Automaton via_anml = readAnmlOrDie(axi);

    NfaEngine e0(a), e1(via_mnrl), e2(via_anml);
    for (int t = 0; t < 4; ++t) {
        std::string text = rng.randomString(1 + rng.nextBelow(50),
                                            "abcdx");
        std::vector<uint8_t> in(text.begin(), text.end());
        auto r0 = e0.simulate(in);
        ASSERT_EQ(e1.simulate(in).reports, r0.reports);
        ASSERT_EQ(e2.simulate(in).reports, r0.reports);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FormatProperty, testing::Range(0, 15));

} // namespace
} // namespace azoo
