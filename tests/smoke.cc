#include "zoo/registry.hh"
#include "core/stats.hh"
#include "engine/nfa_engine.hh"
#include "util/timer.hh"
#include <cstdio>
using namespace azoo;
int main() {
    zoo::ZooConfig cfg;
    cfg.scale = 0.02;
    cfg.inputBytes = 64 * 1024;
    for (const auto &info : zoo::allBenchmarks()) {
        Timer t;
        zoo::Benchmark b = info.make(cfg);
        b.automaton.validate();
        GraphStats s = computeStats(b.automaton);
        double gen = t.seconds();
        t.reset();
        NfaEngine eng(b.automaton);
        SimOptions so; so.recordReports = false;
        auto r = eng.simulate(b.input, so);
        std::printf("%-22s states=%8llu edges=%9llu e/n=%5.2f sub=%6u "
                    "avg=%7.2f act=%9.2f rep=%8llu gen=%.1fs sim=%.1fs\n",
                    info.name.c_str(),
                    (unsigned long long)(s.states + s.counters),
                    (unsigned long long)s.edges, s.edgesPerNode,
                    s.subgraphs, s.avgSubgraph, r.avgActiveSet(),
                    (unsigned long long)r.reportCount, gen, t.seconds());
        std::fflush(stdout);
    }
    return 0;
}
