#include "regex/ast.hh"

#include "util/logging.hh"

namespace azoo {

std::unique_ptr<RegexNode>
RegexNode::clone() const
{
    auto n = std::make_unique<RegexNode>();
    n->op = op;
    n->cls = cls;
    n->min = min;
    n->max = max;
    n->kids.reserve(kids.size());
    for (const auto &k : kids)
        n->kids.push_back(k->clone());
    return n;
}

std::unique_ptr<RegexNode>
makeClass(const CharSet &cs)
{
    auto n = std::make_unique<RegexNode>();
    n->op = RegexOp::kClass;
    n->cls = cs;
    return n;
}

std::unique_ptr<RegexNode>
makeEmpty()
{
    auto n = std::make_unique<RegexNode>();
    n->op = RegexOp::kEmpty;
    return n;
}

bool
nullable(const RegexNode &n)
{
    switch (n.op) {
      case RegexOp::kEmpty:
        return true;
      case RegexOp::kClass:
        return false;
      case RegexOp::kConcat:
        for (const auto &k : n.kids)
            if (!nullable(*k))
                return false;
        return true;
      case RegexOp::kAlt:
        for (const auto &k : n.kids)
            if (nullable(*k))
                return true;
        return false;
      case RegexOp::kStar:
      case RegexOp::kOpt:
        return true;
      case RegexOp::kPlus:
        return nullable(*n.kids[0]);
      case RegexOp::kRepeat:
        return n.min == 0 || nullable(*n.kids[0]);
    }
    return false;
}

size_t
countPositions(const RegexNode &n)
{
    switch (n.op) {
      case RegexOp::kEmpty:
        return 0;
      case RegexOp::kClass:
        return 1;
      case RegexOp::kRepeat: {
        size_t child = countPositions(*n.kids[0]);
        size_t copies = n.max < 0
            ? static_cast<size_t>(n.min ? n.min : 1)
            : static_cast<size_t>(n.max);
        return child * std::max<size_t>(copies, 1);
      }
      default: {
        size_t total = 0;
        for (const auto &k : n.kids)
            total += countPositions(*k);
        return total;
      }
    }
}

namespace {

std::unique_ptr<RegexNode>
makeOp(RegexOp op, std::unique_ptr<RegexNode> kid)
{
    auto n = std::make_unique<RegexNode>();
    n->op = op;
    n->kids.push_back(std::move(kid));
    return n;
}

} // namespace

std::unique_ptr<RegexNode>
expandRepeats(std::unique_ptr<RegexNode> node, size_t position_limit)
{
    // Recurse first so nested repeats expand bottom-up.
    for (auto &k : node->kids)
        k = expandRepeats(std::move(k), position_limit);

    if (node->op != RegexOp::kRepeat)
        return node;

    const int min = node->min;
    const int max = node->max;
    auto child = std::move(node->kids[0]);

    if (max == 0 && min == 0)
        return makeEmpty();
    if (min == 0 && max < 0)
        return makeOp(RegexOp::kStar, std::move(child));
    if (min == 1 && max < 0)
        return makeOp(RegexOp::kPlus, std::move(child));
    if (min == 0 && max == 1)
        return makeOp(RegexOp::kOpt, std::move(child));

    const size_t child_positions = countPositions(*child);
    const size_t copies = max < 0 ? static_cast<size_t>(min)
                                  : static_cast<size_t>(max);
    if (child_positions * copies > position_limit) {
        fatal(cat("regex: bounded repeat {", min, ",", max,
                  "} expands past the ", position_limit,
                  "-position limit"));
    }

    auto seq = std::make_unique<RegexNode>();
    seq->op = RegexOp::kConcat;
    // min mandatory copies...
    for (int i = 0; i < min; ++i) {
        bool last = i + 1 == min;
        if (last && max < 0) {
            // {min,}: final copy becomes plus.
            seq->kids.push_back(
                makeOp(RegexOp::kPlus, std::move(child)));
            return seq;
        }
        seq->kids.push_back(last && max == min ? std::move(child)
                                               : child->clone());
    }
    if (max == min)
        return seq;
    // ...then (max - min) optional copies.
    for (int i = min; i < max; ++i) {
        bool last = i + 1 == max;
        seq->kids.push_back(makeOp(
            RegexOp::kOpt, last ? std::move(child) : child->clone()));
    }
    return seq;
}

} // namespace azoo
