/**
 * @file
 * Placement-model and suffix-merge tests: chains pack densely on any
 * fabric; mesh automata waste the track-poor hierarchical fabric but
 * not the island-style one (the routing narrative of Sections II and
 * X); suffix merging preserves report events and composes with
 * prefix merging.
 */

#include <gtest/gtest.h>

#include <set>

#include "core/builder.hh"
#include "engine/nfa_engine.hh"
#include "engine/placement.hh"
#include "regex/glushkov.hh"
#include "regex/parser.hh"
#include "transform/suffix_merge.hh"
#include "util/rng.hh"
#include "zoo/mesh.hh"
#include "zoo/registry.hh"

namespace azoo {
namespace {

TEST(Placement, EmptyAutomaton)
{
    Automaton a("e");
    auto r = placeAndRoute(a, FabricParams::hierarchicalD480());
    EXPECT_EQ(r.blocksUsed, 0u);
    EXPECT_EQ(r.devicesNeeded, 0u);
}

TEST(Placement, ChainsPackDensely)
{
    Automaton a("chains");
    Rng rng(3);
    for (int i = 0; i < 40; ++i) {
        addLiteral(a, rng.randomString(50, "abc"),
                   StartType::kAllInput, true, i);
    }
    for (const auto &fabric : {FabricParams::hierarchicalD480(),
                               FabricParams::islandStyle()}) {
        auto r = placeAndRoute(a, fabric);
        EXPECT_GT(r.utilization, 0.85) << fabric.name;
        EXPECT_EQ(r.overflowEdges, 0u) << fabric.name;
        EXPECT_EQ(r.devicesNeeded, 1u) << fabric.name;
    }
}

TEST(Placement, MeshWastesHierarchicalFabric)
{
    // A Levenshtein mesh bundle: the ANMLZoo observation that these
    // "maximize the routing resources ... but only use 6% of the
    // state capacity" on the D480's hierarchical matrix, while
    // island-style routing fits them densely.
    Automaton a("mesh");
    Rng rng(5);
    for (int i = 0; i < 24; ++i) {
        zoo::appendLevenshteinFilter(
            a, rng.randomString(20, "atgc"), 3,
            static_cast<uint32_t>(i));
    }
    auto hier = placeAndRoute(a, FabricParams::hierarchicalD480());
    auto island = placeAndRoute(a, FabricParams::islandStyle());
    EXPECT_LT(hier.utilization, 0.5);
    EXPECT_GT(island.utilization, 0.8);
    EXPECT_GT(island.utilization, 2 * hier.utilization);
}

TEST(Placement, DeviceCountScalesWithStates)
{
    Automaton a("big");
    // 60k one-state components exceed one 49,152-STE device.
    for (int i = 0; i < 60000; ++i)
        a.addSte(CharSet::all(), StartType::kAllInput, true, 0);
    auto r = placeAndRoute(a, FabricParams::hierarchicalD480());
    EXPECT_EQ(r.devicesNeeded, 2u);
    EXPECT_DOUBLE_EQ(r.utilization, 60000.0 / (235 * 256));
}

TEST(Placement, CrossEdgesCountedOncePerEdge)
{
    // Two states forced into different blocks by a tiny block size.
    FabricParams f;
    f.name = "tiny";
    f.blockSize = 1;
    f.trackBudget = 4;
    Automaton a("t");
    ElementId s0 = a.addSte(CharSet::all(), StartType::kAllInput);
    ElementId s1 = a.addSte(CharSet::all(), StartType::kNone, true, 0);
    a.addEdge(s0, s1);
    auto r = placeAndRoute(a, f);
    EXPECT_EQ(r.blocksUsed, 2u);
    EXPECT_EQ(r.crossBlockEdges, 1u);
}

TEST(SuffixMerge, CollapsesSharedSuffixes)
{
    // Two literals with a common 3-char suffix reported with the
    // same code.
    Automaton a("t");
    addLiteral(a, "xxabc", StartType::kAllInput, true, 1);
    addLiteral(a, "yyabc", StartType::kAllInput, true, 1);
    MergeResult m = suffixMerge(a);
    EXPECT_EQ(m.statesAfter, 7u); // "abc" shared
}

TEST(SuffixMerge, KeepsDifferentCodesApart)
{
    Automaton a("t");
    addLiteral(a, "xab", StartType::kAllInput, true, 1);
    addLiteral(a, "yab", StartType::kAllInput, true, 2);
    MergeResult m = suffixMerge(a);
    EXPECT_EQ(m.statesAfter, 6u);
}

std::set<std::pair<uint64_t, uint32_t>>
events(const Automaton &a, const std::vector<uint8_t> &in)
{
    NfaEngine e(a);
    auto r = e.simulate(in);
    std::set<std::pair<uint64_t, uint32_t>> out;
    for (const auto &rep : r.reports)
        out.insert({rep.offset, rep.code});
    return out;
}

class SuffixMergeProperty : public testing::TestWithParam<int>
{
};

TEST_P(SuffixMergeProperty, PreservesReportEvents)
{
    Rng rng(22000 + GetParam());
    static const char *kPatterns[] = {"abc", "xbc", "a.c", "ab+c",
                                      "(x|y)bc", "bc"};
    Automaton a("t");
    const int count = 2 + static_cast<int>(rng.nextBelow(4));
    for (int i = 0; i < count; ++i) {
        appendRegex(
            a,
            parseRegexOrDie(kPatterns[rng.nextBelow(std::size(kPatterns))]),
            static_cast<uint32_t>(rng.nextBelow(3)));
    }
    MergeResult s = suffixMerge(a);
    MergeResult f = fullMerge(a);
    s.automaton.validate();
    f.automaton.validate();
    EXPECT_LE(f.statesAfter, s.statesAfter);
    for (int t = 0; t < 5; ++t) {
        std::string text = rng.randomString(1 + rng.nextBelow(40),
                                            "abcxy");
        std::vector<uint8_t> in(text.begin(), text.end());
        auto expect = events(a, in);
        ASSERT_EQ(events(s.automaton, in), expect) << text;
        ASSERT_EQ(events(f.automaton, in), expect) << text;
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SuffixMergeProperty,
                         testing::Range(0, 25));

TEST(FullMerge, BeatsEitherAloneOnDiamonds)
{
    // Shared prefix AND shared suffix: only the combination collapses
    // both ends.
    Automaton a("t");
    addLiteral(a, "ppXss", StartType::kAllInput, true, 9);
    addLiteral(a, "ppYss", StartType::kAllInput, true, 9);
    MergeResult p = prefixMerge(a);
    MergeResult s = suffixMerge(a);
    MergeResult f = fullMerge(a);
    EXPECT_EQ(p.statesAfter, 8u);
    EXPECT_EQ(s.statesAfter, 8u);
    EXPECT_EQ(f.statesAfter, 6u);
}

/** Suite-wide property: island-style routing never overflows its
 *  track budget on any benchmark (the fabric AutomataZoo assumes
 *  researchers will target). */
TEST(Placement, IslandStyleRoutesWholeSuiteCleanly)
{
    zoo::ZooConfig cfg;
    cfg.scale = 0.01;
    cfg.inputBytes = 1024;
    for (const auto &info : zoo::allBenchmarks()) {
        zoo::Benchmark b = info.make(cfg);
        auto r = placeAndRoute(b.automaton,
                               FabricParams::islandStyle());
        EXPECT_EQ(r.overflowEdges, 0u) << info.name;
        EXPECT_GT(r.utilization, 0.3) << info.name;
    }
}

} // namespace
} // namespace azoo
