/**
 * @file
 * 256-way character set, the match label carried by every STE in a
 * homogeneous automaton (ANML/MNRL convention).
 */

#ifndef AZOO_CORE_CHARSET_HH
#define AZOO_CORE_CHARSET_HH

#include <array>
#include <cstdint>
#include <string>

namespace azoo {

/**
 * A set of 8-bit symbols represented as a 256-bit bitmap.
 *
 * This is the hot data structure of the NFA interpreter, so membership
 * tests are branch-free word ops. Bit-level automata reuse CharSet
 * with only symbols 0 and 1 populated.
 */
class CharSet
{
  public:
    /** Empty set. */
    CharSet() : words_{} {}

    /** Singleton set. */
    static CharSet single(uint8_t c);

    /** Inclusive range [lo, hi]. */
    static CharSet range(uint8_t lo, uint8_t hi);

    /** Full set (matches any symbol), the '*' STE. */
    static CharSet all();

    /** Rebuild a set from its raw word storage (the artifact loader's
     *  inverse of word()). */
    static CharSet
    fromWords(const std::array<uint64_t, 4> &words)
    {
        CharSet s;
        s.words_ = words;
        return s;
    }

    /** Parse a character-class style expression, e.g. "a-zA-Z0-9_".
     *  A leading '^' negates. '\xNN' escapes are supported.
     *  fatal() on malformed expressions; trusted call sites only. */
    static CharSet fromExpr(const std::string &expr);

    /** Non-fatal fromExpr for untrusted input (the format loaders):
     *  returns false and fills @p error on a malformed expression. */
    static bool tryFromExpr(const std::string &expr, CharSet &out,
                            std::string &error);

    bool
    test(uint8_t c) const
    {
        return (words_[c >> 6] >> (c & 63)) & 1;
    }

    void
    set(uint8_t c)
    {
        words_[c >> 6] |= uint64_t(1) << (c & 63);
    }

    void
    clear(uint8_t c)
    {
        words_[c >> 6] &= ~(uint64_t(1) << (c & 63));
    }

    void setRange(uint8_t lo, uint8_t hi);

    /** Number of symbols in the set. */
    int count() const;

    bool empty() const;

    /** Lowest member, or -1 if empty. */
    int lowest() const;

    CharSet operator|(const CharSet &o) const;
    CharSet operator&(const CharSet &o) const;
    CharSet operator~() const;
    CharSet &operator|=(const CharSet &o);
    CharSet &operator&=(const CharSet &o);
    bool operator==(const CharSet &o) const { return words_ == o.words_; }
    bool operator!=(const CharSet &o) const { return words_ != o.words_; }

    /** Stable 64-bit hash (used by state-merging passes). */
    uint64_t hash() const;

    /** Raw word access for the simulation kernels. */
    uint64_t word(int i) const { return words_[i]; }

    /** Compact display form, e.g. "[a-c\x00]" or "*". */
    std::string str() const;

  private:
    std::array<uint64_t, 4> words_;
};

} // namespace azoo

#endif // AZOO_CORE_CHARSET_HH
