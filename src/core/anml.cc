#include "core/anml.hh"

#include <fstream>
#include <map>
#include <sstream>
#include <vector>

#include "util/logging.hh"
#include "util/strings.hh"

namespace azoo {

namespace {

std::string
xmlEscape(const std::string &s)
{
    std::string out;
    for (char c : s) {
        switch (c) {
          case '<': out += "&lt;"; break;
          case '>': out += "&gt;"; break;
          case '&': out += "&amp;"; break;
          case '"': out += "&quot;"; break;
          case '\'': out += "&apos;"; break;
          default: out.push_back(c);
        }
    }
    return out;
}

std::string
xmlUnescape(const std::string &s)
{
    std::string out;
    size_t i = 0;
    while (i < s.size()) {
        if (s[i] != '&') {
            out.push_back(s[i++]);
            continue;
        }
        if (s.compare(i, 4, "&lt;") == 0) {
            out.push_back('<');
            i += 4;
        } else if (s.compare(i, 4, "&gt;") == 0) {
            out.push_back('>');
            i += 4;
        } else if (s.compare(i, 5, "&amp;") == 0) {
            out.push_back('&');
            i += 5;
        } else if (s.compare(i, 6, "&quot;") == 0) {
            out.push_back('"');
            i += 6;
        } else if (s.compare(i, 6, "&apos;") == 0) {
            out.push_back('\'');
            i += 6;
        } else {
            fatal(cat("anml: bad entity near '", s.substr(i, 6), "'"));
        }
    }
    return out;
}

const char *
startAttr(StartType s)
{
    switch (s) {
      case StartType::kNone: return "none";
      case StartType::kStartOfData: return "start-of-data";
      case StartType::kAllInput: return "all-input";
    }
    return "none";
}

const char *
atTargetAttr(CounterMode m)
{
    switch (m) {
      case CounterMode::kLatch: return "latch";
      case CounterMode::kPulse: return "pulse";
      case CounterMode::kRollover: return "roll";
    }
    return "latch";
}

/** One parsed XML tag: name, attributes, open/close/self-closing. */
struct XmlTag {
    std::string name;
    std::map<std::string, std::string> attrs;
    bool closing = false;     ///< </name>
    bool selfClosing = false; ///< <name ... />
};

/** Tiny streaming tag scanner (ignores text content and comments). */
class XmlScanner
{
  public:
    explicit XmlScanner(std::string text) : text_(std::move(text)) {}

    /** Next tag, or false at end of document. */
    bool
    next(XmlTag &tag)
    {
        for (;;) {
            const size_t lt = text_.find('<', pos_);
            if (lt == std::string::npos)
                return false;
            if (text_.compare(lt, 4, "<!--") == 0) {
                const size_t end = text_.find("-->", lt);
                if (end == std::string::npos)
                    fatal("anml: unterminated comment");
                pos_ = end + 3;
                continue;
            }
            if (text_.compare(lt, 2, "<?") == 0) {
                const size_t end = text_.find("?>", lt);
                if (end == std::string::npos)
                    fatal("anml: unterminated declaration");
                pos_ = end + 2;
                continue;
            }
            const size_t gt = text_.find('>', lt);
            if (gt == std::string::npos)
                fatal("anml: unterminated tag");
            parseTag(text_.substr(lt + 1, gt - lt - 1), tag);
            pos_ = gt + 1;
            return true;
        }
    }

  private:
    void
    parseTag(std::string body, XmlTag &tag)
    {
        tag = XmlTag();
        body = trim(body);
        if (!body.empty() && body.front() == '/') {
            tag.closing = true;
            body = trim(body.substr(1));
        }
        if (!body.empty() && body.back() == '/') {
            tag.selfClosing = true;
            body = trim(body.substr(0, body.size() - 1));
        }
        size_t i = 0;
        while (i < body.size() &&
               !std::isspace(static_cast<unsigned char>(body[i]))) {
            tag.name.push_back(body[i++]);
        }
        // Attributes: name="value".
        while (i < body.size()) {
            while (i < body.size() &&
                   std::isspace(static_cast<unsigned char>(body[i]))) {
                ++i;
            }
            if (i >= body.size())
                break;
            std::string name;
            while (i < body.size() && body[i] != '=' &&
                   !std::isspace(static_cast<unsigned char>(body[i]))) {
                name.push_back(body[i++]);
            }
            while (i < body.size() &&
                   (body[i] == '=' ||
                    std::isspace(static_cast<unsigned char>(body[i])))) {
                ++i;
            }
            if (i >= body.size() || body[i] != '"')
                fatal(cat("anml: attribute '", name,
                          "' missing quoted value"));
            ++i;
            std::string value;
            while (i < body.size() && body[i] != '"')
                value.push_back(body[i++]);
            if (i >= body.size())
                fatal("anml: unterminated attribute value");
            ++i;
            tag.attrs[name] = xmlUnescape(value);
        }
    }

    std::string text_;
    size_t pos_ = 0;
};

} // namespace

void
writeAnml(std::ostream &os, const Automaton &a)
{
    os << "<anml version=\"1.0\">\n";
    os << "  <automata-network id=\""
       << xmlEscape(a.name().empty() ? "unnamed" : a.name())
       << "\">\n";
    for (ElementId i = 0; i < a.size(); ++i) {
        const Element &e = a.element(i);
        if (e.kind == ElementKind::kSte) {
            os << "    <state-transition-element id=\"_" << i
               << "\" symbol-set=\"" << xmlEscape(e.symbols.str())
               << "\" start=\"" << startAttr(e.start) << "\">\n";
            if (e.reporting) {
                os << "      <report-on-match reportcode=\""
                   << e.reportCode << "\"/>\n";
            }
            for (auto t : e.out) {
                os << "      <activate-on-match element=\"_" << t
                   << (a.element(t).kind == ElementKind::kCounter
                           ? ":cnt" : "")
                   << "\"/>\n";
            }
            for (auto t : e.resetOut) {
                os << "      <activate-on-match element=\"_" << t
                   << ":rst\"/>\n";
            }
            os << "    </state-transition-element>\n";
        } else {
            os << "    <counter id=\"_" << i << "\" target=\""
               << e.target << "\" at-target=\""
               << atTargetAttr(e.mode) << "\">\n";
            if (e.reporting) {
                os << "      <report-on-target reportcode=\""
                   << e.reportCode << "\"/>\n";
            }
            for (auto t : e.out) {
                os << "      <activate-on-target element=\"_" << t
                   << "\"/>\n";
            }
            os << "    </counter>\n";
        }
    }
    os << "  </automata-network>\n</anml>\n";
}

Automaton
readAnml(std::istream &is)
{
    std::ostringstream buf;
    buf << is.rdbuf();
    XmlScanner scanner(buf.str());

    Automaton a;
    std::map<std::string, ElementId> by_id;
    // Deferred connections: (from, target-id-with-optional-port).
    std::vector<std::pair<ElementId, std::string>> pending;
    ElementId current = kNoElement;
    bool in_network = false;

    XmlTag tag;
    while (scanner.next(tag)) {
        if (tag.name == "anml" || tag.name == "description")
            continue;
        if (tag.name == "automata-network") {
            if (!tag.closing) {
                in_network = true;
                auto it = tag.attrs.find("id");
                if (it != tag.attrs.end())
                    a.setName(it->second);
            }
            continue;
        }
        if (!in_network && !tag.closing)
            fatal(cat("anml: element '", tag.name,
                      "' outside automata-network"));

        if (tag.name == "state-transition-element") {
            if (tag.closing) {
                current = kNoElement;
                continue;
            }
            const std::string &ss = tag.attrs["symbol-set"];
            CharSet cs;
            if (ss == "*") {
                cs = CharSet::all();
            } else if (ss.size() >= 2 && ss.front() == '[' &&
                       ss.back() == ']') {
                cs = CharSet::fromExpr(ss.substr(1, ss.size() - 2));
            } else {
                fatal(cat("anml: bad symbol-set '", ss, "'"));
            }
            StartType start = StartType::kNone;
            const std::string &st = tag.attrs["start"];
            if (st == "start-of-data")
                start = StartType::kStartOfData;
            else if (st == "all-input")
                start = StartType::kAllInput;
            else if (!st.empty() && st != "none")
                fatal(cat("anml: bad start '", st, "'"));
            current = a.addSte(cs, start);
            by_id[tag.attrs["id"]] = current;
            if (tag.selfClosing)
                current = kNoElement;
        } else if (tag.name == "counter") {
            if (tag.closing) {
                current = kNoElement;
                continue;
            }
            CounterMode mode = CounterMode::kLatch;
            const std::string &at = tag.attrs["at-target"];
            if (at == "pulse")
                mode = CounterMode::kPulse;
            else if (at == "roll" || at == "rollover")
                mode = CounterMode::kRollover;
            else if (!at.empty() && at != "latch")
                fatal(cat("anml: bad at-target '", at, "'"));
            current = a.addCounter(
                static_cast<uint32_t>(
                    std::stoul(tag.attrs["target"])),
                mode);
            by_id[tag.attrs["id"]] = current;
            if (tag.selfClosing)
                current = kNoElement;
        } else if (tag.name == "report-on-match" ||
                   tag.name == "report-on-target") {
            if (current == kNoElement)
                fatal(cat("anml: ", tag.name, " outside an element"));
            a.element(current).reporting = true;
            auto it = tag.attrs.find("reportcode");
            if (it != tag.attrs.end()) {
                a.element(current).reportCode =
                    static_cast<uint32_t>(std::stoul(it->second));
            }
        } else if (tag.name == "activate-on-match" ||
                   tag.name == "activate-on-target") {
            if (current == kNoElement)
                fatal(cat("anml: ", tag.name, " outside an element"));
            pending.emplace_back(current, tag.attrs["element"]);
        } else if (!tag.closing) {
            fatal(cat("anml: unsupported element '", tag.name, "'"));
        }
    }

    for (const auto &[from, target] : pending) {
        std::string id = target;
        bool reset = false;
        const size_t colon = id.find(':');
        if (colon != std::string::npos) {
            const std::string port = id.substr(colon + 1);
            id = id.substr(0, colon);
            if (port == "rst")
                reset = true;
            else if (port != "cnt" && port != "i")
                fatal(cat("anml: unknown port '", port, "'"));
        }
        auto it = by_id.find(id);
        if (it == by_id.end())
            fatal(cat("anml: connection to unknown element '", id,
                      "'"));
        if (reset)
            a.addResetEdge(from, it->second);
        else
            a.addEdge(from, it->second);
    }
    a.validate();
    return a;
}

void
saveAnml(const std::string &path, const Automaton &a)
{
    std::ofstream f(path);
    if (!f)
        fatal(cat("cannot open for write: ", path));
    writeAnml(f, a);
}

Automaton
loadAnml(const std::string &path)
{
    std::ifstream f(path);
    if (!f)
        fatal(cat("cannot open for read: ", path));
    return readAnml(f);
}

} // namespace azoo
