#include "zoo/seqmatch.hh"

#include <algorithm>
#include <set>

#include "util/logging.hh"
#include "util/rng.hh"

namespace azoo {
namespace zoo {

size_t
appendSeqFilter(Automaton &a, const std::vector<uint8_t> &itemset,
                const SeqMatchParams &p, uint32_t code)
{
    const int m = static_cast<int>(itemset.size());
    if (m < 1 || p.filterWidth < m)
        fatal(cat("seq filter: width ", p.filterWidth,
                  " < itemset size ", m));
    for (int j = 1; j < m; ++j) {
        if (itemset[j] <= itemset[j - 1])
            fatal("seq filter: itemset must be strictly ascending");
    }

    const size_t before = a.size();

    // Skip-ring length: 4 in the exact design; soft-reconfigurable
    // filters provision one extra ring slot per unused item slot.
    const int ring_len = 4 + (p.filterWidth - m);

    // Transaction-start arming state.
    ElementId sep = a.addSte(CharSet::single(kSeqSeparator),
                             StartType::kAllInput);

    ElementId prev = sep;
    ElementId last_item = kNoElement;
    for (int j = 0; j < m; ++j) {
        // Items strictly below itemset[j] may be skipped.
        CharSet skip;
        if (itemset[j] > 1)
            skip = CharSet::range(0x01, itemset[j] - 1);

        ElementId item = a.addSte(CharSet::single(itemset[j]));
        a.addEdge(prev, item);

        if (!skip.empty()) {
            // Parallel self-looping skip slots: the symbol-replacement
            // layout provisions one slot per supported item, and all
            // slots stay enabled while a skip run is in progress --
            // which is exactly why padded (wider) filters cost more on
            // enabled-set engines (Table III).
            for (int r = 0; r < ring_len; ++r) {
                ElementId slot = a.addSte(skip);
                a.addEdge(prev, slot);
                a.addEdge(slot, slot);
                a.addEdge(slot, item);
            }
        }
        prev = item;
        last_item = item;
    }

    if (p.withCounters) {
        ElementId cnt = a.addCounter(p.supportThreshold,
                                     CounterMode::kLatch, true, code);
        a.addEdge(last_item, cnt);
    } else {
        a.element(last_item).reporting = true;
        a.element(last_item).reportCode = code;
    }
    return a.size() - before;
}

std::vector<std::vector<uint8_t>>
seqMatchItemsets(const ZooConfig &cfg, const SeqMatchParams &p)
{
    const size_t n = cfg.scaled(1719);
    Rng rng(cfg.seed ^ 0x5e9ULL);
    std::vector<std::vector<uint8_t>> itemsets;
    itemsets.reserve(n);
    for (size_t i = 0; i < n; ++i) {
        std::set<uint8_t> s;
        while (static_cast<int>(s.size()) < p.itemsetSize) {
            s.insert(static_cast<uint8_t>(
                1 + rng.nextBelow(kSeqMaxItem)));
        }
        itemsets.emplace_back(s.begin(), s.end());
    }
    return itemsets;
}

std::vector<uint64_t>
nativeSupportCounts(const std::vector<std::vector<uint8_t>> &itemsets,
                    const std::vector<uint8_t> &stream)
{
    std::vector<uint64_t> support(itemsets.size(), 0);
    std::vector<uint8_t> txn;
    auto close_txn = [&]() {
        if (txn.empty())
            return;
        for (size_t f = 0; f < itemsets.size(); ++f) {
            // Two-pointer subset test over sorted sequences.
            const auto &set = itemsets[f];
            size_t i = 0;
            for (size_t j = 0; j < txn.size() && i < set.size();
                 ++j) {
                if (txn[j] == set[i])
                    ++i;
            }
            if (i == set.size())
                ++support[f];
        }
        txn.clear();
    };
    for (auto b : stream) {
        if (b == kSeqSeparator)
            close_txn();
        else
            txn.push_back(b);
    }
    close_txn();
    return support;
}

Benchmark
makeSeqMatchBenchmark(const ZooConfig &cfg, const SeqMatchParams &p)
{
    Benchmark b;
    b.name = cat("Seq. Match ", p.itemsetSize, "w ", p.filterWidth,
                 "p", p.withCounters ? " wC" : "");
    b.domain = "Ordered Pattern Counting";
    b.inputDesc = "Sorted transactions";

    Automaton a(b.name);
    auto itemsets = seqMatchItemsets(cfg, p);
    for (size_t i = 0; i < itemsets.size(); ++i)
        appendSeqFilter(a, itemsets[i], p, static_cast<uint32_t>(i));

    // Input: sorted transactions; roughly 1 in 40 embeds one of the
    // benchmark itemsets so support counters actually fire.
    std::vector<uint8_t> in;
    in.reserve(cfg.inputBytes + 64);
    Rng irng(cfg.seed ^ 0x7a11ULL);
    while (in.size() < cfg.inputBytes) {
        std::set<uint8_t> txn;
        const size_t len = 8 + irng.nextBelow(17);
        while (txn.size() < len) {
            txn.insert(static_cast<uint8_t>(
                1 + irng.nextBelow(kSeqMaxItem)));
        }
        if (irng.nextBelow(40) == 0) {
            const auto &plant = itemsets[irng.nextBelow(
                itemsets.size())];
            txn.insert(plant.begin(), plant.end());
        }
        in.insert(in.end(), txn.begin(), txn.end());
        in.push_back(kSeqSeparator);
    }
    in.resize(cfg.inputBytes);

    b.automaton = std::move(a);
    b.input = std::move(in);
    return b;
}

} // namespace zoo
} // namespace azoo
