#!/usr/bin/env python3
"""Docs consistency checker (CI's docs job; stdlib only).

Two classes of rot this catches:

1. Broken intra-repo markdown links. Every relative link target in
   every tracked *.md file must exist on disk (anchors are stripped;
   external http(s)/mailto links are ignored).

2. Documented flags that the tools no longer accept. In each
   ``## azoo_<tool>`` or ``## bench/<name>`` section of
   docs/FORMATS.md, every flag-table row
   (``| `--flag ...` | meaning |``) must name a flag the
   corresponding binary's ``--help`` lists (``build/tools/<tool>``
   and ``build/bench/<name>`` respectively). This is deliberately
   one-directional: an undocumented flag is an omission, a
   documented-but-removed flag is a lie, and only the lie fails CI.
   Prose may mention other tools' flags freely; the tables are the
   per-tool contract.

3. Rule-catalog drift between azoo_lint and docs/ANALYSIS.md. The
   doc is normative for rule semantics, so the check is
   two-directional: every rule id ``azoo_lint --list-rules`` prints
   must appear in ANALYSIS.md, and every V/L/A-numbered id written
   in ANALYSIS.md must exist in the binary.

Usage: check_docs.py [--build-dir BUILD] [--repo ROOT]
Exit codes follow the tools' sysexits convention: 0 clean, 65 when
any check fails, 64 for usage errors.
"""

import argparse
import os
import re
import subprocess
import sys

LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
FLAG_RE = re.compile(r"--([a-z][a-z0-9-]*)")
TABLE_FLAG_RE = re.compile(r"^\|\s*`--([a-z][a-z0-9-]*)")
TOOL_SECTION_RE = re.compile(r"^## (azoo_[a-z]+|bench/[a-z0-9_]+)\b")
# Rule ids live in fixed hundreds-blocks (V0xx, L1xx, A2xx), which
# keeps census strings like "L235" from false-matching.
RULE_ID_RE = re.compile(r"\b(V0\d{2}|L1\d{2}|A2\d{2})\b")


def tracked_markdown(repo):
    try:
        out = subprocess.run(
            ["git", "-C", repo, "ls-files", "*.md", "**/*.md"],
            capture_output=True, text=True, check=True).stdout
        files = [f for f in out.splitlines() if f]
    except (subprocess.CalledProcessError, FileNotFoundError):
        files = []
    if not files:  # not a git checkout: walk, skipping build trees
        for root, dirs, names in os.walk(repo):
            dirs[:] = [d for d in dirs
                       if d not in (".git", "build") and
                       not d.startswith("build-")]
            files.extend(os.path.relpath(os.path.join(root, n), repo)
                         for n in names if n.endswith(".md"))
    return sorted(files)


def check_links(repo, md_files):
    errors = []
    for rel in md_files:
        path = os.path.join(repo, rel)
        with open(path, encoding="utf-8") as f:
            for lineno, line in enumerate(f, 1):
                for target in LINK_RE.findall(line):
                    if re.match(r"^[a-z+]+:", target):  # http:, mailto:
                        continue
                    target = target.split("#", 1)[0]
                    if not target:  # pure in-page anchor
                        continue
                    resolved = os.path.normpath(
                        os.path.join(repo, os.path.dirname(rel),
                                     target))
                    if not os.path.exists(resolved):
                        errors.append(
                            f"{rel}:{lineno}: broken link -> {target}")
    return errors


def formats_sections(repo):
    """tool name -> text of its '## azoo_*' section in FORMATS.md."""
    path = os.path.join(repo, "docs", "FORMATS.md")
    sections, tool, buf = {}, None, []
    with open(path, encoding="utf-8") as f:
        for line in f:
            m = TOOL_SECTION_RE.match(line)
            if m:
                if tool:
                    sections[tool] = "".join(buf)
                tool, buf = m.group(1), []
            elif line.startswith("## "):
                if tool:
                    sections[tool] = "".join(buf)
                tool = None
            elif tool:
                buf.append(line)
    if tool:
        sections[tool] = "".join(buf)
    return sections


def check_flags(repo, build_dir):
    errors = []
    sections = formats_sections(repo)
    if not sections:
        return ["docs/FORMATS.md: no '## azoo_*' tool sections found"]
    for tool, text in sorted(sections.items()):
        # "## azoo_foo" sections check build/tools/azoo_foo;
        # "## bench/bar" sections check build/bench/bar.
        if tool.startswith("bench/"):
            binary = os.path.join(build_dir, "bench",
                                  tool.split("/", 1)[1])
        else:
            binary = os.path.join(build_dir, "tools", tool)
        if not os.path.exists(binary):
            errors.append(f"{tool}: binary not found at {binary} "
                          "(build the tools first)")
            continue
        helptext = subprocess.run(
            [binary, "--help"], capture_output=True, text=True).stdout
        known = set(FLAG_RE.findall(helptext))
        if not known:
            errors.append(f"{tool}: --help printed no flags")
            continue
        documented = {m.group(1) for line in text.splitlines()
                      if (m := TABLE_FLAG_RE.match(line))}
        if not documented:
            errors.append(f"docs/FORMATS.md [## {tool}]: no flag "
                          "table rows found")
            continue
        for flag in sorted(documented):
            if flag == "help":
                continue
            if flag not in known:
                errors.append(
                    f"docs/FORMATS.md [## {tool}]: documents "
                    f"--{flag}, but `{tool} --help` does not list it")
    return errors


def check_rule_catalog(repo, build_dir):
    """docs/ANALYSIS.md <-> `azoo_lint --list-rules`, both ways."""
    lint = os.path.join(build_dir, "tools", "azoo_lint")
    if not os.path.exists(lint):
        return [f"azoo_lint: binary not found at {lint} "
                "(build the tools first)"]
    listing = subprocess.run(
        [lint, "--list-rules"], capture_output=True, text=True).stdout
    known = set(RULE_ID_RE.findall(listing))
    if not known:
        return ["azoo_lint: --list-rules printed no rule ids"]
    path = os.path.join(repo, "docs", "ANALYSIS.md")
    if not os.path.exists(path):
        return ["docs/ANALYSIS.md: missing (normative rule catalog)"]
    with open(path, encoding="utf-8") as f:
        documented = set(RULE_ID_RE.findall(f.read()))
    errors = []
    for rule in sorted(known - documented):
        errors.append(f"docs/ANALYSIS.md: rule {rule} exists in "
                      "`azoo_lint --list-rules` but is undocumented")
    for rule in sorted(documented - known):
        errors.append(f"docs/ANALYSIS.md: documents rule {rule}, but "
                      "`azoo_lint --list-rules` does not know it")
    return errors


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("--build-dir", default="build")
    ap.add_argument("--repo", default=None,
                    help="repo root (default: this script's parent)")
    args = ap.parse_args()

    repo = args.repo or os.path.dirname(
        os.path.dirname(os.path.abspath(__file__)))
    md_files = tracked_markdown(repo)
    if not md_files:
        print("check_docs: no markdown files found", file=sys.stderr)
        return 64

    errors = check_links(repo, md_files)
    errors += check_flags(repo, args.build_dir)
    errors += check_rule_catalog(repo, args.build_dir)
    for e in errors:
        print(f"check_docs: {e}", file=sys.stderr)
    print(f"check_docs: {len(md_files)} markdown files, "
          f"{len(errors)} problem(s)")
    return 65 if errors else 0


if __name__ == "__main__":
    sys.exit(main())
