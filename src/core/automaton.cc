#include "core/automaton.hh"

#include <numeric>

#include "util/logging.hh"

namespace azoo {

ElementId
Automaton::addSte(const CharSet &symbols, StartType start, bool reporting,
                  uint32_t report_code)
{
    Element e;
    e.kind = ElementKind::kSte;
    e.symbols = symbols;
    e.start = start;
    e.reporting = reporting;
    e.reportCode = report_code;
    elements_.push_back(std::move(e));
    return static_cast<ElementId>(elements_.size() - 1);
}

ElementId
Automaton::addCounter(uint32_t target, CounterMode mode, bool reporting,
                      uint32_t report_code)
{
    Element e;
    e.kind = ElementKind::kCounter;
    e.target = target;
    e.mode = mode;
    e.reporting = reporting;
    e.reportCode = report_code;
    elements_.push_back(std::move(e));
    return static_cast<ElementId>(elements_.size() - 1);
}

void
Automaton::addEdge(ElementId from, ElementId to)
{
    elements_[from].out.push_back(to);
}

void
Automaton::addResetEdge(ElementId from, ElementId to)
{
    elements_[from].resetOut.push_back(to);
}

ElementId
Automaton::merge(const Automaton &other)
{
    const auto offset = static_cast<ElementId>(elements_.size());
    elements_.reserve(elements_.size() + other.elements_.size());
    for (const Element &e : other.elements_) {
        Element copy = e;
        for (auto &t : copy.out)
            t += offset;
        for (auto &t : copy.resetOut)
            t += offset;
        elements_.push_back(std::move(copy));
    }
    return offset;
}

uint64_t
Automaton::edgeCount() const
{
    uint64_t n = 0;
    for (const auto &e : elements_)
        n += e.out.size();
    return n;
}

uint64_t
Automaton::resetEdgeCount() const
{
    uint64_t n = 0;
    for (const auto &e : elements_)
        n += e.resetOut.size();
    return n;
}

std::vector<ElementId>
Automaton::startStates() const
{
    std::vector<ElementId> out;
    for (ElementId i = 0; i < elements_.size(); ++i) {
        if (elements_[i].start != StartType::kNone)
            out.push_back(i);
    }
    return out;
}

std::vector<ElementId>
Automaton::reportingElements() const
{
    std::vector<ElementId> out;
    for (ElementId i = 0; i < elements_.size(); ++i) {
        if (elements_[i].reporting)
            out.push_back(i);
    }
    return out;
}

uint64_t
Automaton::countKind(ElementKind kind) const
{
    uint64_t n = 0;
    for (const auto &e : elements_)
        n += e.kind == kind;
    return n;
}

std::vector<uint32_t>
Automaton::inDegrees() const
{
    std::vector<uint32_t> in(elements_.size(), 0);
    for (const auto &e : elements_)
        for (auto t : e.out)
            ++in[t];
    return in;
}

std::vector<std::vector<ElementId>>
Automaton::reverseAdjacency() const
{
    std::vector<std::vector<ElementId>> rev(elements_.size());
    for (ElementId i = 0; i < elements_.size(); ++i)
        for (auto t : elements_[i].out)
            rev[t].push_back(i);
    return rev;
}

std::vector<uint32_t>
Automaton::connectedComponents(uint32_t &count) const
{
    // Union-find over activation and reset edges (reset edges keep a
    // counter in the same subgraph as its resetting filter).
    std::vector<uint32_t> parent(elements_.size());
    std::iota(parent.begin(), parent.end(), 0);

    auto find = [&](uint32_t x) {
        while (parent[x] != x) {
            parent[x] = parent[parent[x]];
            x = parent[x];
        }
        return x;
    };
    auto unite = [&](uint32_t a, uint32_t b) {
        a = find(a);
        b = find(b);
        if (a != b)
            parent[b] = a;
    };

    for (ElementId i = 0; i < elements_.size(); ++i) {
        for (auto t : elements_[i].out)
            unite(i, t);
        for (auto t : elements_[i].resetOut)
            unite(i, t);
    }

    std::vector<uint32_t> label(elements_.size());
    std::vector<uint32_t> remap(elements_.size(), ~uint32_t(0));
    uint32_t next = 0;
    for (ElementId i = 0; i < elements_.size(); ++i) {
        uint32_t root = find(i);
        if (remap[root] == ~uint32_t(0))
            remap[root] = next++;
        label[i] = remap[root];
    }
    count = next;
    return label;
}

Status
Automaton::check() const
{
    auto bad = [this](const std::string &what) {
        return Status(ErrorCode::kParseError,
                      cat("automaton '", name_, "': ", what));
    };
    for (ElementId i = 0; i < elements_.size(); ++i) {
        const Element &e = elements_[i];
        for (auto t : e.out) {
            if (t >= elements_.size())
                return bad(cat("element ", i,
                               " has out-edge to invalid id ", t));
        }
        for (auto t : e.resetOut) {
            if (t >= elements_.size())
                return bad(cat("element ", i,
                               " has reset edge to invalid id ", t));
            if (elements_[t].kind != ElementKind::kCounter)
                return bad(cat("reset edge ", i, " -> ", t,
                               " targets a non-counter"));
        }
        if (e.kind == ElementKind::kCounter) {
            if (e.start != StartType::kNone)
                return bad(cat("counter ", i, " has a start type"));
            if (!e.symbols.empty())
                return bad(cat("counter ", i, " carries symbols"));
            if (e.target == 0)
                return bad(cat("counter ", i, " has zero target"));
        }
    }
    return Status();
}

void
Automaton::validate() const
{
    Status st = check();
    if (!st.ok())
        fatal(st.message());
}

} // namespace azoo
