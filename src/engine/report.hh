/**
 * @file
 * Report records and simulation options/results shared by all
 * automata-processing engines.
 */

#ifndef AZOO_ENGINE_REPORT_HH
#define AZOO_ENGINE_REPORT_HH

#include <cstdint>
#include <map>
#include <vector>

#include "core/automaton.hh"
#include "util/status.hh"

namespace azoo {

class RunGuard;

/** One pattern-match event: element @p element with user code @p code
 *  matched at input offset @p offset (0-based symbol index). */
struct Report {
    uint64_t offset = 0;
    ElementId element = kNoElement;
    uint32_t code = 0;

    bool
    operator==(const Report &o) const
    {
        return offset == o.offset && element == o.element &&
            code == o.code;
    }
    bool
    operator<(const Report &o) const
    {
        if (offset != o.offset)
            return offset < o.offset;
        if (element != o.element)
            return element < o.element;
        return code < o.code;
    }
};

/** Knobs controlling what a simulation records. */
struct SimOptions {
    /** Keep the full report vector (offset/element/code). */
    bool recordReports = true;
    /** Tally reports per report code (rule) into SimResult::byCode. */
    bool countByCode = false;
    /** Track enabled-state counts to compute the active set. */
    bool computeActiveSet = true;
    /** Stop recording (not counting) reports past this many. */
    uint64_t reportRecordLimit = ~uint64_t(0);
    /** Optional stop-conditions (deadline / symbol budget /
     *  cancellation), polled coarsely by NfaEngine and LazyDfaEngine;
     *  see run_guard.hh. The guard must outlive the run; one guard
     *  may be shared across concurrent runs. */
    const RunGuard *guard = nullptr;
};

/** Outcome of simulating an automaton over an input stream. */
struct SimResult {
    uint64_t symbols = 0;        ///< input symbols consumed
    uint64_t reportCount = 0;    ///< total reports (even if unrecorded)
    std::vector<Report> reports; ///< recorded reports (may be capped)
    std::map<uint32_t, uint64_t> byCode; ///< reports per report code
    uint64_t totalEnabled = 0;   ///< sum of enabled STEs over cycles
    /** Cycles in which at least one report fired: the output-
     *  reporting pressure metric behind the D480's report-vector
     *  bottleneck (Wadden et al., HPCA 2018), which SpatialModel's
     *  stall penalty models. */
    uint64_t reportingCycles = 0;

    /** Non-OK when a RunGuard stopped the run early. The result then
     *  covers exactly the first `symbols` input symbols (a correct
     *  answer for that prefix), and guardStatus says why it stopped
     *  (kDeadlineExceeded / kCancelled / kLimitExceeded). */
    Status guardStatus;

    /** True when a RunGuard truncated this run. */
    bool truncated() const { return !guardStatus.ok(); }

    // Lazy-DFA engine statistics; zero for every other engine. These
    // are *not* part of the semantic result (two engines producing
    // identical reports may differ here), so equivalence checks must
    // compare the fields above, never the whole struct.
    /** Whole-cache flushes the transition cache took during this run. */
    uint64_t lazyFlushes = 0;
    /** Interned state-sets resident in the cache after this run. */
    uint64_t lazyStates = 0;
    /** Connected components simulated on the interpreter fallback
     *  (counter components) instead of the lazy-DFA path. */
    uint64_t lazyFallbackComponents = 0;

    /** Average active set: enabled STEs per input symbol. */
    double
    avgActiveSet() const
    {
        return symbols ? static_cast<double>(totalEnabled) / symbols
                       : 0.0;
    }

    /** Reports per input symbol. */
    double
    reportRate() const
    {
        return symbols ? static_cast<double>(reportCount) / symbols
                       : 0.0;
    }

    /** Fraction of cycles that produced any report. */
    double
    reportingCycleFraction() const
    {
        return symbols
            ? static_cast<double>(reportingCycles) / symbols : 0.0;
    }
};

} // namespace azoo

#endif // AZOO_ENGINE_REPORT_HH
