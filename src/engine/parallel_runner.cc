#include "engine/parallel_runner.hh"

#include <numeric>

#include "engine/streaming.hh"
#include "obs/obs.hh"
#include "util/fault.hh"
#include "util/logging.hh"
#include "util/thread_pool.hh"
#include "util/union_find.hh"

namespace azoo {

ParallelRunner::ParallelRunner(const Automaton &a, ParallelOptions opts)
    : a_(a), opts_(std::move(opts)), engine_(a)
{
    const size_t threads =
        opts_.threads ? opts_.threads : ThreadPool::hardwareThreads();
    pool_ = std::make_unique<ThreadPool>(threads);
    slotScratch_.resize(pool_->size());
    if (opts_.engine == ParallelEngine::kLazyDfa) {
        LazyDfaOptions lo;
        lo.cacheBytes = opts_.lazyCacheBytes;
        slotLazy_.resize(pool_->size());
        for (auto &e : slotLazy_)
            e = std::make_unique<LazyDfaEngine>(a_, lo);
    } else if (opts_.engine == ParallelEngine::kPlanned) {
        profiles_ = analysis::inferProfiles(a_, opts_.plan.infer);
        slotPlanned_.resize(pool_->size());
        for (auto &e : slotPlanned_) {
            e = std::make_unique<PlannedEngine>(a_, profiles_,
                                                opts_.plan);
        }
    }
    buildShards(threads);
}

ParallelRunner::~ParallelRunner() = default;

size_t
ParallelRunner::threads() const
{
    return pool_->size();
}

void
ParallelRunner::buildShards(size_t groups)
{
    const size_t n = a_.size();
    if (n == 0)
        return;

    // Components over activation *and* reset edges: a counter must
    // stay in the same shard as everything that counts or resets it.
    UnionFind uf(n);
    for (ElementId i = 0; i < n; ++i) {
        for (auto t : a_.element(i).out)
            uf.unite(i, t);
        for (auto t : a_.element(i).resetOut)
            uf.unite(i, t);
    }

    // Component sizes, keyed by root.
    std::vector<uint32_t> compOf(n);
    std::vector<uint32_t> roots;
    std::vector<uint64_t> compSize;
    std::vector<uint32_t> compIndex(n, ~uint32_t(0));
    for (ElementId i = 0; i < n; ++i) {
        const uint32_t r = uf.find(i);
        if (compIndex[r] == ~uint32_t(0)) {
            compIndex[r] = static_cast<uint32_t>(roots.size());
            roots.push_back(r);
            compSize.push_back(0);
        }
        compOf[i] = compIndex[r];
        ++compSize[compIndex[r]];
    }

    // LPT: biggest component first into the currently lightest shard.
    const size_t g = std::min(groups, roots.size());
    std::vector<uint32_t> order(roots.size());
    std::iota(order.begin(), order.end(), 0);
    std::stable_sort(order.begin(), order.end(),
                     [&](uint32_t a, uint32_t b) {
                         return compSize[a] > compSize[b];
                     });
    std::vector<uint64_t> load(g, 0);
    std::vector<uint32_t> shardOf(roots.size());
    for (uint32_t c : order) {
        const size_t s = static_cast<size_t>(
            std::min_element(load.begin(), load.end()) - load.begin());
        shardOf[c] = static_cast<uint32_t>(s);
        load[s] += compSize[c];
    }

    // Materialize the shard sub-automata, elements in original id
    // order so per-shard behaviour is reproducible.
    shards_.resize(g);
    std::vector<ElementId> localId(n);
    for (ElementId i = 0; i < n; ++i) {
        Shard &sh = shards_[shardOf[compOf[i]]];
        const Element &e = a_.element(i);
        ElementId id;
        if (e.kind == ElementKind::kCounter)
            id = sh.sub.addCounter(e.target, e.mode, e.reporting,
                                   e.reportCode);
        else
            id = sh.sub.addSte(e.symbols, e.start, e.reporting,
                               e.reportCode);
        localId[i] = id;
        sh.origId.push_back(i);
    }
    for (ElementId i = 0; i < n; ++i) {
        Automaton &sub = shards_[shardOf[compOf[i]]].sub;
        for (auto t : a_.element(i).out)
            sub.addEdge(localId[i], localId[t]);
        for (auto t : a_.element(i).resetOut)
            sub.addResetEdge(localId[i], localId[t]);
    }
    for (size_t s = 0; s < shards_.size(); ++s) {
        shards_[s].sub.setName(a_.name() + "/shard" +
                               std::to_string(s));
        shards_[s].engine =
            std::make_unique<NfaEngine>(shards_[s].sub);
        if (opts_.engine == ParallelEngine::kLazyDfa) {
            LazyDfaOptions lo;
            lo.cacheBytes = opts_.lazyCacheBytes;
            shards_[s].lazy =
                std::make_unique<LazyDfaEngine>(shards_[s].sub, lo);
        } else if (opts_.engine == ParallelEngine::kPlanned) {
            // Profiles are per-automaton, so each shard infers its
            // own over its sub-automaton (construction-time only).
            shards_[s].planned =
                std::make_unique<PlannedEngine>(shards_[s].sub,
                                                opts_.plan);
        }
    }
    if (obs::kEnabled) {
        // LPT balance is visible as the spread of this distribution.
        obs::Histogram &h =
            obs::Registry::global().histogram("runner.shard.states");
        for (const Shard &sh : shards_)
            h.record(sh.sub.size());
    }
}

BatchResult
ParallelRunner::runBatch(
    const std::vector<std::vector<uint8_t>> &streams) const
{
    BatchResult out;
    out.perStream.resize(streams.size());
    out.perStreamStatus.resize(streams.size());
    if (opts_.chunkBytes != 0 &&
        opts_.engine == ParallelEngine::kLazyDfa) {
        // Chunked feeding runs on StreamingSession, which is an
        // interpreter; the lazy-DFA engine has no incremental API.
        // Fail every stream loudly instead of silently simulating on
        // a different engine than the caller configured.
        const Status st(
            ErrorCode::kInvalidArgument,
            "chunkBytes requires ParallelEngine::kNfa (the lazy-DFA "
            "engine has no streaming API)");
        for (size_t i = 0; i < streams.size(); ++i)
            out.perStreamStatus[i] = st;
        out.failedStreams = streams.size();
        return out;
    }
    obs::ScopedTimer wall(
        obs::Registry::global().histogram("runner.batch.wall_us"));
    pool_->parallelFor(streams.size(), [&](size_t slot, size_t i) {
        // Failures are captured per stream so one bad stream (or an
        // injected worker fault) never kills the batch; the other
        // streams complete exactly as a serial run would.
        try {
            if (fault::shouldFail(fault::Point::kAllocFail)) {
                throw StatusError(
                    Status(ErrorCode::kResourceExhausted,
                           cat("stream ", i,
                               ": worker allocation failed")));
            }
            if (opts_.chunkBytes != 0 &&
                opts_.engine == ParallelEngine::kPlanned) {
                PlannedSession sess(a_, profiles_, opts_.plan);
                sess.options = opts_.sim;
                const auto &in = streams[i];
                for (size_t pos = 0; pos < in.size();) {
                    const size_t want = std::min(
                        opts_.chunkBytes, in.size() - pos);
                    const size_t got =
                        sess.feed(in.data() + pos, want);
                    pos += got;
                    if (got < want)
                        break;
                }
                out.perStream[i] = sess.results();
            } else if (opts_.chunkBytes != 0) {
                StreamingSession sess(a_);
                sess.options = opts_.sim;
                const auto &in = streams[i];
                for (size_t pos = 0; pos < in.size();) {
                    const size_t want = std::min(
                        opts_.chunkBytes, in.size() - pos);
                    const size_t got =
                        sess.feed(in.data() + pos, want);
                    pos += got;
                    // A short feed means the guard stopped the
                    // session; further chunks would be refused.
                    if (got < want)
                        break;
                }
                out.perStream[i] = sess.results();
            } else if (opts_.engine == ParallelEngine::kPlanned) {
                out.perStream[i] =
                    slotPlanned_[slot]->simulate(streams[i],
                                                 opts_.sim);
            } else if (opts_.engine == ParallelEngine::kLazyDfa) {
                out.perStream[i] =
                    slotLazy_[slot]->simulate(streams[i], opts_.sim);
            } else {
                out.perStream[i] = engine_.simulate(
                    streams[i], slotScratch_[slot], opts_.sim);
            }
            canonicalizeReports(out.perStream[i]);
        } catch (const StatusError &e) {
            out.perStream[i] = SimResult();
            out.perStreamStatus[i] = e.status();
        } catch (const std::exception &e) {
            out.perStream[i] = SimResult();
            out.perStreamStatus[i] =
                Status(ErrorCode::kInternal, e.what());
        }
    });
    for (size_t i = 0; i < out.perStream.size(); ++i) {
        if (!out.perStreamStatus[i].ok()) {
            ++out.failedStreams;
            continue;
        }
        const SimResult &r = out.perStream[i];
        out.totalSymbols += r.symbols;
        out.totalReports += r.reportCount;
        out.totalLazyFlushes += r.lazyFlushes;
    }
    if (obs::kEnabled) {
        obs::Registry &reg = obs::Registry::global();
        reg.counter("runner.batch.streams").add(streams.size());
        reg.counter("runner.batch.failed_streams")
            .add(out.failedStreams);
        reg.counter("runner.batch.symbols").add(out.totalSymbols);
        reg.counter("runner.batch.reports").add(out.totalReports);
    }
    return out;
}

SimResult
ParallelRunner::simulateSharded(const uint8_t *input, size_t len) const
{
    SimResult merged;
    merged.symbols = len;
    if (shards_.empty())
        return merged;

    // Shards record every report internally (the merge needs full
    // offset streams to reconstruct reportingCycles and byCode
    // exactly); the caller's recording options apply after the merge.
    SimOptions inner;
    inner.recordReports = true;
    inner.reportRecordLimit = ~uint64_t(0);
    inner.countByCode = false;
    inner.computeActiveSet = opts_.sim.computeActiveSet;
    inner.guard = opts_.sim.guard;

    obs::ScopedTimer wall(
        obs::Registry::global().histogram("runner.sharded.wall_us"));

    std::vector<SimResult> parts(shards_.size());
    auto runShards = [&](size_t simLen,
                         const SimOptions &shardOpts) -> Status {
        try {
            pool_->parallelFor(shards_.size(), [&](size_t s) {
                const Shard &sh = shards_[s];
                if (fault::shouldFail(fault::Point::kAllocFail)) {
                    throw StatusError(
                        Status(ErrorCode::kResourceExhausted,
                               cat("shard ", s,
                                   ": worker allocation failed")));
                }
                if (sh.planned) {
                    parts[s] = sh.planned->simulate(input, simLen,
                                                    shardOpts);
                } else if (sh.lazy) {
                    parts[s] =
                        sh.lazy->simulate(input, simLen, shardOpts);
                } else {
                    parts[s] = sh.engine->simulate(
                        input, simLen, sh.scratch, shardOpts);
                }
                for (Report &r : parts[s].reports)
                    r.element = sh.origId[r.element];
            });
        } catch (const StatusError &e) {
            return e.status();
        }
        return Status();
    };

    if (Status st = runShards(len, inner); !st.ok()) {
        // A failed shard invalidates the merged view (its reports are
        // missing); return an empty result carrying the error instead
        // of a silently wrong one.
        SimResult failed;
        failed.guardStatus = st;
        return failed;
    }

    // Guard truncation reconciliation: if any shard stopped early,
    // the merged result covers only the prefix every shard consumed.
    uint64_t consumed = len;
    for (const SimResult &p : parts) {
        if (!p.guardStatus.ok()) {
            consumed = std::min(consumed, p.symbols);
            if (merged.guardStatus.ok())
                merged.guardStatus = p.guardStatus;
        }
    }
    merged.symbols = consumed;

    if (consumed < len) {
        // Shards poll the guard independently, so on a wall-clock or
        // injected stop they consume *different* prefixes — summing
        // their counters (totalEnabled, per-shard report streams)
        // would mix coverage of different symbol ranges, and even a
        // shard whose symbols == consumed may have partially counted
        // the poll window beyond it. Re-simulate every shard over
        // exactly the common prefix with the guard off: the result is
        // then exact for [0, consumed), and the cost is bounded by
        // work the shards already did. (Symbol-budget guards stop all
        // shards at the same poll point, so this path is really about
        // deadline/cancellation/injected stops.)
        obs::noteGuardStop("runner.sharded",
                           merged.guardStatus.code());
        SimOptions replay = inner;
        replay.guard = nullptr;
        if (Status st = runShards(static_cast<size_t>(consumed),
                                  replay);
            !st.ok()) {
            SimResult failed;
            failed.guardStatus = st;
            return failed;
        }
    }

    for (const SimResult &p : parts) {
        merged.totalEnabled += p.totalEnabled;
        merged.lazyFlushes += p.lazyFlushes;
        merged.lazyStates += p.lazyStates;
        merged.lazyFallbackComponents += p.lazyFallbackComponents;
        merged.reports.insert(merged.reports.end(), p.reports.begin(),
                              p.reports.end());
    }
    if (consumed < len) {
        std::erase_if(merged.reports, [consumed](const Report &r) {
            return r.offset >= consumed;
        });
    }
    merged.reportCount = merged.reports.size();
    std::sort(merged.reports.begin(), merged.reports.end());

    // A reporting cycle is a distinct offset in the full report
    // stream (the serial engine counts cycles with >= 1 report).
    uint64_t lastOffset = ~uint64_t(0);
    for (const Report &r : merged.reports) {
        if (r.offset != lastOffset) {
            ++merged.reportingCycles;
            lastOffset = r.offset;
        }
        if (opts_.sim.countByCode)
            ++merged.byCode[r.code];
    }

    if (!opts_.sim.recordReports)
        merged.reports.clear();
    else if (merged.reports.size() > opts_.sim.reportRecordLimit)
        merged.reports.resize(
            static_cast<size_t>(opts_.sim.reportRecordLimit));
    return merged;
}

} // namespace azoo
