file(REMOVE_RECURSE
  "CMakeFiles/dna_offtarget.dir/dna_offtarget.cpp.o"
  "CMakeFiles/dna_offtarget.dir/dna_offtarget.cpp.o.d"
  "dna_offtarget"
  "dna_offtarget.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dna_offtarget.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
