#include "regex/parser.hh"

#include <cctype>
#include <stdexcept>

#include "obs/obs.hh"
#include "util/logging.hh"
#include "util/strings.hh"

namespace azoo {

namespace {

CharSet
digitClass()
{
    return CharSet::range('0', '9');
}

CharSet
wordClass()
{
    CharSet cs = CharSet::range('a', 'z');
    cs |= CharSet::range('A', 'Z');
    cs |= CharSet::range('0', '9');
    cs.set('_');
    return cs;
}

CharSet
spaceClass()
{
    CharSet cs;
    for (char c : {' ', '\t', '\n', '\r', '\f', '\v'})
        cs.set(static_cast<uint8_t>(c));
    return cs;
}

void
applyNocase(CharSet &cs)
{
    for (int c = 'a'; c <= 'z'; ++c) {
        if (cs.test(static_cast<uint8_t>(c)))
            cs.set(static_cast<uint8_t>(c - 'a' + 'A'));
    }
    for (int c = 'A'; c <= 'Z'; ++c) {
        if (cs.test(static_cast<uint8_t>(c)))
            cs.set(static_cast<uint8_t>(c - 'A' + 'a'));
    }
}

class Parser
{
  public:
    Parser(const std::string &pattern, const RegexFlags &flags,
           const ParseLimits &limits)
        : p_(pattern), flags_(flags), limits_(limits)
    {
    }

    Regex
    run()
    {
        Regex rx;
        rx.pattern = p_;
        rx.flags = flags_;
        if (peek() == '^') {
            get();
            rx.anchoredStart = true;
        }
        rx.root = parseAlt();
        // A trailing unescaped '$' anchors the end.
        if (!done())
            die(cat("unexpected '", std::string(1, peek()), "'"));
        if (sawTrailingDollar_)
            rx.anchoredEnd = true;
        return rx;
    }

  private:
    /** Throw a structured error anchored at the current position. */
    [[noreturn]] void
    die(const std::string &what,
        ErrorCode code = ErrorCode::kParseError) const
    {
        SourceLoc loc = locateOffset(p_, pos_);
        std::string msg = what;
        const std::string tok = tokenAt(p_, pos_);
        if (!tok.empty())
            msg = cat(what, " near '", tok, "'");
        throw StatusError(Status(code, std::move(msg), loc));
    }

    bool done() const { return pos_ >= p_.size(); }

    char
    peek() const
    {
        return done() ? '\0' : p_[pos_];
    }

    char
    get()
    {
        if (done())
            die("unexpected end of pattern");
        return p_[pos_++];
    }

    std::unique_ptr<RegexNode>
    parseAlt()
    {
        auto alt = std::make_unique<RegexNode>();
        alt->op = RegexOp::kAlt;
        alt->kids.push_back(parseConcat());
        while (peek() == '|') {
            get();
            alt->kids.push_back(parseConcat());
        }
        if (alt->kids.size() == 1)
            return std::move(alt->kids[0]);
        return alt;
    }

    std::unique_ptr<RegexNode>
    parseConcat()
    {
        auto seq = std::make_unique<RegexNode>();
        seq->op = RegexOp::kConcat;
        while (!done() && peek() != '|' && peek() != ')') {
            if (peek() == '$' && pos_ + 1 == p_.size() && depth_ == 0) {
                get();
                sawTrailingDollar_ = true;
                break;
            }
            seq->kids.push_back(parseRepeat());
        }
        if (seq->kids.empty())
            return makeEmpty();
        if (seq->kids.size() == 1)
            return std::move(seq->kids[0]);
        return seq;
    }

    std::unique_ptr<RegexNode>
    parseRepeat()
    {
        auto node = parseAtom();
        for (;;) {
            char c = peek();
            if (c == '*' || c == '+' || c == '?') {
                get();
                auto rep = std::make_unique<RegexNode>();
                rep->op = c == '*' ? RegexOp::kStar
                        : c == '+' ? RegexOp::kPlus
                                   : RegexOp::kOpt;
                rep->kids.push_back(std::move(node));
                node = std::move(rep);
                consumeLazyMarker();
            } else if (c == '{') {
                int min = 0, max = 0;
                if (!tryParseBounds(min, max))
                    break; // literal '{' handled by caller context
                auto rep = std::make_unique<RegexNode>();
                rep->op = RegexOp::kRepeat;
                rep->min = min;
                rep->max = max;
                rep->kids.push_back(std::move(node));
                node = std::move(rep);
                consumeLazyMarker();
            } else {
                break;
            }
        }
        return node;
    }

    void
    consumeLazyMarker()
    {
        // Lazy quantifiers recognize the same language.
        if (peek() == '?')
            get();
    }

    /** Parse "{n}", "{n,}", "{n,m}". Returns false (no consumption)
     *  if the braces do not form a valid bound, in which case '{' is
     *  a literal (PCRE behaviour). */
    bool
    tryParseBounds(int &min, int &max)
    {
        size_t save = pos_;
        get(); // '{'
        std::string a, b;
        bool comma = false;
        while (!done() && peek() != '}') {
            char c = get();
            if (c == ',' && !comma) {
                comma = true;
            } else if (std::isdigit(static_cast<unsigned char>(c))) {
                (comma ? b : a).push_back(c);
            } else {
                pos_ = save;
                return false;
            }
        }
        if (done() || a.empty()) {
            pos_ = save;
            return false;
        }
        get(); // '}'
        // Bound digit counts before stoi (std::out_of_range otherwise).
        if (a.size() > 9 || b.size() > 9)
            die("repeat bound too large", ErrorCode::kLimitExceeded);
        min = std::stoi(a);
        if (!comma) {
            max = min;
        } else if (b.empty()) {
            max = -1;
        } else {
            max = std::stoi(b);
            if (max < min)
                die(cat("bad repeat bounds {", min, ",", max, "}"));
        }
        if (min > 4096 || max > 4096)
            die(cat("repeat bound too large in ",
                p_.substr(save, pos_ - save)),
                ErrorCode::kLimitExceeded);
        return true;
    }

    std::unique_ptr<RegexNode>
    parseAtom()
    {
        char c = get();
        switch (c) {
          case '(': {
            if (peek() == '?') {
                get();
                char k = get();
                if (k != ':')
                    die(cat("unsupported group (?", std::string(1, k),
                            " (backreferences and lookaround are "
                            "rejected)"),
                        ErrorCode::kUnsupported);
            }
            if (static_cast<size_t>(++depth_) > limits_.maxNestingDepth)
                die(cat("group nesting exceeds limit (",
                        limits_.maxNestingDepth, ")"),
                    ErrorCode::kLimitExceeded);
            auto inner = parseAlt();
            --depth_;
            if (get() != ')')
                die("missing ')'");
            return inner;
          }
          case '[':
            return makeClass(parseClass());
          case '.': {
            CharSet cs = CharSet::all();
            if (!flags_.dotall)
                cs.clear('\n');
            return makeClass(cs);
          }
          case '\\':
            return makeClass(parseEscape(false));
          case '*':
          case '+':
          case '?':
            die(cat("quantifier '", std::string(1, c),
                    "' with nothing to repeat"));
          case '^':
            die("mid-pattern '^' anchors are unsupported",
                ErrorCode::kUnsupported);
          case '$':
            die("mid-pattern '$' anchors are unsupported",
                ErrorCode::kUnsupported);
          default: {
            CharSet cs = CharSet::single(static_cast<uint8_t>(c));
            if (flags_.nocase)
                applyNocase(cs);
            return makeClass(cs);
          }
        }
    }

    /** Parse one escape sequence after '\\'. @p in_class controls
     *  which escapes are meaningful. */
    CharSet
    parseEscape(bool in_class)
    {
        char c = get();
        switch (c) {
          case 'n': return CharSet::single('\n');
          case 't': return CharSet::single('\t');
          case 'r': return CharSet::single('\r');
          case 'f': return CharSet::single('\f');
          case 'v': return CharSet::single('\v');
          case '0': return CharSet::single(0);
          case 'a': return CharSet::single(7);
          case 'e': return CharSet::single(27);
          case 'd': return digitClass();
          case 'D': return ~digitClass();
          case 'w': return wordClass();
          case 'W': return ~wordClass();
          case 's': return spaceClass();
          case 'S': return ~spaceClass();
          case 'x': {
            int hi = hexValue(get());
            int lo = hexValue(get());
            if (hi < 0 || lo < 0)
                die("bad \\x escape");
            return CharSet::single(static_cast<uint8_t>(hi * 16 + lo));
          }
          default:
            if (std::isdigit(static_cast<unsigned char>(c)))
                die("backreferences are unsupported", ErrorCode::kUnsupported);
            if (std::isalpha(static_cast<unsigned char>(c)) && !in_class)
                die(cat("unsupported escape \\", std::string(1, c)),
                    ErrorCode::kUnsupported);
            // Escaped punctuation matches itself.
            return CharSet::single(static_cast<uint8_t>(c));
        }
    }

    /** Parse a character class body after '['. */
    CharSet
    parseClass()
    {
        CharSet cs;
        bool negate = false;
        if (peek() == '^') {
            get();
            negate = true;
        }
        bool first = true;
        while (true) {
            if (done())
                die("missing ']'");
            if (peek() == ']' && !first) {
                get();
                break;
            }
            first = false;
            int lo;
            bool lo_is_class = false;
            CharSet sub;
            if (peek() == '\\') {
                get();
                sub = parseEscape(true);
                if (sub.count() == 1) {
                    lo = sub.lowest();
                } else {
                    lo_is_class = true;
                    lo = -1;
                }
            } else {
                lo = static_cast<unsigned char>(get());
            }
            if (!lo_is_class && peek() == '-' && pos_ + 1 < p_.size() &&
                p_[pos_ + 1] != ']') {
                get(); // '-'
                int hi;
                if (peek() == '\\') {
                    get();
                    CharSet hs = parseEscape(true);
                    if (hs.count() != 1)
                        die("class range with multi-char escape");
                    hi = hs.lowest();
                } else {
                    hi = static_cast<unsigned char>(get());
                }
                if (hi < lo)
                    die("reversed class range");
                cs.setRange(static_cast<uint8_t>(lo),
                            static_cast<uint8_t>(hi));
            } else if (lo_is_class) {
                cs |= sub;
            } else {
                cs.set(static_cast<uint8_t>(lo));
            }
        }
        if (flags_.nocase)
            applyNocase(cs);
        if (negate)
            cs = ~cs;
        if (cs.empty())
            die("empty character class");
        return cs;
    }

    const std::string &p_;
    RegexFlags flags_;
    ParseLimits limits_;
    size_t pos_ = 0;
    int depth_ = 0;
    bool sawTrailingDollar_ = false;
};

} // namespace

Expected<Regex>
parseRegex(const std::string &pattern, const RegexFlags &flags,
           const ParseLimits &limits)
{
    Expected<Regex> res = [&]() -> Expected<Regex> {
        try {
            Regex rx = Parser(pattern, flags, limits).run();
            if (nullable(*rx.root)) {
                return Status(ErrorCode::kUnsupported,
                              "pattern matches the empty string");
            }
            return rx;
        } catch (const StatusError &e) {
            return e.status();
        } catch (const std::exception &e) {
            return Status(ErrorCode::kInternal,
                          cat("regex: ", e.what()));
        }
    }();
    obs::noteParse("regex",
                   res.ok() ? ErrorCode::kOk : res.status().code());
    return res;
}

Regex
parseRegexOrDie(const std::string &pattern, const RegexFlags &flags)
{
    Expected<Regex> rx = parseRegex(pattern, flags);
    if (!rx.ok())
        fatal(cat("regex '", pattern, "': ", rx.status().str()));
    return std::move(*std::move(rx));
}

bool
tryParseRegex(const std::string &pattern, const RegexFlags &flags,
              Regex &out, std::string &error)
{
    Expected<Regex> rx = parseRegex(pattern, flags);
    if (!rx.ok()) {
        error = rx.status().str();
        return false;
    }
    out = std::move(*std::move(rx));
    return true;
}

} // namespace azoo
