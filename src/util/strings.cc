#include "util/strings.hh"

#include <cctype>
#include <cstdio>

namespace azoo {

std::vector<std::string>
split(const std::string &s, char delim)
{
    std::vector<std::string> out;
    std::string cur;
    for (char c : s) {
        if (c == delim) {
            out.push_back(cur);
            cur.clear();
        } else {
            cur.push_back(c);
        }
    }
    out.push_back(cur);
    return out;
}

std::string
trim(const std::string &s)
{
    size_t b = 0;
    size_t e = s.size();
    while (b < e && std::isspace(static_cast<unsigned char>(s[b])))
        ++b;
    while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])))
        --e;
    return s.substr(b, e - b);
}

bool
startsWith(const std::string &s, const std::string &prefix)
{
    return s.size() >= prefix.size() &&
        s.compare(0, prefix.size(), prefix) == 0;
}

std::string
toLower(const std::string &s)
{
    std::string out = s;
    for (char &c : out)
        c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    return out;
}

int
hexValue(char c)
{
    if (c >= '0' && c <= '9')
        return c - '0';
    if (c >= 'a' && c <= 'f')
        return c - 'a' + 10;
    if (c >= 'A' && c <= 'F')
        return c - 'A' + 10;
    return -1;
}

std::string
hexByte(uint8_t b)
{
    char buf[3];
    std::snprintf(buf, sizeof(buf), "%02x", b);
    return buf;
}

std::string
escapeBytes(const std::string &s)
{
    std::string out;
    for (char c : s) {
        auto uc = static_cast<unsigned char>(c);
        if (uc >= 0x20 && uc < 0x7f) {
            out.push_back(c);
        } else {
            out += "\\x" + hexByte(uc);
        }
    }
    return out;
}

} // namespace azoo
