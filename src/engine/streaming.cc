#include "engine/streaming.hh"

#include "engine/run_guard.hh"
#include "obs/obs.hh"
#include "util/logging.hh"

namespace azoo {

StreamingSession::StreamingSession(const Automaton &a)
    : a_(a)
{
    const size_t n = a.size();
    edgeBegin_.assign(n + 1, 0);
    resetBegin_.assign(n + 1, 0);
    for (ElementId i = 0; i < n; ++i) {
        edgeBegin_[i + 1] = edgeBegin_[i] +
            static_cast<uint32_t>(a.element(i).out.size());
        resetBegin_[i + 1] = resetBegin_[i] +
            static_cast<uint32_t>(a.element(i).resetOut.size());
    }
    label_.resize(n);
    isCounter_.assign(n, 0);
    isAllInput_.assign(n, 0);
    reporting_.assign(n, 0);
    reportCode_.assign(n, 0);
    for (ElementId i = 0; i < n; ++i) {
        const Element &e = a.element(i);
        for (auto t : e.out)
            edgeTarget_.push_back(t);
        for (auto t : e.resetOut)
            resetTarget_.push_back(t);
        for (int w = 0; w < 4; ++w)
            label_[i][w] = e.symbols.word(w);
        reporting_[i] = e.reporting;
        reportCode_[i] = e.reportCode;
        if (e.kind == ElementKind::kCounter) {
            isCounter_[i] = 1;
            hasCounters_ = true;
            counters_.push_back(i);
            for (auto t : e.out) {
                if (a.element(t).kind == ElementKind::kCounter)
                    panic("StreamingSession: counter->counter edges "
                          "are not supported");
            }
        } else if (e.start == StartType::kAllInput) {
            isAllInput_[i] = 1;
            for (int v = 0; v < 256; ++v) {
                if (e.symbols.test(static_cast<uint8_t>(v)))
                    matchingAllInput_[v].push_back(i);
            }
        }
    }
    hasResets_ = !resetTarget_.empty();
    reset();
}

void
StreamingSession::reset()
{
    const size_t n = a_.size();
    result_ = SimResult();
    // Retire every stamp the previous stream wrote (epoch advance),
    // then re-arm: O(counters) per reset instead of O(n).
    scratch_.endRun(t_);
    t_ = 0;
    scratch_.beginRun(n, counters_);
    for (ElementId i = 0; i < n; ++i) {
        if (a_.element(i).start == StartType::kStartOfData) {
            scratch_.stamp[i] = scratch_.base + 1;
            scratch_.next.push_back(i);
        }
    }
}

void
StreamingSession::onMatch(ElementId id)
{
    if (reporting_[id]) {
        ++result_.reportCount;
        if (options.recordReports &&
            result_.reports.size() < options.reportRecordLimit) {
            result_.reports.push_back({t_, id, reportCode_[id]});
        }
        if (options.countByCode)
            ++result_.byCode[reportCode_[id]];
    }
    const uint64_t base = scratch_.base;
    for (uint32_t k = edgeBegin_[id]; k < edgeBegin_[id + 1]; ++k) {
        const ElementId tgt = edgeTarget_[k];
        if (isCounter_[tgt]) {
            if (scratch_.countStamp[tgt] != base + t_ + 1) {
                scratch_.countStamp[tgt] = base + t_ + 1;
                scratch_.counted.push_back(tgt);
            }
        } else if (!isAllInput_[tgt] &&
                   scratch_.stamp[tgt] != base + t_ + 2) {
            scratch_.stamp[tgt] = base + t_ + 2;
            scratch_.next.push_back(tgt);
        }
    }
    if (hasResets_) {
        for (uint32_t k = resetBegin_[id]; k < resetBegin_[id + 1];
             ++k) {
            const ElementId tgt = resetTarget_[k];
            if (scratch_.resetStamp[tgt] != base + t_ + 1) {
                scratch_.resetStamp[tgt] = base + t_ + 1;
                scratch_.resets.push_back(tgt);
            }
        }
    }
}

size_t
StreamingSession::feed(const uint8_t *data, size_t len)
{
    // A fired guard stops the session for good: the partial result
    // must keep covering exactly the consumed prefix, so later chunks
    // are refused rather than silently appended.
    if (stopped())
        return 0;
    const RunGuard *guard = options.guard;
    const uint64_t base = scratch_.base;
    for (size_t i = 0; i < len; ++i) {
        // Poll on stream position, not chunk position: any chunking
        // of the same stream checks the guard at the same symbols,
        // exactly like the monolithic engines.
        if (guard && (t_ & (kGuardCheckIntervalSymbols - 1)) == 0) {
            Status st = guard->check(t_);
            if (!st.ok()) {
                obs::noteGuardStop("engine.stream", st.code());
                result_.guardStatus = std::move(st);
                return i;
            }
        }
        std::swap(scratch_.cur, scratch_.next);
        scratch_.next.clear();
        if (options.computeActiveSet)
            result_.totalEnabled += scratch_.cur.size();

        symbol_ = data[i];
        const uint32_t word = symbol_ >> 6;
        const uint64_t bit = uint64_t(1) << (symbol_ & 63);

        for (auto id : scratch_.cur) {
            if (label_[id][word] & bit)
                onMatch(id);
        }
        for (auto id : matchingAllInput_[symbol_])
            onMatch(id);

        if (hasCounters_) {
            for (auto c : scratch_.resets) {
                scratch_.value[c] = 0;
                if (scratch_.latched[c]) {
                    scratch_.latched[c] = 0;
                    std::erase(scratch_.latchedList, c);
                }
            }
            scratch_.resets.clear();
            for (auto c : scratch_.counted) {
                const Element &e = a_.element(c);
                ++scratch_.value[c];
                if (scratch_.value[c] != e.target)
                    continue;
                if (e.reporting) {
                    ++result_.reportCount;
                    if (options.recordReports &&
                        result_.reports.size() <
                            options.reportRecordLimit) {
                        result_.reports.push_back(
                            {t_, c, e.reportCode});
                    }
                    if (options.countByCode)
                        ++result_.byCode[e.reportCode];
                }
                for (uint32_t k = edgeBegin_[c];
                     k < edgeBegin_[c + 1]; ++k) {
                    const ElementId tgt = edgeTarget_[k];
                    if (!isAllInput_[tgt] &&
                        scratch_.stamp[tgt] != base + t_ + 2) {
                        scratch_.stamp[tgt] = base + t_ + 2;
                        scratch_.next.push_back(tgt);
                    }
                }
                if (e.mode == CounterMode::kLatch &&
                    !scratch_.latched[c]) {
                    scratch_.latched[c] = 1;
                    scratch_.latchedList.push_back(c);
                } else if (e.mode == CounterMode::kRollover) {
                    scratch_.value[c] = 0;
                }
            }
            scratch_.counted.clear();
            for (auto c : scratch_.latchedList) {
                for (uint32_t k = edgeBegin_[c];
                     k < edgeBegin_[c + 1]; ++k) {
                    const ElementId tgt = edgeTarget_[k];
                    if (!isAllInput_[tgt] &&
                        scratch_.stamp[tgt] != base + t_ + 2) {
                        scratch_.stamp[tgt] = base + t_ + 2;
                        scratch_.next.push_back(tgt);
                    }
                }
            }
        }
        ++t_;
        result_.symbols = t_;
    }
    if (obs::kEnabled && len) {
        static obs::Counter &symbols =
            obs::Registry::global().counter("engine.stream.symbols");
        symbols.add(len);
    }
    return len;
}

size_t
StreamingSession::footprintBytes() const
{
    size_t n = sizeof(*this);
    n += (edgeBegin_.capacity() + resetBegin_.capacity() +
          reportCode_.capacity()) * sizeof(uint32_t);
    n += (edgeTarget_.capacity() + resetTarget_.capacity() +
          counters_.capacity()) * sizeof(ElementId);
    n += label_.capacity() * sizeof(std::array<uint64_t, 4>);
    n += isCounter_.capacity() + isAllInput_.capacity() +
        reporting_.capacity();
    for (const std::vector<ElementId> &v : matchingAllInput_)
        n += v.capacity() * sizeof(ElementId);
    n += scratch_.footprintBytes();
    n += result_.reports.capacity() * sizeof(Report);
    return n;
}

} // namespace azoo
