#include "zoo/mesh.hh"

#include <algorithm>
#include <map>
#include <set>

#include "input/dna.hh"
#include "transform/prune.hh"
#include "util/logging.hh"

namespace azoo {
namespace zoo {

namespace {

CharSet
matchLabel(char c)
{
    return CharSet::single(static_cast<uint8_t>(c));
}

CharSet
mismatchLabel(char c)
{
    return ~CharSet::single(static_cast<uint8_t>(c));
}

} // namespace

size_t
appendHammingFilter(Automaton &a, const std::string &pattern, int d,
                    uint32_t code)
{
    const int l = static_cast<int>(pattern.size());
    if (l < 1 || d < 0 || d >= l)
        fatal(cat("hamming filter: bad parameters l=", l, " d=", d));

    const size_t before = a.size();

    // match[j][i]: position j matched, i mismatches so far.
    // miss[j][i]: position j mismatched, bringing the count to i.
    std::map<std::pair<int, int>, ElementId> match, miss;

    for (int j = 0; j < l; ++j) {
        const bool last = j == l - 1;
        for (int i = 0; i <= std::min(j, d); ++i) {
            match[{j, i}] = a.addSte(
                matchLabel(pattern[j]),
                j == 0 ? StartType::kAllInput : StartType::kNone,
                last, code);
        }
        for (int i = 1; i <= std::min(j + 1, d); ++i) {
            miss[{j, i}] = a.addSte(
                mismatchLabel(pattern[j]),
                j == 0 ? StartType::kAllInput : StartType::kNone,
                last, code);
        }
    }

    auto connect = [&](const std::map<std::pair<int, int>, ElementId>
                           &from,
                       int j, int i, ElementId to) {
        auto it = from.find({j, i});
        if (it != from.end())
            a.addEdge(it->second, to);
    };

    for (const auto &[ji, id] : match) {
        const auto [j, i] = ji;
        if (j == 0)
            continue;
        connect(match, j - 1, i, id);
        connect(miss, j - 1, i, id);
    }
    for (const auto &[ji, id] : miss) {
        const auto [j, i] = ji;
        if (j == 0)
            continue;
        connect(match, j - 1, i - 1, id);
        connect(miss, j - 1, i - 1, id);
    }
    return a.size() - before;
}

size_t
appendLevenshteinFilter(Automaton &a, const std::string &pattern, int d,
                        uint32_t code)
{
    const int l = static_cast<int>(pattern.size());
    if (l < 1 || d < 0 || d >= l)
        fatal(cat("levenshtein filter: bad parameters l=", l,
                  " d=", d));

    const size_t before = a.size();

    // Homogeneous states over NFA coordinates (j consumed pattern
    // chars, e errors): M[j][e] entered by matching pattern[j-1],
    // X[j][e] entered by a substitution or insertion (any symbol).
    std::map<std::pair<int, int>, ElementId> m_state, x_state;

    auto reports = [&](int j, int e) { return l - j <= d - e; };

    for (int j = 1; j <= l; ++j) {
        for (int e = 0; e <= d; ++e) {
            m_state[{j, e}] = a.addSte(matchLabel(pattern[j - 1]),
                                       StartType::kNone,
                                       reports(j, e), code);
        }
    }
    for (int j = 0; j <= l; ++j) {
        for (int e = 1; e <= d; ++e) {
            x_state[{j, e}] = a.addSte(CharSet::all(),
                                       StartType::kNone,
                                       reports(j, e), code);
        }
    }

    // Consuming transitions from NFA state (j, e), with deletion
    // epsilon-closure {(j+k, e+k)} folded in.
    std::set<std::pair<ElementId, ElementId>> added;
    auto connect_from = [&](ElementId src, int j, int e) {
        for (int k = 0; j + k <= l && e + k <= d; ++k) {
            const int cj = j + k, ce = e + k;
            auto edge = [&](ElementId dst) {
                if (added.insert({src, dst}).second)
                    a.addEdge(src, dst);
            };
            if (cj < l)
                edge(m_state.at({cj + 1, ce}));
            if (cj < l && ce < d)
                edge(x_state.at({cj + 1, ce + 1}));
            if (ce < d)
                edge(x_state.at({cj, ce + 1}));
        }
    };

    for (const auto &[je, id] : m_state)
        connect_from(id, je.first, je.second);
    for (const auto &[je, id] : x_state)
        connect_from(id, je.first, je.second);

    // Start: consuming targets of closure(0,0) = {(k,k)}.
    auto make_start = [&](ElementId id) {
        a.element(id).start = StartType::kAllInput;
    };
    for (int k = 0; k <= std::min(l, d); ++k) {
        if (k < l)
            make_start(m_state.at({k + 1, k}));
        if (k < l && k < d)
            make_start(x_state.at({k + 1, k + 1}));
        if (k < d)
            make_start(x_state.at({k, k + 1}));
    }
    return a.size() - before;
}

Benchmark
makeMeshBenchmark(const ZooConfig &cfg, MeshKind kind, int l, int d)
{
    const char *kname =
        kind == MeshKind::kHamming ? "Hamming" : "Levenshtein";
    Benchmark b;
    b.name = cat(kname, " ", l, "x", d);
    b.domain = "String Similarity";
    b.inputDesc = "Random DNA";

    const size_t n = cfg.scaled(1000);
    Rng rng(cfg.seed ^ (kind == MeshKind::kHamming ? 0x4a4dULL
                                                   : 0x1e7ULL));
    Automaton a(b.name);
    std::vector<std::string> patterns;
    for (size_t i = 0; i < n; ++i) {
        std::string p = input::randomDnaString(l, rng);
        patterns.push_back(p);
        if (kind == MeshKind::kHamming) {
            appendHammingFilter(a, p, d, static_cast<uint32_t>(i));
        } else {
            appendLevenshteinFilter(a, p, d,
                                    static_cast<uint32_t>(i));
        }
    }
    // Drop unreachable mesh cells (e.g. Levenshtein states with more
    // errors than consumed symbols permit).
    a = pruneDeadStates(a).automaton;

    b.input = input::randomDna(cfg.inputBytes, cfg.seed ^ 0xd7a1ULL);
    // Plant a handful of in-distance instances so reports exercise
    // true positives, one per ~256 KiB.
    Rng plant_rng(cfg.seed ^ 0x91a7ULL);
    for (size_t at = 4096; at + l < b.input.size(); at += 256 * 1024) {
        input::plantWithMismatches(
            b.input, at, patterns[plant_rng.nextBelow(n)],
            static_cast<int>(plant_rng.nextBelow(d + 1)), plant_rng);
    }

    b.automaton = std::move(a);
    return b;
}

const std::vector<MeshVariant> &
meshVariants()
{
    static const std::vector<MeshVariant> kVariants = {
        {MeshKind::kHamming, 3, 18},
        {MeshKind::kHamming, 5, 22},
        {MeshKind::kHamming, 10, 31},
        {MeshKind::kLevenshtein, 3, 19},
        {MeshKind::kLevenshtein, 5, 24},
        {MeshKind::kLevenshtein, 10, 37},
    };
    return kVariants;
}

} // namespace zoo
} // namespace azoo
