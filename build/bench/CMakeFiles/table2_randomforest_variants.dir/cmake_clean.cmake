file(REMOVE_RECURSE
  "CMakeFiles/table2_randomforest_variants.dir/table2_randomforest_variants.cc.o"
  "CMakeFiles/table2_randomforest_variants.dir/table2_randomforest_variants.cc.o.d"
  "table2_randomforest_variants"
  "table2_randomforest_variants.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_randomforest_variants.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
