/**
 * @file
 * azoo_serve: long-lived match service over a compiled automaton.
 *
 * Loads an automaton (preferably a compiled `.azoox` artifact — the
 * daemon restart path should not re-parse text formats) and serves
 * match sessions over the framed protocol in serve/protocol.hh, on a
 * TCP loopback port or a Unix socket:
 *
 *   azoo_serve --load snort.azoox --listen unix:/tmp/azoo.sock
 *   azoo_serve --automaton x.mnrl --listen tcp:0   # prints the port
 *
 * The robustness surface (see docs/ARCHITECTURE.md "Running as a
 * service"):
 *   --max-sessions / --memory-budget   admission control
 *   --queue-budget                     per-session backpressure bound
 *   --session-deadline-ms /
 *       --session-symbol-budget        per-session QoS (truncated,
 *                                      exact replies — never hangs)
 *   SIGTERM / SIGINT                   graceful drain: stop accepting,
 *                                      flush in-flight sessions,
 *                                      shed stragglers at --drain-ms,
 *                                      exit 0
 *   SIGHUP / RELOAD frame              atomic hot ruleset reload:
 *                                      --reload names the file SIGHUP
 *                                      re-reads (default: the startup
 *                                      ruleset path);
 *                                      --no-remote-reload refuses
 *                                      client RELOAD frames
 *   --metrics-file                     periodic azoo::obs JSON export
 *
 * Chaos schedules arm via the AZOO_FAULT_SPEC environment variable
 * (see util/fault.hh) in fault-injection builds.
 *
 * On startup the daemon prints exactly one readiness line
 * ("listening on <addr>") to stdout; scripts wait for it before
 * connecting. At exit it prints a one-line session census.
 */

#include <iostream>

#include "serve/ruleset.hh"
#include "serve/server.hh"
#include "tool_common.hh"
#include "util/cli.hh"
#include "util/fault.hh"
#include "util/logging.hh"
#include "util/net.hh"

using namespace azoo;

int
main(int argc, char **argv)
{
    Cli cli(argc, argv,
            {"load", "automaton", "listen", "engine", "workers",
             "max-sessions", "queue-budget", "memory-budget",
             "session-deadline-ms", "session-symbol-budget",
             "max-report-records", "drain-ms", "linger-ms",
             "no-prefilter", "metrics-file", "metrics-interval-ms",
             "reload", "no-remote-reload"});

    if (Status st = fault::armFromEnv(); !st.ok())
        tool::usageError(cat("azoo_serve: ", st.message()));

    const bool useLoad = cli.has("load");
    const std::string apath = cli.get("automaton");
    if (useLoad && !apath.empty())
        tool::usageError("azoo_serve: --load and --automaton are "
                         "mutually exclusive");
    if (!useLoad && apath.empty())
        tool::usageError("azoo_serve: --load or --automaton is "
                         "required");

    serve::ServerOptions opts;
    opts.addr = cli.get("listen", "tcp:0");
    const std::string engine = cli.get("engine", "nfa");
    if (engine == "auto")
        opts.engine = serve::ServeEngine::kPlanned;
    else if (engine == "nfa")
        opts.engine = serve::ServeEngine::kNfa;
    else
        tool::usageError(cat("azoo_serve: unknown engine '", engine,
                             "' (nfa|auto)"));
    opts.plan.enablePrefilter = !cli.getBool("no-prefilter");
    opts.workers = static_cast<size_t>(cli.getInt("workers", 0));
    opts.limits.maxSessions =
        static_cast<size_t>(cli.getInt("max-sessions", 256));
    opts.limits.queueBudgetBytes = static_cast<size_t>(
        cli.getInt("queue-budget", 256 << 10));
    opts.limits.memoryBudgetBytes = static_cast<size_t>(
        cli.getInt("memory-budget", 256 << 20));
    opts.limits.sessionDeadlineMs =
        cli.getInt("session-deadline-ms", 0);
    opts.limits.sessionSymbolBudget = static_cast<uint64_t>(
        cli.getInt("session-symbol-budget", 0));
    opts.limits.maxReportRecords = static_cast<size_t>(
        cli.getInt("max-report-records", 4096));
    opts.drainDeadlineMs = cli.getInt("drain-ms", 5000);
    opts.lingerMs = cli.getInt("linger-ms", 2000);
    opts.metricsFile = cli.get("metrics-file");
    if (opts.metricsFile == "true")
        tool::usageError("azoo_serve: --metrics-file needs a path");
    opts.metricsIntervalMs = cli.getInt("metrics-interval-ms", 1000);
    opts.remoteReload = !cli.getBool("no-remote-reload");

    // Both --load and --automaton route through loadRulesetFile: the
    // startup ruleset is generation 1, built exactly the way a reload
    // builds its successors (same dispatch, same verification).
    const std::string rulesetPath = useLoad ? cli.get("load") : apath;
    if (rulesetPath.empty() || rulesetPath == "true")
        tool::usageError(cat("azoo_serve: --",
                             useLoad ? "load" : "automaton",
                             " needs a file path"));
    const serve::RulesetSpec spec{opts.engine, opts.plan,
                                  ParseLimits()};
    Expected<serve::RulesetGeneration> gen =
        serve::loadRulesetFile(rulesetPath, spec, /*epoch=*/1);
    if (!gen.ok()) {
        std::cerr << rulesetPath << ": " << gen.status().str() << "\n";
        return tool::exitCodeFor(gen.status());
    }

    // SIGHUP re-reads --reload if given, else the startup path.
    opts.reloadPath = cli.get("reload", rulesetPath);
    if (opts.reloadPath == "true")
        tool::usageError("azoo_serve: --reload needs a file path");

    net::installTermHandlers();

    serve::Server server(std::move(*gen), opts);
    if (Status st = server.start(); !st.ok()) {
        std::cerr << "azoo_serve: " << st.str() << "\n";
        return tool::exitCodeFor(st);
    }

    // Readiness line: tcp:0 resolves to the kernel-picked port so
    // scripts can parse the address they should dial.
    std::string bound = opts.addr;
    if (bound.rfind("tcp:", 0) == 0)
        bound = cat("tcp:", server.port());
    std::cout << "listening on " << bound << " (capacity "
              << server.capacity() << " sessions)" << std::endl;

    const int rc = server.run();

    const serve::ServerStats &s = server.stats();
    std::cout << "served: " << s.admitted << " admitted, "
              << s.replied << " replied, " << s.rejected
              << " rejected, " << s.shed << " shed, " << s.aborted
              << " aborted, " << s.protocolErrors
              << " protocol errors, " << s.reloads << " reloads ("
              << s.reloadFailures << " failed); drain "
              << (s.drainNs / 1000000) << " ms" << std::endl;
    return rc;
}
