/**
 * @file
 * azoo::obs — a low-overhead runtime observability layer.
 *
 * The engine contract bugs this suite has shipped (guard-blind
 * streaming, truncation-inexact sharded merges) were found by reading
 * code, not by a counter: the hot paths had no built-in measurement.
 * This layer fixes that the way production matching libraries do
 * (Mata ships library statistics; RE2 counts cache flushes): the
 * engine itself records what path it took, and every tool and bench
 * can export the snapshot.
 *
 * Three instrument kinds, all safe for concurrent writers:
 *
 *  - Counter:   monotonic u64, per-thread sharded relaxed atomics —
 *               writers never contend on a cache line, readers sum
 *               the shards.
 *  - Gauge:     a single i64 last-writer-wins value (configuration
 *               and sizes, not rates).
 *  - Histogram: power-of-two bucketed u64 distribution, per-thread
 *               sharded like Counter; aggregated into count / sum /
 *               min / max / approximate percentiles on read.
 *
 * Instruments live in the process-global Registry under stable
 * dotted names ("engine.lazy.cache_hits"); docs/ARCHITECTURE.md
 * holds the name table. Look-up takes a mutex and is meant for cold
 * paths — hot call sites cache the returned reference (the instrument
 * address is stable for the life of the process).
 *
 * Overhead discipline: hooks record per *run* / per *batch* / per
 * *pass*, never per input symbol; per-symbol facts (cache hits,
 * active set) are accumulated in stack locals by the engines and
 * flushed once. Building with -DAZOO_OBS=OFF compiles every record
 * call to a no-op (the Registry stays linkable and toJson() reports
 * "enabled": false) for measuring the residue of the hooks
 * themselves.
 */

#ifndef AZOO_OBS_OBS_HH
#define AZOO_OBS_OBS_HH

#include <algorithm>
#include <array>
#include <atomic>
#include <bit>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>

#include "util/status.hh"

#ifndef AZOO_OBS_ENABLED
#define AZOO_OBS_ENABLED 1
#endif

namespace azoo {
namespace obs {

/** True when the hooks are compiled in (AZOO_OBS=ON). */
inline constexpr bool kEnabled = AZOO_OBS_ENABLED != 0;

/** Writer shards per instrument (power of two). 16 covers the pool
 *  sizes this suite runs with; two threads sharing a shard is only a
 *  relaxed fetch_add collision, never a correctness issue. */
inline constexpr size_t kShards = 16;

/** Histogram buckets: bucket 0 holds value 0, bucket b >= 1 holds
 *  [2^(b-1), 2^b). 64 buckets cover the full u64 range. */
inline constexpr size_t kHistogramBuckets = 64;

/** Aggregated histogram state; see Histogram::snapshot(). */
struct HistogramSnapshot {
    uint64_t count = 0;
    uint64_t sum = 0;
    uint64_t min = 0; ///< exact (0 when count == 0)
    uint64_t max = 0; ///< exact
    std::array<uint64_t, kHistogramBuckets> buckets{};

    double
    mean() const
    {
        return count ? static_cast<double>(sum) / count : 0.0;
    }

    /**
     * Approximate p-quantile (p in [0, 1]): the upper bound of the
     * first bucket whose cumulative count reaches p * count. Exact to
     * within the power-of-two bucket width; 0 when empty.
     */
    uint64_t percentile(double p) const;
};

#if AZOO_OBS_ENABLED

namespace detail {

/** This thread's shard index: ids are handed out once per thread in
 *  arrival order, so a fixed pool reuses the same shards run after
 *  run instead of hashing onto each other. */
inline size_t
threadShard()
{
    static std::atomic<uint32_t> next{0};
    thread_local const uint32_t id =
        next.fetch_add(1, std::memory_order_relaxed);
    return id & (kShards - 1);
}

struct alignas(64) PaddedU64 {
    std::atomic<uint64_t> v{0};
};

/** Index of the histogram bucket holding @p v (the top bucket
 *  absorbs everything >= 2^62). */
inline size_t
bucketOf(uint64_t v)
{
    if (v == 0)
        return 0;
    return std::min<size_t>(
        kHistogramBuckets - 1,
        static_cast<size_t>(64 - std::countl_zero(v)));
}

} // namespace detail

/** Monotonic event count. Writers are wait-free (one relaxed
 *  fetch_add on a thread-private-ish cache line); value() sums the
 *  shards and may miss in-flight increments, which is fine for
 *  statistics. */
class Counter
{
  public:
    void
    add(uint64_t n)
    {
        shards_[detail::threadShard()].v.fetch_add(
            n, std::memory_order_relaxed);
    }

    void inc() { add(1); }

    uint64_t
    value() const
    {
        uint64_t sum = 0;
        for (const auto &s : shards_)
            sum += s.v.load(std::memory_order_relaxed);
        return sum;
    }

    void
    reset()
    {
        for (auto &s : shards_)
            s.v.store(0, std::memory_order_relaxed);
    }

  private:
    std::array<detail::PaddedU64, kShards> shards_;
};

/** Last-writer-wins level (sizes, configuration). */
class Gauge
{
  public:
    void set(int64_t v) { v_.store(v, std::memory_order_relaxed); }

    void
    add(int64_t d)
    {
        v_.fetch_add(d, std::memory_order_relaxed);
    }

    int64_t value() const { return v_.load(std::memory_order_relaxed); }

    void reset() { set(0); }

  private:
    std::atomic<int64_t> v_{0};
};

/** Power-of-two bucketed distribution of u64 samples. record() is
 *  wait-free except for the min/max CAS loops, which converge after
 *  the first few samples. */
class Histogram
{
  public:
    void
    record(uint64_t v)
    {
        Shard &s = shards_[detail::threadShard()];
        s.count.fetch_add(1, std::memory_order_relaxed);
        s.sum.fetch_add(v, std::memory_order_relaxed);
        s.buckets[detail::bucketOf(v)].fetch_add(
            1, std::memory_order_relaxed);
        uint64_t seen = s.min.load(std::memory_order_relaxed);
        while (v < seen &&
               !s.min.compare_exchange_weak(
                   seen, v, std::memory_order_relaxed)) {
        }
        seen = s.max.load(std::memory_order_relaxed);
        while (v > seen &&
               !s.max.compare_exchange_weak(
                   seen, v, std::memory_order_relaxed)) {
        }
    }

    HistogramSnapshot snapshot() const;

    void reset();

  private:
    struct alignas(64) Shard {
        std::atomic<uint64_t> count{0};
        std::atomic<uint64_t> sum{0};
        std::atomic<uint64_t> min{~uint64_t(0)};
        std::atomic<uint64_t> max{0};
        std::array<std::atomic<uint64_t>, kHistogramBuckets> buckets{};
    };

    std::array<Shard, kShards> shards_;
};

#else // !AZOO_OBS_ENABLED — every hook is a no-op.

class Counter
{
  public:
    void add(uint64_t) {}
    void inc() {}
    uint64_t value() const { return 0; }
    void reset() {}
};

class Gauge
{
  public:
    void set(int64_t) {}
    void add(int64_t) {}
    int64_t value() const { return 0; }
    void reset() {}
};

class Histogram
{
  public:
    void record(uint64_t) {}
    HistogramSnapshot snapshot() const { return {}; }
    void reset() {}
};

#endif // AZOO_OBS_ENABLED

/** Records the scope's wall time (microseconds, steady clock) into a
 *  histogram on destruction. One clock read per end of scope — cheap
 *  enough for per-batch / per-shard timing, not for per-symbol. */
class ScopedTimer
{
  public:
    explicit ScopedTimer(Histogram &h)
        : h_(&h)
#if AZOO_OBS_ENABLED
        , start_(std::chrono::steady_clock::now())
#endif
    {
    }

    ScopedTimer(const ScopedTimer &) = delete;
    ScopedTimer &operator=(const ScopedTimer &) = delete;

    ~ScopedTimer() { h_->record(elapsedUs()); }

    uint64_t
    elapsedUs() const
    {
#if AZOO_OBS_ENABLED
        const auto d = std::chrono::steady_clock::now() - start_;
        return static_cast<uint64_t>(
            std::chrono::duration_cast<std::chrono::microseconds>(d)
                .count());
#else
        return 0;
#endif
    }

  private:
    Histogram *h_;
#if AZOO_OBS_ENABLED
    std::chrono::steady_clock::time_point start_;
#endif
};

/**
 * Process-global instrument registry with stable dotted names.
 *
 * counter()/gauge()/histogram() find-or-create under a mutex and
 * return a reference that stays valid for the life of the process;
 * hot paths call once and cache it. Re-requesting a name returns the
 * same instrument, so independent call sites share a metric safely.
 */
class Registry
{
  public:
    static Registry &global();

    Counter &counter(std::string_view name);
    Gauge &gauge(std::string_view name);
    Histogram &histogram(std::string_view name);

    /** Current value of a counter, 0 if never registered. */
    uint64_t counterValue(std::string_view name) const;

    /** Zero every registered instrument (registrations survive, so
     *  cached references stay valid). Benches use this to take
     *  per-section deltas. */
    void reset();

    /**
     * Serialize every instrument as one JSON object:
     *   {"schema": "azoo-obs-1", "enabled": true,
     *    "counters": {name: value, ...},
     *    "gauges": {name: value, ...},
     *    "histograms": {name: {count, sum, mean, min, max,
     *                          p50, p90, p99}, ...}}
     * Names are emitted sorted, so snapshots diff cleanly.
     */
    std::string toJson() const;

  private:
    mutable std::mutex mutex_;
    std::map<std::string, std::unique_ptr<Counter>, std::less<>>
        counters_;
    std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
    std::map<std::string, std::unique_ptr<Histogram>, std::less<>>
        histograms_;
};

/** Count one parse through a front end: bumps
 *  "parser.<format>.docs", plus "parser.<format>.errors.<code-name>"
 *  when @p code is an error. */
void noteParse(std::string_view format, ErrorCode code);

/** Count one transform pass: bumps "transform.<pass>.runs" and adds
 *  to "transform.<pass>.states_before" / ".states_after". */
void noteTransform(std::string_view pass, uint64_t statesBefore,
                   uint64_t statesAfter);

/** Count one guard-truncated run: bumps
 *  "<prefix>.guard_stops.<code-name>" (e.g.
 *  "engine.nfa.guard_stops.deadline-exceeded"). */
void noteGuardStop(std::string_view prefix, ErrorCode code);

} // namespace obs
} // namespace azoo

#endif // AZOO_OBS_OBS_HH
