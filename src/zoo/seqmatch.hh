/**
 * @file
 * Sequence Matching (sequential pattern mining) benchmarks.
 *
 * Each filter recognizes one ordered itemset inside sorted
 * transactions: items are bytes 0x01..0xF0, transactions are sorted
 * ascending and separated by 0xFF. A filter for itemset a1<...<am is
 * a chain of item matchers with skip rings between them (any run of
 * smaller items may intervene).
 *
 * Variants (Table I / Table III / Section VII):
 *  - width p > m ("soft reconfiguration"): the skip rings are sized
 *    for p items, adding always-active padding states that do no
 *    useful computation, exactly the AP symbol-replacement design
 *    whose CPU cost Section VII measures;
 *  - wC: the filter feeds an AP counter with a support threshold so
 *    only frequent itemsets report, collapsing the output stream.
 */

#ifndef AZOO_ZOO_SEQMATCH_HH
#define AZOO_ZOO_SEQMATCH_HH

#include "zoo/benchmark.hh"

namespace azoo {
namespace zoo {

/** Seq Match variant parameters. */
struct SeqMatchParams {
    int itemsetSize = 6;   ///< m: items actually configured ("6w")
    int filterWidth = 6;   ///< p: items the structure supports ("6p")
    bool withCounters = false; ///< "wC"
    uint32_t supportThreshold = 8;
};

/** Transaction separator symbol. */
constexpr uint8_t kSeqSeparator = 0xFF;
/** Largest item symbol. */
constexpr uint8_t kSeqMaxItem = 0xF0;

/** Append one filter for @p itemset (ascending, distinct). */
size_t appendSeqFilter(Automaton &a, const std::vector<uint8_t> &itemset,
                       const SeqMatchParams &p, uint32_t code);

/** Build a Seq Match benchmark: scaled(1719) filters over a sorted
 *  transaction stream with planted frequent itemsets. */
Benchmark makeSeqMatchBenchmark(const ZooConfig &cfg,
                                const SeqMatchParams &p);

/** The itemsets the benchmark's filters were generated from (same
 *  cfg -> same itemsets), for full-kernel comparisons. */
std::vector<std::vector<uint8_t>> seqMatchItemsets(
    const ZooConfig &cfg, const SeqMatchParams &p);

/**
 * Native (non-automata) support counting: the comparator algorithm a
 * CPU miner would use -- split the stream into transactions, test
 * each sorted itemset for subset containment with a two-pointer
 * walk, and tally supports. Because the benchmark is a full kernel,
 * these counts must equal the automata filters' match counts, which
 * is what makes the Section VIII-style cross-algorithm comparison
 * possible for this domain too.
 */
std::vector<uint64_t> nativeSupportCounts(
    const std::vector<std::vector<uint8_t>> &itemsets,
    const std::vector<uint8_t> &stream);

} // namespace zoo
} // namespace azoo

#endif // AZOO_ZOO_SEQMATCH_HH
