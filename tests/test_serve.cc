/**
 * @file
 * Match-service tests: protocol encode/decode, admission control,
 * priority shedding, backpressure bounds, guard-exact truncation,
 * drain-under-load, and the chaos invariant — under injected
 * connection faults, every reply that claims a result is bit-identical
 * to a serial engine run over the stream (or the consumed prefix).
 *
 * All server tests run a real serve::Server on a loopback socket with
 * real clients — the robustness claims are about sockets, threads,
 * and partial writes, which in-process shortcuts would not exercise.
 * This binary is part of the TSan CI leg; every cross-thread handoff
 * in the server is under test here.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <fstream>
#include <memory>
#include <string>
#include <thread>

#include "core/builder.hh"
#include "core/serialize.hh"
#include "engine/nfa_engine.hh"
#include "engine/parallel_runner.hh"
#include "serve/client.hh"
#include "serve/ruleset.hh"
#include "serve/server.hh"
#include "util/fault.hh"
#include "util/logging.hh"
#include "util/net.hh"
#include "util/rng.hh"

namespace azoo {
namespace serve {
namespace {

std::vector<uint8_t>
bytes(const std::string &s)
{
    return {s.begin(), s.end()};
}

/** Small always-armed pattern set with non-trivial match density. */
Automaton
testAutomaton()
{
    Automaton a("serve-test");
    addLiteral(a, "abc", StartType::kAllInput, true, 1);
    addLiteral(a, "needle", StartType::kAllInput, true, 2);
    addLiteral(a, "xyzw", StartType::kAllInput, true, 3);
    return a;
}

/** Same planted literals as testAutomaton() but different report
 *  codes: replies distinguish which ruleset generation answered. */
Automaton
altAutomaton()
{
    Automaton a("serve-test-alt");
    addLiteral(a, "abc", StartType::kAllInput, true, 11);
    addLiteral(a, "needle", StartType::kAllInput, true, 12);
    return a;
}

/** Wider pattern set so fixed per-session slack does not dominate the
 *  footprint comparison. */
Automaton
wideAutomaton(size_t literals)
{
    Automaton a("serve-wide");
    Rng rng(7);
    for (size_t i = 0; i < literals; ++i) {
        std::string lit;
        for (int j = 0; j < 8; ++j)
            lit.push_back(
                static_cast<char>('a' + rng.nextBelow(26)));
        addLiteral(a, lit, StartType::kAllInput, true,
                   static_cast<uint32_t>(i + 1));
    }
    return a;
}

/** Write @p a as an azml ruleset file reload tests can point at. */
std::string
writeRulesetFile(const std::string &name, const Automaton &a)
{
    const std::string path = testing::TempDir() + "/" + name;
    saveAzml(path, a);
    return path;
}

/** Seeded payload with planted matches every ~stride bytes. */
std::vector<uint8_t>
testPayload(uint64_t seed, size_t len)
{
    Rng rng(seed);
    std::vector<uint8_t> p(len);
    for (auto &c : p)
        c = static_cast<uint8_t>('a' + rng.nextBelow(16));
    for (size_t i = 0; i + 6 < len; i += 97) {
        const char *lit = (i % 2) ? "abc" : "needle";
        for (size_t j = 0; lit[j]; ++j)
            p[i + j] = static_cast<uint8_t>(lit[j]);
    }
    return p;
}

/** Canonical serial-engine result over @p data's first @p len bytes:
 *  the ground truth every "carries a result" reply must match. */
SimResult
serialRun(const Automaton &a, const uint8_t *data, size_t len)
{
    NfaEngine e(a);
    SimResult r = e.simulate(data, len, SimOptions());
    canonicalizeReports(r);
    return r;
}

/** In-process server on a kernel-picked loopback port, run() on its
 *  own thread; the destructor drains and checks the exit code. */
class ServerHarness
{
  public:
    explicit ServerHarness(const Automaton &a,
                           ServerOptions opts = ServerOptions())
        : server_(a, opts)
    {
        launch();
    }

    explicit ServerHarness(RulesetGeneration gen,
                           ServerOptions opts = ServerOptions())
        : server_(std::move(gen), opts)
    {
        launch();
    }

    ~ServerHarness()
    {
        if (thread_.joinable())
            shutdown();
    }

    /** Graceful drain; returns run()'s exit code. */
    int
    shutdown()
    {
        server_.requestShutdown();
        thread_.join();
        return exitCode_;
    }

    const std::string &addr() const { return addr_; }
    Server &server() { return server_; }

  private:
    void
    launch()
    {
        Status st = server_.start();
        if (!st.ok())
            fatal(cat("harness: ", st.str()));
        thread_ = std::thread([this] { exitCode_ = server_.run(); });
        addr_ = cat("tcp:", server_.port());
    }

    Server server_;
    std::thread thread_;
    std::string addr_;
    int exitCode_ = -1;
};

/** Connect + open + stream + finish; EXPECT transport success. */
Reply
runOneSession(const std::string &addr, const std::vector<uint8_t> &in,
              uint8_t priority = 0, size_t chunk = 4096)
{
    Client c;
    EXPECT_TRUE(c.connect(addr).ok());
    EXPECT_TRUE(c.open(priority).ok());
    EXPECT_TRUE(c.admitted());
    for (size_t pos = 0; pos < in.size(); pos += chunk) {
        const size_t n = std::min(chunk, in.size() - pos);
        if (!c.send(in.data() + pos, n).ok())
            break;
    }
    Expected<Reply> r = c.finish();
    EXPECT_TRUE(r.ok()) << r.status().str();
    return r.ok() ? *r : Reply();
}

// ---------------------------------------------------------------
// Protocol layer (no server).

TEST(ServeProtocol, ReplyRoundTrip)
{
    Reply in;
    in.status = ReplyStatus::kTruncated;
    in.detail = ErrorCode::kLimitExceeded;
    in.symbols = 123456789;
    in.reportCount = 42;
    in.reports = {{7, 3, 1}, {1000, 9, 2}};
    std::vector<uint8_t> payload;
    in.encodeTo(payload);
    Expected<Reply> out = Reply::decode(payload.data(), payload.size());
    ASSERT_TRUE(out.ok());
    EXPECT_EQ(out->status, in.status);
    EXPECT_EQ(out->detail, in.detail);
    EXPECT_EQ(out->symbols, in.symbols);
    EXPECT_EQ(out->reportCount, in.reportCount);
    EXPECT_EQ(out->reports, in.reports);
}

TEST(ServeProtocol, ReplyDecodeRejectsMalformed)
{
    Reply in;
    in.status = ReplyStatus::kOk;
    std::vector<uint8_t> payload;
    in.encodeTo(payload);
    // Truncated fixed part.
    EXPECT_FALSE(Reply::decode(payload.data(), 3).ok());
    // Length disagreeing with the record count.
    payload.push_back(0);
    EXPECT_FALSE(
        Reply::decode(payload.data(), payload.size()).ok());
    // Unknown status byte.
    std::vector<uint8_t> bad = payload;
    bad.resize(22);
    bad[0] = 200;
    EXPECT_FALSE(Reply::decode(bad.data(), bad.size()).ok());
}

TEST(ServeProtocol, FrameReaderReassemblesSplitFrames)
{
    std::vector<uint8_t> wire;
    const auto d1 = bytes("hello");
    appendFrame(wire, FrameType::kData, d1.data(), d1.size());
    appendFrame(wire, FrameType::kFin, nullptr, 0);

    FrameReader reader;
    Frame f;
    // Byte-at-a-time delivery must produce the same two frames.
    std::vector<FrameType> seen;
    for (uint8_t b : wire) {
        reader.append(&b, 1);
        while (reader.next(f))
            seen.push_back(f.type);
    }
    ASSERT_EQ(seen.size(), 2u);
    EXPECT_EQ(seen[0], FrameType::kData);
    EXPECT_EQ(seen[1], FrameType::kFin);
    EXPECT_TRUE(reader.error().ok());
    EXPECT_EQ(reader.buffered(), 0u);
}

TEST(ServeProtocol, FrameReaderStickyErrorOnGarbage)
{
    FrameReader reader;
    // Oversized payload length.
    const uint8_t huge[5] = {0xff, 0xff, 0xff, 0xff, 0x02};
    reader.append(huge, sizeof(huge));
    Frame f;
    EXPECT_FALSE(reader.next(f));
    EXPECT_FALSE(reader.error().ok());
    // Sticky: even valid bytes afterwards stay unparsed.
    std::vector<uint8_t> wire;
    appendFrame(wire, FrameType::kFin, nullptr, 0);
    reader.append(wire.data(), wire.size());
    EXPECT_FALSE(reader.next(f));
}

TEST(ServeProtocol, FrameReaderRejectsUnknownType)
{
    FrameReader reader;
    const uint8_t frame[5] = {0, 0, 0, 0, 0x7f};
    reader.append(frame, sizeof(frame));
    Frame f;
    EXPECT_FALSE(reader.next(f));
    EXPECT_FALSE(reader.error().ok());
}

TEST(ServeProtocol, FrameHeldAcrossAppendStaysValid)
{
    // Regression: FrameReader used to hand out payload pointers into
    // its receive buffer, which reallocates on append — holding the
    // decoded frame while more socket bytes arrived was a
    // use-after-free (ASan catches the old behaviour here). The
    // contract is now stable owned storage per decoded frame.
    FrameReader r;
    const std::vector<uint8_t> body = testPayload(3, 512);
    std::vector<uint8_t> wire;
    appendFrame(wire, FrameType::kData, body.data(), body.size());
    r.append(wire.data(), wire.size());
    Frame f;
    ASSERT_TRUE(r.next(f));
    ASSERT_EQ(f.len, body.size());
    const std::vector<uint8_t> more(64 << 10, 0xab);
    for (int i = 0; i < 8; ++i)
        r.append(more.data(), more.size()); // forces buffer growth
    r.compact();
    EXPECT_EQ(std::vector<uint8_t>(f.payload, f.payload + f.len),
              body);
}

TEST(ServeProtocol, TakePayloadMovesChunkAndParsingContinues)
{
    FrameReader r;
    const std::vector<uint8_t> body = bytes("hello frame payload");
    std::vector<uint8_t> wire;
    appendFrame(wire, FrameType::kData, body.data(), body.size());
    appendFrame(wire, FrameType::kFin, nullptr, 0);
    r.append(wire.data(), wire.size());
    Frame f;
    ASSERT_TRUE(r.next(f));
    ASSERT_EQ(f.type, FrameType::kData);
    EXPECT_EQ(r.takePayload(), body);
    ASSERT_TRUE(r.next(f));
    EXPECT_EQ(f.type, FrameType::kFin);
    EXPECT_EQ(f.len, 0u);
    EXPECT_FALSE(r.next(f));
    EXPECT_TRUE(r.error().ok());
}

TEST(ServeProtocol, ReloadFrameTypeIsKnown)
{
    FrameReader r;
    const std::vector<uint8_t> body = {0, 0, 0, 0, 'x', '.',
                                       'a', 'z', 'm', 'l'};
    std::vector<uint8_t> wire;
    appendFrame(wire, FrameType::kReload, body.data(), body.size());
    r.append(wire.data(), wire.size());
    Frame f;
    ASSERT_TRUE(r.next(f));
    EXPECT_EQ(f.type, FrameType::kReload);
    EXPECT_EQ(f.len, body.size());
    EXPECT_TRUE(r.error().ok());
}

TEST(ServeProtocol, DetailCodesRoundTripThroughWireTable)
{
    const ErrorCode codes[] = {
        ErrorCode::kOk,
        ErrorCode::kParseError,
        ErrorCode::kUnsupported,
        ErrorCode::kLimitExceeded,
        ErrorCode::kIoError,
        ErrorCode::kDeadlineExceeded,
        ErrorCode::kCancelled,
        ErrorCode::kResourceExhausted,
        ErrorCode::kInvalidArgument,
        ErrorCode::kVersionMismatch,
        ErrorCode::kChecksumMismatch,
        ErrorCode::kInternal,
    };
    for (ErrorCode c : codes) {
        ErrorCode rt = ErrorCode::kInternal;
        ASSERT_TRUE(detailFromWire(detailToWire(c), rt));
        EXPECT_EQ(rt, c);
        Reply in;
        in.status = ReplyStatus::kTruncated;
        in.detail = c;
        std::vector<uint8_t> p;
        in.encodeTo(p);
        Expected<Reply> out = Reply::decode(p.data(), p.size());
        ASSERT_TRUE(out.ok());
        EXPECT_EQ(out->detail, c);
    }
}

TEST(ServeProtocol, UnknownDetailByteIsParseErrorNotMisdecode)
{
    // A peer from a newer protocol revision may send detail values
    // this build has no entry for; they must surface as a clean parse
    // failure, never as whatever ErrorCode shares the raw value.
    Reply in;
    in.status = ReplyStatus::kOk;
    std::vector<uint8_t> p;
    in.encodeTo(p);
    p[1] = 200; // no revision of the wire table assigns this
    Expected<Reply> out = Reply::decode(p.data(), p.size());
    ASSERT_FALSE(out.ok());
    EXPECT_EQ(out.status().code(), ErrorCode::kParseError);
    ErrorCode dummy;
    EXPECT_FALSE(detailFromWire(200, dummy));
    EXPECT_FALSE(detailFromWire(12, dummy)); // first unassigned value
}

// ---------------------------------------------------------------
// Admission controller (no sockets).

TEST(ServeAdmission, TableCapRejectsBusy)
{
    ServeLimits limits;
    limits.maxSessions = 2;
    limits.memoryBudgetBytes = 0;
    SessionManager m(limits, 1000);
    EXPECT_EQ(m.capacity(), 2u);
    EXPECT_TRUE(m.tryAdmit(0, false).admitted);
    m.admit(1, 0);
    m.admit(2, 0);
    AdmitDecision d = m.tryAdmit(0, false);
    EXPECT_FALSE(d.admitted);
    EXPECT_EQ(d.reject, ReplyStatus::kRejectedBusy);
}

TEST(ServeAdmission, MemoryBudgetDerivesCapacity)
{
    ServeLimits limits;
    limits.maxSessions = 100;
    limits.queueBudgetBytes = 1000;
    limits.memoryBudgetBytes = 10000;
    SessionManager m(limits, 4000); // 5000/session incl. queue
    EXPECT_EQ(m.capacity(), 2u);
    m.admit(1, 0);
    m.admit(2, 0);
    AdmitDecision d = m.tryAdmit(0, false);
    EXPECT_FALSE(d.admitted);
    EXPECT_EQ(d.reject, ReplyStatus::kRejectedMemory);
}

TEST(ServeAdmission, StrictPriorityShedsLowestVictim)
{
    ServeLimits limits;
    limits.maxSessions = 2;
    limits.memoryBudgetBytes = 0;
    SessionManager m(limits, 1000);
    m.admit(10, 5);
    m.admit(11, 3);
    // Equal priority to the lowest: no shed, reject.
    EXPECT_FALSE(m.tryAdmit(3, false).admitted);
    // Strictly higher: sheds the lowest-priority session (id 11).
    AdmitDecision d = m.tryAdmit(4, false);
    ASSERT_TRUE(d.admitted);
    EXPECT_EQ(d.shedVictim, 11u);
    m.retire(11);
    m.admit(12, 4);
    EXPECT_EQ(m.active(), 2u);
}

TEST(ServeAdmission, DrainRejectsEverything)
{
    SessionManager m(ServeLimits(), 1000);
    AdmitDecision d = m.tryAdmit(255, true);
    EXPECT_FALSE(d.admitted);
    EXPECT_EQ(d.reject, ReplyStatus::kRejectedDrain);
}

// ---------------------------------------------------------------
// End-to-end sessions.

TEST(ServeSession, ReplyMatchesSerialRun)
{
    const Automaton a = testAutomaton();
    ServerHarness h(a);
    const auto in = testPayload(1, 64 << 10);
    const Reply r = runOneSession(h.addr(), in);
    EXPECT_EQ(r.status, ReplyStatus::kOk);
    EXPECT_EQ(r.detail, ErrorCode::kOk);
    const SimResult want = serialRun(a, in.data(), in.size());
    EXPECT_EQ(r.symbols, want.symbols);
    EXPECT_EQ(r.reportCount, want.reportCount);
    EXPECT_EQ(r.reports, want.reports);
    EXPECT_EQ(h.shutdown(), 0);
}

TEST(ServeSession, PlannedEngineRepliesIdentically)
{
    const Automaton a = testAutomaton();
    ServerOptions opts;
    opts.engine = ServeEngine::kPlanned;
    ServerHarness h(a, opts);
    const auto in = testPayload(2, 32 << 10);
    const Reply r = runOneSession(h.addr(), in);
    EXPECT_EQ(r.status, ReplyStatus::kOk);
    const SimResult want = serialRun(a, in.data(), in.size());
    EXPECT_EQ(r.reportCount, want.reportCount);
    EXPECT_EQ(r.reports, want.reports);
}

TEST(ServeSession, SessionsReusePooledEnginesExactly)
{
    const Automaton a = testAutomaton();
    ServerHarness h(a);
    // Sequential sessions share one pooled engine session; each reply
    // must be exactly the fresh-session answer.
    for (int i = 0; i < 5; ++i) {
        const auto in = testPayload(100 + i, 8 << 10);
        const Reply r = runOneSession(h.addr(), in);
        EXPECT_EQ(r.status, ReplyStatus::kOk);
        const SimResult want = serialRun(a, in.data(), in.size());
        EXPECT_EQ(r.reportCount, want.reportCount);
        EXPECT_EQ(r.reports, want.reports);
    }
}

TEST(ServeSession, AdmissionRejectsWhenTableFull)
{
    const Automaton a = testAutomaton();
    ServerOptions opts;
    opts.limits.maxSessions = 1;
    ServerHarness h(a, opts);

    Client first;
    ASSERT_TRUE(first.connect(h.addr()).ok());
    ASSERT_TRUE(first.open(0).ok());
    ASSERT_TRUE(first.admitted());

    Client second;
    ASSERT_TRUE(second.connect(h.addr()).ok());
    ASSERT_TRUE(second.open(0).ok());
    EXPECT_FALSE(second.admitted());
    EXPECT_EQ(second.reply().status, ReplyStatus::kRejectedBusy);

    const auto in = testPayload(3, 1024);
    ASSERT_TRUE(first.send(in).ok());
    Expected<Reply> r = first.finish();
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r->status, ReplyStatus::kOk);
}

TEST(ServeSession, HigherPrioritySessionShedsLower)
{
    const Automaton a = testAutomaton();
    ServerOptions opts;
    opts.limits.maxSessions = 1;
    ServerHarness h(a, opts);

    Client low;
    ASSERT_TRUE(low.connect(h.addr()).ok());
    ASSERT_TRUE(low.open(1).ok());
    ASSERT_TRUE(low.admitted());
    const auto fed = testPayload(4, 2048);
    ASSERT_TRUE(low.send(fed).ok());

    Client high;
    ASSERT_TRUE(high.connect(h.addr()).ok());
    ASSERT_TRUE(high.open(200).ok());
    EXPECT_TRUE(high.admitted());

    // The shed session still gets an explicit reply with an exact
    // result over whatever prefix the engine consumed.
    Expected<Reply> shedReply = low.finish();
    ASSERT_TRUE(shedReply.ok());
    EXPECT_EQ(shedReply->status, ReplyStatus::kShedOverload);
    EXPECT_EQ(shedReply->detail, ErrorCode::kCancelled);
    ASSERT_LE(shedReply->symbols, fed.size());
    const SimResult want =
        serialRun(a, fed.data(), shedReply->symbols);
    EXPECT_EQ(shedReply->reportCount, want.reportCount);
    EXPECT_EQ(shedReply->reports, want.reports);

    const auto in = testPayload(5, 1024);
    ASSERT_TRUE(high.send(in).ok());
    Expected<Reply> r = high.finish();
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r->status, ReplyStatus::kOk);
    EXPECT_EQ(h.shutdown(), 0);
    EXPECT_EQ(h.server().stats().shed, 1u);
}

TEST(ServeSession, ShedFreesExactlyOneAdmissionSlot)
{
    const Automaton a = testAutomaton();
    ServerOptions opts;
    opts.limits.maxSessions = 1;
    ServerHarness h(a, opts);

    Client low;
    ASSERT_TRUE(low.connect(h.addr()).ok());
    ASSERT_TRUE(low.open(1).ok());
    ASSERT_TRUE(low.admitted());
    ASSERT_TRUE(low.send(testPayload(40, 64 << 10)).ok());

    Client high;
    ASSERT_TRUE(high.connect(h.addr()).ok());
    ASSERT_TRUE(high.open(200).ok());
    ASSERT_TRUE(high.admitted());

    // The victim leaves admission at shed time, not when its reply
    // lands: a third OPEN below the survivor's priority must be
    // rejected, never admitted against the still-retiring victim
    // (which would push active() past capacity()).
    Client mid;
    ASSERT_TRUE(mid.connect(h.addr()).ok());
    ASSERT_TRUE(mid.open(150).ok());
    EXPECT_FALSE(mid.admitted());
    EXPECT_EQ(mid.reply().status, ReplyStatus::kRejectedBusy);

    Expected<Reply> shedReply = low.finish();
    ASSERT_TRUE(shedReply.ok());
    EXPECT_EQ(shedReply->status, ReplyStatus::kShedOverload);
    ASSERT_TRUE(high.send(testPayload(41, 1024)).ok());
    Expected<Reply> r = high.finish();
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r->status, ReplyStatus::kOk);
}

TEST(ServeSession, SilentConnIsClosedAtOpenTimeout)
{
    const Automaton a = testAutomaton();
    ServerOptions opts;
    opts.openTimeoutMs = 200;
    ServerHarness h(a, opts);

    // Connect and never send OPEN: the server must reclaim the fd at
    // the handshake deadline instead of holding it forever.
    Expected<net::Fd> fd = net::connectTo(h.addr());
    ASSERT_TRUE(fd.ok());
    uint8_t b;
    EXPECT_FALSE(net::readAll(fd->get(), &b, 1, 5000).ok()); // EOF

    // The server is unharmed and still serves.
    const auto in = testPayload(42, 1024);
    const Reply r = runOneSession(h.addr(), in);
    EXPECT_EQ(r.status, ReplyStatus::kOk);
    EXPECT_EQ(h.shutdown(), 0);
    EXPECT_EQ(h.server().stats().openTimeouts, 1u);
}

TEST(ServeSession, OpenTimeoutDoesNotOutliveAdmission)
{
    const Automaton a = testAutomaton();
    ServerOptions opts;
    opts.openTimeoutMs = 150; // no session deadline configured
    ServerHarness h(a, opts);

    Client c;
    ASSERT_TRUE(c.connect(h.addr()).ok());
    ASSERT_TRUE(c.open(0).ok());
    ASSERT_TRUE(c.admitted());
    // Idle well past the handshake deadline: an admitted session must
    // not inherit it (only ServeLimits::sessionDeadlineMs applies).
    std::this_thread::sleep_for(std::chrono::milliseconds(450));
    const auto in = testPayload(43, 2048);
    ASSERT_TRUE(c.send(in).ok());
    Expected<Reply> r = c.finish();
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r->status, ReplyStatus::kOk);
}

TEST(ServeSession, PendingConnCapClosesExcessAccepts)
{
    const Automaton a = testAutomaton();
    ServerOptions opts;
    opts.maxPendingConns = 2;
    opts.drainDeadlineMs = 200;
    opts.lingerMs = 200;
    ServerHarness h(a, opts);

    // Two connections may sit pre-OPEN; the third and fourth must be
    // closed at accept (admission cannot see them, so the cap is the
    // only bound on never-opening clients).
    std::vector<net::Fd> held;
    for (int i = 0; i < 2; ++i) {
        Expected<net::Fd> fd = net::connectTo(h.addr());
        ASSERT_TRUE(fd.ok());
        held.push_back(std::move(*fd));
    }
    for (int i = 0; i < 2; ++i) {
        Expected<net::Fd> fd = net::connectTo(h.addr());
        ASSERT_TRUE(fd.ok());
        uint8_t b;
        EXPECT_FALSE(net::readAll(fd->get(), &b, 1, 5000).ok());
    }
    held.clear(); // EOF the held conns so drain is immediate
    EXPECT_EQ(h.shutdown(), 0);
    EXPECT_EQ(h.server().stats().pendingClosed, 2u);
    EXPECT_EQ(h.server().stats().accepted, 2u); // only the held pair
}

TEST(ServeSession, BackpressureBoundsQueuedBytes)
{
    const Automaton a = testAutomaton();
    ServerOptions opts;
    opts.limits.queueBudgetBytes = 16 << 10;
    ServerHarness h(a, opts);
    const size_t chunk = 4096;
    const auto in = testPayload(6, 1 << 20); // 1 MiB through a 16 KiB queue
    const Reply r = runOneSession(h.addr(), in, 0, chunk);
    EXPECT_EQ(r.status, ReplyStatus::kOk);
    const SimResult want = serialRun(a, in.data(), in.size());
    EXPECT_EQ(r.reportCount, want.reportCount);
    EXPECT_EQ(h.shutdown(), 0);
    // The inbox may overshoot by at most one DATA frame before the
    // pause trips; anything beyond that means backpressure leaked.
    EXPECT_LE(h.server().stats().peakQueueBytes,
              opts.limits.queueBudgetBytes + chunk);
}

TEST(ServeSession, SymbolBudgetTruncatesExactly)
{
    const Automaton a = testAutomaton();
    ServerOptions opts;
    opts.limits.sessionSymbolBudget = 1500;
    ServerHarness h(a, opts);
    const auto in = testPayload(7, 32 << 10);
    const Reply r = runOneSession(h.addr(), in);
    EXPECT_EQ(r.status, ReplyStatus::kTruncated);
    EXPECT_EQ(r.detail, ErrorCode::kLimitExceeded);
    ASSERT_GT(r.symbols, 0u);
    ASSERT_LT(r.symbols, in.size());
    // Truncated-but-exact: the reply equals a serial run over exactly
    // the consumed prefix.
    const SimResult want = serialRun(a, in.data(), r.symbols);
    EXPECT_EQ(r.reportCount, want.reportCount);
    EXPECT_EQ(r.reports, want.reports);
}

TEST(ServeSession, IdleSessionHitsDeadline)
{
    const Automaton a = testAutomaton();
    ServerOptions opts;
    opts.limits.sessionDeadlineMs = 200;
    ServerHarness h(a, opts);
    Client c;
    ASSERT_TRUE(c.connect(h.addr()).ok());
    ASSERT_TRUE(c.open(0).ok());
    ASSERT_TRUE(c.admitted());
    // Stay silent past the deadline: the loop's timer must end the
    // session on its own (the guard only fires inside feed()). The
    // late FIN lands on a kReplying/kLingering connection and is
    // discarded; finish() still reads the queued REPLY.
    std::this_thread::sleep_for(std::chrono::milliseconds(600));
    Expected<Reply> r = c.finish(5000);
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r->status, ReplyStatus::kTruncated);
    EXPECT_EQ(r->detail, ErrorCode::kDeadlineExceeded);
    EXPECT_EQ(r->symbols, 0u);
}

TEST(ServeSession, ProtocolErrorsGetExplicitReplies)
{
    const Automaton a = testAutomaton();
    ServerHarness h(a);

    // DATA before OPEN.
    {
        Expected<net::Fd> fd = net::connectTo(h.addr());
        ASSERT_TRUE(fd.ok());
        std::vector<uint8_t> wire;
        const auto d = bytes("hi");
        appendFrame(wire, FrameType::kData, d.data(), d.size());
        ASSERT_TRUE(
            net::writeAll(fd->get(), wire.data(), wire.size()).ok());
        uint8_t header[kFrameHeaderSize];
        ASSERT_TRUE(net::readAll(fd->get(), header, sizeof(header),
                                 5000)
                        .ok());
        EXPECT_EQ(header[4], static_cast<uint8_t>(FrameType::kReply));
        std::vector<uint8_t> payload(
            static_cast<uint32_t>(header[0]) |
            (static_cast<uint32_t>(header[1]) << 8) |
            (static_cast<uint32_t>(header[2]) << 16) |
            (static_cast<uint32_t>(header[3]) << 24));
        ASSERT_TRUE(net::readAll(fd->get(), payload.data(),
                                 payload.size(), 5000)
                        .ok());
        Expected<Reply> r =
            Reply::decode(payload.data(), payload.size());
        ASSERT_TRUE(r.ok());
        EXPECT_EQ(r->status, ReplyStatus::kProtocolError);
    }

    // Garbage frame type.
    {
        Expected<net::Fd> fd = net::connectTo(h.addr());
        ASSERT_TRUE(fd.ok());
        const uint8_t junk[5] = {0, 0, 0, 0, 0x55};
        ASSERT_TRUE(
            net::writeAll(fd->get(), junk, sizeof(junk)).ok());
        uint8_t header[kFrameHeaderSize];
        ASSERT_TRUE(net::readAll(fd->get(), header, sizeof(header),
                                 5000)
                        .ok());
        EXPECT_EQ(header[4], static_cast<uint8_t>(FrameType::kReply));
    }

    EXPECT_EQ(h.shutdown(), 0);
    EXPECT_EQ(h.server().stats().protocolErrors, 2u);
}

TEST(ServeSession, ClientDropIsNotFatal)
{
    const Automaton a = testAutomaton();
    ServerHarness h(a);
    // Open, stream a little, vanish without FIN. The server must
    // carry on serving (SIGPIPE ignored, abort counted).
    {
        Client c;
        ASSERT_TRUE(c.connect(h.addr()).ok());
        ASSERT_TRUE(c.open(0).ok());
        ASSERT_TRUE(c.send(testPayload(8, 4096)).ok());
        c.close();
    }
    const auto in = testPayload(9, 4096);
    const Reply r = runOneSession(h.addr(), in);
    EXPECT_EQ(r.status, ReplyStatus::kOk);
    EXPECT_EQ(h.shutdown(), 0);
    EXPECT_EQ(h.server().stats().aborted, 1u);
}

TEST(ServeDrain, DrainUnderLoadAnswersEveryAdmittedSession)
{
    const Automaton a = testAutomaton();
    ServerOptions opts;
    opts.drainDeadlineMs = 1000;
    ServerHarness h(a, opts);

    constexpr size_t kThreads = 4;
    constexpr size_t kPerThread = 8;
    std::atomic<uint64_t> admitted{0}, answered{0}, refused{0};
    std::vector<std::thread> clients;
    clients.reserve(kThreads);
    for (size_t t = 0; t < kThreads; ++t) {
        clients.emplace_back([&, t] {
            for (size_t i = 0; i < kPerThread; ++i) {
                Client c;
                if (!c.connect(h.addr()).ok())
                    return; // listener already closed: drain begun
                if (!c.open(0).ok())
                    return;
                if (!c.admitted()) {
                    ++refused;
                    EXPECT_EQ(c.reply().status,
                              ReplyStatus::kRejectedDrain);
                    continue;
                }
                ++admitted;
                const auto in = testPayload(t * 100 + i, 32 << 10);
                (void)c.send(in);
                Expected<Reply> r = c.finish();
                // Invariant: an admitted session either gets a REPLY
                // or the whole drain failed. No silent drops.
                ASSERT_TRUE(r.ok()) << r.status().str();
                ++answered;
                EXPECT_TRUE(replyCarriesResult(r->status));
            }
        });
    }
    // Let load build, then drain mid-flight.
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    const int rc = h.shutdown();
    for (auto &t : clients)
        t.join();
    EXPECT_EQ(rc, 0);
    EXPECT_GT(admitted.load(), 0u);
    EXPECT_EQ(answered.load(), admitted.load());
    EXPECT_GT(h.server().stats().drainNs, 0u);
}

// ---------------------------------------------------------------
// Admission estimate vs measured session footprint.

TEST(ServeSession, EstimateWithinOrderOfMagnitudeOfMeasured)
{
    // The admission controller prices sessions with
    // estimatedSessionBytes(); if that estimate drifts an order of
    // magnitude from what a session actually holds, the memory budget
    // admits far too much or far too little. Compare against the
    // measured footprint of a live, fed session for both engines.
    const Automaton a = wideAutomaton(300);
    const auto in = testPayload(5, 64 << 10);
    for (ServeEngine eng : {ServeEngine::kNfa, ServeEngine::kPlanned}) {
        MatchSessionPool pool(a, eng, PlanOptions(), 256);
        std::unique_ptr<MatchSession> s = pool.acquire();
        s->feed(in.data(), in.size());
        const size_t measured = s->footprintBytes();
        const size_t estimate = pool.estimatedSessionBytes();
        ASSERT_GT(measured, 0u);
        EXPECT_LE(estimate, measured * 10)
            << "engine " << static_cast<int>(eng) << ": estimate "
            << estimate << " vs measured " << measured;
        EXPECT_LE(measured, estimate * 10)
            << "engine " << static_cast<int>(eng) << ": estimate "
            << estimate << " vs measured " << measured;
        pool.release(std::move(s));
    }
}

// ---------------------------------------------------------------
// Hot ruleset reload.

/** Poll @p pred for up to @p ms milliseconds. */
template <typename Pred>
bool
waitFor(Pred pred, int ms)
{
    for (int i = 0; i < ms / 5 + 1; ++i) {
        if (pred())
            return true;
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    return pred();
}

TEST(ServeReload, RemoteReloadSwapsGenerationAtomically)
{
    const Automaton a = testAutomaton();
    const Automaton b = altAutomaton();
    const std::string pathB = writeRulesetFile("reload_b.azml", b);
    ServerHarness h(a);
    EXPECT_EQ(h.server().epoch(), 1u);

    const auto in = testPayload(1, 32 << 10);
    {
        Client c;
        ASSERT_TRUE(c.connect(h.addr()).ok());
        ASSERT_TRUE(c.open(0).ok());
        ASSERT_TRUE(c.admitted());
        EXPECT_EQ(c.epoch(), 1u);
        ASSERT_TRUE(c.send(in).ok());
        Expected<Reply> r = c.finish();
        ASSERT_TRUE(r.ok()) << r.status().str();
        const SimResult want = serialRun(a, in.data(), in.size());
        EXPECT_EQ(r->reports, want.reports);
    }

    Client ctl;
    ASSERT_TRUE(ctl.connect(h.addr()).ok());
    Expected<Reply> rr = ctl.reload(pathB);
    ASSERT_TRUE(rr.ok()) << rr.status().str();
    EXPECT_EQ(rr->status, ReplyStatus::kOk);
    EXPECT_EQ(h.server().epoch(), 2u);
    ctl.close(); // don't leave a lingering conn to slow the drain

    {
        Client c;
        ASSERT_TRUE(c.connect(h.addr()).ok());
        ASSERT_TRUE(c.open(0).ok());
        ASSERT_TRUE(c.admitted());
        EXPECT_EQ(c.epoch(), 2u);
        ASSERT_TRUE(c.send(in).ok());
        Expected<Reply> r = c.finish();
        ASSERT_TRUE(r.ok()) << r.status().str();
        const SimResult want = serialRun(b, in.data(), in.size());
        EXPECT_EQ(r->reportCount, want.reportCount);
        EXPECT_EQ(r->reports, want.reports);
    }

    EXPECT_EQ(h.shutdown(), 0);
    EXPECT_EQ(h.server().stats().reloads, 1u);
    EXPECT_EQ(h.server().stats().reloadFailures, 0u);
}

TEST(ServeReload, FailedReloadKeepsServingOldGeneration)
{
    const Automaton a = testAutomaton();
    ServerHarness h(a);

    // Nonexistent file: the load fails, nothing is published.
    {
        Client ctl;
        ASSERT_TRUE(ctl.connect(h.addr()).ok());
        Expected<Reply> rr =
            ctl.reload(testing::TempDir() + "/no-such-ruleset.azml");
        ASSERT_TRUE(rr.ok()) << rr.status().str();
        EXPECT_EQ(rr->status, ReplyStatus::kServerError);
        EXPECT_NE(rr->detail, ErrorCode::kOk);
    }
    EXPECT_EQ(h.server().epoch(), 1u);

    // Malformed file: parse failure, same outcome.
    const std::string bad = testing::TempDir() + "/garbage.azml";
    {
        std::ofstream out(bad, std::ios::binary | std::ios::trunc);
        out << "this is not an azml ruleset\n";
    }
    {
        Client ctl;
        ASSERT_TRUE(ctl.connect(h.addr()).ok());
        Expected<Reply> rr = ctl.reload(bad);
        ASSERT_TRUE(rr.ok()) << rr.status().str();
        EXPECT_EQ(rr->status, ReplyStatus::kServerError);
    }
    EXPECT_EQ(h.server().epoch(), 1u);

    // The old generation still serves exactly.
    const auto in = testPayload(2, 16 << 10);
    const Reply r = runOneSession(h.addr(), in);
    const SimResult want = serialRun(a, in.data(), in.size());
    EXPECT_EQ(r.reports, want.reports);

    EXPECT_EQ(h.shutdown(), 0);
    EXPECT_EQ(h.server().stats().reloads, 0u);
    EXPECT_EQ(h.server().stats().reloadFailures, 2u);
}

TEST(ServeReload, RemoteReloadCanBeDisabled)
{
    const Automaton a = testAutomaton();
    const std::string pathB =
        writeRulesetFile("reload_disabled.azml", altAutomaton());
    ServerOptions opts;
    opts.remoteReload = false;
    ServerHarness h(a, opts);

    Client ctl;
    ASSERT_TRUE(ctl.connect(h.addr()).ok());
    Expected<Reply> rr = ctl.reload(pathB);
    ASSERT_TRUE(rr.ok()) << rr.status().str();
    EXPECT_EQ(rr->status, ReplyStatus::kServerError);
    EXPECT_EQ(rr->detail, ErrorCode::kUnsupported);
    EXPECT_EQ(h.server().epoch(), 1u);
}

TEST(ServeReload, RequestReloadTriggersSwapLikeSighup)
{
    const Automaton a = testAutomaton();
    const Automaton b = altAutomaton();
    const std::string pathB =
        writeRulesetFile("reload_external.azml", b);
    ServerHarness h(a);

    // requestReload() is the in-process twin of the SIGHUP trigger:
    // same queue, same off-loop load, same publication.
    h.server().requestReload(pathB);
    ASSERT_TRUE(waitFor([&] { return h.server().epoch() == 2; }, 5000));

    const auto in = testPayload(3, 16 << 10);
    Client c;
    ASSERT_TRUE(c.connect(h.addr()).ok());
    ASSERT_TRUE(c.open(0).ok());
    ASSERT_TRUE(c.admitted());
    EXPECT_EQ(c.epoch(), 2u);
    ASSERT_TRUE(c.send(in).ok());
    Expected<Reply> r = c.finish();
    ASSERT_TRUE(r.ok()) << r.status().str();
    const SimResult want = serialRun(b, in.data(), in.size());
    EXPECT_EQ(r->reports, want.reports);
}

TEST(ServeReload, InFlightSessionsFinishOnTheirOpeningGeneration)
{
    const Automaton a = testAutomaton();
    const Automaton b = altAutomaton();
    const std::string pathB = writeRulesetFile("reload_pin.azml", b);
    ServerHarness h(a);

    const auto in = testPayload(4, 32 << 10);
    const size_t half = in.size() / 2;

    // Open under generation 1 and stream half the payload.
    Client c1;
    ASSERT_TRUE(c1.connect(h.addr()).ok());
    ASSERT_TRUE(c1.open(0).ok());
    ASSERT_TRUE(c1.admitted());
    EXPECT_EQ(c1.epoch(), 1u);
    ASSERT_TRUE(c1.send(in.data(), half).ok());

    // Swap while c1 is mid-stream.
    Client ctl;
    ASSERT_TRUE(ctl.connect(h.addr()).ok());
    Expected<Reply> rr = ctl.reload(pathB);
    ASSERT_TRUE(rr.ok()) << rr.status().str();
    ASSERT_EQ(rr->status, ReplyStatus::kOk);
    // Both generations are live: the new one published, the old one
    // pinned by c1.
    EXPECT_EQ(h.server().liveGenerations(), 2u);

    // A session admitted after the swap runs the new ruleset...
    Client c2;
    ASSERT_TRUE(c2.connect(h.addr()).ok());
    ASSERT_TRUE(c2.open(0).ok());
    ASSERT_TRUE(c2.admitted());
    EXPECT_EQ(c2.epoch(), 2u);
    ASSERT_TRUE(c2.send(in).ok());
    Expected<Reply> r2 = c2.finish();
    ASSERT_TRUE(r2.ok()) << r2.status().str();
    EXPECT_EQ(r2->reports, serialRun(b, in.data(), in.size()).reports);

    // ...while c1 finishes bit-identically on the generation it
    // opened under — never migrated, never dropped.
    ASSERT_TRUE(c1.send(in.data() + half, in.size() - half).ok());
    Expected<Reply> r1 = c1.finish();
    ASSERT_TRUE(r1.ok()) << r1.status().str();
    EXPECT_EQ(r1->status, ReplyStatus::kOk);
    EXPECT_EQ(r1->reports, serialRun(a, in.data(), in.size()).reports);

    // With c1 gone, the retired generation's pins drain and it is
    // destroyed: no pin leak.
    c1.close();
    EXPECT_TRUE(waitFor(
        [&] { return h.server().liveGenerations() == 1; }, 5000));
}

TEST(ServeReload, SoakSwapsServeEveryGenerationExactly)
{
    // The reload soak: many concurrent (chaos-faulted, where the
    // build has fault injection) sessions across repeated swaps.
    // Invariants: every reply carrying a result is bit-identical to a
    // serial run against the generation the session opened under (the
    // ADMIT epoch says which), no admitted session is dropped by a
    // swap, and retired generations drain to destruction.
    const Automaton a = testAutomaton();
    const Automaton b = altAutomaton();
    const std::string pathA = writeRulesetFile("soak_a.azml", a);
    const std::string pathB = writeRulesetFile("soak_b.azml", b);
    ServerHarness h(a);

#if AZOO_FAULT_INJECTION
    fault::armRandom(fault::Point::kSessionDrop, 77, 10);
    fault::armRandom(fault::Point::kSlowConsumer, 88, 60);
#endif

    constexpr size_t kSwaps = 12;
    constexpr size_t kThreads = 8;
    constexpr size_t kPerThread = 30; // 240 sessions total
    std::atomic<uint64_t> swapsDone{0};
    std::thread reloader([&] {
        for (size_t i = 0; i < kSwaps; ++i) {
            Client ctl;
            if (!ctl.connect(h.addr()).ok())
                break;
            // Alternate B, A, B, ... so epoch parity names the
            // automaton: odd epochs are A, even are B.
            Expected<Reply> r =
                ctl.reload((i % 2) ? pathA : pathB, 20000);
            if (r.ok() && r->status == ReplyStatus::kOk)
                ++swapsDone;
            std::this_thread::sleep_for(
                std::chrono::milliseconds(20));
        }
    });

    std::atomic<uint64_t> checked{0}, okFull{0}, transport{0};
    std::vector<std::thread> clients;
    clients.reserve(kThreads);
    for (size_t t = 0; t < kThreads; ++t) {
        clients.emplace_back([&, t] {
            for (size_t i = 0; i < kPerThread; ++i) {
                const auto in = testPayload(t * 1000 + i, 4096);
                Client c;
                if (!c.connect(h.addr()).ok()) {
                    ++transport;
                    continue;
                }
                if (!c.open(0, 10000).ok()) {
                    ++transport;
                    continue;
                }
                if (!c.admitted())
                    continue;
                const uint64_t e = c.epoch();
                ASSERT_GE(e, 1u);
                (void)c.send(in);
                Expected<Reply> r = c.finish(20000);
                if (!r.ok()) {
                    ++transport; // injected drop; promised nothing
                    continue;
                }
                if (!replyCarriesResult(r->status))
                    continue;
                const Automaton &g = (e % 2) ? a : b;
                ASSERT_LE(r->symbols, in.size());
                const SimResult want =
                    serialRun(g, in.data(), r->symbols);
                ASSERT_EQ(r->reportCount, want.reportCount);
                ASSERT_EQ(r->reports, want.reports);
                ++checked;
                if (r->status == ReplyStatus::kOk)
                    ++okFull;
            }
        });
    }
    for (auto &t : clients)
        t.join();
    reloader.join();
#if AZOO_FAULT_INJECTION
    fault::disarmAll();
#endif

    EXPECT_GE(swapsDone.load(), 10u);
    EXPECT_GT(checked.load(), 0u);
    EXPECT_GT(okFull.load(), (kThreads * kPerThread) / 2);

    // No pin leak: with every session finished, only the current
    // generation may remain alive.
    EXPECT_TRUE(waitFor(
        [&] { return h.server().liveGenerations() == 1; }, 10000))
        << h.server().liveGenerations() << " generations still live";

    EXPECT_EQ(h.shutdown(), 0);
    EXPECT_GE(h.server().stats().reloads, 10u);
}

#if AZOO_FAULT_INJECTION

struct FaultScope {
    ~FaultScope() { fault::disarmAll(); }
};

TEST(ServeChaos, InjectedFaultsNeverForgeResults)
{
    FaultScope scope;
    const Automaton a = testAutomaton();
    ServerOptions opts;
    opts.limits.sessionSymbolBudget = 100000; // exercised rarely
    ServerHarness h(a, opts);

    // All three service fault points on seeded Bernoulli schedules.
    fault::armRandom(fault::Point::kAcceptFail, 11, 30);
    fault::armRandom(fault::Point::kSessionDrop, 22, 15);
    fault::armRandom(fault::Point::kSlowConsumer, 33, 80);

    constexpr size_t kSessions = 1000;
    constexpr size_t kThreads = 4;
    std::atomic<size_t> next{0};
    std::atomic<uint64_t> okCount{0}, resultChecked{0},
        transportFailures{0};
    std::vector<std::thread> clients;
    clients.reserve(kThreads);
    for (size_t t = 0; t < kThreads; ++t) {
        clients.emplace_back([&] {
            for (;;) {
                const size_t i = next.fetch_add(1);
                if (i >= kSessions)
                    return;
                const auto in = testPayload(i, 2048);
                Client c;
                if (!c.connect(h.addr()).ok()) {
                    ++transportFailures;
                    continue;
                }
                if (!c.open(0, 5000).ok()) {
                    // Injected accept-fail / session-drop severed the
                    // connection before admission: allowed, promised
                    // nothing.
                    ++transportFailures;
                    continue;
                }
                if (!c.admitted())
                    continue;
                (void)c.send(in);
                Expected<Reply> r = c.finish(10000);
                if (!r.ok()) {
                    // Dropped mid-session without a REPLY: the one
                    // legal way to lose a session under kSessionDrop.
                    ++transportFailures;
                    continue;
                }
                // THE chaos invariant: any reply claiming a result is
                // bit-identical to the serial engine over the prefix
                // it claims, no matter which faults fired around it.
                if (replyCarriesResult(r->status)) {
                    ASSERT_LE(r->symbols, in.size());
                    const SimResult want =
                        serialRun(a, in.data(), r->symbols);
                    ASSERT_EQ(r->reportCount, want.reportCount);
                    ASSERT_EQ(r->reports, want.reports);
                    ++resultChecked;
                    if (r->status == ReplyStatus::kOk) {
                        ASSERT_EQ(r->symbols, in.size());
                        ++okCount;
                    }
                }
            }
        });
    }
    for (auto &t : clients)
        t.join();
    fault::disarmAll();
    EXPECT_EQ(h.shutdown(), 0);

    // The schedules must have actually bitten, and most sessions must
    // still have completed exactly.
    EXPECT_GT(transportFailures.load(), 0u);
    EXPECT_GT(okCount.load(), kSessions / 2);
    EXPECT_EQ(h.server().stats().sessionDrops +
                  h.server().stats().acceptErrors,
              transportFailures.load());
    EXPECT_GT(resultChecked.load(), 0u);
}

#endif // AZOO_FAULT_INJECTION

} // namespace
} // namespace serve
} // namespace azoo
