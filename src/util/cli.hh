/**
 * @file
 * Tiny command-line flag parser for the bench and example binaries.
 *
 * Supports "--name value", "--name=value", and boolean "--name".
 * Unrecognized flags are fatal so typos in sweep scripts fail loudly.
 * "--help" prints the accepted flags (one per line) and exits 0;
 * tools/check_docs.py keys the docs/FORMATS.md flag tables off it.
 */

#ifndef AZOO_UTIL_CLI_HH
#define AZOO_UTIL_CLI_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace azoo {

/** Parsed command line with typed accessors and defaults. */
class Cli
{
  public:
    /**
     * Parse argv. @p known lists accepted flag names (without "--");
     * anything else aborts with a usage message.
     */
    Cli(int argc, char **argv, const std::vector<std::string> &known);

    /** True if the flag appeared at all. */
    bool has(const std::string &name) const;

    /** String value or default. */
    std::string get(const std::string &name,
                    const std::string &def = "") const;

    /** Integer value or default. */
    int64_t getInt(const std::string &name, int64_t def) const;

    /** Double value or default. */
    double getDouble(const std::string &name, double def) const;

    /** Boolean flag: present (with no value or "true"/"1") means true. */
    bool getBool(const std::string &name, bool def = false) const;

  private:
    std::map<std::string, std::string> values_;
};

} // namespace azoo

#endif // AZOO_UTIL_CLI_HH
