/**
 * @file
 * libFuzzer harness for the MNRL (JSON) front end. The contract
 * under fuzz: arbitrary bytes either parse into a valid automaton or
 * come back as a structured Status — never an abort, never an
 * uncaught exception, never unbounded resource use (ParseLimits are
 * tightened so the fuzzer explores parse logic, not allocation).
 */

#include <cstddef>
#include <cstdint>
#include <sstream>
#include <string>

#include "core/mnrl.hh"

extern "C" int
LLVMFuzzerTestOneInput(const uint8_t *data, size_t size)
{
    azoo::ParseLimits limits;
    limits.maxStates = 1 << 12;
    limits.maxEdges = 1 << 14;
    limits.maxNestingDepth = 64;
    limits.maxInputBytes = 1 << 20;

    std::istringstream is(
        std::string(reinterpret_cast<const char *>(data), size));
    azoo::Expected<azoo::Automaton> got = azoo::readMnrl(is, limits);
    if (got.ok()) {
        // A parsed automaton must satisfy its own invariants.
        if (!got->check().ok())
            __builtin_trap();
    }
    return 0;
}
