/**
 * @file
 * Blocking client for the azoo_serve protocol.
 *
 * The client side is deliberately simple — synchronous calls over one
 * connection, poll-based timeouts — because its consumers are a
 * latency harness (bench/serve_latency) and tests, both of which want
 * "open, stream, collect the reply" with no event loop of their own.
 * Concurrency comes from running many Client instances on many
 * threads, which is also how real sessions arrive at the server.
 *
 * Every method returns Status/Expected rather than dying: a server
 * that sheds or rejects this session answers with a well-formed REPLY
 * (finish() returns it), and a server that drops the connection
 * surfaces as kIoError from whichever call saw the close.
 */

#ifndef AZOO_SERVE_CLIENT_HH
#define AZOO_SERVE_CLIENT_HH

#include <cstdint>
#include <string>
#include <vector>

#include "serve/protocol.hh"
#include "util/net.hh"

namespace azoo {
namespace serve {

/** One protocol session: connect() -> open() -> send()* -> finish().
 */
class Client
{
  public:
    Client() = default;

    /** Connect to "unix:PATH" / "tcp:PORT". */
    Status connect(const std::string &addr);

    /**
     * Send OPEN and wait for the server's verdict. OK with
     * admitted()==true after ADMIT; OK with admitted()==false when
     * the server answered a rejection REPLY immediately (reply()
     * holds it and finish() must not be called). kIoError /
     * kDeadlineExceeded on transport trouble.
     */
    Status open(uint8_t priority, int timeoutMs = 10000);

    bool admitted() const { return admitted_; }

    /** Generation epoch echoed in the ADMIT frame (0 when the server
     *  predates the epoch payload, or before admission). Reload tests
     *  steer on this: it says exactly which ruleset generation the
     *  session runs against. */
    uint64_t epoch() const { return epoch_; }

    /**
     * Send a RELOAD control frame (instead of OPEN, on a fresh
     * connection): ask the server to hot-swap to the ruleset at
     * @p path. The REPLY is kOk when the new generation is live,
     * kServerError with a detail code when the load/verify failed or
     * remote reload is disabled, kRejectedDrain during a drain.
     */
    Expected<Reply> reload(const std::string &path,
                           int timeoutMs = 30000);

    /** Stream input bytes (chunked into DATA frames). The server may
     *  already have shed the session; EPIPE from here is normal then
     *  — callers fall through to finish(), the REPLY may still be
     *  readable. */
    Status send(const uint8_t *data, size_t len);

    Status
    send(const std::vector<uint8_t> &data)
    {
        return send(data.data(), data.size());
    }

    /** Send FIN and read the REPLY. */
    Expected<Reply> finish(int timeoutMs = 30000);

    /** The last REPLY received (set by open() on rejection and by
     *  finish()). */
    const Reply &reply() const { return reply_; }

    void close() { fd_.close(); }

  private:
    Expected<Frame> readFrame(std::vector<uint8_t> &payload,
                              int timeoutMs);

    net::Fd fd_;
    bool admitted_ = false;
    uint64_t epoch_ = 0;
    Reply reply_;
};

} // namespace serve
} // namespace azoo

#endif // AZOO_SERVE_CLIENT_HH
