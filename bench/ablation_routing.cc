/**
 * @file
 * Ablation: spatial routing fabrics across the suite.
 *
 * Reproduces the routing narrative behind the paper's methodology
 * (Sections II-B and X-A): mesh automata overwhelmed the Micron
 * D480's hierarchical routing matrix -- ANMLZoo's Levenshtein
 * "maximizes the routing resources of the AP, but only uses 6% of
 * the architecture's state capacity" -- while "a more traditional,
 * 2D or island style routing fabric allowed for much higher
 * utilization" (Wadden et al., FCCM 2017). AutomataZoo therefore
 * stopped sizing benchmarks to one AP chip.
 *
 * For every benchmark we place the automaton on both modeled fabrics
 * and report blocks used, device utilization, and cross-block edges.
 */

#include <iostream>

#include "bench/common.hh"
#include "engine/placement.hh"
#include "util/table.hh"
#include "zoo/registry.hh"

using namespace azoo;

int
main(int argc, char **argv)
{
    bench::BenchConfig cfg = bench::parseBenchFlags(argc, argv);

    const FabricParams hier = FabricParams::hierarchicalD480();
    const FabricParams island = FabricParams::islandStyle();

    std::cout << "Routing-fabric ablation (scale=" << cfg.zoo.scale
              << "): utilization on " << hier.name << " vs "
              << island.name << "\n\n";

    Table t({"Benchmark", "States", "Hier.Blocks", "Hier.Util",
             "Island.Blocks", "Island.Util", "CrossEdges(hier)"});

    double worst_hier = 1.0;
    std::string worst_name;
    for (const auto &info : zoo::allBenchmarks()) {
        zoo::Benchmark b = info.make(cfg.zoo);
        auto h = placeAndRoute(b.automaton, hier);
        auto i = placeAndRoute(b.automaton, island);
        t.addRow({info.name, Table::num(h.states),
                  Table::num(h.blocksUsed),
                  Table::percent(100 * h.utilization),
                  Table::num(i.blocksUsed),
                  Table::percent(100 * i.utilization),
                  Table::num(h.crossBlockEdges)});
        if (h.utilization < worst_hier) {
            worst_hier = h.utilization;
            worst_name = info.name;
        }
        std::cerr << "  [" << info.name << "]\n";
    }
    t.print(std::cout);

    std::cout << "\nWorst hierarchical utilization: " << worst_name
              << " at " << Table::percent(100 * worst_hier)
              << " (ANMLZoo's D480 Levenshtein sat at ~6%).\n";
    return 0;
}
