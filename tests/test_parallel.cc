/**
 * @file
 * Parallel execution layer tests: ThreadPool correctness, and the
 * ParallelRunner determinism guarantee — batch and component-sharded
 * results equal the (canonicalized) serial engine for every thread
 * count, under chunked feeding, and on zero-length streams. Run
 * under -fsanitize=thread in CI to catch data races in the pool.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <latch>
#include <numeric>

#include "core/builder.hh"
#include "engine/nfa_engine.hh"
#include "engine/parallel_runner.hh"
#include "util/thread_pool.hh"
#include "zoo/registry.hh"

namespace azoo {
namespace {

zoo::ZooConfig
tinyConfig()
{
    zoo::ZooConfig cfg;
    cfg.scale = 0.01;
    cfg.inputBytes = 32 * 1024;
    return cfg;
}

TEST(ThreadPool, ParallelForVisitsEveryIndexOnce)
{
    ThreadPool pool(4);
    EXPECT_EQ(pool.size(), 4u);
    std::vector<std::atomic<int>> hits(1000);
    pool.parallelFor(hits.size(),
                     [&](size_t i) { hits[i].fetch_add(1); });
    for (auto &h : hits)
        EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForHandlesDegenerateSizes)
{
    ThreadPool pool(3);
    int calls = 0;
    pool.parallelFor(0, [&](size_t) { ++calls; });
    EXPECT_EQ(calls, 0);
    std::atomic<int> one{0};
    pool.parallelFor(1, [&](size_t) { one.fetch_add(1); });
    EXPECT_EQ(one.load(), 1);
}

TEST(ThreadPool, SlotIndexedParallelForGivesExclusiveSlots)
{
    ThreadPool pool(4);
    std::array<std::atomic<int>, 4> inSlot{};
    std::atomic<bool> badSlot{false}, clash{false};
    std::vector<std::atomic<int>> hits(500);
    pool.parallelFor(hits.size(), [&](size_t slot, size_t i) {
        if (slot >= 4)
            badSlot.store(true);
        else if (inSlot[slot].fetch_add(1) != 0)
            clash.store(true);
        hits[i].fetch_add(1);
        if (slot < 4)
            inSlot[slot].fetch_sub(1);
    });
    EXPECT_FALSE(badSlot.load());
    EXPECT_FALSE(clash.load()) << "two tasks shared a slot at once";
    for (auto &h : hits)
        EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, PostRunsEveryTask)
{
    constexpr int kTasks = 256;
    ThreadPool pool(4);
    std::atomic<int> sum{0};
    std::latch done(kTasks);
    for (int i = 0; i < kTasks; ++i) {
        pool.post([&, i] {
            sum.fetch_add(i);
            done.count_down();
        });
    }
    done.wait();
    EXPECT_EQ(sum.load(), kTasks * (kTasks - 1) / 2);
}

TEST(ThreadPool, SingleWorkerStillCompletes)
{
    ThreadPool pool(1);
    std::vector<int> out(64, 0);
    pool.parallelFor(out.size(), [&](size_t i) { out[i] = 1; });
    EXPECT_EQ(std::accumulate(out.begin(), out.end(), 0), 64);
}

/** Benchmarks covering plain STEs, all-input heavy graphs, and
 *  counters with reset edges. */
const char *const kZooCases[] = {"Snort", "Protomata",
                                 "Seq. Match 6w 6p wC"};

class ParallelVsSerial
    : public testing::TestWithParam<std::tuple<const char *, size_t>>
{
};

TEST_P(ParallelVsSerial, ShardedMatchesSerial)
{
    const auto [name, threads] = GetParam();
    zoo::Benchmark b = zoo::makeBenchmark(name, tinyConfig());
    const size_t simLen = std::min<size_t>(b.input.size(), 16 * 1024);

    SimOptions sim;
    sim.countByCode = true;
    NfaEngine serial(b.automaton);
    SimResult expect = serial.simulate(b.input.data(), simLen, sim);
    canonicalizeReports(expect);

    ParallelOptions popts;
    popts.threads = threads;
    popts.sim = sim;
    ParallelRunner runner(b.automaton, popts);
    EXPECT_EQ(runner.threads(), threads);
    EXPECT_LE(runner.shardCount(), threads);
    SimResult got = runner.simulateSharded(b.input.data(), simLen);

    EXPECT_EQ(got.symbols, expect.symbols);
    EXPECT_EQ(got.reportCount, expect.reportCount);
    EXPECT_EQ(got.totalEnabled, expect.totalEnabled);
    EXPECT_EQ(got.reportingCycles, expect.reportingCycles);
    EXPECT_EQ(got.byCode, expect.byCode);
    EXPECT_EQ(got.reports, expect.reports);

    // Same run on the lazy-DFA engine, with a budget small enough
    // that large components flush mid-stream: still bit-identical.
    ParallelOptions lazyOpts = popts;
    lazyOpts.engine = ParallelEngine::kLazyDfa;
    lazyOpts.lazyCacheBytes = 64 * 1024;
    ParallelRunner lazyRunner(b.automaton, lazyOpts);
    SimResult lgot = lazyRunner.simulateSharded(b.input.data(), simLen);
    EXPECT_EQ(lgot.reportCount, expect.reportCount);
    EXPECT_EQ(lgot.totalEnabled, expect.totalEnabled);
    EXPECT_EQ(lgot.reportingCycles, expect.reportingCycles);
    EXPECT_EQ(lgot.byCode, expect.byCode);
    EXPECT_EQ(lgot.reports, expect.reports);
}

TEST_P(ParallelVsSerial, BatchMatchesPerStreamSerial)
{
    const auto [name, threads] = GetParam();
    zoo::Benchmark b = zoo::makeBenchmark(name, tinyConfig());

    // Unequal stream lengths exercise the stealing/balancing path.
    std::vector<std::vector<uint8_t>> streams;
    const size_t cuts[] = {0, 1000, 1100, 5000, 13000, 16000};
    for (size_t i = 0; i + 1 < std::size(cuts); ++i) {
        streams.emplace_back(b.input.begin() + cuts[i],
                             b.input.begin() + cuts[i + 1]);
    }

    NfaEngine serial(b.automaton);
    ParallelOptions popts;
    popts.threads = threads;
    ParallelRunner runner(b.automaton, popts);
    BatchResult got = runner.runBatch(streams);

    ParallelOptions lazyOpts = popts;
    lazyOpts.engine = ParallelEngine::kLazyDfa;
    ParallelRunner lazyRunner(b.automaton, lazyOpts);
    BatchResult lgot = lazyRunner.runBatch(streams);

    ASSERT_EQ(got.perStream.size(), streams.size());
    ASSERT_EQ(lgot.perStream.size(), streams.size());
    uint64_t symbols = 0, reports = 0;
    for (size_t i = 0; i < streams.size(); ++i) {
        SimResult expect = serial.simulate(streams[i]);
        canonicalizeReports(expect);
        EXPECT_EQ(got.perStream[i].symbols, expect.symbols) << i;
        EXPECT_EQ(got.perStream[i].reportCount, expect.reportCount)
            << i;
        EXPECT_EQ(got.perStream[i].totalEnabled, expect.totalEnabled)
            << i;
        EXPECT_EQ(got.perStream[i].reports, expect.reports) << i;
        EXPECT_EQ(lgot.perStream[i].reportCount, expect.reportCount)
            << i;
        EXPECT_EQ(lgot.perStream[i].totalEnabled, expect.totalEnabled)
            << i;
        EXPECT_EQ(lgot.perStream[i].reports, expect.reports) << i;
        symbols += expect.symbols;
        reports += expect.reportCount;
    }
    EXPECT_EQ(got.totalSymbols, symbols);
    EXPECT_EQ(got.totalReports, reports);
    EXPECT_EQ(lgot.totalSymbols, symbols);
    EXPECT_EQ(lgot.totalReports, reports);
}

INSTANTIATE_TEST_SUITE_P(
    ZooThreads, ParallelVsSerial,
    testing::Combine(testing::ValuesIn(kZooCases),
                     testing::Values<size_t>(1, 2, 7)));

TEST(ParallelRunner, ChunkedBatchEqualsMonolithicBatch)
{
    zoo::Benchmark b =
        zoo::makeBenchmark("Seq. Match 6w 6p wC", tinyConfig());
    std::vector<std::vector<uint8_t>> streams;
    for (size_t i = 0; i < 4; ++i) {
        streams.emplace_back(b.input.begin() + i * 2048,
                             b.input.begin() + (i + 1) * 2048);
    }

    ParallelOptions mono;
    mono.threads = 3;
    ParallelRunner monoRunner(b.automaton, mono);
    BatchResult want = monoRunner.runBatch(streams);

    // A chunk size that divides nothing evenly, so counter state and
    // in-flight matches must survive feed boundaries on every stream.
    ParallelOptions chunked = mono;
    chunked.chunkBytes = 37;
    ParallelRunner chunkedRunner(b.automaton, chunked);
    BatchResult got = chunkedRunner.runBatch(streams);

    ASSERT_EQ(got.perStream.size(), want.perStream.size());
    for (size_t i = 0; i < want.perStream.size(); ++i) {
        EXPECT_EQ(got.perStream[i].reports, want.perStream[i].reports)
            << i;
        EXPECT_EQ(got.perStream[i].totalEnabled,
                  want.perStream[i].totalEnabled)
            << i;
    }
    EXPECT_EQ(got.totalSymbols, want.totalSymbols);
    EXPECT_EQ(got.totalReports, want.totalReports);
}

TEST(ParallelRunner, ZeroLengthStreams)
{
    Automaton a("t");
    addLiteral(a, "ab", StartType::kAllInput, true, 1);

    ParallelOptions popts;
    popts.threads = 2;
    ParallelRunner runner(a, popts);

    // Batch mixing empty and non-empty streams.
    std::vector<std::vector<uint8_t>> streams = {
        {}, {'x', 'a', 'b'}, {}};
    BatchResult br = runner.runBatch(streams);
    ASSERT_EQ(br.perStream.size(), 3u);
    EXPECT_EQ(br.perStream[0].symbols, 0u);
    EXPECT_EQ(br.perStream[0].reportCount, 0u);
    EXPECT_EQ(br.perStream[1].reportCount, 1u);
    EXPECT_EQ(br.perStream[2].reportCount, 0u);
    EXPECT_EQ(br.totalSymbols, 3u);
    EXPECT_EQ(br.totalReports, 1u);

    // Empty batch and zero-length sharded input.
    EXPECT_TRUE(runner.runBatch({}).perStream.empty());
    SimResult sharded = runner.simulateSharded(nullptr, 0);
    EXPECT_EQ(sharded.symbols, 0u);
    EXPECT_EQ(sharded.reportCount, 0u);
}

TEST(ParallelRunner, SingleComponentGetsOneShard)
{
    Automaton a("t");
    addLiteral(a, "abcd", StartType::kAllInput, true, 1);
    ParallelOptions popts;
    popts.threads = 7;
    ParallelRunner runner(a, popts);
    EXPECT_EQ(runner.shardCount(), 1u);

    std::string text = "zzabcdzzabcd";
    std::vector<uint8_t> in(text.begin(), text.end());
    NfaEngine serial(a);
    SimResult expect = serial.simulate(in);
    canonicalizeReports(expect);
    SimResult got = runner.simulateSharded(in);
    EXPECT_EQ(got.reports, expect.reports);
    EXPECT_EQ(got.totalEnabled, expect.totalEnabled);
}

TEST(ParallelRunner, ShardedHonorsRecordingOptions)
{
    // Three single-literal components, each reporting often.
    Automaton a("t");
    addLiteral(a, "a", StartType::kAllInput, true, 1);
    addLiteral(a, "b", StartType::kAllInput, true, 2);
    addLiteral(a, "ab", StartType::kAllInput, true, 3);
    const std::string text = "ababababababab";
    std::vector<uint8_t> in(text.begin(), text.end());

    ParallelOptions popts;
    popts.threads = 3;
    popts.sim.recordReports = false;
    ParallelRunner runner(a, popts);
    EXPECT_EQ(runner.shardCount(), 3u);
    SimResult off = runner.simulateSharded(in);
    EXPECT_TRUE(off.reports.empty());
    EXPECT_GT(off.reportCount, 10u);

    popts.sim.recordReports = true;
    popts.sim.reportRecordLimit = 5;
    ParallelRunner capped(a, popts);
    SimResult few = capped.simulateSharded(in);
    EXPECT_EQ(few.reports.size(), 5u);
    EXPECT_EQ(few.reportCount, off.reportCount);
}

TEST(Zoo, BuildSuiteParallelIsDeterministic)
{
    const std::vector<std::string> names = {"Snort", "Protomata",
                                            "File Carving"};
    zoo::ZooConfig cfg = tinyConfig();
    std::vector<zoo::Benchmark> suite = zoo::buildSuite(names, cfg, 4);
    ASSERT_EQ(suite.size(), names.size());
    for (size_t i = 0; i < names.size(); ++i) {
        zoo::Benchmark want = zoo::makeBenchmark(names[i], cfg);
        EXPECT_EQ(suite[i].name, want.name);
        EXPECT_EQ(suite[i].automaton.size(), want.automaton.size());
        EXPECT_EQ(suite[i].automaton.edgeCount(),
                  want.automaton.edgeCount());
        EXPECT_EQ(suite[i].input, want.input);
    }
}

} // namespace
} // namespace azoo
