#include "input/dna.hh"

#include <cassert>

namespace azoo {
namespace input {

std::vector<uint8_t>
randomDna(size_t n, uint64_t seed)
{
    Rng rng(seed);
    std::vector<uint8_t> out;
    out.reserve(n);
    for (size_t i = 0; i < n; ++i)
        out.push_back(static_cast<uint8_t>(rng.pickChar(kDnaAlphabet)));
    return out;
}

std::string
randomDnaString(size_t l, Rng &rng)
{
    return rng.randomString(l, kDnaAlphabet);
}

void
plantWithMismatches(std::vector<uint8_t> &stream, size_t offset,
                    const std::string &pattern, int mismatches, Rng &rng)
{
    assert(offset + pattern.size() <= stream.size());
    std::string mutated = pattern;
    std::vector<size_t> pos(pattern.size());
    for (size_t i = 0; i < pos.size(); ++i)
        pos[i] = i;
    rng.shuffle(pos);
    for (int m = 0; m < mismatches && m < static_cast<int>(pos.size());
         ++m) {
        char cur = mutated[pos[m]];
        char repl = cur;
        while (repl == cur)
            repl = rng.pickChar(kDnaAlphabet);
        mutated[pos[m]] = repl;
    }
    for (size_t i = 0; i < mutated.size(); ++i)
        stream[offset + i] = static_cast<uint8_t>(mutated[i]);
}

} // namespace input
} // namespace azoo
