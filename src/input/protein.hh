/**
 * @file
 * Protein sequence input: the UniProt-database stand-in that drives
 * the Protomata benchmark.
 */

#ifndef AZOO_INPUT_PROTEIN_HH
#define AZOO_INPUT_PROTEIN_HH

#include <cstdint>
#include <string>
#include <vector>

#include "util/rng.hh"

namespace azoo {
namespace input {

/** The 20 standard amino-acid one-letter codes. */
inline const std::string kAminoAcids = "ACDEFGHIKLMNPQRSTVWY";

/**
 * A synthetic proteome: concatenated protein sequences separated by
 * newlines, with a small fraction of positions rewritten to embed
 * instances drawn from @p motifs (concrete strings sampled from the
 * benchmark's PROSITE-style patterns) so the benchmark actually
 * reports.
 */
std::vector<uint8_t> syntheticProteome(
    size_t n, uint64_t seed, const std::vector<std::string> &motifs);

} // namespace input
} // namespace azoo

#endif // AZOO_INPUT_PROTEIN_HH
