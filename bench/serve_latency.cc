/**
 * @file
 * serve_latency: latency/throughput harness for azoo_serve.
 *
 * Drives many protocol sessions against a match service and reports
 * per-session latency percentiles (p50/p99/p999), session throughput,
 * and byte throughput, plus a census of reply statuses (ok /
 * truncated / rejected / shed / failed) — under load shedding the
 * *distribution* of outcomes is the result, not a failure.
 *
 * Two targets:
 *   --connect ADDR   measure an externally started azoo_serve
 *                    (sessions stream seeded pseudo-random bytes);
 *   (default)        self-host: generate a zoo benchmark (--name,
 *                    default Snort), run a serve::Server in-process,
 *                    and stream slices of the benchmark's standard
 *                    input so the match density is realistic.
 *
 * Two load models:
 *   closed loop (default)    --threads workers, each opening the next
 *                            session as soon as its previous one
 *                            finishes — measures service latency;
 *   --open-rate R            sessions arrive at R/sec regardless of
 *                            completions (latency is measured from
 *                            the scheduled arrival, so queueing
 *                            delay counts) — measures behaviour at a
 *                            fixed offered load.
 *
 * --json PATH emits an azoo-bench-1 report (CI's bench-smoke checks
 * the committed BENCH_9.json against this schema).
 */

#include <algorithm>
#include <atomic>
#include <chrono>
#include <iostream>
#include <thread>
#include <vector>

#include "bench/common.hh"
#include "serve/client.hh"
#include "serve/server.hh"
#include "util/rng.hh"
#include "util/table.hh"
#include "zoo/registry.hh"

using namespace azoo;

namespace {

using Clock = std::chrono::steady_clock;

struct SessionOutcome {
    uint64_t latencyNs = 0;
    serve::ReplyStatus status = serve::ReplyStatus::kServerError;
    uint64_t bytes = 0;
    bool transportOk = false;
};

uint64_t
percentile(std::vector<uint64_t> &sorted, double q)
{
    if (sorted.empty())
        return 0;
    size_t idx = static_cast<size_t>(
        q * static_cast<double>(sorted.size()));
    if (idx >= sorted.size())
        idx = sorted.size() - 1;
    return sorted[idx];
}

/** One full session against @p addr; records outcome into @p out. */
void
runSession(const std::string &addr, uint8_t priority,
           const uint8_t *payload, size_t len, size_t chunk,
           SessionOutcome &out)
{
    const auto t0 = Clock::now();
    serve::Client client;
    if (!client.connect(addr).ok())
        return;
    if (!client.open(priority).ok())
        return;
    if (!client.admitted()) {
        out.transportOk = true;
        out.status = client.reply().status;
        out.latencyNs = static_cast<uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                Clock::now() - t0)
                .count());
        return;
    }
    for (size_t pos = 0; pos < len; pos += chunk) {
        const size_t n = std::min(chunk, len - pos);
        if (!client.send(payload + pos, n).ok())
            break; // shed mid-stream: the REPLY may still be waiting
    }
    Expected<serve::Reply> r = client.finish();
    out.latencyNs = static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            Clock::now() - t0)
            .count());
    if (!r.ok())
        return;
    out.transportOk = true;
    out.status = r->status;
    out.bytes = r->symbols;
}

} // namespace

int
main(int argc, char **argv)
{
    std::vector<std::string> extra = {
        "connect", "name",     "engine",   "listen", "sessions",
        "bytes",   "chunk",    "priority", "open-rate", "json",
        "max-sessions", "session-deadline-ms"};
    bench::BenchConfig cfg;
    Cli cli(argc, argv,
            [&] {
                std::vector<std::string> known = {
                    "scale", "input", "sim", "seed", "full", "threads"};
                known.insert(known.end(), extra.begin(), extra.end());
                return known;
            }());
    cfg.zoo.scale = cli.getDouble("scale", 0.05);
    if (cli.getBool("full"))
        cfg.zoo.scale = 1.0;
    cfg.zoo.inputBytes =
        static_cast<size_t>(cli.getInt("input", 1 << 20));
    cfg.zoo.seed = static_cast<uint64_t>(cli.getInt("seed", 42));
    cfg.threads = static_cast<size_t>(cli.getInt("threads", 4));
    if (cfg.threads == 0)
        cfg.threads = 1;

    const std::string connectAddr = cli.get("connect");
    const bool selfHost = connectAddr.empty();
    const std::string name = cli.get("name", "Snort");
    const auto sessions =
        static_cast<size_t>(cli.getInt("sessions", 200));
    const auto bytesPer =
        static_cast<size_t>(cli.getInt("bytes", 64 << 10));
    const auto chunk =
        static_cast<size_t>(cli.getInt("chunk", 4 << 10));
    const auto priority =
        static_cast<uint8_t>(cli.getInt("priority", 100));
    const double openRate = cli.getDouble("open-rate", 0.0);

    // Per-session payloads: realistic input slices when self-hosting,
    // seeded noise otherwise. Built up front so the timed region is
    // pure protocol + matching.
    std::vector<uint8_t> corpus;
    std::string benchLabel;
    std::unique_ptr<serve::Server> server;
    std::unique_ptr<Automaton> automaton;
    std::thread serverThread;
    std::string addr = connectAddr;

    if (selfHost) {
        zoo::Benchmark b = zoo::makeBenchmark(name, cfg.zoo);
        corpus = std::move(b.input);
        benchLabel = b.name;
        automaton = std::make_unique<Automaton>(
            std::move(b.automaton));
        serve::ServerOptions sopts;
        sopts.addr = cli.get("listen", "tcp:0");
        sopts.engine = cli.get("engine", "nfa") == "auto"
            ? serve::ServeEngine::kPlanned
            : serve::ServeEngine::kNfa;
        sopts.limits.maxSessions = static_cast<size_t>(
            cli.getInt("max-sessions", 256));
        sopts.limits.sessionDeadlineMs =
            cli.getInt("session-deadline-ms", 0);
        server = std::make_unique<serve::Server>(*automaton, sopts);
        if (Status st = server->start(); !st.ok())
            fatal(cat("serve_latency: ", st.str()));
        if (sopts.addr.rfind("tcp:", 0) == 0)
            addr = cat("tcp:", server->port());
        else
            addr = sopts.addr;
        serverThread = std::thread([&] { server->run(); });
    } else {
        benchLabel = "external";
        Rng rng(cfg.zoo.seed);
        corpus.resize(std::max<size_t>(bytesPer * 4, 1 << 20));
        for (auto &c : corpus)
            c = static_cast<uint8_t>(rng.next());
    }
    if (corpus.size() < bytesPer)
        corpus.resize(bytesPer, 0);

    std::vector<SessionOutcome> outcomes(sessions);
    std::atomic<size_t> nextSession{0};
    const auto benchStart = Clock::now();

    auto sessionPayload = [&](size_t i) -> const uint8_t * {
        // Rotate the slice start so concurrent sessions exercise
        // different regions (deterministic in i).
        const size_t span = corpus.size() - bytesPer;
        const size_t off =
            span ? (i * 40503 + cfg.zoo.seed) % span : 0;
        return corpus.data() + off;
    };

    std::vector<std::thread> workers;
    workers.reserve(cfg.threads);
    for (size_t w = 0; w < cfg.threads; ++w) {
        workers.emplace_back([&] {
            for (;;) {
                const size_t i = nextSession.fetch_add(1);
                if (i >= sessions)
                    return;
                auto t0 = Clock::now();
                if (openRate > 0) {
                    // Open-loop: session i is *scheduled* at
                    // benchStart + i/rate; latency counts any lag.
                    const auto at = benchStart +
                        std::chrono::nanoseconds(static_cast<int64_t>(
                            1e9 * static_cast<double>(i) / openRate));
                    std::this_thread::sleep_until(at);
                    t0 = at;
                }
                runSession(addr, priority, sessionPayload(i),
                           bytesPer, chunk, outcomes[i]);
                if (openRate > 0) {
                    outcomes[i].latencyNs = static_cast<uint64_t>(
                        std::chrono::duration_cast<
                            std::chrono::nanoseconds>(Clock::now() -
                                                      t0)
                            .count());
                }
            }
        });
    }
    for (auto &t : workers)
        t.join();
    const double secs =
        std::chrono::duration_cast<std::chrono::duration<double>>(
            Clock::now() - benchStart)
            .count();

    if (server) {
        server->requestShutdown();
        serverThread.join();
    }

    uint64_t ok = 0, truncated = 0, rejected = 0, shed = 0,
             failed = 0, totalBytes = 0;
    std::vector<uint64_t> lat;
    lat.reserve(sessions);
    for (const SessionOutcome &o : outcomes) {
        if (!o.transportOk) {
            ++failed;
            continue;
        }
        lat.push_back(o.latencyNs);
        totalBytes += o.bytes;
        switch (o.status) {
          case serve::ReplyStatus::kOk: ++ok; break;
          case serve::ReplyStatus::kTruncated: ++truncated; break;
          case serve::ReplyStatus::kShedOverload:
          case serve::ReplyStatus::kShedDrain: ++shed; break;
          default: ++rejected; break;
        }
    }
    std::sort(lat.begin(), lat.end());
    const uint64_t p50 = percentile(lat, 0.50);
    const uint64_t p99 = percentile(lat, 0.99);
    const uint64_t p999 = percentile(lat, 0.999);
    const double sessionsPerSec =
        secs > 0 ? static_cast<double>(sessions) / secs : 0;
    const double mbPerSec = secs > 0
        ? static_cast<double>(totalBytes) / secs / 1e6
        : 0;

    std::cout << benchLabel << " @ " << addr << ": " << sessions
              << " sessions, " << cfg.threads << " client threads"
              << (openRate > 0
                      ? cat(", open-loop ", openRate, "/s")
                      : std::string(", closed-loop"))
              << "\n";
    std::cout << "  latency p50 " << (p50 / 1000) << " us, p99 "
              << (p99 / 1000) << " us, p99.9 " << (p999 / 1000)
              << " us\n";
    std::cout << "  throughput " << Table::fixed(sessionsPerSec, 1)
              << " sessions/s, " << Table::fixed(mbPerSec, 1)
              << " MB/s matched\n";
    std::cout << "  outcomes: " << ok << " ok, " << truncated
              << " truncated, " << rejected << " rejected, " << shed
              << " shed, " << failed << " failed\n";

    bench::JsonReport report("serve_latency");
    bench::JsonRow row;
    row.benchmark = benchLabel;
    row.engine = cli.get("engine", "nfa");
    row.threads = cfg.threads;
    row.symbolsPerSec =
        secs > 0 ? static_cast<double>(totalBytes) / secs : 0;
    row.extra = {
        {"sessions", static_cast<double>(sessions)},
        {"sessions_per_sec", sessionsPerSec},
        {"p50_ns", static_cast<double>(p50)},
        {"p99_ns", static_cast<double>(p99)},
        {"p999_ns", static_cast<double>(p999)},
        {"ok", static_cast<double>(ok)},
        {"truncated", static_cast<double>(truncated)},
        {"rejected", static_cast<double>(rejected)},
        {"shed", static_cast<double>(shed)},
        {"failed", static_cast<double>(failed)},
        {"open_loop", openRate > 0 ? 1.0 : 0.0},
    };
    report.add(std::move(row));
    report.writeFile(cli.get("json"));

    // Sessions the server never answered are a harness failure in a
    // healthy closed-loop run.
    return failed == 0 ? 0 : 1;
}
