/**
 * @file
 * Shared helpers for the azoo_* command-line tools: sysexits-style
 * exit codes and format-dispatching automaton loading.
 *
 * Exit-code contract (documented in docs/FORMATS.md):
 *   0  success
 *   64 usage error (bad flags; EX_USAGE)
 *   65 bad input data (malformed automaton file; EX_DATAERR)
 *   70 internal error (library bug / escaped exception; EX_SOFTWARE)
 * so CI and sweep scripts can distinguish "you typo'd the flag" from
 * "this corpus file is corrupt" from "the tool itself is broken".
 */

#ifndef AZOO_TOOLS_TOOL_COMMON_HH
#define AZOO_TOOLS_TOOL_COMMON_HH

#include <cstdlib>
#include <iostream>
#include <string>
#include <utility>

#include "core/anml.hh"
#include "core/automaton.hh"
#include "core/mnrl.hh"
#include "core/serialize.hh"
#include "util/status.hh"

namespace azoo::tool {

inline constexpr int kExitOk = 0;
inline constexpr int kExitUsage = 64;    ///< EX_USAGE
inline constexpr int kExitBadData = 65;  ///< EX_DATAERR
inline constexpr int kExitInternal = 70; ///< EX_SOFTWARE

/** Print a usage error and exit 64. */
[[noreturn]] inline void
usageError(const std::string &msg)
{
    std::cerr << "fatal: " << msg << "\n";
    std::exit(kExitUsage);
}

/** Exit code for a non-OK Status: internal bugs are 70, everything
 *  the input's fault (parse errors, limits, io) is 65. */
inline int
exitCodeFor(const Status &st)
{
    return st.code() == ErrorCode::kInternal ? kExitInternal
                                             : kExitBadData;
}

/** Load an automaton in any supported format (by extension). */
inline Expected<Automaton>
loadAnyAutomaton(const std::string &path,
                 const ParseLimits &limits = ParseLimits())
{
    if (path.size() >= 5 && path.rfind(".mnrl") == path.size() - 5)
        return loadMnrl(path, limits);
    if (path.size() >= 5 && path.rfind(".anml") == path.size() - 5)
        return loadAnml(path, limits);
    return loadAzml(path, limits);
}

/**
 * Flags that select or parameterize azoo_run's *parse* path and are
 * therefore meaningless together with --load (the artifact is already
 * compiled; parse limits were applied by azoo_compile). Kept as data
 * so the usage-error test can enumerate them.
 */
inline const char *const kLoadConflictFlags[] = {"automaton",
                                                 "max-states",
                                                 "max-edges", "save"};

/** Non-empty usage message when @p present (flag names, no "--")
 *  contains a parse-path flag that conflicts with --load. */
inline std::string
loadFlagConflict(const std::vector<std::string> &present)
{
    for (const std::string &f : present) {
        for (const char *c : kLoadConflictFlags) {
            if (f == c) {
                return "azoo_run: --" + f +
                       " conflicts with --load (the artifact is "
                       "already compiled; re-run azoo_compile to "
                       "change it)";
            }
        }
    }
    return "";
}

/** Load, or print the structured error ("path: parse-error at 3:14:
 *  ...") and exit with the bad-data / internal code. */
inline Automaton
loadAnyOrExit(const std::string &path,
              const ParseLimits &limits = ParseLimits())
{
    Expected<Automaton> a = loadAnyAutomaton(path, limits);
    if (!a.ok()) {
        std::cerr << path << ": " << a.status().str() << "\n";
        std::exit(exitCodeFor(a.status()));
    }
    return std::move(*std::move(a));
}

} // namespace azoo::tool

#endif // AZOO_TOOLS_TOOL_COMMON_HH
