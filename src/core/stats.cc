#include "core/stats.hh"

#include <cmath>

namespace azoo {

GraphStats
computeStats(const Automaton &a)
{
    GraphStats s;
    s.states = a.countKind(ElementKind::kSte);
    s.counters = a.countKind(ElementKind::kCounter);
    s.edges = a.edgeCount();
    const uint64_t total = s.states + s.counters;
    s.edgesPerNode = total ? static_cast<double>(s.edges) / total : 0.0;

    for (const auto &e : a.elements()) {
        s.reporting += e.reporting;
        s.startStates += e.start != StartType::kNone;
    }

    uint32_t comp_count = 0;
    auto labels = a.connectedComponents(comp_count);
    s.subgraphs = comp_count;
    if (comp_count > 0) {
        std::vector<uint64_t> sizes(comp_count, 0);
        for (auto l : labels)
            ++sizes[l];
        double mean = static_cast<double>(total) / comp_count;
        double var = 0;
        for (auto sz : sizes) {
            double d = static_cast<double>(sz) - mean;
            var += d * d;
        }
        var /= comp_count;
        s.avgSubgraph = mean;
        s.stdSubgraph = std::sqrt(var);
    }
    return s;
}

} // namespace azoo
