/**
 * @file
 * Mesh automata: Hamming and Levenshtein string-scoring filters
 * (Section X) plus the profile-driven benchmark generation they feed.
 *
 * Both filters take an encoded pattern of length l and a scoring
 * distance d. The Hamming mesh positionally tracks the running
 * mismatch count; the Levenshtein construction is the classic (j, e)
 * edit-distance NFA with deletion epsilon-closure folded into the
 * homogeneous edge set (which is why its edge/node ratio climbs
 * steeply with d, as in Table I).
 */

#ifndef AZOO_ZOO_MESH_HH
#define AZOO_ZOO_MESH_HH

#include <string>

#include "zoo/benchmark.hh"

namespace azoo {
namespace zoo {

/** Append one Hamming filter (pattern, distance d) reporting with
 *  @p code. Streaming: matches may end at any offset.
 *  @return states appended. */
size_t appendHammingFilter(Automaton &a, const std::string &pattern,
                           int d, uint32_t code);

/** Append one Levenshtein filter (pattern, distance d). */
size_t appendLevenshteinFilter(Automaton &a, const std::string &pattern,
                               int d, uint32_t code);

/** Mesh kernel selector. */
enum class MeshKind { kHamming, kLevenshtein };

/**
 * Build a mesh benchmark: N = scaled(1000) filters of random DNA
 * patterns with the given (l, d), driven by random DNA with a few
 * planted near-matches.
 */
Benchmark makeMeshBenchmark(const ZooConfig &cfg, MeshKind kind, int l,
                            int d);

/** The paper's Table V parameter choices, reproduced by the
 *  profile bench. */
struct MeshVariant {
    MeshKind kind;
    int d;
    int paperL;
};

/** The six mesh benchmark variants of Table V. */
const std::vector<MeshVariant> &meshVariants();

} // namespace zoo
} // namespace azoo

#endif // AZOO_ZOO_MESH_HH
