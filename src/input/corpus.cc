#include "input/corpus.hh"

namespace azoo {
namespace input {

namespace {

const char *kOnsets[] = {"b", "br", "c", "ch", "d", "f", "g", "gr",
                         "h", "j", "k", "l", "m", "n", "p", "pr",
                         "r", "s", "st", "t", "th", "v", "w", "sh"};
const char *kNuclei[] = {"a", "e", "i", "o", "u", "ai", "ea", "ou"};
const char *kCodas[] = {"", "n", "r", "s", "t", "l", "nd", "st",
                        "ck", "m"};

std::string
makeWord(Rng &rng)
{
    const int syllables = 1 + static_cast<int>(rng.nextBelow(3));
    std::string w;
    for (int s = 0; s < syllables; ++s) {
        w += kOnsets[rng.nextBelow(std::size(kOnsets))];
        w += kNuclei[rng.nextBelow(std::size(kNuclei))];
        w += kCodas[rng.nextBelow(std::size(kCodas))];
    }
    return w;
}

} // namespace

std::vector<std::string>
makeVocabulary(size_t words, uint64_t seed)
{
    Rng rng(seed ^ 0x770c4bULL);
    std::vector<std::string> vocab;
    vocab.reserve(words);
    while (vocab.size() < words)
        vocab.push_back(makeWord(rng));
    return vocab;
}

std::vector<uint8_t>
englishLikeText(size_t n, uint64_t seed)
{
    Rng rng(seed);
    auto vocab = makeVocabulary(2000, seed);
    std::vector<uint8_t> out;
    out.reserve(n + 16);
    int words_in_sentence = 0;
    while (out.size() < n) {
        // Zipf-ish: favor low-index words.
        const size_t r = rng.nextBelow(vocab.size());
        const size_t idx = (r * r) / vocab.size();
        for (char c : vocab[idx])
            out.push_back(static_cast<uint8_t>(c));
        ++words_in_sentence;
        if (words_in_sentence > 6 && rng.nextBool(0.2)) {
            out.push_back('.');
            out.push_back(rng.nextBool(0.1) ? '\n' : ' ');
            words_in_sentence = 0;
        } else {
            out.push_back(' ');
        }
    }
    out.resize(n);
    return out;
}

std::vector<uint8_t>
taggedStream(size_t n, uint64_t seed, int num_tags,
             const std::vector<std::string> &vocab)
{
    Rng rng(seed);
    // Each word gets a primary tag and a less likely secondary tag
    // (lexical ambiguity), assigned deterministically per word index.
    std::vector<std::pair<int, int>> word_tags(vocab.size());
    for (size_t i = 0; i < vocab.size(); ++i) {
        const int primary = static_cast<int>(rng.nextBelow(num_tags));
        int secondary = static_cast<int>(rng.nextBelow(num_tags));
        word_tags[i] = {primary, secondary};
    }

    std::vector<uint8_t> out;
    out.reserve(n + 16);
    while (out.size() < n) {
        const size_t r = rng.nextBelow(vocab.size());
        const size_t idx = (r * r) / vocab.size();
        for (char c : vocab[idx])
            out.push_back(static_cast<uint8_t>(c));
        const auto &[primary, secondary] = word_tags[idx];
        const int tag = rng.nextBool(0.85) ? primary : secondary;
        out.push_back(tagByte(tag));
        out.push_back(' ');
    }
    out.resize(n);
    return out;
}

} // namespace input
} // namespace azoo
