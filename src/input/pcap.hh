/**
 * @file
 * Synthetic packet-capture stream: the PCAP-file stand-in driving the
 * Snort benchmark. The stream is a concatenation of packets, each a
 * small binary header followed by a payload drawn from a mix of
 * HTTP-like text, generic text, and binary data, with a configurable
 * rate of planted attack payloads that trigger Snort rules.
 */

#ifndef AZOO_INPUT_PCAP_HH
#define AZOO_INPUT_PCAP_HH

#include <cstdint>
#include <string>
#include <vector>

namespace azoo {
namespace input {

/** Packet-stream knobs. */
struct PcapConfig {
    size_t bytes = 1 << 20;
    uint64_t seed = 11;
    /** Strings to plant occasionally (attack payload fragments). */
    std::vector<std::string> planted;
    /** Average interval in bytes between planted fragments. */
    size_t plantInterval = 64 * 1024;
};

/** Generate the packet byte stream. */
std::vector<uint8_t> packetStream(const PcapConfig &cfg);

} // namespace input
} // namespace azoo

#endif // AZOO_INPUT_PCAP_HH
