#include "zoo/clamav.hh"

#include "input/diskimage.hh"
#include "regex/glushkov.hh"
#include "regex/parser.hh"
#include "util/logging.hh"
#include "util/rng.hh"
#include "util/strings.hh"

namespace azoo {
namespace zoo {

namespace {

/** Append a hex byte pair for value v. */
void
pushHex(std::string &hex, uint8_t v)
{
    hex += hexByte(v);
}

} // namespace

std::vector<ClamSignature>
makeClamSignatures(const ZooConfig &cfg)
{
    const size_t n = cfg.scaled(33171);
    Rng rng(cfg.seed ^ 0xc1a3ULL);

    std::vector<ClamSignature> sigs;
    sigs.reserve(n);
    for (size_t i = 0; i < n; ++i) {
        ClamSignature s;
        // Signature bodies are long and almost linear: 40..110 bytes
        // of mostly fixed values with occasional wildcards and rare
        // bounded jumps (matching Table I: edges/node 1.00, average
        // subgraph ~72).
        const int len = 40 + static_cast<int>(rng.nextBelow(71));
        for (int b = 0; b < len; ++b) {
            const double k = rng.nextDouble();
            if (k < 0.04 && b > 4 && b + 4 < len) {
                s.hex += "??";
                s.instance.push_back(
                    static_cast<char>(rng.nextByte()));
            } else if (k < 0.05 && b > 8 && b + 8 < len) {
                const int jlo = 1 + static_cast<int>(rng.nextBelow(3));
                const int jhi = jlo +
                    static_cast<int>(rng.nextBelow(4));
                s.hex += cat("{", jlo, "-", jhi, "}");
                for (int j = 0; j < jlo; ++j) {
                    s.instance.push_back(
                        static_cast<char>(rng.nextByte()));
                }
            } else {
                const uint8_t v = rng.nextByte();
                pushHex(s.hex, v);
                s.instance.push_back(static_cast<char>(v));
            }
        }
        sigs.push_back(std::move(s));
    }
    return sigs;
}

std::string
clamHexToRegex(const std::string &hex)
{
    std::string out;
    size_t i = 0;
    while (i < hex.size()) {
        if (hex[i] == '{') {
            const size_t close = hex.find('}', i);
            if (close == std::string::npos)
                fatal(cat("clam signature: unterminated jump in ",
                          hex));
            std::string body = hex.substr(i + 1, close - i - 1);
            const size_t dash = body.find('-');
            if (dash == std::string::npos) {
                out += cat(".{", body, "}");
            } else {
                out += cat(".{", body.substr(0, dash), ",",
                           body.substr(dash + 1), "}");
            }
            i = close + 1;
        } else if (hex[i] == '?' && i + 1 < hex.size() &&
                   hex[i + 1] == '?') {
            out += ".";
            i += 2;
        } else {
            const int hi = hexValue(hex[i]);
            const int lo = i + 1 < hex.size() ? hexValue(hex[i + 1])
                                              : -1;
            if (hi < 0 || lo < 0)
                fatal(cat("clam signature: bad hex at ", i, " in ",
                          hex));
            out += "\\x" + hex.substr(i, 2);
            i += 2;
        }
    }
    return out;
}

Benchmark
makeClamAvBenchmark(const ZooConfig &cfg)
{
    Benchmark b;
    b.name = "ClamAV";
    b.domain = "Virus Detection";
    b.inputDesc = "Disk image";
    b.paperStates = 2374717;
    b.paperActiveSet = 356.532;
    b.paperSizeVsAnmlzoo = 53;

    auto sigs = makeClamSignatures(cfg);
    Automaton a("ClamAV");
    size_t rejected = 0;
    for (size_t i = 0; i < sigs.size(); ++i) {
        Regex rx;
        std::string err;
        // Hex signatures are binary: '.' must match every byte value.
        RegexFlags flags;
        flags.dotall = true;
        if (!tryParseRegex(clamHexToRegex(sigs[i].hex), flags, rx,
                           err)) {
            ++rejected;
            continue;
        }
        appendRegex(a, rx, static_cast<uint32_t>(i));
    }

    input::DiskImageConfig dc;
    dc.bytes = cfg.inputBytes;
    dc.seed = cfg.seed ^ 0xd15cULL;
    // "two embedded virus fragments ... that trigger ClamAV rules"
    dc.viruses.push_back(sigs[sigs.size() / 3].instance);
    dc.viruses.push_back(sigs[(2 * sigs.size()) / 3].instance);
    b.input = input::diskImage(dc);

    b.automaton = std::move(a);
    b.meta["signatures"] = std::to_string(sigs.size());
    b.meta["rejected"] = std::to_string(rejected);
    return b;
}

} // namespace zoo
} // namespace azoo
