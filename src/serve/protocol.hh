/**
 * @file
 * The azoo_serve wire protocol: length-prefixed frames over a stream
 * socket, one match session per connection.
 *
 * A client opens a connection, announces itself, streams input bytes,
 * and reads exactly one REPLY:
 *
 *   client -> server   OPEN(priority)       once, first
 *                      DATA(bytes)          any number of times
 *                      FIN                  once, ends the stream
 *   server -> client   ADMIT                after OPEN, if admitted
 *                      REPLY(status, ...)   exactly once, then close
 *
 * Every frame is `u32le payloadLen | u8 type | payload`. payloadLen
 * counts the payload only and is bounded by kMaxFramePayload — an
 * oversized or malformed frame is a protocol error, answered with
 * REPLY(kProtocolError) and a close, never a crash (the frame decoder
 * is fuzzed; see fuzz/fuzz_frame.cc).
 *
 * The REPLY payload carries the session's outcome: a ReplyStatus, the
 * ErrorCode behind a truncation (the RunGuard's stop reason), how
 * many input symbols were actually consumed, the total report count,
 * and up to the server's record cap of (offset, element, code) report
 * records in canonical order. The contract the chaos tests enforce:
 * a REPLY with status kOk is bit-identical to a serial engine run
 * over the same stream; any other status is explicit about what the
 * client got instead. A session that dies without a REPLY (connection
 * drop) promised nothing.
 *
 * docs/FORMATS.md ("azoo_serve") documents the byte layout
 * normatively; this header and that section change together.
 */

#ifndef AZOO_SERVE_PROTOCOL_HH
#define AZOO_SERVE_PROTOCOL_HH

#include <cstddef>
#include <cstdint>
#include <vector>

#include "engine/report.hh"
#include "util/status.hh"

namespace azoo {
namespace serve {

/** Frame header: u32le payload length + u8 type. */
inline constexpr size_t kFrameHeaderSize = 5;

/** Largest accepted payload (bounds per-connection buffering). */
inline constexpr size_t kMaxFramePayload = 1u << 20;

/** Frame types. Client-to-server types have the high bit clear. */
enum class FrameType : uint8_t {
    kOpen = 0x01,  ///< payload: u8 priority, u32le flags (must be 0)
    kData = 0x02,  ///< payload: raw stream bytes
    kFin = 0x03,   ///< payload: empty
    kAdmit = 0x81, ///< payload: empty
    kReply = 0x82, ///< payload: Reply encoding
};

/** Session outcome carried in a REPLY frame. */
enum class ReplyStatus : uint8_t {
    kOk = 0,             ///< complete result over the whole stream
    kTruncated = 1,      ///< per-session guard stopped the run
    kShedOverload = 2,   ///< shed to admit higher-priority work
    kShedDrain = 3,      ///< server drained before the stream ended
    kRejectedBusy = 4,   ///< admission: session table full
    kRejectedMemory = 5, ///< admission: memory budget exhausted
    kRejectedDrain = 6,  ///< admission: server is draining
    kProtocolError = 7,  ///< malformed frame sequence from the client
    kServerError = 8,    ///< internal failure; result discarded
};

/** Stable name ("ok", "truncated", "shed-overload", ...). */
const char *replyStatusName(ReplyStatus s);

/** True for the statuses that carry a (possibly empty) exact result
 *  over a consumed prefix: kOk, kTruncated, kShedOverload,
 *  kShedDrain. */
bool replyCarriesResult(ReplyStatus s);

/** Decoded REPLY payload. */
struct Reply {
    ReplyStatus status = ReplyStatus::kServerError;
    /** Stop reason behind kTruncated / shed statuses (kOk otherwise):
     *  kDeadlineExceeded, kLimitExceeded, or kCancelled. */
    ErrorCode detail = ErrorCode::kOk;
    uint64_t symbols = 0;     ///< input symbols the result covers
    uint64_t reportCount = 0; ///< total reports (recorded or not)
    /** Recorded reports, canonical (offset, element, code) order,
     *  capped at the server's --max-report-records. */
    std::vector<Report> reports;

    /** Append the payload encoding (no frame header) to @p out. */
    void encodeTo(std::vector<uint8_t> &out) const;

    /** Parse a REPLY payload; kParseError on malformed bytes. */
    static Expected<Reply> decode(const uint8_t *payload, size_t len);
};

/** Append a full frame (header + payload) to @p out. */
void appendFrame(std::vector<uint8_t> &out, FrameType type,
                 const uint8_t *payload, size_t len);

/** One decoded frame, viewing into the receive buffer. */
struct Frame {
    FrameType type = FrameType::kOpen;
    const uint8_t *payload = nullptr;
    size_t len = 0;
};

/**
 * Incremental frame decoder over a raw byte stream. append() socket
 * bytes, then next() until it returns false. Decoding never copies
 * payload bytes (frames view into the internal buffer and stay valid
 * until the next append()/compact()).
 */
class FrameReader
{
  public:
    /** Add raw bytes from the socket. */
    void append(const uint8_t *data, size_t len);

    /**
     * Decode the next complete frame into @p out. Returns false when
     * no complete frame is buffered. A malformed header (oversized
     * length, unknown type) sets a sticky kParseError on error() and
     * makes every later next() return false — the connection is dead
     * to protocol, the caller replies kProtocolError and closes.
     */
    bool next(Frame &out);

    const Status &error() const { return error_; }

    /** Bytes buffered but not yet consumed by next(). */
    size_t buffered() const { return buf_.size() - pos_; }

    /** Drop consumed bytes (called between poll rounds to keep the
     *  buffer from growing with the stream). */
    void compact();

  private:
    std::vector<uint8_t> buf_;
    size_t pos_ = 0;
    Status error_;
};

} // namespace serve
} // namespace azoo

#endif // AZOO_SERVE_PROTOCOL_HH
