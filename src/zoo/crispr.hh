/**
 * @file
 * CRISPR/Cas9 off-target-site search benchmarks (Bo et al.).
 *
 * Each filter searches a DNA stream for near-matches of one 20-bp
 * guide RNA followed by the NGG protospacer-adjacent motif (PAM).
 * Following Bo's two comparison targets, we build two filter styles:
 *
 *  - CasOFFinder-style ("OFF"): substitution-only tolerance (a
 *    compact <=1-substitution chain), the GPU tool's model;
 *  - CasOT-style ("OT"): a Levenshtein mesh tolerating substitutions
 *    AND indels (edit distance <= 2), the CPU tool's model, which is
 *    why its automata are larger and denser (Table I: 101 vs 37
 *    states per filter, 1.66 vs 1.27 edges/node).
 *
 * Both benchmarks use 2,000 guides at full scale, "the largest
 * evaluated in Bo's work".
 */

#ifndef AZOO_ZOO_CRISPR_HH
#define AZOO_ZOO_CRISPR_HH

#include <string>

#include "zoo/benchmark.hh"

namespace azoo {
namespace zoo {

/** Which tool's filter model to build. */
enum class CrisprKind { kCasOffinder, kCasOt };

/** Append one guide filter (guide + NGG PAM). */
size_t appendCrisprFilter(Automaton &a, const std::string &guide,
                          CrisprKind kind, uint32_t code);

/** Build the OFF or OT benchmark with scaled(2000) guides. */
Benchmark makeCrisprBenchmark(const ZooConfig &cfg, CrisprKind kind);

} // namespace zoo
} // namespace azoo

#endif // AZOO_ZOO_CRISPR_HH
