#include "engine/multidfa_engine.hh"

#include <algorithm>
#include <bit>
#include <map>
#include <unordered_map>

#include "analysis/profile.hh"
#include "obs/obs.hh"
#include "util/logging.hh"

namespace azoo {

MultiDfaEngine::MultiDfaEngine(const Automaton &a,
                               const MultiDfaOptions &opts)
    : a_(a), opts_(opts)
{
    uint32_t comp_count = 0;
    auto labels = a.connectedComponents(comp_count);

    std::vector<std::vector<ElementId>> members(comp_count);
    for (ElementId i = 0; i < a.size(); ++i)
        members[labels[i]].push_back(i);

    // Profiles are indexed by the same component ids (inferProfiles()
    // enumerates connectedComponents() labels in order); ignore a
    // vector that doesn't line up rather than trust stale facts.
    const std::vector<analysis::ComponentProfile> *profiles =
        opts_.profiles && opts_.profiles->size() == comp_count
            ? opts_.profiles
            : nullptr;
    const uint32_t budgetLog2 = static_cast<uint32_t>(
        std::bit_width(uint64_t(opts_.maxDfaStatesPerComponent)));
    uint64_t profileSkips = 0;

    std::vector<const std::vector<ElementId> *> fallback_comps;
    for (uint32_t c = 0; c < comp_count; ++c) {
        bool has_counter = false;
        for (auto id : members[c]) {
            if (a.element(id).kind == ElementKind::kCounter) {
                has_counter = true;
                break;
            }
        }
        // When the blowup estimate already dwarfs the state budget,
        // skip the eager subset construction that would grind to the
        // budget and bail anyway. The margin of one log2 step keeps
        // borderline estimates (the heuristic is not a bound) on the
        // exact try-it path.
        const bool predicted_blowup = profiles && !has_counter &&
            (*profiles)[c].blowupLog2 > budgetLog2 + 1;
        if (predicted_blowup)
            ++profileSkips;
        Dfa dfa;
        if (!has_counter && !predicted_blowup &&
            buildDfa(members[c], dfa)) {
            dfas_.push_back(std::move(dfa));
        } else {
            fallback_comps.push_back(&members[c]);
        }
    }
    if (obs::kEnabled && profileSkips) {
        obs::Registry::global()
            .counter("engine.multidfa.profile_skips")
            .add(profileSkips);
    }

    fallbackComponentCount_ = fallback_comps.size();
    if (!fallback_comps.empty()) {
        fallback_ = std::make_unique<Automaton>(a.name() + ".fallback");
        std::unordered_map<ElementId, ElementId> to_local;
        for (const auto *comp : fallback_comps) {
            for (auto id : *comp) {
                const Element &e = a.element(id);
                ElementId local;
                if (e.kind == ElementKind::kSte) {
                    local = fallback_->addSte(e.symbols, e.start,
                                              e.reporting, e.reportCode);
                } else {
                    local = fallback_->addCounter(e.target, e.mode,
                                                  e.reporting,
                                                  e.reportCode);
                }
                to_local[id] = local;
                fallbackToGlobal_.push_back(id);
            }
        }
        for (const auto *comp : fallback_comps) {
            for (auto id : *comp) {
                for (auto t : a.element(id).out)
                    fallback_->addEdge(to_local[id], to_local[t]);
                for (auto t : a.element(id).resetOut)
                    fallback_->addResetEdge(to_local[id], to_local[t]);
            }
        }
        LazyDfaOptions lazy_opts;
        lazy_opts.cacheBytes = opts_.lazyCacheBytes;
        fallbackEngine_ =
            std::make_unique<LazyDfaEngine>(*fallback_, lazy_opts);
    }
}

bool
MultiDfaEngine::buildDfa(const std::vector<ElementId> &members,
                         Dfa &dfa) const
{
    const auto m = static_cast<uint32_t>(members.size());

    // Local remap.
    std::unordered_map<ElementId, uint32_t> to_local;
    to_local.reserve(m);
    for (uint32_t i = 0; i < m; ++i)
        to_local[members[i]] = i;

    // Local views.
    std::vector<const CharSet *> sym(m);
    std::vector<std::vector<uint32_t>> out(m);
    std::vector<uint8_t> reporting(m);
    std::vector<uint32_t> always_local; // all-input states
    std::vector<uint32_t> start0;       // enabled at cycle 0
    for (uint32_t i = 0; i < m; ++i) {
        const Element &e = a_.element(members[i]);
        sym[i] = &e.symbols;
        reporting[i] = e.reporting;
        out[i].reserve(e.out.size());
        for (auto t : e.out)
            out[i].push_back(to_local.at(t));
        if (e.start == StartType::kAllInput) {
            always_local.push_back(i);
            start0.push_back(i);
        } else if (e.start == StartType::kStartOfData) {
            start0.push_back(i);
        }
    }

    // Symbol equivalence classes: two bytes are equivalent iff every
    // state charset in the component agrees on them. Signature is a
    // bit per *distinct* charset.
    std::vector<const CharSet *> distinct;
    {
        std::unordered_map<uint64_t, std::vector<const CharSet *>> seen;
        for (uint32_t i = 0; i < m; ++i) {
            auto &bucket = seen[sym[i]->hash()];
            bool dup = false;
            for (auto *cs : bucket) {
                if (*cs == *sym[i]) {
                    dup = true;
                    break;
                }
            }
            if (!dup) {
                bucket.push_back(sym[i]);
                distinct.push_back(sym[i]);
            }
        }
    }
    {
        std::map<std::vector<uint8_t>, uint8_t> sig_to_class;
        std::vector<uint8_t> sig(distinct.size());
        for (int b = 0; b < 256; ++b) {
            for (size_t d = 0; d < distinct.size(); ++d)
                sig[d] = distinct[d]->test(static_cast<uint8_t>(b));
            auto it = sig_to_class.find(sig);
            if (it == sig_to_class.end()) {
                if (sig_to_class.size() >= 256)
                    return false; // cannot index classes in a byte
                it = sig_to_class.emplace(
                    sig,
                    static_cast<uint8_t>(sig_to_class.size())).first;
            }
            dfa.classOf[b] = it->second;
        }
        dfa.numClasses = static_cast<uint32_t>(sig_to_class.size());
    }

    // One representative byte per class (classes partition [0,256)).
    std::vector<uint8_t> rep(dfa.numClasses, 0);
    for (int b = 255; b >= 0; --b)
        rep[dfa.classOf[b]] = static_cast<uint8_t>(b);

    // Subset construction. DFA states are sorted local-id sets.
    std::map<std::vector<uint32_t>, uint32_t> state_ids;
    std::vector<std::vector<uint32_t>> state_sets;

    auto intern = [&](std::vector<uint32_t> set) -> uint32_t {
        auto it = state_ids.find(set);
        if (it != state_ids.end())
            return it->second;
        auto id = static_cast<uint32_t>(state_sets.size());
        state_ids.emplace(set, id);
        state_sets.push_back(std::move(set));
        return id;
    };

    std::vector<uint32_t> e0 = start0;
    std::sort(e0.begin(), e0.end());
    e0.erase(std::unique(e0.begin(), e0.end()), e0.end());
    dfa.start = intern(std::move(e0));

    // Report pool; index 0 is the empty list.
    dfa.pool.emplace_back();
    std::map<std::vector<std::pair<ElementId, uint32_t>>, uint32_t>
        pool_ids;

    std::vector<uint8_t> in_next(m, 0);

    for (uint32_t si = 0; si < state_sets.size(); ++si) {
        if (state_sets.size() > opts_.maxDfaStatesPerComponent)
            return false;
        // Row storage is appended lazily because state_sets grows.
        dfa.next.resize((si + 1) * dfa.numClasses);
        dfa.reportIdx.resize((si + 1) * dfa.numClasses, 0);

        // Copy: interning may invalidate references into state_sets.
        const std::vector<uint32_t> cur = state_sets[si];
        for (uint32_t cls = 0; cls < dfa.numClasses; ++cls) {
            const uint8_t s = rep[cls];
            std::vector<uint32_t> succ;
            std::vector<std::pair<ElementId, uint32_t>> reps;
            for (auto ls : cur) {
                if (!sym[ls]->test(s))
                    continue;
                if (reporting[ls]) {
                    reps.emplace_back(members[ls],
                                      a_.element(members[ls]).reportCode);
                }
                for (auto t : out[ls]) {
                    if (!in_next[t]) {
                        in_next[t] = 1;
                        succ.push_back(t);
                    }
                }
            }
            for (auto al : always_local) {
                if (!in_next[al]) {
                    in_next[al] = 1;
                    succ.push_back(al);
                }
            }
            for (auto t : succ)
                in_next[t] = 0;
            std::sort(succ.begin(), succ.end());

            uint32_t tgt = intern(std::move(succ));
            dfa.next[si * dfa.numClasses + cls] = tgt;

            if (!reps.empty()) {
                std::sort(reps.begin(), reps.end());
                auto it = pool_ids.find(reps);
                if (it == pool_ids.end()) {
                    auto idx = static_cast<uint32_t>(dfa.pool.size());
                    std::vector<CellReport> list;
                    list.reserve(reps.size());
                    for (auto &[el, code] : reps)
                        list.push_back({el, code});
                    dfa.pool.push_back(std::move(list));
                    it = pool_ids.emplace(std::move(reps), idx).first;
                }
                dfa.reportIdx[si * dfa.numClasses + cls] = it->second;
            }
        }
    }

    dfa.numStates = static_cast<uint32_t>(state_sets.size());
    return true;
}

uint64_t
MultiDfaEngine::totalDfaStates() const
{
    uint64_t n = 0;
    for (const auto &d : dfas_)
        n += d.numStates;
    return n;
}

SimResult
MultiDfaEngine::simulate(const uint8_t *input, size_t len,
                         const SimOptions &opts) const
{
    SimResult res;
    res.symbols = len;

    auto emit = [&](uint64_t t, ElementId el, uint32_t code) {
        ++res.reportCount;
        if (opts.recordReports &&
            res.reports.size() < opts.reportRecordLimit) {
            res.reports.push_back({t, el, code});
        }
        if (opts.countByCode)
            ++res.byCode[code];
    };

    std::vector<uint32_t> state(dfas_.size());
    for (size_t d = 0; d < dfas_.size(); ++d)
        state[d] = dfas_[d].start;

    for (uint64_t t = 0; t < len; ++t) {
        const uint8_t s = input[t];
        for (size_t d = 0; d < dfas_.size(); ++d) {
            const Dfa &dfa = dfas_[d];
            const uint32_t cell =
                state[d] * dfa.numClasses + dfa.classOf[s];
            const uint32_t ridx = dfa.reportIdx[cell];
            if (ridx) {
                for (const auto &r : dfa.pool[ridx])
                    emit(t, r.element, r.code);
            }
            state[d] = dfa.next[cell];
        }
    }

    if (fallbackEngine_) {
        SimResult fres = fallbackEngine_->simulate(input, len, opts);
        res.reportCount += fres.reportCount;
        res.totalEnabled += fres.totalEnabled;
        res.lazyFlushes = fres.lazyFlushes;
        res.lazyStates = fres.lazyStates;
        res.lazyFallbackComponents = fres.lazyFallbackComponents;
        for (auto &r : fres.reports) {
            if (opts.recordReports &&
                res.reports.size() < opts.reportRecordLimit) {
                res.reports.push_back(
                    {r.offset, fallbackToGlobal_[r.element], r.code});
            }
        }
        for (auto &[code, cnt] : fres.byCode)
            res.byCode[code] += cnt;
    }
    return res;
}

} // namespace azoo
