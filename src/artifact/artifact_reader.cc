/**
 * @file
 * `.azoox` loader: header/section validation, the zero-copy EXEC
 * image checks, and materialize(). Layout authority is
 * docs/ARTIFACT_FORMAT.md.
 *
 * Threat model: the file is untrusted. Every read is bounds-checked
 * before it happens, every failure is a structured Status carrying
 * the absolute file offset, and validation of the EXEC image is
 * O(elements + edges) with zero per-state allocation — the spans are
 * aimed straight into the mapped file. What load-time validation
 * deliberately does NOT do is cross-check the EXEC image against the
 * graph sections (that would cost a full materialize); a consumer
 * that needs that guarantee runs `azoo_compile --verify` once at
 * build time, which is the trust boundary the format is designed for.
 */

#include "artifact/artifact.hh"

#include <bit>
#include <cstring>

#include "obs/obs.hh"
#include "util/io.hh"
#include "util/logging.hh"
#include "util/strings.hh"

namespace azoo {
namespace artifact {

namespace {

uint16_t
rdU16(const uint8_t *p)
{
    return static_cast<uint16_t>(p[0] | (p[1] << 8));
}

uint32_t
rdU32(const uint8_t *p)
{
    return static_cast<uint32_t>(p[0]) |
           (static_cast<uint32_t>(p[1]) << 8) |
           (static_cast<uint32_t>(p[2]) << 16) |
           (static_cast<uint32_t>(p[3]) << 24);
}

uint64_t
rdU64(const uint8_t *p)
{
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
        v |= static_cast<uint64_t>(p[i]) << (8 * i);
    return v;
}

[[noreturn]] void
fail(uint64_t offset, std::string msg)
{
    SourceLoc loc;
    loc.offset = offset;
    throw StatusError(
        Status(ErrorCode::kParseError, std::move(msg), loc));
}

/** Bounds-checked sequential reader over one section's bytes;
 *  errors report absolute file offsets. */
struct Cursor {
    const uint8_t *p;
    uint64_t len;
    uint64_t fileOff; ///< absolute offset of p[0]
    uint64_t at = 0;

    uint64_t abs() const { return fileOff + at; }

    void
    need(uint64_t n) const
    {
        if (n > len - at)
            fail(abs(), cat("truncated section: need ", n,
                            " more bytes, have ", len - at));
    }

    uint8_t
    u8()
    {
        need(1);
        return p[at++];
    }

    uint32_t
    u32()
    {
        need(4);
        const uint32_t v = rdU32(p + at);
        at += 4;
        return v;
    }

    /** LEB128; at most 10 bytes. */
    uint64_t
    varint()
    {
        uint64_t v = 0;
        for (int shift = 0; shift < 64; shift += 7) {
            const uint8_t b = u8();
            v |= static_cast<uint64_t>(b & 0x7F) << shift;
            if ((b & 0x80) == 0)
                return v;
        }
        fail(abs(), "varint longer than 10 bytes");
    }

    uint32_t
    id(uint8_t width)
    {
        need(width);
        uint32_t v = 0;
        for (uint8_t i = 0; i < width; ++i)
            v |= static_cast<uint32_t>(p[at + i]) << (8 * i);
        at += width;
        return v;
    }

    bool done() const { return at == len; }
};

// Edge-list control bytes (docs/ARTIFACT_FORMAT.md §6).
constexpr uint8_t kListEmpty = 0x00;
constexpr uint8_t kListChain = 0x01;
constexpr uint8_t kListSparse = 0x02;
constexpr uint8_t kListDense = 0x03;

void
noteLoadError(ErrorCode code)
{
    if (!obs::kEnabled)
        return;
    obs::Registry::global()
        .counter(cat("artifact.load.errors.", errorCodeName(code)))
        .inc();
}

/**
 * Decode one encoded successor list, invoking @p emit(target) in
 * stored order. @p self is the element the list belongs to (for
 * CHAIN); every target is checked against @p n.
 */
template <typename Emit>
void
decodeList(Cursor &c, ElementId self, uint64_t n, uint8_t idWidth,
           Emit &&emit)
{
    const uint64_t listOff = c.abs();
    const uint8_t ctl = c.u8();
    switch (ctl) {
      case kListEmpty:
        return;
      case kListChain: {
        const uint64_t t = uint64_t(self) + 1;
        if (t >= n)
            fail(listOff, cat("CHAIN successor ", t,
                              " out of range (", n, " elements)"));
        emit(static_cast<ElementId>(t));
        return;
      }
      case kListSparse: {
        const uint64_t k = c.varint();
        if (k > c.len - c.at) // idWidth >= 1, so this caps k safely
            fail(listOff, cat("SPARSE count ", k,
                              " exceeds remaining section bytes"));
        c.need(k * idWidth);
        for (uint64_t i = 0; i < k; ++i) {
            const uint32_t t = c.id(idWidth);
            if (t >= n)
                fail(listOff, cat("edge target ", t,
                                  " out of range (", n, " elements)"));
            emit(static_cast<ElementId>(t));
        }
        return;
      }
      case kListDense: {
        const uint32_t base = c.id(idWidth);
        const uint64_t bmBytes = c.varint();
        c.need(bmBytes);
        for (uint64_t byte = 0; byte < bmBytes; ++byte) {
            const uint8_t bits = c.p[c.at + byte];
            for (int b = 0; bits >> b; ++b) {
                if (((bits >> b) & 1) == 0)
                    continue;
                const uint64_t t = uint64_t(base) + byte * 8 + b;
                if (t >= n)
                    fail(listOff,
                         cat("DENSE edge target ", t,
                             " out of range (", n, " elements)"));
                emit(static_cast<ElementId>(t));
            }
        }
        c.at += bmBytes;
        return;
      }
      default:
        fail(listOff, cat("unknown edge-list control byte ",
                          static_cast<int>(ctl)));
    }
}

/** Section tag as fourcc string. */
std::string
tagStr(const uint8_t *p)
{
    return std::string(reinterpret_cast<const char *>(p), 4);
}

/** "0xDEADBEEF"-style rendering without the prefix. */
std::string
hex32(uint32_t v)
{
    std::string s;
    for (int i = 7; i >= 0; --i)
        s += "0123456789abcdef"[(v >> (4 * i)) & 0xF];
    return s;
}

} // namespace

const NfaExecImage &
LoadedArtifact::execImage() const
{
    if (!hasExec_)
        panic("LoadedArtifact::execImage(): no EXEC image "
              "(check hasExecImage() first)");
    return exec_;
}

/** Private-access shim for the free-function validators. */
struct ArtifactParser {
    static void validateAndIndex(LoadedArtifact &la,
                                 const LoadOptions &opts);
    static void validateExec(LoadedArtifact &la, const uint8_t *base,
                             uint64_t secOff, uint64_t secLen,
                             uint64_t n, uint64_t edges,
                             uint64_t resets);
};

/**
 * Validate the EXEC section and aim @p la's image spans into it.
 * Every check here exists so that NfaEngine can later index these
 * arrays without any bounds checking of its own: ids < n, CSR rows
 * monotone and capped, flag bytes canonical, no counter->counter
 * edges (the interpreter has no settle cascade).
 */
void
ArtifactParser::validateExec(LoadedArtifact &la, const uint8_t *base,
                             uint64_t secOff, uint64_t secLen,
                             uint64_t n, uint64_t edges,
                             uint64_t resets)
{
    const uint8_t *s = base + secOff;
    if (secLen < 64)
        fail(secOff, "EXEC section shorter than its 64-byte header");
    const uint64_t hN = rdU64(s);
    const uint64_t hEdges = rdU64(s + 8);
    const uint64_t hResets = rdU64(s + 16);
    const uint64_t hAi = rdU64(s + 24);
    const uint64_t hSod = rdU64(s + 32);
    const uint64_t hCtr = rdU64(s + 40);
    const uint64_t hMai = rdU64(s + 48);
    if (hN != n || hEdges != edges || hResets != resets)
        fail(secOff, cat("EXEC counts (", hN, "/", hEdges, "/",
                         hResets, ") disagree with header (", n, "/",
                         edges, "/", resets, ")"));
    if (hAi > n || hSod > n || hCtr > n)
        fail(secOff, "EXEC id-list count exceeds element count");
    if (hMai > hAi * 256)
        fail(secOff, cat("EXEC all-input index count ", hMai,
                         " impossible for ", hAi,
                         " all-input states"));

    // Walk the fixed array layout; every array starts 8-aligned
    // relative to the file (the section offset itself is 8-aligned).
    uint64_t at = 64;
    auto take = [&](uint64_t elemSize, uint64_t count) {
        at = (at + 7) & ~uint64_t(7);
        const uint64_t bytes = elemSize * count; // counts <= 2^32
        if (at > secLen || bytes > secLen - at)
            fail(secOff + at,
                 cat("EXEC truncated: array of ", bytes,
                     " bytes does not fit"));
        const uint8_t *ptr = s + at;
        at += bytes;
        return ptr;
    };
    auto u32s = [&](uint64_t count) {
        return std::span<const uint32_t>(
            reinterpret_cast<const uint32_t *>(take(4, count)), count);
    };
    auto bytes = [&](uint64_t count) {
        return std::span<const uint8_t>(take(1, count), count);
    };

    NfaExecImage &im = la.exec_;
    im.elementCount = n;
    im.edgeBegin = u32s(n + 1);
    im.edgeTarget = u32s(edges);
    im.resetBegin = u32s(n + 1);
    im.resetTarget = u32s(resets);
    im.label = std::span<const LabelWords>(
        reinterpret_cast<const LabelWords *>(take(32, n)), n);
    im.reportCode = u32s(n);
    im.counterTarget = u32s(n);
    im.maiBegin = u32s(257);
    im.maiTarget = u32s(hMai);
    im.allInput = u32s(hAi);
    im.startOfData = u32s(hSod);
    im.counters = u32s(hCtr);
    im.reporting = bytes(n);
    im.isCounter = bytes(n);
    im.isAllInput = bytes(n);
    im.counterMode = bytes(n);
    if (at != secLen)
        fail(secOff + at, cat("EXEC section length mismatch: ", at,
                              " bytes used of ", secLen));

    // Flag bytes must be canonical so the interpreter's 0/1 tests
    // and mode comparisons behave.
    for (uint64_t i = 0; i < n; ++i) {
        if (im.reporting[i] > 1 || im.isCounter[i] > 1 ||
            im.isAllInput[i] > 1)
            fail(secOff, cat("EXEC flag byte for element ", i,
                             " is not 0/1"));
        if (im.counterMode[i] > kExecModeRollover)
            fail(secOff, cat("EXEC counter mode for element ", i,
                             " is not latch/pulse/rollover"));
    }

    auto checkCsr = [&](std::span<const uint32_t> begin,
                        std::span<const uint32_t> target,
                        uint64_t total, const char *what) {
        if (begin[0] != 0 || begin[n] != total)
            fail(secOff, cat("EXEC ", what,
                             " CSR does not span [0, ", total, ")"));
        for (uint64_t i = 0; i < n; ++i) {
            if (begin[i] > begin[i + 1])
                fail(secOff, cat("EXEC ", what,
                                 " CSR decreases at row ", i));
        }
        for (uint64_t k = 0; k < total; ++k) {
            if (target[k] >= n)
                fail(secOff, cat("EXEC ", what, " target ", target[k],
                                 " out of range"));
        }
    };
    checkCsr(im.edgeBegin, im.edgeTarget, edges, "edge");
    checkCsr(im.resetBegin, im.resetTarget, resets, "reset");
    for (uint64_t k = 0; k < resets; ++k) {
        if (!im.isCounter[im.resetTarget[k]])
            fail(secOff, "EXEC reset edge targets a non-counter");
    }

    if (im.maiBegin[0] != 0 || im.maiBegin[256] != hMai)
        fail(secOff, "EXEC all-input index does not span its targets");
    for (int b = 0; b < 256; ++b) {
        if (im.maiBegin[b] > im.maiBegin[b + 1])
            fail(secOff, cat("EXEC all-input index decreases at byte ",
                             b));
    }
    for (uint64_t k = 0; k < hMai; ++k) {
        const uint32_t t = im.maiTarget[k];
        if (t >= n || !im.isAllInput[t])
            fail(secOff,
                 "EXEC all-input index names a non-all-input state");
    }

    // The id lists must be exactly the elements whose flag bytes say
    // so (strictly ascending + bit set + matching popcount => equal
    // sets); EngineScratch trusts `counters` for its per-run reset.
    auto checkList = [&](std::span<const uint32_t> list,
                         std::span<const uint8_t> bit, uint64_t setCount,
                         const char *what) {
        for (size_t i = 0; i < list.size(); ++i) {
            if (list[i] >= n || !bit[list[i]])
                fail(secOff, cat("EXEC ", what,
                                 " list names a non-", what,
                                 " element"));
            if (i > 0 && list[i] <= list[i - 1])
                fail(secOff,
                     cat("EXEC ", what, " list is not ascending"));
        }
        if (setCount != list.size())
            fail(secOff, cat("EXEC ", what,
                             " list disagrees with flag bytes"));
    };
    uint64_t aiBits = 0, ctrBits = 0;
    for (uint64_t i = 0; i < n; ++i) {
        aiBits += im.isAllInput[i];
        ctrBits += im.isCounter[i];
    }
    checkList(im.allInput, im.isAllInput, aiBits, "all-input");
    checkList(im.counters, im.isCounter, ctrBits, "counter");
    for (size_t i = 0; i < im.startOfData.size(); ++i) {
        if (im.startOfData[i] >= n ||
            (i > 0 && im.startOfData[i] <= im.startOfData[i - 1]))
            fail(secOff, "EXEC start-of-data list invalid");
    }

    // The interpreter settles counters in a single pass; a
    // counter->counter edge would need a cascade it doesn't have.
    for (uint32_t c : im.counters) {
        for (uint32_t k = im.edgeBegin[c]; k < im.edgeBegin[c + 1];
             ++k) {
            if (im.isCounter[im.edgeTarget[k]])
                fail(secOff, "EXEC contains a counter->counter edge");
        }
    }

    la.hasExec_ = true;
}

/** Header + section-table validation; throws StatusError. */
void
ArtifactParser::validateAndIndex(LoadedArtifact &la,
                                 const LoadOptions &opts)
{
    const uint8_t *d = la.data_;
    const uint64_t size = la.size_;

    if (size < kHeaderSize)
        fail(size, cat("truncated: ", size,
                       " bytes, fixed header needs 64"));
    if (std::memcmp(d, kMagic.data(), kMagic.size()) != 0)
        fail(0, "bad magic (not a .azoox artifact)");

    la.versionMajor_ = rdU16(d + 8);
    la.versionMinor_ = rdU16(d + 10);
    if (la.versionMajor_ != kVersionMajor) {
        throw StatusError(Status(
            ErrorCode::kVersionMismatch,
            cat("artifact is format ", la.versionMajor_, ".",
                la.versionMinor_, "; this build reads ", kVersionMajor,
                ".x")));
    }
    la.flags_ = rdU32(d + 12);
    if ((la.flags_ & kMustUnderstandMask) != 0) {
        throw StatusError(Status(
            ErrorCode::kUnsupported,
            cat("artifact uses unknown must-understand features 0x",
                hex32(la.flags_ & kMustUnderstandMask))));
    }

    const uint64_t declared = rdU64(d + 16);
    if (declared != size) {
        fail(16, declared > size
                     ? cat("truncated: header declares ", declared,
                           " bytes, file has ", size)
                     : cat("trailing garbage: header declares ",
                           declared, " bytes, file has ", size));
    }
    la.elementCount_ = rdU64(d + 24);
    la.edgeCount_ = rdU64(d + 32);
    la.resetEdgeCount_ = rdU64(d + 40);
    if (la.elementCount_ > 0xFFFFFFFFull ||
        la.edgeCount_ > 0xFFFFFFFFull ||
        la.resetEdgeCount_ > 0xFFFFFFFFull)
        fail(24, "element/edge count exceeds the 32-bit id space");
    la.idWidth_ = d[48];
    if (la.idWidth_ != 1 && la.idWidth_ != 2 && la.idWidth_ != 4)
        fail(48, cat("id width ", static_cast<int>(la.idWidth_),
                     " is not 1/2/4"));
    const uint8_t sectionCount = d[49];
    if (sectionCount > 64)
        fail(49, cat("implausible section count ",
                     static_cast<int>(sectionCount)));
    const uint64_t tableEnd =
        kHeaderSize + uint64_t(sectionCount) * kSectionEntrySize;
    if (tableEnd > size)
        fail(kHeaderSize, "section table extends past end of file");

    if (opts.verifyChecksum) {
        const uint32_t stored = rdU32(d + 52);
        const uint32_t actual =
            crc32(d + kHeaderSize, size - kHeaderSize);
        if (stored != actual) {
            throw StatusError(Status(
                ErrorCode::kChecksumMismatch,
                cat("payload CRC-32 is 0x", hex32(actual),
                    ", header says 0x", hex32(stored))));
        }
    }

    uint64_t secOff[5] = {}; // META CSET ELEM EDGE RSTE
    uint64_t secLen[5] = {};
    bool seen[5] = {};
    static const char *const kRequired[5] = {"META", "CSET", "ELEM",
                                             "EDGE", "RSTE"};
    uint64_t execOff = 0, execLen = 0;
    bool execSeen = false;
    uint64_t profOff = 0, profLen = 0;
    bool profSeen = false;
    for (uint8_t i = 0; i < sectionCount; ++i) {
        const uint8_t *e = d + kHeaderSize + i * kSectionEntrySize;
        const std::string tag = tagStr(e);
        const uint64_t off = rdU64(e + 8);
        const uint64_t len = rdU64(e + 16);
        if (off % 8 != 0)
            fail(off, cat("section ", tag, " offset not 8-aligned"));
        if (off < tableEnd || off > size || len > size - off)
            fail(off, cat("section ", tag, " extends past file"));
        la.sections_.push_back({tag, off, len});
        bool known = false;
        for (int k = 0; k < 5; ++k) {
            if (tag == kRequired[k]) {
                if (seen[k])
                    fail(off, cat("duplicate section ", tag));
                seen[k] = true;
                secOff[k] = off;
                secLen[k] = len;
                known = true;
            }
        }
        if (tag == "EXEC") {
            if (execSeen)
                fail(off, "duplicate section EXEC");
            execSeen = true;
            execOff = off;
            execLen = len;
            known = true;
        }
        if (tag == "PROF") {
            if (profSeen)
                fail(off, "duplicate section PROF");
            profSeen = true;
            profOff = off;
            profLen = len;
            known = true;
        }
        (void)known; // unknown tags are ignorable by design
    }
    for (int k = 0; k < 5; ++k) {
        if (!seen[k])
            fail(tableEnd,
                 cat("required section ", kRequired[k], " missing"));
    }

    // META: automaton name.
    {
        Cursor c{d + secOff[0], secLen[0], secOff[0]};
        const uint32_t nameLen = c.u32();
        if (nameLen > 1u << 16)
            fail(c.abs(), cat("implausible name length ", nameLen));
        c.need(nameLen);
        la.name_.assign(reinterpret_cast<const char *>(c.p + c.at),
                        nameLen);
    }
    la.csetOff_ = secOff[1];
    la.csetLen_ = secLen[1];
    la.elemOff_ = secOff[2];
    la.elemLen_ = secLen[2];
    la.edgeOff_ = secOff[3];
    la.edgeLen_ = secLen[3];
    la.rsteOff_ = secOff[4];
    la.rsteLen_ = secLen[4];
    if (la.elemLen_ != 12 * la.elementCount_)
        fail(la.elemOff_,
             cat("ELEM section is ", la.elemLen_, " bytes; ",
                 la.elementCount_, " elements need ",
                 12 * la.elementCount_));

    // PROF: optional per-component planning facts. Small — one
    // record per component — so it is decoded (and fully validated)
    // eagerly; the sanity checks mirror the writer's field domains
    // so hostile values never reach a planner.
    if (profSeen) {
        Cursor c{d + profOff, profLen, profOff};
        const uint32_t count = c.u32();
        if (count > la.elementCount_)
            fail(profOff, cat("PROF declares ", count,
                              " components for ", la.elementCount_,
                              " elements"));
        if (c.u32() != 0)
            fail(profOff, "PROF reserved word is not zero");
        la.profiles_.reserve(count);
        for (uint32_t i = 0; i < count; ++i) {
            const uint64_t recOff = c.abs();
            analysis::ComponentProfile p;
            p.componentId = c.u32();
            if (p.componentId != i)
                fail(recOff, cat("PROF record ", i,
                                 " carries component id ",
                                 p.componentId));
            p.firstElement = c.u32();
            if (p.firstElement >= la.elementCount_)
                fail(recOff, cat("PROF first element ",
                                 p.firstElement, " out of range"));
            p.steCount = c.u32();
            p.counterCount = c.u32();
            p.edgeCount = c.u32();
            p.startCount = c.u32();
            p.reportCount = c.u32();
            const uint8_t cls = c.u8();
            if (cls > 3)
                fail(recOff,
                     cat("PROF class ", int(cls), " invalid"));
            p.cls = static_cast<analysis::ComponentClass>(cls);
            const uint8_t anchored = c.u8();
            const uint8_t cyclic = c.u8();
            if (anchored > 1 || cyclic > 1 || c.u8() != 0)
                fail(recOff, "PROF flag bytes are not canonical");
            p.anchored = anchored != 0;
            p.cyclic = cyclic != 0;
            p.minMatchLen = c.u32();
            p.maxMatchLen = c.u32();
            p.maxActivationDepth = c.u32();
            p.blowupLog2 = c.u32();
            p.minCounterTarget = c.u32();
            p.maxCounterTarget = c.u32();
            const uint32_t litLen = c.u32();
            c.need(litLen);
            p.mandatoryLiteral.assign(
                reinterpret_cast<const char *>(c.p + c.at), litLen);
            c.at += litLen;
            la.profiles_.push_back(std::move(p));
        }
        if (!c.done())
            fail(c.abs(), "PROF section has trailing bytes");
        la.hasProf_ = true;
    }

    if ((la.flags_ & kFlagExecImage) != 0) {
        if (!execSeen)
            fail(12, "EXEC flag set but no EXEC section");
        // Zero-copy execution reinterprets the bytes as host-endian
        // arrays, so the image is only usable on little-endian hosts;
        // elsewhere the graph sections still materialize correctly.
        if constexpr (std::endian::native == std::endian::little) {
            validateExec(la, d, execOff, execLen, la.elementCount_,
                         la.edgeCount_, la.resetEdgeCount_);
        }
    }
}

Expected<LoadedArtifact>
loadArtifactImpl(MappedFile map, std::vector<uint8_t> heap,
                 const LoadOptions &opts)
{
    LoadedArtifact la;
    la.map_ = std::move(map);
    la.heap_ = std::move(heap);
    la.data_ = la.base();
    la.size_ = la.mapped() ? la.map_.size() : la.heap_.size();

    try {
        ArtifactParser::validateAndIndex(la, opts);
    } catch (const StatusError &e) {
        noteLoadError(e.status().code());
        return e.status();
    }

    if (obs::kEnabled) {
        obs::Registry &reg = obs::Registry::global();
        reg.counter("artifact.load.files").inc();
        reg.counter("artifact.load.bytes").add(la.size_);
        reg.counter(la.mapped() ? "artifact.load.mmap"
                                : "artifact.load.heap")
            .inc();
    }
    return la;
}

Expected<LoadedArtifact>
loadArtifact(const std::string &path, const LoadOptions &opts)
{
    static obs::Histogram &wall =
        obs::Registry::global().histogram("artifact.load.wall_us");
    obs::ScopedTimer timer(wall);

    if (opts.preferMmap) {
        Expected<MappedFile> m = MappedFile::open(path);
        if (m.ok()) {
            if (m->size() > opts.maxFileBytes) {
                noteLoadError(ErrorCode::kLimitExceeded);
                return Status(ErrorCode::kLimitExceeded,
                              cat("artifact '", path, "' is ",
                                  m->size(), " bytes; limit ",
                                  opts.maxFileBytes));
            }
            // A structural failure is the file's fault, not mmap's:
            // do not retry on the heap path.
            return loadArtifactImpl(std::move(*m), {}, opts);
        }
        // mmap unavailable; fall through to a heap read.
    }

    Expected<std::string> bytes =
        readFile(path, static_cast<size_t>(opts.maxFileBytes));
    if (!bytes.ok()) {
        noteLoadError(bytes.status().code());
        return bytes.status();
    }
    std::vector<uint8_t> buf(bytes->begin(), bytes->end());
    return loadArtifactImpl({}, std::move(buf), opts);
}

Expected<LoadedArtifact>
loadArtifactFromBytes(std::vector<uint8_t> bytes,
                      const LoadOptions &opts)
{
    if (bytes.size() > opts.maxFileBytes) {
        noteLoadError(ErrorCode::kLimitExceeded);
        return Status(ErrorCode::kLimitExceeded,
                      cat("artifact is ", bytes.size(),
                          " bytes; limit ", opts.maxFileBytes));
    }
    return loadArtifactImpl({}, std::move(bytes), opts);
}

Expected<Automaton>
LoadedArtifact::materialize(const ParseLimits &limits) const
{
    obs::Registry &reg = obs::Registry::global();
    try {
        if (elementCount_ > limits.maxStates) {
            throw StatusError(Status(
                ErrorCode::kLimitExceeded,
                cat("artifact has ", elementCount_,
                    " elements; limit ", limits.maxStates)));
        }
        if (edgeCount_ + resetEdgeCount_ > limits.maxEdges) {
            throw StatusError(Status(
                ErrorCode::kLimitExceeded,
                cat("artifact has ", edgeCount_ + resetEdgeCount_,
                    " edges; limit ", limits.maxEdges)));
        }
        const uint64_t n = elementCount_;

        // CSET -> charset pool (the one allocating step; materialize
        // is the allocating path by definition).
        Cursor cs{data_ + csetOff_, csetLen_, csetOff_};
        const uint32_t poolCount = cs.u32();
        if (4 + uint64_t(poolCount) * 32 != csetLen_)
            fail(csetOff_, cat("CSET section is ", csetLen_,
                               " bytes; ", poolCount,
                               " charsets need ",
                               4 + uint64_t(poolCount) * 32));
        std::vector<CharSet> pool;
        pool.reserve(poolCount);
        for (uint32_t i = 0; i < poolCount; ++i) {
            LabelWords w;
            for (int k = 0; k < 4; ++k) {
                w[k] = rdU64(cs.p + cs.at);
                cs.at += 8;
            }
            pool.push_back(CharSet::fromWords(w));
        }

        // ELEM -> element table.
        Automaton a(name_);
        Cursor el{data_ + elemOff_, elemLen_, elemOff_};
        for (uint64_t i = 0; i < n; ++i) {
            const uint64_t recOff = el.abs();
            const uint8_t flags = el.u8();
            if (el.u8() != 0 || el.u8() != 0 || el.u8() != 0)
                fail(recOff, "ELEM record padding is not zero");
            const uint32_t code = el.u32();
            const uint32_t aux = el.u32();
            const bool isCounter = (flags & 1) != 0;
            const uint8_t start = (flags >> 1) & 3;
            const bool reporting = (flags >> 3) & 1;
            const uint8_t mode = (flags >> 4) & 3;
            if ((flags >> 6) != 0)
                fail(recOff, "ELEM flag bits 6-7 are reserved");
            if (start > 2)
                fail(recOff, cat("ELEM start type ", int(start),
                                 " invalid"));
            if (mode > 2)
                fail(recOff, cat("ELEM counter mode ", int(mode),
                                 " invalid"));
            if (isCounter) {
                a.addCounter(aux, static_cast<CounterMode>(mode),
                             reporting, code);
            } else {
                if (aux >= poolCount)
                    fail(recOff, cat("ELEM charset index ", aux,
                                     " out of range (pool has ",
                                     poolCount, ")"));
                a.addSte(pool[aux], static_cast<StartType>(start),
                         reporting, code);
            }
        }

        // EDGE / RSTE -> adjacency, in stored (= original) order.
        uint64_t edges = 0;
        Cursor ed{data_ + edgeOff_, edgeLen_, edgeOff_};
        for (uint64_t i = 0; i < n; ++i) {
            decodeList(ed, static_cast<ElementId>(i), n, idWidth_,
                       [&](ElementId t) {
                           a.addEdge(static_cast<ElementId>(i), t);
                           ++edges;
                       });
        }
        if (!ed.done())
            fail(ed.abs(), "EDGE section has trailing bytes");
        if (edges != edgeCount_)
            fail(edgeOff_, cat("EDGE section encodes ", edges,
                               " edges, header says ", edgeCount_));

        uint64_t resets = 0;
        Cursor rs{data_ + rsteOff_, rsteLen_, rsteOff_};
        for (uint64_t i = 0; i < n; ++i) {
            decodeList(rs, static_cast<ElementId>(i), n, idWidth_,
                       [&](ElementId t) {
                           a.addResetEdge(static_cast<ElementId>(i), t);
                           ++resets;
                       });
        }
        if (!rs.done())
            fail(rs.abs(), "RSTE section has trailing bytes");
        if (resets != resetEdgeCount_)
            fail(rsteOff_, cat("RSTE section encodes ", resets,
                               " reset edges, header says ",
                               resetEdgeCount_));

        // Cross-field invariants (reset edges target counters,
        // counters carry no start/symbols, ...) via the automaton's
        // own structural check — same post-load verification the
        // untrusted-format loaders use.
        if (Status st = a.check(); !st.ok()) {
            throw StatusError(
                Status(ErrorCode::kParseError,
                       cat("artifact graph invalid: ", st.message())));
        }
        reg.counter("artifact.materialize.count").inc();
        return a;
    } catch (const StatusError &e) {
        if (obs::kEnabled) {
            reg.counter(cat("artifact.materialize.errors.",
                            errorCodeName(e.status().code())))
                .inc();
        }
        return e.status();
    }
}

} // namespace artifact
} // namespace azoo
