/**
 * @file
 * Fixed-point dataflow framework over the automaton IR.
 *
 * The inference passes in profile.cc all need the same substrate: a
 * per-connected-component directed view of the activation graph with
 * a virtual super-source (predecessor of every start state) and
 * super-sink (successor of every reporting element), plus a handful
 * of classic analyses over that view — reachability, cycle marking,
 * saturating min/max distances, and dominators. This header provides
 * them once, in a form small enough to test in isolation.
 *
 * Conventions:
 *  - All analyses run per component; `ComponentView::split()` builds
 *    every component of an automaton in one pass. Only activation
 *    edges define the view (reset edges neither enable nor consume a
 *    symbol; counter facts read them separately).
 *  - Local node 0 is the source, node 1 the sink; real elements
 *    occupy 2..n+1. Distances are counted in *edges*, so the number
 *    of symbols consumed along a source->sink path is its edge count
 *    minus one (the source->start edge is free: a start state
 *    consumes the first symbol itself).
 *  - `kInfDist` is the saturating "unbounded / undefined" sentinel.
 *    Max-distance saturates to it as soon as a value exceeds the
 *    node count, which is exactly the cycle case.
 *
 * Precondition for every function here: all edge targets in range
 * (verify()'s V001/V002 gate). Callers run verify() first.
 */

#ifndef AZOO_ANALYSIS_DATAFLOW_HH
#define AZOO_ANALYSIS_DATAFLOW_HH

#include <cstdint>
#include <vector>

#include "core/automaton.hh"

namespace azoo {
namespace analysis {

/** Saturating "unbounded or undefined" distance. */
constexpr uint32_t kInfDist = ~uint32_t(0);

/**
 * One connected component of the activation graph, as a directed
 * graph over dense local ids with virtual source/sink terminals.
 */
class ComponentView
{
  public:
    static constexpr uint32_t kSource = 0;
    static constexpr uint32_t kSink = 1;

    /** Build a view per component of @p a, indexed by the component
     *  ids Automaton::connectedComponents() assigns. */
    static std::vector<ComponentView> split(const Automaton &a);

    /** Node count including the two virtual terminals. */
    uint32_t size() const { return static_cast<uint32_t>(succ_.size()); }

    /** Real elements in this component (node count minus 2). */
    uint32_t realCount() const { return size() - 2; }

    /** Global element id of a local node (kNoElement for terminals). */
    ElementId globalId(uint32_t local) const { return global_[local]; }

    const std::vector<uint32_t> &succ(uint32_t n) const { return succ_[n]; }
    const std::vector<uint32_t> &pred(uint32_t n) const { return pred_[n]; }

    /** Activation edges between real members (terminal edges excluded). */
    uint32_t realEdgeCount() const { return realEdges_; }

  private:
    std::vector<ElementId> global_; ///< local -> global
    std::vector<std::vector<uint32_t>> succ_;
    std::vector<std::vector<uint32_t>> pred_;
    uint32_t realEdges_ = 0;
};

/** May-reach facts for one view. */
struct ReachFacts {
    std::vector<uint8_t> fromSource; ///< reachable from the source
    std::vector<uint8_t> toSink;     ///< co-reachable to the sink
    std::vector<uint8_t> onCycle;    ///< in a nontrivial SCC / self-loop
    /** Some cycle node lies on a live source->sink path: the
     *  component accepts arbitrarily long matches. */
    bool liveCycle = false;
};

ReachFacts reachability(const ComponentView &v);

/** Min/max distance (in edges) from the source to every node. */
struct DistFacts {
    /** Shortest distance; kInfDist when unreachable. */
    std::vector<uint32_t> minFromSource;
    /** Longest distance; kInfDist when unreachable or when a cycle
     *  reachable from the source feeds the node. */
    std::vector<uint32_t> maxFromSource;
};

DistFacts distances(const ComponentView &v);

/** Reverse postorder of the nodes reachable from the source (the
 *  iteration order every forward pass here uses: one sweep suffices
 *  on a DAG, and loops converge a whole cycle per sweep). */
std::vector<uint32_t> reversePostorder(const ComponentView &v);

/**
 * Generic forward fixed-point solver: the framework primitive the
 * distance passes are built on, exposed for future analyses.
 *
 * Iterates @p relax over the source-reachable nodes in reverse
 * postorder until no value changes. relax(n, values) returns the new
 * value for node @p n from its predecessors' current values; it must
 * be monotone over a finite-height lattice or the loop will not
 * terminate. Every node starts at @p init; nodes unreachable from
 * the source keep it.
 */
template <typename State, typename Relax>
std::vector<State>
solveForward(const ComponentView &v, State init, Relax relax)
{
    const std::vector<uint32_t> order = reversePostorder(v);
    std::vector<State> values(v.size(), init);
    bool changed = true;
    while (changed) {
        changed = false;
        for (uint32_t n : order) {
            State next = relax(n, values);
            if (!(next == values[n])) {
                values[n] = next;
                changed = true;
            }
        }
    }
    return values;
}

/**
 * Immediate dominators with respect to the source (Cooper-Harvey-
 * Kennedy over reverse postorder). idom[n] == kInfDist for the
 * source itself and for nodes unreachable from it.
 */
std::vector<uint32_t> dominators(const ComponentView &v);

/**
 * The mandatory nodes of the component: every source->sink path
 * passes through each of them. Computed as the sink's dominator
 * chain, returned in source-to-sink order with the terminals
 * stripped. Empty when the sink is unreachable.
 */
std::vector<uint32_t> mandatoryChain(const std::vector<uint32_t> &idom);

} // namespace analysis
} // namespace azoo

#endif // AZOO_ANALYSIS_DATAFLOW_HH
