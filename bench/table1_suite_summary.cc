/**
 * @file
 * Table I: the AutomataZoo suite summary.
 *
 * For every benchmark: states, edges, edges/node, subgraph count,
 * average subgraph size and std dev, compressed states after the
 * VASim-style prefix-merge optimization, compression factor, and the
 * dynamic active set measured with the NFA interpreter on the
 * standard input. The Lazy.* columns characterize the same run under
 * the lazy-DFA hybrid: distinct state-sets interned, whole-cache
 * flushes at the default budget, counter components interpreted by
 * the embedded fallback, and the transition-cache hit rate (read back
 * from the azoo::obs registry; 0.0 under AZOO_OBS=OFF). Plan is the
 * per-component backend census under --engine auto (P/A/D/I/S, see
 * engine/planner.hh) and Pf.Skip% the input fraction the literal
 * prefilter skipped on the same run.
 *
 * Absolute sizes scale with --scale (default 0.05 of the paper's
 * pattern counts; --full reproduces paper sizes). The second table
 * compares scale-invariant shape metrics (per-subgraph size,
 * edge density, active set per 1000 states) against the paper's
 * Table I values.
 */

#include <iostream>
#include <map>

#include "analysis/analysis.hh"
#include "analysis/profile.hh"
#include "bench/common.hh"
#include "core/stats.hh"
#include "engine/lazy_dfa_engine.hh"
#include "obs/obs.hh"
#include "engine/nfa_engine.hh"
#include "engine/planner.hh"
#include "transform/prefix_merge.hh"
#include "util/table.hh"
#include "util/timer.hh"
#include "zoo/registry.hh"

using namespace azoo;

namespace {

/** Paper Table I reference values (full-scale). */
struct PaperRow {
    double states;
    double edgesPerNode;
    double avgSize;
    double activeSet;
};

/**
 * Lint-clean cell: "yes" when verify+lint produce no errors and no
 * warnings, otherwise the count of the worst class present. Errors
 * would mean a generator emitted a corrupt automaton (postVerify
 * should have caught it first); warnings flag legal-but-redundant
 * structure the optimizer passes can collapse.
 */
std::string
lintCell(const Automaton &a)
{
    const analysis::Report rep = analysis::analyze(a);
    if (rep.errors)
        return cat(rep.errors, " err");
    if (rep.warnings)
        return cat(rep.warnings, " warn");
    return "yes";
}

/** Component-class census ("L235" / "R13/U2") and literal-factor
 *  coverage ("235/235") cells, from the analysis inference layer. */
std::pair<std::string, std::string>
classCells(const std::vector<analysis::ComponentProfile> &profiles)
{
    size_t counts[4] = {};
    size_t with_factor = 0;
    for (const analysis::ComponentProfile &p : profiles) {
        ++counts[static_cast<size_t>(p.cls)];
        with_factor += !p.mandatoryLiteral.empty();
    }
    std::string census;
    for (size_t c = 0; c < 4; ++c) {
        if (counts[c] == 0)
            continue;
        if (!census.empty())
            census += "/";
        census += analysis::componentClassCode(
            static_cast<analysis::ComponentClass>(c));
        census += std::to_string(counts[c]);
    }
    return {census.empty() ? "-" : census,
            cat(with_factor, "/", profiles.size())};
}

const std::map<std::string, PaperRow> kPaper = {
    {"Snort", {202043, 1.17, 81.27, 409.358}},
    {"ClamAV", {2374717, 1.00, 71.59, 356.532}},
    {"Protomata", {24103, 1.00, 18.41, 712.884}},
    {"Brill", {115549, 1.37, 19.43, 78.2558}},
    {"Random Forest A", {248000, 1.00, 31, 862.504}},
    {"Random Forest B", {248000, 1.00, 31, 1043.18}},
    {"Random Forest C", {992000, 1.00, 62, 2334.97}},
    {"Hamming 18x3", {108000, 1.69, 108, 1944.38}},
    {"Hamming 22x5", {192000, 1.81, 192, 6324.49}},
    {"Hamming 31x10", {451000, 1.90, 451, 19617.8}},
    {"Levenshtein 19x3", {109000, 4.08, 109, 4528.69}},
    {"Levenshtein 24x5", {204000, 6.13, 204, 18033.9}},
    {"Levenshtein 37x10", {557000, 11.17, 557, 85866.1}},
    {"Seq. Match 6w 6p", {51570, 2.13, 30, 5538.98}},
    {"Seq. Match 6w 6p wC", {53289, 2.13, 31, 5555.98}},
    {"Seq. Match 6w 10p", {85950, 2.16, 50, 5465.23}},
    {"Seq. Match 6w 10p wC", {87669, 2.16, 51, 5497.23}},
    {"Entity Resolution", {413352, 1.55, 41.34, 57.5615}},
    {"CRISPR CasOffinder", {74000, 1.27, 37, 191.64}},
    {"CRISPR CasOT", {202000, 1.66, 101, 953.753}},
    {"YARA", {1047528, 0.98, 44.52, 579.739}},
    {"YARA Wide", {115246, 0.98, 43.99, 123.964}},
    {"File Carving", {2663, 58.81, 295.89, 15.6547}},
    {"AP PRNG 4-sided", {20000, 1.60, 20, 4500}},
    {"AP PRNG 8-sided", {72000, 1.78, 72, 2500}},
};

} // namespace

int
main(int argc, char **argv)
{
    bench::BenchConfig cfg = bench::parseBenchFlags(argc, argv);

    std::cout << "Table I: AutomataZoo benchmarks (scale="
              << cfg.zoo.scale << ", input=" << cfg.zoo.inputBytes
              << "B, sim=" << cfg.simBytes << "B, threads="
              << cfg.threads << ")\n\n";

    // Generate the whole suite up front, fanned out over --threads
    // workers; buildSuite is deterministic, so the table is identical
    // at any thread count.
    std::vector<std::string> names;
    for (const auto &info : zoo::allBenchmarks())
        names.push_back(info.name);
    Timer genTimer;
    std::vector<zoo::Benchmark> suite =
        zoo::buildSuite(names, cfg.zoo, cfg.threads);
    std::cerr << "  [generated " << suite.size() << " benchmarks in "
              << Table::fixed(genTimer.seconds(), 1) << "s on "
              << cfg.threads << " threads]\n";

    Table t({"Benchmark", "States", "Edges", "Edges/Node", "Subgraphs",
             "Avg.Size", "Std.Dev", "Compr.States", "Compr.Factor",
             "ActiveSet", "Lint", "Class", "Lit", "Plan", "Pf.Skip%",
             "Lazy.Sets", "Lazy.Flush", "Lazy.FB", "Lazy.Hit%"});
    Table shape({"Benchmark", "Avg.Size", "(paper)", "Edges/Node",
                 "(paper)", "Act/1kStates", "(paper)"});

    for (size_t bi = 0; bi < suite.size(); ++bi) {
        const auto &info = zoo::allBenchmarks()[bi];
        Timer timer;
        zoo::Benchmark &b = suite[bi];
        GraphStats s = computeStats(b.automaton);

        MergeResult merged = prefixMerge(b.automaton);

        NfaEngine engine(b.automaton);
        SimOptions opts;
        opts.recordReports = false;
        SimResult r = engine.simulate(b.input.data(), cfg.simBytes,
                                      opts);

        LazyDfaEngine lazyEngine(b.automaton);
        SimOptions lazyOpts = opts;
        lazyOpts.computeActiveSet = false;
        // Hit rate from the obs registry as counter deltas around
        // this one run (0.0 under AZOO_OBS=OFF).
        obs::Registry &reg = obs::Registry::global();
        const uint64_t hits0 =
            reg.counterValue("engine.lazy.cache_hits");
        const uint64_t miss0 =
            reg.counterValue("engine.lazy.cache_misses");
        lazyEngine.simulate(b.input.data(), cfg.simBytes, lazyOpts);
        const uint64_t hits =
            reg.counterValue("engine.lazy.cache_hits") - hits0;
        const uint64_t misses =
            reg.counterValue("engine.lazy.cache_misses") - miss0;
        const double hitPct = hits + misses
            ? 100.0 * static_cast<double>(hits) / (hits + misses)
            : 0.0;

        // Planner view of the same automaton: per-component backend
        // census and the fraction of input the literal prefilter
        // skipped under --engine auto (from engine stats, so the cell
        // is live even under AZOO_OBS=OFF).
        const std::vector<analysis::ComponentProfile> profiles =
            analysis::inferProfiles(b.automaton);
        PlannedEngine plannedEngine(b.automaton, profiles);
        plannedEngine.simulate(b.input.data(), cfg.simBytes, opts);
        const PrefilterStats &pf = plannedEngine.lastPrefilterStats();
        const double pfSkip = cfg.simBytes
            ? 100.0 * static_cast<double>(pf.skippedBytes) /
                  static_cast<double>(cfg.simBytes)
            : 0.0;

        const auto [census, litCov] = classCells(profiles);
        const uint64_t total = s.states + s.counters;
        t.addRow({info.name, Table::num(total), Table::num(s.edges),
                  Table::fixed(s.edgesPerNode, 2),
                  Table::num(s.subgraphs),
                  Table::fixed(s.avgSubgraph, 2),
                  Table::fixed(s.stdSubgraph, 2),
                  Table::num(merged.statesAfter),
                  Table::ratio(merged.reduction(), 2),
                  Table::fixed(r.avgActiveSet(), 1),
                  lintCell(b.automaton), census, litCov,
                  plannedEngine.plan().census(),
                  Table::fixed(pfSkip, 1),
                  Table::num(lazyEngine.cachedStates()),
                  Table::num(lazyEngine.cacheFlushes()),
                  Table::num(lazyEngine.fallbackComponents()),
                  Table::fixed(hitPct, 1)});

        auto it = kPaper.find(info.name);
        if (it != kPaper.end() && total) {
            const PaperRow &p = it->second;
            shape.addRow(
                {info.name, Table::fixed(s.avgSubgraph, 1),
                 Table::fixed(p.avgSize, 1),
                 Table::fixed(s.edgesPerNode, 2),
                 Table::fixed(p.edgesPerNode, 2),
                 Table::fixed(1000 * r.avgActiveSet() / total, 2),
                 Table::fixed(1000 * p.activeSet / p.states, 2)});
        }

        std::cerr << "  [" << info.name << " done in "
                  << Table::fixed(timer.seconds(), 1) << "s]\n";
    }

    t.print(std::cout);
    std::cout << "\nScale-invariant shape check vs the paper's "
                 "Table I:\n\n";
    shape.print(std::cout);
    return 0;
}
