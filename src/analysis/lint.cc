#include "analysis/analysis.hh"

#include <algorithm>
#include <set>
#include <unordered_map>

#include "util/logging.hh"

namespace azoo {
namespace analysis {

namespace {

/**
 * Signature of an element for twin detection: everything that
 * determines its behavior except its position in the graph.
 */
uint64_t
signature(const Element &e)
{
    uint64_t h = e.symbols.hash();
    h ^= static_cast<uint64_t>(e.kind) * 0x9e3779b97f4a7c15ULL;
    h ^= static_cast<uint64_t>(e.start) * 0xc2b2ae3d27d4eb4fULL;
    h ^= (e.reporting ? e.reportCode + 1 : 0) * 0x165667b19e3779f9ULL;
    h ^= static_cast<uint64_t>(e.target) * 0x27d4eb2f165667c5ULL;
    h ^= static_cast<uint64_t>(e.mode) * 0x94d049bb133111ebULL;
    return h;
}

/**
 * Successor set normalized for redundancy comparison: sorted,
 * deduplicated, with self-loops mapped to a sentinel so that two
 * self-looping twins compare equal.
 */
std::vector<ElementId>
normalizedOut(const Element &e, ElementId self)
{
    std::vector<ElementId> v;
    v.reserve(e.out.size());
    for (auto t : e.out)
        v.push_back(t == self ? kNoElement : t);
    std::sort(v.begin(), v.end());
    v.erase(std::unique(v.begin(), v.end()), v.end());
    return v;
}

bool
sameSignature(const Element &x, const Element &y)
{
    return x.kind == y.kind && x.start == y.start &&
           x.reporting == y.reporting &&
           (!x.reporting || x.reportCode == y.reportCode) &&
           x.symbols == y.symbols && x.target == y.target &&
           x.mode == y.mode;
}

} // namespace

Report
lint(const Automaton &a, const Options &opts)
{
    Report rep;
    rep.automatonName = a.name();
    const size_t n = a.size();

    auto add = [&](Rule r, ElementId element, ElementId other,
                   std::string msg) {
        if (opts.enabled(r))
            rep.add(defaultSeverity(r), r, element, other,
                    std::move(msg));
    };

    // Large fan-out.
    for (ElementId i = 0; i < n; ++i) {
        const size_t deg = a.element(i).out.size();
        if (deg > opts.fanoutThreshold) {
            add(Rule::kLargeFanout, i, kNoElement,
                cat("element ", i, " has fan-out ", deg,
                    " (threshold ", opts.fanoutThreshold, ")"));
        }
    }

    // No-op edges into always-enabled states: flag each such target
    // once, naming one offending predecessor.
    std::vector<uint8_t> flagged(n, 0);
    for (ElementId i = 0; i < n; ++i) {
        for (auto t : a.element(i).out) {
            if (t < n && a.element(t).start == StartType::kAllInput &&
                !flagged[t]) {
                flagged[t] = 1;
                add(Rule::kEdgeIntoAllInput, t, i,
                    cat("all-input state ", t, " is always enabled; "
                        "the edge from ", i, " has no effect"));
            }
        }
    }

    // Redundant parallel successors: successors of one element that
    // are twins (same signature and same successor set, up to
    // self-loops). Software engines simulate all of them for no
    // gain; this is the redundancy prefix merge exists to collapse.
    // One diagnostic per twin class, deduplicated across parents so
    // a class shared by many predecessors is reported once.
    std::set<std::pair<ElementId, ElementId>> reported_twins;
    for (ElementId i = 0; i < n; ++i) {
        const auto &out = a.element(i).out;
        if (out.size() < 2)
            continue;
        std::vector<ElementId> succs;
        succs.reserve(out.size());
        for (auto t : out) {
            if (t < n)
                succs.push_back(t);
        }
        std::sort(succs.begin(), succs.end());
        succs.erase(std::unique(succs.begin(), succs.end()),
                    succs.end());
        // Group by signature hash first so the quadratic confirm
        // only runs within tiny buckets.
        std::unordered_map<uint64_t, std::vector<ElementId>> buckets;
        for (auto t : succs)
            buckets[signature(a.element(t))].push_back(t);
        for (auto &[hash, group] : buckets) {
            (void)hash;
            if (group.size() < 2)
                continue;
            // Partition the bucket into confirmed-equal classes.
            std::vector<std::vector<ElementId>> classes;
            for (const ElementId u : group) {
                bool placed = false;
                for (auto &cls : classes) {
                    const ElementId v = cls.front();
                    if (sameSignature(a.element(u), a.element(v)) &&
                        normalizedOut(a.element(u), u) ==
                            normalizedOut(a.element(v), v)) {
                        cls.push_back(u);
                        placed = true;
                        break;
                    }
                }
                if (!placed)
                    classes.push_back({u});
            }
            for (const auto &cls : classes) {
                if (cls.size() < 2)
                    continue;
                const ElementId u = cls[0], v = cls[1];
                if (!reported_twins.insert({u, v}).second)
                    continue;
                add(Rule::kParallelTwins, u, v,
                    cat(cls.size(), " successors of ", i,
                        " are interchangeable twins (e.g. ", u,
                        " and ", v, ")"));
            }
        }
    }

    // Mergeable prefix twins: identical elements with identical
    // predecessor sets (round one of prefixMerge). One diagnostic
    // per class, naming the representative and the class size.
    {
        std::vector<std::vector<ElementId>> preds(n);
        for (ElementId i = 0; i < n; ++i) {
            for (auto t : a.element(i).out) {
                if (t < n)
                    preds[t].push_back(i);
            }
        }
        std::unordered_map<uint64_t, std::vector<ElementId>> classes;
        for (ElementId i = 0; i < n; ++i) {
            std::vector<ElementId> p = preds[i];
            std::sort(p.begin(), p.end());
            p.erase(std::unique(p.begin(), p.end()), p.end());
            uint64_t h = signature(a.element(i));
            for (auto q : p)
                h = h * 0x100000001b3ULL ^ q;
            classes[h].push_back(i);
        }
        for (auto &[hash, group] : classes) {
            (void)hash;
            if (group.size() < 2)
                continue;
            // Confirm the first pair to guard against hash clashes.
            const ElementId u = group[0], v = group[1];
            if (!sameSignature(a.element(u), a.element(v)))
                continue;
            add(Rule::kMergeableTwins, u, v,
                cat(group.size(), " identical elements share a "
                    "predecessor set (e.g. ", u, " and ", v,
                    "); prefix merge would collapse them"));
        }
    }

    return rep;
}

} // namespace analysis
} // namespace azoo
