/**
 * @file
 * Prefix-merging optimization: VASim's "standard, prefix-merging-based
 * optimizations" used to produce the "Compressed states" column of the
 * paper's Table I.
 *
 * Two elements are left-equivalent when they have identical match
 * behaviour (kind, symbols, start type, report status and code,
 * counter target/mode) and identical predecessor sets. Merging
 * left-equivalent elements collapses common pattern prefixes (and, by
 * fixpoint iteration, whole shared chains) without changing the set of
 * (offset, report code) events produced on any input. Note the *count*
 * of report events can shrink when duplicate reporting states merge,
 * exactly as in VASim.
 */

#ifndef AZOO_TRANSFORM_PREFIX_MERGE_HH
#define AZOO_TRANSFORM_PREFIX_MERGE_HH

#include <vector>

#include "core/automaton.hh"

namespace azoo {

/** Result of a merge pass. */
struct MergeResult {
    Automaton automaton;            ///< merged automaton
    std::vector<ElementId> remap;   ///< old element id -> new id
    uint64_t statesBefore = 0;
    uint64_t statesAfter = 0;

    /** Fraction of states removed (the paper's "Compr. factor"). */
    double
    reduction() const
    {
        return statesBefore
            ? 1.0 - static_cast<double>(statesAfter) / statesBefore
            : 0.0;
    }
};

/**
 * Iteratively merge left-equivalent elements to fixpoint.
 *
 * @param max_rounds safety bound on fixpoint iterations (each round
 *        can only merge one chain level deeper, so the longest shared
 *        prefix bounds the useful round count).
 */
MergeResult prefixMerge(const Automaton &a, int max_rounds = 256);

} // namespace azoo

#endif // AZOO_TRANSFORM_PREFIX_MERGE_HH
