# Empty dependencies file for table5_fig1_mesh_profile.
# This may be replaced when dependencies are built.
