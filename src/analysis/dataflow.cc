#include "analysis/dataflow.hh"

#include <algorithm>

namespace azoo {
namespace analysis {

std::vector<ComponentView>
ComponentView::split(const Automaton &a)
{
    const size_t n = a.size();
    uint32_t count = 0;
    const std::vector<uint32_t> comp = a.connectedComponents(count);

    std::vector<ComponentView> views(count);
    // Local ids in global-id order: the builders append chains in
    // path order, so this keeps the iteration order of the solvers
    // close to topological even before the RPO sweep.
    std::vector<uint32_t> local_of(n, 0);
    for (ElementId i = 0; i < n; ++i) {
        ComponentView &v = views[comp[i]];
        if (v.global_.empty()) {
            v.global_.assign(2, kNoElement); // source, sink terminals
        }
        local_of[i] = static_cast<uint32_t>(v.global_.size());
        v.global_.push_back(i);
    }
    for (ComponentView &v : views) {
        if (v.global_.empty())
            v.global_.assign(2, kNoElement);
        v.succ_.resize(v.global_.size());
        v.pred_.resize(v.global_.size());
    }

    for (ElementId i = 0; i < n; ++i) {
        const Element &e = a.element(i);
        ComponentView &v = views[comp[i]];
        const uint32_t li = local_of[i];
        if (e.start != StartType::kNone) {
            v.succ_[kSource].push_back(li);
            v.pred_[li].push_back(kSource);
        }
        if (e.reporting) {
            v.succ_[li].push_back(kSink);
            v.pred_[kSink].push_back(li);
        }
        for (ElementId t : e.out) {
            // Activation edges never cross components (the component
            // relation is their undirected closure).
            const uint32_t lt = local_of[t];
            v.succ_[li].push_back(lt);
            v.pred_[lt].push_back(li);
            ++v.realEdges_;
        }
    }
    return views;
}

std::vector<uint32_t>
reversePostorder(const ComponentView &v)
{
    std::vector<uint8_t> seen(v.size(), 0);
    std::vector<uint32_t> post;
    post.reserve(v.size());

    // Iterative DFS; the frame remembers how many successors are done.
    std::vector<std::pair<uint32_t, size_t>> stack;
    stack.emplace_back(ComponentView::kSource, 0);
    seen[ComponentView::kSource] = 1;
    while (!stack.empty()) {
        auto &[node, next] = stack.back();
        const auto &succ = v.succ(node);
        if (next < succ.size()) {
            const uint32_t s = succ[next++];
            if (!seen[s]) {
                seen[s] = 1;
                stack.emplace_back(s, 0);
            }
        } else {
            post.push_back(node);
            stack.pop_back();
        }
    }
    std::reverse(post.begin(), post.end());
    return post;
}

namespace {

/** Forward BFS over succ (or pred when @p backward) from @p from. */
std::vector<uint8_t>
reach(const ComponentView &v, uint32_t from, bool backward)
{
    std::vector<uint8_t> seen(v.size(), 0);
    std::vector<uint32_t> work{from};
    seen[from] = 1;
    while (!work.empty()) {
        const uint32_t u = work.back();
        work.pop_back();
        for (uint32_t t : backward ? v.pred(u) : v.succ(u)) {
            if (!seen[t]) {
                seen[t] = 1;
                work.push_back(t);
            }
        }
    }
    return seen;
}

/** Mark nodes in a nontrivial SCC or with a self-loop (iterative
 *  Tarjan; components are far smaller than the recursion limit, but
 *  hostile inputs are not). */
std::vector<uint8_t>
cycleNodes(const ComponentView &v)
{
    const uint32_t n = v.size();
    constexpr uint32_t kUnvisited = ~uint32_t(0);
    std::vector<uint8_t> on_cycle(n, 0);
    std::vector<uint32_t> index(n, kUnvisited), low(n, 0);
    std::vector<uint8_t> on_stack(n, 0);
    std::vector<uint32_t> scc_stack;
    uint32_t next_index = 0;

    struct Frame {
        uint32_t node;
        size_t next;
    };
    std::vector<Frame> dfs;
    for (uint32_t root = 0; root < n; ++root) {
        if (index[root] != kUnvisited)
            continue;
        dfs.push_back({root, 0});
        index[root] = low[root] = next_index++;
        scc_stack.push_back(root);
        on_stack[root] = 1;
        while (!dfs.empty()) {
            Frame &f = dfs.back();
            const auto &succ = v.succ(f.node);
            if (f.next < succ.size()) {
                const uint32_t s = succ[f.next++];
                if (s == f.node)
                    on_cycle[s] = 1; // self-loop
                if (index[s] == kUnvisited) {
                    dfs.push_back({s, 0});
                    index[s] = low[s] = next_index++;
                    scc_stack.push_back(s);
                    on_stack[s] = 1;
                } else if (on_stack[s]) {
                    low[f.node] = std::min(low[f.node], index[s]);
                }
            } else {
                const uint32_t u = f.node;
                dfs.pop_back();
                if (!dfs.empty()) {
                    low[dfs.back().node] =
                        std::min(low[dfs.back().node], low[u]);
                }
                if (low[u] == index[u]) {
                    std::vector<uint32_t> members;
                    uint32_t w;
                    do {
                        w = scc_stack.back();
                        scc_stack.pop_back();
                        on_stack[w] = 0;
                        members.push_back(w);
                    } while (w != u);
                    if (members.size() > 1) {
                        for (uint32_t m : members)
                            on_cycle[m] = 1;
                    }
                }
            }
        }
    }
    return on_cycle;
}

} // namespace

ReachFacts
reachability(const ComponentView &v)
{
    ReachFacts r;
    r.fromSource = reach(v, ComponentView::kSource, false);
    r.toSink = reach(v, ComponentView::kSink, true);
    r.onCycle = cycleNodes(v);
    for (uint32_t i = 0; i < v.size(); ++i) {
        if (r.onCycle[i] && r.fromSource[i] && r.toSink[i]) {
            r.liveCycle = true;
            break;
        }
    }
    return r;
}

DistFacts
distances(const ComponentView &v)
{
    const ReachFacts r = reachability(v);
    DistFacts d;

    // Shortest distance via the generic solver: the RPO sweep is a
    // BFS relaxation, and back edges can never shorten a path, so
    // this converges in two sweeps.
    d.minFromSource = solveForward(
        v, kInfDist, [&](uint32_t n, const std::vector<uint32_t> &val) {
            if (n == ComponentView::kSource)
                return uint32_t(0);
            uint32_t best = kInfDist;
            for (uint32_t p : v.pred(n)) {
                if (val[p] != kInfDist)
                    best = std::min(best, val[p] + 1);
            }
            return best;
        });

    // Longest distance. A node fed by a source-reachable cycle is
    // unbounded; the rest of the reachable graph is acyclic, where
    // one reverse-postorder sweep computes longest paths exactly
    // (every non-back edge goes forward in RPO, and back edges only
    // exist inside SCCs, which were just excluded).
    std::vector<uint8_t> unbounded(v.size(), 0);
    {
        std::vector<uint32_t> work;
        for (uint32_t i = 0; i < v.size(); ++i) {
            if (r.onCycle[i] && r.fromSource[i]) {
                unbounded[i] = 1;
                work.push_back(i);
            }
        }
        while (!work.empty()) {
            const uint32_t u = work.back();
            work.pop_back();
            for (uint32_t t : v.succ(u)) {
                if (!unbounded[t]) {
                    unbounded[t] = 1;
                    work.push_back(t);
                }
            }
        }
    }
    d.maxFromSource.assign(v.size(), kInfDist);
    for (uint32_t n : reversePostorder(v)) {
        if (unbounded[n])
            continue; // stays kInfDist
        if (n == ComponentView::kSource) {
            d.maxFromSource[n] = 0;
            continue;
        }
        uint32_t best = kInfDist; // all preds unreachable -> undefined
        for (uint32_t p : v.pred(n)) {
            if (!r.fromSource[p] || unbounded[p])
                continue;
            if (d.maxFromSource[p] != kInfDist)
                best = best == kInfDist
                           ? d.maxFromSource[p] + 1
                           : std::max(best, d.maxFromSource[p] + 1);
        }
        d.maxFromSource[n] = best;
    }
    return d;
}

std::vector<uint32_t>
dominators(const ComponentView &v)
{
    // Cooper-Harvey-Kennedy iterative dominators over RPO.
    constexpr uint32_t kUndef = kInfDist;
    const std::vector<uint32_t> order = reversePostorder(v);
    std::vector<uint32_t> rpo_num(v.size(), kUndef);
    for (uint32_t i = 0; i < order.size(); ++i)
        rpo_num[order[i]] = i;

    std::vector<uint32_t> idom(v.size(), kUndef);
    idom[ComponentView::kSource] = ComponentView::kSource;

    auto intersect = [&](uint32_t a, uint32_t b) {
        while (a != b) {
            while (rpo_num[a] > rpo_num[b])
                a = idom[a];
            while (rpo_num[b] > rpo_num[a])
                b = idom[b];
        }
        return a;
    };

    bool changed = true;
    while (changed) {
        changed = false;
        for (uint32_t n : order) {
            if (n == ComponentView::kSource)
                continue;
            uint32_t new_idom = kUndef;
            for (uint32_t p : v.pred(n)) {
                if (idom[p] == kUndef)
                    continue;
                new_idom =
                    new_idom == kUndef ? p : intersect(p, new_idom);
            }
            if (new_idom != kUndef && idom[n] != new_idom) {
                idom[n] = new_idom;
                changed = true;
            }
        }
    }
    idom[ComponentView::kSource] = kUndef; // the root has no idom
    return idom;
}

std::vector<uint32_t>
mandatoryChain(const std::vector<uint32_t> &idom)
{
    std::vector<uint32_t> chain;
    if (idom[ComponentView::kSink] == kInfDist)
        return chain; // nothing reports: no accepting paths at all
    for (uint32_t n = idom[ComponentView::kSink];
         n != ComponentView::kSource; n = idom[n]) {
        chain.push_back(n);
    }
    std::reverse(chain.begin(), chain.end());
    return chain;
}

} // namespace analysis
} // namespace azoo
