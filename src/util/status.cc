#include "util/status.hh"

#include "util/logging.hh"
#include "util/strings.hh"

namespace azoo {

const char *
errorCodeName(ErrorCode code)
{
    switch (code) {
      case ErrorCode::kOk: return "ok";
      case ErrorCode::kParseError: return "parse-error";
      case ErrorCode::kUnsupported: return "unsupported";
      case ErrorCode::kLimitExceeded: return "limit-exceeded";
      case ErrorCode::kIoError: return "io-error";
      case ErrorCode::kDeadlineExceeded: return "deadline-exceeded";
      case ErrorCode::kCancelled: return "cancelled";
      case ErrorCode::kResourceExhausted: return "resource-exhausted";
      case ErrorCode::kInvalidArgument: return "invalid-argument";
      case ErrorCode::kVersionMismatch: return "version-mismatch";
      case ErrorCode::kChecksumMismatch: return "checksum-mismatch";
      case ErrorCode::kInternal: return "internal";
    }
    return "unknown";
}

std::string
SourceLoc::str() const
{
    if (known())
        return cat(line, ":", column);
    return cat("offset ", offset);
}

SourceLoc
locateOffset(std::string_view text, size_t offset)
{
    SourceLoc loc;
    loc.offset = offset;
    if (offset > text.size())
        offset = text.size();
    uint32_t line = 1;
    size_t lineStart = 0;
    for (size_t i = 0; i < offset; ++i) {
        if (text[i] == '\n') {
            ++line;
            lineStart = i + 1;
        }
    }
    loc.line = line;
    loc.column = static_cast<uint32_t>(offset - lineStart) + 1;
    return loc;
}

std::string
tokenAt(std::string_view text, size_t offset, size_t maxLen)
{
    if (offset >= text.size())
        return "";
    size_t end = offset;
    while (end < text.size() && end - offset < maxLen &&
           text[end] != '\n') {
        ++end;
    }
    return escapeBytes(std::string(text.substr(offset, end - offset)));
}

std::string
Status::str() const
{
    if (ok())
        return "ok";
    std::string out = errorCodeName(code_);
    if (loc_.known() || loc_.offset != 0) {
        out += " at ";
        out += loc_.str();
    }
    out += ": ";
    out += message_;
    return out;
}

namespace detail {

void
expectedValuePanic()
{
    panic("Expected<T>::value() called on an error result");
}

void
expectedOkStatusPanic()
{
    panic("Expected<T> constructed from an OK Status");
}

void
expectedDie(const Status &status)
{
    fatal(status.str());
}

} // namespace detail

} // namespace azoo
