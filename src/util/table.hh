/**
 * @file
 * ASCII table printer used by the bench harnesses to emit paper-style
 * tables (Table I..V) with aligned columns.
 */

#ifndef AZOO_UTIL_TABLE_HH
#define AZOO_UTIL_TABLE_HH

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace azoo {

/**
 * A simple column-aligned text table.
 *
 * Usage:
 * @code
 *   Table t({"Benchmark", "States", "Edges"});
 *   t.addRow({"Snort", Table::num(202043), Table::fixed(1.17, 2)});
 *   t.print(std::cout);
 * @endcode
 */
class Table
{
  public:
    explicit Table(std::vector<std::string> headers);

    /** Append a row; must have the same arity as the header. */
    void addRow(std::vector<std::string> cells);

    /** Render with column separators and a header rule. */
    void print(std::ostream &os) const;

    /** Integer with thousands separators, e.g. 2,374,717. */
    static std::string num(uint64_t v);

    /** Fixed-point double with the given precision. */
    static std::string fixed(double v, int precision);

    /** Ratio formatted like the paper: "4.71x" / "0.05x". */
    static std::string ratio(double v, int precision = 2);

    /** Percentage, e.g. "26.7%". */
    static std::string percent(double v, int precision = 1);

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace azoo

#endif // AZOO_UTIL_TABLE_HH
