#include "zoo/registry.hh"

#include "analysis/analysis.hh"
#include "util/logging.hh"
#include "zoo/apprng.hh"
#include "zoo/brill.hh"
#include "zoo/clamav.hh"
#include "zoo/crispr.hh"
#include "zoo/entity.hh"
#include "zoo/filecarve.hh"
#include "zoo/mesh.hh"
#include "zoo/protomata.hh"
#include "zoo/randomforest.hh"
#include "zoo/seqmatch.hh"
#include "zoo/snort.hh"
#include "zoo/yara.hh"

namespace azoo {
namespace zoo {

namespace {

Benchmark
seqMatch(const ZooConfig &cfg, int width, bool counters)
{
    SeqMatchParams p;
    p.itemsetSize = 6;
    p.filterWidth = width;
    p.withCounters = counters;
    return makeSeqMatchBenchmark(cfg, p);
}

std::vector<BenchmarkInfo>
buildRegistry()
{
    std::vector<BenchmarkInfo> v;
    auto add = [&](const std::string &name, const std::string &domain,
                   std::function<Benchmark(const ZooConfig &)> fn) {
        v.push_back({name, domain, std::move(fn)});
    };

    add("Snort", "Network Intrusion Detection", makeSnortBenchmark);
    add("ClamAV", "Virus Detection", makeClamAvBenchmark);
    add("Protomata", "Motif Search", makeProtomataBenchmark);
    add("Brill", "Part of Speech Tagging", makeBrillBenchmark);
    for (char variant : {'A', 'B', 'C'}) {
        add(std::string("Random Forest ") + variant,
            "Machine Learning", [variant](const ZooConfig &c) {
                return makeRandomForestBenchmark(c, variant);
            });
    }
    for (const auto &mv : meshVariants()) {
        const bool ham = mv.kind == MeshKind::kHamming;
        add(cat(ham ? "Hamming" : "Levenshtein", " ", mv.paperL, "x",
                mv.d),
            "String Similarity", [mv](const ZooConfig &c) {
                return makeMeshBenchmark(c, mv.kind, mv.paperL, mv.d);
            });
    }
    add("Seq. Match 6w 6p", "Ordered Pattern Counting",
        [](const ZooConfig &c) { return seqMatch(c, 6, false); });
    add("Seq. Match 6w 6p wC", "Ordered Pattern Counting",
        [](const ZooConfig &c) { return seqMatch(c, 6, true); });
    add("Seq. Match 6w 10p", "Ordered Pattern Counting",
        [](const ZooConfig &c) { return seqMatch(c, 10, false); });
    add("Seq. Match 6w 10p wC", "Ordered Pattern Counting",
        [](const ZooConfig &c) { return seqMatch(c, 10, true); });
    add("Entity Resolution", "Duplicate entry identification",
        makeEntityBenchmark);
    add("CRISPR CasOffinder", "DNA pattern search",
        [](const ZooConfig &c) {
            return makeCrisprBenchmark(c, CrisprKind::kCasOffinder);
        });
    add("CRISPR CasOT", "DNA pattern search", [](const ZooConfig &c) {
        return makeCrisprBenchmark(c, CrisprKind::kCasOt);
    });
    add("YARA", "Malware pattern search", [](const ZooConfig &c) {
        return makeYaraBenchmark(c, false);
    });
    add("YARA Wide", "Malware pattern search", [](const ZooConfig &c) {
        return makeYaraBenchmark(c, true);
    });
    add("File Carving", "File metadata search", makeFileCarveBenchmark);
    add("AP PRNG 4-sided", "Pseudo-random number generation",
        [](const ZooConfig &c) { return makeApPrngBenchmark(c, 4); });
    add("AP PRNG 8-sided", "Pseudo-random number generation",
        [](const ZooConfig &c) { return makeApPrngBenchmark(c, 8); });
    return v;
}

} // namespace

const std::vector<BenchmarkInfo> &
allBenchmarks()
{
    static const std::vector<BenchmarkInfo> kRegistry = buildRegistry();
    return kRegistry;
}

Benchmark
makeBenchmark(const std::string &name, const ZooConfig &cfg)
{
    for (const auto &info : allBenchmarks()) {
        if (info.name != name)
            continue;
        Benchmark b = info.make(cfg);
        // Every generated benchmark is verified at the source, which
        // also covers parallel zoo::buildSuite() (it lands here).
        analysis::postVerify(b.automaton, cat("zoo:", name));
        return b;
    }
    fatal(cat("unknown benchmark '", name, "'"));
}

} // namespace zoo
} // namespace azoo
