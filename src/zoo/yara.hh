/**
 * @file
 * YARA malware-pattern benchmarks (Sections IV and IX-A).
 *
 * YARA rules describe patterns at 4-bit (nibble) granularity:
 * hexadecimal strings with nibble wildcards ('?A', 'D?', '??'),
 * bounded jumps ('[4-6]'), and alternation ('(A|B)'), plus plain text
 * strings and regular expressions. Standard automata toolchains are
 * byte-level, so -- like the paper's Plyara-based pipeline -- we
 * parse the hex dialect and convert each nibble-wildcard token into a
 * byte-level character class before compiling with the regex
 * frontend.
 *
 * The "YARA Wide" variant applies the widening pass (transform/widen)
 * to a smaller rule subset, modeling rules that scan UTF-16-encoded
 * content two bytes per symbol.
 */

#ifndef AZOO_ZOO_YARA_HH
#define AZOO_ZOO_YARA_HH

#include <string>
#include <vector>

#include "zoo/benchmark.hh"

namespace azoo {
namespace zoo {

/** One YARA rule: hex-dialect pattern plus a concrete instance. */
struct YaraRule {
    std::string hex;      ///< e.g. "9C 50 A1 ?? (?A ?? 00 | 66) D?"
    std::string instance; ///< concrete matching bytes
};

/** Convert the YARA hex dialect to a PCRE pattern. */
std::string yaraHexToRegex(const std::string &hex);

/** Generate scaled(23530) rules (or scaled(2620) for wide). */
std::vector<YaraRule> makeYaraRules(const ZooConfig &cfg, bool wide);

/** Build the standard or widened benchmark. */
Benchmark makeYaraBenchmark(const ZooConfig &cfg, bool wide);

} // namespace zoo
} // namespace azoo

#endif // AZOO_ZOO_YARA_HH
