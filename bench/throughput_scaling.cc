/**
 * @file
 * Thread-scaling throughput of the parallel execution layer.
 *
 * Reports aggregate symbols/sec at 1/2/4/8 threads (and the machine's
 * hardware thread count if it is not in that list) for both axes of
 * ParallelRunner:
 *
 *  - batch: the benchmark's standard input split into --streams equal
 *    streams, fanned out across the pool;
 *  - sharded: one input scanned by per-thread component shards.
 *
 * --engine nfa|lazydfa picks the per-stream/per-shard engine and
 * --json PATH writes every measurement as a bench::JsonReport row
 * (benchmark "name/batch" or "name/sharded", engine, threads,
 * symbols/sec, lazy cache flushes).
 *
 * Methodology (see docs/ARCHITECTURE.md): one untimed warmup run per
 * configuration, then --reps timed repetitions; the best repetition
 * is reported (minimum-noise estimator for a dedicated machine).
 * "symbols/sec" counts input symbols consumed by the automaton:
 * per-stream bytes summed over the batch, or the single input length
 * in sharded mode. Report recording and active-set accounting are
 * off, matching a deployment scan loop.
 */

#include <algorithm>
#include <iostream>
#include <vector>

#include "bench/common.hh"
#include "engine/nfa_engine.hh"
#include "engine/parallel_runner.hh"
#include "util/table.hh"
#include "util/thread_pool.hh"
#include "util/timer.hh"
#include "zoo/registry.hh"

using namespace azoo;

namespace {

std::vector<std::vector<uint8_t>>
splitStreams(const std::vector<uint8_t> &input, size_t count)
{
    std::vector<std::vector<uint8_t>> streams;
    const size_t per = std::max<size_t>(1, input.size() / count);
    for (size_t pos = 0; pos < input.size(); pos += per) {
        const size_t len = std::min(per, input.size() - pos);
        streams.emplace_back(input.begin() + pos,
                             input.begin() + pos + len);
    }
    return streams;
}

/** Best-of-reps wall time of fn(), after one untimed warmup. */
double
bestSeconds(int reps, const std::function<void()> &fn)
{
    fn();
    double best = 1e300;
    for (int i = 0; i < reps; ++i) {
        Timer t;
        fn();
        best = std::min(best, t.seconds());
    }
    return best;
}

} // namespace

int
main(int argc, char **argv)
{
    bench::BenchConfig cfg = bench::parseBenchFlags(
        argc, argv, {"name", "streams", "reps", "engine", "json"});
    Cli cli(argc, argv,
            {"scale", "input", "sim", "seed", "full", "threads",
             "name", "streams", "reps", "engine", "json"});
    const std::string name = cli.get("name", "Snort");
    const auto streamCount =
        static_cast<size_t>(cli.getInt("streams", 16));
    const int reps = static_cast<int>(cli.getInt("reps", 3));
    const std::string engineName = cli.get("engine", "nfa");
    if (engineName != "nfa" && engineName != "lazydfa")
        fatal("throughput_scaling: --engine must be nfa or lazydfa");
    const bool lazy = engineName == "lazydfa";
    bench::JsonReport json("throughput_scaling");

    zoo::Benchmark b = zoo::makeBenchmark(name, cfg.zoo);
    std::vector<uint8_t> input(b.input.begin(),
                               b.input.begin() + cfg.simBytes);
    auto streams = splitStreams(input, streamCount);

    std::vector<size_t> counts = {1, 2, 4, 8};
    const size_t hw = ThreadPool::hardwareThreads();
    if (std::find(counts.begin(), counts.end(), hw) == counts.end())
        counts.push_back(hw);

    std::cout << "Throughput scaling: " << name << " (scale="
              << cfg.zoo.scale << ", engine=" << engineName << "), "
              << input.size() << " input bytes, " << streams.size()
              << " streams, " << hw
              << " hardware threads, best of " << reps << " reps\n\n";

    SimOptions sim;
    sim.recordReports = false;
    sim.computeActiveSet = false;

    Table t({"Threads", "Batch MSym/s", "Speedup", "Shards",
             "Sharded MSym/s", "Speedup"});
    double batchBase = 0, shardBase = 0;
    for (size_t threads : counts) {
        ParallelOptions popts;
        popts.threads = threads;
        popts.engine = lazy ? ParallelEngine::kLazyDfa
                            : ParallelEngine::kNfa;
        popts.sim = sim;
        ParallelRunner runner(b.automaton, popts);

        uint64_t batchFlushes = 0;
        const double batchSecs = bestSeconds(reps, [&] {
            batchFlushes = runner.runBatch(streams).totalLazyFlushes;
        });
        const double batchRate = input.size() / batchSecs / 1e6;

        uint64_t shardFlushes = 0;
        const double shardSecs = bestSeconds(reps, [&] {
            shardFlushes =
                runner.simulateSharded(input).lazyFlushes;
        });
        const double shardRate = input.size() / shardSecs / 1e6;

        if (threads == 1) {
            batchBase = batchRate;
            shardBase = shardRate;
        }
        t.addRow({std::to_string(threads),
                  Table::fixed(batchRate, 2),
                  Table::ratio(batchRate / batchBase, 2),
                  std::to_string(runner.shardCount()),
                  Table::fixed(shardRate, 2),
                  Table::ratio(shardRate / shardBase, 2)});
        json.add({name + "/batch", engineName, threads,
                  batchRate * 1e6, batchFlushes, {}});
        json.add({name + "/sharded", engineName, threads,
                  shardRate * 1e6, shardFlushes,
                  {{"shards", double(runner.shardCount())}}});
    }
    t.print(std::cout);

    // Sanity line: the serial engine, for an apples-to-apples anchor.
    double serialSecs;
    uint64_t serialFlushes = 0;
    if (lazy) {
        LazyDfaEngine serial(b.automaton);
        serialSecs = bestSeconds(reps, [&] {
            serial.simulate(input.data(), input.size(), sim);
        });
        serialFlushes = serial.cacheFlushes();
    } else {
        NfaEngine serial(b.automaton);
        EngineScratch scratch;
        serialSecs = bestSeconds(reps, [&] {
            serial.simulate(input.data(), input.size(), scratch, sim);
        });
    }
    const double serialRate = input.size() / serialSecs / 1e6;
    std::cout << "\nserial "
              << (lazy ? "LazyDfaEngine" : "NfaEngine") << ": "
              << Table::fixed(serialRate, 2) << " MSym/s\n";
    json.add({name + "/serial", engineName, 1, serialRate * 1e6,
              serialFlushes, {}});
    json.writeFile(cli.get("json"));
    return 0;
}
