/**
 * @file
 * libFuzzer harness for the ANML (XML) front end. Same contract as
 * fuzz_mnrl: parse or structured error, nothing else.
 */

#include <cstddef>
#include <cstdint>
#include <sstream>
#include <string>

#include "core/anml.hh"

extern "C" int
LLVMFuzzerTestOneInput(const uint8_t *data, size_t size)
{
    azoo::ParseLimits limits;
    limits.maxStates = 1 << 12;
    limits.maxEdges = 1 << 14;
    limits.maxNestingDepth = 64;
    limits.maxInputBytes = 1 << 20;

    std::istringstream is(
        std::string(reinterpret_cast<const char *>(data), size));
    azoo::Expected<azoo::Automaton> got = azoo::readAnml(is, limits);
    if (got.ok()) {
        if (!got->check().ok())
            __builtin_trap();
    }
    return 0;
}
