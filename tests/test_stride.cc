/**
 * @file
 * Bit-level automata and 8-striding tests (Section IX-B): chain
 * builder semantics, range-field construction, and the central
 * equivalence property -- a strided byte automaton reports at byte
 * offset t exactly when the bit automaton reports at bit offset
 * 8t + 7 on the bit-expanded input.
 */

#include <gtest/gtest.h>

#include <set>

#include "bits/bit_builder.hh"
#include "engine/nfa_engine.hh"
#include "transform/stride.hh"
#include "util/rng.hh"
#include "zoo/filecarve.hh"

namespace azoo {
namespace {

using bits::addAlignmentRing;
using bits::BitChainBuilder;
using bits::expandToBits;

/** Byte offsets reported by the strided automaton. */
std::set<uint64_t>
byteReports(const Automaton &strided, const std::vector<uint8_t> &in)
{
    NfaEngine e(strided);
    auto r = e.simulate(in);
    std::set<uint64_t> out;
    for (const auto &rep : r.reports)
        out.insert(rep.offset);
    return out;
}

/** Byte offsets derived from bit-level simulation. */
std::set<uint64_t>
bitReportsAsBytes(const Automaton &bit, const std::vector<uint8_t> &in)
{
    NfaEngine e(bit);
    auto r = e.simulate(expandToBits(in));
    std::set<uint64_t> out;
    for (const auto &rep : r.reports) {
        EXPECT_EQ(rep.offset % 8, 7u)
            << "bit automaton reported mid-byte";
        out.insert(rep.offset / 8);
    }
    return out;
}

TEST(BitBuilder, ExpandToBitsMsbFirst)
{
    auto bits = expandToBits({0xA5});
    ASSERT_EQ(bits.size(), 8u);
    const uint8_t expect[] = {1, 0, 1, 0, 0, 1, 0, 1};
    for (int i = 0; i < 8; ++i)
        EXPECT_EQ(bits[i], expect[i]) << i;
}

TEST(BitBuilder, FixedByteChainMatchesAnchored)
{
    Automaton a("b");
    BitChainBuilder b(a); // anchored (start of data)
    b.appendByte(0xCA);
    b.appendByte(0xFE);
    b.finishReport(1);
    EXPECT_EQ(a.size(), 16u);

    NfaEngine e(a);
    EXPECT_EQ(e.simulate(expandToBits({0xCA, 0xFE})).reportCount, 1u);
    EXPECT_EQ(e.simulate(expandToBits({0xCA, 0xFF})).reportCount, 0u);
    EXPECT_EQ(e.simulate(expandToBits({0x00, 0xCA})).reportCount, 0u);
}

TEST(BitBuilder, AlignmentRingRearmssAtByteBoundaries)
{
    Automaton a("b");
    ElementId ring = addAlignmentRing(a);
    BitChainBuilder b(a, ring);
    b.appendByte(0x42);
    b.finishReport(1);

    NfaEngine e(a);
    auto r = e.simulate(expandToBits({0x00, 0x42, 0x42, 0x99, 0x42}));
    std::set<uint64_t> offs;
    for (const auto &rep : r.reports)
        offs.insert(rep.offset / 8);
    EXPECT_EQ(offs, (std::set<uint64_t>{1, 2, 4}));
}

TEST(BitBuilder, MaskedByteNibbleWildcard)
{
    Automaton a("b");
    BitChainBuilder b(a);
    b.appendMaskedByte(0xD0, 0xF0); // high nibble D, low nibble any
    b.finishReport(1);
    NfaEngine e(a);
    EXPECT_EQ(e.simulate(expandToBits({0xD7})).reportCount, 1u);
    EXPECT_EQ(e.simulate(expandToBits({0xC7})).reportCount, 0u);
}

TEST(BitBuilder, RangeFieldExactBounds)
{
    // 8-bit field in [10, 29]: check every byte value.
    Automaton a("b");
    BitChainBuilder b(a);
    b.appendRangeField(8, 10, 29);
    b.finishReport(1);
    NfaEngine e(a);
    for (int v = 0; v < 256; ++v) {
        auto r = e.simulate(expandToBits({static_cast<uint8_t>(v)}));
        EXPECT_EQ(r.reportCount > 0, v >= 10 && v <= 29) << v;
    }
}

TEST(BitBuilder, RangeFieldCrossByte)
{
    // 16-bit big-endian field in [300, 1000].
    Automaton a("b");
    BitChainBuilder b(a);
    b.appendRangeField(16, 300, 1000);
    b.finishReport(1);
    NfaEngine e(a);
    for (int v : {0, 128, 299, 300, 301, 512, 999, 1000, 1001, 65535}) {
        auto r = e.simulate(expandToBits(
            {static_cast<uint8_t>(v >> 8),
             static_cast<uint8_t>(v & 0xff)}));
        EXPECT_EQ(r.reportCount > 0, v >= 300 && v <= 1000) << v;
    }
}

TEST(BitBuilder, RejectsNonByteAlignedReport)
{
    Automaton a("b");
    BitChainBuilder b(a);
    b.appendBit(1);
    EXPECT_EXIT(b.finishReport(1), testing::ExitedWithCode(1),
                "whole number of bytes");
}

TEST(BitBuilder, MergeBranchRequiresEqualLengths)
{
    Automaton a("b");
    BitChainBuilder x(a);
    x.appendByte(1);
    BitChainBuilder y(a);
    y.appendBit(1);
    EXPECT_EXIT(x.mergeBranch(y), testing::ExitedWithCode(1),
                "different bit lengths");
}

TEST(Stride, FixedPatternEquivalence)
{
    Automaton bit("b");
    ElementId ring = addAlignmentRing(bit);
    BitChainBuilder b(bit, ring);
    b.appendByte('P');
    b.appendByte('K');
    b.finishReport(3);

    Automaton strided = strideToBytes(bit);
    std::vector<uint8_t> in = {'x', 'P', 'K', 'P', 'P', 'K', 0};
    EXPECT_EQ(byteReports(strided, in), bitReportsAsBytes(bit, in));
    EXPECT_EQ(byteReports(strided, in), (std::set<uint64_t>{2, 5}));
}

TEST(Stride, RejectsAllInputStarts)
{
    Automaton bit("b");
    bit.addSte(CharSet::range(0, 1), StartType::kAllInput, true, 1);
    EXPECT_EXIT(strideToBytes(bit), testing::ExitedWithCode(1),
                "lowered");
}

TEST(Stride, RejectsNonBitSymbols)
{
    Automaton bit("b");
    bit.addSte(CharSet::single('a'), StartType::kStartOfData, true, 1);
    EXPECT_EXIT(strideToBytes(bit), testing::ExitedWithCode(1),
                "non-bit");
}

/** Property: random bit patterns (fixed/wildcard/range fields) are
 *  equivalent before and after striding, on random byte inputs with
 *  planted matches. */
class StrideProperty : public testing::TestWithParam<int>
{
};

TEST_P(StrideProperty, RandomBitPatternEquivalence)
{
    Rng rng(11000 + GetParam());
    Automaton bit("b");
    ElementId ring = addAlignmentRing(bit);
    BitChainBuilder b(bit, ring);

    // 2-4 bytes of mixed field kinds, byte-aligned by construction.
    const int nbytes = 2 + static_cast<int>(rng.nextBelow(3));
    std::vector<uint8_t> witness; // one byte string that must match
    for (int i = 0; i < nbytes; ++i) {
        switch (rng.nextBelow(3)) {
          case 0: {
            const uint8_t v = rng.nextByte();
            b.appendByte(v);
            witness.push_back(v);
            break;
          }
          case 1: {
            const uint8_t v = rng.nextByte();
            const uint8_t care = rng.nextBool() ? 0xF0 : 0x0F;
            b.appendMaskedByte(v, care);
            witness.push_back(static_cast<uint8_t>(
                (v & care) | (rng.nextByte() & ~care)));
            break;
          }
          default: {
            uint8_t lo = rng.nextByte(), hi = rng.nextByte();
            if (lo > hi)
                std::swap(lo, hi);
            b.appendRangeField(8, lo, hi);
            witness.push_back(static_cast<uint8_t>(
                lo + rng.nextBelow(hi - lo + 1)));
            break;
          }
        }
    }
    b.finishReport(1);
    Automaton strided = strideToBytes(bit);
    strided.validate();

    for (int t = 0; t < 4; ++t) {
        std::vector<uint8_t> in = Rng(rng.next()).randomBytes(40);
        // Plant the witness at a deterministic offset.
        const size_t at = 8 + rng.nextBelow(16);
        std::copy(witness.begin(), witness.end(), in.begin() + at);
        auto expected = bitReportsAsBytes(bit, in);
        ASSERT_EQ(byteReports(strided, in), expected);
        ASSERT_TRUE(expected.count(at + witness.size() - 1))
            << "witness did not match";
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, StrideProperty, testing::Range(0, 30));

TEST(ZipHeader, AcceptsValidTimestampsRejectsInvalid)
{
    Automaton bit = zoo::buildZipHeaderBitAutomaton();
    Automaton strided = strideToBytes(bit);
    NfaEngine e(strided);

    auto header = [](unsigned method, unsigned h, unsigned m,
                     unsigned s2, unsigned y, unsigned mo,
                     unsigned d) {
        std::vector<uint8_t> v = {'P', 'K', 3, 4, 20, 0, 0, 0};
        v.push_back(static_cast<uint8_t>(method & 0xff));
        v.push_back(0);
        const uint16_t t =
            static_cast<uint16_t>((h << 11) | (m << 5) | s2);
        v.push_back(static_cast<uint8_t>(t & 0xff));
        v.push_back(static_cast<uint8_t>(t >> 8));
        const uint16_t dt =
            static_cast<uint16_t>((y << 9) | (mo << 5) | d);
        v.push_back(static_cast<uint8_t>(dt & 0xff));
        v.push_back(static_cast<uint8_t>(dt >> 8));
        return v;
    };

    // Valid: deflate, 13:37:58, 2004-06-15.
    EXPECT_EQ(e.simulate(header(8, 13, 37, 29, 24, 6, 15)).reportCount,
              1u);
    // Valid: stored, midnight, 1980-01-01.
    EXPECT_EQ(e.simulate(header(0, 0, 0, 0, 0, 1, 1)).reportCount, 1u);
    // Invalid seconds (s2 = 30 means 60 seconds).
    EXPECT_EQ(e.simulate(header(8, 13, 37, 30, 24, 6, 15)).reportCount,
              0u);
    // Invalid hours (24).
    EXPECT_EQ(e.simulate(header(8, 24, 0, 0, 24, 6, 15)).reportCount,
              0u);
    // Invalid minutes (60 = m[5:3]=7, m[2:0]=4).
    EXPECT_EQ(e.simulate(header(8, 1, 60, 0, 24, 6, 15)).reportCount,
              0u);
    // Valid boundary minutes (59).
    EXPECT_EQ(e.simulate(header(8, 1, 59, 0, 24, 6, 15)).reportCount,
              1u);
    // Invalid month (13) and day (0).
    EXPECT_EQ(e.simulate(header(8, 1, 1, 1, 24, 13, 15)).reportCount,
              0u);
    EXPECT_EQ(e.simulate(header(8, 1, 1, 1, 24, 6, 0)).reportCount,
              0u);
    // Invalid compression method (3).
    EXPECT_EQ(e.simulate(header(3, 1, 1, 1, 24, 6, 15)).reportCount,
              0u);
}

} // namespace
} // namespace azoo
