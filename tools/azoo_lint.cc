/**
 * @file
 * azoo_lint: static verifier / linter for automata files.
 *
 * Usage:
 *   azoo_lint --in x.anml[,y.mnrl,...]
 *             [--no-lint] [--disable rule1,rule2]
 *             [--fanout N] [--padding N] [--widened]
 *             [--max N] [--quiet] [--list-rules]
 *
 * Loads ANML/MNRL/azml automata (format by extension), runs the
 * analysis::verify() invariant checks plus (unless --no-lint) the
 * soft lint rules, prints a diagnostics table per file, and exits
 * nonzero when any error-severity finding exists — the CI contract.
 */

#include <iostream>

#include "analysis/analysis.hh"
#include "core/anml.hh"
#include "core/mnrl.hh"
#include "core/serialize.hh"
#include "tool_common.hh"
#include "util/cli.hh"
#include "util/logging.hh"
#include "util/strings.hh"
#include "util/table.hh"

using namespace azoo;

namespace {

void
listRules()
{
    Table t({"Id", "Rule", "Severity", "Description"});
    for (size_t i = 0; i < analysis::kRuleCount; ++i) {
        const auto r = static_cast<analysis::Rule>(i);
        t.addRow({analysis::ruleId(r), analysis::ruleName(r),
                  analysis::severityName(analysis::defaultSeverity(r)),
                  analysis::ruleDescription(r)});
    }
    t.print(std::cout);
}

analysis::Rule
ruleByName(const std::string &name)
{
    for (size_t i = 0; i < analysis::kRuleCount; ++i) {
        const auto r = static_cast<analysis::Rule>(i);
        if (name == analysis::ruleName(r) ||
            name == analysis::ruleId(r)) {
            return r;
        }
    }
    tool::usageError(cat("azoo_lint: unknown rule '", name,
                         "' (see --list-rules)"));
}

std::string
elementCell(ElementId id)
{
    return id == kNoElement ? "-" : std::to_string(id);
}

} // namespace

int
main(int argc, char **argv)
{
    Cli cli(argc, argv,
            {"in", "no-lint", "disable", "fanout", "padding", "widened",
             "max", "quiet", "list-rules"});

    if (cli.getBool("list-rules")) {
        listRules();
        return 0;
    }

    const std::string in = cli.get("in");
    if (in.empty())
        tool::usageError(
            "azoo_lint: --in is required (or use --list-rules)");

    analysis::Options opts;
    opts.fanoutThreshold =
        static_cast<uint32_t>(cli.getInt("fanout", 256));
    opts.paddingSymbol =
        static_cast<int>(cli.getInt("padding", -1));
    opts.widenedLayout = cli.getBool("widened");
    for (const std::string &name : split(cli.get("disable", ""), ',')) {
        if (!name.empty())
            opts.disable(ruleByName(name));
    }

    const bool run_lint = !cli.getBool("no-lint");
    const bool quiet = cli.getBool("quiet");
    const size_t max_printed =
        static_cast<size_t>(cli.getInt("max", 50));

    size_t total_errors = 0;
    for (const std::string &path : split(in, ',')) {
        if (path.empty())
            continue;
        Automaton a = tool::loadAnyOrExit(path);
        analysis::Report rep = run_lint ? analysis::analyze(a, opts)
                                        : analysis::verify(a, opts);
        total_errors += rep.errors;

        std::cout << path << ": automaton '" << a.name() << "', "
                  << a.size() << " elements: " << rep.summary()
                  << "\n";
        if (quiet || rep.diags.empty())
            continue;

        Table t({"Severity", "Rule", "Element", "Message"});
        size_t printed = 0;
        for (const auto &d : rep.diags) {
            if (printed++ >= max_printed)
                break;
            t.addRow({analysis::severityName(d.severity),
                      cat(analysis::ruleId(d.rule), " ",
                          analysis::ruleName(d.rule)),
                      elementCell(d.element), d.message});
        }
        t.print(std::cout);
        if (rep.diags.size() > max_printed) {
            std::cout << "  ... " << rep.diags.size() - max_printed
                      << " more (raise --max to see them)\n";
        }
    }
    return total_errors == 0 ? 0 : 1;
}
