/**
 * @file
 * PCRE-subset regular expression parser.
 *
 * Supported syntax (the subset pcre2mnrl accepts and the AutomataZoo
 * generators emit): literals, '.', escapes (\n \t \r \f \v \0 \xNN,
 * \d \D \w \W \s \S, punctuation escapes), character classes with
 * ranges and negation, grouping '(...)' and '(?:...)', alternation
 * '|', quantifiers '*' '+' '?' '{n}' '{n,}' '{n,m}' (lazy variants
 * accepted, same language), and anchors '^' (leading) / '$'
 * (trailing). Back-references are rejected, as in the paper ("e.g.
 * pcre2mnrl does not support back references").
 */

#ifndef AZOO_REGEX_PARSER_HH
#define AZOO_REGEX_PARSER_HH

#include <string>

#include "regex/ast.hh"

namespace azoo {

/**
 * Parse a pattern. fatal() on syntax errors or unsupported
 * constructs, so malformed generated rules fail loudly.
 */
Regex parseRegex(const std::string &pattern,
                 const RegexFlags &flags = RegexFlags());

/**
 * Non-fatal variant: returns false and fills @p error instead of
 * exiting. Used by rule-compilation loops that skip unsupported
 * rules (the paper's Snort/ClamAV flow does exactly this).
 */
bool tryParseRegex(const std::string &pattern, const RegexFlags &flags,
                   Regex &out, std::string &error);

} // namespace azoo

#endif // AZOO_REGEX_PARSER_HH
