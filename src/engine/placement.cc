#include "engine/placement.hh"

#include <cstdlib>
#include <queue>

namespace azoo {

FabricParams
FabricParams::hierarchicalD480()
{
    FabricParams f;
    f.name = "hierarchical (D480-like)";
    f.blockSize = 256;
    f.trackBudget = 16;
    f.neighborFree = false;
    f.deviceBlocks = 192;
    return f;
}

FabricParams
FabricParams::islandStyle()
{
    FabricParams f;
    f.name = "island-style (FPGA-like)";
    f.blockSize = 256;
    f.trackBudget = 64;
    f.neighborFree = true;
    f.deviceBlocks = 192;
    return f;
}

PlacementResult
placeAndRoute(const Automaton &a, const FabricParams &fabric)
{
    const size_t n = a.size();
    PlacementResult res;
    res.states = n;
    if (n == 0) {
        res.devicesNeeded = 0;
        return res;
    }

    // Undirected adjacency (activation + reset edges).
    std::vector<std::vector<ElementId>> adj(n);
    for (ElementId i = 0; i < n; ++i) {
        auto link = [&](ElementId t) {
            if (t != i) {
                adj[i].push_back(t);
                adj[t].push_back(i);
            }
        };
        for (auto t : a.element(i).out)
            link(t);
        for (auto t : a.element(i).resetOut)
            link(t);
    }

    // Placement order: BFS within each component, components in id
    // order -- the locality heuristic real packers start from.
    std::vector<ElementId> order;
    order.reserve(n);
    std::vector<uint8_t> seen(n, 0);
    for (ElementId root = 0; root < n; ++root) {
        if (seen[root])
            continue;
        std::queue<ElementId> q;
        q.push(root);
        seen[root] = 1;
        while (!q.empty()) {
            ElementId v = q.front();
            q.pop();
            order.push_back(v);
            for (auto u : adj[v]) {
                if (!seen[u]) {
                    seen[u] = 1;
                    q.push(u);
                }
            }
        }
    }

    constexpr uint32_t kUnplaced = ~uint32_t(0);
    std::vector<uint32_t> block_of(n, kUnplaced);
    std::vector<uint32_t> cap_used, tracks_used;
    auto new_block = [&]() -> uint32_t {
        cap_used.push_back(0);
        tracks_used.push_back(0);
        return static_cast<uint32_t>(cap_used.size() - 1);
    };
    uint32_t cb = new_block();

    auto is_free_hop = [&](uint32_t b1, uint32_t b2) {
        if (b1 == b2)
            return true;
        return fabric.neighborFree &&
            (b1 > b2 ? b1 - b2 : b2 - b1) <= 1;
    };

    // Tracks the candidate block would newly consume if v landed
    // there (edges to already-placed neighbors only; edges to
    // unplaced neighbors are charged when those are placed).
    auto track_delta = [&](ElementId v, uint32_t b) {
        uint32_t delta = 0;
        for (auto u : adj[v]) {
            if (block_of[u] != kUnplaced &&
                !is_free_hop(block_of[u], b)) {
                ++delta;
            }
        }
        return delta;
    };

    for (auto v : order) {
        if (cap_used[cb] >= fabric.blockSize)
            cb = new_block();
        if (tracks_used[cb] + track_delta(v, cb) >
            fabric.trackBudget) {
            // Close this block for routing reasons and retry on a
            // fresh one (which may still overflow if v alone exceeds
            // the budget; that is recorded below).
            cb = new_block();
        }
        block_of[v] = cb;
        ++cap_used[cb];
        for (auto u : adj[v]) {
            const uint32_t ub = block_of[u];
            if (ub == kUnplaced || is_free_hop(ub, cb))
                continue;
            ++tracks_used[cb];
            ++tracks_used[ub];
            ++res.crossBlockEdges;
        }
    }
    res.blocksUsed = cap_used.size();
    for (auto t : tracks_used) {
        if (t > fabric.trackBudget)
            res.overflowEdges += t - fabric.trackBudget;
    }
    res.utilization = static_cast<double>(n) /
        (static_cast<double>(res.blocksUsed) * fabric.blockSize);
    res.devicesNeeded =
        (res.blocksUsed + fabric.deviceBlocks - 1) /
        fabric.deviceBlocks;
    return res;
}

} // namespace azoo
