/**
 * @file
 * libFuzzer harness for the azoo_serve frame decoder. The contract
 * under fuzz: arbitrary socket bytes, delivered in arbitrary split
 * points, either decode into well-formed frames or set a sticky
 * parse error — never an abort, never an out-of-bounds payload view,
 * never progress after an error. REPLY payloads are additionally fed
 * through Reply::decode, whose strict length checks are the server's
 * only defence against a malicious peer.
 */

#include <cstddef>
#include <cstdint>
#include <vector>

#include "serve/protocol.hh"

extern "C" int
LLVMFuzzerTestOneInput(const uint8_t *data, size_t size)
{
    using namespace azoo::serve;

    // First byte seeds the split pattern so one corpus exercises many
    // reassembly schedules.
    const size_t stride = size ? (data[0] % 7) + 1 : 1;

    FrameReader reader;
    size_t pos = 0;
    // Stable-payload contract: a decoded Frame stays valid across
    // later append()/compact() calls. Hold the previous frame and
    // its expected bytes across iterations; any divergence means the
    // payload view was silently invalidated (the PR-10 ASan bug).
    Frame held;
    bool haveHeld = false;
    std::vector<uint8_t> heldCopy;
    while (pos < size) {
        const size_t n = std::min(stride, size - pos);
        reader.append(data + pos, n);
        pos += n;
        if (haveHeld) {
            if (held.len != heldCopy.size())
                __builtin_trap();
            for (size_t i = 0; i < heldCopy.size(); ++i)
                if (held.payload[i] != heldCopy[i])
                    __builtin_trap();
        }
        Frame f;
        while (reader.next(f)) {
            // A decoded frame must view inside the buffered bytes.
            if (f.len > kMaxFramePayload)
                __builtin_trap();
            if (f.len && f.payload == nullptr)
                __builtin_trap();
            // Exercise the payload decoder on reply-typed frames.
            if (f.type == FrameType::kReply)
                (void)Reply::decode(f.payload, f.len);
            held = f;
            heldCopy.assign(f.payload, f.payload + f.len);
            haveHeld = true;
        }
        if (!reader.error().ok()) {
            // Sticky: no frame may decode after an error.
            reader.append(data, std::min<size_t>(size, 64));
            if (reader.next(f))
                __builtin_trap();
            return 0;
        }
        reader.compact();
    }
    (void)Reply::decode(data, size); // raw bytes as a REPLY payload
    return 0;
}
