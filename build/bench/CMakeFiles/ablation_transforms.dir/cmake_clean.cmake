file(REMOVE_RECURSE
  "CMakeFiles/ablation_transforms.dir/ablation_transforms.cc.o"
  "CMakeFiles/ablation_transforms.dir/ablation_transforms.cc.o.d"
  "ablation_transforms"
  "ablation_transforms.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_transforms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
