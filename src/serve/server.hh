/**
 * @file
 * The azoo_serve daemon core: a poll-driven event loop multiplexing
 * framed match sessions onto the engine stack.
 *
 * One thread (run()) owns every socket and all connection state; a
 * ThreadPool executes engine feeds. The split keeps the loop
 * responsive under heavy matching: the loop never touches an
 * automaton, workers never touch a socket. They meet at exactly two
 * synchronization points — a per-connection bounded inbox (loop
 * appends DATA payloads, worker drains them through the engine
 * session) and a completion queue drained through a wake pipe (worker
 * finishes, loop builds the REPLY).
 *
 * Robustness posture, in the order things go wrong:
 *
 *  - Admission (SessionManager): a connection costs nothing until its
 *    OPEN; at OPEN the server either admits within its session/memory
 *    budget, sheds a strictly-lower-priority session (explicit
 *    kShedOverload reply), or rejects with the exhausted resource in
 *    the status. Memory use is bounded by construction, so overload
 *    degrades service instead of OOMing the process.
 *
 *  - Backpressure: each session may buffer at most queueBudgetBytes
 *    of un-processed input; past that the loop stops polling the
 *    socket for reads until the worker catches up, pushing the queue
 *    into the kernel and eventually stalling the client's writes.
 *    A fast client cannot inflate the daemon.
 *
 *  - QoS (RunGuard): per-session deadline / symbol budget. A guarded
 *    stop is not an error: the session replies kTruncated with the
 *    stop reason and an exact result over the consumed prefix. Idle
 *    sessions (admitted, then silent) hit the same deadline from the
 *    loop's timer.
 *
 *  - Drain (SIGTERM / requestShutdown()): stop accepting, reject new
 *    OPENs with kRejectedDrain, let in-flight sessions finish until
 *    the drain deadline, then force kShedDrain replies with
 *    results-so-far. Every admitted session gets a REPLY; run()
 *    returns 0.
 *
 *  - Chaos (azoo::fault): kAcceptFail, kSessionDrop, kSlowConsumer
 *    are checked on the corresponding paths so the serve tests can
 *    inject connection-level misbehaviour deterministically.
 *
 * Hot ruleset reload (SIGHUP, a RELOAD control frame, or
 * requestReload()): the new ruleset is loaded, verified, and its
 * session pool built on a worker thread; the loop then publishes it
 * between poll rounds — new admissions pin the new generation while
 * in-flight sessions finish on the one they opened under, which is
 * destroyed when its last pin drops. No admitted session is ever
 * dropped or migrated by a swap. docs/ARCHITECTURE.md "Hot ruleset
 * reload" states the ordering guarantees.
 *
 * The failure taxonomy (who promised what when a session ends each
 * way) is documented in docs/ARCHITECTURE.md "Running as a service".
 */

#ifndef AZOO_SERVE_SERVER_HH
#define AZOO_SERVE_SERVER_HH

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/automaton.hh"
#include "engine/run_guard.hh"
#include "serve/protocol.hh"
#include "serve/ruleset.hh"
#include "serve/session_manager.hh"
#include "util/net.hh"
#include "util/thread_pool.hh"

namespace azoo {

class ThreadPool;

namespace serve {

/** Server configuration (tool flags map 1:1 onto these). */
struct ServerOptions {
    /** Listen address: "unix:PATH" or "tcp:PORT" (0 picks a port). */
    std::string addr = "tcp:0";
    /** Engine backing match sessions. */
    ServeEngine engine = ServeEngine::kNfa;
    PlanOptions plan;
    ServeLimits limits;
    /** Engine worker threads (0 = hardware concurrency). */
    size_t workers = 0;
    /** Drain grace: in-flight sessions get this long after a drain
     *  request before being shed with kShedDrain. */
    int64_t drainDeadlineMs = 5000;
    /** After a REPLY (or to flush one), how long to keep the socket
     *  around for the peer to read it / finish sending. */
    int64_t lingerMs = 2000;
    /** Handshake deadline: a connection that sends no OPEN within
     *  this long of accept() is closed (0 = none). Bounds the fds and
     *  FrameReader memory a never-opening client can pin. */
    int64_t openTimeoutMs = 5000;
    /** Cap on accepted-but-not-yet-admitted connections; accepts past
     *  it are closed immediately (admission applies only at OPEN, so
     *  this is the pre-admission bound). */
    size_t maxPendingConns = 256;
    /** Listener poll pause after an accept() error (EMFILE etc.), so
     *  a hot POLLIN on an un-acceptable listener cannot busy-spin the
     *  loop. */
    int64_t acceptBackoffMs = 100;
    /** Periodic obs snapshot destination ("" = none). */
    std::string metricsFile;
    int64_t metricsIntervalMs = 1000;
    /** Ruleset file a SIGHUP-triggered reload re-reads ("" disables
     *  the signal trigger; the tool defaults it to the startup
     *  ruleset path). */
    std::string reloadPath;
    /** Accept RELOAD control frames from clients. Off, a RELOAD is
     *  answered kServerError/kUnsupported (SIGHUP still works). */
    bool remoteReload = true;
};

/** Event-loop counters for tests and the tool's exit report. Reads
 *  are only meaningful after run() returns (loop-thread owned). */
struct ServerStats {
    uint64_t accepted = 0;       ///< connections accepted
    uint64_t admitted = 0;       ///< sessions past admission
    uint64_t rejected = 0;       ///< OPENs rejected (busy/memory/drain)
    uint64_t shed = 0;           ///< admitted sessions shed
    uint64_t replied = 0;        ///< REPLY frames fully sent
    uint64_t protocolErrors = 0; ///< kProtocolError replies
    uint64_t aborted = 0;        ///< client vanished before its REPLY
    uint64_t acceptErrors = 0;   ///< accept() failures (incl. injected)
    uint64_t sessionDrops = 0;   ///< injected kSessionDrop closes
    uint64_t pendingClosed = 0;  ///< accepts closed at maxPendingConns
    uint64_t openTimeouts = 0;   ///< conns closed awaiting OPEN
    uint64_t reloads = 0;        ///< generations published after start
    uint64_t reloadFailures = 0; ///< reloads rejected (load/verify)
    size_t peakQueueBytes = 0;   ///< max per-session inbox high-water
    uint64_t drainNs = 0;        ///< drain-request-to-exit wall time
};

/**
 * One server instance. Lifecycle: construct, start() (binds; port()
 * becomes valid), run() on any thread (blocks until drained),
 * requestShutdown() from any thread (or SIGTERM via
 * net::installTermHandlers() in the tool).
 */
class Server
{
  public:
    /** Serve @p gen (epoch 1 of this instance; must not be null).
     *  The generation's spec should match @p opts — the tool builds
     *  both from the same flags. */
    Server(RulesetGeneration gen, ServerOptions opts);

    /** Compatibility: wrap @p a (copied) in an inline generation. */
    Server(const Automaton &a, ServerOptions opts);

    ~Server();

    Server(const Server &) = delete;
    Server &operator=(const Server &) = delete;

    /** Bind + listen. */
    Status start();

    /**
     * Event loop; blocks until a drain completes. Returns the
     * process exit code: 0 after a clean drain (even when sessions
     * were shed — they got explicit replies), non-zero only on a
     * fatal setup/loop error.
     */
    int run();

    /** Begin a graceful drain (thread-safe, idempotent). */
    void requestShutdown();

    /** Queue a hot reload from @p path (thread-safe; processed on
     *  the loop like a SIGHUP trigger). Reloads are serialized:
     *  concurrent requests apply one at a time in arrival order. */
    void requestReload(std::string path);

    /** Bound TCP port (after start(); 0 for unix sockets). */
    uint16_t port() const { return port_; }

    /** Effective admission capacity (after construction). */
    size_t capacity() const { return manager_.capacity(); }

    /** Epoch of the currently published generation (thread-safe). */
    uint64_t epoch() const { return registry_.epoch(); }

    /** Generations still alive: the current one plus any retired
     *  generations pinned by in-flight sessions (thread-safe; the
     *  no-pin-leak tests poll this back down to 1). */
    size_t liveGenerations() const
    {
        return registry_.liveGenerations();
    }

    const ServerStats &stats() const { return stats_; }

  private:
    using Clock = std::chrono::steady_clock;
    using TimePoint = Clock::time_point;

    /** Connection / session state machine. */
    enum class ConnState : uint8_t {
        kAwaitOpen, ///< accepted; no OPEN yet
        kStreaming, ///< admitted; DATA flowing
        kReplying,  ///< REPLY queued; flushing outbox
        kLingering, ///< REPLY sent; draining reads until EOF/deadline
        kDead,      ///< to be reaped this loop round
    };

    struct Conn {
        net::Fd fd;
        uint64_t id = 0;
        ConnState state = ConnState::kAwaitOpen;
        uint8_t priority = 0;

        FrameReader reader;
        bool finReceived = false;
        bool sawEof = false;
        /** A RELOAD control frame is pending its REPLY. */
        bool reloadRequested = false;

        /** Inbox: DATA payload chunks queued for the worker. The
         *  mutex guards chunks/inboxBytes/busy; everything else is
         *  loop-thread-only. */
        std::mutex mutex;
        std::deque<std::vector<uint8_t>> chunks;
        size_t inboxBytes = 0;
        bool busy = false;     ///< a worker task owns session right now
        bool finQueued = false; ///< worker should finalize after drain

        bool paused = false; ///< POLLIN de-armed (backpressure)

        /** Generation pin, taken at OPEN: the pool (and through it
         *  the CompiledRuleset) this session runs against. Declared
         *  before session so the session dies first. Sessions are
         *  always released to *this* pool, never the server's
         *  current one — pooled sessions cannot cross rulesets. */
        std::shared_ptr<MatchSessionPool> pool;
        std::unique_ptr<MatchSession> session;
        RunGuard guard;

        /** Forced outcome (shed/drain/idle-deadline); kOk = none. */
        ReplyStatus forced = ReplyStatus::kOk;
        ErrorCode forcedDetail = ErrorCode::kOk;
        bool replyQueued = false;

        std::vector<uint8_t> outbox;
        size_t outPos = 0;

        TimePoint deadlineAt{};   ///< session QoS deadline (0 = none)
        TimePoint lingerUntil{};  ///< kReplying/kLingering cutoff
    };

    // Event-loop steps (loop thread only).
    void acceptAll();
    void onReadable(Conn &c);
    void onWritable(Conn &c);
    void handleFrame(Conn &c, const Frame &f);
    void handleOpen(Conn &c, const Frame &f);
    void handleReload(Conn &c, const Frame &f);
    void startNextReload();
    void finishReload();
    void maybeDispatch(Conn &c);
    void onWorkerDone(Conn &c);
    void queueReply(Conn &c, ReplyStatus status, ErrorCode detail);
    void finishSession(Conn &c);
    void protocolError(Conn &c);
    void closeConn(Conn &c, bool abortive);
    void shedSession(Conn &c, ReplyStatus status);
    void beginDrain();
    void enforceTimers(TimePoint now);
    int pollTimeoutMs(TimePoint now) const;
    void writeMetrics();
    void updateGauges();

    ServerOptions opts_;
    /** Publication point for generations; epoch() and
     *  liveGenerations() read it from any thread. */
    RulesetRegistry registry_;
    /** The pool new admissions draw from; swapped wholesale (on the
     *  loop thread) by a reload. Old pools die when their last
     *  pinning Conn is reaped. */
    std::shared_ptr<MatchSessionPool> pool_;
    SessionManager manager_;
    std::unique_ptr<ThreadPool> workers_;

    /** Worker-to-loop result of one reload job. */
    struct ReloadResult {
        Status st;
        RulesetGeneration gen;
        std::shared_ptr<MatchSessionPool> pool;
        uint64_t connId = 0; ///< control conn awaiting the REPLY (0 = none)
        TimePoint started{};
    };

    // Reload pipeline. The queue + in-flight flag are loop-thread
    // only; the result slot and external-request list are the two
    // cross-thread hand-offs (both wake the loop through the pipe).
    std::deque<std::pair<uint64_t, std::string>> reloadQueue_;
    bool reloadInFlight_ = false;
    std::mutex reloadMutex_;
    std::unique_ptr<ReloadResult> reloadResult_;
    std::mutex externalReloadMutex_;
    std::vector<std::string> externalReloads_;

    net::Fd listener_;
    uint16_t port_ = 0;

    /** Worker-to-loop completion channel. */
    net::Fd wakeRead_, wakeWrite_;
    std::mutex completionsMutex_;
    std::vector<uint64_t> completions_;

    std::atomic<bool> shutdownRequested_{false};
    bool draining_ = false;
    TimePoint drainStarted_{};
    TimePoint drainDeadlineAt_{};
    TimePoint hardStopAt_{};
    TimePoint nextMetricsAt_{};
    TimePoint acceptBackoffUntil_{};

    std::vector<std::unique_ptr<Conn>> conns_;
    uint64_t nextId_ = 1;

    ServerStats stats_;
};

} // namespace serve
} // namespace azoo

#endif // AZOO_SERVE_SERVER_HH
