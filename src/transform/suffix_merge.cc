#include "transform/suffix_merge.hh"

#include <algorithm>
#include <unordered_map>

#include "analysis/analysis.hh"
#include "obs/obs.hh"

namespace azoo {

namespace {

struct Key {
    std::vector<uint64_t> v;
    bool operator==(const Key &o) const { return v == o.v; }
};

struct KeyHash {
    size_t
    operator()(const Key &k) const
    {
        uint64_t h = 0x517cc1b727220a95ULL;
        for (auto x : k.v)
            h ^= x + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
        return static_cast<size_t>(h);
    }
};

} // namespace

MergeResult
suffixMerge(const Automaton &a, int max_rounds)
{
    const size_t n = a.size();
    MergeResult res;
    res.statesBefore = n;

    std::vector<ElementId> rep(n);
    for (ElementId i = 0; i < n; ++i)
        rep[i] = i;

    size_t prev_classes = n + 1;
    for (int round = 0; round < max_rounds; ++round) {
        std::unordered_map<Key, ElementId, KeyHash> canon;
        canon.reserve(n);
        std::vector<ElementId> next_rep(n);
        std::vector<uint64_t> scratch;

        for (ElementId i = 0; i < n; ++i) {
            const Element &e = a.element(i);
            Key key;
            key.v.reserve(8 + e.out.size() + e.resetOut.size());
            key.v.push_back(static_cast<uint64_t>(e.kind));
            key.v.push_back(static_cast<uint64_t>(e.start));
            key.v.push_back(e.reporting ? e.reportCode + 1 : 0);
            key.v.push_back(e.symbols.hash());
            key.v.push_back(e.target);
            key.v.push_back(static_cast<uint64_t>(e.mode));

            auto add_succs = [&](const std::vector<ElementId> &ts,
                                 uint64_t tag) {
                scratch.clear();
                for (auto t : ts)
                    scratch.push_back(rep[t]);
                std::sort(scratch.begin(), scratch.end());
                scratch.erase(
                    std::unique(scratch.begin(), scratch.end()),
                    scratch.end());
                key.v.push_back(tag ^ scratch.size());
                key.v.insert(key.v.end(), scratch.begin(),
                             scratch.end());
            };
            add_succs(e.out, 0xCCCCULL << 32);
            add_succs(e.resetOut, 0xDDDDULL << 32);

            auto [it, inserted] = canon.try_emplace(std::move(key), i);
            next_rep[i] = it->second;
        }

        const size_t classes = canon.size();
        rep = std::move(next_rep);
        if (classes == prev_classes)
            break;
        prev_classes = classes;
    }

    // Emit: canonical elements keep identity; edges are the union of
    // member edges (identical by construction, but predecessors
    // union naturally because every member's in-edges retarget the
    // canonical element).
    std::vector<ElementId> new_id(n, kNoElement);
    Automaton out(a.name());
    for (ElementId i = 0; i < n; ++i) {
        if (rep[i] != i)
            continue;
        const Element &e = a.element(i);
        if (e.kind == ElementKind::kSte) {
            new_id[i] = out.addSte(e.symbols, e.start, e.reporting,
                                   e.reportCode);
        } else {
            new_id[i] = out.addCounter(e.target, e.mode, e.reporting,
                                       e.reportCode);
        }
    }
    res.remap.assign(n, kNoElement);
    for (ElementId i = 0; i < n; ++i)
        res.remap[i] = new_id[rep[i]];

    std::vector<std::vector<ElementId>> outs(out.size()), routs(
        out.size());
    for (ElementId i = 0; i < n; ++i) {
        const ElementId src = res.remap[i];
        for (auto t : a.element(i).out)
            outs[src].push_back(res.remap[t]);
        for (auto t : a.element(i).resetOut)
            routs[src].push_back(res.remap[t]);
    }
    for (ElementId i = 0; i < out.size(); ++i) {
        auto dedup = [](std::vector<ElementId> &v) {
            std::sort(v.begin(), v.end());
            v.erase(std::unique(v.begin(), v.end()), v.end());
        };
        dedup(outs[i]);
        dedup(routs[i]);
        for (auto t : outs[i])
            out.addEdge(i, t);
        for (auto t : routs[i])
            out.addResetEdge(i, t);
    }

    res.statesAfter = out.size();
    res.automaton = std::move(out);
    analysis::postVerify(res.automaton, "suffixMerge");
    obs::noteTransform("suffix_merge", res.statesBefore,
                       res.statesAfter);
    return res;
}

MergeResult
fullMerge(const Automaton &a, int max_rounds)
{
    MergeResult acc = prefixMerge(a);
    for (int round = 0; round < max_rounds; ++round) {
        MergeResult s = suffixMerge(acc.automaton);
        bool shrunk = s.statesAfter < s.statesBefore;
        for (auto &m : acc.remap) {
            if (m != kNoElement)
                m = s.remap[m];
        }
        acc.automaton = std::move(s.automaton);
        MergeResult p = prefixMerge(acc.automaton);
        shrunk |= p.statesAfter < p.statesBefore;
        for (auto &m : acc.remap) {
            if (m != kNoElement)
                m = p.remap[m];
        }
        acc.automaton = std::move(p.automaton);
        if (!shrunk)
            break;
    }
    acc.statesAfter = acc.automaton.size();
    obs::noteTransform("full_merge", acc.statesBefore,
                       acc.statesAfter);
    return acc;
}

} // namespace azoo
