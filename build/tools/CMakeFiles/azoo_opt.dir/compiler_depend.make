# Empty compiler generated dependencies file for azoo_opt.
# This may be replaced when dependencies are built.
