/**
 * @file
 * StreamingSession tests: chunked feeding is equivalent to monolithic
 * simulation for arbitrary chunkings, including single-byte feeds,
 * counter state across boundaries, and reset semantics.
 */

#include <gtest/gtest.h>

#include "core/builder.hh"
#include "engine/nfa_engine.hh"
#include "engine/streaming.hh"
#include "regex/glushkov.hh"
#include "regex/parser.hh"
#include "util/rng.hh"
#include "zoo/seqmatch.hh"

namespace azoo {
namespace {

std::vector<uint8_t>
bytes(const std::string &s)
{
    return {s.begin(), s.end()};
}

TEST(Streaming, MatchStraddlesChunkBoundary)
{
    Automaton a("t");
    addLiteral(a, "abcd", StartType::kAllInput, true, 1);
    StreamingSession sess(a);
    sess.feed(bytes("xxab"));
    EXPECT_EQ(sess.results().reportCount, 0u);
    sess.feed(bytes("cdxx"));
    ASSERT_EQ(sess.results().reportCount, 1u);
    EXPECT_EQ(sess.results().reports[0].offset, 5u);
}

TEST(Streaming, OffsetsAreAbsolute)
{
    Automaton a("t");
    addLiteral(a, "z", StartType::kAllInput, true, 1);
    StreamingSession sess(a);
    for (int chunk = 0; chunk < 5; ++chunk)
        sess.feed(bytes("xyz"));
    ASSERT_EQ(sess.results().reportCount, 5u);
    EXPECT_EQ(sess.results().reports[4].offset, 14u);
    EXPECT_EQ(sess.offset(), 15u);
}

TEST(Streaming, StartOfDataOnlyAtStreamStart)
{
    Automaton a("t");
    addLiteral(a, "ab", StartType::kStartOfData, true, 1);
    StreamingSession sess(a);
    sess.feed(bytes("a"));
    sess.feed(bytes("b"));
    EXPECT_EQ(sess.results().reportCount, 1u);
    sess.feed(bytes("ab")); // not at stream start anymore
    EXPECT_EQ(sess.results().reportCount, 1u);
    sess.reset();
    sess.feed(bytes("ab"));
    EXPECT_EQ(sess.results().reportCount, 1u);
}

TEST(Streaming, CounterStatePersistsAcrossChunks)
{
    Automaton a("t");
    ElementId s = a.addSte(CharSet::single('a'), StartType::kAllInput);
    ElementId c = a.addCounter(3, CounterMode::kLatch, true, 9);
    a.addEdge(s, c);
    StreamingSession sess(a);
    sess.feed(bytes("a"));
    sess.feed(bytes("a"));
    EXPECT_EQ(sess.results().reportCount, 0u);
    sess.feed(bytes("a"));
    EXPECT_EQ(sess.results().reportCount, 1u);
}

/** Property: any chunking equals monolithic simulation. */
class StreamingProperty : public testing::TestWithParam<int>
{
};

TEST_P(StreamingProperty, ChunkingInvariance)
{
    Rng rng(31000 + GetParam());
    static const char *kPatterns[] = {"ab+c", "a(b|c)d", "x[ab]{2,4}y",
                                      "a.b"};
    Automaton a("t");
    for (int i = 0; i < 3; ++i) {
        appendRegex(
            a,
            parseRegexOrDie(kPatterns[rng.nextBelow(std::size(kPatterns))]),
            static_cast<uint32_t>(i));
    }
    // Mix in a counter component.
    zoo::SeqMatchParams sp;
    sp.itemsetSize = 2;
    sp.filterWidth = 3;
    sp.withCounters = true;
    sp.supportThreshold = 2;
    zoo::appendSeqFilter(a, {'b', 'x'}, sp, 7);

    const std::string text =
        rng.randomString(200, "abcxy") + "\xff" + "bx\xff" + "bx\xff" +
        rng.randomString(50, "abcxy");
    const auto in = bytes(text);

    NfaEngine mono(a);
    auto expect = mono.simulate(in);

    StreamingSession sess(a);
    size_t pos = 0;
    while (pos < in.size()) {
        const size_t chunk =
            std::min<size_t>(1 + rng.nextBelow(17), in.size() - pos);
        sess.feed(in.data() + pos, chunk);
        pos += chunk;
    }
    EXPECT_EQ(sess.results().reportCount, expect.reportCount);
    EXPECT_EQ(sess.results().reports, expect.reports);
    EXPECT_EQ(sess.results().totalEnabled, expect.totalEnabled);

    // Byte-at-a-time feeding too.
    StreamingSession one(a);
    for (auto b : in)
        one.feed(&b, 1);
    EXPECT_EQ(one.results().reports, expect.reports);
}

INSTANTIATE_TEST_SUITE_P(Seeds, StreamingProperty,
                         testing::Range(0, 20));

} // namespace
} // namespace azoo
