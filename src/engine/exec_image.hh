/**
 * @file
 * The NFA execution image: the flat tables NfaEngine actually reads
 * per input symbol, separated from the engine so they can live in
 * two places — compiled on the heap from an `Automaton`, or borrowed
 * zero-copy from the `EXEC` section of an mmap-ed `.azoox` artifact
 * (docs/ARTIFACT_FORMAT.md).
 *
 * `NfaExecImage` is a pure view (spans; no ownership). `NfaExecTables`
 * owns the same arrays as vectors and is the single compiler from
 * `Automaton` to image — both `NfaEngine(const Automaton &)` and the
 * artifact writer go through `NfaExecTables::compile`, which is what
 * guarantees an artifact round-trip is bit-identical to in-memory
 * compilation: the bytes written are the bytes the engine would have
 * built.
 */

#ifndef AZOO_ENGINE_EXEC_IMAGE_HH
#define AZOO_ENGINE_EXEC_IMAGE_HH

#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "core/automaton.hh"

namespace azoo {

/** An STE label as four 64-bit words (CharSet's storage layout). */
using LabelWords = std::array<uint64_t, 4>;

/** Counter-mode byte values as stored in exec tables; identical to
 *  the CounterMode wire encoding. */
inline constexpr uint8_t kExecModeLatch = 0;
inline constexpr uint8_t kExecModePulse = 1;
inline constexpr uint8_t kExecModeRollover = 2;

static_assert(static_cast<uint8_t>(CounterMode::kLatch) ==
                  kExecModeLatch &&
              static_cast<uint8_t>(CounterMode::kPulse) ==
                  kExecModePulse &&
              static_cast<uint8_t>(CounterMode::kRollover) ==
                  kExecModeRollover);

/**
 * Borrowed view of compiled interpreter tables over n elements. All
 * spans point into storage the caller keeps alive (an NfaExecTables
 * or a loaded artifact). Per-element arrays have exactly n entries;
 * `edgeBegin`/`resetBegin` have n + 1; `maiBegin` has 257 (the
 * per-input-byte index of matching all-input states, in CSR form).
 */
struct NfaExecImage {
    size_t elementCount = 0;

    std::span<const uint32_t> edgeBegin;     ///< CSR offsets, n + 1
    std::span<const ElementId> edgeTarget;   ///< activation targets
    std::span<const uint32_t> resetBegin;    ///< CSR offsets, n + 1
    std::span<const ElementId> resetTarget;  ///< reset targets
    std::span<const LabelWords> label;       ///< match labels, n
    std::span<const uint8_t> reporting;      ///< 0/1 per element
    std::span<const uint8_t> isCounter;      ///< 0/1 per element
    std::span<const uint8_t> isAllInput;     ///< 0/1 per element
    std::span<const uint8_t> counterMode;    ///< kExecMode*, n
    std::span<const uint32_t> reportCode;    ///< n
    std::span<const uint32_t> counterTarget; ///< threshold, n
    std::span<const ElementId> allInput;     ///< all-input state ids
    std::span<const ElementId> startOfData;  ///< start-of-data ids
    std::span<const ElementId> counters;     ///< counter element ids
    std::span<const uint32_t> maiBegin;      ///< 257 CSR offsets
    std::span<const ElementId> maiTarget;    ///< all-input ids per byte
};

/**
 * Owned storage for an execution image. `compile()` flattens an
 * automaton exactly the way NfaEngine's constructor historically did
 * (CSR adjacency, hot-field copies, the 256-way all-input index) and
 * additionally flattens the counter settle-phase fields (target,
 * mode) so simulation never touches the Element table.
 */
struct NfaExecTables {
    size_t elementCount = 0;

    std::vector<uint32_t> edgeBegin;
    std::vector<ElementId> edgeTarget;
    std::vector<uint32_t> resetBegin;
    std::vector<ElementId> resetTarget;
    std::vector<LabelWords> label;
    std::vector<uint8_t> reporting;
    std::vector<uint8_t> isCounter;
    std::vector<uint8_t> isAllInput;
    std::vector<uint8_t> counterMode;
    std::vector<uint32_t> reportCode;
    std::vector<uint32_t> counterTarget;
    std::vector<ElementId> allInput;
    std::vector<ElementId> startOfData;
    std::vector<ElementId> counters;
    std::vector<uint32_t> maiBegin;
    std::vector<ElementId> maiTarget;

    /** Flatten @p a. panic()s on counter->counter edges (the zoo
     *  never generates them; the interpreter has no settle cascade). */
    static NfaExecTables compile(const Automaton &a);

    /** A view over this storage (valid while *this is alive and
     *  unmodified). */
    NfaExecImage view() const;
};

} // namespace azoo

#endif // AZOO_ENGINE_EXEC_IMAGE_HH
