#include "serve/ruleset.hh"

#include "analysis/analysis.hh"
#include "artifact/artifact.hh"
#include "core/anml.hh"
#include "core/mnrl.hh"
#include "core/serialize.hh"
#include "util/logging.hh"

namespace azoo {
namespace serve {

namespace {

bool
endsWith(const std::string &s, const char *suffix)
{
    const size_t n = std::char_traits<char>::length(suffix);
    return s.size() >= n && s.compare(s.size() - n, n, suffix) == 0;
}

} // namespace

Expected<RulesetGeneration>
compileRuleset(Automaton a, const RulesetSpec &spec, uint64_t epoch,
               std::string source,
               std::vector<analysis::ComponentProfile> profiles)
{
    // The postVerify() producer contract, minus the debug panic: a
    // daemon rejecting a hot reload must return a status, never die
    // on attacker-reachable input.
    const analysis::Report rep = analysis::verify(a);
    if (!rep.clean())
        return Status(ErrorCode::kInvalidArgument,
                      cat("ruleset ", source,
                          " failed verification: ", rep.summary()));
    if (spec.engine == ServeEngine::kPlanned && profiles.empty())
        profiles = analysis::inferProfiles(a, spec.plan.infer);
    auto cr = std::make_shared<CompiledRuleset>();
    cr->epoch = epoch;
    cr->source = std::move(source);
    cr->spec = spec;
    cr->automaton = std::move(a);
    cr->profiles = std::move(profiles);
    return RulesetGeneration(std::move(cr));
}

Expected<RulesetGeneration>
loadRulesetFile(const std::string &path, const RulesetSpec &spec,
                uint64_t epoch)
{
    Automaton a;
    std::vector<analysis::ComponentProfile> profiles;
    if (endsWith(path, ".azoox")) {
        Expected<artifact::LoadedArtifact> la =
            artifact::loadArtifact(path);
        if (!la.ok())
            return la.status();
        Expected<Automaton> m = la->materialize(spec.limits);
        if (!m.ok())
            return m.status();
        a = std::move(*std::move(m));
        // A PROF section is inference already paid for at compile
        // time; reuse it instead of re-profiling on every reload.
        if (spec.engine == ServeEngine::kPlanned && la->hasProfiles())
            profiles = la->componentProfiles();
    } else {
        // Same extension dispatch as the tools' load-any helper
        // (tools/tool_common.hh), reimplemented here because that
        // header is tool-only.
        Expected<Automaton> m = endsWith(path, ".mnrl")
            ? loadMnrl(path, spec.limits)
            : endsWith(path, ".anml") ? loadAnml(path, spec.limits)
                                      : loadAzml(path, spec.limits);
        if (!m.ok())
            return m.status();
        a = std::move(*std::move(m));
    }
    return compileRuleset(std::move(a), spec, epoch, path,
                          std::move(profiles));
}

RulesetGeneration
makeInlineRuleset(Automaton a, const RulesetSpec &spec, uint64_t epoch,
                  std::string source)
{
    auto cr = std::make_shared<CompiledRuleset>();
    cr->epoch = epoch;
    cr->source = std::move(source);
    cr->spec = spec;
    cr->automaton = std::move(a);
    if (spec.engine == ServeEngine::kPlanned)
        cr->profiles =
            analysis::inferProfiles(cr->automaton, spec.plan.infer);
    return cr;
}

RulesetRegistry::RulesetRegistry(RulesetGeneration initial)
{
    if (initial)
        publish(std::move(initial));
}

RulesetGeneration
RulesetRegistry::current() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return current_;
}

uint64_t
RulesetRegistry::epoch() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return current_ ? current_->epoch : 0;
}

void
RulesetRegistry::publish(RulesetGeneration gen)
{
    if (!gen)
        panic("RulesetRegistry: publish(nullptr)");
    std::lock_guard<std::mutex> lock(mutex_);
    if (current_ && gen->epoch <= current_->epoch)
        panic(cat("RulesetRegistry: epoch ", gen->epoch,
                  " does not advance ", current_->epoch));
    all_.push_back(gen);
    current_ = std::move(gen);
}

size_t
RulesetRegistry::liveGenerations() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    size_t live = 0;
    for (size_t i = 0; i < all_.size();) {
        if (all_[i].expired()) {
            all_.erase(all_.begin() + static_cast<ptrdiff_t>(i));
        } else {
            ++live;
            ++i;
        }
    }
    return live;
}

} // namespace serve
} // namespace azoo
