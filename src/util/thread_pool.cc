#include "util/thread_pool.hh"

#include <chrono>
#include <latch>

#include "obs/obs.hh"

namespace azoo {

size_t
ThreadPool::hardwareThreads()
{
    const unsigned n = std::thread::hardware_concurrency();
    return n ? n : 1;
}

ThreadPool::ThreadPool(size_t threads)
{
    if (threads == 0)
        threads = hardwareThreads();
    queues_.reserve(threads);
    for (size_t i = 0; i < threads; ++i)
        queues_.push_back(std::make_unique<WorkerQueue>());
    workers_.reserve(threads);
    for (size_t i = 0; i < threads; ++i)
        workers_.emplace_back([this, i] { workerLoop(i); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lk(sleepMutex_);
        stop_.store(true);
    }
    wake_.notify_all();
    for (auto &w : workers_)
        w.join();
}

void
ThreadPool::post(std::function<void()> task)
{
    const size_t q =
        nextQueue_.fetch_add(1, std::memory_order_relaxed) %
        queues_.size();
    {
        std::lock_guard<std::mutex> lk(queues_[q]->mutex);
        queues_[q]->tasks.push_back(std::move(task));
    }
    pending_.fetch_add(1);
    wake_.notify_one();
}

bool
ThreadPool::tryPopOwn(size_t self, std::function<void()> &out)
{
    WorkerQueue &q = *queues_[self];
    std::lock_guard<std::mutex> lk(q.mutex);
    if (q.tasks.empty())
        return false;
    out = std::move(q.tasks.back());
    q.tasks.pop_back();
    pending_.fetch_sub(1);
    return true;
}

bool
ThreadPool::trySteal(size_t self, std::function<void()> &out)
{
    const size_t n = queues_.size();
    for (size_t d = 1; d < n; ++d) {
        WorkerQueue &q = *queues_[(self + d) % n];
        std::lock_guard<std::mutex> lk(q.mutex);
        if (q.tasks.empty())
            continue;
        // Steal the oldest task: it is the least likely to be hot in
        // the victim's cache.
        out = std::move(q.tasks.front());
        q.tasks.pop_front();
        pending_.fetch_sub(1);
        return true;
    }
    return false;
}

void
ThreadPool::workerLoop(size_t self)
{
    std::function<void()> task;
    for (;;) {
        if (tryPopOwn(self, task) || trySteal(self, task)) {
            task();
            task = nullptr;
            continue;
        }
        std::unique_lock<std::mutex> lk(sleepMutex_);
        wake_.wait(lk, [this] {
            return stop_.load() || pending_.load() > 0;
        });
        if (stop_.load() && pending_.load() == 0)
            return;
    }
}

void
ThreadPool::parallelFor(size_t n,
                        const std::function<void(size_t)> &body)
{
    parallelFor(n, [&body](size_t, size_t i) { body(i); });
}

void
ThreadPool::parallelFor(size_t n,
                        const std::function<void(size_t, size_t)> &body)
{
    if (n == 0)
        return;
    if (size() == 1 || n == 1) {
        // One worker computes exactly like N=1 measurement semantics
        // demand, but going through the queue for a single-item loop
        // would only add latency. Exceptions propagate directly.
        for (size_t i = 0; i < n; ++i)
            body(0, i);
        return;
    }
    const size_t helpers = std::min(size(), n);
    std::atomic<size_t> index{0};
    // A body exception must not escape a pool thread (std::terminate):
    // the first one is captured here and rethrown on the calling
    // thread after the barrier; remaining iterations are abandoned
    // (helpers stop claiming indices), already-running ones finish.
    std::atomic<bool> failed{false};
    std::exception_ptr firstError;
    std::mutex errorMutex;
    std::latch done(static_cast<ptrdiff_t>(helpers));
    // Scheduling delay between posting a helper and it starting: a
    // saturated pool shows up here before it shows up in wall time.
    obs::Histogram *queueWait = nullptr;
    std::chrono::steady_clock::time_point posted{};
    if (obs::kEnabled) {
        static obs::Histogram &h =
            obs::Registry::global().histogram("pool.queue_wait_us");
        queueWait = &h;
        posted = std::chrono::steady_clock::now();
    }
    for (size_t h = 0; h < helpers; ++h) {
        post([&, h] {
            if (queueWait) {
                const auto d =
                    std::chrono::steady_clock::now() - posted;
                queueWait->record(static_cast<uint64_t>(
                    std::chrono::duration_cast<
                        std::chrono::microseconds>(d)
                        .count()));
            }
            for (;;) {
                if (failed.load(std::memory_order_relaxed))
                    break;
                const size_t i = index.fetch_add(1);
                if (i >= n)
                    break;
                try {
                    body(h, i);
                } catch (...) {
                    std::lock_guard<std::mutex> lk(errorMutex);
                    if (!firstError)
                        firstError = std::current_exception();
                    failed.store(true);
                }
            }
            done.count_down();
        });
    }
    done.wait();
    if (failed.load())
        std::rethrow_exception(firstError);
}

} // namespace azoo
