#include "transform/stride.hh"

#include <map>
#include <unordered_map>
#include <vector>

#include "analysis/analysis.hh"
#include "obs/obs.hh"
#include "util/logging.hh"

namespace azoo {

namespace {

/** Byte values whose bit at position (7 - level) equals b. */
CharSet
levelMask(int level, int b)
{
    CharSet cs;
    const int bit = 7 - level;
    for (int v = 0; v < 256; ++v) {
        if (((v >> bit) & 1) == b)
            cs.set(static_cast<uint8_t>(v));
    }
    return cs;
}

} // namespace

Automaton
strideToBytes(const Automaton &bit)
{
    const size_t n = bit.size();
    const CharSet bit_alphabet = CharSet::range(0, 1);

    for (ElementId i = 0; i < n; ++i) {
        const Element &e = bit.element(i);
        if (e.kind != ElementKind::kSte)
            fatal("stride: counters are not supported in bit automata");
        if (!(e.symbols & ~bit_alphabet).empty())
            fatal(cat("stride: state ", i, " of '", bit.name(),
                      "' has non-bit symbols ", e.symbols.str()));
        if (e.start == StartType::kAllInput)
            fatal("stride: all-input starts must be lowered with "
                  "bits::addAlignmentRing() before striding");
    }

    // Precompute the per-level bit masks.
    CharSet mask[8][2];
    for (int k = 0; k < 8; ++k) {
        mask[k][0] = levelMask(k, 0);
        mask[k][1] = levelMask(k, 1);
    }

    // Virtual root: id n. Classical edges u -> v are labeled by v's
    // bit label, so adjacency is just the homogeneous out lists plus
    // root -> start states.
    const uint32_t root = static_cast<uint32_t>(n);
    // Scratch kept outside the lambda (a function-local static here
    // would be shared mutable state across concurrent stride calls).
    std::vector<ElementId> root_succ;
    auto successors = [&](uint32_t u) -> const std::vector<ElementId> * {
        if (u == root) {
            root_succ.clear();
            for (ElementId i = 0; i < n; ++i) {
                if (bit.element(i).start == StartType::kStartOfData)
                    root_succ.push_back(i);
            }
            return &root_succ;
        }
        return &bit.element(u).out;
    };

    // Strided edges per boundary source: target -> byte set.
    std::map<uint32_t, std::map<uint32_t, CharSet>> strided;
    std::vector<uint32_t> frontier = {root};
    std::map<uint32_t, bool> visited = {{root, true}};

    while (!frontier.empty()) {
        uint32_t u = frontier.back();
        frontier.pop_back();

        // DP over 8 bit levels: which states are reachable from u and
        // with which byte prefixes.
        std::map<uint32_t, CharSet> cur;
        cur[u] = CharSet::all();
        for (int k = 0; k < 8; ++k) {
            std::map<uint32_t, CharSet> next;
            for (const auto &[x, bs] : cur) {
                for (ElementId v : *successors(x)) {
                    const CharSet &lbl = bit.element(v).symbols;
                    CharSet nb;
                    if (lbl.test(0))
                        nb |= bs & mask[k][0];
                    if (lbl.test(1))
                        nb |= bs & mask[k][1];
                    if (nb.empty())
                        continue;
                    if (k < 7 && bit.element(v).reporting) {
                        fatal(cat("stride: reporting state ", v,
                                  " of '", bit.name(),
                                  "' is reachable mid-byte (bit offset "
                                  "%8 == ", k, "); bit patterns must "
                                  "be whole bytes"));
                    }
                    next[v] |= nb;
                }
            }
            cur = std::move(next);
            if (cur.empty())
                break;
        }

        for (const auto &[v, bs] : cur) {
            strided[u][v] |= bs;
            if (!visited[v]) {
                visited[v] = true;
                frontier.push_back(v);
            }
        }
    }

    // Homogenize: one byte-STE per (boundary state, incoming byte set).
    // Collect the distinct incoming byte sets per target.
    std::map<uint32_t, std::vector<CharSet>> variants;
    auto variant_index = [&](uint32_t v, const CharSet &cs) -> size_t {
        auto &list = variants[v];
        for (size_t i = 0; i < list.size(); ++i) {
            if (list[i] == cs)
                return i;
        }
        list.push_back(cs);
        return list.size() - 1;
    };

    for (const auto &[u, targets] : strided) {
        for (const auto &[v, cs] : targets)
            variant_index(v, cs);
    }

    Automaton out(bit.name() + ".strided");
    std::map<std::pair<uint32_t, size_t>, ElementId> ste_of;
    for (const auto &[v, list] : variants) {
        for (size_t i = 0; i < list.size(); ++i) {
            const Element &e = bit.element(v);
            ElementId id = out.addSte(list[i], StartType::kNone,
                                      e.reporting, e.reportCode);
            ste_of[{v, i}] = id;
        }
    }

    // Edges: every copy of u connects to (v, cs); root edges set the
    // start type instead.
    for (const auto &[u, targets] : strided) {
        for (const auto &[v, cs] : targets) {
            ElementId tgt = ste_of.at({v, variant_index(v, cs)});
            if (u == root) {
                out.element(tgt).start = StartType::kStartOfData;
            } else {
                for (size_t i = 0; i < variants[u].size(); ++i)
                    out.addEdge(ste_of.at({u, i}), tgt);
            }
        }
    }

    out.validate();
    analysis::postVerify(out, "stride");
    obs::noteTransform("stride", bit.size(), out.size());
    return out;
}

} // namespace azoo
