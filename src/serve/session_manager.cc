#include "serve/session_manager.hh"

#include "engine/parallel_runner.hh"
#include "util/logging.hh"

namespace azoo {
namespace serve {

namespace {

/** MatchSession over the enabled-set interpreter. */
class NfaMatchSession final : public MatchSession
{
  public:
    explicit NfaMatchSession(const Automaton &a) : s_(a) {}

    size_t
    feed(const uint8_t *data, size_t len) override
    {
        return s_.feed(data, len);
    }
    bool stopped() const override { return s_.stopped(); }
    SimResult
    results() const override
    {
        SimResult r = s_.results();
        canonicalizeReports(r);
        return r;
    }
    uint64_t offset() const override { return s_.offset(); }
    void reset() override { s_.reset(); }
    SimOptions &options() override { return s_.options; }

  private:
    StreamingSession s_;
};

/** MatchSession over the profile-routed planned engine. */
class PlannedMatchSession final : public MatchSession
{
  public:
    PlannedMatchSession(const Automaton &a,
                        const std::vector<analysis::ComponentProfile>
                            &profiles,
                        const PlanOptions &popts)
        : s_(a, profiles, popts)
    {
    }

    size_t
    feed(const uint8_t *data, size_t len) override
    {
        return s_.feed(data, len);
    }
    bool stopped() const override { return s_.stopped(); }
    SimResult results() const override { return s_.results(); }
    uint64_t offset() const override { return s_.offset(); }
    void reset() override { s_.reset(); }
    SimOptions &options() override { return s_.options; }

  private:
    PlannedSession s_;
};

/**
 * Resident-size estimate for one engine session. The flattened
 * per-element tables dominate (label bitmaps at 32 B/element plus
 * edge/flag arrays); the constant covers worklists, the report
 * vector's record cap, and allocator slack. An estimate is enough:
 * admission only needs the right order of magnitude to keep
 * capacity * footprint under the budget.
 */
size_t
estimateBytes(const Automaton &a, size_t maxReportRecords)
{
    size_t edges = 0;
    for (const Element &e : a.elements())
        edges += e.out.size() + e.resetOut.size();
    return a.size() * 64 + edges * 8 + maxReportRecords * sizeof(Report)
        + (64u << 10);
}

} // namespace

MatchSessionPool::MatchSessionPool(const Automaton &a, ServeEngine engine,
                                   const PlanOptions &popts,
                                   size_t maxReportRecords)
    : a_(a), engine_(engine), popts_(popts)
{
    if (engine_ == ServeEngine::kPlanned)
        profiles_ = analysis::inferProfiles(a_, popts_.infer);
    sessionBytes_ = estimateBytes(a_, maxReportRecords);
}

std::unique_ptr<MatchSession>
MatchSessionPool::acquire()
{
    if (!free_.empty()) {
        std::unique_ptr<MatchSession> s = std::move(free_.back());
        free_.pop_back();
        // Fresh options for the new client; release() already reset
        // the engine state.
        s->options() = SimOptions();
        return s;
    }
    ++created_;
    if (engine_ == ServeEngine::kPlanned)
        return std::make_unique<PlannedMatchSession>(a_, profiles_,
                                                     popts_);
    return std::make_unique<NfaMatchSession>(a_);
}

void
MatchSessionPool::release(std::unique_ptr<MatchSession> s)
{
    if (!s)
        return;
    s->reset();
    free_.push_back(std::move(s));
}

SessionManager::SessionManager(const ServeLimits &limits,
                               size_t perSessionBytes)
    : limits_(limits)
{
    capacity_ = limits_.maxSessions;
    if (limits_.memoryBudgetBytes > 0 && perSessionBytes > 0) {
        // Each admitted session may buffer up to the queue budget on
        // top of its engine footprint.
        const size_t per = perSessionBytes + limits_.queueBudgetBytes;
        size_t byMemory = limits_.memoryBudgetBytes / per;
        if (byMemory == 0)
            byMemory = 1; // a budget too small for one session still
                          // serves one at a time rather than nothing
        if (byMemory < capacity_)
            capacity_ = byMemory;
    }
    if (capacity_ == 0)
        capacity_ = 1;
}

AdmitDecision
SessionManager::tryAdmit(uint8_t priority, bool draining) const
{
    AdmitDecision d;
    if (draining) {
        d.reject = ReplyStatus::kRejectedDrain;
        return d;
    }
    if (sessions_.size() < capacity_) {
        d.admitted = true;
        return d;
    }
    // At capacity: shed the lowest-priority admitted session iff it is
    // strictly less important than the newcomer.
    uint64_t victim = kNoSession;
    uint8_t victimPrio = 255;
    for (const auto &[id, prio] : sessions_) {
        if (prio < victimPrio || victim == kNoSession) {
            victim = id;
            victimPrio = prio;
        }
    }
    if (victim != kNoSession && victimPrio < priority) {
        d.admitted = true;
        d.shedVictim = victim;
        return d;
    }
    d.reject = capacity_ < limits_.maxSessions
        ? ReplyStatus::kRejectedMemory
        : ReplyStatus::kRejectedBusy;
    return d;
}

void
SessionManager::admit(uint64_t id, uint8_t priority)
{
    sessions_[id] = priority;
}

void
SessionManager::retire(uint64_t id)
{
    sessions_.erase(id);
}

} // namespace serve
} // namespace azoo
