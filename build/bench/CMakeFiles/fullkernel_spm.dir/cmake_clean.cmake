file(REMOVE_RECURSE
  "CMakeFiles/fullkernel_spm.dir/fullkernel_spm.cc.o"
  "CMakeFiles/fullkernel_spm.dir/fullkernel_spm.cc.o.d"
  "fullkernel_spm"
  "fullkernel_spm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fullkernel_spm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
