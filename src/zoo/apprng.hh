/**
 * @file
 * AP PRNG benchmark (Wadden et al., ICCD 2016): Markov chains
 * realized as automata and driven by uniform random bytes, turning
 * probabilistic transitions into high-throughput pseudo-random
 * report streams.
 *
 * Each chain is a ring of groups; each group holds one state per die
 * face, labeled with an equal slice of the byte space, and every face
 * fans out to the next group's faces. Exactly one face per group is
 * active at a time, and one designated face reports, emitting a
 * Bernoulli(1/N) bit stream per chain. 4-sided chains use 5 groups
 * (20 states), 8-sided chains 9 groups (72 states), matching
 * Table I's per-subgraph sizes.
 */

#ifndef AZOO_ZOO_APPRNG_HH
#define AZOO_ZOO_APPRNG_HH

#include "zoo/benchmark.hh"

namespace azoo {
namespace zoo {

/** Append one Markov-chain ring; @return states appended. */
size_t appendPrngChain(Automaton &a, int sides, int groups,
                       uint32_t code);

/** Build the 4- or 8-sided benchmark with scaled(1000) chains. */
Benchmark makeApPrngBenchmark(const ZooConfig &cfg, int sides);

} // namespace zoo
} // namespace azoo

#endif // AZOO_ZOO_APPRNG_HH
