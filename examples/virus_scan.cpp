/**
 * @file
 * Virus scanning example: build the ClamAV benchmark (hex-signature
 * database -> regexes -> automata), scan a synthetic disk image, and
 * attribute the hits -- the paper's motivating use-case where the
 * benchmark actually detects planted virus fragments.
 *
 * Usage: virus_scan [--scale S] [--input N] [--seed X]
 */

#include <iostream>

#include "core/stats.hh"
#include "engine/nfa_engine.hh"
#include "util/cli.hh"
#include "util/table.hh"
#include "util/timer.hh"
#include "zoo/clamav.hh"

int
main(int argc, char **argv)
{
    using namespace azoo;

    Cli cli(argc, argv, {"scale", "input", "seed"});
    zoo::ZooConfig cfg;
    cfg.scale = cli.getDouble("scale", 0.02);
    cfg.inputBytes = static_cast<size_t>(
        cli.getInt("input", 1 << 20));
    cfg.seed = static_cast<uint64_t>(cli.getInt("seed", 42));

    Timer build;
    zoo::Benchmark b = zoo::makeClamAvBenchmark(cfg);
    GraphStats s = computeStats(b.automaton);
    std::cout << "signature database: " << b.meta.at("signatures")
              << " signatures -> " << s.states << " states ("
              << Table::fixed(build.seconds(), 2) << "s to compile)\n";

    Timer scan;
    NfaEngine engine(b.automaton);
    SimOptions opts;
    opts.countByCode = true;
    SimResult r = engine.simulate(b.input, opts);
    const double mbps =
        b.input.size() / scan.seconds() / 1e6;

    std::cout << "scanned " << b.input.size() << " bytes in "
              << Table::fixed(scan.seconds(), 2) << "s ("
              << Table::fixed(mbps, 1) << " MB/s, avg active set "
              << Table::fixed(r.avgActiveSet(), 1) << ")\n\n";

    if (r.byCode.empty()) {
        std::cout << "no infections found.\n";
        return 0;
    }
    std::cout << "INFECTED: " << r.byCode.size()
              << " distinct signature(s) matched\n";
    for (const auto &[code, count] : r.byCode) {
        // First matching offset for this signature.
        uint64_t first = ~uint64_t(0);
        for (const auto &rep : r.reports) {
            if (rep.code == code) {
                first = rep.offset;
                break;
            }
        }
        std::cout << "  signature #" << code << ": " << count
                  << " hit(s), first ending at offset " << first
                  << "\n";
    }
    return 0;
}
