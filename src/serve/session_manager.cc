#include "serve/session_manager.hh"

#include "engine/parallel_runner.hh"
#include "serve/ruleset.hh"
#include "util/logging.hh"

namespace azoo {
namespace serve {

namespace {

/** MatchSession over the enabled-set interpreter. */
class NfaMatchSession final : public MatchSession
{
  public:
    explicit NfaMatchSession(const Automaton &a) : s_(a) {}

    size_t
    feed(const uint8_t *data, size_t len) override
    {
        return s_.feed(data, len);
    }
    bool stopped() const override { return s_.stopped(); }
    SimResult
    results() const override
    {
        SimResult r = s_.results();
        canonicalizeReports(r);
        return r;
    }
    uint64_t offset() const override { return s_.offset(); }
    void reset() override { s_.reset(); }
    SimOptions &options() override { return s_.options; }
    size_t
    footprintBytes() const override
    {
        return sizeof(*this) + s_.footprintBytes();
    }

  private:
    StreamingSession s_;
};

/** MatchSession over the profile-routed planned engine. */
class PlannedMatchSession final : public MatchSession
{
  public:
    PlannedMatchSession(const Automaton &a,
                        const std::vector<analysis::ComponentProfile>
                            &profiles,
                        const PlanOptions &popts)
        : s_(a, profiles, popts)
    {
    }

    size_t
    feed(const uint8_t *data, size_t len) override
    {
        return s_.feed(data, len);
    }
    bool stopped() const override { return s_.stopped(); }
    SimResult results() const override { return s_.results(); }
    uint64_t offset() const override { return s_.offset(); }
    void reset() override { s_.reset(); }
    SimOptions &options() override { return s_.options; }
    size_t
    footprintBytes() const override
    {
        return sizeof(*this) + s_.footprintBytes();
    }

  private:
    PlannedSession s_;
};

/**
 * Resident-size estimate for one engine session. For the interpreter
 * the flattened per-element tables dominate (label bitmaps at
 * 32 B/element plus edge/flag arrays); the constant covers worklists,
 * the report vector's record cap, and allocator slack. A planned
 * session additionally copies its components into sub-automata,
 * carries the prefilter's exec tables and literal-scanner tables
 * (the Wu-Manber shift + bucket arrays alone are 64 Ki entries
 * each), and keeps a rolling stream-window buffer — roughly another
 * automaton's worth of tables plus a fixed scanner term. An estimate
 * is enough: admission only needs the right order of magnitude to
 * keep capacity * footprint under the budget, and the session tests
 * hold it to within one order of a measured footprintBytes().
 */
size_t
estimateBytes(const Automaton &a, ServeEngine engine,
              size_t maxReportRecords)
{
    size_t edges = 0;
    for (const Element &e : a.elements())
        edges += e.out.size() + e.resetOut.size();
    size_t bytes = a.size() * 64 + edges * 8 +
        maxReportRecords * sizeof(Report) + (64u << 10);
    if (engine == ServeEngine::kPlanned) {
        // Sub-automaton copies (graph Elements are heavier than the
        // flattened tables) + exec image + scanner tables + window.
        bytes += a.size() * 160 + edges * 16 + (512u << 10);
    }
    return bytes;
}

} // namespace

MatchSessionPool::MatchSessionPool(
    std::shared_ptr<const CompiledRuleset> gen, size_t maxReportRecords)
    : gen_(std::move(gen))
{
    if (!gen_)
        panic("MatchSessionPool: null generation");
    engine_ = gen_->spec.engine;
    sessionBytes_ =
        estimateBytes(gen_->automaton, engine_, maxReportRecords);
}

MatchSessionPool::MatchSessionPool(const Automaton &a, ServeEngine engine,
                                   const PlanOptions &popts,
                                   size_t maxReportRecords)
    : MatchSessionPool(
          makeInlineRuleset(a, RulesetSpec{engine, popts, ParseLimits()}),
          maxReportRecords)
{
}

MatchSessionPool::~MatchSessionPool() = default;

uint64_t
MatchSessionPool::epoch() const
{
    return gen_->epoch;
}

std::unique_ptr<MatchSession>
MatchSessionPool::acquire()
{
    if (!free_.empty()) {
        std::unique_ptr<MatchSession> s = std::move(free_.back());
        free_.pop_back();
        // Fresh options for the new client; release() already reset
        // the engine state.
        s->options() = SimOptions();
        return s;
    }
    ++created_;
    if (engine_ == ServeEngine::kPlanned)
        return std::make_unique<PlannedMatchSession>(
            gen_->automaton, gen_->profiles, gen_->spec.plan);
    return std::make_unique<NfaMatchSession>(gen_->automaton);
}

void
MatchSessionPool::release(std::unique_ptr<MatchSession> s)
{
    if (!s)
        return;
    s->reset();
    free_.push_back(std::move(s));
}

SessionManager::SessionManager(const ServeLimits &limits,
                               size_t perSessionBytes)
    : limits_(limits)
{
    setPerSessionBytes(perSessionBytes);
}

void
SessionManager::setPerSessionBytes(size_t perSessionBytes)
{
    capacity_ = limits_.maxSessions;
    if (limits_.memoryBudgetBytes > 0 && perSessionBytes > 0) {
        // Each admitted session may buffer up to the queue budget on
        // top of its engine footprint.
        const size_t per = perSessionBytes + limits_.queueBudgetBytes;
        size_t byMemory = limits_.memoryBudgetBytes / per;
        if (byMemory == 0)
            byMemory = 1; // a budget too small for one session still
                          // serves one at a time rather than nothing
        if (byMemory < capacity_)
            capacity_ = byMemory;
    }
    if (capacity_ == 0)
        capacity_ = 1;
}

AdmitDecision
SessionManager::tryAdmit(uint8_t priority, bool draining) const
{
    AdmitDecision d;
    if (draining) {
        d.reject = ReplyStatus::kRejectedDrain;
        return d;
    }
    if (sessions_.size() < capacity_) {
        d.admitted = true;
        return d;
    }
    // At capacity: shed the lowest-priority admitted session iff it is
    // strictly less important than the newcomer.
    uint64_t victim = kNoSession;
    uint8_t victimPrio = 255;
    for (const auto &[id, prio] : sessions_) {
        if (prio < victimPrio || victim == kNoSession) {
            victim = id;
            victimPrio = prio;
        }
    }
    if (victim != kNoSession && victimPrio < priority) {
        d.admitted = true;
        d.shedVictim = victim;
        return d;
    }
    d.reject = capacity_ < limits_.maxSessions
        ? ReplyStatus::kRejectedMemory
        : ReplyStatus::kRejectedBusy;
    return d;
}

void
SessionManager::admit(uint64_t id, uint8_t priority)
{
    sessions_[id] = priority;
}

void
SessionManager::retire(uint64_t id)
{
    sessions_.erase(id);
}

} // namespace serve
} // namespace azoo
