/**
 * @file
 * Convenience construction helpers shared by the benchmark generators.
 *
 * Most AutomataZoo automata are unions of many small "filter"
 * subgraphs built from a handful of shapes: literal chains, labeled
 * chains, and self-looping star states. These helpers keep the
 * generators terse and uniform.
 */

#ifndef AZOO_CORE_BUILDER_HH
#define AZOO_CORE_BUILDER_HH

#include <string>
#include <vector>

#include "core/automaton.hh"

namespace azoo {

/**
 * Append a chain of STEs labeled by @p labels.
 *
 * The first state gets @p start; each state connects to the next; the
 * final state reports with @p report_code if @p report_last.
 *
 * @return id of the final state of the chain (kNoElement if labels is
 *         empty).
 */
ElementId addChain(Automaton &a, const std::vector<CharSet> &labels,
                   StartType start, bool report_last,
                   uint32_t report_code);

/**
 * Append a chain matching the exact byte string @p literal.
 * @return id of the final state.
 */
ElementId addLiteral(Automaton &a, const std::string &literal,
                     StartType start, bool report_last,
                     uint32_t report_code);

/**
 * Append a case-insensitive literal chain (ASCII letters match both
 * cases). @return id of the final state.
 */
ElementId addLiteralNocase(Automaton &a, const std::string &literal,
                           StartType start, bool report_last,
                           uint32_t report_code);

/**
 * Append a self-looping star state ("dot-star"): an all-input start
 * STE matching @p symbols with a self edge. Used as the spine of
 * unanchored searches over restricted alphabets.
 * @return the state id.
 */
ElementId addStarState(Automaton &a, const CharSet &symbols);

/** Labels for the exact byte string (helper for the above). */
std::vector<CharSet> literalLabels(const std::string &literal);

/** Labels matching the literal case-insensitively. */
std::vector<CharSet> nocaseLabels(const std::string &literal);

} // namespace azoo

#endif // AZOO_CORE_BUILDER_HH
