/**
 * @file
 * azoo_run: simulate an automaton file over an input file.
 *
 * The VASim-equivalent command-line driver: loads any supported
 * format, runs the chosen engine, and prints statistics and
 * (optionally) the report stream.
 *
 * Usage:
 *   azoo_run --automaton x.mnrl --input x.input
 *            [--engine nfa|multidfa|lazydfa] [--cache-bytes N]
 *            [--reports N] [--by-code]
 *            [--threads N] [--batch] [--chunk BYTES]
 *
 * Engines: nfa is the enabled-set interpreter; multidfa (alias: dfa)
 * determinizes each component eagerly; lazydfa runs subset
 * construction on the fly, memoizing transitions in a cache bounded
 * by --cache-bytes. All three produce identical reports.
 *
 * --threads N (N > 1) simulates with the parallel layer: by default
 * the automaton is sharded by connected components and all shards
 * scan the input concurrently (component-level parallelism). With
 * --batch, --input is a comma-separated list of files, each an
 * independent stream fanned out across the pool (stream-level
 * parallelism); --chunk feeds each stream through a StreamingSession
 * in chunks of the given size instead of one monolithic pass. Either
 * way the reports are byte-identical to a serial run (canonical
 * order). Parallel paths take --engine nfa or lazydfa.
 */

#include <fstream>
#include <iostream>

#include "core/anml.hh"
#include "core/mnrl.hh"
#include "core/serialize.hh"
#include "core/stats.hh"
#include "engine/lazy_dfa_engine.hh"
#include "engine/multidfa_engine.hh"
#include "engine/nfa_engine.hh"
#include "engine/parallel_runner.hh"
#include "util/cli.hh"
#include "util/logging.hh"
#include "util/strings.hh"
#include "util/table.hh"
#include "util/timer.hh"

using namespace azoo;

namespace {

Automaton
loadAny(const std::string &path)
{
    if (path.size() >= 5 && path.rfind(".mnrl") == path.size() - 5)
        return loadMnrl(path);
    if (path.size() >= 5 && path.rfind(".anml") == path.size() - 5)
        return loadAnml(path);
    return loadAzml(path);
}

std::vector<uint8_t>
loadBytes(const std::string &path)
{
    std::ifstream f(path, std::ios::binary);
    if (!f)
        fatal(cat("cannot read ", path));
    return {std::istreambuf_iterator<char>(f),
            std::istreambuf_iterator<char>()};
}

} // namespace

int
main(int argc, char **argv)
{
    Cli cli(argc, argv,
            {"automaton", "input", "engine", "cache-bytes", "reports",
             "by-code", "threads", "batch", "chunk"});
    const std::string apath = cli.get("automaton");
    const std::string ipath = cli.get("input");
    if (apath.empty() || ipath.empty())
        fatal("azoo_run: --automaton and --input are required");

    Automaton a = loadAny(apath);
    GraphStats s = computeStats(a);
    std::cout << a.name() << ": " << s.states << " states, "
              << s.counters << " counters, " << s.edges << " edges, "
              << s.subgraphs << " subgraphs\n";

    SimOptions opts;
    opts.countByCode = cli.getBool("by-code");
    const auto show =
        static_cast<size_t>(cli.getInt("reports", 10));
    opts.reportRecordLimit = show;

    const std::string engine = cli.get("engine", "nfa");
    const bool lazy = engine == "lazydfa";
    const auto cacheBytes = static_cast<size_t>(
        cli.getInt("cache-bytes", 8 << 20));
    const auto threads =
        static_cast<size_t>(cli.getInt("threads", 1));
    const bool batch = cli.getBool("batch");
    if ((batch || threads > 1) && engine != "nfa" && !lazy)
        fatal("azoo_run: --batch/--threads require --engine nfa or "
              "lazydfa");

    if (batch) {
        std::vector<std::vector<uint8_t>> streams;
        for (const std::string &p : split(ipath, ',')) {
            if (p.empty())
                fatal("azoo_run: empty file name in --input list "
                      "(stray comma?)");
            streams.push_back(loadBytes(p));
        }
        ParallelOptions popts;
        popts.threads = threads;
        popts.chunkBytes =
            static_cast<size_t>(cli.getInt("chunk", 0));
        popts.engine = lazy ? ParallelEngine::kLazyDfa
                            : ParallelEngine::kNfa;
        popts.lazyCacheBytes = cacheBytes;
        popts.sim = opts;
        ParallelRunner runner(a, popts);
        Timer timer;
        BatchResult br = runner.runBatch(streams);
        const double secs = timer.seconds();
        for (size_t i = 0; i < br.perStream.size(); ++i) {
            std::cout << "stream " << i << ": "
                      << br.perStream[i].symbols << " bytes, "
                      << br.perStream[i].reportCount << " reports\n";
        }
        std::cout << br.totalSymbols << " bytes total in "
                  << Table::fixed(secs, 3) << "s ("
                  << Table::fixed(br.totalSymbols / secs / 1e6, 1)
                  << " MB/s aggregate, " << runner.threads()
                  << " threads), " << br.totalReports << " reports\n";
        if (lazy) {
            std::cout << "lazy cache: " << br.totalLazyFlushes
                      << " flushes across streams\n";
        }
        return 0;
    }

    auto input = loadBytes(ipath);
    Timer timer;
    SimResult r;
    if ((engine == "nfa" || lazy) && threads > 1) {
        ParallelOptions popts;
        popts.threads = threads;
        popts.engine = lazy ? ParallelEngine::kLazyDfa
                            : ParallelEngine::kNfa;
        popts.lazyCacheBytes = cacheBytes;
        popts.sim = opts;
        ParallelRunner runner(a, popts);
        std::cout << "sharded into " << runner.shardCount()
                  << " component groups on " << runner.threads()
                  << " threads\n";
        timer.reset();
        r = runner.simulateSharded(input);
    } else if (engine == "nfa") {
        NfaEngine e(a);
        r = e.simulate(input, opts);
    } else if (lazy) {
        LazyDfaOptions lo;
        lo.cacheBytes = cacheBytes;
        LazyDfaEngine e(a, lo);
        std::cout << "lazy DFA over " << e.lazyElements()
                  << " elements (" << e.symbolClasses()
                  << " symbol classes), " << e.fallbackComponents()
                  << " counter components interpreted\n";
        timer.reset();
        r = e.simulate(input, opts);
    } else if (engine == "dfa" || engine == "multidfa") {
        MultiDfaEngine e(a);
        std::cout << "compiled " << e.compiledComponents()
                  << " DFAs (" << e.totalDfaStates() << " states), "
                  << e.fallbackComponents() << " lazy-DFA fallbacks\n";
        timer.reset();
        r = e.simulate(input, opts);
    } else {
        fatal(cat("azoo_run: unknown engine '", engine,
                  "' (nfa|multidfa|lazydfa)"));
    }
    const double secs = timer.seconds();

    std::cout << input.size() << " bytes in "
              << Table::fixed(secs, 3) << "s ("
              << Table::fixed(input.size() / secs / 1e6, 1)
              << " MB/s), " << r.reportCount << " reports";
    if (engine == "nfa" || lazy) {
        std::cout << ", avg active set "
                  << Table::fixed(r.avgActiveSet(), 1);
    }
    std::cout << "\n";
    if (lazy) {
        std::cout << "lazy cache: " << r.lazyStates << " state-sets, "
                  << r.lazyFlushes << " flushes\n";
    }

    for (size_t i = 0; i < r.reports.size() && i < show; ++i) {
        std::cout << "  report offset=" << r.reports[i].offset
                  << " code=" << r.reports[i].code << "\n";
    }
    if (opts.countByCode) {
        std::cout << "reports by code:\n";
        for (const auto &[code, count] : r.byCode)
            std::cout << "  " << code << ": " << count << "\n";
    }
    return 0;
}
