file(REMOVE_RECURSE
  "CMakeFiles/network_ids.dir/network_ids.cpp.o"
  "CMakeFiles/network_ids.dir/network_ids.cpp.o.d"
  "network_ids"
  "network_ids.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/network_ids.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
