/**
 * @file
 * Common benchmark container and generation configuration shared by
 * all AutomataZoo generators.
 */

#ifndef AZOO_ZOO_BENCHMARK_HH
#define AZOO_ZOO_BENCHMARK_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "core/automaton.hh"

namespace azoo {
namespace zoo {

/**
 * Generation knobs common to all benchmarks.
 *
 * scale multiplies pattern/rule/filter counts relative to the paper's
 * full-size benchmarks: scale = 1.0 reproduces the paper's sizes,
 * while the default 0.1 keeps the full 24-benchmark suite buildable
 * and simulatable on a laptop in minutes. Input lengths are fixed by
 * inputBytes, not scaled, so dynamic statistics (active set, report
 * rate) stay comparable across scales.
 */
struct ZooConfig {
    uint64_t seed = 42;
    double scale = 0.1;
    size_t inputBytes = 1 << 20;

    /** Scaled count with a floor of 1. */
    size_t
    scaled(size_t full_count) const
    {
        const double v = static_cast<double>(full_count) * scale;
        return v < 1.0 ? 1 : static_cast<size_t>(v);
    }
};

/** One generated benchmark: automaton + standard input + metadata. */
struct Benchmark {
    std::string name;
    std::string domain;
    std::string inputDesc;
    Automaton automaton;
    std::vector<uint8_t> input;

    /** Symbols per kernel item (e.g. per classification); 0 if N/A. */
    double symbolsPerItem = 0;

    /** Paper Table I reference values at full scale (for the
     *  paper-vs-measured comparison; 0 = not applicable). */
    uint64_t paperStates = 0;
    double paperActiveSet = 0;
    double paperSizeVsAnmlzoo = 0;

    /** Free-form extra metadata surfaced by the benches. */
    std::map<std::string, std::string> meta;
};

/**
 * Generate benchmarks by registry name on a thread pool (0 = all
 * hardware threads). Every generator is a pure function of its
 * ZooConfig, so the result is deterministic and identical to calling
 * makeBenchmark() serially; results are returned in @p names order.
 * fatal() on unknown names, like makeBenchmark().
 */
std::vector<Benchmark> buildSuite(const std::vector<std::string> &names,
                                  const ZooConfig &cfg,
                                  size_t threads = 0);

} // namespace zoo
} // namespace azoo

#endif // AZOO_ZOO_BENCHMARK_HH
