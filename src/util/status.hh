/**
 * @file
 * Recoverable-error substrate: Status, Expected<T>, source locations,
 * and parse limits.
 *
 * The untrusted-input front ends (MNRL, ANML, azml, the regex parser)
 * report malformed data by returning these types instead of calling
 * fatal(), following the hs_compile contract (structured compile
 * errors with expression offsets) rather than the abort-on-bad-input
 * style the original generators could afford. Library code never
 * exits the process on bad *data*; fatal() remains for command-line
 * usage errors and panic() for internal invariants.
 *
 * Conventions:
 *  - A default-constructed Status is OK. Errors carry an ErrorCode,
 *    a human message, and (for parsers) a SourceLoc with byte offset
 *    plus 1-based line:column.
 *  - Expected<T> is a move-friendly value-or-Status. valueOrDie()
 *    is the bridge for generator/test call sites that still want
 *    fail-loudly semantics ("*OrDie wrappers").
 *  - StatusError is the internal exception parsers and workers throw;
 *    public entry points catch it and return the carried Status.
 */

#ifndef AZOO_UTIL_STATUS_HH
#define AZOO_UTIL_STATUS_HH

#include <cstdint>
#include <exception>
#include <optional>
#include <string>
#include <string_view>
#include <utility>

namespace azoo {

/** Stable error taxonomy; codes map onto tool exit codes (bad data
 *  vs internal) and onto RunGuard truncation reasons. */
enum class ErrorCode : uint8_t {
    kOk = 0,
    kParseError,        ///< malformed input document
    kUnsupported,       ///< well-formed but outside the supported subset
    kLimitExceeded,     ///< a ParseLimits / symbol-budget bound tripped
    kIoError,           ///< file open / short read
    kDeadlineExceeded,  ///< RunGuard wall-clock deadline passed
    kCancelled,         ///< RunGuard cancellation flag raised
    kResourceExhausted, ///< allocation failure (real or injected)
    kInvalidArgument,   ///< unsupported option combination
    kVersionMismatch,   ///< artifact from an incompatible format rev
    kChecksumMismatch,  ///< artifact payload corrupt (CRC disagrees)
    kInternal,          ///< escaped exception / library bug
};

/** Short stable name ("parse-error", "deadline-exceeded", ...). */
const char *errorCodeName(ErrorCode code);

/** A position in an input document: byte offset always, line:column
 *  (1-based) when the producer computed them (line == 0 = unknown). */
struct SourceLoc {
    size_t offset = 0;
    uint32_t line = 0;
    uint32_t column = 0;

    bool known() const { return line != 0; }

    /** "3:14" (or "offset 57" when line/column are unknown). */
    std::string str() const;
};

/** Compute 1-based line:column for @p offset within @p text. */
SourceLoc locateOffset(std::string_view text, size_t offset);

/** Render a short, printable snippet of the input at @p offset
 *  ("near '<token>'"); empty at end of input. */
std::string tokenAt(std::string_view text, size_t offset,
                    size_t maxLen = 16);

/** Result of an operation that can fail without killing the process. */
class Status
{
  public:
    /** OK. */
    Status() = default;

    Status(ErrorCode code, std::string message)
        : code_(code), message_(std::move(message))
    {
    }

    Status(ErrorCode code, std::string message, SourceLoc loc)
        : code_(code), message_(std::move(message)), loc_(loc)
    {
    }

    bool ok() const { return code_ == ErrorCode::kOk; }
    ErrorCode code() const { return code_; }
    const std::string &message() const { return message_; }
    const SourceLoc &loc() const { return loc_; }

    /** "parse-error at 3:14: expected ':' near '}'". */
    std::string str() const;

  private:
    ErrorCode code_ = ErrorCode::kOk;
    std::string message_;
    SourceLoc loc_;
};

/** Internal exception carrying a Status. Parsers throw it at the
 *  point of failure; the public entry points catch and return the
 *  Status. Never escapes a library API. */
class StatusError : public std::exception
{
  public:
    explicit StatusError(Status status) : status_(std::move(status)) {}

    const Status &status() const { return status_; }
    const char *
    what() const noexcept override
    {
        return status_.message().c_str();
    }

  private:
    Status status_;
};

namespace detail {
[[noreturn]] void expectedValuePanic();
[[noreturn]] void expectedOkStatusPanic();
[[noreturn]] void expectedDie(const Status &status);
} // namespace detail

/**
 * Value-or-Status. Holds the value on success, a non-OK Status on
 * failure; checked access panics on misuse (a *library* bug, unlike
 * the carried error, which is the *input's* fault).
 */
template <typename T>
class Expected
{
  public:
    Expected(T value) : value_(std::move(value)) {} // NOLINT(*explicit*)
    Expected(Status status)                         // NOLINT(*explicit*)
        : status_(std::move(status))
    {
        assertNotOk();
    }

    bool ok() const { return value_.has_value(); }

    const Status &status() const { return status_; }

    // The empty-checks below are spelled value_.has_value() inline —
    // not via a shared assert helper — so flow-sensitive optional
    // checks (bugprone-unchecked-optional-access) can prove every
    // *value_ deref is guarded.
    T &
    value() &
    {
        if (!value_.has_value())
            detail::expectedValuePanic();
        return *value_;
    }

    const T &
    value() const &
    {
        if (!value_.has_value())
            detail::expectedValuePanic();
        return *value_;
    }

    T &&
    value() &&
    {
        if (!value_.has_value())
            detail::expectedValuePanic();
        return std::move(*value_);
    }

    T &operator*() & { return value(); }
    const T &operator*() const & { return value(); }
    T &&operator*() && { return std::move(*this).value(); }
    T *operator->() { return &value(); }
    const T *operator->() const { return &value(); }

    /** Unwrap, or fatal() with the error — the *OrDie bridge. */
    T valueOrDie() &&;

  private:
    void assertNotOk() const;

    std::optional<T> value_;
    Status status_;
};

template <typename T>
T
Expected<T>::valueOrDie() &&
{
    if (!value_.has_value())
        detail::expectedDie(status_);
    return std::move(*value_);
}

template <typename T>
void
Expected<T>::assertNotOk() const
{
    if (status_.ok())
        detail::expectedOkStatusPanic();
}

/**
 * Hard bounds a parser enforces while building an automaton from
 * untrusted input. Defaults are far above anything the zoo generates
 * but low enough that a hostile document degrades into a structured
 * kLimitExceeded error instead of an OOM kill — the RE2 memory-budget
 * posture.
 */
struct ParseLimits {
    /** Maximum elements (STEs + counters). */
    size_t maxStates = 1u << 22;
    /** Maximum edges (activation + reset). */
    size_t maxEdges = 1u << 24;
    /** Maximum recursion depth (JSON values, regex groups). */
    size_t maxNestingDepth = 200;
    /** Maximum document size accepted by the stream readers. */
    size_t maxInputBytes = size_t(1) << 30;
};

} // namespace azoo

#endif // AZOO_UTIL_STATUS_HH
