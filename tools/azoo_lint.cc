/**
 * @file
 * azoo_lint: static verifier / linter for automata files.
 *
 * Usage:
 *   azoo_lint --in x.anml[,y.mnrl,...]
 *             [--no-lint] [--disable rule1,rule2]
 *             [--fanout N] [--padding N] [--widened]
 *             [--min-factor N] [--blowup-log2 N]
 *             [--json[=FILE]] [--metrics[=FILE]]
 *             [--max N] [--quiet] [--list-rules]
 *
 * Loads ANML/MNRL/azml automata (format by extension), runs the
 * analysis::verify() invariant checks plus (unless --no-lint) the
 * soft lint rules and the A2xx component-profile rules, prints a
 * diagnostics table per file (or one SARIF 2.1.0 document with
 * --json), and exits 65 (EX_DATAERR) when any error-severity finding
 * exists — the CI contract. Usage errors exit 64.
 */

#include <fstream>
#include <iostream>

#include "analysis/analysis.hh"
#include "analysis/profile.hh"
#include "analysis/sarif.hh"
#include "core/anml.hh"
#include "core/mnrl.hh"
#include "core/serialize.hh"
#include "obs/obs.hh"
#include "tool_common.hh"
#include "util/cli.hh"
#include "util/logging.hh"
#include "util/strings.hh"
#include "util/table.hh"

using namespace azoo;

namespace {

void
listRules()
{
    Table t({"Id", "Rule", "Severity", "Description"});
    for (size_t i = 0; i < analysis::kRuleCount; ++i) {
        const auto r = static_cast<analysis::Rule>(i);
        t.addRow({analysis::ruleId(r), analysis::ruleName(r),
                  analysis::severityName(analysis::defaultSeverity(r)),
                  analysis::ruleDescription(r)});
    }
    t.print(std::cout);
}

analysis::Rule
ruleByName(const std::string &name)
{
    for (size_t i = 0; i < analysis::kRuleCount; ++i) {
        const auto r = static_cast<analysis::Rule>(i);
        if (name == analysis::ruleName(r) ||
            name == analysis::ruleId(r)) {
            return r;
        }
    }
    tool::usageError(cat("azoo_lint: unknown rule '", name,
                         "' (see --list-rules)"));
}

std::string
elementCell(ElementId id)
{
    return id == kNoElement ? "-" : std::to_string(id);
}

/** "L12/R3/C1/U2" census of component classes, skipping zeroes. */
std::string
classCensus(const std::vector<analysis::ComponentProfile> &profiles)
{
    size_t counts[4] = {};
    size_t with_factor = 0;
    for (const auto &p : profiles) {
        ++counts[static_cast<size_t>(p.cls)];
        with_factor += !p.mandatoryLiteral.empty();
    }
    std::string census;
    for (size_t c = 0; c < 4; ++c) {
        if (counts[c] == 0)
            continue;
        if (!census.empty())
            census += "/";
        census += analysis::componentClassCode(
            static_cast<analysis::ComponentClass>(c));
        census += std::to_string(counts[c]);
    }
    return cat(census.empty() ? "none" : census, ", literal factor on ",
               with_factor, "/", profiles.size(), " components");
}

/** Write @p text to @p dest ("", "true" -> stdout). */
void
emit(const std::string &dest, const std::string &text)
{
    if (dest.empty() || dest == "true") {
        std::cout << text;
        return;
    }
    std::ofstream out(dest, std::ios::binary);
    if (!out)
        fatal(cat("azoo_lint: cannot write ", dest));
    out << text;
}

} // namespace

int
main(int argc, char **argv)
{
    Cli cli(argc, argv,
            {"in", "no-lint", "disable", "fanout", "padding", "widened",
             "min-factor", "blowup-log2", "json", "metrics", "max",
             "quiet", "list-rules"});

    if (cli.getBool("list-rules")) {
        listRules();
        return tool::kExitOk;
    }

    const std::string in = cli.get("in");
    if (in.empty())
        tool::usageError(
            "azoo_lint: --in is required (or use --list-rules)");

    analysis::Options opts;
    opts.fanoutThreshold =
        static_cast<uint32_t>(cli.getInt("fanout", 256));
    opts.paddingSymbol =
        static_cast<int>(cli.getInt("padding", -1));
    opts.widenedLayout = cli.getBool("widened");
    for (const std::string &name : split(cli.get("disable", ""), ',')) {
        if (!name.empty())
            opts.disable(ruleByName(name));
    }

    analysis::InferOptions iopts;
    iopts.literalChainMinFactor =
        static_cast<uint32_t>(cli.getInt("min-factor", 4));
    iopts.blowupWarnLog2 =
        static_cast<uint32_t>(cli.getInt("blowup-log2", 20));

    const bool run_lint = !cli.getBool("no-lint");
    const bool quiet = cli.getBool("quiet");
    const bool json = cli.has("json");
    const bool json_to_stdout =
        json && (cli.get("json") == "true" || cli.get("json").empty());
    const size_t max_printed =
        static_cast<size_t>(cli.getInt("max", 50));

    size_t total_errors = 0;
    std::vector<std::pair<std::string, analysis::Report>> reports;
    for (const std::string &path : split(in, ',')) {
        if (path.empty())
            continue;
        Automaton a = tool::loadAnyOrExit(path);
        analysis::Report rep = run_lint ? analysis::analyze(a, opts)
                                        : analysis::verify(a, opts);

        // The inference passes index edge targets freely, so they
        // are gated on the verifier's dangling-edge rules.
        std::vector<analysis::ComponentProfile> profiles;
        const bool indices_ok =
            !rep.has(analysis::Rule::kDanglingEdge) &&
            !rep.has(analysis::Rule::kDanglingReset);
        if (run_lint && indices_ok) {
            profiles = analysis::inferProfiles(a, iopts);
            rep.absorb(
                analysis::profileLint(a, profiles, opts, iopts));
        }
        total_errors += rep.errors;

        if (!json_to_stdout) {
            std::cout << path << ": automaton '" << a.name() << "', "
                      << a.size() << " elements: " << rep.summary()
                      << "\n";
            if (!profiles.empty()) {
                std::cout << "  components: " << classCensus(profiles)
                          << "\n";
            }
        }
        if (json)
            reports.emplace_back(path, std::move(rep));
        if (json_to_stdout || quiet ||
            (json ? reports.back().second.diags.empty()
                  : rep.diags.empty())) {
            continue;
        }

        const analysis::Report &printed_rep =
            json ? reports.back().second : rep;
        Table t({"Severity", "Rule", "Element", "Message"});
        size_t printed = 0;
        for (const auto &d : printed_rep.diags) {
            if (printed++ >= max_printed)
                break;
            t.addRow({analysis::severityName(d.severity),
                      cat(analysis::ruleId(d.rule), " ",
                          analysis::ruleName(d.rule)),
                      elementCell(d.element), d.message});
        }
        t.print(std::cout);
        if (printed_rep.diags.size() > max_printed) {
            std::cout << "  ... "
                      << printed_rep.diags.size() - max_printed
                      << " more (raise --max to see them)\n";
        }
    }

    if (json)
        emit(cli.get("json"), analysis::toSarif(reports));
    if (cli.has("metrics")) {
        emit(cli.get("metrics"),
             obs::Registry::global().toJson() + "\n");
    }
    return total_errors == 0 ? tool::kExitOk : tool::kExitBadData;
}
