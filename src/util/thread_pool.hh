/**
 * @file
 * Work-stealing thread pool backing the parallel execution layer.
 *
 * Each worker owns a deque: post() distributes tasks round-robin,
 * workers pop their own queue LIFO (cache locality) and steal FIFO
 * from siblings when empty, so a batch of unequal-length streams
 * balances itself without a central queue bottleneck. parallelFor()
 * layers self-scheduling (a shared atomic index) on top, which is the
 * right grain for the runner's per-stream / per-shard tasks.
 *
 * The pool deliberately has no futures or task graph: the callers in
 * this codebase (ParallelRunner, zoo::buildSuite) always fan out a
 * fixed set of independent jobs and barrier on all of them, which
 * parallelFor expresses directly.
 */

#ifndef AZOO_UTIL_THREAD_POOL_HH
#define AZOO_UTIL_THREAD_POOL_HH

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace azoo {

/**
 * Fixed-size work-stealing pool.
 *
 * Worker count is fixed at construction; "N threads" in any
 * measurement means exactly N workers compute while the submitting
 * thread blocks. Tasks posted directly via post() must not throw
 * (nothing could catch them); parallelFor() bodies MAY throw — the
 * first exception is captured and rethrown on the calling thread
 * after the barrier (remaining un-started iterations are abandoned).
 * Tasks must not call back into parallelFor() on the same pool (no
 * nesting).
 */
class ThreadPool
{
  public:
    /** @p threads workers; 0 means hardwareThreads(). */
    explicit ThreadPool(size_t threads = 0);

    /** Joins all workers after draining queued tasks. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Worker count. */
    size_t size() const { return workers_.size(); }

    /** Enqueue a task (round-robin across worker deques). */
    void post(std::function<void()> task);

    /**
     * Run body(i) for every i in [0, n) on the workers and block
     * until all calls finished. Iteration order across workers is
     * unspecified; callers own any determinism (e.g. by writing
     * results to slot i). If any body throws, the first captured
     * exception is rethrown here after all in-flight bodies drain;
     * iterations not yet claimed at that point never run.
     */
    void parallelFor(size_t n, const std::function<void(size_t)> &body);

    /**
     * parallelFor with a worker-slot id: runs body(slot, i) where
     * @p slot is owned exclusively by one helper task for the whole
     * call (slot in [0, min(size(), n))). Callers use the slot to
     * index per-worker mutable state — engine scratches, lazy-DFA
     * caches — without locks. Which indices a slot processes is
     * unspecified (self-scheduling), only slot exclusivity is
     * guaranteed.
     */
    void parallelFor(size_t n,
                     const std::function<void(size_t, size_t)> &body);

    /** std::thread::hardware_concurrency with a floor of 1. */
    static size_t hardwareThreads();

  private:
    struct WorkerQueue {
        std::mutex mutex;
        std::deque<std::function<void()>> tasks;
    };

    void workerLoop(size_t self);
    bool tryPopOwn(size_t self, std::function<void()> &out);
    bool trySteal(size_t self, std::function<void()> &out);

    std::vector<std::unique_ptr<WorkerQueue>> queues_;
    std::vector<std::thread> workers_;

    std::mutex sleepMutex_;
    std::condition_variable wake_;
    std::atomic<uint64_t> pending_{0}; ///< queued, not yet popped
    std::atomic<uint64_t> nextQueue_{0};
    std::atomic<bool> stop_{false};
};

} // namespace azoo

#endif // AZOO_UTIL_THREAD_POOL_HH
