# Empty compiler generated dependencies file for section9_subbyte.
# This may be replaced when dependencies are built.
