/**
 * @file
 * Unit tests for the Automaton graph model, builder helpers, graph
 * statistics, and azml serialization round-trips.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "core/builder.hh"
#include "core/dot.hh"
#include "core/serialize.hh"
#include "core/stats.hh"
#include "util/rng.hh"

namespace azoo {
namespace {

TEST(Automaton, AddAndQuery)
{
    Automaton a("t");
    ElementId s0 = a.addSte(CharSet::single('a'),
                            StartType::kStartOfData);
    ElementId s1 = a.addSte(CharSet::single('b'), StartType::kNone,
                            true, 7);
    a.addEdge(s0, s1);
    EXPECT_EQ(a.size(), 2u);
    EXPECT_EQ(a.edgeCount(), 1u);
    EXPECT_EQ(a.startStates(), std::vector<ElementId>{s0});
    EXPECT_EQ(a.reportingElements(), std::vector<ElementId>{s1});
    EXPECT_EQ(a.element(s1).reportCode, 7u);
}

TEST(Automaton, MergeOffsetsEdges)
{
    Automaton a("a"), b("b");
    ElementId a0 = a.addSte(CharSet::single('x'));
    (void)a0;
    ElementId b0 = b.addSte(CharSet::single('y'));
    ElementId b1 = b.addSte(CharSet::single('z'));
    b.addEdge(b0, b1);
    ElementId off = a.merge(b);
    EXPECT_EQ(off, 1u);
    EXPECT_EQ(a.size(), 3u);
    EXPECT_EQ(a.element(1).out, std::vector<ElementId>{2});
}

TEST(Automaton, ConnectedComponents)
{
    Automaton a("t");
    // Two chains and an isolated state.
    ElementId x0 = a.addSte(CharSet::all());
    ElementId x1 = a.addSte(CharSet::all());
    a.addEdge(x0, x1);
    ElementId y0 = a.addSte(CharSet::all());
    ElementId y1 = a.addSte(CharSet::all());
    a.addEdge(y1, y0); // direction does not matter
    a.addSte(CharSet::all());
    uint32_t count = 0;
    auto labels = a.connectedComponents(count);
    EXPECT_EQ(count, 3u);
    EXPECT_EQ(labels[0], labels[1]);
    EXPECT_EQ(labels[2], labels[3]);
    EXPECT_NE(labels[0], labels[2]);
    EXPECT_NE(labels[0], labels[4]);
}

TEST(Automaton, ResetEdgeJoinsComponents)
{
    Automaton a("t");
    ElementId s = a.addSte(CharSet::all());
    ElementId c = a.addCounter(3);
    a.addResetEdge(s, c);
    uint32_t count = 0;
    a.connectedComponents(count);
    EXPECT_EQ(count, 1u);
}

TEST(Automaton, InDegrees)
{
    Automaton a("t");
    ElementId s0 = a.addSte(CharSet::all());
    ElementId s1 = a.addSte(CharSet::all());
    a.addEdge(s0, s1);
    a.addEdge(s1, s1);
    auto in = a.inDegrees();
    EXPECT_EQ(in[s0], 0u);
    EXPECT_EQ(in[s1], 2u);
}

TEST(Automaton, ValidateRejectsResetToSte)
{
    Automaton a("t");
    ElementId s0 = a.addSte(CharSet::all());
    ElementId s1 = a.addSte(CharSet::all());
    a.addResetEdge(s0, s1);
    EXPECT_DEATH(a.validate(), "non-counter");
}

TEST(Builder, LiteralChain)
{
    Automaton a("t");
    ElementId last = addLiteral(a, "abc", StartType::kAllInput, true,
                                5);
    EXPECT_EQ(a.size(), 3u);
    EXPECT_EQ(last, 2u);
    EXPECT_EQ(a.element(0).start, StartType::kAllInput);
    EXPECT_TRUE(a.element(2).reporting);
    EXPECT_TRUE(a.element(0).symbols.test('a'));
    EXPECT_TRUE(a.element(2).symbols.test('c'));
    EXPECT_EQ(a.edgeCount(), 2u);
}

TEST(Builder, NocaseLabels)
{
    auto labels = nocaseLabels("a1");
    EXPECT_TRUE(labels[0].test('a'));
    EXPECT_TRUE(labels[0].test('A'));
    EXPECT_EQ(labels[1].count(), 1);
}

TEST(Builder, StarStateSelfLoops)
{
    Automaton a("t");
    ElementId s = addStarState(a, CharSet::all());
    EXPECT_EQ(a.element(s).out, std::vector<ElementId>{s});
    EXPECT_EQ(a.element(s).start, StartType::kAllInput);
}

TEST(Stats, ComputesTableOneColumns)
{
    Automaton a("t");
    // Component 1: chain of 3; component 2: single reporting counter
    // fed by one state.
    ElementId s0 = a.addSte(CharSet::all(), StartType::kAllInput);
    ElementId s1 = a.addSte(CharSet::all());
    ElementId s2 = a.addSte(CharSet::all(), StartType::kNone, true, 1);
    a.addEdge(s0, s1);
    a.addEdge(s1, s2);
    ElementId t0 = a.addSte(CharSet::all(), StartType::kStartOfData);
    ElementId c0 = a.addCounter(5, CounterMode::kLatch, true, 2);
    a.addEdge(t0, c0);

    GraphStats s = computeStats(a);
    EXPECT_EQ(s.states, 4u);
    EXPECT_EQ(s.counters, 1u);
    EXPECT_EQ(s.edges, 3u);
    EXPECT_EQ(s.subgraphs, 2u);
    EXPECT_DOUBLE_EQ(s.avgSubgraph, 2.5);
    EXPECT_DOUBLE_EQ(s.stdSubgraph, 0.5);
    EXPECT_EQ(s.reporting, 2u);
    EXPECT_EQ(s.startStates, 2u);
    EXPECT_DOUBLE_EQ(s.edgesPerNode, 3.0 / 5.0);
}

TEST(Serialize, RoundTripsAllFeatures)
{
    Automaton a("rt");
    ElementId s0 = a.addSte(CharSet::fromExpr("a-f\\x00"),
                            StartType::kAllInput);
    ElementId s1 = a.addSte(CharSet::all(), StartType::kStartOfData,
                            true, 42);
    ElementId c = a.addCounter(9, CounterMode::kRollover, true, 3);
    a.addEdge(s0, s1);
    a.addEdge(s1, s0);
    a.addEdge(s1, c);
    a.addResetEdge(s0, c);

    std::ostringstream os;
    writeAzml(os, a);
    std::istringstream is(os.str());
    Automaton back = readAzmlOrDie(is);

    ASSERT_EQ(back.size(), a.size());
    EXPECT_EQ(back.name(), "rt");
    for (ElementId i = 0; i < a.size(); ++i) {
        const Element &x = a.element(i);
        const Element &y = back.element(i);
        EXPECT_EQ(x.kind, y.kind) << i;
        EXPECT_EQ(x.start, y.start) << i;
        EXPECT_EQ(x.reporting, y.reporting) << i;
        EXPECT_EQ(x.reportCode, y.reportCode) << i;
        EXPECT_EQ(x.symbols, y.symbols) << i;
        EXPECT_EQ(x.target, y.target) << i;
        EXPECT_EQ(x.mode, y.mode) << i;
        EXPECT_EQ(x.out, y.out) << i;
        EXPECT_EQ(x.resetOut, y.resetOut) << i;
    }
}

/** Property: random automata survive a serialize round-trip. */
TEST(Serialize, PropertyRandomRoundTrip)
{
    Rng rng(4242);
    for (int trial = 0; trial < 30; ++trial) {
        Automaton a("rand");
        const int n = 2 + static_cast<int>(rng.nextBelow(30));
        for (int i = 0; i < n; ++i) {
            CharSet cs;
            for (int k = 0; k < 5; ++k)
                cs.set(rng.nextByte());
            a.addSte(cs,
                     static_cast<StartType>(rng.nextBelow(3)),
                     rng.nextBool(0.2),
                     static_cast<uint32_t>(rng.nextBelow(100)));
        }
        for (int e = 0; e < n; ++e) {
            a.addEdge(static_cast<ElementId>(rng.nextBelow(n)),
                      static_cast<ElementId>(rng.nextBelow(n)));
        }
        std::ostringstream os;
        writeAzml(os, a);
        std::istringstream is(os.str());
        Automaton back = readAzmlOrDie(is);
        ASSERT_EQ(back.size(), a.size());
        std::ostringstream os2;
        writeAzml(os2, back);
        EXPECT_EQ(os.str(), os2.str());
    }
}

TEST(Dot, RendersAllElementKinds)
{
    Automaton a("viz");
    ElementId s0 = a.addSte(CharSet::single('a'),
                            StartType::kAllInput);
    ElementId s1 = a.addSte(CharSet::all(), StartType::kNone, true,
                            4);
    ElementId c = a.addCounter(2, CounterMode::kLatch, true, 5);
    a.addEdge(s0, s1);
    a.addEdge(s1, c);
    a.addResetEdge(s0, c);
    std::ostringstream os;
    writeDot(os, a);
    const std::string dot = os.str();
    EXPECT_NE(dot.find("digraph \"viz\""), std::string::npos);
    EXPECT_NE(dot.find("doublecircle"), std::string::npos);
    EXPECT_NE(dot.find("cnt 2"), std::string::npos);
    EXPECT_NE(dot.find("style=dashed"), std::string::npos);
    EXPECT_NE(dot.find("n0 -> n1"), std::string::npos);
}

TEST(Dot, TruncatesHugeAutomata)
{
    Automaton a("big");
    for (int i = 0; i < 100; ++i)
        a.addSte(CharSet::all());
    std::ostringstream os;
    writeDot(os, a, 10);
    EXPECT_NE(os.str().find("90 more"), std::string::npos);
}

TEST(Serialize, RejectsMalformedInput)
{
    auto expect_rejects = [](const std::string &text) {
        std::istringstream is(text);
        Expected<Automaton> got = readAzml(is);
        ASSERT_FALSE(got.ok()) << text;
        EXPECT_NE(got.status().message().find("azml"),
                  std::string::npos);
        EXPECT_EQ(got.status().code(), ErrorCode::kParseError);
    };
    expect_rejects("ste 0 start=all report=- symbols=*\nend\n");
    expect_rejects("automaton x\nste 1 start=all report=- symbols=*\n"
                   "end\n");
    expect_rejects("automaton x\nbogus 0\nend\n");
    expect_rejects("automaton x\nedge 0 1\nend\n");
}

} // namespace
} // namespace azoo
