/**
 * @file
 * Blocking client for the azoo_serve protocol.
 *
 * The client side is deliberately simple — synchronous calls over one
 * connection, poll-based timeouts — because its consumers are a
 * latency harness (bench/serve_latency) and tests, both of which want
 * "open, stream, collect the reply" with no event loop of their own.
 * Concurrency comes from running many Client instances on many
 * threads, which is also how real sessions arrive at the server.
 *
 * Every method returns Status/Expected rather than dying: a server
 * that sheds or rejects this session answers with a well-formed REPLY
 * (finish() returns it), and a server that drops the connection
 * surfaces as kIoError from whichever call saw the close.
 */

#ifndef AZOO_SERVE_CLIENT_HH
#define AZOO_SERVE_CLIENT_HH

#include <cstdint>
#include <string>
#include <vector>

#include "serve/protocol.hh"
#include "util/net.hh"

namespace azoo {
namespace serve {

/** One protocol session: connect() -> open() -> send()* -> finish().
 */
class Client
{
  public:
    Client() = default;

    /** Connect to "unix:PATH" / "tcp:PORT". */
    Status connect(const std::string &addr);

    /**
     * Send OPEN and wait for the server's verdict. OK with
     * admitted()==true after ADMIT; OK with admitted()==false when
     * the server answered a rejection REPLY immediately (reply()
     * holds it and finish() must not be called). kIoError /
     * kDeadlineExceeded on transport trouble.
     */
    Status open(uint8_t priority, int timeoutMs = 10000);

    bool admitted() const { return admitted_; }

    /** Stream input bytes (chunked into DATA frames). The server may
     *  already have shed the session; EPIPE from here is normal then
     *  — callers fall through to finish(), the REPLY may still be
     *  readable. */
    Status send(const uint8_t *data, size_t len);

    Status
    send(const std::vector<uint8_t> &data)
    {
        return send(data.data(), data.size());
    }

    /** Send FIN and read the REPLY. */
    Expected<Reply> finish(int timeoutMs = 30000);

    /** The last REPLY received (set by open() on rejection and by
     *  finish()). */
    const Reply &reply() const { return reply_; }

    void close() { fd_.close(); }

  private:
    Expected<Frame> readFrame(std::vector<uint8_t> &payload,
                              int timeoutMs);

    net::Fd fd_;
    bool admitted_ = false;
    Reply reply_;
};

} // namespace serve
} // namespace azoo

#endif // AZOO_SERVE_CLIENT_HH
