/**
 * @file
 * Shared flag handling for the table/figure bench binaries.
 *
 * Every bench accepts:
 *   --scale S    pattern-count scale vs the paper's full size
 *                (default 0.05; --full sets 1.0)
 *   --input N    standard input bytes for generation (default 1 MiB)
 *   --sim N      bytes actually simulated for dynamic stats
 *                (default 256 KiB; capped at --input)
 *   --seed X     generation seed (default 42)
 *   --full       paper-scale sizes (slow; hours for Table I)
 *   --threads N  worker threads for benches that parallelize
 *                generation or simulation (default 1)
 */

#ifndef AZOO_BENCH_COMMON_HH
#define AZOO_BENCH_COMMON_HH

#include <string>
#include <vector>

#include "util/cli.hh"
#include "util/logging.hh"
#include "zoo/benchmark.hh"

namespace azoo {
namespace bench {

struct BenchConfig {
    zoo::ZooConfig zoo;
    size_t simBytes = 256 * 1024;
    size_t threads = 1;
};

inline BenchConfig
parseBenchFlags(int argc, char **argv,
                std::vector<std::string> extra_flags = {})
{
    std::vector<std::string> known = {"scale", "input", "sim", "seed",
                                      "full", "threads"};
    known.insert(known.end(), extra_flags.begin(), extra_flags.end());
    Cli cli(argc, argv, known);

    BenchConfig cfg;
    cfg.zoo.scale = cli.getDouble("scale", 0.05);
    if (cli.getBool("full"))
        cfg.zoo.scale = 1.0;
    cfg.zoo.inputBytes =
        static_cast<size_t>(cli.getInt("input", 1 << 20));
    cfg.zoo.seed = static_cast<uint64_t>(cli.getInt("seed", 42));
    cfg.simBytes = static_cast<size_t>(
        cli.getInt("sim", 256 * 1024));
    if (cfg.simBytes > cfg.zoo.inputBytes)
        cfg.simBytes = cfg.zoo.inputBytes;
    cfg.threads = static_cast<size_t>(cli.getInt("threads", 1));
    if (cfg.threads == 0)
        cfg.threads = 1;
    return cfg;
}

} // namespace bench
} // namespace azoo

#endif // AZOO_BENCH_COMMON_HH
