#include "zoo/randomforest.hh"

#include <algorithm>

#include "util/logging.hh"

namespace azoo {
namespace zoo {

namespace {

CharSet
valueRange(uint8_t lo, uint8_t hi)
{
    return CharSet::range(lo, hi); // bins live at bytes 0x00..0x0F
}

CharSet
indexLabel(int feature)
{
    return CharSet::single(static_cast<uint8_t>(kRfIndexBase +
                                                feature));
}

/** Index bytes other than the target (excludes the delimiter, so
 *  partial matches die at item boundaries). */
CharSet
skipIndexLabel(int features, int target)
{
    CharSet cs = CharSet::range(
        kRfIndexBase,
        static_cast<uint8_t>(kRfIndexBase + features - 1));
    cs.clear(static_cast<uint8_t>(kRfIndexBase + target));
    return cs;
}

CharSet
anyValueLabel()
{
    return CharSet::range(0x00, 0x0F);
}

/** Append one path chain; returns states appended. */
size_t
appendPathChain(Automaton &a, const ml::DecisionTree::Path &path,
                int features, int uniform_size)
{
    const size_t before = a.size();
    const auto &cons = path.constraints;
    if (cons.empty()) {
        // Degenerate tree: a single leaf that always votes. Encode as
        // a head matching index 0 with a full value range.
        ElementId head = a.addSte(indexLabel(0), StartType::kAllInput);
        ElementId val = a.addSte(anyValueLabel(), StartType::kNone,
                                 true,
                                 static_cast<uint32_t>(path.label));
        a.addEdge(head, val);
    } else {
        ElementId head = a.addSte(indexLabel(cons[0].feature),
                                  StartType::kAllInput);
        ElementId range = a.addSte(
            valueRange(cons[0].lo, cons[0].hi), StartType::kNone,
            cons.size() == 1,
            static_cast<uint32_t>(path.label));
        a.addEdge(head, range);
        ElementId prev = range;
        for (size_t k = 1; k < cons.size(); ++k) {
            const bool last = k + 1 == cons.size();
            ElementId skip_i = a.addSte(
                skipIndexLabel(features, cons[k].feature));
            ElementId skip_v = a.addSte(anyValueLabel());
            ElementId idx = a.addSte(indexLabel(cons[k].feature));
            ElementId rng = a.addSte(
                valueRange(cons[k].lo, cons[k].hi), StartType::kNone,
                last, static_cast<uint32_t>(path.label));
            a.addEdge(prev, skip_i);
            a.addEdge(prev, idx);
            a.addEdge(skip_i, skip_v);
            a.addEdge(skip_v, skip_i);
            a.addEdge(skip_v, idx);
            a.addEdge(idx, rng);
            prev = rng;
        }
    }

    // Pad to the uniform chain size with inert tail states, matching
    // the AP symbol-replacement layout (Table I std dev 0).
    const size_t used = a.size() - before;
    ElementId tail = static_cast<ElementId>(a.size() - 1);
    for (size_t p = used; p < static_cast<size_t>(uniform_size); ++p) {
        ElementId pad = a.addSte(p % 2 ? anyValueLabel()
                                       : CharSet::range(kRfIndexBase,
                                                        0xFE));
        a.addEdge(tail, pad);
        tail = pad;
    }
    return a.size() - before;
}

} // namespace

ml::ForestParams
rfVariantParams(char variant)
{
    ml::ForestParams p;
    p.numTrees = 20;
    p.bins = 16;
    switch (variant) {
      case 'A':
        p.features = 230;
        p.maxLeaves = 400;
        p.maxDepth = 8;
        break;
      case 'B':
        p.features = 200;
        p.maxLeaves = 400;
        p.maxDepth = 8;
        break;
      case 'C':
        p.features = 200;
        p.maxLeaves = 800;
        p.maxDepth = 16;
        break;
      default:
        fatal(cat("unknown Random Forest variant '", variant, "'"));
    }
    return p;
}

std::vector<uint8_t>
rfEncodeStream(const ml::RandomForest &forest,
               const ml::Dataset &samples, size_t max_items,
               std::vector<int> *labels)
{
    const auto &fmap = forest.featureMap();
    const int f = static_cast<int>(fmap.size());
    const int shift = forest.trees().empty()
        ? 4 : forest.trees()[0].binShift();

    std::vector<uint8_t> out;
    out.reserve(max_items * (2 * f + 1));
    if (labels)
        labels->clear();
    for (size_t item = 0; item < max_items; ++item) {
        const auto &row = samples.x[item % samples.size()];
        for (int j = 0; j < f; ++j) {
            out.push_back(static_cast<uint8_t>(kRfIndexBase + j));
            out.push_back(static_cast<uint8_t>(row[fmap[j]] >> shift));
        }
        out.push_back(kRfDelimiter);
        if (labels)
            labels->push_back(samples.y[item % samples.size()]);
    }
    return out;
}

std::vector<int>
rfDecodeVotes(const std::vector<Report> &reports, size_t num_items,
              int features, int num_classes)
{
    const size_t item_len = 2 * static_cast<size_t>(features) + 1;
    std::vector<int> votes(num_items * num_classes, 0);
    for (const auto &r : reports) {
        const size_t item = r.offset / item_len;
        if (item < num_items &&
            r.code < static_cast<uint32_t>(num_classes)) {
            ++votes[item * num_classes + r.code];
        }
    }
    std::vector<int> out(num_items, -1);
    for (size_t i = 0; i < num_items; ++i) {
        int best = -1, best_v = 0;
        for (int c = 0; c < num_classes; ++c) {
            const int v = votes[i * num_classes + c];
            if (v > best_v) {
                best_v = v;
                best = c;
            }
        }
        out[i] = best;
    }
    return out;
}

RfBundle
makeRandomForestBundle(const ZooConfig &cfg, char variant)
{
    RfBundle bundle;
    ml::ForestParams params = rfVariantParams(variant);
    params.seed = cfg.seed ^ (0x4f00ULL + variant);
    // Scale the model size knob the way scale works elsewhere: the
    // tree count stays at the paper's 20, leaves scale.
    params.maxLeaves = std::max(
        8, static_cast<int>(params.maxLeaves * cfg.scale));

    ml::DigitConfig dc;
    dc.seed = cfg.seed ^ 0xd1617ULL;
    dc.samples = 4000;
    ml::Dataset all = makeSyntheticDigits(dc);
    ml::Dataset train;
    splitDataset(all, 0.25, cfg.seed, train, bundle.test);

    bundle.forest.train(train, params);
    bundle.accuracy = bundle.forest.accuracy(bundle.test);

    // Automaton: one chain per (tree, leaf path), uniform size.
    Benchmark &b = bundle.benchmark;
    b.name = cat("Random Forest ", variant);
    b.domain = "Machine Learning";
    b.inputDesc = "Custom";
    if (variant == 'A') {
        b.paperStates = 248000;
        b.paperActiveSet = 862.504;
        b.paperSizeVsAnmlzoo = 7.6;
    } else if (variant == 'B') {
        b.paperStates = 248000;
        b.paperActiveSet = 1043.18;
        b.paperSizeVsAnmlzoo = 7.6;
    } else {
        b.paperStates = 992000;
        b.paperActiveSet = 2334.97;
        b.paperSizeVsAnmlzoo = 30.93;
    }

    Automaton a(b.name);
    const int uniform = 4 * params.maxDepth - 2;
    size_t paths_total = 0;
    for (const auto &tree : bundle.forest.trees()) {
        for (const auto &path : tree.paths()) {
            appendPathChain(a, path, params.features, uniform);
            ++paths_total;
        }
    }

    const size_t item_len = 2 * params.features + 1;
    bundle.numItems = std::max<size_t>(1, cfg.inputBytes / item_len);
    b.input = rfEncodeStream(bundle.forest, bundle.test,
                             bundle.numItems, &bundle.itemLabels);
    // Pad to the standard input length with delimiters (inert: no
    // chain survives a delimiter).
    b.input.resize(cfg.inputBytes, kRfDelimiter);
    b.symbolsPerItem = static_cast<double>(item_len);
    b.automaton = std::move(a);
    b.meta["paths"] = std::to_string(paths_total);
    b.meta["features"] = std::to_string(params.features);
    b.meta["accuracy"] = std::to_string(bundle.accuracy);
    return bundle;
}

Benchmark
makeRandomForestBenchmark(const ZooConfig &cfg, char variant)
{
    return makeRandomForestBundle(cfg, variant).benchmark;
}

} // namespace zoo
} // namespace azoo
