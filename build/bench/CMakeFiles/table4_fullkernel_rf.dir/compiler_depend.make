# Empty compiler generated dependencies file for table4_fullkernel_rf.
# This may be replaced when dependencies are built.
