/**
 * @file
 * Name database generation for the Entity Resolution benchmark.
 *
 * The paper replaced ANMLZoo's 500 lexicographically-similar names
 * with "a name generator that can introduce arbitrary names of
 * different formats, and also introduce various errors". This module
 * generates unique full names, renders them in several record formats
 * (First Last / Last, First / F. Last), and emits a streaming
 * database of newline-separated records where a fraction of records
 * are corrupted duplicates (typos, transpositions, dropped letters).
 */

#ifndef AZOO_INPUT_NAMES_HH
#define AZOO_INPUT_NAMES_HH

#include <cstdint>
#include <string>
#include <vector>

#include "util/rng.hh"

namespace azoo {
namespace input {

/** One person with first/last name tokens. */
struct Name {
    std::string first;
    std::string last;
};

/** Generate @p count unique names. */
std::vector<Name> makeNames(size_t count, uint64_t seed);

/** Render a name in a random record format. */
std::string renderRecord(const Name &n, Rng &rng);

/** Apply one random error (substitution / transposition / deletion /
 *  insertion) to a record. */
std::string corrupt(const std::string &record, Rng &rng);

/**
 * Streaming database: newline-separated records drawn from @p names,
 * with probability @p error_rate of being corrupted.
 */
std::vector<uint8_t> nameStream(const std::vector<Name> &names,
                                size_t bytes, double error_rate,
                                uint64_t seed);

} // namespace input
} // namespace azoo

#endif // AZOO_INPUT_NAMES_HH
