/**
 * @file
 * Frequent-itemset mining example: the Sequence Matching benchmark's
 * counter variant as a working miner.
 *
 * Builds support-counting filters (item chains with skip slots
 * feeding AP-style latch counters), streams a transaction database
 * through the interpreter, and prints the frequent itemsets -- then
 * cross-checks every support against the native subset-counting
 * algorithm, demonstrating the full-kernel property (Section VIII
 * methodology) on this domain.
 *
 * Usage: pattern_mining [--filters N] [--stream BYTES]
 *                       [--threshold T] [--seed X]
 */

#include <iostream>

#include "engine/nfa_engine.hh"
#include "util/cli.hh"
#include "util/table.hh"
#include "zoo/seqmatch.hh"

int
main(int argc, char **argv)
{
    using namespace azoo;

    Cli cli(argc, argv, {"filters", "stream", "threshold", "seed"});
    zoo::ZooConfig cfg;
    cfg.scale = cli.getInt("filters", 40) / 1719.0;
    cfg.inputBytes = static_cast<size_t>(
        cli.getInt("stream", 1 << 20));
    cfg.seed = static_cast<uint64_t>(cli.getInt("seed", 42));

    zoo::SeqMatchParams p;
    p.withCounters = true;
    p.supportThreshold = static_cast<uint32_t>(
        cli.getInt("threshold", 8));

    zoo::Benchmark b = zoo::makeSeqMatchBenchmark(cfg, p);
    auto itemsets = zoo::seqMatchItemsets(cfg, p);
    std::cout << "mining " << itemsets.size() << " candidate itemsets"
              << " (support threshold " << p.supportThreshold
              << ") over " << b.input.size() << " bytes of "
              << "transactions\n\n";

    NfaEngine engine(b.automaton);
    SimOptions opts;
    opts.recordReports = false;
    opts.countByCode = true;
    auto r = engine.simulate(b.input, opts);

    // Native cross-check: every counter that fired must have native
    // support >= threshold, every one that did not must be below.
    auto native = zoo::nativeSupportCounts(itemsets, b.input);

    Table t({"Itemset", "Native support", "Frequent (automata)"});
    size_t frequent = 0, agree = 0;
    for (size_t f = 0; f < itemsets.size(); ++f) {
        const bool fired =
            r.byCode.count(static_cast<uint32_t>(f)) > 0;
        const bool should = native[f] >= p.supportThreshold;
        agree += fired == should;
        if (!fired)
            continue;
        ++frequent;
        std::string items;
        for (auto it : itemsets[f])
            items += (items.empty() ? "" : ",") +
                std::to_string(static_cast<int>(it));
        t.addRow({"{" + items + "}", std::to_string(native[f]),
                  "yes"});
    }
    t.print(std::cout);
    std::cout << "\n" << frequent << " frequent itemsets; automata "
              << "and native agree on " << agree << "/"
              << itemsets.size() << " candidates\n";
    return agree == itemsets.size() ? 0 : 1;
}
