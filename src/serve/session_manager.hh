/**
 * @file
 * Session lifecycle for the match service: the engine-session
 * abstraction, a reset-reuse pool, and the admission controller.
 *
 * Three separable robustness mechanisms live here, used by
 * serve::Server but testable without sockets:
 *
 *  - MatchSession erases the difference between the two streaming
 *    engines (StreamingSession for --engine nfa, PlannedSession for
 *    --engine auto) behind feed/results/reset, so the server's data
 *    path has exactly one shape.
 *
 *  - MatchSessionPool recycles engine sessions across client
 *    sessions. Construction is O(automaton), reset() is O(counters),
 *    so a pool turns per-session setup cost into a one-time cost per
 *    concurrency slot. The pool's correctness contract — a reused
 *    session behaves bit-identically to a fresh one, including after
 *    a guard stop — is what the reset-reuse regression in
 *    tests/test_streaming.cc pins across the zoo.
 *
 *  - SessionManager is the admission controller: a hard session-table
 *    cap and a memory budget translated into a session cap
 *    (budget / per-session footprint), with strict-priority shedding
 *    — when the table is full, a newcomer of strictly higher priority
 *    evicts the lowest-priority admitted session (which gets an
 *    explicit kShedOverload reply, never a silent drop); an equal- or
 *    lower-priority newcomer is rejected with a status naming the
 *    exhausted resource. Admission never allocates unboundedly: every
 *    reject happens before an engine session or queue is created.
 */

#ifndef AZOO_SERVE_SESSION_MANAGER_HH
#define AZOO_SERVE_SESSION_MANAGER_HH

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "analysis/profile.hh"
#include "engine/planner.hh"
#include "engine/report.hh"
#include "engine/streaming.hh"
#include "serve/protocol.hh"

namespace azoo {
namespace serve {

struct CompiledRuleset; // serve/ruleset.hh

/** Resource bounds and QoS knobs for one server instance. */
struct ServeLimits {
    /** Hard cap on concurrently admitted sessions. */
    size_t maxSessions = 256;
    /** Per-session input-queue bound: past this many buffered bytes
     *  the server stops reading the client's socket (backpressure)
     *  until a worker drains the queue. */
    size_t queueBudgetBytes = 256u << 10;
    /** Total memory budget for session state (queues + engine
     *  sessions + reply buffers). Admission derives a session cap
     *  from it; 0 = no memory-derived cap. */
    size_t memoryBudgetBytes = 256u << 20;
    /** Per-session wall-clock deadline (RunGuard); 0 = none. */
    int64_t sessionDeadlineMs = 0;
    /** Per-session input-symbol budget (RunGuard); 0 = none. */
    uint64_t sessionSymbolBudget = 0;
    /** Report records a REPLY may carry (count is always exact). */
    size_t maxReportRecords = 4096;
};

/** Engine-agnostic streaming match session (one client stream). */
class MatchSession
{
  public:
    virtual ~MatchSession() = default;

    /** Feed a chunk; returns bytes consumed (short exactly when the
     *  guard in options() stopped the session). */
    virtual size_t feed(const uint8_t *data, size_t len) = 0;

    /** True once the guard stopped this session. */
    virtual bool stopped() const = 0;

    /** Canonical results over the consumed prefix. */
    virtual SimResult results() const = 0;

    /** Stream position (symbols consumed). */
    virtual uint64_t offset() const = 0;

    /** Back to a fresh start-of-stream state (results cleared,
     *  guard stop cleared). */
    virtual void reset() = 0;

    /** Simulation options (guard, record caps); set before feeding. */
    virtual SimOptions &options() = 0;

    /** Measured resident footprint: the sum of this session's owned
     *  container capacities (tables, scratch, buffers, report
     *  vectors). The admission estimate is validated against this in
     *  tests. */
    virtual size_t footprintBytes() const = 0;
};

/** Which engine backs pooled sessions. */
enum class ServeEngine : uint8_t {
    kNfa,     ///< StreamingSession (enabled-set interpreter)
    kPlanned, ///< PlannedSession (profile-routed prefilter plan)
};

/**
 * Free-list of engine sessions over one ruleset generation. acquire()
 * hands out a reset session with default options; release() returns
 * it for the next client. Not thread-safe: the server's event loop
 * owns acquire/release (workers only touch a session between them).
 *
 * The pool is keyed by generation by construction: it owns a
 * RulesetGeneration pin, every session it creates references that
 * generation's automaton, and a hot reload swaps in a whole new pool
 * — so a pooled session can never be reused across rulesets, and a
 * retired generation dies exactly when its pool (and therefore its
 * last session) does.
 */
class MatchSessionPool
{
  public:
    /** Pin @p gen and serve sessions over it. Profiles for kPlanned
     *  come from the generation (inferred at compile/load time, once,
     *  not per session). @p maxReportRecords is the effective
     *  per-reply record cap (ServeLimits::maxReportRecords), sizing
     *  the report-buffer term of estimatedSessionBytes(). */
    explicit MatchSessionPool(
        std::shared_ptr<const CompiledRuleset> gen,
        size_t maxReportRecords = ServeLimits().maxReportRecords);

    /** Compatibility path for callers with a bare automaton: wraps
     *  @p a (copied) in an inline epoch-1 generation. */
    MatchSessionPool(const Automaton &a, ServeEngine engine,
                     const PlanOptions &popts = PlanOptions(),
                     size_t maxReportRecords =
                         ServeLimits().maxReportRecords);

    ~MatchSessionPool();

    std::unique_ptr<MatchSession> acquire();
    void release(std::unique_ptr<MatchSession> s);

    /** Estimated resident bytes of one session: flattened automaton
     *  tables + scratch, plus the planned engine's extra sub-automaton
     *  copies, prefilter scanner tables, and window buffers; the
     *  admission controller's memory unit. */
    size_t estimatedSessionBytes() const { return sessionBytes_; }

    /** Sessions constructed so far (reuse keeps this at the
     *  concurrency high-water mark, not the session count). */
    size_t created() const { return created_; }

    /** The pinned generation (never null). */
    const std::shared_ptr<const CompiledRuleset> &generation() const
    {
        return gen_;
    }

    /** Epoch of the pinned generation. */
    uint64_t epoch() const;

  private:
    /** Declared first so it outlives free_: pooled sessions reference
     *  the generation's automaton and must be destroyed before it. */
    std::shared_ptr<const CompiledRuleset> gen_;
    ServeEngine engine_;
    std::vector<std::unique_ptr<MatchSession>> free_;
    size_t created_ = 0;
    size_t sessionBytes_ = 0;
};

/** No session (shed-victim "none" value). */
inline constexpr uint64_t kNoSession = ~uint64_t(0);

/** Outcome of an admission attempt. */
struct AdmitDecision {
    bool admitted = false;
    /** When !admitted: kRejectedBusy / kRejectedMemory /
     *  kRejectedDrain. */
    ReplyStatus reject = ReplyStatus::kRejectedBusy;
    /** When admitted at capacity: the strictly-lower-priority session
     *  to shed first (kNoSession when capacity was free). */
    uint64_t shedVictim = kNoSession;
};

/**
 * Admission controller. Pure bookkeeping — the server enacts the
 * decisions (sends rejects, sheds victims) and reports lifecycle
 * transitions back. Sessions are identified by the server's ids.
 */
class SessionManager
{
  public:
    SessionManager(const ServeLimits &limits, size_t perSessionBytes);

    /**
     * Decide admission for a newcomer at @p priority (higher value =
     * more important). @p draining rejects everything (kRejectedDrain).
     * At capacity, a strictly-lower-priority admitted session is
     * offered as shedVictim; the caller must retire() it.
     */
    AdmitDecision tryAdmit(uint8_t priority, bool draining) const;

    /** Record an admitted session. */
    void admit(uint64_t id, uint8_t priority);

    /** Record the end of an admitted session (replied, shed, or
     *  dropped). Unknown ids are ignored (retire is idempotent). */
    void retire(uint64_t id);

    size_t active() const { return sessions_.size(); }

    /** Effective session cap: min(maxSessions, memory-derived). */
    size_t capacity() const { return capacity_; }

    /** Recompute capacity for a new per-session footprint (a hot
     *  ruleset reload changes the engine's memory unit). Sessions
     *  already admitted stay admitted — only future tryAdmit() calls
     *  see the new cap. */
    void setPerSessionBytes(size_t perSessionBytes);

    const ServeLimits &limits() const { return limits_; }

  private:
    ServeLimits limits_;
    size_t capacity_;
    std::map<uint64_t, uint8_t> sessions_; ///< id -> priority
};

} // namespace serve
} // namespace azoo

#endif // AZOO_SERVE_SESSION_MANAGER_HH
