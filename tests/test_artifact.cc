/**
 * @file
 * Artifact (.azoox) tests: the golden bytes of the spec's worked
 * example, save->load->simulate bit-identity across every zoo
 * benchmark (graph round trip AND report streams, for both the
 * zero-copy EXEC path and the materialized path), hostile-file
 * hardening (truncation, corruption, version skew, bad checksums —
 * always a structured Status, never a crash), the zero-allocation
 * guarantee of the mmap fast path via obs counters, and the bad-file
 * corpus in tests/data/bad/.
 */

#include <gtest/gtest.h>

#include <cctype>
#include <cstdio>
#include <cstring>

#include "artifact/artifact.hh"
#include "engine/nfa_engine.hh"
#include "obs/obs.hh"
#include "zoo/registry.hh"

namespace azoo {
namespace {

using artifact::LoadedArtifact;
using artifact::LoadOptions;
using artifact::WriteOptions;

/**
 * The worked example of docs/ARTIFACT_FORMAT.md §9: three STEs
 * 'a' (all-input) -> 'b' -> 'c' (reporting, code 7), no exec image.
 * If this test fails, the writer's byte layout changed and the spec's
 * annotated hex dump (and this array) must be regenerated together.
 */
const uint8_t kGolden[] = {
    0x89, 0x41, 0x5a, 0x4f, 0x4f, 0x58, 0x0d, 0x0a, 0x01, 0x00, 0x01, 0x00,
    0x00, 0x00, 0x00, 0x00, 0x60, 0x01, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,
    0x03, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x02, 0x00, 0x00, 0x00,
    0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,
    0x01, 0x05, 0x00, 0x00, 0x57, 0x4a, 0x16, 0xc0, 0x00, 0x00, 0x00, 0x00,
    0x00, 0x00, 0x00, 0x00, 0x4d, 0x45, 0x54, 0x41, 0x00, 0x00, 0x00, 0x00,
    0xb8, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x07, 0x00, 0x00, 0x00,
    0x00, 0x00, 0x00, 0x00, 0x43, 0x53, 0x45, 0x54, 0x00, 0x00, 0x00, 0x00,
    0xc0, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x64, 0x00, 0x00, 0x00,
    0x00, 0x00, 0x00, 0x00, 0x45, 0x4c, 0x45, 0x4d, 0x00, 0x00, 0x00, 0x00,
    0x28, 0x01, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x24, 0x00, 0x00, 0x00,
    0x00, 0x00, 0x00, 0x00, 0x45, 0x44, 0x47, 0x45, 0x00, 0x00, 0x00, 0x00,
    0x50, 0x01, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x03, 0x00, 0x00, 0x00,
    0x00, 0x00, 0x00, 0x00, 0x52, 0x53, 0x54, 0x45, 0x00, 0x00, 0x00, 0x00,
    0x58, 0x01, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x03, 0x00, 0x00, 0x00,
    0x00, 0x00, 0x00, 0x00, 0x03, 0x00, 0x00, 0x00, 0x61, 0x62, 0x63, 0x00,
    0x03, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,
    0x00, 0x00, 0x00, 0x00, 0x02, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,
    0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,
    0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,
    0x04, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,
    0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,
    0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x08, 0x00, 0x00, 0x00,
    0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,
    0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x04, 0x00, 0x00, 0x00,
    0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,
    0x00, 0x00, 0x00, 0x00, 0x01, 0x00, 0x00, 0x00, 0x08, 0x00, 0x00, 0x00,
    0x07, 0x00, 0x00, 0x00, 0x02, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,
    0x01, 0x01, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,
    0x00, 0x00, 0x00, 0x00};

Automaton
specExample()
{
    Automaton a("abc");
    ElementId s0 = a.addSte(CharSet::single('a'), StartType::kAllInput);
    ElementId s1 = a.addSte(CharSet::single('b'));
    ElementId s2 =
        a.addSte(CharSet::single('c'), StartType::kNone, true, 7);
    a.addEdge(s0, s1);
    a.addEdge(s1, s2);
    return a;
}

std::vector<uint8_t>
goldenBytes()
{
    return {kGolden, kGolden + sizeof(kGolden)};
}

std::vector<uint8_t>
writeOrDie(const Automaton &a, bool exec)
{
    WriteOptions w;
    w.execImage = exec;
    Expected<std::vector<uint8_t>> bytes = artifact::writeArtifact(a, w);
    EXPECT_TRUE(bytes.ok()) << bytes.status().str();
    return std::move(*std::move(bytes));
}

LoadedArtifact
loadOrDie(std::vector<uint8_t> bytes, const LoadOptions &opts = {})
{
    Expected<LoadedArtifact> la =
        artifact::loadArtifactFromBytes(std::move(bytes), opts);
    EXPECT_TRUE(la.ok()) << la.status().str();
    return std::move(*std::move(la));
}

ErrorCode
loadError(std::vector<uint8_t> bytes, const LoadOptions &opts = {})
{
    Expected<LoadedArtifact> la =
        artifact::loadArtifactFromBytes(std::move(bytes), opts);
    EXPECT_FALSE(la.ok())
        << "a hostile mutation loaded successfully";
    return la.ok() ? ErrorCode::kOk : la.status().code();
}

/** Patch the header CRC after mutating payload bytes, so corruption
 *  tests can target the *parsers* rather than the checksum. */
void
fixCrc(std::vector<uint8_t> &bytes)
{
    const uint32_t crc = artifact::crc32(
        bytes.data() + artifact::kHeaderSize,
        bytes.size() - artifact::kHeaderSize);
    for (int i = 0; i < 4; ++i)
        bytes[52 + i] = static_cast<uint8_t>(crc >> (8 * i));
}

// ---------------------------------------------------------------
// The spec's worked example, byte for byte.
// ---------------------------------------------------------------

TEST(Golden, WriterMatchesSpecHexDump)
{
    WriteOptions w;
    w.execImage = false;
    Expected<std::vector<uint8_t>> bytes =
        artifact::writeArtifact(specExample(), w);
    ASSERT_TRUE(bytes.ok()) << bytes.status().str();
    ASSERT_EQ(bytes->size(), sizeof(kGolden));
    for (size_t i = 0; i < bytes->size(); ++i) {
        ASSERT_EQ((*bytes)[i], kGolden[i])
            << "first difference at offset " << i
            << " — regenerate the hex dump in docs/ARTIFACT_FORMAT.md "
               "and this array together";
    }
}

TEST(Golden, SpecHexDumpLoadsAndMaterializes)
{
    LoadedArtifact la = loadOrDie(goldenBytes());
    EXPECT_EQ(la.name(), "abc");
    EXPECT_EQ(la.elementCount(), 3u);
    EXPECT_EQ(la.edgeCount(), 2u);
    EXPECT_FALSE(la.hasExecImage());
    ASSERT_EQ(la.sections().size(), 5u);
    EXPECT_EQ(la.sections()[0].tag, "META");

    Expected<Automaton> m = la.materialize();
    ASSERT_TRUE(m.ok()) << m.status().str();
    EXPECT_TRUE(artifact::automataIdentical(specExample(), *m));
}

TEST(Golden, Crc32KnownAnswer)
{
    // The CRC-32/IEEE check value: crc32("123456789") = 0xCBF43926.
    const uint8_t check[] = {'1', '2', '3', '4', '5', '6', '7', '8',
                             '9'};
    EXPECT_EQ(artifact::crc32(check, sizeof(check)), 0xCBF43926u);
}

// ---------------------------------------------------------------
// Round trip over every zoo benchmark: graph identity plus
// bit-identical simulation through both load paths.
// ---------------------------------------------------------------

class ArtifactZooRoundTrip : public testing::TestWithParam<std::string>
{
};

TEST_P(ArtifactZooRoundTrip, SaveLoadSimulateBitIdentical)
{
    zoo::ZooConfig cfg;
    cfg.scale = 0.01;
    cfg.inputBytes = 32 * 1024;
    zoo::Benchmark b = zoo::makeBenchmark(GetParam(), cfg);

    LoadedArtifact la = loadOrDie(writeOrDie(b.automaton, true));
    EXPECT_EQ(la.name(), b.automaton.name());
    EXPECT_EQ(la.elementCount(), b.automaton.size());
    EXPECT_EQ(la.edgeCount(), b.automaton.edgeCount());
    EXPECT_EQ(la.resetEdgeCount(), b.automaton.resetEdgeCount());
    ASSERT_TRUE(la.hasExecImage());

    // Graph round trip: element-for-element, edge-for-edge.
    Expected<Automaton> m = la.materialize();
    ASSERT_TRUE(m.ok()) << m.status().str();
    ASSERT_TRUE(artifact::automataIdentical(b.automaton, *m));

    // Simulation bit-identity: original vs zero-copy EXEC image vs
    // materialized graph. Reports (offset/element/code, in emission
    // order), by-code tallies, and the dynamic statistics must all
    // agree exactly.
    SimOptions opts;
    opts.countByCode = true;
    NfaEngine ref(b.automaton);
    const SimResult r0 = ref.simulate(b.input, opts);

    NfaEngine viaImage(la.execImage());
    const SimResult r1 = viaImage.simulate(b.input, opts);
    NfaEngine viaGraph(*m);
    const SimResult r2 = viaGraph.simulate(b.input, opts);

    for (const SimResult *r : {&r1, &r2}) {
        EXPECT_EQ(r->symbols, r0.symbols);
        EXPECT_EQ(r->reportCount, r0.reportCount);
        EXPECT_EQ(r->reports, r0.reports);
        EXPECT_EQ(r->byCode, r0.byCode);
        EXPECT_EQ(r->totalEnabled, r0.totalEnabled);
        EXPECT_EQ(r->reportingCycles, r0.reportingCycles);
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllBenchmarks, ArtifactZooRoundTrip, [] {
        std::vector<std::string> names;
        for (const auto &info : zoo::allBenchmarks())
            names.push_back(info.name);
        return testing::ValuesIn(names);
    }(),
    [](const testing::TestParamInfo<std::string> &info) {
        std::string id = info.param;
        for (char &c : id) {
            if (!isalnum(static_cast<unsigned char>(c)))
                c = '_';
        }
        return id;
    });

// ---------------------------------------------------------------
// The zero-allocation / zero-copy criterion, observed via obs.
// ---------------------------------------------------------------

TEST(ZeroCopy, ExecPathNeverMaterializesOrCompiles)
{
    zoo::ZooConfig cfg;
    cfg.scale = 0.01;
    cfg.inputBytes = 4096;
    zoo::Benchmark b = zoo::makeBenchmark("Snort", cfg);
    std::vector<uint8_t> bytes = writeOrDie(b.automaton, true);

    obs::Registry &reg = obs::Registry::global();
    const uint64_t mat0 = reg.counterValue("artifact.materialize.count");
    const uint64_t cmp0 = reg.counterValue("engine.nfa.compiles");
    const uint64_t ado0 =
        reg.counterValue("engine.nfa.image_adoptions");

    LoadedArtifact la = loadOrDie(std::move(bytes));
    NfaEngine e(la.execImage());
    const SimResult r = e.simulate(b.input);
    EXPECT_EQ(r.symbols, cfg.inputBytes);

    if (obs::kEnabled) {
        EXPECT_EQ(reg.counterValue("artifact.materialize.count"), mat0)
            << "the exec path materialized the graph";
        EXPECT_EQ(reg.counterValue("engine.nfa.compiles"), cmp0)
            << "the exec path recompiled tables from an Automaton";
        EXPECT_EQ(reg.counterValue("engine.nfa.image_adoptions"),
                  ado0 + 1);
    }
}

TEST(ZeroCopy, LoadedArtifactSurvivesMove)
{
    LoadedArtifact la = loadOrDie(writeOrDie(specExample(), true));
    LoadedArtifact moved = std::move(la);
    ASSERT_TRUE(moved.hasExecImage());
    NfaEngine e(moved.execImage());
    const std::string in = "xabcx";
    const SimResult r = e.simulate(
        reinterpret_cast<const uint8_t *>(in.data()), in.size());
    EXPECT_EQ(r.reportCount, 1u);
    ASSERT_EQ(r.reports.size(), 1u);
    EXPECT_EQ(r.reports[0].code, 7u);
    EXPECT_EQ(r.reports[0].offset, 3u);
}

TEST(ZeroCopy, MmapFileLoadExecutesInPlace)
{
    const std::string path =
        testing::TempDir() + "/artifact_mmap_test.azoox";
    Expected<artifact::ArtifactInfo> info =
        artifact::saveArtifact(path, specExample());
    ASSERT_TRUE(info.ok()) << info.status().str();
    EXPECT_GT(info->fileBytes, artifact::kHeaderSize);

    Expected<LoadedArtifact> la = artifact::loadArtifact(path);
    ASSERT_TRUE(la.ok()) << la.status().str();
    EXPECT_TRUE(la->mapped());
    ASSERT_TRUE(la->hasExecImage());
    NfaEngine e(la->execImage());
    const std::string in = "abc";
    const SimResult r = e.simulate(
        reinterpret_cast<const uint8_t *>(in.data()), in.size());
    EXPECT_EQ(r.reportCount, 1u);
    std::remove(path.c_str());
}

// ---------------------------------------------------------------
// Hostile files: structured Status for every mutation, no crashes.
// ---------------------------------------------------------------

TEST(HostileFile, TruncationAtEveryBoundaryIsStructured)
{
    const std::vector<uint8_t> good = writeOrDie(specExample(), true);
    for (size_t cut : {size_t(0), size_t(7), size_t(8), size_t(63),
                       size_t(64), size_t(100), size_t(183),
                       good.size() - 1}) {
        std::vector<uint8_t> bytes(good.begin(), good.begin() + cut);
        EXPECT_EQ(loadError(std::move(bytes)), ErrorCode::kParseError)
            << "cut at " << cut;
    }
}

TEST(HostileFile, BadMagic)
{
    std::vector<uint8_t> bytes = goldenBytes();
    bytes[0] = 'P';
    EXPECT_EQ(loadError(std::move(bytes)), ErrorCode::kParseError);
}

TEST(HostileFile, FutureMajorVersionIsVersionMismatch)
{
    std::vector<uint8_t> bytes = goldenBytes();
    bytes[8] = 2; // versionMajor = 2; header is outside the CRC
    EXPECT_EQ(loadError(std::move(bytes)),
              ErrorCode::kVersionMismatch);
}

TEST(HostileFile, FutureMinorVersionIsAccepted)
{
    std::vector<uint8_t> bytes = goldenBytes();
    bytes[10] = 9; // versionMinor = 9: same major, must load
    LoadedArtifact la = loadOrDie(std::move(bytes));
    EXPECT_EQ(la.versionMinor(), 9u);
}

TEST(HostileFile, UnknownMustUnderstandFlagIsUnsupported)
{
    std::vector<uint8_t> bytes = goldenBytes();
    bytes[14] = 0x01; // flags bit 16: must-understand space
    EXPECT_EQ(loadError(std::move(bytes)), ErrorCode::kUnsupported);
}

TEST(HostileFile, UnknownIgnorableFlagIsAccepted)
{
    std::vector<uint8_t> bytes = goldenBytes();
    bytes[13] = 0x80; // flags bit 15: ignorable feature space
    loadOrDie(std::move(bytes));
}

TEST(HostileFile, PayloadCorruptionIsChecksumMismatch)
{
    std::vector<uint8_t> bytes = goldenBytes();
    bytes[0xC0] ^= 0x01; // CSET count byte
    EXPECT_EQ(loadError(std::move(bytes)),
              ErrorCode::kChecksumMismatch);
}

TEST(HostileFile, ChecksumCheckCanBeSkipped)
{
    // The fuzzer's configuration: corrupt payload, checksum off —
    // the section parsers must still fail *structurally*.
    std::vector<uint8_t> bytes = goldenBytes();
    bytes[0xC0] ^= 0x01; // CSET count: 3 -> 2, length mismatch
    LoadOptions opts;
    opts.verifyChecksum = false;
    LoadedArtifact la = loadOrDie(std::move(bytes), opts);
    Expected<Automaton> m = la.materialize();
    ASSERT_FALSE(m.ok());
    EXPECT_EQ(m.status().code(), ErrorCode::kParseError);
}

TEST(HostileFile, DeclaredSizeMismatchIsStructured)
{
    std::vector<uint8_t> bytes = goldenBytes();
    bytes.push_back(0); // trailing garbage vs declared fileSize
    EXPECT_EQ(loadError(std::move(bytes)), ErrorCode::kParseError);
}

TEST(HostileFile, BadIdWidth)
{
    std::vector<uint8_t> bytes = goldenBytes();
    bytes[48] = 3;
    fixCrc(bytes); // idWidth is in the header, but stay canonical
    EXPECT_EQ(loadError(std::move(bytes)), ErrorCode::kParseError);
}

TEST(HostileFile, DanglingEdgeInGraphSections)
{
    // EDGE section of the golden file: 01 01 00 at 0x150. Turn the
    // last element's empty list into CHAIN -> element 3 (dangling).
    std::vector<uint8_t> bytes = goldenBytes();
    bytes[0x152] = 0x01;
    fixCrc(bytes);
    LoadedArtifact la = loadOrDie(std::move(bytes));
    Expected<Automaton> m = la.materialize();
    ASSERT_FALSE(m.ok());
    EXPECT_EQ(m.status().code(), ErrorCode::kParseError);
}

TEST(HostileFile, CorruptExecImageFailsAtLoad)
{
    std::vector<uint8_t> good = writeOrDie(specExample(), true);
    // Find the EXEC section via a clean load, then break edgeBegin[0]
    // (first u32 after the 64-byte exec header).
    uint64_t execOff = 0;
    {
        LoadedArtifact la = loadOrDie(std::vector<uint8_t>(good));
        for (const artifact::SectionInfo &s : la.sections()) {
            if (s.tag == "EXEC")
                execOff = s.offset;
        }
        ASSERT_NE(execOff, 0u);
    }
    good[execOff + 64] = 0xFF;
    fixCrc(good);
    EXPECT_EQ(loadError(std::move(good)), ErrorCode::kParseError);
}

TEST(HostileFile, ExecCountsMustMatchHeader)
{
    std::vector<uint8_t> good = writeOrDie(specExample(), true);
    uint64_t execOff = 0;
    {
        LoadedArtifact la = loadOrDie(std::vector<uint8_t>(good));
        for (const artifact::SectionInfo &s : la.sections()) {
            if (s.tag == "EXEC")
                execOff = s.offset;
        }
    }
    good[execOff] ^= 0x04; // EXEC's own element count
    fixCrc(good);
    EXPECT_EQ(loadError(std::move(good)), ErrorCode::kParseError);
}

TEST(HostileFile, MaterializeHonorsParseLimits)
{
    LoadedArtifact la = loadOrDie(goldenBytes());
    ParseLimits limits;
    limits.maxStates = 2;
    Expected<Automaton> m = la.materialize(limits);
    ASSERT_FALSE(m.ok());
    EXPECT_EQ(m.status().code(), ErrorCode::kLimitExceeded);
}

TEST(HostileFile, MissingFileIsIoError)
{
    Expected<LoadedArtifact> la =
        artifact::loadArtifact("/nonexistent/no.azoox");
    ASSERT_FALSE(la.ok());
    EXPECT_EQ(la.status().code(), ErrorCode::kIoError);
}

// ---------------------------------------------------------------
// The committed bad-file corpus (tests/data/bad/), shared with the
// fuzzer's gcc replay leg.
// ---------------------------------------------------------------

TEST(BadCorpus, CommittedBadArtifactsAreStructured)
{
    const struct {
        const char *name;
        ErrorCode code;
    } cases[] = {
        {"truncated.azoox", ErrorCode::kParseError},
        {"badcrc.azoox", ErrorCode::kChecksumMismatch},
    };
    for (const auto &c : cases) {
        const std::string path =
            std::string(AZOO_TEST_DATA_DIR) + "/bad/" + c.name;
        Expected<LoadedArtifact> la = artifact::loadArtifact(path);
        ASSERT_FALSE(la.ok()) << c.name;
        EXPECT_EQ(la.status().code(), c.code) << c.name << ": "
                                              << la.status().str();
    }
}

// ---------------------------------------------------------------
// automataIdentical is a real equivalence, not a rubber stamp.
// ---------------------------------------------------------------

TEST(Identical, DetectsEveryFieldDifference)
{
    const Automaton a = specExample();
    EXPECT_TRUE(artifact::automataIdentical(a, a));

    Automaton b = specExample();
    b.setName("abd");
    EXPECT_FALSE(artifact::automataIdentical(a, b));

    b = specExample();
    b.element(1).symbols.set('z');
    EXPECT_FALSE(artifact::automataIdentical(a, b));

    b = specExample();
    b.element(2).reportCode = 8;
    EXPECT_FALSE(artifact::automataIdentical(a, b));

    b = specExample();
    b.addEdge(0, 2);
    EXPECT_FALSE(artifact::automataIdentical(a, b));

    // Edge *order* matters: same edge set, different emission order.
    Automaton c("abc");
    c.addSte(CharSet::single('a'), StartType::kAllInput);
    c.addSte(CharSet::single('b'));
    c.addSte(CharSet::single('c'), StartType::kNone, true, 7);
    c.addEdge(0, 2);
    c.addEdge(0, 1);
    Automaton d("abc");
    d.addSte(CharSet::single('a'), StartType::kAllInput);
    d.addSte(CharSet::single('b'));
    d.addSte(CharSet::single('c'), StartType::kNone, true, 7);
    d.addEdge(0, 1);
    d.addEdge(0, 2);
    EXPECT_FALSE(artifact::automataIdentical(c, d));
}

TEST(Identical, OutOfOrderEdgesRoundTripInOrder)
{
    // A descending edge list forces the SPARSE encoding (DENSE is
    // ascending-only); the stored order must survive the trip.
    Automaton a("desc");
    a.addSte(CharSet::all(), StartType::kAllInput);
    a.addSte(CharSet::single('x'), StartType::kNone, true, 1);
    a.addSte(CharSet::single('y'), StartType::kNone, true, 2);
    a.addEdge(0, 2);
    a.addEdge(0, 1);
    LoadedArtifact la = loadOrDie(writeOrDie(a, false));
    Expected<Automaton> m = la.materialize();
    ASSERT_TRUE(m.ok()) << m.status().str();
    EXPECT_TRUE(artifact::automataIdentical(a, *m));
}

TEST(Identical, CountersRoundTrip)
{
    Automaton a("ctr");
    ElementId s = a.addSte(CharSet::single('x'), StartType::kAllInput);
    ElementId c =
        a.addCounter(3, CounterMode::kRollover, true, 42);
    a.addEdge(s, c);
    a.addResetEdge(s, c);
    LoadedArtifact la = loadOrDie(writeOrDie(a, true));
    EXPECT_EQ(la.resetEdgeCount(), 1u);
    Expected<Automaton> m = la.materialize();
    ASSERT_TRUE(m.ok()) << m.status().str();
    EXPECT_TRUE(artifact::automataIdentical(a, *m));
    EXPECT_EQ(m->element(1).mode, CounterMode::kRollover);
    EXPECT_EQ(m->element(1).target, 3u);
}

// ---------------------------------------------------------------
// PROF: component profiles ride in the artifact bit-identically.
// ---------------------------------------------------------------

std::vector<uint8_t>
writeWithProfiles(const Automaton &a)
{
    WriteOptions w;
    w.execImage = false;
    w.componentProfiles = true;
    Expected<std::vector<uint8_t>> bytes = artifact::writeArtifact(a, w);
    EXPECT_TRUE(bytes.ok()) << bytes.status().str();
    return std::move(*std::move(bytes));
}

TEST(Prof, AbsentByDefault)
{
    LoadedArtifact la = loadOrDie(writeOrDie(specExample(), false));
    EXPECT_FALSE(la.hasProfiles());
    EXPECT_TRUE(la.componentProfiles().empty());
    for (const artifact::SectionInfo &s : la.sections())
        EXPECT_NE(s.tag, "PROF");
}

TEST(Prof, RoundTripsBitIdentically)
{
    const Automaton a = specExample();
    LoadedArtifact la = loadOrDie(writeWithProfiles(a));
    ASSERT_TRUE(la.hasProfiles());
    // operator== is defaulted over every field, so this is the
    // bit-for-bit criterion, literal string included.
    EXPECT_EQ(la.componentProfiles(), analysis::inferProfiles(a));
}

TEST(Prof, CounterFactsRoundTrip)
{
    Automaton a("ctr");
    ElementId s =
        a.addSte(CharSet::single('x'), StartType::kStartOfData);
    ElementId c = a.addCounter(3, CounterMode::kLatch, true, 9);
    a.addEdge(s, c);
    LoadedArtifact la = loadOrDie(writeWithProfiles(a));
    ASSERT_TRUE(la.hasProfiles());
    ASSERT_EQ(la.componentProfiles().size(), 1u);
    const analysis::ComponentProfile &p = la.componentProfiles()[0];
    EXPECT_EQ(p.cls, analysis::ComponentClass::kCounterCoupled);
    EXPECT_EQ(p.counterCount, 1u);
    EXPECT_EQ(p.minCounterTarget, 3u);
    EXPECT_EQ(p.maxCounterTarget, 3u);
    EXPECT_EQ(la.componentProfiles(), analysis::inferProfiles(a));
}

TEST(Prof, ZooBenchmarkRoundTripsBitIdentically)
{
    zoo::ZooConfig cfg;
    cfg.scale = 0.01;
    cfg.inputBytes = 1024;
    const zoo::Benchmark b = zoo::makeBenchmark("YARA", cfg);
    LoadedArtifact la = loadOrDie(writeWithProfiles(b.automaton));
    ASSERT_TRUE(la.hasProfiles());
    const auto expected = analysis::inferProfiles(b.automaton);
    EXPECT_GT(expected.size(), 1u);
    EXPECT_EQ(la.componentProfiles(), expected);
}

TEST(Prof, CorruptClassFailsAtLoad)
{
    std::vector<uint8_t> bytes = writeWithProfiles(specExample());
    uint64_t profOff = 0;
    {
        LoadedArtifact la = loadOrDie(std::vector<uint8_t>(bytes));
        for (const artifact::SectionInfo &s : la.sections()) {
            if (s.tag == "PROF")
                profOff = s.offset;
        }
        ASSERT_NE(profOff, 0u);
    }
    // Record 0's class byte: 8-byte section header + 7 u32 stats.
    bytes[profOff + 8 + 28] = 7;
    fixCrc(bytes);
    EXPECT_EQ(loadError(std::move(bytes)), ErrorCode::kParseError);
}

TEST(Prof, TruncatedSectionFailsAtLoad)
{
    std::vector<uint8_t> good = writeWithProfiles(specExample());
    // Shrink the PROF table entry's length: the record cursor must
    // run out of bytes, structurally.
    size_t entry = 0;
    for (size_t at = artifact::kHeaderSize; at + 4 <= good.size();
         at += artifact::kSectionEntrySize) {
        if (std::memcmp(good.data() + at, "PROF", 4) == 0) {
            entry = at;
            break;
        }
    }
    ASSERT_NE(entry, 0u);
    ASSERT_GT(good[entry + 16], 1u);
    good[entry + 16] -= 1;
    fixCrc(good);
    EXPECT_EQ(loadError(std::move(good)), ErrorCode::kParseError);
}

} // namespace
} // namespace azoo
