file(REMOVE_RECURSE
  "CMakeFiles/table4_fullkernel_rf.dir/table4_fullkernel_rf.cc.o"
  "CMakeFiles/table4_fullkernel_rf.dir/table4_fullkernel_rf.cc.o.d"
  "table4_fullkernel_rf"
  "table4_fullkernel_rf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_fullkernel_rf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
