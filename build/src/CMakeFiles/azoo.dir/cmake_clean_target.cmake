file(REMOVE_RECURSE
  "libazoo.a"
)
