/**
 * @file
 * StreamingSession tests: chunked feeding is equivalent to monolithic
 * simulation for arbitrary chunkings, including single-byte feeds,
 * counter state across boundaries, and reset semantics.
 */

#include <gtest/gtest.h>

#include "core/builder.hh"
#include "engine/nfa_engine.hh"
#include "engine/parallel_runner.hh"
#include "engine/planner.hh"
#include "engine/run_guard.hh"
#include "engine/streaming.hh"
#include "util/fault.hh"
#include "regex/glushkov.hh"
#include "regex/parser.hh"
#include "util/rng.hh"
#include "zoo/registry.hh"
#include "zoo/seqmatch.hh"

namespace azoo {
namespace {

std::vector<uint8_t>
bytes(const std::string &s)
{
    return {s.begin(), s.end()};
}

TEST(Streaming, MatchStraddlesChunkBoundary)
{
    Automaton a("t");
    addLiteral(a, "abcd", StartType::kAllInput, true, 1);
    StreamingSession sess(a);
    sess.feed(bytes("xxab"));
    EXPECT_EQ(sess.results().reportCount, 0u);
    sess.feed(bytes("cdxx"));
    ASSERT_EQ(sess.results().reportCount, 1u);
    EXPECT_EQ(sess.results().reports[0].offset, 5u);
}

TEST(Streaming, OffsetsAreAbsolute)
{
    Automaton a("t");
    addLiteral(a, "z", StartType::kAllInput, true, 1);
    StreamingSession sess(a);
    for (int chunk = 0; chunk < 5; ++chunk)
        sess.feed(bytes("xyz"));
    ASSERT_EQ(sess.results().reportCount, 5u);
    EXPECT_EQ(sess.results().reports[4].offset, 14u);
    EXPECT_EQ(sess.offset(), 15u);
}

TEST(Streaming, StartOfDataOnlyAtStreamStart)
{
    Automaton a("t");
    addLiteral(a, "ab", StartType::kStartOfData, true, 1);
    StreamingSession sess(a);
    sess.feed(bytes("a"));
    sess.feed(bytes("b"));
    EXPECT_EQ(sess.results().reportCount, 1u);
    sess.feed(bytes("ab")); // not at stream start anymore
    EXPECT_EQ(sess.results().reportCount, 1u);
    sess.reset();
    sess.feed(bytes("ab"));
    EXPECT_EQ(sess.results().reportCount, 1u);
}

TEST(Streaming, CounterStatePersistsAcrossChunks)
{
    Automaton a("t");
    ElementId s = a.addSte(CharSet::single('a'), StartType::kAllInput);
    ElementId c = a.addCounter(3, CounterMode::kLatch, true, 9);
    a.addEdge(s, c);
    StreamingSession sess(a);
    sess.feed(bytes("a"));
    sess.feed(bytes("a"));
    EXPECT_EQ(sess.results().reportCount, 0u);
    sess.feed(bytes("a"));
    EXPECT_EQ(sess.results().reportCount, 1u);
}

/** Property: any chunking equals monolithic simulation. */
class StreamingProperty : public testing::TestWithParam<int>
{
};

TEST_P(StreamingProperty, ChunkingInvariance)
{
    Rng rng(31000 + GetParam());
    static const char *kPatterns[] = {"ab+c", "a(b|c)d", "x[ab]{2,4}y",
                                      "a.b"};
    Automaton a("t");
    for (int i = 0; i < 3; ++i) {
        appendRegex(
            a,
            parseRegexOrDie(kPatterns[rng.nextBelow(std::size(kPatterns))]),
            static_cast<uint32_t>(i));
    }
    // Mix in a counter component.
    zoo::SeqMatchParams sp;
    sp.itemsetSize = 2;
    sp.filterWidth = 3;
    sp.withCounters = true;
    sp.supportThreshold = 2;
    zoo::appendSeqFilter(a, {'b', 'x'}, sp, 7);

    const std::string text =
        rng.randomString(200, "abcxy") + "\xff" + "bx\xff" + "bx\xff" +
        rng.randomString(50, "abcxy");
    const auto in = bytes(text);

    NfaEngine mono(a);
    auto expect = mono.simulate(in);

    StreamingSession sess(a);
    size_t pos = 0;
    while (pos < in.size()) {
        const size_t chunk =
            std::min<size_t>(1 + rng.nextBelow(17), in.size() - pos);
        sess.feed(in.data() + pos, chunk);
        pos += chunk;
    }
    EXPECT_EQ(sess.results().reportCount, expect.reportCount);
    EXPECT_EQ(sess.results().reports, expect.reports);
    EXPECT_EQ(sess.results().totalEnabled, expect.totalEnabled);

    // Byte-at-a-time feeding too.
    StreamingSession one(a);
    for (auto b : in)
        one.feed(&b, 1);
    EXPECT_EQ(one.results().reports, expect.reports);
}

INSTANTIATE_TEST_SUITE_P(Seeds, StreamingProperty,
                         testing::Range(0, 20));

// ---------------------------------------------------------------
// Guard semantics under chunking. The guard is polled at multiples
// of kGuardCheckIntervalSymbols of *stream* position, so a chunked
// session with a symbol budget must stop at exactly the same prefix
// as a monolithic guarded run — and report exactly the same results.

/** 'z' reporter plus input with a 'z' every 7 bytes. */
Automaton
guardAutomaton()
{
    Automaton a("g");
    addLiteral(a, "z", StartType::kAllInput, true, 1);
    return a;
}

std::vector<uint8_t>
guardInput(size_t n)
{
    std::vector<uint8_t> in(n, 'x');
    for (size_t i = 0; i < n; i += 7)
        in[i] = 'z';
    return in;
}

TEST(StreamingGuard, BudgetStopsMidChunkAndMatchesSerial)
{
    Automaton a = guardAutomaton();
    const std::vector<uint8_t> in = guardInput(10000);

    RunGuard guard;
    guard.setSymbolBudget(3000);

    StreamingSession sess(a);
    sess.options.guard = &guard;
    size_t consumed = 0;
    // 512-byte chunks: the stop point (a multiple of 1024) falls
    // mid-stream, so some feed must return short.
    bool sawShortFeed = false;
    for (size_t pos = 0; pos < in.size();) {
        const size_t want = std::min<size_t>(512, in.size() - pos);
        const size_t got = sess.feed(in.data() + pos, want);
        consumed += got;
        pos += got;
        if (got < want) {
            sawShortFeed = true;
            break;
        }
    }
    EXPECT_TRUE(sawShortFeed);
    EXPECT_TRUE(sess.stopped());
    const SimResult &r = sess.results();
    EXPECT_EQ(r.guardStatus.code(), ErrorCode::kLimitExceeded);
    EXPECT_TRUE(r.truncated());
    EXPECT_EQ(r.symbols, consumed);
    // Budget 3000 stops at the first poll point >= 3000.
    EXPECT_EQ(consumed, 3072u);

    // A monolithic guarded NFA run must agree exactly.
    RunGuard guard2;
    guard2.setSymbolBudget(3000);
    SimOptions sopts;
    sopts.guard = &guard2;
    NfaEngine engine(a);
    SimResult serial = engine.simulate(in.data(), in.size(), sopts);
    EXPECT_EQ(r.symbols, serial.symbols);
    EXPECT_EQ(r.reportCount, serial.reportCount);
    EXPECT_EQ(r.reports, serial.reports);
    EXPECT_EQ(r.totalEnabled, serial.totalEnabled);
}

TEST(StreamingGuard, StoppedSessionRefusesFeedUntilReset)
{
    Automaton a = guardAutomaton();
    const std::vector<uint8_t> in = guardInput(4096);

    RunGuard guard;
    guard.setSymbolBudget(1000);
    StreamingSession sess(a);
    sess.options.guard = &guard;
    EXPECT_LT(sess.feed(in), in.size());
    ASSERT_TRUE(sess.stopped());
    const uint64_t symbolsAtStop = sess.results().symbols;

    // Further feeds consume nothing and change nothing.
    EXPECT_EQ(sess.feed(in), 0u);
    EXPECT_EQ(sess.results().symbols, symbolsAtStop);

    // reset() clears the stop; with the guard removed the stream
    // runs to completion.
    sess.reset();
    EXPECT_FALSE(sess.stopped());
    sess.options.guard = nullptr;
    EXPECT_EQ(sess.feed(in), in.size());
    EXPECT_FALSE(sess.results().truncated());
    EXPECT_EQ(sess.results().symbols, in.size());
}

TEST(StreamingGuard, CancelledGuardStopsAtFirstPoll)
{
    Automaton a = guardAutomaton();
    const std::vector<uint8_t> in = guardInput(2048);

    RunGuard guard;
    guard.cancel(); // already raised before the first check
    StreamingSession sess(a);
    sess.options.guard = &guard;
    EXPECT_EQ(sess.feed(in), 0u); // poll at t=0 fires before any byte
    EXPECT_TRUE(sess.stopped());
    EXPECT_EQ(sess.results().guardStatus.code(),
              ErrorCode::kCancelled);
    EXPECT_EQ(sess.results().symbols, 0u);
    EXPECT_EQ(sess.results().reportCount, 0u);
}

TEST(StreamingGuard, InjectedExpiryTruncatesAtPollBoundary)
{
    struct FaultScope {
        ~FaultScope() { fault::disarmAll(); }
    } scope;

    Automaton a = guardAutomaton();
    const std::vector<uint8_t> in = guardInput(8192);

    RunGuard guard; // no limits: only the injected fault can fire
    StreamingSession sess(a);
    sess.options.guard = &guard;
    // Skip the t=0 poll, fire on the second check (t=1024).
    fault::armAfter(fault::Point::kGuardExpiry, 1);
    const size_t got = sess.feed(in);
    EXPECT_EQ(got, kGuardCheckIntervalSymbols);
    EXPECT_TRUE(sess.stopped());
    const SimResult &r = sess.results();
    EXPECT_EQ(r.guardStatus.code(), ErrorCode::kDeadlineExceeded);
    EXPECT_EQ(r.symbols, kGuardCheckIntervalSymbols);
    // Results cover exactly the consumed prefix: one 'z' per 7 bytes.
    EXPECT_EQ(r.reportCount, (kGuardCheckIntervalSymbols + 6) / 7);
}

// ---------------------------------------------------------------
// Session reuse. azoo_serve pools engine sessions across protocol
// sessions, so reset() must restore *every* piece of state a feed can
// dirty — match state, counters, stream offset, guard status — or a
// reused session leaks one client's progress into the next. The
// regression cycles dirty->reset->rerun across the whole zoo and
// demands bit-identical results to a fresh session, including the
// nastiest path: reset after a mid-stream guard stop.

/** Canonicalized copy (sorted reports) for order-independent
 *  comparison. */
SimResult
canon(SimResult r)
{
    canonicalizeReports(r);
    return r;
}

template <typename Session>
void
expectSameAsFresh(const Automaton &a, Session &reused,
                  const std::vector<uint8_t> &in, const char *what)
{
    Session fresh(a);
    size_t pos = 0;
    // Uneven chunking on the reused session, monolithic on the fresh
    // one: reset must also clear chunk-boundary carry state.
    const size_t kChunks[] = {1, 777, 64, 4096};
    size_t ci = 0;
    while (pos < in.size()) {
        const size_t n = std::min(kChunks[ci++ % 4], in.size() - pos);
        reused.feed(in.data() + pos, n);
        pos += n;
    }
    fresh.feed(in.data(), in.size());
    const SimResult got = canon(reused.results());
    const SimResult want = canon(fresh.results());
    EXPECT_EQ(got.symbols, want.symbols) << what;
    EXPECT_EQ(got.reportCount, want.reportCount) << what;
    EXPECT_EQ(got.reports, want.reports) << what;
    EXPECT_EQ(reused.offset(), in.size()) << what;
}

template <typename Session>
void
cycleResetAcrossZoo()
{
    zoo::ZooConfig cfg;
    cfg.scale = 0.01;
    cfg.inputBytes = 8192;
    for (const auto &info : zoo::allBenchmarks()) {
        SCOPED_TRACE(info.name);
        zoo::Benchmark b = info.make(cfg);
        const std::vector<uint8_t> &in = b.input;
        Session sess(b.automaton);

        // Cycle 1: dirty the session with a different slice, reset.
        sess.feed(in.data(), in.size() / 2);
        sess.reset();
        expectSameAsFresh(b.automaton, sess, in, "after plain reset");

        // Cycle 2: stop it mid-stream with a guard, reset. A stopped
        // session refuses feeds, so this is the path a pooled serve
        // session takes after a truncated reply.
        sess.reset();
        RunGuard guard;
        guard.setSymbolBudget(2048);
        sess.options.guard = &guard;
        sess.feed(in.data(), in.size());
        EXPECT_TRUE(sess.stopped());
        sess.reset();
        sess.options.guard = nullptr;
        expectSameAsFresh(b.automaton, sess, in, "after guard stop");
    }
}

TEST(SessionReuse, StreamingResetIsBitIdenticalAcrossZoo)
{
    cycleResetAcrossZoo<StreamingSession>();
}

TEST(SessionReuse, PlannedResetIsBitIdenticalAcrossZoo)
{
    cycleResetAcrossZoo<PlannedSession>();
}

} // namespace
} // namespace azoo
