#!/usr/bin/env python3
"""CI analysis sweep: lint every zoo benchmark, raw and transformed.

Generates each benchmark with azoo_gen, runs azoo_lint over the raw
automaton and after every azoo_opt transform pass (prefix, suffix,
full, prune, and — for counter-free benchmarks — widen, linted with
--widened), and compares the per-rule finding counts against the
committed ratchet file:

  - error-level findings always fail: shipped zoo automata are
    error-free by contract, at every stage;
  - warning counts may not exceed the ratchet baseline (a new warning
    fails CI; fixing one prints a reminder to re-ratchet);
  - notes are informational and never gate.

Run `analysis_sweep.py --build-dir build --update` after an
intentional change to refresh tools/analysis_ratchet.json, and commit
the diff. Stdlib only; exit 0 clean, 1 on regression, 64 usage.
"""

import argparse
import json
import os
import subprocess
import sys
import tempfile

PASSES = ["prefix", "suffix", "full", "prune", "widen"]


def run(cmd, ok_codes=(0,)):
    proc = subprocess.run(cmd, stdout=subprocess.PIPE,
                          stderr=subprocess.STDOUT, text=True)
    if proc.returncode not in ok_codes:
        sys.stderr.write(f"analysis_sweep: {' '.join(cmd)} exited "
                         f"{proc.returncode}:\n{proc.stdout}\n")
        sys.exit(1)
    return proc


def benchmark_names(gen):
    out = run([gen, "--list"]).stdout
    names = []
    for line in out.splitlines():
        # "<name>  [<category>]"
        name = line.split("  [")[0].strip()
        if name:
            names.append(name)
    return names


def lint_counts(lint, path, widened=False):
    """Run azoo_lint with SARIF output; return ({rule: count} for
    errors+warnings, note_total, classes) where classes is the set of
    component-class codes seen (from the census line)."""
    sarif_path = path + ".sarif"
    cmd = [lint, "--in", path, f"--json={sarif_path}"]
    if widened:
        cmd.append("--widened")
    proc = run(cmd, ok_codes=(0, 65))
    classes = set()
    for line in proc.stdout.splitlines():
        line = line.strip()
        if line.startswith("components: "):
            census = line[len("components: "):].split(",")[0]
            for tok in census.split("/"):
                if tok and tok[0] in "LRCU":
                    classes.add(tok[0])
    with open(sarif_path, encoding="utf-8") as f:
        doc = json.load(f)
    counts = {}
    notes = 0
    for sarif_run in doc["runs"]:
        for result in sarif_run["results"]:
            level = result.get("level", "warning")
            if level == "note":
                notes += 1
                continue
            key = f"{level}:{result['ruleId']}"
            counts[key] = counts.get(key, 0) + 1
    return counts, notes, classes


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("--build-dir", default="build")
    ap.add_argument("--ratchet",
                    default=os.path.join(os.path.dirname(__file__),
                                         "analysis_ratchet.json"))
    ap.add_argument("--scale", default="0.01")
    ap.add_argument("--input", default="4096")
    ap.add_argument("--update", action="store_true",
                    help="rewrite the ratchet file instead of checking")
    args = ap.parse_args()

    tools = os.path.join(args.build_dir, "tools")
    gen = os.path.join(tools, "azoo_gen")
    opt = os.path.join(tools, "azoo_opt")
    lint = os.path.join(tools, "azoo_lint")
    for tool in (gen, opt, lint):
        if not os.path.exists(tool):
            sys.stderr.write(f"analysis_sweep: {tool} not built\n")
            return 64

    baseline = {}
    if not args.update:
        with open(args.ratchet, encoding="utf-8") as f:
            baseline = json.load(f)

    observed = {}
    failures = []
    improvements = []
    with tempfile.TemporaryDirectory() as tmp:
        for name in benchmark_names(gen):
            base = os.path.join(tmp, name.replace(" ", "_"))
            run([gen, "--name", name, "--out", base, "--format",
                 "mnrl", "--scale", args.scale, "--input", args.input])
            raw = base + ".mnrl"

            counts, notes, classes = lint_counts(lint, raw)
            stages = [("raw", counts, notes)]
            has_counters = "C" in classes
            for pass_name in PASSES:
                if pass_name == "widen" and has_counters:
                    continue  # widen is STE-only by design
                staged = f"{base}.{pass_name}.mnrl"
                run([opt, "--in", raw, "--out", staged, "--pass",
                     pass_name])
                counts, notes, _ = lint_counts(
                    lint, staged, widened=(pass_name == "widen"))
                stages.append((pass_name, counts, notes))

            for stage, counts, notes in stages:
                key = f"{name}::{stage}"
                observed[key] = counts
                total = sum(counts.values())
                print(f"  {key}: {total} gating finding(s), "
                      f"{notes} note(s)")
                if args.update:
                    continue
                base_counts = baseline.get(key, {})
                for rule, count in counts.items():
                    level = rule.split(":", 1)[0]
                    allowed = base_counts.get(rule, 0)
                    if level == "error" or count > allowed:
                        failures.append(
                            f"{key}: {rule} x{count} "
                            f"(ratchet allows {allowed})")
                for rule, allowed in base_counts.items():
                    if counts.get(rule, 0) < allowed:
                        improvements.append(
                            f"{key}: {rule} improved to "
                            f"{counts.get(rule, 0)} (< {allowed})")

    if args.update:
        # Drop empty entries so the committed file only lists stages
        # that actually carry findings.
        slim = {k: v for k, v in sorted(observed.items()) if v}
        with open(args.ratchet, "w", encoding="utf-8") as f:
            json.dump(slim, f, indent=2, sort_keys=True)
            f.write("\n")
        print(f"analysis_sweep: wrote {args.ratchet} "
              f"({len(slim)} ratcheted stages)")
        return 0

    for msg in improvements:
        print(f"analysis_sweep: NOTE {msg} — consider --update")
    for msg in failures:
        sys.stderr.write(f"analysis_sweep: FAIL {msg}\n")
    print(f"analysis_sweep: {len(observed)} stages checked, "
          f"{len(failures)} regression(s)")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
