#include "ml/dataset.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"
#include "util/rng.hh"

namespace azoo {
namespace ml {

namespace {

constexpr int kSide = 28;
constexpr int kFeatures = kSide * kSide;
constexpr int kClasses = 10;

struct Stroke {
    double x0, y0, x1, y1;
    double thickness;
};

/** Deterministic stroke set per class. */
std::vector<Stroke>
classStrokes(int cls, uint64_t seed)
{
    Rng rng(seed * 1000003ULL + cls);
    const int count = 3 + static_cast<int>(rng.nextBelow(3));
    std::vector<Stroke> strokes;
    for (int i = 0; i < count; ++i) {
        Stroke s;
        s.x0 = 4 + rng.nextDouble() * 20;
        s.y0 = 4 + rng.nextDouble() * 20;
        s.x1 = 4 + rng.nextDouble() * 20;
        s.y1 = 4 + rng.nextDouble() * 20;
        s.thickness = 1.2 + rng.nextDouble() * 1.3;
        strokes.push_back(s);
    }
    return strokes;
}

void
renderStrokes(const std::vector<Stroke> &strokes, double dx, double dy,
              double dropout, Rng &rng, std::vector<uint8_t> &img)
{
    for (const auto &s : strokes) {
        const double len = std::hypot(s.x1 - s.x0, s.y1 - s.y0);
        const int steps = std::max(2, static_cast<int>(len * 2));
        for (int i = 0; i <= steps; ++i) {
            if (rng.nextDouble() < dropout)
                continue;
            const double t = static_cast<double>(i) / steps;
            const double cx = s.x0 + t * (s.x1 - s.x0) + dx;
            const double cy = s.y0 + t * (s.y1 - s.y0) + dy;
            const int r = static_cast<int>(std::ceil(s.thickness));
            for (int oy = -r; oy <= r; ++oy) {
                for (int ox = -r; ox <= r; ++ox) {
                    const int px = static_cast<int>(cx) + ox;
                    const int py = static_cast<int>(cy) + oy;
                    if (px < 0 || px >= kSide || py < 0 || py >= kSide)
                        continue;
                    const double d = std::hypot(
                        px + 0.5 - cx, py + 0.5 - cy);
                    if (d > s.thickness)
                        continue;
                    const double v = 255.0 *
                        (1.0 - d / (s.thickness + 0.5));
                    auto &cell = img[py * kSide + px];
                    cell = static_cast<uint8_t>(
                        std::min(255.0, cell + v));
                }
            }
        }
    }
}

} // namespace

Dataset
makeSyntheticDigits(const DigitConfig &cfg)
{
    Dataset d;
    d.numFeatures = kFeatures;
    d.numClasses = kClasses;
    d.x.reserve(cfg.samples);
    d.y.reserve(cfg.samples);

    std::vector<std::vector<Stroke>> protos;
    for (int c = 0; c < kClasses; ++c)
        protos.push_back(classStrokes(c, cfg.seed));

    Rng rng(cfg.seed ^ 0xd16175ULL);
    for (size_t i = 0; i < cfg.samples; ++i) {
        const int cls = static_cast<int>(rng.nextBelow(kClasses));
        std::vector<uint8_t> img(kFeatures, 0);
        const double dx = rng.nextRange(-cfg.jitter, cfg.jitter) +
            rng.nextDouble() - 0.5;
        const double dy = rng.nextRange(-cfg.jitter, cfg.jitter) +
            rng.nextDouble() - 0.5;
        renderStrokes(protos[cls], dx, dy, cfg.dropout, rng, img);
        for (auto &px : img) {
            const double noisy = px +
                (rng.nextDouble() * 2 - 1) * cfg.noise;
            px = static_cast<uint8_t>(
                std::clamp(noisy, 0.0, 255.0));
        }
        d.x.push_back(std::move(img));
        d.y.push_back(cls);
    }
    return d;
}

void
splitDataset(const Dataset &all, double test_fraction, uint64_t seed,
             Dataset &train, Dataset &test)
{
    std::vector<size_t> order(all.size());
    for (size_t i = 0; i < order.size(); ++i)
        order[i] = i;
    Rng rng(seed ^ 0x5eedbeefULL);
    rng.shuffle(order);

    const size_t test_n =
        static_cast<size_t>(all.size() * test_fraction);
    train = Dataset{all.numFeatures, all.numClasses, {}, {}};
    test = Dataset{all.numFeatures, all.numClasses, {}, {}};
    for (size_t i = 0; i < order.size(); ++i) {
        Dataset &dst = i < all.size() - test_n ? train : test;
        dst.x.push_back(all.x[order[i]]);
        dst.y.push_back(all.y[order[i]]);
    }
}

std::vector<int>
selectFeatures(const Dataset &d, int count)
{
    if (count > d.numFeatures)
        fatal(cat("selectFeatures: ", count, " > ", d.numFeatures));
    const int f = d.numFeatures;
    const int c = d.numClasses;

    std::vector<double> mean(static_cast<size_t>(f) * c, 0);
    std::vector<double> m2(f, 0), gmean(f, 0);
    std::vector<uint64_t> per_class(c, 0);
    for (size_t i = 0; i < d.size(); ++i)
        ++per_class[d.y[i]];

    for (size_t i = 0; i < d.size(); ++i) {
        const auto &row = d.x[i];
        for (int j = 0; j < f; ++j) {
            mean[static_cast<size_t>(j) * c + d.y[i]] += row[j];
            gmean[j] += row[j];
            m2[j] += static_cast<double>(row[j]) * row[j];
        }
    }

    std::vector<std::pair<double, int>> scored(f);
    const double n = static_cast<double>(d.size());
    for (int j = 0; j < f; ++j) {
        gmean[j] /= n;
        double between = 0;
        for (int k = 0; k < c; ++k) {
            if (!per_class[k])
                continue;
            const double cm =
                mean[static_cast<size_t>(j) * c + k] / per_class[k];
            between += per_class[k] * (cm - gmean[j]) * (cm - gmean[j]);
        }
        const double total = m2[j] - n * gmean[j] * gmean[j];
        const double score = total > 1e-9 ? between / total : 0.0;
        scored[j] = {score, j};
    }
    std::sort(scored.begin(), scored.end(),
              [](const auto &a, const auto &b) {
                  if (a.first != b.first)
                      return a.first > b.first;
                  return a.second < b.second;
              });
    std::vector<int> out(count);
    for (int i = 0; i < count; ++i)
        out[i] = scored[i].second;
    std::sort(out.begin(), out.end());
    return out;
}

Dataset
projectFeatures(const Dataset &d, const std::vector<int> &features)
{
    Dataset out;
    out.numFeatures = static_cast<int>(features.size());
    out.numClasses = d.numClasses;
    out.x.reserve(d.size());
    out.y = d.y;
    for (const auto &row : d.x) {
        std::vector<uint8_t> pr(features.size());
        for (size_t j = 0; j < features.size(); ++j)
            pr[j] = row[features[j]];
        out.x.push_back(std::move(pr));
    }
    return out;
}

} // namespace ml
} // namespace azoo
